//! End-to-end mini-batch pipeline tests (DESIGN.md §14): sampled training
//! matches full-batch accuracy on a G1-class graph, streaming ingestion
//! trains through the delta overlay with a mostly-cache-hit tuner, and the
//! whole sampled loop is bitwise reproducible under the thread-pool
//! executor (CI pins `HALFGNN_THREADS` to 1 and 4 for this suite).

use halfgnn::graph::datasets::Dataset;
use halfgnn::nn::trainer::{train, ExecMode, ModelKind, PrecisionMode, TrainConfig, Tuning};

fn mb_cfg(precision: PrecisionMode, epochs: usize) -> TrainConfig {
    TrainConfig {
        model: ModelKind::Gcn,
        precision,
        epochs,
        hidden: 16,
        lr: 0.02,
        seed: 3,
        batch_size: Some(128),
        fanout: 10,
        ..TrainConfig::default()
    }
}

#[test]
fn sampled_training_matches_full_batch_on_g1() {
    // Acceptance criterion: on the G1-class graph (Cora), neighbor-sampled
    // mini-batch training reaches the full-batch accuracies within ε, in
    // half precision, oracle-clean with zero overflow events.
    let data = Dataset::by_id("G1").expect("G1 in registry").load(42);
    let base = TrainConfig { batch_size: None, ..mb_cfg(PrecisionMode::HalfGnn, 20) };
    let full = train(&data, &base);
    let mb = train(&data, &mb_cfg(PrecisionMode::HalfGnn, 20));
    assert!(mb.nan_epoch.is_none());
    assert!(mb.overflow_per_epoch.iter().all(|s| s.is_clean()), "overflow events in sampled run");
    assert!(
        (full.test_accuracy - mb.test_accuracy).abs() < 0.08,
        "G1 test accuracy: full {} vs sampled {}",
        full.test_accuracy,
        mb.test_accuracy
    );
    // Mini-batch working sets are smaller than the full graph's. The
    // sampled trainer additionally keeps the global feature table and CSR
    // resident for its gathers (on a graph this small that residency can
    // outweigh the savings), so the invariant is: peak minus the resident
    // global tables — the per-batch working set — stays under the
    // full-batch peak.
    let resident_global =
        data.num_vertices() * data.spec.feat * 2 + (data.num_edges() + data.num_vertices() + 1) * 4;
    assert!(
        mb.peak_memory_bytes.saturating_sub(resident_global as u64) < full.peak_memory_bytes,
        "batch working set {} (peak {} - resident {}) vs full peak {}",
        mb.peak_memory_bytes.saturating_sub(resident_global as u64),
        mb.peak_memory_bytes,
        resident_global,
        full.peak_memory_bytes
    );
}

#[test]
fn streaming_edges_mid_training_keeps_the_tuner_mostly_cache_hit() {
    // Acceptance criterion: edges inserted mid-training with no full CSR
    // rebuild (the DeltaCsr overlay ingests them), and the per-batch-shape
    // tuner keys stay >50% cache-hit after the delta because KernelKey
    // buckets by log2 nnz.
    let data = Dataset::by_id("G1").unwrap().load(42);
    let cfg = TrainConfig {
        stream_edges: 150,
        tuning: Tuning::Auto,
        ..mb_cfg(PrecisionMode::HalfGnn, 6)
    };
    let r = train(&data, &cfg);
    assert!(r.nan_epoch.is_none());
    assert!(r.overflow_per_epoch.iter().all(|s| s.is_clean()));
    let s = r.sampling.expect("mini-batch runs report sampling");
    assert!(s.streamed_edges > 0, "no edges ingested");
    let post = s.post_stream_tuning.expect("tuned run measures post-delta cache");
    let hit_rate = post.hits as f64 / (post.hits + post.misses).max(1) as f64;
    assert!(hit_rate > 0.5, "post-delta hit rate {hit_rate:.2} ({post:?})");
}

#[test]
fn minibatch_run_is_bitwise_identical_across_executors() {
    // The Sim/Fast contract extended to the batch pipeline: keyed sampling
    // plus deterministic kernels means the loss trajectory is bit-for-bit
    // reproducible under the auto-sized thread pool (HALFGNN_THREADS) and
    // explicit 1/4-worker pools.
    let data = Dataset::by_id("G1").unwrap().load(42);
    let base =
        TrainConfig { stream_edges: 60, tuning: Tuning::Auto, ..mb_cfg(PrecisionMode::HalfGnn, 4) };
    let sim = train(&data, &base);
    for threads in [0, 1, 4] {
        let fast = train(
            &data,
            &TrainConfig { exec: ExecMode::fast_with_threads(threads), ..base.clone() },
        );
        assert_eq!(
            sim.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            fast.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            "threads={threads}"
        );
        assert_eq!(sim.final_train_accuracy, fast.final_train_accuracy);
        assert_eq!(sim.test_accuracy, fast.test_accuracy);
    }
}
