//! Cross-crate kernel pipeline tests: compose the public kernel API the
//! way a downstream GNN system would and validate against the f64
//! reference implementations.

use halfgnn::graph::{gen, Csr};
use halfgnn::half::slice::f32_slice_to_half;
use halfgnn::half::Half;
use halfgnn::kernels::baseline::cusparse;
use halfgnn::kernels::common::{EdgeWeights, Reduce, ScalePlacement, VectorWidth};
use halfgnn::kernels::reference;
use halfgnn::kernels::{edge_ops, halfgnn_sddmm, halfgnn_spmm};
use halfgnn::sim::DeviceConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn graph(seed: u64) -> Csr {
    let edges = gen::preferential_attachment(800, 6, seed);
    Csr::from_edges(800, 800, &edges).symmetrized_with_self_loops()
}

fn randh(n: usize, scale: f32, seed: u64) -> Vec<Half> {
    let mut rng = StdRng::seed_from_u64(seed);
    f32_slice_to_half(&(0..n).map(|_| rng.gen_range(-scale..scale)).collect::<Vec<f32>>())
}

#[test]
fn attention_pipeline_matches_reference_aggregation() {
    // Full GAT-style layer: softmax(e) then SpMMve — compare the final
    // aggregation against the f64 reference with the same alpha.
    let dev = DeviceConfig::a100_like();
    let csr = graph(1);
    let coo = csr.to_coo();
    let f = 32;
    let z = randh(coo.num_rows() * f, 0.5, 2);
    let e = randh(coo.nnz(), 3.0, 3);

    let (m, _) = halfgnn_spmm::edge_reduce(&dev, &coo, &e, Reduce::Max);
    let (num, _) = edge_ops::sub_row_exp(&dev, &coo, &e, &m, true);
    let (zs, _) = halfgnn_spmm::edge_reduce(&dev, &coo, &num, Reduce::Sum);
    let (alpha, _) = edge_ops::div_row(&dev, &coo, &num, &zs);

    let cfg = halfgnn_spmm::SpmmConfig { scaling: ScalePlacement::None, ..Default::default() };
    let (h, _) = halfgnn_spmm::spmm(&dev, &coo, EdgeWeights::Values(&alpha), &z, f, None, &cfg);

    let want = reference::spmm_f64(
        &coo,
        EdgeWeights::Values(&alpha),
        &reference::half_to_f64(&z),
        f,
        Reduce::Sum,
        None,
    );
    reference::assert_close_half(&h, &want, 0.05, 0.05, "attention aggregation");
    // Attention outputs are convex combinations: bounded by max |z|.
    let zmax = z.iter().map(|v| v.to_f32().abs()).fold(0.0f32, f32::max);
    assert!(h.iter().all(|v| v.to_f32().abs() <= zmax * 1.05));
}

#[test]
fn halfgnn_and_cusparse_agree_when_nothing_overflows() {
    let dev = DeviceConfig::a100_like();
    let coo = graph(4).to_coo();
    let f = 16;
    let x = randh(coo.num_cols() * f, 0.25, 5);
    let cfg = halfgnn_spmm::SpmmConfig { scaling: ScalePlacement::None, ..Default::default() };
    let (ours, _) = halfgnn_spmm::spmm(&dev, &coo, EdgeWeights::Ones, &x, f, None, &cfg);
    let (base, _) = cusparse::spmm_half(&dev, &coo, EdgeWeights::Ones, &x, f, None);
    // Symmetric tolerance (reference::close): the old hand-rolled check
    // scaled the relative band by |ours| only, so it silently loosened
    // whenever our kernel overshot the baseline.
    reference::assert_close_half(
        &ours,
        &reference::half_to_f64(&base),
        0.02,
        0.02,
        "halfgnn vs cusparse",
    );
}

#[test]
fn sddmm_then_softmax_grad_shapes_compose() {
    // The backward chain: SDDMM produces edge grads that feed softmax_grad.
    let dev = DeviceConfig::a100_like();
    let coo = graph(6).to_coo();
    let f = 64;
    let dh = randh(coo.num_rows() * f, 0.1, 7);
    let z = randh(coo.num_cols() * f, 0.5, 8);
    #[allow(clippy::needless_range_loop)]
    let alpha = {
        // Uniform attention per row for a clean invariant.
        let offsets = halfgnn_spmm::row_offsets_of(&coo);
        let mut a = vec![Half::ZERO; coo.nnz()];
        for r in 0..coo.num_rows() {
            let deg = (offsets[r + 1] - offsets[r]) as f32;
            for e in offsets[r]..offsets[r + 1] {
                a[e] = Half::from_f32(1.0 / deg);
            }
        }
        a
    };
    let (dalpha, _) = halfgnn_sddmm::sddmm(&dev, &coo, &dh, &z, f, VectorWidth::Half8);
    let (prod, _) = edge_ops::mul(&dev, &coo, &alpha, &dalpha);
    let (t, _) = halfgnn_spmm::edge_reduce(&dev, &coo, &prod, Reduce::Sum);
    let (de, _) = edge_ops::softmax_grad(&dev, &coo, &alpha, &dalpha, &t);
    assert_eq!(de.len(), coo.nnz());
    // Softmax-grad rows are zero-sum when alpha is a softmax (uniform here):
    // Σ_j α(δα_j − t) = t − t = 0.
    let offsets = halfgnn_spmm::row_offsets_of(&coo);
    for r in 0..coo.num_rows().min(200) {
        let s: f32 = de[offsets[r]..offsets[r + 1]].iter().map(|h| h.to_f32()).sum();
        let scale: f32 =
            de[offsets[r]..offsets[r + 1]].iter().map(|h| h.to_f32().abs()).sum::<f32>();
        assert!(s.abs() <= 0.05 * scale + 0.02, "row {r}: sum {s} vs scale {scale}");
    }
}

#[test]
fn stats_compose_across_a_whole_layer() {
    // Kernel stats accumulate sensibly: total layer time is the sum of its
    // kernels; every kernel moved bytes and issued instructions.
    let dev = DeviceConfig::a100_like();
    let coo = graph(9).to_coo();
    let f = 32;
    let x = randh(coo.num_cols() * f, 0.5, 10);
    let e = randh(coo.nnz(), 1.0, 11);

    let mut total = 0.0;
    let (_, s1) = halfgnn_spmm::edge_reduce(&dev, &coo, &e, Reduce::Max);
    total += s1.time_us;
    let (_, s2) = halfgnn_sddmm::sddmm(&dev, &coo, &x, &x, f, VectorWidth::Half8);
    total += s2.time_us;
    let cfg = halfgnn_spmm::SpmmConfig { scaling: ScalePlacement::None, ..Default::default() };
    let (_, s3) = halfgnn_spmm::spmm(&dev, &coo, EdgeWeights::Ones, &x, f, None, &cfg);
    total += s3.time_us;
    for s in [&s1, &s2, &s3] {
        assert!(s.time_us > 0.0);
        assert!(s.dram_bytes() > 0);
        assert!(s.mem_bw_utilization > 0.0 && s.mem_bw_utilization <= 100.0);
        assert!(s.sm_utilization >= 0.0 && s.sm_utilization <= 100.0);
    }
    assert!(total > s2.time_us, "sum exceeds any component");
}
