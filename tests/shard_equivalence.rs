//! Shard-equivalence harness: the tentpole's correctness proof.
//!
//! Sharded execution is a *cost* transformation, not a numeric one: each
//! simulated device runs the global kernel tiling clamped to its row (or
//! edge) window and the outputs are pasted back, so for ANY graph — hub
//! graphs, graphs with zero-degree vertices, more shards than rows (empty
//! partitions) — the sharded run must reproduce the single-device run.
//!
//! Exactly two spots are allowed to deviate, and only in half precision:
//! the gradient all-reduce re-quantizes per-shard partials on the f16
//! wire, and the bias colsum rides the same wire. Everything else —
//! every sparse kernel family, the float training step's loss, logits and
//! gradients, the half step's loss and logits — is asserted **bitwise**.
//! The two wire-quantized reductions are held to [`reference::close`].

use halfgnn::graph::partition::PartitionStrategy;
use halfgnn::graph::{Csr, VertexId};
use halfgnn::half::quant;
use halfgnn::half::slice::f32_slice_to_half;
use halfgnn::half::Half;
use halfgnn::kernels::common::Reduce;
use halfgnn::kernels::reference;
use halfgnn::nn::dist::DistCtx;
use halfgnn::nn::gcn;
use halfgnn::nn::graphdata::GraphView;
use halfgnn::nn::models::{
    edge_reduce_f32, edge_reduce_half, grad_colsum_f32, grad_colsum_half, grad_gemm_f32,
    grad_gemm_half, sddmm_f32, sddmm_half, spmm_mean_f32, spmm_mean_half, spmm_sum_f32,
    spmm_sum_half, spmmve_f32, spmmve_half, Dispatch, GcnNorm, PrecisionMode,
};
use halfgnn::nn::params::TwoLayerParams;
use halfgnn::sim::interconnect::Topology;
use halfgnn::sim::DeviceConfig;
use halfgnn::tensor::Ops;
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn strategies() -> [PartitionStrategy; 3] {
    [
        PartitionStrategy::Contiguous,
        PartitionStrategy::DegreeBalanced,
        // c = 1 divides every shard count in SHARD_COUNTS; the c = 2 grid
        // gets its own dedicated property below.
        PartitionStrategy::OneP5D { c: 1 },
    ]
}

/// Arbitrary symmetrized graph + feature width + f32 features.
///
/// `hub == 1` wires vertex 0 to every other vertex, so DegreeBalanced
/// partitions squeeze the non-hub shards down to a handful of rows. The
/// edge list may leave vertices untouched (zero-degree before the added
/// self loop), and `n` as small as 2 with 4 shards forces empty
/// partitions.
fn arb_graph() -> impl Strategy<Value = (Csr, usize, Vec<f32>)> {
    (2usize..24, 1usize..4, 0usize..2)
        .prop_flat_map(|(n, fhalf, hub)| {
            let f = 2 * fhalf; // half kernels need half2-padded widths
            let edge = (0..n as VertexId, 0..n as VertexId);
            (
                Just(n),
                Just(f),
                Just(hub),
                prop::collection::vec(edge, 0..64),
                prop::collection::vec(-1.0f32..1.0, n * f),
            )
        })
        .prop_map(|(n, f, hub, mut edges, feats)| {
            if hub == 1 {
                for v in 1..n as VertexId {
                    edges.push((0, v));
                }
            }
            let csr = Csr::from_edges(n, n, &edges).symmetrized_with_self_loops();
            (csr, f, feats)
        })
}

/// Deterministic labels/mask for the step-level properties: every class
/// appears, and vertex 0 is always masked in so the loss is never empty.
fn labels_and_mask(n: usize, classes: usize) -> (Vec<u32>, Vec<bool>) {
    let labels: Vec<u32> = (0..n).map(|i| (i % classes) as u32).collect();
    let mask: Vec<bool> = (0..n).map(|i| i == 0 || i % 3 != 1).collect();
    (labels, mask)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every sparse dispatch family pastes back the exact bits of the
    /// single-device launch, at every shard count, under both partition
    /// strategies. Float gradient reductions are exact; half gradient
    /// reductions land inside the `reference::close` band of the global
    /// contraction (the f16 wire is the only permitted deviation).
    #[test]
    fn sharded_dispatch_is_equivalent_on_arbitrary_graphs(
        (csr, f, feats) in arb_graph()
    ) {
        let dev = DeviceConfig::a100_like();
        let g = GraphView::full(&csr);
        let n = g.n();
        let xf = feats;
        let xh = f32_slice_to_half(&xf);
        let wh: Vec<Half> =
            (0..g.nnz()).map(|i| Half::from_f32(((i % 13) as f32 - 6.0) / 8.0)).collect();
        let wf: Vec<f32> = wh.iter().map(|h| h.to_f32()).collect();

        let mut ops = Ops::new(&dev);
        let h1 = Dispatch::untuned(PrecisionMode::HalfGnn);
        let f1 = Dispatch::untuned(PrecisionMode::Float);

        // Single-device ground truth, once per case.
        let want_mean_h = spmm_mean_half(&mut ops, &g, &xh, f, h1);
        let want_sum_h = spmm_sum_half(&mut ops, &g, &xh, f, h1);
        let want_ve_h = spmmve_half(&mut ops, &g, &wh, &xh, f, h1);
        let want_sddmm_h = sddmm_half(&mut ops, &g, &xh, &xh, f, h1);
        let want_max_h = edge_reduce_half(&mut ops, &g, &wh, Reduce::Max, h1);
        let want_gemm_h = grad_gemm_half(&mut ops, &xh, &xh, f, n, f, h1);
        let want_colsum_h = grad_colsum_half(&mut ops, &xh, f, h1);
        let want_mean_f = spmm_mean_f32(&mut ops, &g, &xf, f, f1);
        let want_sum_f = spmm_sum_f32(&mut ops, &g, &xf, f, f1);
        let want_ve_f = spmmve_f32(&mut ops, &g, &wf, &xf, f, f1);
        let want_sddmm_f = sddmm_f32(&mut ops, &g, &xf, &xf, f, f1);
        let want_sum_ef = edge_reduce_f32(&mut ops, &g, &wf, Reduce::Sum, f1);
        let want_gemm_f = grad_gemm_f32(&mut ops, &xf, &xf, f, n, f, f1);
        let want_colsum_f = grad_colsum_f32(&mut ops, &xf, f, f1);

        for shards in SHARD_COUNTS {
            for strategy in strategies() {
                let ctx = DistCtx::new(&g.csr, shards, strategy, Topology::Ring);
                let hd = h1.with_dist(Some(&ctx));
                let fd = f1.with_dist(Some(&ctx));

                prop_assert_eq!(&spmm_mean_half(&mut ops, &g, &xh, f, hd), &want_mean_h);
                prop_assert_eq!(&spmm_sum_half(&mut ops, &g, &xh, f, hd), &want_sum_h);
                prop_assert_eq!(&spmmve_half(&mut ops, &g, &wh, &xh, f, hd), &want_ve_h);
                prop_assert_eq!(&sddmm_half(&mut ops, &g, &xh, &xh, f, hd), &want_sddmm_h);
                prop_assert_eq!(
                    &edge_reduce_half(&mut ops, &g, &wh, Reduce::Max, hd),
                    &want_max_h
                );
                prop_assert_eq!(&spmm_mean_f32(&mut ops, &g, &xf, f, fd), &want_mean_f);
                prop_assert_eq!(&spmm_sum_f32(&mut ops, &g, &xf, f, fd), &want_sum_f);
                prop_assert_eq!(&spmmve_f32(&mut ops, &g, &wf, &xf, f, fd), &want_ve_f);
                prop_assert_eq!(&sddmm_f32(&mut ops, &g, &xf, &xf, f, fd), &want_sddmm_f);
                prop_assert_eq!(
                    &edge_reduce_f32(&mut ops, &g, &wf, Reduce::Sum, fd),
                    &want_sum_ef
                );
                // Float gradient reductions: the exact global contraction.
                prop_assert_eq!(&grad_gemm_f32(&mut ops, &xf, &xf, f, n, f, fd), &want_gemm_f);
                prop_assert_eq!(&grad_colsum_f32(&mut ops, &xf, f, fd), &want_colsum_f);

                // Half gradient reductions: re-quantized on the f16 wire,
                // so close rather than bitwise.
                let got_gemm = grad_gemm_half(&mut ops, &xh, &xh, f, n, f, hd);
                for (got, want) in got_gemm.iter().zip(&want_gemm_h) {
                    prop_assert!(
                        reference::close(got.to_f64(), want.to_f64(), 0.05, 0.05),
                        "grad_gemm_half: {got} vs {want} (shards={shards}, {strategy:?})"
                    );
                }
                let got_colsum = grad_colsum_half(&mut ops, &xh, f, hd);
                for (got, want) in got_colsum.iter().zip(&want_colsum_h) {
                    prop_assert!(
                        reference::close(*got as f64, *want as f64, 0.05, 0.05),
                        "grad_colsum_half: {got} vs {want} (shards={shards}, {strategy:?})"
                    );
                }

                // A multi-shard run must have metered wire traffic.
                if shards > 1 {
                    prop_assert!(ctx.snapshot().total_bytes() > 0);
                }
            }
        }
    }

    /// The float GCN training step is bit-identical under sharding: same
    /// loss bits, same logits, same gradients, whatever the graph, shard
    /// count, partition strategy or topology.
    #[test]
    fn sharded_float_gcn_step_is_bit_identical(
        (csr, f, feats) in arb_graph()
    ) {
        let dev = DeviceConfig::a100_like();
        let g = GraphView::full(&csr);
        let classes = 3;
        let (labels, mask) = labels_and_mask(g.n(), classes);
        let p = TwoLayerParams::new(f, 4, classes, 7);
        let d1 = Dispatch::untuned(PrecisionMode::Float);

        let mut ops = Ops::new(&dev);
        let want = gcn::step_f32_norm(&mut ops, &g, &p, &feats, &labels, &mask, d1, GcnNorm::Right);

        for shards in SHARD_COUNTS {
            for strategy in strategies() {
                for topology in [Topology::Ring, Topology::AllToAll] {
                    let ctx = DistCtx::new(&g.csr, shards, strategy, topology);
                    let d = d1.with_dist(Some(&ctx));
                    let got = gcn::step_f32_norm(
                        &mut ops, &g, &p, &feats, &labels, &mask, d, GcnNorm::Right,
                    );
                    prop_assert_eq!(got.loss.to_bits(), want.loss.to_bits());
                    prop_assert_eq!(&got.logits, &want.logits);
                    prop_assert_eq!(&got.grads.flat(), &want.grads.flat());
                }
            }
        }
    }

    /// The half GCN step under sharding: the forward pass (loss, logits)
    /// is still bitwise — windowed kernels paste exact slices — and only
    /// the wire-reduced weight/bias gradients move, within the
    /// `reference::close` band.
    #[test]
    fn sharded_half_gcn_step_is_bitwise_forward_and_close_backward(
        (csr, f, feats) in arb_graph()
    ) {
        let dev = DeviceConfig::a100_like();
        let g = GraphView::full(&csr);
        let classes = 4; // even: the half path pads odd class counts
        let (labels, mask) = labels_and_mask(g.n(), classes);
        let p = TwoLayerParams::new(f, 4, classes, 11);
        let xh = f32_slice_to_half(&feats);
        let d1 = Dispatch::untuned(PrecisionMode::HalfGnn);

        let mut ops = Ops::new(&dev);
        let want = gcn::step_half_norm(&mut ops, &g, &p, &xh, &labels, &mask, d1, GcnNorm::Right);

        for shards in SHARD_COUNTS {
            for strategy in strategies() {
                let ctx = DistCtx::new(&g.csr, shards, strategy, Topology::Ring);
                let d = d1.with_dist(Some(&ctx));
                let got =
                    gcn::step_half_norm(&mut ops, &g, &p, &xh, &labels, &mask, d, GcnNorm::Right);
                prop_assert_eq!(got.loss.to_bits(), want.loss.to_bits());
                prop_assert_eq!(&got.logits, &want.logits);
                for (got, want) in got.grads.flat().iter().zip(want.grads.flat()) {
                    prop_assert!(
                        reference::close(*got as f64, want as f64, 0.05, 0.05),
                        "half grads: {got} vs {want} (shards={shards}, {strategy:?})"
                    );
                }
            }
        }
    }

    /// 1.5D is the tentpole's cost transformation: it shares the
    /// DegreeBalanced boundaries, kernel windows and halos exactly — so
    /// the float step is bitwise the single-device step at every shard
    /// count, replication factor and topology — while the replication
    /// groups fetch each out-of-group halo row once, so wire bytes never
    /// exceed 1D's.
    #[test]
    fn one5d_step_is_bitwise_and_never_moves_more_bytes_than_1d(
        (csr, f, feats) in arb_graph()
    ) {
        let dev = DeviceConfig::a100_like();
        let g = GraphView::full(&csr);
        let classes = 3;
        let (labels, mask) = labels_and_mask(g.n(), classes);
        let p = TwoLayerParams::new(f, 4, classes, 7);
        let d1 = Dispatch::untuned(PrecisionMode::Float);

        let mut ops = Ops::new(&dev);
        let want = gcn::step_f32_norm(&mut ops, &g, &p, &feats, &labels, &mask, d1, GcnNorm::Right);

        for shards in [2usize, 4, 8] {
            for c in [1usize, 2] {
                for topology in [Topology::Ring, Topology::AllToAll] {
                    let ctx =
                        DistCtx::new(&g.csr, shards, PartitionStrategy::OneP5D { c }, topology);
                    let bal =
                        DistCtx::new(&g.csr, shards, PartitionStrategy::DegreeBalanced, topology);

                    // Same cuts, same halos: replication changes who pays
                    // for a halo row, never which rows are halo.
                    prop_assert_eq!(ctx.plan.replication, c);
                    for (s15, s1d) in ctx.plan.shards.iter().zip(&bal.plan.shards) {
                        prop_assert_eq!(s15.row_range, s1d.row_range);
                        prop_assert_eq!(&s15.halo, &s1d.halo);
                    }

                    let got = gcn::step_f32_norm(
                        &mut ops, &g, &p, &feats, &labels, &mask,
                        d1.with_dist(Some(&ctx)), GcnNorm::Right,
                    );
                    prop_assert_eq!(got.loss.to_bits(), want.loss.to_bits());
                    prop_assert_eq!(&got.logits, &want.logits);
                    prop_assert_eq!(&got.grads.flat(), &want.grads.flat());

                    let _ = gcn::step_f32_norm(
                        &mut ops, &g, &p, &feats, &labels, &mask,
                        d1.with_dist(Some(&bal)), GcnNorm::Right,
                    );
                    let (s15, s1d) = (ctx.snapshot(), bal.snapshot());
                    prop_assert!(
                        s15.halo_bytes <= s1d.halo_bytes,
                        "1.5D halo {} > 1D halo {} (shards={}, c={})",
                        s15.halo_bytes, s1d.halo_bytes, shards, c
                    );
                    // c = 1 degenerates to exactly the 1D wire charge.
                    if c == 1 {
                        prop_assert_eq!(s15.halo_bytes, s1d.halo_bytes);
                    }
                    // The gradient all-reduce is partition-independent.
                    prop_assert_eq!(s15.allreduce_bytes, s1d.allreduce_bytes);
                }
            }
        }
    }

    /// The headline cost property holds pointwise, not just end-to-end:
    /// on the same graph, same shard plan, same feature width, a half
    /// halo exchange moves exactly half the bytes of the float one.
    #[test]
    fn half_halo_traffic_is_exactly_half_of_float(
        (csr, f, feats) in arb_graph()
    ) {
        let dev = DeviceConfig::a100_like();
        let g = GraphView::full(&csr);
        let xh = f32_slice_to_half(&feats);
        let mut ops = Ops::new(&dev);

        for shards in [2usize, 4] {
            for strategy in strategies() {
                let ctx_h = DistCtx::new(&g.csr, shards, strategy, Topology::Ring);
                let ctx_f = DistCtx::new(&g.csr, shards, strategy, Topology::Ring);
                let dh = Dispatch::untuned(PrecisionMode::HalfGnn).with_dist(Some(&ctx_h));
                let df = Dispatch::untuned(PrecisionMode::Float).with_dist(Some(&ctx_f));
                spmm_sum_half(&mut ops, &g, &xh, f, dh);
                spmm_sum_f32(&mut ops, &g, &feats, f, df);
                let (h, fl) = (ctx_h.snapshot(), ctx_f.snapshot());
                prop_assert_eq!(2 * h.halo_bytes, fl.halo_bytes);
                // And the modeled wire time strictly improves whenever
                // any halo actually crossed a link.
                if fl.halo_bytes > 0 {
                    prop_assert!(h.total_time_us() < fl.total_time_us());
                }
            }
        }
    }

    /// The INT8 wire rung below: on the same graph, shard plan and
    /// feature width — 1D and the 1.5D replication grid alike — the i8
    /// halo exchange moves exactly half the bytes of the f16 ledger and
    /// a quarter of the float one, on every sharded config.
    #[test]
    fn i8_halo_traffic_is_half_of_f16_and_a_quarter_of_float(
        (csr, f, feats) in arb_graph()
    ) {
        let dev = DeviceConfig::a100_like();
        let g = GraphView::full(&csr);
        let xh = f32_slice_to_half(&feats);
        let mut ops = Ops::new(&dev);

        let mut configs: Vec<(usize, PartitionStrategy)> = Vec::new();
        for shards in [2usize, 4] {
            for strategy in strategies() {
                configs.push((shards, strategy));
            }
        }
        // The c = 2 replication grid: groups share halo fetches, and the
        // compression ratio must survive the shared-fetch accounting.
        configs.push((4, PartitionStrategy::OneP5D { c: 2 }));

        for (shards, strategy) in configs {
            let ctx_i = DistCtx::new(&g.csr, shards, strategy, Topology::Ring);
            let ctx_h = DistCtx::new(&g.csr, shards, strategy, Topology::Ring);
            let ctx_f = DistCtx::new(&g.csr, shards, strategy, Topology::Ring);
            let di = Dispatch::untuned(PrecisionMode::I8)
                .with_quant_seed(0xA5)
                .with_dist(Some(&ctx_i));
            let dh = Dispatch::untuned(PrecisionMode::HalfGnn).with_dist(Some(&ctx_h));
            let df = Dispatch::untuned(PrecisionMode::Float).with_dist(Some(&ctx_f));
            spmm_sum_half(&mut ops, &g, &xh, f, di);
            spmm_sum_half(&mut ops, &g, &xh, f, dh);
            spmm_sum_f32(&mut ops, &g, &feats, f, df);
            let (i8s, hs, fs) = (ctx_i.snapshot(), ctx_h.snapshot(), ctx_f.snapshot());
            prop_assert_eq!(
                2 * i8s.halo_bytes, hs.halo_bytes,
                "i8 halo vs f16 (shards={}, {:?})", shards, strategy
            );
            prop_assert_eq!(
                4 * i8s.halo_bytes, fs.halo_bytes,
                "i8 halo vs float (shards={}, {:?})", shards, strategy
            );
        }
    }

    /// The i8 gradient all-reduce lands inside the *deterministic*
    /// `shards · 2^e` band of the exact f32-wire reduction (e = the joint
    /// bucket exponent — computable because the wire sums codes exactly
    /// in i32), never saturates by construction, and charges exactly half
    /// the f16 all-reduce bytes and a quarter of the float ones.
    #[test]
    fn i8_wire_allreduce_stays_in_band_and_moves_quarter_bytes(
        (csr, _f, feats) in arb_graph()
    ) {
        const BUCKET: usize = 64;
        let dev = DeviceConfig::a100_like();
        let mut ops = Ops::new(&dev);
        // Pad to a multiple of every shard count under test: the ring
        // all-reduce charges per div_ceil(payload, shards) chunk, so
        // exact 0.5×/0.25× ratios need an evenly divisible payload.
        let mut feats = feats;
        while feats.len() % 4 != 0 {
            feats.push(0.0);
        }
        let n = feats.len();

        for shards in [2usize, 4] {
            for strategy in strategies() {
                // Synthetic per-shard partials spanning shard-dependent
                // magnitudes, derived from the proptest feature pool.
                let partials: Vec<Vec<f32>> = (0..shards)
                    .map(|s| {
                        feats
                            .iter()
                            .map(|&v| v * (s + 1) as f32 - s as f32 * 0.25)
                            .collect()
                    })
                    .collect();
                let exact: Vec<f32> =
                    (0..n).map(|i| partials.iter().map(|p| p[i]).sum()).collect();

                let ctx_i = DistCtx::new(&csr, shards, strategy, Topology::Ring)
                    .with_i8_bucket(BUCKET);
                let ctx_h = DistCtx::new(&csr, shards, strategy, Topology::Ring);
                let ctx_f = DistCtx::new(&csr, shards, strategy, Topology::Ring);

                let (got, sat) = quant::isolated(|| {
                    ctx_i.allreduce_f32_on_i8_wire(&mut ops, &partials, 0xD15C)
                });
                prop_assert_eq!(
                    sat.saturated, 0,
                    "the joint bucket exponent makes saturation impossible"
                );
                for (bi, chunk) in exact.chunks(BUCKET).enumerate() {
                    let lo = bi * BUCKET;
                    let joint = partials
                        .iter()
                        .flat_map(|p| p[lo..lo + chunk.len()].iter())
                        .fold(0f32, |m, &v| m.max(v.abs()));
                    let band = shards as f64
                        * (2.0f64).powi(quant::block_exponent(joint));
                    for (i, (&g_v, &w_v)) in
                        got[lo..lo + chunk.len()].iter().zip(chunk).enumerate()
                    {
                        prop_assert!(
                            reference::close(g_v as f64, w_v as f64, 1e-6, band + 1e-6),
                            "elem {}: i8-wire {} vs f32-wire {} outside ±{band:e} \
                             (shards={}, {:?})",
                            lo + i, g_v, w_v, shards, strategy
                        );
                    }
                }

                // Same reduction on the f16 and f32 wires: the i8 ledger
                // charge is exactly 0.5× / 0.25×.
                ctx_h.allreduce_f32_on_f16_wire(&mut ops, &partials);
                ctx_f.charge_allreduce_f32(n);
                let (b8, b16, b32) = (
                    ctx_i.snapshot().allreduce_bytes,
                    ctx_h.snapshot().allreduce_bytes,
                    ctx_f.snapshot().allreduce_bytes,
                );
                prop_assert!(b8 > 0, "all-reduce must be metered");
                prop_assert_eq!(2 * b8, b16, "i8 vs f16 wire (shards={shards})");
                prop_assert_eq!(4 * b8, b32, "i8 vs f32 wire (shards={shards})");
            }
        }
    }
}

/// More shards than vertices: partitions past the vertex count are empty,
/// and the dispatch layer must skip them without emitting traffic for
/// them — while still matching the single-device bits.
#[test]
fn empty_partitions_are_harmless() {
    let dev = DeviceConfig::a100_like();
    let csr = Csr::from_edges(3, 3, &[(0, 1), (1, 2)]).symmetrized_with_self_loops();
    let g = GraphView::full(&csr);
    let f = 4;
    let xh: Vec<Half> = (0..g.n() * f).map(|i| Half::from_f32((i % 5) as f32 * 0.2)).collect();
    let mut ops = Ops::new(&dev);
    let single = Dispatch::untuned(PrecisionMode::HalfGnn);
    let want = spmm_sum_half(&mut ops, &g, &xh, f, single);
    for strategy in strategies() {
        let ctx = DistCtx::new(&g.csr, 4, strategy, Topology::Ring);
        assert_eq!(ctx.num_shards(), 4);
        let got = spmm_sum_half(&mut ops, &g, &xh, f, single.with_dist(Some(&ctx)));
        assert_eq!(got, want, "{strategy:?}");
    }
}

/// A pure star graph under DegreeBalanced partitioning: the hub shard owns
/// almost every edge and the leaf shards almost none, the most lopsided
/// plan the partitioner can produce. Equivalence must not depend on
/// balance.
#[test]
fn star_graph_is_bitwise_under_degree_balanced_sharding() {
    let dev = DeviceConfig::a100_like();
    let n: usize = 33;
    let edges: Vec<(VertexId, VertexId)> = (1..n as VertexId).map(|v| (0, v)).collect();
    let csr = Csr::from_edges(n, n, &edges).symmetrized_with_self_loops();
    let g = GraphView::full(&csr);
    let f = 8;
    let xh: Vec<Half> = (0..n * f).map(|i| Half::from_f32(((i % 9) as f32 - 4.0) * 0.1)).collect();
    let mut ops = Ops::new(&dev);
    let single = Dispatch::untuned(PrecisionMode::HalfGnn);
    let want_spmm = spmm_mean_half(&mut ops, &g, &xh, f, single);
    let want_sddmm = sddmm_half(&mut ops, &g, &xh, &xh, f, single);
    for shards in [2usize, 4, 8] {
        let ctx = DistCtx::new(&g.csr, shards, PartitionStrategy::DegreeBalanced, Topology::Ring);
        let d = single.with_dist(Some(&ctx));
        assert_eq!(spmm_mean_half(&mut ops, &g, &xh, f, d), want_spmm, "shards={shards}");
        assert_eq!(sddmm_half(&mut ops, &g, &xh, &xh, f, d), want_sddmm, "shards={shards}");
    }
}
