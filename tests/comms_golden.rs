//! Golden-trace test for the interconnect cost model: every byte, message
//! and microsecond a small sharded run charges is pinned against numbers
//! worked out by hand from the model's definition (DESIGN.md §12).
//!
//! The fixture is a 6-vertex graph split over 2 shards:
//!
//! ```text
//! base edges   0–3, 2–4, 1–3, 2–5   (plus self loops after Â = A+Aᵀ+I)
//! shard 0      rows {0,1,2}; its edges reference columns {3,4,5}
//! shard 1      rows {3,4,5}; its edges reference columns {0,1,2}
//! ```
//!
//! So each shard needs exactly 3 remote feature rows from the other, and
//! with `f = 4` features one halo exchange per shard moves
//! `3 · 4 · elem_bytes` in a single message per direction:
//!
//! * half  (2 B/elem): 24 B/message, 48 B total, link time 1.75 + 24/25000 µs
//! * float (4 B/elem): 48 B/message, 96 B total, link time 1.75 + 48/25000 µs
//!
//! With N = 2 both topologies route every pair in one hop, so ring and
//! crossbar halo traces are identical — the all-reduce schedules differ
//! only in step structure and (at N = 2) also land on the same per-link
//! totals: a 100-element f32 gradient (400 B payload, 200 B chunks) puts
//! 2 × 200 B on each directed link; the f16 wire halves that.

use halfgnn::graph::partition::PartitionStrategy;
use halfgnn::graph::Csr;
use halfgnn::half::slice::f32_slice_to_half;
use halfgnn::nn::dist::DistCtx;
use halfgnn::sim::interconnect::Topology;
use halfgnn::sim::DeviceConfig;
use halfgnn::tensor::Ops;

const F: usize = 4;
const TOPOLOGIES: [Topology; 2] = [Topology::Ring, Topology::AllToAll];

fn fixture(topology: Topology) -> DistCtx {
    let csr =
        Csr::from_edges(6, 6, &[(0, 3), (2, 4), (3, 1), (5, 2)]).symmetrized_with_self_loops();
    DistCtx::new(&csr, 2, PartitionStrategy::Contiguous, topology)
}

/// The premise of every hand computation below: the partition is rows
/// {0,1,2} | {3,4,5} and each shard's halo is exactly the other's rows.
#[test]
fn fixture_partitions_as_documented() {
    let ctx = fixture(Topology::Ring);
    assert_eq!(ctx.plan.shards[0].row_range, (0, 3));
    assert_eq!(ctx.plan.shards[1].row_range, (3, 6));
    assert_eq!(ctx.plan.shards[0].halo, vec![3, 4, 5]);
    assert_eq!(ctx.plan.shards[1].halo, vec![0, 1, 2]);
    assert_eq!(ctx.plan.halo_sources(0), vec![(1, 3)]);
    assert_eq!(ctx.plan.halo_sources(1), vec![(0, 3)]);
}

/// One halo exchange per shard, both dtypes, both topologies: 24 B (half)
/// or 48 B (float) per directed link, one message each, and the busiest
/// link's time is latency + serialization exactly.
#[test]
fn halo_trace_matches_hand_computed_bytes_messages_and_time() {
    let dev = DeviceConfig::a100_like();
    let xf: Vec<f32> = (0..6 * F).map(|i| i as f32 * 0.125).collect();
    let xh = f32_slice_to_half(&xf);

    for topology in TOPOLOGIES {
        for (elem_bytes, msg_bytes) in [(2u64, 24u64), (4, 48)] {
            let ctx = fixture(topology);
            let mut ops = Ops::new(&dev);
            for shard in &ctx.plan.shards {
                if elem_bytes == 2 {
                    ctx.exchange_halo_half(&mut ops, &xh, F, shard);
                } else {
                    ctx.exchange_halo_f32(&mut ops, &xf, F, shard);
                }
            }
            let ledger = ctx.snapshot();
            assert_eq!(ledger.halo_bytes, 2 * msg_bytes, "{topology:?}/{elem_bytes}B");
            assert_eq!(ledger.allreduce_bytes, 0);
            assert_eq!(ledger.total_bytes(), 2 * msg_bytes);

            let links = ledger.link_stats();
            assert_eq!(links.len(), 2, "one directed link each way");
            for ((from, to), stat) in links {
                assert!((from, to) == (0, 1) || (from, to) == (1, 0));
                assert_eq!(stat.bytes, msg_bytes);
                assert_eq!(stat.messages, 1);
                let want_us = 1.75 + msg_bytes as f64 / 25_000.0;
                assert!(
                    (stat.time_us - want_us).abs() < 1e-9,
                    "{topology:?}/{elem_bytes}B link time {} != {want_us}",
                    stat.time_us
                );
            }
            assert!((ledger.total_time_us() - (1.75 + msg_bytes as f64 / 25_000.0)).abs() < 1e-9);
        }
    }
}

/// A 100-element f32 gradient all-reduce: payload 400 B, 200 B chunks.
/// Ring at N = 2: 2(N−1) = 2 steps × both links × 200 B. Crossbar: 2
/// ordered pairs × 2 phases × 200 B. Identical per-link totals — 400 B in
/// 2 messages — and 800 B charged in class total (chunks are counted per
/// send, which is the wire truth at N = 2: reduce-scatter + all-gather
/// each move the full payload once).
#[test]
fn f32_allreduce_trace_matches_the_closed_form() {
    for topology in TOPOLOGIES {
        let ctx = fixture(topology);
        ctx.charge_allreduce_f32(100);
        let ledger = ctx.snapshot();
        assert_eq!(ledger.allreduce_bytes, 800, "{topology:?}");
        assert_eq!(ledger.halo_bytes, 0);
        assert_eq!(ledger.total_bytes(), 800);
        for ((from, to), stat) in ledger.link_stats() {
            assert!((from, to) == (0, 1) || (from, to) == (1, 0), "{topology:?}");
            assert_eq!(stat.bytes, 400);
            assert_eq!(stat.messages, 2);
            let want_us = 2.0 * (1.75 + 200.0 / 25_000.0);
            assert!((stat.time_us - want_us).abs() < 1e-9, "{topology:?}");
        }
    }
}

/// The 1.5D wire charge on the same fixture, worked by hand. At c = 2 the
/// two shards form one replication group, every halo row is in-group, and
/// the halo exchange charges **zero** bytes — the fully-replicated
/// degenerate corner of the 1.5D family. At c = 1 the group structure is
/// trivial and the charge is exactly the 1D trace (24 B per directed link
/// in half). Kernels and halos are untouched either way.
#[test]
fn one5d_halo_charges_match_the_hand_computed_group_union() {
    let dev = DeviceConfig::a100_like();
    let xf: Vec<f32> = (0..6 * F).map(|i| i as f32 * 0.125).collect();
    let xh = f32_slice_to_half(&xf);
    let csr =
        Csr::from_edges(6, 6, &[(0, 3), (2, 4), (3, 1), (5, 2)]).symmetrized_with_self_loops();

    for (c, want_bytes) in [(1usize, 48u64), (2, 0)] {
        let ctx = DistCtx::new(&csr, 2, PartitionStrategy::OneP5D { c }, Topology::Ring);
        // Same halos as the 1D fixture — replication moves charges, not
        // data dependencies.
        assert_eq!(ctx.plan.shards[0].halo, vec![3, 4, 5]);
        assert_eq!(ctx.plan.shards[1].halo, vec![0, 1, 2]);
        let mut ops = Ops::new(&dev);
        for shard in &ctx.plan.shards {
            ctx.exchange_halo_half(&mut ops, &xh, F, shard);
        }
        let ledger = ctx.snapshot();
        assert_eq!(ledger.halo_bytes, want_bytes, "c={c}");
        if c == 2 {
            assert!(ledger.link_stats().is_empty(), "no wire messages at c=2");
            // Every halo row is in-group: nothing to cache either.
            let s = ctx.halo_cache_stats();
            assert_eq!((s.hits, s.misses), (0, 0));
        }
    }
}

/// The same gradient on the f16 wire: 2 B/element halves every number in
/// the f32 trace (200 B payload, 100 B chunks, 400 B class total) — and
/// the reduced values still come back correct through the discretized
/// bucket scaling.
#[test]
fn f16_wire_allreduce_halves_the_f32_trace() {
    let dev = DeviceConfig::a100_like();
    for topology in TOPOLOGIES {
        let ctx = fixture(topology);
        let mut ops = Ops::new(&dev);
        let partials = vec![vec![1.0f32; 100], vec![2.0f32; 100]];
        let reduced = ctx.allreduce_f32_on_f16_wire(&mut ops, &partials);
        for v in &reduced {
            assert!((v - 3.0).abs() < 0.01, "{topology:?}: {v}");
        }
        let ledger = ctx.snapshot();
        assert_eq!(ledger.allreduce_bytes, 400, "{topology:?}");
        assert_eq!(ledger.total_bytes(), 400);
        for (_, stat) in ledger.link_stats() {
            assert_eq!(stat.bytes, 200);
            assert_eq!(stat.messages, 2);
        }
    }
}
