//! Replay-equivalence harness: capture/replay is a *cost* transformation,
//! not a numeric one.
//!
//! Epoch 0 of a `replay: true` run records every kernel launch and plan
//! resolution; later epochs re-run the frozen graph with pre-resolved
//! plans and launch overhead stripped. None of that may move a bit: for
//! ANY graph — hub graphs, zero-degree vertices, more shards than rows —
//! every loss of every epoch must be bit-for-bit the eager run's, in both
//! precisions, at any shard count, under the cost model and under real OS
//! threads (CI pins `HALFGNN_THREADS` to 1 and 4 for this suite).

use halfgnn::graph::datasets::{DatasetSpec, GenKind, LoadedDataset};
use halfgnn::graph::features::Split;
use halfgnn::graph::{Csr, VertexId};
use halfgnn::nn::trainer::{train, ExecMode, ModelKind, PrecisionMode, TrainConfig, Tuning};
use proptest::prelude::*;

/// A spec for a hand-built graph: only `feat` and `classes` are read by
/// the trainer; the generator fields are never used.
fn spec_for(n: usize, f: usize, classes: usize) -> DatasetSpec {
    DatasetSpec {
        id: "T0",
        name: "replay-prop",
        paper_vertices: 0,
        paper_edges: 0,
        paper_feat: f,
        classes,
        labeled: true,
        vertices: n,
        feat: f,
        feat_signal: 1.0,
        feat_noise: 0.0,
        feat_nonneg: false,
        count_scale: 0.0,
        gen: GenKind::Grid { width: 1, height: 1 },
    }
}

/// Wrap an arbitrary symmetrized graph + features into a trainable
/// dataset: round-robin labels, every-other-vertex train mask (vertex 0
/// always in so the loss is never empty), the rest as test.
fn dataset_for(csr: Csr, f: usize, features: Vec<f32>) -> LoadedDataset {
    let n = csr.num_rows();
    let classes = 2;
    let labels: Vec<u32> = (0..n).map(|i| (i % classes) as u32).collect();
    let train: Vec<bool> = (0..n).map(|i| i == 0 || i % 3 != 1).collect();
    let test: Vec<bool> = train.iter().map(|t| !t).collect();
    let coo = csr.to_coo();
    LoadedDataset {
        spec: spec_for(n, f, classes),
        adj: csr,
        coo,
        features,
        labels,
        split: Split { train: train.clone(), val: vec![false; n], test },
    }
}

/// The same graph family `shard_equivalence.rs` uses: tiny symmetrized
/// graphs with optional hub vertex, half2-padded feature widths, possibly
/// zero-degree vertices before the added self loop.
fn arb_graph() -> impl Strategy<Value = (Csr, usize, Vec<f32>)> {
    (2usize..24, 1usize..4, 0usize..2)
        .prop_flat_map(|(n, fhalf, hub)| {
            let f = 2 * fhalf;
            let edge = (0..n as VertexId, 0..n as VertexId);
            (
                Just(n),
                Just(f),
                Just(hub),
                prop::collection::vec(edge, 0..64),
                prop::collection::vec(-1.0f32..1.0, n * f),
            )
        })
        .prop_map(|(n, f, hub, mut edges, feats)| {
            if hub == 1 {
                for v in 1..n as VertexId {
                    edges.push((0, v));
                }
            }
            let csr = Csr::from_edges(n, n, &edges).symmetrized_with_self_loops();
            (csr, f, feats)
        })
}

fn bits(losses: &[f32]) -> Vec<u32> {
    losses.iter().map(|l| l.to_bits()).collect()
}

fn cfg(precision: PrecisionMode, shards: usize) -> TrainConfig {
    TrainConfig {
        model: ModelKind::Gcn,
        precision,
        epochs: 3,
        hidden: 4,
        lr: 0.02,
        seed: 5,
        shards,
        ..TrainConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Replay reproduces eager training bit-for-bit on arbitrary graphs:
    /// both precisions, shards {1, 4}, under the cost model and under the
    /// thread-pool executor at the CI-pinned `HALFGNN_THREADS`.
    #[test]
    fn replay_losses_are_bit_identical_on_arbitrary_graphs(
        (csr, f, feats) in arb_graph()
    ) {
        let data = dataset_for(csr, f, feats);
        for precision in [PrecisionMode::Float, PrecisionMode::HalfGnn] {
            for shards in [1usize, 4] {
                let base = cfg(precision, shards);
                let eager = train(&data, &base);
                let replay = train(&data, &TrainConfig { replay: true, ..base.clone() });
                prop_assert_eq!(
                    bits(&eager.losses),
                    bits(&replay.losses),
                    "{:?} shards={} replay diverged", precision, shards
                );
                prop_assert_eq!(eager.final_train_accuracy, replay.final_train_accuracy);
                let s = replay.replay.expect("replay run must report a summary");
                prop_assert!(s.nodes > 0 && s.peak_bytes <= s.eager_bytes);
                // Only the half pipeline resolves kernel plans; float
                // kernels are plan-free and capture an empty plan stream.
                if precision == PrecisionMode::HalfGnn {
                    prop_assert!(s.plans > 0, "half capture resolved no plans");
                }
                // Fast exec (HALFGNN_THREADS-sized pool) over the same
                // captured graph: still the eager bits.
                let fast = train(
                    &data,
                    &TrainConfig {
                        replay: true,
                        exec: ExecMode::fast_with_threads(0),
                        ..base.clone()
                    },
                );
                prop_assert_eq!(
                    bits(&eager.losses),
                    bits(&fast.losses),
                    "{:?} shards={} fast replay diverged", precision, shards
                );
            }
        }
    }

    /// Replay under a tuner: pre-resolved tuned plans must replay the
    /// tuned eager run exactly (plans are captured after tuning, so the
    /// tuner's choice — not the default — is what replays).
    #[test]
    fn tuned_replay_matches_tuned_eager(
        (csr, f, feats) in arb_graph()
    ) {
        let data = dataset_for(csr, f, feats);
        let base = TrainConfig {
            tuning: Tuning::Auto,
            ..cfg(PrecisionMode::HalfGnn, 2)
        };
        let eager = train(&data, &base);
        let replay = train(&data, &TrainConfig { replay: true, ..base });
        prop_assert_eq!(bits(&eager.losses), bits(&replay.losses));
    }
}

/// A pure star graph — the most lopsided capture the partitioner can
/// produce — replayed sharded with the attention model, where the plan
/// stream (SDDMM + attn fusion decisions) is at its densest.
#[test]
fn star_graph_gat_replay_is_bit_identical_sharded() {
    let n: usize = 33;
    let f = 4;
    let edges: Vec<(VertexId, VertexId)> = (1..n as VertexId).map(|v| (0, v)).collect();
    let csr = Csr::from_edges(n, n, &edges).symmetrized_with_self_loops();
    let feats: Vec<f32> = (0..n * f).map(|i| ((i % 9) as f32 - 4.0) * 0.1).collect();
    let data = dataset_for(csr, f, feats);
    for fusion in [false, true] {
        let base = TrainConfig {
            model: ModelKind::Gat,
            fusion,
            shards: 4,
            ..cfg(PrecisionMode::HalfGnn, 4)
        };
        let eager = train(&data, &base);
        let replay = train(&data, &TrainConfig { replay: true, ..base });
        assert_eq!(bits(&eager.losses), bits(&replay.losses), "fusion={fusion}");
        assert!(replay.replay.unwrap().plans > 0);
    }
}
