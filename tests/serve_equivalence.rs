//! Serving-equivalence harness: the coalescing tentpole's correctness
//! proof, plus cache-invalidation soundness.
//!
//! Property 1 — **coalescing is bitwise-invisible**: for ANY symmetric
//! graph (including zero-degree vertices and hub vertices), any request
//! multiset, and both serving precisions, one batched forward returns
//! exactly the bits each request gets when served alone. This is the
//! contract that lets the batcher fuse concurrent requests into one
//! kernel launch per layer without perturbing anyone's answer.
//!
//! Property 2 — **invalidation is sound**: after an edge insert through
//! the delta overlay, every cached embedding whose fresh recomputation
//! changed has been evicted, and every surviving entry is bitwise equal
//! to its fresh value (f32 cache, so storage adds no quantization).

use halfgnn::graph::{Csr, VertexId};
use halfgnn::nn::models::PrecisionMode;
use halfgnn::nn::params::TwoLayerParams;
use halfgnn::serve::{CachePrecision, ServeConfig, ServeEngine};
use halfgnn::sim::DeviceConfig;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Arbitrary symmetric graph (NO forced self loops, so zero-degree
/// vertices survive), even feature width, features, a request multiset
/// (duplicates welcome), and one candidate edge to insert.
#[allow(clippy::type_complexity)]
fn arb_serving_case(
) -> impl Strategy<Value = (Csr, usize, Vec<f32>, Vec<VertexId>, (VertexId, VertexId))> {
    (3usize..20, 1usize..4, 0usize..2)
        .prop_flat_map(|(n, fhalf, hub)| {
            let f = 2 * fhalf; // half serving needs half2-padded widths
            let edge = (0..n as VertexId, 0..n as VertexId);
            let req = 0..n as VertexId;
            (
                Just(n),
                Just(f),
                Just(hub),
                prop::collection::vec(edge.clone(), 0..48),
                prop::collection::vec(-1.0f32..1.0, n * f),
                prop::collection::vec(req, 1..6),
                edge,
            )
        })
        .prop_map(|(n, f, hub, mut pairs, feats, requests, ins)| {
            if hub == 1 {
                for v in 1..n as VertexId {
                    pairs.push((0, v));
                }
            }
            // Symmetrize by hand (both directions, no self loops, no
            // duplicates) so the graph satisfies GraphView's symmetry
            // contract while keeping untouched vertices at degree zero.
            let undirected: BTreeSet<(VertexId, VertexId)> = pairs
                .into_iter()
                .filter(|&(u, v)| u != v)
                .map(|(u, v)| (u.min(v), u.max(v)))
                .collect();
            let edges: Vec<(VertexId, VertexId)> =
                undirected.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect();
            let csr = Csr::from_edges(n, n, &edges);
            (csr, f, feats, requests, ins)
        })
}

fn engine<'d>(
    dev: &'d DeviceConfig,
    csr: &Csr,
    x: &[f32],
    f: usize,
    precision: PrecisionMode,
    cfg: ServeConfig,
) -> ServeEngine<'d> {
    let params = TwoLayerParams::new(f, 4, 2, 7);
    ServeEngine::new(dev, csr, x, f, params, ServeConfig { precision, ..cfg }).expect("engine")
}

fn bits(rows: &[Vec<f32>]) -> Vec<Vec<u32>> {
    rows.iter().map(|r| r.iter().map(|v| v.to_bits()).collect()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// One coalesced batch == each request alone, bitwise, float and half.
    #[test]
    fn coalesced_forward_is_bitwise_equal_to_sequential(
        (csr, f, x, requests, _ins) in arb_serving_case()
    ) {
        let dev = DeviceConfig::a100_like();
        for precision in [PrecisionMode::Float, PrecisionMode::HalfGnn] {
            let mut batched = engine(&dev, &csr, &x, f, precision, ServeConfig::default());
            let all = batched.embed(&requests);
            let mut sequential = engine(&dev, &csr, &x, f, precision, ServeConfig::default());
            for (k, &v) in requests.iter().enumerate() {
                let one = sequential.embed(&[v]);
                prop_assert_eq!(
                    bits(&all.outputs[k..k + 1]),
                    bits(&one.outputs[0..1]),
                    "{:?}: vertex {} diverged under coalescing (batch of {})",
                    precision, v, requests.len()
                );
            }
        }
    }

    /// After an edge insert, no cached embedding is stale: changed ones
    /// are gone, surviving ones are bitwise-fresh.
    #[test]
    fn edge_insert_invalidation_is_sound(
        (csr, f, x, _requests, (u, v)) in arb_serving_case()
    ) {
        let dev = DeviceConfig::a100_like();
        let cfg = ServeConfig {
            cache_bytes: 1 << 20,
            cache_precision: CachePrecision::F32,
            ..ServeConfig::default()
        };
        let mut e = engine(&dev, &csr, &x, f, PrecisionMode::Float, cfg);
        let all: Vec<VertexId> = (0..csr.num_rows() as VertexId).collect();
        let before = e.embed(&all);
        for (&w, out) in all.iter().zip(&before.outputs) {
            e.cache_mut().insert(w, out);
        }
        e.insert_edge(u, v); // may be a no-op if the edge existed
        let after = e.embed(&all);
        for (k, &w) in all.iter().enumerate() {
            let changed = bits(&before.outputs[k..k + 1]) != bits(&after.outputs[k..k + 1]);
            if changed {
                prop_assert!(
                    !e.cache().contains(w),
                    "vertex {} changed after inserting ({}, {}) but survived in the cache",
                    w, u, v
                );
            } else if let Some(cached) = e.cache().peek(w) {
                prop_assert_eq!(
                    bits(&[cached][..]),
                    bits(&after.outputs[k..k + 1]),
                    "vertex {} survived with stale bits", w
                );
            }
        }
    }
}

/// The forward-only path plans a working set that is a small fraction of
/// a real training step's peak on the same dataset — no gradient,
/// optimizer, or activation-stash buffers exist on the serving path.
#[test]
fn inference_footprint_is_a_fraction_of_training_peak() {
    use halfgnn::graph::datasets::Dataset;
    use halfgnn::nn::models::GcnNorm;
    use halfgnn::nn::snapshot::ModelSnapshot;
    use halfgnn::nn::trainer::{train_on, ModelKind, TrainConfig};

    let dev = DeviceConfig::a100_like();
    let data = Dataset::by_id("G1").expect("G1").load(42);
    let tmp = std::env::temp_dir()
        .join(format!("serve-equivalence-footprint-{}.snap", std::process::id()));
    let report = train_on(
        &dev,
        &data,
        &TrainConfig {
            model: ModelKind::Gcn,
            precision: PrecisionMode::Float,
            epochs: 1,
            hidden: 16,
            gcn_norm: GcnNorm::Right,
            snapshot_path: Some(tmp.to_string_lossy().into_owned()),
            ..TrainConfig::default()
        },
    );
    let snap = ModelSnapshot::load(&tmp).expect("trainer snapshot loads");
    std::fs::remove_file(&tmp).ok();

    let mut e = ServeEngine::from_snapshot(
        &dev,
        &data.adj,
        &data.features,
        data.spec.feat,
        &snap,
        ServeConfig::default(),
    )
    .expect("engine");
    let probe: Vec<VertexId> = (0..8).collect();
    let inf = e.inference_footprint(&probe);
    assert!(inf.peak_bytes > 0);
    assert!(
        (inf.peak_bytes as f64) < 0.25 * report.peak_memory_bytes as f64,
        "inference plan {} bytes vs training peak {} bytes",
        inf.peak_bytes,
        report.peak_memory_bytes
    );
}

/// Steady-state capture/replay serves the same bits as eager execution,
/// batch after batch (the PR6 replay contract, serving edition).
#[test]
fn serve_replay_matches_eager_bitwise() {
    let edges: Vec<(VertexId, VertexId)> =
        (0..11u32).flat_map(|i| [(i, i + 1), (i + 1, i)]).collect();
    let csr = Csr::from_edges(12, 12, &edges);
    let x: Vec<f32> = (0..12 * 4).map(|i| (i as f32 * 0.37).sin()).collect();
    let dev = DeviceConfig::a100_like();
    let params = TwoLayerParams::new(4, 4, 2, 5);
    let mut replayed = ServeEngine::new(
        &dev,
        &csr,
        &x,
        4,
        params.clone(),
        ServeConfig { replay: true, batch_window: 1, ..ServeConfig::default() },
    )
    .expect("replay engine");
    let mut eager =
        ServeEngine::new(&dev, &csr, &x, 4, params, ServeConfig::default()).expect("eager engine");
    for _ in 0..4 {
        let a = replayed.embed(&[6]);
        let b = eager.embed(&[6]);
        assert_eq!(bits(&a.outputs), bits(&b.outputs));
    }
    assert_eq!(replayed.stats.replayed_batches, 3);
}
