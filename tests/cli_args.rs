//! CLI argument validation for `halfgnn-train` and `halfgnn-serve`: every
//! unknown value must be rejected with exit code 2 and a message naming
//! the bad flag — never silently fall back to a default and train (or
//! serve) the wrong thing.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_halfgnn-train"))
        .args(args)
        .output()
        .expect("spawn halfgnn-train")
}

fn run_serve(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_halfgnn-serve"))
        .args(args)
        .output()
        .expect("spawn halfgnn-serve")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn unknown_partition_strategy_is_rejected_with_a_clear_error() {
    let out = run(&["--dataset", "cora", "--shards", "2", "--partition", "zigzag"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("unknown partition strategy"), "error must name the problem, got: {err}");
    assert!(err.contains("contiguous|balanced"), "error must list the valid values: {err}");
}

#[test]
fn replication_misuses_are_rejected_with_named_errors() {
    for (args, needle) in [
        // Not a number at all: flag-level parse failure.
        (
            vec!["--dataset", "cora", "--replication", "two"],
            "unknown replication value (want a positive integer)",
        ),
        // Parses, but zero replicates nothing.
        (
            vec!["--dataset", "cora", "--partition", "1p5d", "--replication", "0"],
            "--replication must be at least 1",
        ),
        // Replication only means something under the 1.5D partition.
        (
            vec!["--dataset", "cora", "--shards", "4", "--replication", "2"],
            "--replication requires --partition 1p5d",
        ),
        // Replication groups must be whole: 3 shards cannot hold c = 2.
        (
            vec!["--dataset", "cora", "--shards", "3", "--partition", "1p5d"],
            "--shards divisible by the replication factor",
        ),
    ] {
        let out = run(&args);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {}", stderr(&out));
        let err = stderr(&out);
        assert!(err.contains(needle), "{args:?} missing {needle:?}: {err}");
        assert!(!err.contains("panicked"), "{args:?} must not panic: {err}");
    }
}

#[test]
fn usage_lists_the_one5d_partition_and_replication() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("--replication"), "usage must document --replication: {err}");
    assert!(err.contains("1p5d"), "usage must document the 1p5d partition: {err}");
}

#[test]
fn one5d_training_runs_and_reports_overlap_and_the_halo_cache() {
    let out = run(&[
        "--dataset",
        "cora",
        "--model",
        "gcn",
        "--precision",
        "halfgnn",
        "--epochs",
        "2",
        "--shards",
        "4",
        "--partition",
        "1p5d",
        "--replication",
        "2",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("comms/epoch"), "missing comms line: {stdout}");
    assert!(stdout.contains("comms overlap"), "missing overlap line: {stdout}");
    assert!(stdout.contains("overlapped"), "missing overlapped time: {stdout}");
    assert!(stdout.contains("halo cache"), "missing halo-cache line: {stdout}");
}

#[test]
fn serve_rejects_indivisible_one5d_shards() {
    let out = run_serve(&["--dataset", "cora", "--shards", "3", "--partition", "1p5d"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(
        err.contains("--shards divisible by the replication factor"),
        "must name the divisibility rule: {err}"
    );
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn unknown_topology_is_rejected_with_a_clear_error() {
    let out = run(&["--dataset", "cora", "--shards", "2", "--topology", "torus"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("unknown topology"), "error must name the problem, got: {err}");
    assert!(err.contains("ring|alltoall"), "error must list the valid values: {err}");
}

#[test]
fn unknown_flags_models_and_zero_shards_are_rejected() {
    for (args, needle) in [
        (vec!["--dataset", "cora", "--frobnicate"], "unknown flag"),
        (vec!["--dataset", "cora", "--model", "transformer"], "unknown model"),
        (vec!["--dataset", "cora", "--precision", "f64"], "unknown precision"),
        (vec!["--dataset", "cora", "--shards", "0"], "--shards must be at least 1"),
        (vec!["--dataset", "cora", "--tuning", "maybe"], "unknown tuning policy"),
    ] {
        let out = run(&args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(stderr(&out).contains(needle), "{args:?} missing {needle:?}: {}", stderr(&out));
    }
}

#[test]
fn replay_with_batch_size_is_a_named_config_error_not_a_divergence_panic() {
    // Capture assumes a fixed epoch kernel sequence; mini-batch sampling
    // breaks that. The combination must die at config validation with a
    // message naming both flags and the capture-refusal reason — never
    // reach the ExecGraph replay machinery and panic on divergence.
    let out = run(&["--dataset", "cora", "--epochs", "2", "--replay", "--batch-size", "64"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("config error"), "must be a config error: {err}");
    assert!(
        err.contains("--replay") && err.contains("--batch-size"),
        "must name both flags: {err}"
    );
    assert!(err.contains("capture refused"), "must carry the capture-refusal reason: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn batch_flag_misuses_are_rejected_with_named_errors() {
    for (args, needle) in [
        (vec!["--dataset", "cora", "--batch-size", "0"], "--batch-size must be at least 1"),
        (vec!["--dataset", "cora", "--stream-edges", "50"], "--stream-edges requires --batch-size"),
        (
            vec!["--dataset", "cora", "--batch-size", "64", "--fanout", "0"],
            "--fanout must be at least 1",
        ),
        (
            vec!["--dataset", "cora", "--batch-size", "64", "--shards", "2"],
            "--shards > 1 is incompatible with --batch-size",
        ),
    ] {
        let out = run(&args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(stderr(&out).contains(needle), "{args:?} missing {needle:?}: {}", stderr(&out));
    }
}

#[test]
fn minibatch_training_runs_and_reports_sampling() {
    let out = run(&[
        "--dataset",
        "cora",
        "--model",
        "gcn",
        "--precision",
        "halfgnn",
        "--epochs",
        "2",
        "--batch-size",
        "256",
        "--fanout",
        "5",
        "--stream-edges",
        "50",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("sampling"), "missing sampling summary: {stdout}");
    assert!(stdout.contains("streamed edges"), "missing streaming line: {stdout}");
    assert!(stdout.contains("batches/epoch"), "missing batch count: {stdout}");
}

#[test]
fn usage_lists_the_batch_flags() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    for flag in ["--batch-size", "--fanout", "--stream-edges"] {
        assert!(err.contains(flag), "usage must document {flag}: {err}");
    }
}

#[test]
fn usage_lists_the_replay_flag() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--replay"), "usage must document --replay: {}", stderr(&out));
}

#[test]
fn bad_loss_scale_is_a_named_config_error() {
    for scale in ["0", "-2", "inf", "nan"] {
        let out = run(&["--dataset", "cora", "--loss-scale", scale]);
        assert_eq!(out.status.code(), Some(2), "--loss-scale {scale}: {}", stderr(&out));
        let err = stderr(&out);
        assert!(
            err.contains("--loss-scale must be a positive, finite value"),
            "--loss-scale {scale} missing named error: {err}"
        );
        assert!(!err.contains("panicked"), "--loss-scale {scale} must not panic: {err}");
    }
}

#[test]
fn save_snapshot_writes_a_loadable_file_and_is_in_usage() {
    let out = run(&["--help"]);
    assert!(stderr(&out).contains("--save-snapshot"), "usage must document --save-snapshot");

    let path = std::env::temp_dir().join(format!("cli-args-snap-{}.snap", std::process::id()));
    let path_s = path.to_string_lossy().into_owned();
    let out =
        run(&["--dataset", "cora", "--model", "gcn", "--epochs", "2", "--save-snapshot", &path_s]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("snapshot"), "missing snapshot line: {stdout}");
    let text = std::fs::read_to_string(&path).expect("snapshot file exists");
    assert!(text.starts_with("halfgnn-snapshot v1"), "bad snapshot header");
    assert!(text.ends_with("end\n"), "snapshot not terminated");
    std::fs::remove_file(&path).ok();
}

#[test]
fn serve_rejects_illegal_configs_with_named_errors() {
    for (args, needle) in [
        (vec!["--dataset", "cora", "--hops", "0"], "--hops must be at least the model depth"),
        (vec!["--dataset", "cora", "--hops", "1"], "--hops must be at least the model depth"),
        (vec!["--dataset", "cora", "--batch-window", "0"], "--batch-window must be at least 1"),
        (vec!["--dataset", "cora", "--shards", "0"], "--shards must be at least 1"),
        (vec!["--dataset", "cora", "--precision", "halfnaive"], "training-only modes"),
        (vec!["--dataset", "cora", "--precision", "nodiscretize"], "training-only modes"),
        (vec!["--dataset", "cora", "--precision", "i8"], "training-only modes"),
        (
            vec!["--dataset", "cora", "--replay", "--batch-window", "4"],
            "--replay requires --batch-window 1",
        ),
        (vec!["--dataset", "cora", "--frobnicate"], "unknown flag"),
        (vec!["--dataset", "cora", "--precision", "f64"], "unknown precision"),
        (vec!["--dataset", "cora", "--cache-precision", "f8"], "unknown cache precision"),
        (vec!["--dataset", "cora", "--topology", "torus"], "unknown topology"),
        (vec!["--dataset", "cora", "--partition", "zigzag"], "unknown partition strategy"),
    ] {
        let out = run_serve(&args);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {}", stderr(&out));
        let err = stderr(&out);
        assert!(err.contains(needle), "{args:?} missing {needle:?}: {err}");
        assert!(!err.contains("panicked"), "{args:?} must not panic: {err}");
    }
}

#[test]
fn serve_replay_error_carries_the_capture_refusal_reason() {
    let out = run_serve(&["--dataset", "cora", "--replay", "--batch-window", "4"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("config error"), "must be a config error: {err}");
    assert!(err.contains("capture refused"), "must carry the refusal reason: {err}");
}

#[test]
fn serve_missing_snapshot_file_is_a_clean_error() {
    let out = run_serve(&["--dataset", "cora", "--snapshot", "/nonexistent/missing.snap"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("could not load snapshot"), "must name the failure: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn serve_quick_train_closed_loop_reports_latency_and_cache() {
    let out = run_serve(&[
        "--dataset",
        "cora",
        "--epochs",
        "2",
        "--requests",
        "120",
        "--cache-kb",
        "8",
        "--shards",
        "2",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    for line in ["throughput", "latency p99", "cache", "halo traffic", "inference plan"] {
        assert!(stdout.contains(line), "missing {line:?} in serve output: {stdout}");
    }
}

#[test]
fn serve_consumes_a_trainer_written_snapshot() {
    let path = std::env::temp_dir().join(format!("cli-args-handoff-{}.snap", std::process::id()));
    let path_s = path.to_string_lossy().into_owned();
    let out = run(&["--dataset", "cora", "--epochs", "2", "--save-snapshot", &path_s]);
    assert_eq!(out.status.code(), Some(0), "train stderr: {}", stderr(&out));
    let out = run_serve(&["--dataset", "cora", "--snapshot", &path_s, "--requests", "60"]);
    assert_eq!(out.status.code(), Some(0), "serve stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("throughput"), "serve must report throughput: {stdout}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn serve_usage_lists_the_serving_flags() {
    let out = run_serve(&["--help"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    for flag in
        ["--snapshot", "--batch-window", "--cache-kb", "--cache-precision", "--hops", "--replay"]
    {
        assert!(err.contains(flag), "serve usage must document {flag}: {err}");
    }
}

#[test]
fn i8_precision_trains_but_is_rejected_by_serve_with_a_named_error() {
    // Training accepts the INT8 wire + kernel mode end-to-end.
    let out = run(&["--dataset", "cora", "--model", "gcn", "--precision", "i8", "--epochs", "2"]);
    assert_eq!(out.status.code(), Some(0), "train --precision i8 stderr: {}", stderr(&out));

    // Serving refuses it at config validation: stochastic rounding makes
    // repeated identical requests non-reproducible.
    let out = run_serve(&["--dataset", "cora", "--precision", "i8"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("training-only modes"), "must name the rejection class: {err}");
    assert!(err.contains("i8"), "must name the offending mode: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn i8_block_misuses_are_named_config_errors_not_panics() {
    for (args, needle) in [
        // The knob without the mode: the mode mismatch is the root cause.
        (vec!["--dataset", "cora", "--i8-block", "64"], "--i8-block requires --precision i8"),
        // Not a power of two.
        (
            vec!["--dataset", "cora", "--precision", "i8", "--i8-block", "48"],
            "--i8-block must be a power of two between 16 and 256",
        ),
        // Degenerate and out-of-range buckets.
        (
            vec!["--dataset", "cora", "--precision", "i8", "--i8-block", "0"],
            "--i8-block must be a power of two between 16 and 256",
        ),
        (
            vec!["--dataset", "cora", "--precision", "i8", "--i8-block", "512"],
            "--i8-block must be a power of two between 16 and 256",
        ),
    ] {
        let out = run(&args);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {}", stderr(&out));
        let err = stderr(&out);
        assert!(err.contains("config error"), "{args:?} must die at config time: {err}");
        assert!(err.contains(needle), "{args:?} missing {needle:?}: {err}");
        assert!(!err.contains("panicked"), "{args:?} must not panic: {err}");
    }
}

#[test]
fn usage_lists_the_i8_precision_and_block_flag() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("i8"), "train usage must document the i8 precision: {err}");
    assert!(err.contains("--i8-block"), "train usage must document --i8-block: {err}");
}

#[test]
fn replay_flag_trains_and_reports_the_captured_graph() {
    let out = run(&[
        "--dataset",
        "cora",
        "--model",
        "gcn",
        "--precision",
        "halfgnn",
        "--epochs",
        "3",
        "--replay",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("replay graph"), "missing replay summary: {stdout}");
    assert!(stdout.contains("arena plan"), "missing arena line: {stdout}");
}
