//! CLI argument validation for `halfgnn-train`: every unknown value must
//! be rejected with exit code 2 and a message naming the bad flag —
//! never silently fall back to a default and train the wrong thing.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_halfgnn-train"))
        .args(args)
        .output()
        .expect("spawn halfgnn-train")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn unknown_partition_strategy_is_rejected_with_a_clear_error() {
    let out = run(&["--dataset", "cora", "--shards", "2", "--partition", "zigzag"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("unknown partition strategy"), "error must name the problem, got: {err}");
    assert!(err.contains("contiguous|balanced"), "error must list the valid values: {err}");
}

#[test]
fn unknown_topology_is_rejected_with_a_clear_error() {
    let out = run(&["--dataset", "cora", "--shards", "2", "--topology", "torus"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("unknown topology"), "error must name the problem, got: {err}");
    assert!(err.contains("ring|alltoall"), "error must list the valid values: {err}");
}

#[test]
fn unknown_flags_models_and_zero_shards_are_rejected() {
    for (args, needle) in [
        (vec!["--dataset", "cora", "--frobnicate"], "unknown flag"),
        (vec!["--dataset", "cora", "--model", "transformer"], "unknown model"),
        (vec!["--dataset", "cora", "--precision", "f64"], "unknown precision"),
        (vec!["--dataset", "cora", "--shards", "0"], "--shards must be at least 1"),
        (vec!["--dataset", "cora", "--tuning", "maybe"], "unknown tuning policy"),
    ] {
        let out = run(&args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(stderr(&out).contains(needle), "{args:?} missing {needle:?}: {}", stderr(&out));
    }
}

#[test]
fn replay_with_batch_size_is_a_named_config_error_not_a_divergence_panic() {
    // Capture assumes a fixed epoch kernel sequence; mini-batch sampling
    // breaks that. The combination must die at config validation with a
    // message naming both flags and the capture-refusal reason — never
    // reach the ExecGraph replay machinery and panic on divergence.
    let out = run(&["--dataset", "cora", "--epochs", "2", "--replay", "--batch-size", "64"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("config error"), "must be a config error: {err}");
    assert!(
        err.contains("--replay") && err.contains("--batch-size"),
        "must name both flags: {err}"
    );
    assert!(err.contains("capture refused"), "must carry the capture-refusal reason: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn batch_flag_misuses_are_rejected_with_named_errors() {
    for (args, needle) in [
        (vec!["--dataset", "cora", "--batch-size", "0"], "--batch-size must be at least 1"),
        (vec!["--dataset", "cora", "--stream-edges", "50"], "--stream-edges requires --batch-size"),
        (
            vec!["--dataset", "cora", "--batch-size", "64", "--fanout", "0"],
            "--fanout must be at least 1",
        ),
        (
            vec!["--dataset", "cora", "--batch-size", "64", "--shards", "2"],
            "--shards > 1 is incompatible with --batch-size",
        ),
    ] {
        let out = run(&args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(stderr(&out).contains(needle), "{args:?} missing {needle:?}: {}", stderr(&out));
    }
}

#[test]
fn minibatch_training_runs_and_reports_sampling() {
    let out = run(&[
        "--dataset",
        "cora",
        "--model",
        "gcn",
        "--precision",
        "halfgnn",
        "--epochs",
        "2",
        "--batch-size",
        "256",
        "--fanout",
        "5",
        "--stream-edges",
        "50",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("sampling"), "missing sampling summary: {stdout}");
    assert!(stdout.contains("streamed edges"), "missing streaming line: {stdout}");
    assert!(stdout.contains("batches/epoch"), "missing batch count: {stdout}");
}

#[test]
fn usage_lists_the_batch_flags() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    for flag in ["--batch-size", "--fanout", "--stream-edges"] {
        assert!(err.contains(flag), "usage must document {flag}: {err}");
    }
}

#[test]
fn usage_lists_the_replay_flag() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--replay"), "usage must document --replay: {}", stderr(&out));
}

#[test]
fn replay_flag_trains_and_reports_the_captured_graph() {
    let out = run(&[
        "--dataset",
        "cora",
        "--model",
        "gcn",
        "--precision",
        "halfgnn",
        "--epochs",
        "3",
        "--replay",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("replay graph"), "missing replay summary: {stdout}");
    assert!(stdout.contains("arena plan"), "missing arena line: {stdout}");
}
