//! End-to-end autotuning: `TrainConfig::tuning` wired through the whole
//! trainer (satellites c/d, acceptance gates on Off/Auto equivalence).
//!
//! - `Off` is the default and dispatches the static plans — two runs are
//!   bit-identical, and `Auto` must stay within the oracle's tolerance of
//!   that trajectory (plans only pass the tuner if the oracle accepts
//!   their output, so training cannot drift further than the band).
//! - `Cached` round-trips plans through the JSON file: the second process
//!   re-evaluates nothing and reproduces the first's losses exactly.

use halfgnn::graph::datasets::Dataset;
use halfgnn::nn::trainer::{train, ModelKind, PrecisionMode, TrainConfig, Tuning};

fn cfg(model: ModelKind, tuning: Tuning, epochs: usize) -> TrainConfig {
    TrainConfig {
        model,
        precision: PrecisionMode::HalfGnn,
        epochs,
        hidden: 16,
        lr: 0.02,
        seed: 1,
        tuning,
        ..TrainConfig::default()
    }
}

#[test]
fn tuning_defaults_to_off_and_off_is_deterministic() {
    assert_eq!(TrainConfig::default().tuning, Tuning::Off);
    let data = Dataset::cora().load(42);
    let a = train(&data, &cfg(ModelKind::Gcn, Tuning::Off, 4));
    let b = train(&data, &cfg(ModelKind::Gcn, Tuning::Off, 4));
    assert_eq!(
        a.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        b.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
    );
    assert!(a.tuning_counters.is_none(), "Off must not instantiate a tuner");
}

#[test]
fn auto_tuning_stays_within_oracle_tolerance_of_off() {
    let data = Dataset::cora().load(42);
    let off = train(&data, &cfg(ModelKind::Gcn, Tuning::Off, 8));
    let auto = train(&data, &cfg(ModelKind::Gcn, Tuning::Auto, 8));
    assert!(auto.nan_epoch.is_none(), "tuned plans must not destabilize training");
    for (e, (a, b)) in off.losses.iter().zip(&auto.losses).enumerate() {
        assert!((a - b).abs() < 0.05 + 0.02 * a.abs(), "epoch {e}: off {a} vs auto {b}");
    }
    let c = auto.tuning_counters.expect("Auto must report plan-cache counters");
    assert!(c.misses > 0, "first epoch must tune");
    assert!(c.evaluations > c.misses, "each miss tries several candidates");
    // Epochs 1..7 re-resolve the same keys: hits dominate after warm-up.
    assert!(c.hits >= c.misses, "hits {} vs misses {}", c.hits, c.misses);
}

#[test]
fn auto_tuning_covers_gat_sddmm_dispatch() {
    let data = Dataset::cora().load(42);
    let r = train(&data, &cfg(ModelKind::Gat, Tuning::Auto, 2));
    assert!(r.nan_epoch.is_none());
    let c = r.tuning_counters.unwrap();
    // GAT resolves SpMMve (forward + backward feature dims) and SDDMM
    // keys: strictly more distinct plans than GCN's single-op pattern.
    assert!(c.misses >= 2, "GAT must tune both SpMMve and SDDMM, got {} misses", c.misses);
}

#[test]
fn cached_tuning_round_trips_through_the_json_file() {
    let dir = std::env::temp_dir().join("halfgnn-e2e-tuning");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("plans.json");
    std::fs::remove_file(&path).ok();
    let tuning = Tuning::Cached(path.to_string_lossy().into_owned());

    let data = Dataset::cora().load(42);
    let first = train(&data, &cfg(ModelKind::Gcn, tuning.clone(), 3));
    assert!(path.exists(), "Cached mode must write the plan file");
    let c1 = first.tuning_counters.unwrap();
    assert!(c1.evaluations > 0, "cold cache must evaluate candidates");

    let second = train(&data, &cfg(ModelKind::Gcn, tuning, 3));
    let c2 = second.tuning_counters.unwrap();
    assert_eq!(c2.evaluations, 0, "warm cache must evaluate nothing");
    assert_eq!(c2.misses, 0, "every key must hit the loaded cache");
    assert_eq!(
        first.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        second.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        "identical plans must reproduce identical losses"
    );
    std::fs::remove_file(&path).ok();
}
