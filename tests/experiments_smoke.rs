//! Smoke tests for the reproduction harness: every experiment runs in
//! quick mode and produces a well-formed, claim-consistent table.

use halfgnn_bench::experiments as exp;
use halfgnn_bench::Table;

fn parse_speedup(cell: &str) -> f64 {
    cell.trim_end_matches('x').trim_start_matches("**").parse().unwrap_or(f64::NAN)
}

fn geomean_note_value(t: &Table) -> f64 {
    // Notes embed "geomean ... = N.NNx"; pull the first such figure.
    for n in &t.notes {
        if let Some(pos) = n.find('=') {
            let tail = &n[pos + 1..];
            let tok = tail.split_whitespace().next().unwrap_or("");
            if let Ok(v) = tok.trim_end_matches('x').parse::<f64>() {
                return v;
            }
        }
    }
    f64::NAN
}

#[test]
fn fig1a_half_spmm_slower_than_float() {
    let t = exp::fig1::fig1a(true);
    assert!(!t.rows.is_empty());
    let g = geomean_note_value(&t);
    assert!(g > 1.5, "cuSPARSE-half should be clearly slower, got {g}");
}

#[test]
fn fig1b_half_sddmm_no_speedup() {
    let t = exp::fig1::fig1b(true);
    let g = geomean_note_value(&t);
    assert!((0.9..=1.2).contains(&g), "DGL-half SDDMM ratio should be ~1, got {g}");
}

#[test]
fn fig12_half8_wins() {
    let t = exp::fig12::run(true);
    for row in &t.rows {
        for cell in &row[1..] {
            let s = parse_speedup(cell);
            assert!(s > 1.0, "half8 must beat half2: {cell}");
        }
    }
}

#[test]
fn fig13_non_atomic_wins() {
    let t = exp::fig13::run(true);
    for row in &t.rows {
        let s = parse_speedup(row.last().unwrap());
        assert!(s > 1.0, "staged must beat atomic: {:?}", row);
    }
}

#[test]
fn fig14_half2_adaptation_wins() {
    let t = exp::fig14::run(true);
    for row in &t.rows {
        let s = parse_speedup(row.last().unwrap());
        assert!(s > 1.2, "Huang-half2 must clearly win: {:?}", row);
    }
}

#[test]
fn fig9_kernel_speedups_in_band() {
    let t = exp::fig9::run(true);
    let rows = &t.rows[..t.rows.len() - 1]; // last row is the geomean
    for row in rows {
        for cell in &row[1..] {
            let s = parse_speedup(cell);
            assert!(s > 1.5, "HalfGNN kernels should clearly win: {row:?}");
        }
    }
}

#[test]
fn fig10_utilization_ordering() {
    let t = exp::fig10_11::fig10(true);
    let bw: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
    // HalfGNN > cuSPARSE-float > cuSPARSE-half.
    assert!(bw[0] > bw[2] && bw[2] > bw[1], "BW ordering violated: {bw:?}");
}

#[test]
fn fig11_utilization_ordering() {
    let t = exp::fig10_11::fig11(true);
    let bw: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
    assert!(bw[0] > bw[1] && bw[0] > bw[2], "HalfGNN must lead: {bw:?}");
    assert!((bw[1] - bw[2]).abs() < 10.0, "baselines should be similar: {bw:?}");
}

#[test]
fn fig6_memory_saving_in_band() {
    let t = exp::fig6::run(true);
    let g = geomean_note_value(&t);
    assert!((1.8..=4.0).contains(&g), "memory saving {g} outside band");
}

#[test]
fn table1_lists_all_datasets() {
    let t = exp::table1::run(false);
    assert_eq!(t.rows.len(), 16);
}
