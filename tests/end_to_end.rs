//! End-to-end integration tests through the public facade: every model,
//! every precision system, plus the paper's headline claims in miniature.

use halfgnn::graph::datasets::Dataset;
use halfgnn::nn::trainer::{train, ModelKind, PrecisionMode, TrainConfig};

fn cfg(model: ModelKind, precision: PrecisionMode, epochs: usize) -> TrainConfig {
    TrainConfig { model, precision, epochs, hidden: 64, lr: 0.02, ..TrainConfig::default() }
}

#[test]
fn every_model_trains_under_every_system_on_citeseer() {
    let data = Dataset::citeseer().load(11);
    for model in [ModelKind::Gcn, ModelKind::Gat, ModelKind::Gin, ModelKind::Sage] {
        for precision in [PrecisionMode::Float, PrecisionMode::HalfNaive, PrecisionMode::HalfGnn] {
            let r = train(&data, &cfg(model, precision, 15));
            // Citeseer has no overflow-grade hubs: everything stays finite.
            assert!(
                r.nan_epoch.is_none(),
                "{model:?}/{precision:?} unexpectedly NaN'd at {:?}",
                r.nan_epoch
            );
            assert!(
                r.losses.first().unwrap() > r.losses.last().unwrap(),
                "{model:?}/{precision:?}: loss did not decrease"
            );
        }
    }
}

#[test]
fn headline_claim_accuracy_parity() {
    // Fig. 5 in miniature: HalfGNN ≈ float on a labeled dataset.
    let data = Dataset::cora().load(42);
    let f = train(&data, &cfg(ModelKind::Gcn, PrecisionMode::Float, 40));
    let h = train(&data, &cfg(ModelKind::Gcn, PrecisionMode::HalfGnn, 40));
    assert!(f.final_train_accuracy > 0.8, "float should learn: {}", f.final_train_accuracy);
    assert!(
        (f.final_train_accuracy - h.final_train_accuracy).abs() < 0.05,
        "parity violated: float {} vs halfgnn {}",
        f.final_train_accuracy,
        h.final_train_accuracy
    );
}

#[test]
fn headline_claim_naive_half_collapses_on_hub_graphs() {
    // Fig. 1c in miniature (SAGE shares GCN's mean-aggregation anatomy).
    let data = Dataset::reddit().load(42);
    for model in [ModelKind::Gcn, ModelKind::Gin, ModelKind::Sage] {
        let naive = train(&data, &cfg(model, PrecisionMode::HalfNaive, 3));
        assert!(naive.nan_epoch.is_some(), "{model:?} naive-half should NaN");
        let ours = train(&data, &cfg(model, PrecisionMode::HalfGnn, 3));
        assert!(ours.nan_epoch.is_none(), "{model:?} HalfGNN must stay finite");
    }
}

#[test]
fn overflow_provenance_names_the_first_overflowing_tensor() {
    // The differential-oracle acceptance criterion: on a hub dataset (the
    // Reddit/G15 stand-in) the naive-half run must not just NaN — its
    // report must say which tensor's conversion went non-finite first.
    let data = Dataset::reddit().load(42);
    let naive = train(&data, &cfg(ModelKind::Gcn, PrecisionMode::HalfNaive, 3));
    assert!(naive.nan_epoch.is_some(), "naive-half should NaN on Reddit hubs");
    let (epoch, ev) = naive.first_overflow().expect("provenance must capture the overflow");
    assert!(
        epoch <= naive.nan_epoch.unwrap(),
        "overflow (epoch {epoch}) must precede the NaN loss (epoch {:?})",
        naive.nan_epoch
    );
    // The site path identifies the layer and the kernel producing the
    // tensor, e.g. "gcn.layer1/cusparse_f16_spmmv".
    assert!(ev.site.contains("gcn.layer"), "site should name the layer: {}", ev.site);
    // The same model protected by HalfGNN kernels stays overflow-free.
    let ours = train(&data, &cfg(ModelKind::Gcn, PrecisionMode::HalfGnn, 3));
    assert!(
        ours.first_overflow().is_none(),
        "HalfGNN must be overflow-free, got {:?}",
        ours.first_overflow()
    );
}

#[test]
fn headline_claim_discretization_is_the_fix() {
    // §6.1.1 ablation in miniature: same kernels, post-reduction scaling,
    // and the collapse returns.
    let data = Dataset::reddit().load(42);
    let r = train(&data, &cfg(ModelKind::Gcn, PrecisionMode::HalfGnnNoDiscretize, 3));
    assert!(r.nan_epoch.is_some(), "post-reduction scaling should overflow");
}

#[test]
fn headline_claim_speed_and_memory() {
    // Figs. 7/8 + Fig. 6 in miniature on a mid-size skewed graph.
    let data = Dataset::hollywood09().load(42);
    let f = train(&data, &cfg(ModelKind::Gcn, PrecisionMode::Float, 1));
    let n = train(&data, &cfg(ModelKind::Gcn, PrecisionMode::HalfNaive, 1));
    let h = train(&data, &cfg(ModelKind::Gcn, PrecisionMode::HalfGnn, 1));
    assert!(
        h.epoch_time_us < n.epoch_time_us,
        "HalfGNN {} should beat naive-half {}",
        h.epoch_time_us,
        n.epoch_time_us
    );
    assert!(
        h.epoch_time_us < f.epoch_time_us,
        "HalfGNN {} should beat float {}",
        h.epoch_time_us,
        f.epoch_time_us
    );
    let ratio = f.peak_memory_bytes as f64 / h.peak_memory_bytes as f64;
    assert!(ratio > 1.8, "memory saving {ratio:.2}x below band");
}

#[test]
fn gat_survives_naive_half_but_pays_conversions() {
    // Fig. 1c shows GAT-half NOT collapsing; §3.1.2 shows it converting.
    let data = Dataset::reddit().load(42);
    let naive = train(&data, &cfg(ModelKind::Gat, PrecisionMode::HalfNaive, 2));
    assert!(naive.nan_epoch.is_none(), "GAT-half should survive (softmax bounds the weights)");
    let ours = train(&data, &cfg(ModelKind::Gat, PrecisionMode::HalfGnn, 2));
    assert!(
        naive.converted_elems_per_epoch > ours.converted_elems_per_epoch,
        "AMP should convert more ({} vs {})",
        naive.converted_elems_per_epoch,
        ours.converted_elems_per_epoch
    );
}

#[test]
fn determinism_across_runs() {
    let data = Dataset::pubmed().load(5);
    let a = train(&data, &cfg(ModelKind::Gcn, PrecisionMode::HalfGnn, 5));
    let b = train(&data, &cfg(ModelKind::Gcn, PrecisionMode::HalfGnn, 5));
    assert_eq!(a.losses, b.losses, "training must be bit-deterministic");
    assert_eq!(a.epoch_time_us, b.epoch_time_us, "modeled time must be deterministic");
}
