//! Cross-epoch halo-cache coherence: the cache is a *charging*
//! optimization — the gather kernel always runs, so values are always
//! fresh — and these properties pin the ledger side of that contract:
//!
//! * a warm epoch over unchanged features charges zero halo bytes and
//!   serves every wire row bitwise what a cold exchange would fetch;
//! * after a [`DeltaCsr`] insert plus in-ball invalidation, exactly the
//!   stale wire rows are refetched and recharged, and every row the
//!   cache still serves remains bitwise-fresh;
//! * a feature write that changes bytes is detected even without an
//!   explicit invalidation (write tracking), so the cache can never
//!   claim a saved fetch for data that actually moved.

use halfgnn::graph::partition::PartitionStrategy;
use halfgnn::graph::{Csr, DeltaCsr, VertexId};
use halfgnn::half::slice::f32_slice_to_half;
use halfgnn::half::Half;
use halfgnn::nn::dist::DistCtx;
use halfgnn::sim::interconnect::Topology;
use halfgnn::sim::DeviceConfig;
use halfgnn::tensor::Ops;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Arbitrary symmetrized graph + half2-padded feature width + features +
/// edges to stream in later (the invalidation trigger).
#[allow(clippy::type_complexity)]
fn arb_case() -> impl Strategy<Value = (Csr, usize, Vec<f32>, Vec<(VertexId, VertexId)>)> {
    (4usize..24, 1usize..4)
        .prop_flat_map(|(n, fhalf)| {
            let f = 2 * fhalf;
            let edge = (0..n as VertexId, 0..n as VertexId);
            (
                Just(n),
                Just(f),
                prop::collection::vec(edge.clone(), 1..64),
                prop::collection::vec(-1.0f32..1.0, n * f),
                prop::collection::vec(edge, 1..4),
            )
        })
        .prop_map(|(n, f, edges, feats, inserts)| {
            let csr = Csr::from_edges(n, n, &edges).symmetrized_with_self_loops();
            (csr, f, feats, inserts)
        })
}

/// One full epoch of halo exchanges (every shard, one layer) over `x`.
fn exchange_epoch(ops: &mut Ops, ctx: &DistCtx, x: &[Half], f: usize) {
    for sh in &ctx.plan.shards {
        ctx.exchange_halo_half(ops, x, f, sh);
    }
}

/// The wire-row payload a cold fetch of global row `v` would carry.
fn fresh_bytes(x: &[Half], v: VertexId, f: usize) -> Vec<u8> {
    x[(v as usize) * f..(v as usize + 1) * f]
        .iter()
        .flat_map(|h| h.to_bits().to_le_bytes())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The headline coherence property, under both 1D and 1.5D charging:
    /// warm epochs are free, `DeltaCsr` inserts invalidate exactly the
    /// touched in-ball, changed rows are always refetched, and every row
    /// the cache serves is bitwise what a cold exchange would fetch.
    #[test]
    fn halo_cache_is_coherent_under_delta_csr_inserts(
        (csr, f, feats, inserts) in arb_case()
    ) {
        let dev = DeviceConfig::a100_like();
        let mut ops = Ops::new(&dev);
        let xh = f32_slice_to_half(&feats);

        for (shards, strategy) in [
            (2, PartitionStrategy::DegreeBalanced),
            (4, PartitionStrategy::DegreeBalanced),
            (4, PartitionStrategy::OneP5D { c: 2 }),
        ] {
            let ctx = DistCtx::new(&csr, shards, strategy, Topology::Ring);
            let wire_rows: Vec<(usize, VertexId)> = (0..shards)
                .flat_map(|s| ctx.plan.wire_rows(s).iter().map(move |&(v, _)| (s, v)))
                .collect();

            // Epoch 0: cold — every wire row is a miss.
            exchange_epoch(&mut ops, &ctx, &xh, f);
            let cold = ctx.snapshot().halo_bytes;
            let s0 = ctx.halo_cache_stats();
            prop_assert_eq!(s0.hits, 0);
            prop_assert_eq!(s0.misses, wire_rows.len() as u64);
            prop_assert_eq!(cold, wire_rows.len() as u64 * (f as u64) * 2);

            // Epoch 1: warm over static features — all hits, zero bytes,
            // and every served payload is bitwise the cold fetch.
            ctx.reset_epoch();
            exchange_epoch(&mut ops, &ctx, &xh, f);
            let s1 = ctx.halo_cache_stats();
            prop_assert_eq!(ctx.snapshot().halo_bytes, 0);
            prop_assert_eq!(s1.hits, s0.misses);
            prop_assert_eq!(s1.misses, 0);
            prop_assert_eq!(s1.bytes_saved, cold);
            for &(s, v) in &wire_rows {
                let got = ctx.cached_wire_row(s, 0, 2, v);
                prop_assert_eq!(got, Some(fresh_bytes(&xh, v, f)), "shard {} row {}", s, v);
            }

            // Stream edges through a DeltaCsr and invalidate the 2-hop
            // in-ball of the endpoints — the rows whose activations can
            // read the new edges. Their features are then rewritten (the
            // recompute a real system would do after a topology change).
            let mut delta = DeltaCsr::new(csr.clone());
            let mut endpoints: Vec<VertexId> = Vec::new();
            for &(u, v) in &inserts {
                delta.insert_undirected(u, v);
                endpoints.push(u);
                endpoints.push(v);
            }
            ctx.invalidate_in_ball(&delta, &endpoints, 2);
            let ball: BTreeSet<VertexId> =
                halfgnn::graph::khop_ball(&delta, &endpoints, 2).into_iter().collect();
            let mut x2 = xh.clone();
            for &v in &ball {
                for e in &mut x2[(v as usize) * f..(v as usize + 1) * f] {
                    *e = Half::from_f32(e.to_f32() + 0.25);
                }
            }

            // Epoch 2: exactly the stale wire rows (in-ball ∩ wire set)
            // miss and are recharged; everything else still hits.
            ctx.reset_epoch();
            exchange_epoch(&mut ops, &ctx, &x2, f);
            let s2 = ctx.halo_cache_stats();
            let stale: Vec<&(usize, VertexId)> =
                wire_rows.iter().filter(|&&(_, v)| ball.contains(&v)).collect();
            prop_assert_eq!(s2.misses, stale.len() as u64, "{:?} shards={}", strategy, shards);
            prop_assert_eq!(s2.hits, (wire_rows.len() - stale.len()) as u64);
            prop_assert_eq!(
                ctx.snapshot().halo_bytes,
                stale.len() as u64 * (f as u64) * 2,
                "only changed rows pay wire bytes"
            );
            // Post-exchange, the cache holds fresh bytes for every wire
            // row again — served rows can never lag a topology change.
            for &(s, v) in &wire_rows {
                let got = ctx.cached_wire_row(s, 0, 2, v);
                prop_assert_eq!(got, Some(fresh_bytes(&x2, v, f)), "shard {} row {}", s, v);
            }
        }
    }

    /// Write tracking without explicit invalidation: mutating a source row
    /// changes its wire bytes, and the byte-equality half of the hit rule
    /// forces a refetch — the cache can never claim `bytes_saved` for data
    /// that moved, even if nobody called `invalidate_halo_rows`.
    #[test]
    fn changed_bytes_are_refetched_even_without_invalidation(
        (csr, f, feats, _) in arb_case(),
        bump in 0.125f32..2.0
    ) {
        let dev = DeviceConfig::a100_like();
        let mut ops = Ops::new(&dev);
        let xh = f32_slice_to_half(&feats);
        let ctx = DistCtx::new(&csr, 2, PartitionStrategy::DegreeBalanced, Topology::Ring);
        let total: usize = (0..2).map(|s| ctx.plan.wire_rows(s).len()).sum();

        exchange_epoch(&mut ops, &ctx, &xh, f);

        // Rewrite every feature row so every wire payload's bits change.
        let x2: Vec<Half> = xh.iter().map(|h| Half::from_f32(h.to_f32() + bump)).collect();
        ctx.reset_epoch();
        exchange_epoch(&mut ops, &ctx, &x2, f);
        let s = ctx.halo_cache_stats();
        prop_assert_eq!(s.hits, 0, "no stale row may be served");
        prop_assert_eq!(s.misses, total as u64);
        prop_assert_eq!(ctx.snapshot().halo_bytes, total as u64 * (f as u64) * 2);
    }
}

/// Hops = 0 invalidates just the named rows — the right call when feature
/// rows themselves are overwritten with no topology change.
#[test]
fn zero_hop_invalidation_touches_only_the_named_rows() {
    let dev = DeviceConfig::a100_like();
    let mut ops = Ops::new(&dev);
    let n = 12;
    let edges: Vec<(VertexId, VertexId)> = (0..n as VertexId - 1).map(|v| (v, v + 1)).collect();
    let csr = Csr::from_edges(n, n, &edges).symmetrized_with_self_loops();
    let f = 4;
    let xh: Vec<Half> = (0..n * f).map(|i| Half::from_f32((i % 7) as f32 * 0.1)).collect();
    let ctx = DistCtx::new(&csr, 4, PartitionStrategy::Contiguous, Topology::Ring);

    exchange_epoch(&mut ops, &ctx, &xh, f);
    let cold_misses = ctx.halo_cache_stats().misses;
    assert!(cold_misses > 0, "a path graph sharded 4 ways has halo rows");

    // Invalidate one wire row by name; its bytes do not even change.
    let &(victim, _) = &ctx.plan.wire_rows(0)[0];
    ctx.invalidate_in_ball(&csr, &[victim], 0);
    ctx.reset_epoch();
    exchange_epoch(&mut ops, &ctx, &xh, f);
    let s = ctx.halo_cache_stats();

    // The victim appears once per shard that pays for it (here: one).
    let victim_slots: u64 = (0..4)
        .map(|sh| ctx.plan.wire_rows(sh).iter().filter(|&&(v, _)| v == victim).count() as u64)
        .sum();
    assert_eq!(s.misses, victim_slots, "only the invalidated row refetches");
    assert_eq!(s.hits, cold_misses - victim_slots);
}
