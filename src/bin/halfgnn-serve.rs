//! `halfgnn-serve` — forward-only inference over a trained snapshot, with
//! request coalescing, an embedding cache, and modeled serving latency.
//!
//! ```text
//! halfgnn-serve --dataset cora --snapshot model.snap --precision halfgnn \
//!               --shards 2 --cache-kb 64 [--requests 2000] [--mean-gap-us 40]
//! ```
//!
//! Without `--snapshot` the binary quick-trains a GCN on the dataset
//! first (writing a temporary snapshot, then consuming it through the
//! same load path a production handoff would use).

use halfgnn::graph::datasets::Dataset;
use halfgnn::graph::partition::PartitionStrategy;
use halfgnn::nn::models::GcnNorm;
use halfgnn::nn::snapshot::ModelSnapshot;
use halfgnn::nn::trainer::{train, ModelKind, PrecisionMode, Topology, TrainConfig};
use halfgnn::serve::{CachePrecision, ServeConfig, ServeEngine};
use halfgnn::sim::{latency_stats, synth_trace, DeviceConfig, TraceConfig};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: halfgnn-serve --dataset <id|name> [--snapshot PATH] \
         [--precision float|halfgnn] [--hops N] [--batch-window N] \
         [--cache-kb N] [--cache-precision f16|f32] [--shards N] \
         [--topology ring|alltoall] [--partition contiguous|balanced|1p5d] \
         [--replay] [--tuning] [--requests N] [--mean-gap-us F] \
         [--hot-fraction F] [--hot-vertices N] [--trace-seed N] \
         [--epochs N] [--hidden N] (quick-train when no --snapshot)"
    );
    exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dataset = None;
    let mut snapshot_path: Option<String> = None;
    let mut cfg = ServeConfig::default();
    let mut trace_cfg = TraceConfig {
        seed: 0,
        requests: 2000,
        num_vertices: 0, // filled from the dataset
        mean_gap_us: 40.0,
        hot_fraction: 0.8,
        hot_vertices: 64,
    };
    let mut epochs = 20usize;
    let mut hidden = 16usize;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage()).as_str();
        match flag.as_str() {
            "--dataset" => dataset = Dataset::by_id(val()),
            "--snapshot" => snapshot_path = Some(val().to_string()),
            "--precision" => {
                cfg.precision = match val() {
                    "float" => PrecisionMode::Float,
                    "halfgnn" => PrecisionMode::HalfGnn,
                    // Training-only modes reach validate() and die with
                    // the named ServeConfigError.
                    "halfnaive" => PrecisionMode::HalfNaive,
                    "nodiscretize" => PrecisionMode::HalfGnnNoDiscretize,
                    "i8" => PrecisionMode::I8,
                    other => {
                        eprintln!("unknown precision {other}");
                        usage()
                    }
                }
            }
            "--hops" => cfg.hops = val().parse().unwrap_or_else(|_| usage()),
            "--batch-window" => cfg.batch_window = val().parse().unwrap_or_else(|_| usage()),
            "--cache-kb" => {
                cfg.cache_bytes = val().parse::<usize>().unwrap_or_else(|_| usage()) * 1024
            }
            "--cache-precision" => {
                cfg.cache_precision = CachePrecision::parse(val()).unwrap_or_else(|| {
                    eprintln!("unknown cache precision (want f16|f32)");
                    usage()
                })
            }
            "--shards" => cfg.shards = val().parse().unwrap_or_else(|_| usage()),
            "--topology" => {
                cfg.topology = Topology::parse(val()).unwrap_or_else(|| {
                    eprintln!("unknown topology (want ring|alltoall)");
                    usage()
                })
            }
            "--partition" => {
                cfg.partition = PartitionStrategy::parse(val()).unwrap_or_else(|| {
                    eprintln!("unknown partition strategy (want contiguous|balanced|1p5d)");
                    usage()
                })
            }
            "--replay" => cfg.replay = true,
            "--tuning" => cfg.tuning = true,
            "--requests" => trace_cfg.requests = val().parse().unwrap_or_else(|_| usage()),
            "--mean-gap-us" => trace_cfg.mean_gap_us = val().parse().unwrap_or_else(|_| usage()),
            "--hot-fraction" => trace_cfg.hot_fraction = val().parse().unwrap_or_else(|_| usage()),
            "--hot-vertices" => trace_cfg.hot_vertices = val().parse().unwrap_or_else(|_| usage()),
            "--trace-seed" => trace_cfg.seed = val().parse().unwrap_or_else(|_| usage()),
            "--epochs" => epochs = val().parse().unwrap_or_else(|_| usage()),
            "--hidden" => hidden = val().parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    let Some(dataset) = dataset else { usage() };
    if let Err(e) = cfg.validate() {
        eprintln!("config error: {e}");
        exit(2);
    }

    let data = dataset.load(42);
    trace_cfg.num_vertices = data.num_vertices();
    eprintln!(
        "{} ({}): {} vertices, {} edges",
        data.spec.name,
        data.spec.id,
        data.num_vertices(),
        data.num_edges()
    );

    // Obtain a snapshot: load the given one, or quick-train and hand off
    // through the same save/load path.
    let snap = match &snapshot_path {
        Some(p) => ModelSnapshot::load(std::path::Path::new(p)).unwrap_or_else(|| {
            eprintln!("could not load snapshot {p} (missing or torn)");
            exit(2);
        }),
        None => {
            let tmp = std::env::temp_dir()
                .join(format!("halfgnn-serve-quicktrain-{}.snap", std::process::id()));
            let tcfg = TrainConfig {
                model: ModelKind::Gcn,
                // Train under the precision we will serve, so half serving
                // gets the padded even class width it requires.
                precision: cfg.precision,
                epochs,
                hidden,
                gcn_norm: GcnNorm::Right,
                snapshot_path: Some(tmp.to_string_lossy().into_owned()),
                ..TrainConfig::default()
            };
            eprintln!("no --snapshot: quick-training {epochs} epochs (hidden {hidden})");
            let report = train(&data, &tcfg);
            eprintln!(
                "quick-train: accuracy {:.3} (train) / {:.3} (test)",
                report.final_train_accuracy, report.test_accuracy
            );
            let snap = ModelSnapshot::load(&tmp).unwrap_or_else(|| {
                eprintln!("quick-train snapshot did not round-trip");
                exit(1);
            });
            std::fs::remove_file(&tmp).ok();
            snap
        }
    };

    let dev = DeviceConfig::a100_like();
    let mut engine = match ServeEngine::from_snapshot(
        &dev,
        &data.adj,
        &data.features,
        data.spec.feat,
        &snap,
        cfg.clone(),
    ) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("config error: {e}");
            exit(2);
        }
    };

    let trace = synth_trace(&trace_cfg);
    let timings = engine.serve_trace(&trace);
    let span =
        timings.iter().zip(&trace).map(|(t, r)| r.arrival_us + t.total_us()).fold(0.0f64, f64::max)
            - trace.first().map_or(0.0, |r| r.arrival_us);
    let stats = latency_stats(&timings, span);

    println!("requests       : {}", stats.requests);
    println!("throughput     : {:.1} req/s (modeled)", stats.throughput_rps);
    println!("latency p50    : {:.1} us (modeled)", stats.p50_us);
    println!("latency p99    : {:.1} us (modeled)", stats.p99_us);
    println!("latency mean   : {:.1} us (modeled)", stats.mean_us);
    println!(
        "cache          : {:.1}% hits ({} entries of {} capacity, {})",
        100.0 * stats.hit_rate(),
        engine.cache().len(),
        engine.cache().capacity(),
        engine.cache().precision().tag()
    );
    println!(
        "batches        : {} launches, {} requests coalesced, largest subgraph {} vertices",
        engine.stats.batches, engine.stats.coalesced_requests, engine.stats.max_batch_vertices
    );
    if engine.config().replay {
        println!("replay         : {} batches replayed", engine.stats.replayed_batches);
    }
    if engine.config().shards > 1 {
        println!(
            "halo traffic   : {:.2} MiB over {} shards ({}), {:.1} us (modeled)",
            engine.stats.halo_bytes as f64 / 1048576.0,
            engine.config().shards,
            engine.config().topology.tag(),
            engine.stats.halo_time_us
        );
    }
    if let Some(c) = engine.tuner_counters() {
        println!(
            "plan cache     : {} hits, {} misses, {} evaluations",
            c.hits, c.misses, c.evaluations
        );
    }

    // The forward-only footprint, arena-planned: proof the serving path
    // carries no training state.
    let probe: Vec<u32> = (0..8.min(data.num_vertices() as u32)).collect();
    let inf = engine.inference_footprint(&probe);
    println!(
        "inference plan : {:.2} MiB peak over {} buffers ({} kernel nodes)",
        inf.peak_bytes as f64 / 1048576.0,
        inf.buffers,
        inf.nodes
    );
}
