//! `halfgnn-train` — train any registry dataset with any model under any
//! precision system, from the command line.
//!
//! ```text
//! halfgnn-train --dataset reddit --model gcn --precision halfgnn \
//!               --epochs 60 [--lr 0.01] [--hidden 64] [--seed 0] [--norm right]
//! ```

use halfgnn::graph::datasets::Dataset;
use halfgnn::graph::partition::PartitionStrategy;
use halfgnn::nn::models::GcnNorm;
use halfgnn::nn::trainer::{train, ModelKind, PrecisionMode, Topology, TrainConfig, Tuning};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: halfgnn-train --dataset <id|name> [--model gcn|gat|gin|sage] \
         [--precision float|halfnaive|halfgnn|nodiscretize|i8] [--epochs N] \
         [--lr F] [--hidden N] [--seed N] [--norm right|left|both] [--gin-lambda F] \
         [--loss-scale F] [--tuning off|auto|cached:<path>] [--fusion] \
         [--shards N] [--topology ring|alltoall] \
         [--partition contiguous|balanced|1p5d] [--replication N] \
         [--replay] [--batch-size N] [--fanout N] [--stream-edges N] \
         [--save-snapshot PATH] [--i8-block N]"
    );
    exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dataset = None;
    let mut cfg = TrainConfig { epochs: 60, ..TrainConfig::default() };

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage()).as_str();
        match flag.as_str() {
            "--dataset" => dataset = Dataset::by_id(val()),
            "--model" => {
                cfg.model = match val() {
                    "gcn" => ModelKind::Gcn,
                    "gat" => ModelKind::Gat,
                    "gin" => ModelKind::Gin,
                    "sage" => ModelKind::Sage,
                    other => {
                        eprintln!("unknown model {other}");
                        usage()
                    }
                }
            }
            "--precision" => {
                cfg.precision = match val() {
                    "float" => PrecisionMode::Float,
                    "halfnaive" => PrecisionMode::HalfNaive,
                    "halfgnn" => PrecisionMode::HalfGnn,
                    "nodiscretize" => PrecisionMode::HalfGnnNoDiscretize,
                    "i8" => PrecisionMode::I8,
                    other => {
                        eprintln!("unknown precision {other}");
                        usage()
                    }
                }
            }
            "--norm" => {
                cfg.gcn_norm = match val() {
                    "right" => GcnNorm::Right,
                    "left" => GcnNorm::Left,
                    "both" => GcnNorm::Both,
                    other => {
                        eprintln!("unknown norm {other}");
                        usage()
                    }
                }
            }
            "--epochs" => cfg.epochs = val().parse().unwrap_or_else(|_| usage()),
            "--lr" => cfg.lr = val().parse().unwrap_or_else(|_| usage()),
            "--hidden" => cfg.hidden = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = val().parse().unwrap_or_else(|_| usage()),
            "--gin-lambda" => cfg.gin_lambda = val().parse().unwrap_or_else(|_| usage()),
            "--loss-scale" => cfg.loss_scale = val().parse().unwrap_or_else(|_| usage()),
            "--tuning" => {
                cfg.tuning = match val() {
                    "off" => Tuning::Off,
                    "auto" => Tuning::Auto,
                    v => match v.strip_prefix("cached:") {
                        Some(path) if !path.is_empty() => Tuning::Cached(path.to_string()),
                        _ => {
                            eprintln!("unknown tuning policy {v}");
                            usage()
                        }
                    },
                }
            }
            "--fusion" => cfg.fusion = true,
            "--replay" => cfg.replay = true,
            "--shards" => {
                cfg.shards = val().parse().unwrap_or_else(|_| usage());
                if cfg.shards == 0 {
                    eprintln!("--shards must be at least 1");
                    usage()
                }
            }
            "--topology" => {
                cfg.topology = Topology::parse(val()).unwrap_or_else(|| {
                    eprintln!("unknown topology (want ring|alltoall)");
                    usage()
                })
            }
            "--partition" => {
                cfg.partition = PartitionStrategy::parse(val()).unwrap_or_else(|| {
                    eprintln!("unknown partition strategy (want contiguous|balanced|1p5d)");
                    usage()
                })
            }
            "--replication" => {
                cfg.replication = Some(val().parse().unwrap_or_else(|_| {
                    eprintln!("unknown replication value (want a positive integer)");
                    usage()
                }))
            }
            "--save-snapshot" => cfg.snapshot_path = Some(val().to_string()),
            "--i8-block" => cfg.i8_block = Some(val().parse().unwrap_or_else(|_| usage())),
            "--batch-size" => cfg.batch_size = Some(val().parse().unwrap_or_else(|_| usage())),
            "--fanout" => cfg.fanout = val().parse().unwrap_or_else(|_| usage()),
            "--stream-edges" => cfg.stream_edges = val().parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    let Some(dataset) = dataset else { usage() };
    if let Err(e) = cfg.validate() {
        eprintln!("config error: {e}");
        exit(2);
    }

    let data = dataset.load(42);
    eprintln!(
        "{} ({}): {} vertices, {} edges, mean degree {:.1}, max degree {}",
        data.spec.name,
        data.spec.id,
        data.num_vertices(),
        data.num_edges(),
        data.adj.mean_degree(),
        data.adj.max_degree()
    );
    eprintln!(
        "training {:?} / {:?} for {} epochs (hidden {}, lr {})",
        cfg.model, cfg.precision, cfg.epochs, cfg.hidden, cfg.lr
    );

    let report = train(&data, &cfg);
    for (e, loss) in report.losses.iter().enumerate() {
        if e % 10 == 0 || e + 1 == report.losses.len() {
            println!("epoch {e:>4}  loss {loss:.4}");
        }
    }
    println!("train accuracy : {:.4}", report.final_train_accuracy);
    println!("test accuracy  : {:.4}", report.test_accuracy);
    println!("epoch time     : {:.1} us (modeled)", report.epoch_time_us);
    println!("peak memory    : {:.1} MiB (modeled)", report.peak_memory_bytes as f64 / 1048576.0);
    println!("kernels/epoch  : {}", report.kernels_per_epoch);
    println!(
        "dram traffic   : {:.1} MiB/epoch (modeled)",
        report.dram_bytes_per_epoch as f64 / 1048576.0
    );
    println!(
        "conversions    : {} kernels, {} elements/epoch",
        report.conversions_per_epoch, report.converted_elems_per_epoch
    );
    if let Some(s) = report.replay {
        println!(
            "replay graph   : {} nodes over {} buffers ({} plans captured)",
            s.nodes, s.buffers, s.plans
        );
        println!(
            "replay epoch   : {:.1} us (modeled; {:.0} launch-overhead cycles \
             stripped per epoch)",
            report.replay_epoch_time_us, s.saved_cycles
        );
        println!(
            "arena plan     : {:.2} MiB peak vs {:.2} MiB unplanned \
             (+{:.2} MiB external)",
            s.peak_bytes as f64 / 1048576.0,
            s.eager_bytes as f64 / 1048576.0,
            s.external_bytes as f64 / 1048576.0
        );
    }
    if let Some(s) = &report.sampling {
        println!(
            "sampling       : {} batches/epoch (fanout {}), mean batch {:.0} vertices / \
             {:.0} edges, max {} vertices",
            s.batches_per_epoch,
            s.fanout,
            s.mean_batch_vertices,
            s.mean_batch_edges,
            s.max_batch_vertices
        );
        if let Some(ep) = s.stream_epoch {
            println!(
                "streamed edges : {} inserted before epoch {ep} (delta overlay, no rebuild)",
                s.streamed_edges
            );
        }
        if let Some(p) = s.post_stream_tuning {
            println!(
                "post-delta plan cache: {} hits, {} misses, {} evaluations",
                p.hits, p.misses, p.evaluations
            );
        }
    }
    if let Some(c) = report.tuning_counters {
        println!(
            "plan cache     : {} hits, {} misses, {} candidate evaluations",
            c.hits, c.misses, c.evaluations
        );
    }
    if cfg.shards > 1 {
        println!(
            "comms/epoch    : {:.2} MiB total ({:.2} MiB halo, {:.2} MiB all-reduce), \
             {:.1} us on {} shards ({})",
            report.comms_bytes_per_epoch as f64 / 1048576.0,
            report.comms_halo_bytes_per_epoch as f64 / 1048576.0,
            report.comms_allreduce_bytes_per_epoch as f64 / 1048576.0,
            report.comms_time_us_per_epoch,
            cfg.shards,
            cfg.topology.tag()
        );
        println!(
            "comms overlap  : {:.1} us serialized -> {:.1} us overlapped \
             (halo prefetch hides {:.1} us)",
            report.comms_serialized_us,
            report.comms_overlapped_us,
            report.comms_serialized_us - report.comms_overlapped_us
        );
        println!(
            "halo cache     : {} hits, {} misses, {:.2} MiB wire bytes saved \
             (steady state)",
            report.halo_cache_hits,
            report.halo_cache_misses,
            report.halo_cache_bytes_saved as f64 / 1048576.0
        );
        for ((from, to), s) in report.link_breakdown.iter().take(8) {
            println!(
                "  link {from}->{to}: {:.2} MiB in {} messages ({:.1} us)",
                s.bytes as f64 / 1048576.0,
                s.messages,
                s.time_us
            );
        }
    }
    println!("\nper-kernel breakdown (one epoch):");
    for (name, launches, us, bytes) in report.kernel_breakdown.iter().take(12) {
        println!(
            "  {name:<42} x{launches:<3} {us:>10.1} us {:>9.2} MiB",
            *bytes as f64 / 1048576.0
        );
    }
    if let Some(p) = &cfg.snapshot_path {
        println!("snapshot       : {p}");
    }
    if let Some((ep, ev)) = report.first_saturation() {
        println!("first INT8 saturation: epoch {ep}: {ev}");
    }
    if let Some(e) = report.nan_epoch {
        println!("loss became NaN at epoch {e} (FP16 overflow -> NaN, see DESIGN.md)");
        exit(1);
    }
}
