//! # HalfGNN
//!
//! A Rust reproduction of **"Optimization of GNN Training Through
//! Half-precision"** (Tarafder, Gong, Kumar — HPDC '25): a half-precision
//! GNN training system with vectorized sparse kernels, discretized
//! reduction scaling, non-atomic conflict handling, and shadow APIs —
//! executed on a SIMT GPU cost-model simulator so that every experiment in
//! the paper can be regenerated on a CPU-only host.
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`half`] — software binary16 plus `Half2`/`Half4`/`Half8` vectors
//! * [`graph`] — COO/CSR storage, generators, the Table-1 dataset registry
//! * [`sim`] — the SIMT cost-model simulator (warps, coalescer, timing)
//! * [`kernels`] — SpMM/SDDMM: HalfGNN kernels and every baseline
//! * [`tensor`] — dense tensors, AMP autocast policy, shadow APIs
//! * [`tune`] — cost-model kernel autotuner with a persistent plan cache
//! * [`nn`] — GCN/GAT/GIN models and the mixed-precision trainer
//! * [`serve`] — forward-only inference: request coalescing, embedding
//!   cache, modeled serving latency
//!
//! ## Quickstart
//!
//! ```
//! use halfgnn::graph::datasets::Dataset;
//! use halfgnn::nn::trainer::{TrainConfig, PrecisionMode, train};
//! use halfgnn::nn::models::ModelKind;
//!
//! let data = Dataset::cora().load(42);
//! let cfg = TrainConfig {
//!     model: ModelKind::Gcn,
//!     precision: PrecisionMode::HalfGnn,
//!     epochs: 30,
//!     ..TrainConfig::default()
//! };
//! let report = train(&data, &cfg);
//! assert!(report.final_train_accuracy > 0.5);
//! ```

pub use halfgnn_graph as graph;
pub use halfgnn_half as half;
pub use halfgnn_kernels as kernels;
pub use halfgnn_nn as nn;
pub use halfgnn_serve as serve;
pub use halfgnn_sim as sim;
pub use halfgnn_tensor as tensor;
pub use halfgnn_tune as tune;
