//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! small property-testing harness that exposes the API subset its test
//! suites use: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), `prop_assert!`/`prop_assert_eq!`,
//! `Strategy` with `prop_map`/`prop_flat_map`, `Just`, numeric range
//! strategies, tuple strategies, `prop::collection::vec`,
//! `prop::sample::select`, and the `prop::num::f32` class strategies.
//!
//! Differences from upstream, deliberately accepted:
//! - **No shrinking.** A failing case reports the generated inputs via the
//!   panic message (each case is derived deterministically from the test
//!   name and case index, so failures reproduce exactly on re-run).
//! - **Fixed derivation.** There is no `PROPTEST_CASES` env handling or
//!   failure persistence file; runs are fully deterministic.

pub mod collection;
pub mod num;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Upstream re-exports itself under `prop::` in its prelude; mirror that.
pub mod prop {
    pub use crate::collection;
    pub use crate::num;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fallible assertion inside a `proptest!` body. Upstream returns an `Err`
/// that the runner turns into a failure-with-shrinking; without shrinking a
/// panic carries the same information.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// The `proptest!` block: an optional `#![proptest_config(..)]` inner
/// attribute followed by `#[test] fn name(bindings in strategies) { body }`
/// items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(stringify!($name), case);
                // Bind generated values first so the panic hook can report
                // them if the body fails.
                let ($($pat,)+) =
                    ($($crate::strategy::Strategy::generate(&$strat, &mut rng),)+);
                let run = std::panic::AssertUnwindSafe(|| { $body });
                if let Err(payload) = std::panic::catch_unwind(run) {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (deterministic; \
                         re-run reproduces it)",
                        case + 1, config.cases, stringify!($name),
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0f32..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn tuples_and_vec(pair in (0u64..5, 0u64..5), v in prop::collection::vec(0i32..100, 0..8)) {
            prop_assert!(pair.0 < 5 && pair.1 < 5);
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&e| (0..100).contains(&e)));
        }

        #[test]
        fn flat_map_dependent(v in (1usize..6).prop_flat_map(|n| prop::collection::vec(0usize..n, n))) {
            let n = v.len();
            prop_assert!((1..6).contains(&n));
            prop_assert!(v.iter().all(|&e| e < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        #[test]
        fn config_applies(x in 0u32..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    fn select_and_just() {
        let mut rng = TestRng::for_case("select_and_just", 0);
        for _ in 0..100 {
            let w = Strategy::generate(&prop::sample::select(vec![2usize, 4, 8]), &mut rng);
            assert!(w == 2 || w == 4 || w == 8);
            assert_eq!(Strategy::generate(&Just(7), &mut rng), 7);
        }
    }

    #[test]
    fn f32_classes_generate_members() {
        let mut rng = TestRng::for_case("f32_classes", 0);
        let s = crate::num::f32::NORMAL | crate::num::f32::SUBNORMAL | crate::num::f32::ZERO;
        let (mut normal, mut sub, mut zero) = (0, 0, 0);
        for _ in 0..3000 {
            let x = Strategy::generate(&s, &mut rng);
            assert!(!x.is_nan() && !x.is_infinite());
            if x == 0.0 {
                zero += 1;
            } else if x.is_normal() {
                normal += 1;
            } else {
                sub += 1;
            }
        }
        assert!(normal > 0 && sub > 0 && zero > 0);
    }

    #[test]
    fn cases_are_deterministic() {
        let a = Strategy::generate(&(0u64..u64::MAX), &mut TestRng::for_case("det", 3));
        let b = Strategy::generate(&(0u64..u64::MAX), &mut TestRng::for_case("det", 3));
        assert_eq!(a, b);
    }
}
