//! Sampling strategies: `select` from a fixed list.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct Select<T: Clone> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len() as u64) as usize].clone()
    }
}

/// `prop::sample::select(items)`: uniform choice from a non-empty list.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select from empty list");
    Select { items }
}
