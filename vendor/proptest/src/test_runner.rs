//! Runner configuration and the deterministic per-case RNG.

/// Subset of upstream's `Config`: only `cases` is consulted.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream's default. Heavy suites override with `with_cases`.
        ProptestConfig { cases: 256 }
    }
}

/// SplitMix64 stream derived from (test name, case index) so every case is
/// reproducible without persisted failure files.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

/// FNV-1a: stable across compiler versions, unlike `DefaultHasher`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        TestRng {
            state: fnv1a(test_name.as_bytes())
                ^ ((case as u64) << 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform in [0, 1) with 53 bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
