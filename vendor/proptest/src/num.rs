//! Numeric class strategies, mirroring `prop::num::f32::{NORMAL, ...}`:
//! bitflag constants that `|` together into a union strategy.

pub mod f32 {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::BitOr;

    /// A union of binary32 value classes; generates uniformly among the
    /// selected classes, then uniformly over each class's encodings.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct FloatClasses(u8);

    pub const ZERO: FloatClasses = FloatClasses(1 << 0);
    pub const SUBNORMAL: FloatClasses = FloatClasses(1 << 1);
    pub const NORMAL: FloatClasses = FloatClasses(1 << 2);
    pub const INFINITE: FloatClasses = FloatClasses(1 << 3);
    pub const QUIET_NAN: FloatClasses = FloatClasses(1 << 4);
    pub const ANY: FloatClasses = FloatClasses(0b1_1111);

    impl BitOr for FloatClasses {
        type Output = FloatClasses;
        fn bitor(self, rhs: FloatClasses) -> FloatClasses {
            FloatClasses(self.0 | rhs.0)
        }
    }

    impl Strategy for FloatClasses {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            let classes: Vec<u8> = (0..5).filter(|b| self.0 & (1 << b) != 0).collect();
            assert!(!classes.is_empty(), "empty float class union");
            let class = classes[rng.below(classes.len() as u64) as usize];
            let sign = (rng.next_u64() as u32 & 1) << 31;
            let bits = match class {
                0 => sign,                                       // ±0
                1 => sign | (1 + rng.below(0x007F_FFFF) as u32), // subnormal
                2 => {
                    // normal: exponent 1..=254, random mantissa
                    let exp = 1 + rng.below(254) as u32;
                    sign | (exp << 23) | (rng.next_u64() as u32 & 0x007F_FFFF)
                }
                3 => sign | 0x7F80_0000, // ±inf
                _ => sign | 0x7FC0_0000 | (rng.next_u64() as u32 & 0x003F_FFFF),
            };
            f32::from_bits(bits)
        }
    }
}
