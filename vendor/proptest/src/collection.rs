//! Collection strategies: `vec(element, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length specification for `vec`: an exact length, `lo..hi`, or `lo..=hi`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
