//! The `Strategy` trait and core combinators.
//!
//! Upstream strategies produce shrinkable `ValueTree`s; this shim generates
//! plain values (see crate docs for why shrinking is omitted).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejection-sampling filter; panics after too many rejections rather
    /// than silently looping forever.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, f }
    }
}

/// Strategies are usable behind references (upstream's `&S: Strategy`).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    pub(crate) inner: S,
    pub(crate) whence: &'static str,
    pub(crate) f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1024 consecutive values", self.whence);
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
}
