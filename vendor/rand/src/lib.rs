//! Offline stand-in for the `rand` crate, exposing exactly the API surface
//! this workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` trait with `gen` / `gen_range` / `gen_bool`.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! small deterministic implementation instead of the real dependency. The
//! generator is xoshiro256++ seeded through SplitMix64 — high-quality,
//! reproducible streams, but *not* bit-identical to upstream `StdRng`
//! (ChaCha12). Nothing in the workspace depends on upstream's exact stream;
//! all tests derive their expectations from the same seeded generator.

pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Seeding interface; only `seed_from_u64` is used in this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types sampleable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 random bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in [0, 1) with 24 random bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                let v = self.start + (self.end - self.start) * unit;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(0usize..=4);
            assert!(j <= 4);
            let f = rng.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&f));
            let n = rng.gen_range(-8i64..-3);
            assert!((-8..-3).contains(&n));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
