//! Offline stand-in for `rayon`: the parallel-iterator entry points this
//! workspace uses (`into_par_iter`, `par_iter`, `par_iter_mut`,
//! `par_chunks_mut`) backed by a real scoped-thread work pool.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! this crate instead of the real dependency. Unlike the original
//! sequential shim, work now actually fans out across OS threads (see
//! [`pool`]), sized by `std::thread::available_parallelism()` with a
//! `HALFGNN_THREADS` env override. The adapter layer is intentionally
//! tiny — materialize items into a `Vec`, run the terminal operation
//! through [`pool::parallel_map`] — but it preserves the two properties
//! callers rely on: results come back in input order, and per-item work is
//! deterministic. The `launch` layer in `halfgnn-sim` commits per-CTA
//! results in CTA order either way.

pub mod pool;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// A materialized parallel iterator: items are collected up front, then the
/// terminal operation (`for_each`, `map().collect()`) fans out on the pool.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Lazily attach a per-item transform; runs in parallel at `collect`.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }

    /// Pair every item with its input index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Run `f` over all items on the pool. Side effects must be
    /// order-insensitive (rayon's own contract).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        pool::parallel_map(self.items, 0, |_, x| f(x));
    }

    /// Collect the (already materialized) items in input order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A parallel iterator with a pending `map`; the transform runs on the pool
/// at the terminal operation, results delivered in input order.
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Apply the transform to every item in parallel and collect results in
    /// input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        let f = self.f;
        pool::parallel_map(self.items, 0, |_, x| f(x)).into_iter().collect()
    }

    /// Apply the transform to every item in parallel, discarding results.
    pub fn for_each<R>(self, g: impl Fn(R) + Sync)
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let f = self.f;
        pool::parallel_map(self.items, 0, |_, x| g(f(x)));
    }
}

/// `into_par_iter()` for anything iterable with `Send` items.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter { items: self.into_iter().collect() }
    }
}

/// Shared-slice entry points.
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<&T>;
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter { items: self.iter().collect() }
    }
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        ParIter { items: self.chunks(chunk_size).collect() }
    }
}

/// Mutable-slice entry points.
pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter { items: self.iter_mut().collect() }
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter { items: self.chunks_mut(chunk_size).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_into_par_iter_collects_in_order() {
        let v: Vec<usize> = (0..5).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn large_map_preserves_order_under_parallelism() {
        let v: Vec<usize> = (0..10_000).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn par_chunks_mut_enumerated() {
        let mut buf = vec![0u32; 6];
        buf.par_chunks_mut(2).enumerate().for_each(|(i, chunk)| {
            for c in chunk {
                *c = i as u32;
            }
        });
        assert_eq!(buf, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn par_iter_mut_mutates_every_item() {
        let mut buf: Vec<u64> = (0..257).collect();
        buf.par_iter_mut().for_each(|x| *x *= 2);
        assert!(buf.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn par_iter_reads_shared_slice() {
        let buf: Vec<u64> = (0..100).collect();
        let doubled: Vec<u64> = buf.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled[99], 198);
    }
}
