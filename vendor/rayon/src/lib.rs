//! Offline stand-in for `rayon`: the parallel-iterator entry points this
//! workspace uses (`into_par_iter`, `par_iter`, `par_iter_mut`,
//! `par_chunks_mut`) mapped onto ordinary sequential iterators.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! this shim instead of the real dependency. Callers already rely only on
//! rayon semantics that sequential execution satisfies (deterministic
//! per-element work, order-insensitive side effects), so the swap changes
//! wall-clock parallelism, never results. The `launch` layer in
//! `halfgnn-sim` commits per-CTA results in CTA order either way.

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// `into_par_iter()` for anything iterable; yields the std iterator, so all
/// downstream adapters (`map`, `enumerate`, `for_each`, `collect`, …) are the
/// std ones.
pub trait IntoParallelIterator {
    type Iter: Iterator<Item = Self::Item>;
    type Item;
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;
    type Item = I::Item;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Shared-slice entry points.
pub trait ParallelSlice<T> {
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// Mutable-slice entry points.
pub trait ParallelSliceMut<T> {
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_into_par_iter_collects_in_order() {
        let v: Vec<usize> = (0..5).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn par_chunks_mut_enumerated() {
        let mut buf = vec![0u32; 6];
        buf.par_chunks_mut(2).enumerate().for_each(|(i, chunk)| {
            for c in chunk {
                *c = i as u32;
            }
        });
        assert_eq!(buf, vec![0, 0, 1, 1, 2, 2]);
    }
}
