//! The scoped-thread work pool behind every parallel entry point.
//!
//! Design ("work-stealing-lite"): the input is dealt into contiguous
//! chunks of roughly `items / (threads * CHUNKS_PER_THREAD)` elements, the
//! chunks go into a shared LIFO queue, and each of `threads` scoped OS
//! threads (`std::thread::scope`) pops chunks until the queue drains. Slow
//! chunks therefore self-balance across workers without per-item locking,
//! which is what skewed CTA grids (power-law graphs) need.
//!
//! Determinism contract: every result carries its input index and the
//! caller receives results sorted back into input order, so the output is
//! identical for any thread count — including 1, where the pool degrades
//! to a plain sequential loop with no threads spawned.

use std::sync::{Mutex, OnceLock};

/// Oversubscription factor: chunks per worker thread. More chunks balance
/// skew better; fewer chunks lock the queue less.
const CHUNKS_PER_THREAD: usize = 4;

/// Worker-thread count for pool entry points that do not pin one:
/// `HALFGNN_THREADS` if set to a positive integer, otherwise
/// [`std::thread::available_parallelism`], with a single-thread fallback
/// when neither is available. Cached for the process lifetime.
pub fn default_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        match std::env::var("HALFGNN_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        }
    })
}

/// Apply `f` to every item on up to `threads` worker threads (0 = use
/// [`default_threads`]), returning results in input order. `f` also
/// receives the item's input index. Panics in `f` propagate to the caller
/// when the scope joins.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let threads = if threads == 0 { default_threads() } else { threads };
    let threads = threads.min(n.max(1));
    if threads <= 1 || n <= 1 {
        // Single-thread fallback, doubling as the small-input path.
        return items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    // Deal into contiguous chunks; reverse so popping walks in input order.
    let chunk = n.div_ceil(threads * CHUNKS_PER_THREAD).max(1);
    let mut chunks: Vec<Vec<(usize, T)>> = Vec::with_capacity(n.div_ceil(chunk));
    let mut it = items.into_iter().enumerate();
    loop {
        let c: Vec<(usize, T)> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    chunks.reverse();

    let queue = Mutex::new(chunks);
    let out = Mutex::new(Vec::<(usize, R)>::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let next = queue.lock().expect("pool queue poisoned").pop();
                    let Some(chunk) = next else { break };
                    for (i, x) in chunk {
                        local.push((i, f(i, x)));
                    }
                }
                out.lock().expect("pool output poisoned").append(&mut local);
            });
        }
    });

    let mut out = out.into_inner().expect("pool output poisoned");
    debug_assert_eq!(out.len(), n, "every item maps to exactly one result");
    out.sort_unstable_by_key(|&(i, _)| i);
    out.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_for_any_thread_count() {
        let items: Vec<usize> = (0..1000).collect();
        let want: Vec<usize> = items.iter().map(|i| i * 3).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_map(items.clone(), threads, |_, x| x * 3);
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let got: Vec<usize> = parallel_map(Vec::<usize>::new(), 4, |_, x| x);
        assert!(got.is_empty());
        let got = parallel_map(vec![7usize], 4, |i, x| x + i);
        assert_eq!(got, vec![7]);
    }

    #[test]
    fn index_matches_item_position() {
        let got = parallel_map(vec![10, 20, 30, 40], 2, |i, x| (i, x));
        assert_eq!(got, vec![(0, 10), (1, 20), (2, 30), (3, 40)]);
    }

    #[test]
    fn skewed_work_still_completes() {
        // One heavy item among many light ones: chunk self-scheduling must
        // not deadlock or drop results.
        let got = parallel_map((0..64usize).collect(), 4, |_, x| {
            if x == 0 {
                (0..10_000u64).sum::<u64>()
            } else {
                x as u64
            }
        });
        assert_eq!(got[0], 49_995_000);
        assert_eq!(got[63], 63);
    }

    #[test]
    fn default_threads_is_at_least_one() {
        assert!(default_threads() >= 1);
    }
}
