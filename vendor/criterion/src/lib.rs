//! Offline stand-in for `criterion`: enough API for the workspace benches to
//! compile and produce simple wall-clock numbers under `cargo bench`.
//!
//! The build environment has no crates.io access. No statistics, warm-up, or
//! outlier analysis — each bench runs `sample_size` iterations and reports
//! min/mean per-iteration time to stderr.

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level bench context.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { default_samples: 10 }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.default_samples, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), samples: self.default_samples, _c: self }
    }
}

/// Named group; `sample_size` applies to subsequently registered benches.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _c: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, name), self.samples, f);
        self
    }

    pub fn finish(self) {}
}

/// Handed to each bench closure; `iter` times the workload.
pub struct Bencher {
    samples: usize,
    timings_ns: Vec<u128>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.timings_ns.push(t0.elapsed().as_nanos());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher { samples, timings_ns: Vec::new() };
    f(&mut b);
    if b.timings_ns.is_empty() {
        eprintln!("bench {name}: no iterations recorded");
        return;
    }
    let min = *b.timings_ns.iter().min().unwrap();
    let mean = b.timings_ns.iter().sum::<u128>() / b.timings_ns.len() as u128;
    eprintln!(
        "bench {name}: min {:.3} ms, mean {:.3} ms over {} iters",
        min as f64 / 1e6,
        mean as f64 / 1e6,
        b.timings_ns.len()
    );
}

/// `criterion_group!(name, target, ...)` — plain function that runs each
/// target against a default `Criterion`. The configured form
/// (`config = ...`) is not supported by this shim.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
