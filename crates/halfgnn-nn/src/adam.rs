//! Adam optimizer over f32 master parameters.
//!
//! Mixed-precision training keeps the update in float (Micikevicius et
//! al., point 2): gradients arrive as f32 (converted from half if the
//! backward pass produced half), and the master copy never loses precision
//! to rounding of small updates.

/// Adam state for one flat parameter group.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// New optimizer for `n` parameters.
    pub fn new(n: usize, lr: f32) -> Adam {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: vec![0.0; n], v: vec![0.0; n] }
    }

    /// Number of parameters managed.
    pub fn len(&self) -> usize {
        self.m.len()
    }

    /// True when managing zero parameters.
    pub fn is_empty(&self) -> bool {
        self.m.is_empty()
    }

    /// One update step: `params -= lr * m̂ / (sqrt(v̂) + eps)`.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), self.m.len(), "param count mismatch");
        assert_eq!(grads.len(), self.m.len(), "grad count mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mh = self.m[i] / bc1;
            let vh = self.v[i] / bc2;
            params[i] -= self.lr * mh / (vh.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_a_quadratic() {
        // f(x) = (x - 3)^2; gradient 2(x - 3).
        let mut x = vec![0.0f32];
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 0.05, "x = {}", x[0]);
    }

    #[test]
    fn first_step_is_lr_sized() {
        // Bias correction makes the very first step ≈ lr * sign(grad).
        let mut x = vec![1.0f32];
        let mut opt = Adam::new(1, 0.01);
        opt.step(&mut x, &[5.0]);
        assert!((x[0] - (1.0 - 0.01)).abs() < 1e-4, "x = {}", x[0]);
    }

    #[test]
    fn scale_invariance_of_direction() {
        // Adam's per-parameter normalization: huge gradients do not blow up
        // the step (why GIN's raw-sum activations can still train).
        let mut x = vec![0.0f32];
        let mut opt = Adam::new(1, 0.01);
        opt.step(&mut x, &[1e6]);
        assert!(x[0].abs() < 0.011, "step bounded: {}", x[0]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn shape_mismatch_panics() {
        let mut opt = Adam::new(2, 0.1);
        opt.step(&mut [0.0], &[1.0]);
    }
}
