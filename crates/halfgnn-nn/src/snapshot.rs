//! Deterministic model-weight snapshots: the trainer writes, the serving
//! engine consumes.
//!
//! Same durability discipline as the tuner's plan cache: saves go through
//! a pid-suffixed sibling temp file and an atomic rename, and decoding is
//! torn-file-tolerant — any truncated, corrupted, or wrong-version file
//! loads as `None`, never a panic or silently wrong weights. The payload
//! is raw IEEE bits in hex (u32 per f32 element, u16 per f16 element)
//! with a splitmix64 rolling checksum, so round-trips are bit-exact for
//! both dtypes and the file is byte-identical across hosts.

use crate::models::ModelKind;
use halfgnn_half::slice::{f32_slice_to_half, half_slice_to_f32};
use halfgnn_half::Half;
use std::io;
use std::path::Path;

const MAGIC: &str = "halfgnn-snapshot v1";
const WORDS_PER_LINE: usize = 16;

/// Storage precision of a snapshot payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotDtype {
    F32,
    F16,
}

#[derive(Clone, Debug, PartialEq)]
enum Payload {
    F32(Vec<f32>),
    F16(Vec<Half>),
}

/// A trained model's flattened parameters plus the dims needed to
/// reconstruct them.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelSnapshot {
    pub model: ModelKind,
    pub f_in: usize,
    pub hidden: usize,
    pub classes: usize,
    payload: Payload,
}

fn model_tag(m: ModelKind) -> &'static str {
    match m {
        ModelKind::Gcn => "gcn",
        ModelKind::Gat => "gat",
        ModelKind::Gin => "gin",
        ModelKind::Sage => "sage",
    }
}

fn parse_model(tag: &str) -> Option<ModelKind> {
    match tag {
        "gcn" => Some(ModelKind::Gcn),
        "gat" => Some(ModelKind::Gat),
        "gin" => Some(ModelKind::Gin),
        "sage" => Some(ModelKind::Sage),
        _ => None,
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn checksum(words: impl Iterator<Item = u64>) -> u64 {
    words.fold(0u64, |acc, w| splitmix64(acc ^ w))
}

impl ModelSnapshot {
    /// Snapshot f32 master weights as-is (bit-exact round trip).
    pub fn from_f32(
        model: ModelKind,
        f_in: usize,
        hidden: usize,
        classes: usize,
        flat: &[f32],
    ) -> ModelSnapshot {
        ModelSnapshot { model, f_in, hidden, classes, payload: Payload::F32(flat.to_vec()) }
    }

    /// Snapshot weights quantized to f16 — half the bytes on disk and in
    /// a serving cache, at the cost of one round-to-nearest-even cast.
    /// The *stored f16 bits* round-trip exactly.
    pub fn from_f32_as_f16(
        model: ModelKind,
        f_in: usize,
        hidden: usize,
        classes: usize,
        flat: &[f32],
    ) -> ModelSnapshot {
        ModelSnapshot {
            model,
            f_in,
            hidden,
            classes,
            payload: Payload::F16(f32_slice_to_half(flat)),
        }
    }

    pub fn dtype(&self) -> SnapshotDtype {
        match self.payload {
            Payload::F32(_) => SnapshotDtype::F32,
            Payload::F16(_) => SnapshotDtype::F16,
        }
    }

    /// Number of parameters in the payload.
    pub fn len(&self) -> usize {
        match &self.payload {
            Payload::F32(v) => v.len(),
            Payload::F16(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The flat parameter vector in f32 (f16 payloads are widened — each
    /// f16 bit pattern maps to exactly one f32, so this loses nothing the
    /// snapshot stored).
    pub fn flat_f32(&self) -> Vec<f32> {
        match &self.payload {
            Payload::F32(v) => v.clone(),
            Payload::F16(v) => half_slice_to_f32(v),
        }
    }

    /// The raw f16 payload, when that is the stored dtype.
    pub fn bits_f16(&self) -> Option<&[Half]> {
        match &self.payload {
            Payload::F16(v) => Some(v),
            Payload::F32(_) => None,
        }
    }

    fn payload_words(&self) -> Vec<u64> {
        match &self.payload {
            Payload::F32(v) => v.iter().map(|x| x.to_bits() as u64).collect(),
            Payload::F16(v) => v.iter().map(|x| x.to_bits() as u64).collect(),
        }
    }

    /// Serialize to the on-disk text form. Deterministic: the same
    /// snapshot always encodes to the same bytes.
    pub fn encode(&self) -> String {
        let words = self.payload_words();
        let (dtype_tag, width) = match self.dtype() {
            SnapshotDtype::F32 => ("f32", 8),
            SnapshotDtype::F16 => ("f16", 4),
        };
        let mut s = String::new();
        s.push_str(MAGIC);
        s.push('\n');
        s.push_str(&format!("model {}\n", model_tag(self.model)));
        s.push_str(&format!("dims {} {} {}\n", self.f_in, self.hidden, self.classes));
        s.push_str(&format!("dtype {dtype_tag}\n"));
        s.push_str(&format!("len {}\n", words.len()));
        for chunk in words.chunks(WORDS_PER_LINE) {
            for (i, w) in chunk.iter().enumerate() {
                if i > 0 {
                    s.push(' ');
                }
                s.push_str(&format!("{w:0width$x}"));
            }
            s.push('\n');
        }
        s.push_str(&format!("sum {:016x}\n", checksum(words.iter().copied())));
        s.push_str("end\n");
        s
    }

    /// Parse the on-disk form. Any deviation — bad magic, unknown model
    /// or dtype, short or long payload, checksum mismatch, missing `end`
    /// terminator — yields `None`.
    pub fn decode(text: &str) -> Option<ModelSnapshot> {
        let mut lines = text.lines();
        if lines.next()? != MAGIC {
            return None;
        }
        let model = parse_model(lines.next()?.strip_prefix("model ")?)?;
        let mut dims = lines.next()?.strip_prefix("dims ")?.split(' ');
        let f_in: usize = dims.next()?.parse().ok()?;
        let hidden: usize = dims.next()?.parse().ok()?;
        let classes: usize = dims.next()?.parse().ok()?;
        if dims.next().is_some() {
            return None;
        }
        let dtype = match lines.next()?.strip_prefix("dtype ")? {
            "f32" => SnapshotDtype::F32,
            "f16" => SnapshotDtype::F16,
            _ => return None,
        };
        let len: usize = lines.next()?.strip_prefix("len ")?.parse().ok()?;
        let mut words: Vec<u64> = Vec::with_capacity(len);
        while words.len() < len {
            for tok in lines.next()?.split(' ') {
                if words.len() == len {
                    return None; // payload line longer than declared
                }
                words.push(u64::from_str_radix(tok, 16).ok()?);
            }
        }
        let sum = u64::from_str_radix(lines.next()?.strip_prefix("sum ")?, 16).ok()?;
        // The terminator must be the final line *and* newline-complete:
        // `lines()` yields "end" even without its trailing newline, and a
        // write torn one byte short of complete must still read as torn.
        if sum != checksum(words.iter().copied())
            || lines.next()? != "end"
            || lines.next().is_some()
            || !text.ends_with("end\n")
        {
            return None;
        }
        let payload = match dtype {
            SnapshotDtype::F32 => {
                if words.iter().any(|&w| w > u32::MAX as u64) {
                    return None;
                }
                Payload::F32(words.iter().map(|&w| f32::from_bits(w as u32)).collect())
            }
            SnapshotDtype::F16 => {
                if words.iter().any(|&w| w > u16::MAX as u64) {
                    return None;
                }
                Payload::F16(words.iter().map(|&w| Half::from_bits(w as u16)).collect())
            }
        };
        Some(ModelSnapshot { model, f_in, hidden, classes, payload })
    }

    /// Write atomically: pid-suffixed sibling temp file, then rename, so
    /// a concurrent reader sees either the old complete file or the new
    /// one — never a torn mix.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, self.encode())?;
        std::fs::rename(&tmp, path)
    }

    /// Load from `path`; missing, unreadable, or torn files yield `None`.
    pub fn load(path: &Path) -> Option<ModelSnapshot> {
        ModelSnapshot::decode(&std::fs::read_to_string(path).ok()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weird_f32s() -> Vec<f32> {
        vec![
            0.0,
            -0.0,
            1.0,
            -1.5,
            f32::MIN_POSITIVE,
            f32::MIN_POSITIVE / 2.0, // subnormal
            f32::MAX,
            3.14159265,
            -2.718281828e-12,
            65504.0,
        ]
    }

    #[test]
    fn f32_round_trip_is_bit_exact() {
        let snap = ModelSnapshot::from_f32(ModelKind::Gcn, 8, 6, 2, &weird_f32s());
        let back = ModelSnapshot::decode(&snap.encode()).expect("decode");
        assert_eq!(back, snap);
        let bits: Vec<u32> = back.flat_f32().iter().map(|v| v.to_bits()).collect();
        let orig: Vec<u32> = weird_f32s().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, orig);
    }

    #[test]
    fn f16_round_trip_preserves_half_bits_exactly() {
        let snap = ModelSnapshot::from_f32_as_f16(ModelKind::Sage, 16, 8, 4, &weird_f32s());
        let back = ModelSnapshot::decode(&snap.encode()).expect("decode");
        assert_eq!(back.dtype(), SnapshotDtype::F16);
        assert_eq!(
            back.bits_f16().unwrap().iter().map(|h| h.to_bits()).collect::<Vec<_>>(),
            snap.bits_f16().unwrap().iter().map(|h| h.to_bits()).collect::<Vec<_>>()
        );
        // And widening back to f32 matches the quantize-then-widen path.
        assert_eq!(back.flat_f32(), snap.flat_f32());
    }

    #[test]
    fn encode_is_deterministic() {
        let a = ModelSnapshot::from_f32(ModelKind::Gat, 8, 6, 2, &weird_f32s());
        assert_eq!(a.encode(), a.encode());
        assert_eq!(ModelSnapshot::decode(&a.encode()).unwrap().encode(), a.encode());
    }

    #[test]
    fn every_torn_prefix_decodes_to_none() {
        // A crash can leave any byte prefix on disk; every one must be
        // rejected (the payload is length-declared and checksummed, so no
        // proper prefix can masquerade as complete).
        let text = ModelSnapshot::from_f32(ModelKind::Gcn, 8, 6, 2, &vec![0.125f32; 100]).encode();
        for i in 0..text.len() {
            assert!(
                ModelSnapshot::decode(&text[..i]).is_none(),
                "prefix of {i} bytes decoded as a complete snapshot"
            );
        }
        assert!(ModelSnapshot::decode(&text).is_some());
    }

    #[test]
    fn corrupted_payloads_and_headers_are_rejected() {
        let snap = ModelSnapshot::from_f32(ModelKind::Gcn, 8, 6, 2, &weird_f32s());
        let text = snap.encode();
        // Flip one payload nibble: checksum catches it.
        let flipped = text.replacen("3f800000", "3f800001", 1);
        assert_ne!(flipped, text, "test needs the 1.0 bit pattern present");
        assert!(ModelSnapshot::decode(&flipped).is_none());
        for bad in [
            text.replace(MAGIC, "halfgnn-snapshot v0"),
            text.replace("model gcn", "model transformer"),
            text.replace("dtype f32", "dtype f64"),
            text.replace("\nend\n", "\n"),
        ] {
            assert!(ModelSnapshot::decode(&bad).is_none(), "accepted: {bad:.60}");
        }
    }

    #[test]
    fn save_load_round_trip_and_missing_file() {
        let dir = std::env::temp_dir().join("halfgnn-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.snap");
        let snap = ModelSnapshot::from_f32(ModelKind::Gin, 8, 6, 2, &weird_f32s());
        snap.save(&path).unwrap();
        assert_eq!(ModelSnapshot::load(&path), Some(snap.clone()));
        assert_eq!(ModelSnapshot::load(&dir.join("missing.snap")), None);
        // Torn file on disk loads as None, and a fresh save repairs it.
        let text = snap.encode();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert_eq!(ModelSnapshot::load(&path), None);
        snap.save(&path).unwrap();
        assert_eq!(ModelSnapshot::load(&path), Some(snap));
        std::fs::remove_file(&path).ok();
    }
}
