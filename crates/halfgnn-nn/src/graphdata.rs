//! Precomputed per-graph training state: both storage formats, degree-norm
//! tables in both precisions, and the transpose permutation backward
//! passes use to reindex edge tensors.

use halfgnn_graph::{Coo, Csr};
use halfgnn_half::Half;
use halfgnn_kernels::common::{row_scales_inv_sqrt, row_scales_mean};

/// Everything the model steps need about the graph, computed once.
pub struct PreparedGraph {
    /// Canonical COO of Â (symmetrized, self-looped).
    pub coo: Coo,
    /// CSR of Â.
    pub csr: Csr,
    /// Row degrees.
    pub degrees: Vec<u32>,
    /// `1/deg` per row in half (discretized mean scaling).
    pub mean_scale_h: Vec<Half>,
    /// `1/deg` per row in f32.
    pub mean_scale_f: Vec<f32>,
    /// `1/sqrt(deg)` per row in half (GCN `both` norm).
    pub inv_sqrt_scale_h: Vec<Half>,
    /// `1/sqrt(deg)` per row in f32.
    pub inv_sqrt_scale_f: Vec<f32>,
    /// Transpose permutation: `alpha_t[i] = alpha[t_perm[i]]`.
    pub t_perm: Vec<usize>,
}

impl PreparedGraph {
    /// Build from a symmetric adjacency (panics otherwise: GNN training
    /// assumes Â = Âᵀ so backward kernels can reuse the same structure).
    pub fn new(csr: &Csr) -> PreparedGraph {
        assert!(csr.is_symmetric(), "training graphs must be symmetrized");
        let coo = csr.to_coo();
        let degrees = csr.degrees();
        let mean_scale_h = row_scales_mean(&degrees);
        let mean_scale_f =
            degrees.iter().map(|&d| if d == 0 { 0.0 } else { 1.0 / d as f32 }).collect();
        let inv_sqrt_scale_h = row_scales_inv_sqrt(&degrees);
        let inv_sqrt_scale_f: Vec<f32> =
            degrees.iter().map(|&d| if d == 0 { 0.0 } else { 1.0 / (d as f32).sqrt() }).collect();
        let t_perm = coo.transpose_permutation();
        PreparedGraph {
            coo,
            csr: csr.clone(),
            degrees,
            mean_scale_h,
            mean_scale_f,
            inv_sqrt_scale_h,
            inv_sqrt_scale_f,
            t_perm,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.coo.num_rows()
    }

    /// Number of edges.
    pub fn nnz(&self) -> usize {
        self.coo.nnz()
    }

    /// Permute an edge tensor into transpose order.
    pub fn permute_to_transpose<T: Copy>(&self, e: &[T]) -> Vec<T> {
        self.t_perm.iter().map(|&i| e[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_graph_tables() {
        let csr = Csr::from_edges(4, 4, &[(0, 1), (1, 2)]).symmetrized_with_self_loops();
        let g = PreparedGraph::new(&csr);
        assert_eq!(g.n(), 4);
        assert_eq!(g.degrees.len(), 4);
        for (v, &d) in g.degrees.iter().enumerate() {
            assert!((g.mean_scale_f[v] - 1.0 / d as f32).abs() < 1e-6);
            assert!((g.mean_scale_h[v].to_f32() - 1.0 / d as f32).abs() < 1e-3);
            assert!((g.inv_sqrt_scale_h[v].to_f32() - 1.0 / (d as f32).sqrt()).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_permutation_is_identity_on_symmetric_values() {
        // For a symmetric graph, permuting twice returns the original.
        let csr = Csr::from_edges(5, 5, &[(0, 1), (2, 3), (1, 4)]).symmetrized_with_self_loops();
        let g = PreparedGraph::new(&csr);
        let vals: Vec<usize> = (0..g.nnz()).collect();
        let once = g.permute_to_transpose(&vals);
        let twice = g.permute_to_transpose(&once);
        assert_eq!(twice, vals);
    }

    #[test]
    #[should_panic(expected = "symmetrized")]
    fn asymmetric_graph_rejected() {
        let csr = Csr::from_edges(3, 3, &[(0, 1)]);
        PreparedGraph::new(&csr);
    }
}
