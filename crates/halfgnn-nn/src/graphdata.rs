//! Precomputed per-graph training state: both storage formats, degree-norm
//! tables in both precisions, and the transpose permutation backward
//! passes use to reindex edge tensors.

use halfgnn_graph::{BatchSubgraph, Coo, Csr, VertexId};
use halfgnn_half::Half;
use halfgnn_kernels::common::{row_scales_inv_sqrt, row_scales_mean};
use std::ops::Deref;

/// Everything the model steps need about the graph, computed once.
pub struct PreparedGraph {
    /// Canonical COO of Â (symmetrized, self-looped).
    pub coo: Coo,
    /// CSR of Â.
    pub csr: Csr,
    /// Row degrees.
    pub degrees: Vec<u32>,
    /// `1/deg` per row in half (discretized mean scaling).
    pub mean_scale_h: Vec<Half>,
    /// `1/deg` per row in f32.
    pub mean_scale_f: Vec<f32>,
    /// `1/sqrt(deg)` per row in half (GCN `both` norm).
    pub inv_sqrt_scale_h: Vec<Half>,
    /// `1/sqrt(deg)` per row in f32.
    pub inv_sqrt_scale_f: Vec<f32>,
    /// Transpose permutation: `alpha_t[i] = alpha[t_perm[i]]`.
    pub t_perm: Vec<usize>,
}

impl PreparedGraph {
    /// Build from a symmetric adjacency (panics otherwise: GNN training
    /// assumes Â = Âᵀ so backward kernels can reuse the same structure).
    pub fn new(csr: &Csr) -> PreparedGraph {
        assert!(csr.is_symmetric(), "training graphs must be symmetrized");
        let coo = csr.to_coo();
        let degrees = csr.degrees();
        let mean_scale_h = row_scales_mean(&degrees);
        let mean_scale_f =
            degrees.iter().map(|&d| if d == 0 { 0.0 } else { 1.0 / d as f32 }).collect();
        let inv_sqrt_scale_h = row_scales_inv_sqrt(&degrees);
        let inv_sqrt_scale_f: Vec<f32> =
            degrees.iter().map(|&d| if d == 0 { 0.0 } else { 1.0 / (d as f32).sqrt() }).collect();
        let t_perm = coo.transpose_permutation();
        PreparedGraph {
            coo,
            csr: csr.clone(),
            degrees,
            mean_scale_h,
            mean_scale_f,
            inv_sqrt_scale_h,
            inv_sqrt_scale_f,
            t_perm,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.coo.num_rows()
    }

    /// Number of edges.
    pub fn nnz(&self) -> usize {
        self.coo.nnz()
    }

    /// Permute an edge tensor into transpose order.
    pub fn permute_to_transpose<T: Copy>(&self, e: &[T]) -> Vec<T> {
        self.t_perm.iter().map(|&i| e[i]).collect()
    }
}

/// Where a [`GraphView`] came from: the workspace-wide graph, or one
/// sampled batch subgraph.
#[derive(Clone, Debug)]
pub enum ViewOrigin {
    /// The full training graph (the paper's full-batch setting).
    Full,
    /// A neighbor-sampled batch subgraph in local ids.
    Batch(BatchMeta),
}

/// Provenance of a batch subgraph: the id map back to the global graph
/// plus the `(epoch, batch)` coordinates overflow events report.
#[derive(Clone, Debug)]
pub struct BatchMeta {
    /// Local → global vertex map (seeds first).
    pub global_ids: Vec<VertexId>,
    /// Rows `0..n_seeds` are the batch's loss-bearing seed vertices.
    pub n_seeds: usize,
    /// Epoch the batch was sampled in.
    pub epoch: usize,
    /// Batch index within the epoch's schedule.
    pub batch: usize,
}

/// The graph a model step runs on: a [`PreparedGraph`] plus its origin.
///
/// Models, `Dispatch`, and the trainer take `&GraphView` instead of the
/// workspace-wide CSR, so the same step functions serve full-batch
/// training and sampled mini-batches. `Deref` to [`PreparedGraph`] keeps
/// kernel call sites (`g.csr`, `g.n()`, `g.mean_scale_h`) unchanged.
pub struct GraphView {
    prepared: PreparedGraph,
    origin: ViewOrigin,
}

impl Deref for GraphView {
    type Target = PreparedGraph;
    fn deref(&self) -> &PreparedGraph {
        &self.prepared
    }
}

impl GraphView {
    /// View of the full training graph (must already be symmetric Â).
    pub fn full(csr: &Csr) -> GraphView {
        GraphView { prepared: PreparedGraph::new(csr), origin: ViewOrigin::Full }
    }

    /// View of one sampled batch. The raw sampled CSR has fanout-bounded
    /// in-rows but is *not* symmetric; the step functions assume Â = Âᵀ
    /// (shared forward/backward structure), so the batch adjacency is
    /// Â_B = sym(sample) + I over the batch's local vertex set.
    pub fn batch(sub: &BatchSubgraph, epoch: usize, batch: usize) -> GraphView {
        let adj = sub.csr.symmetrized_with_self_loops();
        GraphView {
            prepared: PreparedGraph::new(&adj),
            origin: ViewOrigin::Batch(BatchMeta {
                global_ids: sub.global_ids.clone(),
                n_seeds: sub.n_seeds,
                epoch,
                batch,
            }),
        }
    }

    /// True when this view is a sampled batch subgraph.
    pub fn is_batch(&self) -> bool {
        matches!(self.origin, ViewOrigin::Batch(_))
    }

    /// Batch provenance, when this is a batch view.
    pub fn meta(&self) -> Option<&BatchMeta> {
        match &self.origin {
            ViewOrigin::Full => None,
            ViewOrigin::Batch(m) => Some(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_graph_tables() {
        let csr = Csr::from_edges(4, 4, &[(0, 1), (1, 2)]).symmetrized_with_self_loops();
        let g = PreparedGraph::new(&csr);
        assert_eq!(g.n(), 4);
        assert_eq!(g.degrees.len(), 4);
        for (v, &d) in g.degrees.iter().enumerate() {
            assert!((g.mean_scale_f[v] - 1.0 / d as f32).abs() < 1e-6);
            assert!((g.mean_scale_h[v].to_f32() - 1.0 / d as f32).abs() < 1e-3);
            assert!((g.inv_sqrt_scale_h[v].to_f32() - 1.0 / (d as f32).sqrt()).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_permutation_is_identity_on_symmetric_values() {
        // For a symmetric graph, permuting twice returns the original.
        let csr = Csr::from_edges(5, 5, &[(0, 1), (2, 3), (1, 4)]).symmetrized_with_self_loops();
        let g = PreparedGraph::new(&csr);
        let vals: Vec<usize> = (0..g.nnz()).collect();
        let once = g.permute_to_transpose(&vals);
        let twice = g.permute_to_transpose(&once);
        assert_eq!(twice, vals);
    }

    #[test]
    #[should_panic(expected = "symmetrized")]
    fn asymmetric_graph_rejected() {
        let csr = Csr::from_edges(3, 3, &[(0, 1)]);
        PreparedGraph::new(&csr);
    }

    #[test]
    fn full_view_derefs_to_prepared_graph() {
        let csr = Csr::from_edges(4, 4, &[(0, 1), (1, 2)]).symmetrized_with_self_loops();
        let v = GraphView::full(&csr);
        assert!(!v.is_batch());
        assert!(v.meta().is_none());
        assert_eq!(v.n(), 4);
        assert_eq!(v.csr, csr);
    }

    #[test]
    fn batch_view_symmetrizes_the_sampled_csr_and_keeps_provenance() {
        // A raw sampled subgraph is directed (fanout-bounded rows).
        let sub = BatchSubgraph {
            csr: Csr::from_edges(3, 3, &[(0, 1), (0, 2), (1, 2)]),
            global_ids: vec![7, 3, 9],
            n_seeds: 2,
        };
        let v = GraphView::batch(&sub, 4, 1);
        assert!(v.is_batch());
        assert!(v.csr.is_symmetric(), "batch adjacency must be symmetric");
        for u in 0..3u32 {
            assert!(v.csr.row(u).contains(&u), "missing self loop at {u}");
        }
        let m = v.meta().unwrap();
        assert_eq!(m.global_ids, vec![7, 3, 9]);
        assert_eq!((m.n_seeds, m.epoch, m.batch), (2, 4, 1));
    }
}
