//! Sharded-training context: the partition plan, the interconnect cost
//! model, and the comms ledger, bundled so the dispatch layer can charge
//! every halo exchange and gradient all-reduce of a step.
//!
//! The execution model is 1D vertex sharding (DESIGN.md §12): every device
//! owns a contiguous global row range and runs the *global* kernel tiling
//! clamped to its window, so sharded outputs are bitwise slices of the
//! single-device run. Communication is therefore the only thing that
//! changes with the shard count — and it is exactly what this context
//! meters: per-layer halo feature exchanges (2 bytes/element in half
//! modes, 4 in float — the FP16 comms win) and per-step gradient
//! all-reduces (f16 wire with discretized per-bucket scaling in half
//! modes, f32 wire in float).

use halfgnn_exec::buf_ref;
use halfgnn_graph::partition::{partition, PartitionStrategy, Shard, ShardPlan};
use halfgnn_graph::Csr;
use halfgnn_half::Half;
use halfgnn_kernels::dist as dist_kernels;
use halfgnn_sim::interconnect::{CommsLedger, Interconnect, Topology, TrafficClass};
use halfgnn_tensor::Ops;
use std::cell::RefCell;

/// Gradient all-reduce bucket size (elements sharing one discretized
/// exponent on the f16 wire). 64 matches the kernel tests and keeps the
/// shared exponent local enough that small gradients aren't crushed by a
/// distant hub gradient in the same bucket.
pub const ALLREDUCE_BUCKET: usize = 64;

/// Everything the dispatch layer needs to run and cost one step of
/// sharded training.
pub struct DistCtx {
    /// The 1D vertex partition.
    pub plan: ShardPlan,
    /// Link latency/bandwidth + topology.
    pub interconnect: Interconnect,
    /// Accumulated comms charges (reset per epoch by the trainer).
    pub ledger: RefCell<CommsLedger>,
}

impl DistCtx {
    /// Partition `csr` over `shards` simulated devices.
    pub fn new(
        csr: &Csr,
        shards: usize,
        strategy: PartitionStrategy,
        topology: Topology,
    ) -> DistCtx {
        DistCtx {
            plan: partition(csr, shards, strategy),
            interconnect: Interconnect::nvlink_like(shards, topology),
            ledger: RefCell::new(CommsLedger::new()),
        }
    }

    /// Number of simulated devices.
    pub fn num_shards(&self) -> usize {
        self.plan.num_shards()
    }

    /// Drop the ledger's accumulated charges (per-epoch reuse).
    pub fn reset_epoch(&self) {
        self.ledger.borrow_mut().reset();
    }

    /// Snapshot of the accumulated comms charges.
    pub fn snapshot(&self) -> CommsLedger {
        self.ledger.borrow().clone()
    }

    /// Charge `shard`'s halo feature exchange: each owner shard sends its
    /// share of the halo rows as one `rows · f · elem_bytes` message.
    fn charge_halo(&self, shard: &Shard, f: usize, elem_bytes: usize) {
        let mut ledger = self.ledger.borrow_mut();
        for &(src, rows) in self.plan.halo_sources(shard.index) {
            ledger.message(
                &self.interconnect,
                TrafficClass::Halo,
                src,
                shard.index,
                (rows * f * elem_bytes) as u64,
            );
        }
    }

    /// Run `shard`'s half halo gather (pack the remote rows it needs into
    /// the wire buffer) and charge the exchange. Returns the wire buffer.
    pub fn exchange_halo_half(
        &self,
        ops: &mut Ops,
        x: &[Half],
        f: usize,
        shard: &Shard,
    ) -> Vec<Half> {
        let (wire, stats) = dist_kernels::halo_gather_half(ops.dev, x, f, &shard.halo);
        ops.record(stats);
        if let Some(ctx) = ops.exec {
            ctx.record_node("halo_gather_half", &[buf_ref(x)], &[buf_ref(&wire)], None);
        }
        self.charge_halo(shard, f, 2);
        wire
    }

    /// [`Self::exchange_halo_half`] for the float pipeline: same rows,
    /// twice the bytes on every link.
    pub fn exchange_halo_f32(&self, ops: &mut Ops, x: &[f32], f: usize, shard: &Shard) -> Vec<f32> {
        let (wire, stats) = dist_kernels::halo_gather_f32(ops.dev, x, f, &shard.halo);
        ops.record(stats);
        if let Some(ctx) = ops.exec {
            ctx.record_node("halo_gather_f32", &[buf_ref(x)], &[buf_ref(&wire)], None);
        }
        self.charge_halo(shard, f, 4);
        wire
    }

    /// All-reduce per-shard half gradient partials over the f16 wire with
    /// discretized per-bucket scaling, charging the topology's all-reduce
    /// traffic. Returns the reduced gradient in half (the mode's gradient
    /// dtype); the power-of-two dequantization means no overflow events by
    /// construction, whatever the hub gradients look like.
    pub fn allreduce_grad_half(&self, ops: &mut Ops, partials: &[Vec<Half>]) -> Vec<Half> {
        let f32_partials: Vec<Vec<f32>> = partials.iter().map(|p| ops.to_f32(p)).collect();
        let reduced = self.allreduce_f32_on_f16_wire(ops, &f32_partials);
        ops.to_half(&reduced)
    }

    /// [`Self::allreduce_grad_half`] for f32-valued partials (bias
    /// gradients are accumulated in f32): the wire is still half — each
    /// shard's contribution is quantized to f16 under the bucket's shared
    /// discretized exponent — so the traffic charge is 2 bytes/element.
    pub fn allreduce_f32_on_f16_wire(&self, ops: &mut Ops, partials: &[Vec<f32>]) -> Vec<f32> {
        let (reduced, stats) =
            dist_kernels::allreduce_f16_discretized(ops.dev, partials, ALLREDUCE_BUCKET);
        ops.record(stats);
        let n = reduced.len();
        self.ledger.borrow_mut().all_reduce(&self.interconnect, (n * 2) as u64);
        reduced
    }

    /// Charge (only) the float gradient all-reduce: the functional value
    /// is the exact global reduction the single-device step already
    /// computed, so float sharded training stays bit-identical; the f32
    /// wire moves twice the bytes of the half path.
    pub fn charge_allreduce_f32(&self, elems: usize) {
        self.ledger.borrow_mut().all_reduce(&self.interconnect, (elems * 4) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halfgnn_half::slice::f32_slice_to_half;
    use halfgnn_sim::DeviceConfig;

    fn ctx(shards: usize, topology: Topology) -> DistCtx {
        let csr = Csr::from_edges(8, 8, &[(0, 5), (1, 6), (2, 7), (5, 0), (6, 1), (7, 2)])
            .symmetrized_with_self_loops();
        DistCtx::new(&csr, shards, PartitionStrategy::Contiguous, topology)
    }

    #[test]
    fn halo_exchange_charges_half_the_bytes_in_half() {
        let dev = DeviceConfig::a100_like();
        let c = ctx(2, Topology::Ring);
        let f = 4;
        let xf: Vec<f32> = (0..8 * f).map(|i| i as f32 * 0.1).collect();
        let xh = f32_slice_to_half(&xf);
        let mut ops = Ops::new(&dev);
        for s in &c.plan.shards {
            c.exchange_halo_half(&mut ops, &xh, f, s);
        }
        let half_bytes = c.snapshot().halo_bytes;
        c.reset_epoch();
        for s in &c.plan.shards {
            c.exchange_halo_f32(&mut ops, &xf, f, s);
        }
        let float_bytes = c.snapshot().halo_bytes;
        assert!(half_bytes > 0);
        assert_eq!(float_bytes, 2 * half_bytes);
    }

    #[test]
    fn allreduce_reduces_and_charges() {
        let dev = DeviceConfig::a100_like();
        let c = ctx(4, Topology::AllToAll);
        let mut ops = Ops::new(&dev);
        let partials: Vec<Vec<Half>> =
            (0..4).map(|s| f32_slice_to_half(&vec![0.25 * (s + 1) as f32; 100])).collect();
        let got = c.allreduce_grad_half(&mut ops, &partials);
        for v in &got {
            assert!((v.to_f32() - 2.5).abs() < 0.05, "{v}");
        }
        assert!(c.snapshot().allreduce_bytes > 0);
    }

    #[test]
    fn single_shard_has_no_traffic() {
        let dev = DeviceConfig::a100_like();
        let c = ctx(1, Topology::Ring);
        let f = 2;
        let xh = f32_slice_to_half(&vec![1.0; 8 * f]);
        let mut ops = Ops::new(&dev);
        for s in &c.plan.shards {
            assert!(s.halo.is_empty(), "one shard owns everything");
            c.exchange_halo_half(&mut ops, &xh, f, s);
        }
        c.charge_allreduce_f32(100);
        assert_eq!(c.snapshot().total_bytes(), 0);
    }
}
