//! Sharded-training context: the partition plan, the interconnect cost
//! model, the comms ledger, the cross-epoch halo cache, and the
//! comm/compute overlap timeline, bundled so the dispatch layer can run
//! and cost every halo exchange and gradient all-reduce of a step.
//!
//! The execution model is 1D/1.5D vertex sharding (DESIGN.md §12, §16):
//! every device owns a contiguous global row range and runs the *global*
//! kernel tiling clamped to its window, so sharded outputs are bitwise
//! slices of the single-device run. Communication is therefore the only
//! thing that changes with the shard count — and it is exactly what this
//! context meters: per-layer halo feature exchanges (2 bytes/element in
//! half modes, 4 in float — the FP16 comms win) and per-step gradient
//! all-reduces (f16 wire with discretized per-bucket scaling in half
//! modes, f32 wire in float).
//!
//! Three cost layers sit on top of the functional exchange:
//!
//! * **Wire-charge assignment** ([`ShardPlan::wire_rows`]): under 1D each
//!   shard pays for its own halo; under 1.5D a replication group pays for
//!   its out-of-group halo union once.
//! * **Cross-epoch halo cache**: a wire row whose source did not change
//!   since the last fetch (input features are static across epochs) is
//!   served from the local copy and charged zero bytes. Slots are keyed
//!   `(shard, exchange-seq-within-epoch, elem_bytes)` — valid because the
//!   epoch kernel sequence is value-independent. [`DeltaCsr`] inserts
//!   invalidate the touched in-ball via [`DistCtx::invalidate_in_ball`]
//!   (PR8's `reach` machinery). The gather kernel *always* runs — values
//!   are recomputed every exchange, so replay sequences are unchanged and
//!   served rows are bitwise-fresh by construction; the cache affects
//!   only the ledger.
//! * **Overlap timeline** ([`OverlapTimeline`]): every exchange, compute
//!   window and all-reduce is logged per device, yielding the epoch's
//!   `serialized_us` vs `overlapped_us` (double-buffered halo prefetch).
//!
//! [`DeltaCsr`]: halfgnn_graph::DeltaCsr

use halfgnn_exec::buf_ref;
use halfgnn_graph::partition::{partition, PartitionStrategy, Shard, ShardPlan};
use halfgnn_graph::reach::khop_ball;
use halfgnn_graph::sample::NeighborAccess;
use halfgnn_graph::{Csr, VertexId};
use halfgnn_half::Half;
use halfgnn_kernels::dist as dist_kernels;
use halfgnn_sim::interconnect::{
    CommEvent, CommsLedger, Interconnect, OverlapTimeline, Topology, TrafficClass,
};
use halfgnn_tensor::Ops;
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Gradient all-reduce bucket size (elements sharing one discretized
/// exponent on the f16 wire). 64 matches the kernel tests and keeps the
/// shared exponent local enough that small gradients aren't crushed by a
/// distant hub gradient in the same bucket.
pub const ALLREDUCE_BUCKET: usize = 64;

/// Halo-cache counters for one epoch (reset by [`DistCtx::reset_epoch`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HaloCacheStats {
    /// Wire rows served locally (zero bytes charged).
    pub hits: u64,
    /// Wire rows fetched over the interconnect.
    pub misses: u64,
    /// Bytes the hits kept off the wire.
    pub bytes_saved: u64,
}

/// One cached exchange: per-wire-row source versions and the payload
/// bytes as of the last fetch. Aligned index-for-index with the shard's
/// [`ShardPlan::wire_rows`].
struct CacheSlot {
    /// `u64::MAX` marks a never-fetched row.
    versions: Vec<u64>,
    /// `wire_rows.len() · f · elem_bytes` payload bytes.
    payload: Vec<u8>,
}

/// Cross-epoch halo cache state: source-row change stamps plus the
/// per-(shard, seq, dtype) slots.
#[derive(Default)]
struct HaloCache {
    /// Change stamp per global row; a cached copy is valid while its
    /// recorded stamp matches.
    row_version: Vec<u64>,
    version_counter: u64,
    slots: BTreeMap<(usize, usize, usize), CacheSlot>,
    stats: HaloCacheStats,
}

/// Everything the dispatch layer needs to run and cost one step of
/// sharded training.
pub struct DistCtx {
    /// The 1D/1.5D vertex partition.
    pub plan: ShardPlan,
    /// Link latency/bandwidth + topology.
    pub interconnect: Interconnect,
    /// Accumulated comms charges (reset per epoch by the trainer).
    pub ledger: RefCell<CommsLedger>,
    cache: RefCell<HaloCache>,
    timeline: RefCell<OverlapTimeline>,
    /// Per-shard exchange sequence number within the epoch (cache slot
    /// key; the epoch kernel sequence is value-independent).
    seq: RefCell<Vec<usize>>,
    /// INT8 all-reduce bucket: elements sharing one joint exponent on
    /// the INT8 gradient wire (`--i8-block`).
    i8_bucket: usize,
}

impl DistCtx {
    /// Partition `csr` over `shards` simulated devices.
    pub fn new(
        csr: &Csr,
        shards: usize,
        strategy: PartitionStrategy,
        topology: Topology,
    ) -> DistCtx {
        let plan = partition(csr, shards, strategy);
        let cache = HaloCache {
            row_version: vec![0; csr.num_rows()],
            version_counter: 0,
            slots: BTreeMap::new(),
            stats: HaloCacheStats::default(),
        };
        DistCtx {
            plan,
            interconnect: Interconnect::nvlink_like(shards, topology),
            ledger: RefCell::new(CommsLedger::new()),
            cache: RefCell::new(cache),
            timeline: RefCell::new(OverlapTimeline::new(shards)),
            seq: RefCell::new(vec![0; shards]),
            i8_bucket: ALLREDUCE_BUCKET,
        }
    }

    /// Override the INT8 all-reduce bucket size (`--i8-block`). The f16
    /// wire keeps [`ALLREDUCE_BUCKET`] — the knob exists for the INT8
    /// wire, where the joint-exponent width is the accuracy/overhead
    /// trade the paper's discretization sweep studies.
    pub fn with_i8_bucket(mut self, bucket: usize) -> DistCtx {
        self.i8_bucket = bucket;
        self
    }

    /// Number of simulated devices.
    pub fn num_shards(&self) -> usize {
        self.plan.num_shards()
    }

    /// Drop the ledger's charges, the epoch's timeline and cache counters,
    /// and rewind the exchange sequence (per-epoch reuse). Cache
    /// *contents* survive — that is the cross-epoch win.
    pub fn reset_epoch(&self) {
        self.ledger.borrow_mut().reset();
        self.timeline.borrow_mut().reset();
        self.cache.borrow_mut().stats = HaloCacheStats::default();
        self.seq.borrow_mut().iter_mut().for_each(|s| *s = 0);
    }

    /// Snapshot of the accumulated comms charges.
    pub fn snapshot(&self) -> CommsLedger {
        self.ledger.borrow().clone()
    }

    /// Snapshot of the epoch's per-device comm/compute event streams.
    pub fn timeline(&self) -> OverlapTimeline {
        self.timeline.borrow().clone()
    }

    /// The epoch's halo-cache counters so far.
    pub fn halo_cache_stats(&self) -> HaloCacheStats {
        self.cache.borrow().stats
    }

    /// Log `time_us` of kernel compute on `shard`'s device — the window
    /// the next halo prefetch can hide under.
    pub fn log_compute(&self, shard: usize, time_us: f64) {
        self.timeline.borrow_mut().log(shard, CommEvent::Compute(time_us));
    }

    /// Mark `rows` as changed: every cached copy of them is stale and
    /// will be refetched (and recharged) on its next exchange.
    pub fn invalidate_halo_rows(&self, rows: &[VertexId]) {
        let mut cache = self.cache.borrow_mut();
        cache.version_counter += 1;
        let stamp = cache.version_counter;
        for &v in rows {
            cache.row_version[v as usize] = stamp;
        }
    }

    /// Invalidate the in-ball of an edge mutation: after inserting
    /// `(u, v)` through a [`halfgnn_graph::DeltaCsr`], the stale halo rows
    /// are exactly the vertices within `hops` of either endpoint (their
    /// layer-`hops` activations read the new edge). `hops = 0` invalidates
    /// just the endpoints — the right call for static input features
    /// whose rows themselves were overwritten.
    pub fn invalidate_in_ball<G: NeighborAccess>(
        &self,
        g: &G,
        endpoints: &[VertexId],
        hops: usize,
    ) {
        let ball = khop_ball(g, endpoints, hops);
        self.invalidate_halo_rows(&ball);
    }

    /// A currently-valid cached wire row's payload bytes, if any: slot
    /// `(shard, seq, elem_bytes)`, global row `row`. Test hook for the
    /// coherence property — a served row must be bitwise what a cold
    /// exchange would fetch.
    pub fn cached_wire_row(
        &self,
        shard: usize,
        seq: usize,
        elem_bytes: usize,
        row: VertexId,
    ) -> Option<Vec<u8>> {
        let cache = self.cache.borrow();
        let slot = cache.slots.get(&(shard, seq, elem_bytes))?;
        let rows = self.plan.wire_rows(shard);
        let i = rows.binary_search_by_key(&row, |&(v, _)| v).ok()?;
        if slot.versions[i] != cache.row_version[row as usize] {
            return None;
        }
        let row_bytes = slot.payload.len() / rows.len();
        Some(slot.payload[i * row_bytes..(i + 1) * row_bytes].to_vec())
    }

    /// Charge `shard`'s halo exchange against the wire-charge assignment:
    /// each still-valid cached row is served locally for zero bytes; the
    /// misses are fetched from their owners (one message per owner) and
    /// their fresh payload cached. Logs the exchange's receive time as a
    /// `Halo` event on the shard's device.
    fn charge_halo(&self, shard: &Shard, wire_bytes: &[u8], f: usize, elem_bytes: usize) {
        let seq = {
            let mut seqs = self.seq.borrow_mut();
            let s = seqs[shard.index];
            seqs[shard.index] += 1;
            s
        };
        let rows = self.plan.wire_rows(shard.index);
        let row_bytes = f * elem_bytes;
        let mut per_owner: BTreeMap<usize, u64> = BTreeMap::new();
        {
            let cache = &mut *self.cache.borrow_mut();
            let slot =
                cache.slots.entry((shard.index, seq, elem_bytes)).or_insert_with(|| CacheSlot {
                    versions: vec![u64::MAX; rows.len()],
                    payload: vec![0; rows.len() * row_bytes],
                });
            for (i, &(v, owner)) in rows.iter().enumerate() {
                let current = cache.row_version[v as usize];
                // The wire buffer covers the shard's full halo in sorted
                // order; this row's fresh bytes live at its halo index.
                let h =
                    shard.halo.binary_search(&v).expect("every wire row is in the shard's halo");
                let fresh = &wire_bytes[h * row_bytes..(h + 1) * row_bytes];
                let cached = &slot.payload[i * row_bytes..(i + 1) * row_bytes];
                // A hit needs an un-invalidated stamp AND unchanged bytes:
                // the source device tracks writes to its feature rows
                // (activation/gradient exchanges change every epoch), and
                // byte equality is the simulation's proxy for that dirty
                // bit. Served rows are therefore bitwise a cold fetch.
                if slot.versions[i] == current && cached == fresh {
                    cache.stats.hits += 1;
                    cache.stats.bytes_saved += row_bytes as u64;
                } else {
                    cache.stats.misses += 1;
                    *per_owner.entry(owner).or_default() += row_bytes as u64;
                    slot.versions[i] = current;
                    slot.payload[i * row_bytes..(i + 1) * row_bytes].copy_from_slice(fresh);
                }
            }
        }
        let mut ledger = self.ledger.borrow_mut();
        let mut event_us = 0.0;
        for (&src, &bytes) in &per_owner {
            ledger.message(&self.interconnect, TrafficClass::Halo, src, shard.index, bytes);
            event_us += self.interconnect.link_time_us(bytes);
        }
        self.timeline.borrow_mut().log(shard.index, CommEvent::Halo(event_us));
    }

    /// Run `shard`'s half halo gather (pack the remote rows it needs into
    /// the wire buffer) and charge the exchange. Returns the wire buffer.
    /// The gather always runs — replay records an identical kernel
    /// sequence whatever the cache state.
    pub fn exchange_halo_half(
        &self,
        ops: &mut Ops,
        x: &[Half],
        f: usize,
        shard: &Shard,
    ) -> Vec<Half> {
        let (wire, stats) = dist_kernels::halo_gather_half(ops.dev, x, f, &shard.halo);
        ops.record(stats);
        if let Some(ctx) = ops.exec {
            ctx.record_node("halo_gather_half", &[buf_ref(x)], &[buf_ref(&wire)], None);
        }
        let bytes: Vec<u8> = wire.iter().flat_map(|h| h.to_bits().to_le_bytes()).collect();
        self.charge_halo(shard, &bytes, f, 2);
        wire
    }

    /// [`Self::exchange_halo_half`] for the float pipeline: same rows,
    /// twice the bytes on every link.
    pub fn exchange_halo_f32(&self, ops: &mut Ops, x: &[f32], f: usize, shard: &Shard) -> Vec<f32> {
        let (wire, stats) = dist_kernels::halo_gather_f32(ops.dev, x, f, &shard.halo);
        ops.record(stats);
        if let Some(ctx) = ops.exec {
            ctx.record_node("halo_gather_f32", &[buf_ref(x)], &[buf_ref(&wire)], None);
        }
        let bytes: Vec<u8> = wire.iter().flat_map(|v| v.to_bits().to_le_bytes()).collect();
        self.charge_halo(shard, &bytes, f, 4);
        wire
    }

    /// [`Self::exchange_halo_half`] for the INT8 wire: the gather
    /// quantizes the packed remote rows into per-64-element scale-block
    /// INT8 codes on the sender (deterministic stochastic rounding keyed
    /// by `seed`), so the wire moves 1 byte/element — half the f16 path,
    /// a quarter of float. The receiver dequantizes straight to f32; the
    /// codes never round-trip through f16, because a ±127 code under a
    /// large block exponent can exceed binary16 range.
    pub fn exchange_halo_i8(
        &self,
        ops: &mut Ops,
        x: &[Half],
        f: usize,
        shard: &Shard,
        seed: u64,
    ) -> Vec<f32> {
        let (wire, stats) = dist_kernels::halo_gather_i8(ops.dev, x, f, &shard.halo, seed);
        ops.record(stats);
        if let Some(ctx) = ops.exec {
            ctx.record_node("halo_gather_i8", &[buf_ref(x)], &[buf_ref(&wire.q)], None);
        }
        let bytes: Vec<u8> = wire.q.iter().map(|&c| c as u8).collect();
        self.charge_halo(shard, &bytes, f, 1);
        wire.dequantize()
    }

    /// All-reduce per-shard half gradient partials over the f16 wire with
    /// discretized per-bucket scaling, charging the topology's all-reduce
    /// traffic. Returns the reduced gradient in half (the mode's gradient
    /// dtype); the power-of-two dequantization means no overflow events by
    /// construction, whatever the hub gradients look like.
    pub fn allreduce_grad_half(&self, ops: &mut Ops, partials: &[Vec<Half>]) -> Vec<Half> {
        let f32_partials: Vec<Vec<f32>> = partials.iter().map(|p| ops.to_f32(p)).collect();
        let reduced = self.allreduce_f32_on_f16_wire(ops, &f32_partials);
        ops.to_half(&reduced)
    }

    /// [`Self::allreduce_grad_half`] for f32-valued partials (bias
    /// gradients are accumulated in f32): the wire is still half — each
    /// shard's contribution is quantized to f16 under the bucket's shared
    /// discretized exponent — so the traffic charge is 2 bytes/element.
    pub fn allreduce_f32_on_f16_wire(&self, ops: &mut Ops, partials: &[Vec<f32>]) -> Vec<f32> {
        let (reduced, stats) =
            dist_kernels::allreduce_f16_discretized(ops.dev, partials, ALLREDUCE_BUCKET);
        ops.record(stats);
        let n = reduced.len();
        let t = self.ledger.borrow_mut().all_reduce(&self.interconnect, (n * 2) as u64);
        self.log_allreduce(t);
        reduced
    }

    /// [`Self::allreduce_grad_half`] on the INT8 wire: each shard's
    /// bucket contribution is stochastically rounded to INT8 codes under
    /// the bucket's joint exponent, the codes sum exactly in i32, and
    /// the wire moves 1 byte/element.
    pub fn allreduce_grad_i8(&self, ops: &mut Ops, partials: &[Vec<Half>], seed: u64) -> Vec<Half> {
        let f32_partials: Vec<Vec<f32>> = partials.iter().map(|p| ops.to_f32(p)).collect();
        let reduced = self.allreduce_f32_on_i8_wire(ops, &f32_partials, seed);
        ops.to_half(&reduced)
    }

    /// [`Self::allreduce_f32_on_f16_wire`] on the INT8 wire (1
    /// byte/element — half the f16 traffic, a quarter of f32). The joint
    /// per-bucket exponent covers every shard's contribution, so the
    /// integer wire sum cannot saturate by construction.
    pub fn allreduce_f32_on_i8_wire(
        &self,
        ops: &mut Ops,
        partials: &[Vec<f32>],
        seed: u64,
    ) -> Vec<f32> {
        let (reduced, stats) =
            dist_kernels::allreduce_i8_stochastic(ops.dev, partials, self.i8_bucket, seed);
        ops.record(stats);
        let n = reduced.len();
        let t = self.ledger.borrow_mut().all_reduce(&self.interconnect, n as u64);
        self.log_allreduce(t);
        reduced
    }

    /// Charge (only) the float gradient all-reduce: the functional value
    /// is the exact global reduction the single-device step already
    /// computed, so float sharded training stays bit-identical; the f32
    /// wire moves twice the bytes of the half path.
    pub fn charge_allreduce_f32(&self, elems: usize) {
        let t = self.ledger.borrow_mut().all_reduce(&self.interconnect, (elems * 4) as u64);
        self.log_allreduce(t);
    }

    /// An all-reduce is a barrier: every device logs its duration.
    fn log_allreduce(&self, time_us: f64) {
        let mut timeline = self.timeline.borrow_mut();
        for d in 0..self.plan.num_shards() {
            timeline.log(d, CommEvent::AllReduce(time_us));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halfgnn_half::slice::f32_slice_to_half;
    use halfgnn_sim::DeviceConfig;

    fn ctx(shards: usize, topology: Topology) -> DistCtx {
        let csr = Csr::from_edges(8, 8, &[(0, 5), (1, 6), (2, 7), (5, 0), (6, 1), (7, 2)])
            .symmetrized_with_self_loops();
        DistCtx::new(&csr, shards, PartitionStrategy::Contiguous, topology)
    }

    #[test]
    fn halo_exchange_charges_half_the_bytes_in_half() {
        let dev = DeviceConfig::a100_like();
        let c = ctx(2, Topology::Ring);
        let f = 4;
        let xf: Vec<f32> = (0..8 * f).map(|i| i as f32 * 0.1).collect();
        let xh = f32_slice_to_half(&xf);
        let mut ops = Ops::new(&dev);
        for s in &c.plan.shards {
            c.exchange_halo_half(&mut ops, &xh, f, s);
        }
        let half_bytes = c.snapshot().halo_bytes;
        c.reset_epoch();
        for s in &c.plan.shards {
            c.exchange_halo_f32(&mut ops, &xf, f, s);
        }
        let float_bytes = c.snapshot().halo_bytes;
        assert!(half_bytes > 0);
        assert_eq!(float_bytes, 2 * half_bytes);
    }

    #[test]
    fn allreduce_reduces_and_charges() {
        let dev = DeviceConfig::a100_like();
        let c = ctx(4, Topology::AllToAll);
        let mut ops = Ops::new(&dev);
        let partials: Vec<Vec<Half>> =
            (0..4).map(|s| f32_slice_to_half(&vec![0.25 * (s + 1) as f32; 100])).collect();
        let got = c.allreduce_grad_half(&mut ops, &partials);
        for v in &got {
            assert!((v.to_f32() - 2.5).abs() < 0.05, "{v}");
        }
        assert!(c.snapshot().allreduce_bytes > 0);
    }

    #[test]
    fn single_shard_has_no_traffic() {
        let dev = DeviceConfig::a100_like();
        let c = ctx(1, Topology::Ring);
        let f = 2;
        let xh = f32_slice_to_half(&vec![1.0; 8 * f]);
        let mut ops = Ops::new(&dev);
        for s in &c.plan.shards {
            assert!(s.halo.is_empty(), "one shard owns everything");
            c.exchange_halo_half(&mut ops, &xh, f, s);
        }
        c.charge_allreduce_f32(100);
        assert_eq!(c.snapshot().total_bytes(), 0);
    }

    #[test]
    fn second_epoch_halo_is_served_from_the_cache_for_free() {
        let dev = DeviceConfig::a100_like();
        let c = ctx(2, Topology::Ring);
        let f = 4;
        let xh = f32_slice_to_half(&(0..8 * f).map(|i| i as f32 * 0.1).collect::<Vec<_>>());
        let mut ops = Ops::new(&dev);
        // Epoch 0: cold, every wire row is a miss.
        for s in &c.plan.shards {
            c.exchange_halo_half(&mut ops, &xh, f, s);
        }
        let cold = c.snapshot().halo_bytes;
        let s0 = c.halo_cache_stats();
        assert!(cold > 0);
        assert_eq!(s0.hits, 0);
        assert!(s0.misses > 0);
        // Epoch 1: static sources, every row hits, zero bytes.
        c.reset_epoch();
        for s in &c.plan.shards {
            c.exchange_halo_half(&mut ops, &xh, f, s);
        }
        let warm = c.snapshot().halo_bytes;
        let s1 = c.halo_cache_stats();
        assert_eq!(warm, 0);
        assert_eq!(s1.misses, 0);
        assert_eq!(s1.hits, s0.misses);
        assert_eq!(s1.bytes_saved, cold);
        // The served payloads are bitwise what the cold fetch stored.
        for sh in &c.plan.shards {
            for &(v, _) in c.plan.wire_rows(sh.index) {
                let got = c.cached_wire_row(sh.index, 0, 2, v).expect("valid cached row");
                let want: Vec<u8> = xh[(v as usize) * f..(v as usize + 1) * f]
                    .iter()
                    .flat_map(|h| h.to_bits().to_le_bytes())
                    .collect();
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn invalidated_rows_are_refetched_and_recharged() {
        let dev = DeviceConfig::a100_like();
        let c = ctx(2, Topology::Ring);
        let f = 4;
        let xh = f32_slice_to_half(&(0..8 * f).map(|i| i as f32 * 0.1).collect::<Vec<_>>());
        let mut ops = Ops::new(&dev);
        for s in &c.plan.shards {
            c.exchange_halo_half(&mut ops, &xh, f, s);
        }
        c.reset_epoch();
        // Invalidate one wire row of shard 0; only it is refetched.
        let &(victim, _) = &c.plan.wire_rows(0)[0];
        c.invalidate_halo_rows(&[victim]);
        for s in &c.plan.shards {
            c.exchange_halo_half(&mut ops, &xh, f, s);
        }
        let stats = c.halo_cache_stats();
        assert_eq!(stats.misses, 1, "exactly the invalidated row refetches");
        assert_eq!(c.snapshot().halo_bytes, (f * 2) as u64);
        // A stale slot read returns None until the refetch lands.
        assert!(c.cached_wire_row(0, 0, 2, victim).is_some(), "refetched row is valid again");
    }

    #[test]
    fn timeline_logs_halo_compute_and_allreduce_events() {
        let dev = DeviceConfig::a100_like();
        let c = ctx(2, Topology::Ring);
        let f = 4;
        let xh = f32_slice_to_half(&vec![0.5; 8 * f]);
        let mut ops = Ops::new(&dev);
        for s in &c.plan.shards {
            c.exchange_halo_half(&mut ops, &xh, f, s);
            c.log_compute(s.index, 12.5);
            c.exchange_halo_half(&mut ops, &xh, f, s);
        }
        c.charge_allreduce_f32(64);
        let t = c.timeline();
        // Per device: halo, compute, halo, allreduce.
        for d in 0..2 {
            assert_eq!(t.events(d).len(), 4, "device {d}");
        }
        assert!(t.overlapped_us() < t.serialized_us(), "the second halo hides under compute");
    }
}
