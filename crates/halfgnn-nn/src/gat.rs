//! GAT (Veličković et al.), single head, two layers.
//!
//! Per layer, with destination vertex `i` = SpMM row and source `j` =
//! column:
//!
//! ```text
//! z      = X · W                      (projection, no bias)
//! s_dst  = z · a_dst ; s_src = z · a_src
//! e_ij   = LeakyReLU(s_dst[i] + s_src[j])          (edge op)
//! m_i    = max_j e_ij                              (SpMM-max)
//! ê_ij   = exp(e_ij − m_i)                         (shadow / AMP exp)
//! α_ij   = ê_ij / Σ_j ê_ij                         (SpMM-sum + edge div)
//! h'_i   = Σ_j α_ij · z_j                          (SpMMve)
//! ```
//!
//! This is Eq. 1 of the paper verbatim, so GAT exercises every kernel
//! class: SpMMve, SDDMM (in backward), edge-level maps, and the
//! promoted-or-shadowed `exp` whose data-conversion cost §3.1.2 analyses.
//! The attention weights are a softmax (≤ 1, rows sum to 1), so the
//! aggregation cannot overflow — which is why Fig. 1c shows GAT-half
//! *not* collapsing while GCN/GIN do.

use crate::gcn::StepOutput;
use crate::graphdata::GraphView;
use crate::models::{
    edge_reduce_f32, edge_reduce_half, fused_attn_forward, fused_softmax_grad, grad_gemm_f32,
    grad_gemm_half, sddmm_f32, sddmm_half, spmmve_f32, spmmve_half, Dispatch, PrecisionMode,
};
use crate::params::{GatGrads, GatParams};
use halfgnn_half::Half;
use halfgnn_kernels::common::Reduce;
use halfgnn_kernels::edge_ops;
use halfgnn_tensor::Ops;

/// LeakyReLU slope for attention logits (the GAT paper's 0.2).
pub const ATTN_SLOPE: f32 = 0.2;

/// Saved forward state of one f32 GAT layer.
struct LayerStateF32 {
    z: Vec<f32>,
    e: Vec<f32>,
    alpha: Vec<f32>,
    out: Vec<f32>,
}

#[allow(clippy::too_many_arguments)]
fn layer_forward_f32(
    ops: &mut Ops,
    g: &GraphView,
    x: &[f32],
    w: &[f32],
    a_src: &[f32],
    a_dst: &[f32],
    f_in: usize,
    f_out: usize,
    d: Dispatch<'_>,
) -> LayerStateF32 {
    let n = g.n();
    let z = ops.gemm_f32(x, false, w, false, n, f_in, f_out);
    let s_src = ops.gemm_f32(&z, false, a_src, false, n, f_out, 1);
    let s_dst = ops.gemm_f32(&z, false, a_dst, false, n, f_out, 1);
    let (e, st) = edge_ops::src_dst_add_leakyrelu_f32(ops.dev, &g.coo, &s_dst, &s_src, ATTN_SLOPE);
    ops.record(st);
    let m = edge_reduce_f32(ops, g, &e, Reduce::Max, d);
    let (en, st) = edge_ops::sub_row_exp_f32(ops.dev, &g.coo, &e, &m);
    ops.record(st);
    let zs = edge_reduce_f32(ops, g, &en, Reduce::Sum, d);
    let (alpha, st) = edge_ops::div_row_f32(ops.dev, &g.coo, &en, &zs);
    ops.record(st);
    let out = spmmve_f32(ops, g, &alpha, &z, f_out, d);
    LayerStateF32 { z, e, alpha, out }
}

/// Backward of one f32 GAT layer. Returns `(δx, δw, δa_src, δa_dst)`.
#[allow(clippy::too_many_arguments)]
fn layer_backward_f32(
    ops: &mut Ops,
    g: &GraphView,
    state: &LayerStateF32,
    x: &[f32],
    w: &[f32],
    a_src: &[f32],
    a_dst: &[f32],
    dh: &[f32],
    f_in: usize,
    f_out: usize,
    d: Dispatch<'_>,
) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
    let n = g.n();
    // Aggregation adjoint: δz += Σ_i α_ij δh_i (SpMMve on Âᵀ with permuted α).
    let alpha_t = g.permute_to_transpose(&state.alpha);
    let dz_agg = spmmve_f32(ops, g, &alpha_t, dh, f_out, d);
    // δα_ij = dot(δh_i, z_j): the SDDMM of §2.1.2.
    let dalpha = sddmm_f32(ops, g, dh, &state.z, f_out, d);
    // Edge-softmax backward.
    let (prod, st) = edge_ops::mul_f32(ops.dev, &g.coo, &state.alpha, &dalpha);
    ops.record(st);
    let t = edge_reduce_f32(ops, g, &prod, Reduce::Sum, d);
    let (de_soft, st) = edge_ops::softmax_grad_f32(ops.dev, &g.coo, &state.alpha, &dalpha, &t);
    ops.record(st);
    // LeakyReLU gate: sign(post) == sign(pre) for slope > 0, so the saved
    // post-activation suffices.
    let (de, st) = edge_ops::leakyrelu_grad_f32(ops.dev, &g.coo, &state.e, &de_soft, ATTN_SLOPE);
    ops.record(st);
    // δs_dst[i] = Σ_j δe_ij ; δs_src[j] = Σ_i δe_ij (reduce on Âᵀ).
    let ds_dst = edge_reduce_f32(ops, g, &de, Reduce::Sum, d);
    let de_t = g.permute_to_transpose(&de);
    let ds_src = edge_reduce_f32(ops, g, &de_t, Reduce::Sum, d);
    // δz = δz_agg + δs_dst ⊗ a_dst + δs_src ⊗ a_src.
    let outer_dst = ops.gemm_f32(&ds_dst, false, a_dst, true, n, 1, f_out);
    let outer_src = ops.gemm_f32(&ds_src, false, a_src, true, n, 1, f_out);
    let mut dz = dz_agg;
    let tmp = ops.scale_add_f32(1.0, &dz, 1.0, &outer_dst);
    dz = ops.scale_add_f32(1.0, &tmp, 1.0, &outer_src);
    // Parameter and input gradients (vertex contractions → all-reduced
    // when sharded).
    let da_dst = grad_gemm_f32(ops, &state.z, &ds_dst, f_out, n, 1, d);
    let da_src = grad_gemm_f32(ops, &state.z, &ds_src, f_out, n, 1, d);
    let dw = grad_gemm_f32(ops, x, &dz, f_in, n, f_out, d);
    let dx = ops.gemm_f32(&dz, false, w, true, n, f_out, f_in);
    (dx, dw, da_src, da_dst)
}

/// One f32 GAT training step.
pub fn step_f32(
    ops: &mut Ops,
    g: &GraphView,
    p: &GatParams,
    x: &[f32],
    labels: &[u32],
    mask: &[bool],
) -> StepOutput<GatGrads> {
    step_f32_dist(ops, g, p, x, labels, mask, Dispatch::untuned(PrecisionMode::Float))
}

/// [`step_f32`] with an explicit dispatch (the float path only consults
/// its `dist` context).
pub fn step_f32_dist(
    ops: &mut Ops,
    g: &GraphView,
    p: &GatParams,
    x: &[f32],
    labels: &[u32],
    mask: &[bool],
    d: Dispatch<'_>,
) -> StepOutput<GatGrads> {
    let (f_in, h, c) = (p.f_in, p.hidden, p.classes);
    let l1 = layer_forward_f32(ops, g, x, &p.w1, &p.a_src1, &p.a_dst1, f_in, h, d);
    let h1 = ops.relu_f32(&l1.out);
    let l2 = layer_forward_f32(ops, g, &h1, &p.w2, &p.a_src2, &p.a_dst2, h, c, d);
    let logits = l2.out.clone();
    let (loss, dlogits, correct) = ops.softmax_xent_f32(&logits, labels, mask, c);

    let (dh1, dw2, da_src2, da_dst2) =
        layer_backward_f32(ops, g, &l2, &h1, &p.w2, &p.a_src2, &p.a_dst2, &dlogits, h, c, d);
    let dl1 = ops.relu_grad_f32(&l1.out, &dh1);
    let (_, dw1, da_src1, da_dst1) =
        layer_backward_f32(ops, g, &l1, x, &p.w1, &p.a_src1, &p.a_dst1, &dl1, f_in, h, d);

    StepOutput {
        loss,
        correct,
        grads: GatGrads {
            w1: dw1,
            a_src1: da_src1,
            a_dst1: da_dst1,
            w2: dw2,
            a_src2: da_src2,
            a_dst2: da_dst2,
        },
        logits,
    }
}

/// Saved forward state of one half GAT layer.
struct LayerStateHalf {
    z: Vec<Half>,
    e: Vec<Half>,
    alpha: Vec<Half>,
    out: Vec<Half>,
}

#[allow(clippy::too_many_arguments)]
fn layer_forward_half(
    ops: &mut Ops,
    g: &GraphView,
    x: &[Half],
    w: &[Half],
    a_src: &[Half],
    a_dst: &[Half],
    f_in: usize,
    f_out: usize,
    d: Dispatch<'_>,
) -> LayerStateHalf {
    let n = g.n();
    let shadow = d.mode != PrecisionMode::HalfNaive;
    let z = ops.gemm_half(x, false, w, false, n, f_in, f_out);
    let s_src = ops.gemm_half(&z, false, a_src, false, n, f_out, 1);
    let s_dst = ops.gemm_half(&z, false, a_dst, false, n, f_out, 1);
    if d.attn_fused(g, f_out) {
        // One pass over the edges: scores, running row-max, shadow exp,
        // row-sum, normalize, aggregate. The kernel's own provenance site
        // nests under the ambient layer site ("gat.layerN/fused_attn").
        let fwd = fused_attn_forward(ops, g, &s_dst, &s_src, ATTN_SLOPE, &z, f_out, d);
        return LayerStateHalf { z, e: fwd.e, alpha: fwd.alpha, out: fwd.out };
    }
    let (e, st) = edge_ops::src_dst_add_leakyrelu(ops.dev, &g.coo, &s_dst, &s_src, ATTN_SLOPE);
    ops.record(st);
    let m = edge_reduce_half(ops, g, &e, Reduce::Max, d);
    // §3.1.2 / §5.3: AMP promotes exp to float with a tensor round trip;
    // the shadow API stays in half because e − m ≤ 0.
    let (en, st) = edge_ops::sub_row_exp(ops.dev, &g.coo, &e, &m, shadow);
    ops.record(st);
    if !shadow {
        // The AMP path materialized float tensors: count the conversions.
        ops.tensor_conversions += 2;
        ops.converted_elems += 2 * g.nnz() as u64;
    }
    let zs = edge_reduce_half(ops, g, &en, Reduce::Sum, d);
    let (alpha, st) = edge_ops::div_row(ops.dev, &g.coo, &en, &zs);
    ops.record(st);
    let out = spmmve_half(ops, g, &alpha, &z, f_out, d);
    LayerStateHalf { z, e, alpha, out }
}

#[allow(clippy::too_many_arguments)]
fn layer_backward_half(
    ops: &mut Ops,
    g: &GraphView,
    state: &LayerStateHalf,
    x: &[Half],
    w: &[Half],
    a_src: &[Half],
    a_dst: &[Half],
    dh: &[Half],
    f_in: usize,
    f_out: usize,
    d: Dispatch<'_>,
) -> (Vec<Half>, Vec<Half>, Vec<Half>, Vec<Half>) {
    let n = g.n();
    let alpha_t = g.permute_to_transpose(&state.alpha);
    let dz_agg = spmmve_half(ops, g, &alpha_t, dh, f_out, d);
    let dalpha = sddmm_half(ops, g, dh, &state.z, f_out, d);
    let de = if d.attn_fused(g, f_out) {
        // Fused edge-softmax backward: t stays register-resident, one
        // kernel instead of mul → reduce → softmax_grad → leakyrelu_grad.
        fused_softmax_grad(ops, g, &state.alpha, &dalpha, &state.e, ATTN_SLOPE, d)
    } else {
        let (prod, st) = edge_ops::mul(ops.dev, &g.coo, &state.alpha, &dalpha);
        ops.record(st);
        let t = edge_reduce_half(ops, g, &prod, Reduce::Sum, d);
        let (de_soft, st) = edge_ops::softmax_grad(ops.dev, &g.coo, &state.alpha, &dalpha, &t);
        ops.record(st);
        let (de, st) = edge_ops::leakyrelu_grad(ops.dev, &g.coo, &state.e, &de_soft, ATTN_SLOPE);
        ops.record(st);
        de
    };
    let ds_dst = edge_reduce_half(ops, g, &de, Reduce::Sum, d);
    let de_t = g.permute_to_transpose(&de);
    let ds_src = edge_reduce_half(ops, g, &de_t, Reduce::Sum, d);
    let outer_dst = ops.gemm_half(&ds_dst, false, a_dst, true, n, 1, f_out);
    let outer_src = ops.gemm_half(&ds_src, false, a_src, true, n, 1, f_out);
    let one = Half::ONE;
    let tmp = ops.scale_add_half(one, &dz_agg, one, &outer_dst);
    let dz = ops.scale_add_half(one, &tmp, one, &outer_src);
    let da_dst = grad_gemm_half(ops, &state.z, &ds_dst, f_out, n, 1, d);
    let da_src = grad_gemm_half(ops, &state.z, &ds_src, f_out, n, 1, d);
    let dw = grad_gemm_half(ops, x, &dz, f_in, n, f_out, d);
    let dx = ops.gemm_half(&dz, false, w, true, n, f_out, f_in);
    (dx, dw, da_src, da_dst)
}

/// One mixed-precision GAT training step.
pub fn step_half(
    ops: &mut Ops,
    g: &GraphView,
    p: &GatParams,
    x: &[Half],
    labels: &[u32],
    mask: &[bool],
    d: Dispatch<'_>,
) -> StepOutput<GatGrads> {
    let (f_in, h, c) = (p.f_in, p.hidden, p.classes);
    let w1h = ops.to_half(&p.w1);
    let a_src1h = ops.to_half(&p.a_src1);
    let a_dst1h = ops.to_half(&p.a_dst1);
    let w2h = ops.to_half(&p.w2);
    let a_src2h = ops.to_half(&p.a_src2);
    let a_dst2h = ops.to_half(&p.a_dst2);

    let layer1 = halfgnn_half::overflow::site("gat.layer1");
    let l1 = layer_forward_half(ops, g, x, &w1h, &a_src1h, &a_dst1h, f_in, h, d);
    let h1 = ops.relu_half(&l1.out);
    drop(layer1);
    let layer2 = halfgnn_half::overflow::site("gat.layer2");
    let l2 = layer_forward_half(ops, g, &h1, &w2h, &a_src2h, &a_dst2h, h, c, d);
    drop(layer2);

    let logits = ops.to_f32(&l2.out);
    let (loss, mut dlogits, correct) = ops.softmax_xent_f32(&logits, labels, mask, c);
    // Loss scaling: see gcn.rs — unscaled at the master update.
    let loss_scale = ops.loss_scale;
    if loss_scale != 1.0 {
        for g in dlogits.iter_mut() {
            *g *= loss_scale;
        }
    }
    let dout = ops.to_half(&dlogits);

    let bwd2 = halfgnn_half::overflow::site("gat.layer2.backward");
    let (dh1, dw2h, da_src2h, da_dst2h) =
        layer_backward_half(ops, g, &l2, &h1, &w2h, &a_src2h, &a_dst2h, &dout, h, c, d);
    drop(bwd2);
    let _bwd1 = halfgnn_half::overflow::site("gat.layer1.backward");
    let dl1 = ops.relu_grad_half(&l1.out, &dh1);
    let (_, dw1h, da_src1h, da_dst1h) =
        layer_backward_half(ops, g, &l1, x, &w1h, &a_src1h, &a_dst1h, &dl1, f_in, h, d);

    let mut grads = GatGrads {
        w1: ops.to_f32(&dw1h),
        a_src1: ops.to_f32(&da_src1h),
        a_dst1: ops.to_f32(&da_dst1h),
        w2: ops.to_f32(&dw2h),
        a_src2: ops.to_f32(&da_src2h),
        a_dst2: ops.to_f32(&da_dst2h),
    };
    for part in [
        &mut grads.w1,
        &mut grads.a_src1,
        &mut grads.a_dst1,
        &mut grads.w2,
        &mut grads.a_src2,
        &mut grads.a_dst2,
    ] {
        ops.unscale_grad(part);
    }

    StepOutput { loss, correct, grads, logits }
}

// ---------------------------------------------------------------------
// Multi-head GAT: H independent attention heads of width `hidden/H`,
// concatenated after layer 1 (the architecture's defining feature; the
// original paper uses 8 heads). Layer 2 stays single-head over the
// concatenated features, as in the original.
// ---------------------------------------------------------------------

/// Multi-head GAT parameters: `heads` layer-1 heads of width
/// `hidden / heads`, one layer-2 head.
pub struct MultiHeadGatParams {
    /// Per-head layer-1 projections, each `f_in × head_dim`.
    pub w1: Vec<Vec<f32>>,
    /// Per-head source attention vectors, each `head_dim`.
    pub a_src1: Vec<Vec<f32>>,
    /// Per-head destination attention vectors.
    pub a_dst1: Vec<Vec<f32>>,
    /// Layer-2 projection, `hidden × classes`.
    pub w2: Vec<f32>,
    /// Layer-2 source attention vector.
    pub a_src2: Vec<f32>,
    /// Layer-2 destination attention vector.
    pub a_dst2: Vec<f32>,
    /// Input feature length.
    pub f_in: usize,
    /// Total hidden width (`heads × head_dim`).
    pub hidden: usize,
    /// Head count.
    pub heads: usize,
    /// Output width.
    pub classes: usize,
}

impl MultiHeadGatParams {
    /// Glorot-initialized multi-head GAT. `hidden` must divide evenly by
    /// `heads` (and stay half2-padded per head).
    pub fn new(f_in: usize, hidden: usize, heads: usize, classes: usize, seed: u64) -> Self {
        assert!(heads >= 1 && hidden.is_multiple_of(heads), "hidden must split across heads");
        let head_dim = hidden / heads;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(0x6A7));
        use crate::params::glorot;
        use rand::SeedableRng as _;
        MultiHeadGatParams {
            w1: (0..heads).map(|_| glorot(f_in, head_dim, &mut rng)).collect(),
            a_src1: (0..heads).map(|_| glorot(head_dim, 1, &mut rng)).collect(),
            a_dst1: (0..heads).map(|_| glorot(head_dim, 1, &mut rng)).collect(),
            w2: glorot(hidden, classes, &mut rng),
            a_src2: glorot(classes, 1, &mut rng),
            a_dst2: glorot(classes, 1, &mut rng),
            f_in,
            hidden,
            heads,
            classes,
        }
    }

    /// Head width.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }
}

/// Multi-head gradients (same structure).
pub struct MultiHeadGatGrads {
    /// Per-head ∂L/∂W1.
    pub w1: Vec<Vec<f32>>,
    /// Per-head ∂L/∂a_src1.
    pub a_src1: Vec<Vec<f32>>,
    /// Per-head ∂L/∂a_dst1.
    pub a_dst1: Vec<Vec<f32>>,
    /// ∂L/∂W2.
    pub w2: Vec<f32>,
    /// ∂L/∂a_src2.
    pub a_src2: Vec<f32>,
    /// ∂L/∂a_dst2.
    pub a_dst2: Vec<f32>,
}

/// Interleave per-head column blocks into one `n × (heads·d)` matrix.
fn concat_heads(parts: &[Vec<f32>], n: usize, d: usize) -> Vec<f32> {
    let heads = parts.len();
    let mut out = vec![0f32; n * heads * d];
    for (h, p) in parts.iter().enumerate() {
        for v in 0..n {
            out[v * heads * d + h * d..v * heads * d + (h + 1) * d]
                .copy_from_slice(&p[v * d..(v + 1) * d]);
        }
    }
    out
}

/// Split the gradient of a concatenated matrix back into per-head blocks.
fn split_heads(full: &[f32], n: usize, heads: usize, d: usize) -> Vec<Vec<f32>> {
    (0..heads)
        .map(|h| {
            let mut p = vec![0f32; n * d];
            for v in 0..n {
                p[v * d..(v + 1) * d]
                    .copy_from_slice(&full[v * heads * d + h * d..v * heads * d + (h + 1) * d]);
            }
            p
        })
        .collect()
}

/// One f32 multi-head GAT training step.
pub fn step_f32_multihead(
    ops: &mut Ops,
    g: &GraphView,
    p: &MultiHeadGatParams,
    x: &[f32],
    labels: &[u32],
    mask: &[bool],
) -> StepOutput<MultiHeadGatGrads> {
    let n = g.n();
    let (f_in, d, c) = (p.f_in, p.head_dim(), p.classes);
    let fd32 = Dispatch::untuned(PrecisionMode::Float);

    // ---- Layer 1: independent heads, then concat + ReLU.
    let states: Vec<LayerStateF32> = (0..p.heads)
        .map(|h| layer_forward_f32(ops, g, x, &p.w1[h], &p.a_src1[h], &p.a_dst1[h], f_in, d, fd32))
        .collect();
    let head_outs: Vec<Vec<f32>> = states.iter().map(|s| s.out.clone()).collect();
    let cat = concat_heads(&head_outs, n, d);
    let h1 = ops.relu_f32(&cat);

    // ---- Layer 2: single head over the concatenated features.
    let l2 = layer_forward_f32(ops, g, &h1, &p.w2, &p.a_src2, &p.a_dst2, p.hidden, c, fd32);
    let logits = l2.out.clone();
    let (loss, dlogits, correct) = ops.softmax_xent_f32(&logits, labels, mask, c);

    // ---- Backward.
    let (dh1, dw2, da_src2, da_dst2) = layer_backward_f32(
        ops, g, &l2, &h1, &p.w2, &p.a_src2, &p.a_dst2, &dlogits, p.hidden, c, fd32,
    );
    let dcat = ops.relu_grad_f32(&cat, &dh1);
    let per_head = split_heads(&dcat, n, p.heads, d);
    let mut grads = MultiHeadGatGrads {
        w1: Vec::with_capacity(p.heads),
        a_src1: Vec::with_capacity(p.heads),
        a_dst1: Vec::with_capacity(p.heads),
        w2: dw2,
        a_src2: da_src2,
        a_dst2: da_dst2,
    };
    for h in 0..p.heads {
        let (_, dw, dasrc, dadst) = layer_backward_f32(
            ops,
            g,
            &states[h],
            x,
            &p.w1[h],
            &p.a_src1[h],
            &p.a_dst1[h],
            &per_head[h],
            f_in,
            d,
            fd32,
        );
        grads.w1.push(dw);
        grads.a_src1.push(dasrc);
        grads.a_dst1.push(dadst);
    }
    StepOutput { loss, correct, grads, logits }
}

/// One mixed-precision multi-head GAT step (half state tensors, f32
/// master weights/loss).
pub fn step_half_multihead(
    ops: &mut Ops,
    g: &GraphView,
    p: &MultiHeadGatParams,
    x: &[Half],
    labels: &[u32],
    mask: &[bool],
    dsp: Dispatch<'_>,
) -> StepOutput<MultiHeadGatGrads> {
    let n = g.n();
    let (f_in, d, c) = (p.f_in, p.head_dim(), p.classes);
    assert!(d.is_multiple_of(2), "head width must stay half2-padded");

    // Per-head parameter casts.
    let w1h: Vec<Vec<Half>> = p.w1.iter().map(|w| ops.to_half(w)).collect();
    let asrc1h: Vec<Vec<Half>> = p.a_src1.iter().map(|a| ops.to_half(a)).collect();
    let adst1h: Vec<Vec<Half>> = p.a_dst1.iter().map(|a| ops.to_half(a)).collect();
    let w2h = ops.to_half(&p.w2);
    let asrc2h = ops.to_half(&p.a_src2);
    let adst2h = ops.to_half(&p.a_dst2);

    // ---- Layer 1 heads + concat + ReLU.
    let states: Vec<LayerStateHalf> = (0..p.heads)
        .map(|h| layer_forward_half(ops, g, x, &w1h[h], &asrc1h[h], &adst1h[h], f_in, d, dsp))
        .collect();
    let mut cat = vec![Half::ZERO; n * p.hidden];
    for (h, st) in states.iter().enumerate() {
        for v in 0..n {
            cat[v * p.hidden + h * d..v * p.hidden + (h + 1) * d]
                .copy_from_slice(&st.out[v * d..(v + 1) * d]);
        }
    }
    let h1 = ops.relu_half(&cat);

    // ---- Layer 2 + loss.
    let l2 = layer_forward_half(ops, g, &h1, &w2h, &asrc2h, &adst2h, p.hidden, c, dsp);
    let logits = ops.to_f32(&l2.out);
    let (loss, mut dlogits, correct) = ops.softmax_xent_f32(&logits, labels, mask, c);
    let loss_scale = ops.loss_scale;
    if loss_scale != 1.0 {
        for gv in dlogits.iter_mut() {
            *gv *= loss_scale;
        }
    }
    let dout = ops.to_half(&dlogits);

    // ---- Backward.
    let (dh1, dw2h, dasrc2h, dadst2h) =
        layer_backward_half(ops, g, &l2, &h1, &w2h, &asrc2h, &adst2h, &dout, p.hidden, c, dsp);
    let dcat = ops.relu_grad_half(&cat, &dh1);
    let mut grads = MultiHeadGatGrads {
        w1: Vec::with_capacity(p.heads),
        a_src1: Vec::with_capacity(p.heads),
        a_dst1: Vec::with_capacity(p.heads),
        w2: ops.to_f32(&dw2h),
        a_src2: ops.to_f32(&dasrc2h),
        a_dst2: ops.to_f32(&dadst2h),
    };
    for h in 0..p.heads {
        let mut dh = vec![Half::ZERO; n * d];
        for v in 0..n {
            dh[v * d..(v + 1) * d]
                .copy_from_slice(&dcat[v * p.hidden + h * d..v * p.hidden + (h + 1) * d]);
        }
        let (_, dw, dasrc, dadst) = layer_backward_half(
            ops, g, &states[h], x, &w1h[h], &asrc1h[h], &adst1h[h], &dh, f_in, d, dsp,
        );
        grads.w1.push(ops.to_f32(&dw));
        grads.a_src1.push(ops.to_f32(&dasrc));
        grads.a_dst1.push(ops.to_f32(&dadst));
    }
    for part in grads
        .w1
        .iter_mut()
        .chain(grads.a_src1.iter_mut())
        .chain(grads.a_dst1.iter_mut())
        .chain([&mut grads.w2, &mut grads.a_src2, &mut grads.a_dst2])
    {
        ops.unscale_grad(part);
    }
    StepOutput { loss, correct, grads, logits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halfgnn_graph::gen;
    use halfgnn_graph::Csr;
    use halfgnn_sim::DeviceConfig;

    fn toy() -> (GraphView, Vec<f32>, Vec<u32>, Vec<bool>) {
        let (edges, labels) = gen::sbm(&[15, 15], 0.4, 0.03, 4);
        let csr = Csr::from_edges(30, 30, &edges).symmetrized_with_self_loops();
        let g = GraphView::full(&csr);
        let x = halfgnn_graph::features::class_features(&labels, 2, 8, 1.0, 0.2, 7);
        (g, x, labels, vec![true; 30])
    }

    #[test]
    fn f32_gradients_match_finite_differences() {
        let dev = DeviceConfig::a100_like();
        let (g, x, labels, mask) = toy();
        let mut p = GatParams::new(8, 6, 2, 11);
        let mut ops = Ops::new(&dev);
        let out = step_f32(&mut ops, &g, &p, &x, &labels, &mask);
        let eps = 1e-3;

        // W1 coordinates (checks the full attention backward chain).
        for &idx in &[0usize, 9, 21] {
            let orig = p.w1[idx];
            p.w1[idx] = orig + eps;
            let lp = step_f32(&mut ops, &g, &p, &x, &labels, &mask).loss;
            p.w1[idx] = orig - eps;
            let lm = step_f32(&mut ops, &g, &p, &x, &labels, &mask).loss;
            p.w1[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - out.grads.w1[idx]).abs() < 2e-2 + 0.1 * fd.abs(),
                "w1[{idx}]: fd {fd} vs {}",
                out.grads.w1[idx]
            );
        }
        // Attention vector coordinates (the softmax backward path).
        for &idx in &[0usize, 3] {
            let orig = p.a_src1[idx];
            p.a_src1[idx] = orig + eps;
            let lp = step_f32(&mut ops, &g, &p, &x, &labels, &mask).loss;
            p.a_src1[idx] = orig - eps;
            let lm = step_f32(&mut ops, &g, &p, &x, &labels, &mask).loss;
            p.a_src1[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - out.grads.a_src1[idx]).abs() < 2e-2 + 0.1 * fd.abs(),
                "a_src1[{idx}]: fd {fd} vs {}",
                out.grads.a_src1[idx]
            );
        }
    }

    #[test]
    fn multihead_gradients_match_finite_differences() {
        let dev = DeviceConfig::a100_like();
        let (g, x, labels, mask) = toy();
        let mut p = MultiHeadGatParams::new(8, 8, 4, 2, 17); // 4 heads x 2 dims
        let mut ops = Ops::new(&dev);
        let out = step_f32_multihead(&mut ops, &g, &p, &x, &labels, &mask);
        let eps = 1e-3;
        // Spot-check one coordinate in two different heads + layer 2.
        for head in [0usize, 3] {
            let idx = 5;
            let orig = p.w1[head][idx];
            p.w1[head][idx] = orig + eps;
            let lp = step_f32_multihead(&mut ops, &g, &p, &x, &labels, &mask).loss;
            p.w1[head][idx] = orig - eps;
            let lm = step_f32_multihead(&mut ops, &g, &p, &x, &labels, &mask).loss;
            p.w1[head][idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - out.grads.w1[head][idx]).abs() < 2e-2 + 0.1 * fd.abs(),
                "head {head} w1[{idx}]: fd {fd} vs {}",
                out.grads.w1[head][idx]
            );
        }
        let orig = p.w2[3];
        p.w2[3] = orig + eps;
        let lp = step_f32_multihead(&mut ops, &g, &p, &x, &labels, &mask).loss;
        p.w2[3] = orig - eps;
        let lm = step_f32_multihead(&mut ops, &g, &p, &x, &labels, &mask).loss;
        p.w2[3] = orig;
        let fd = (lp - lm) / (2.0 * eps);
        assert!((fd - out.grads.w2[3]).abs() < 2e-2 + 0.1 * fd.abs());
    }

    #[test]
    fn multihead_with_one_head_matches_single_head() {
        // heads = 1 must be exactly the single-head model (same math),
        // up to the parameter-init difference — so compare with copied
        // parameters.
        let dev = DeviceConfig::a100_like();
        let (g, x, labels, mask) = toy();
        let single = GatParams::new(8, 6, 2, 11);
        let mut multi = MultiHeadGatParams::new(8, 6, 1, 2, 0);
        multi.w1[0].copy_from_slice(&single.w1);
        multi.a_src1[0].copy_from_slice(&single.a_src1);
        multi.a_dst1[0].copy_from_slice(&single.a_dst1);
        multi.w2.copy_from_slice(&single.w2);
        multi.a_src2.copy_from_slice(&single.a_src2);
        multi.a_dst2.copy_from_slice(&single.a_dst2);
        let mut ops = Ops::new(&dev);
        let a = step_f32(&mut ops, &g, &single, &x, &labels, &mask);
        let b = step_f32_multihead(&mut ops, &g, &multi, &x, &labels, &mask);
        assert!((a.loss - b.loss).abs() < 1e-6, "{} vs {}", a.loss, b.loss);
        for (u, v) in a.grads.w1.iter().zip(&b.grads.w1[0]) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn multihead_half_tracks_f32() {
        let dev = DeviceConfig::a100_like();
        let (g, x, labels, mask) = toy();
        let p = MultiHeadGatParams::new(8, 8, 2, 2, 19); // 2 heads x 4 dims
        let xh: Vec<Half> = x.iter().map(|&v| Half::from_f32(v)).collect();
        let mut ops = Ops::new(&dev);
        let f = step_f32_multihead(&mut ops, &g, &p, &x, &labels, &mask);
        let h = step_half_multihead(
            &mut ops,
            &g,
            &p,
            &xh,
            &labels,
            &mask,
            PrecisionMode::HalfGnn.into(),
        );
        assert!((f.loss - h.loss).abs() < 0.1, "{} vs {}", f.loss, h.loss);
        assert!(h.loss.is_finite());
        // Gradient direction agreement on head 0's projection.
        let dot: f32 = f.grads.w1[0].iter().zip(&h.grads.w1[0]).map(|(a, b)| a * b).sum();
        let na: f32 = f.grads.w1[0].iter().map(|v| v * v).sum::<f32>().sqrt();
        let nb: f32 = h.grads.w1[0].iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(dot / (na * nb) > 0.95, "cosine {}", dot / (na * nb));
    }

    #[test]
    fn concat_split_round_trip() {
        let n = 3;
        let d = 2;
        let parts: Vec<Vec<f32>> =
            vec![vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0]];
        let cat = concat_heads(&parts, n, d);
        assert_eq!(cat, vec![1.0, 2.0, 10.0, 20.0, 3.0, 4.0, 30.0, 40.0, 5.0, 6.0, 50.0, 60.0]);
        assert_eq!(split_heads(&cat, n, 2, d), parts);
    }

    #[test]
    fn half_step_tracks_f32() {
        let dev = DeviceConfig::a100_like();
        let (g, x, labels, mask) = toy();
        let p = GatParams::new(8, 6, 2, 11);
        let xh: Vec<Half> = x.iter().map(|&v| Half::from_f32(v)).collect();
        let mut ops = Ops::new(&dev);
        let f = step_f32(&mut ops, &g, &p, &x, &labels, &mask);
        let hh = step_half(&mut ops, &g, &p, &xh, &labels, &mask, PrecisionMode::HalfGnn.into());
        assert!((f.loss - hh.loss).abs() < 0.08, "{} vs {}", f.loss, hh.loss);
        assert!(hh.loss.is_finite());
    }

    #[test]
    fn fused_dispatch_tracks_unfused_and_launches_fewer_kernels() {
        let dev = DeviceConfig::a100_like();
        let (g, x, labels, mask) = toy();
        let p = GatParams::new(8, 6, 2, 11);
        let xh: Vec<Half> = x.iter().map(|&v| Half::from_f32(v)).collect();
        let mut unfused_ops = Ops::new(&dev);
        let a =
            step_half(&mut unfused_ops, &g, &p, &xh, &labels, &mask, PrecisionMode::HalfGnn.into());
        let mut fused_ops = Ops::new(&dev);
        let d = Dispatch::untuned(PrecisionMode::HalfGnn).with_fusion(true);
        let b = step_half(&mut fused_ops, &g, &p, &xh, &labels, &mask, d);
        assert!((a.loss - b.loss).abs() < 0.05, "{} vs {}", a.loss, b.loss);
        assert!(b.loss.is_finite());
        assert!(
            fused_ops.kernel_count() < unfused_ops.kernel_count(),
            "fused {} launches must undercut unfused {}",
            fused_ops.kernel_count(),
            unfused_ops.kernel_count()
        );
    }

    #[test]
    fn baseline_mode_never_fuses() {
        let (g, ..) = toy();
        let d = Dispatch::untuned(PrecisionMode::HalfNaive).with_fusion(true);
        assert!(!d.attn_fused(&g, 6), "HalfNaive must stay on the DGL chain");
        let d = Dispatch::untuned(PrecisionMode::HalfGnn);
        assert!(!d.attn_fused(&g, 6), "untuned, unforced dispatch must stay unfused");
        let d = Dispatch::untuned(PrecisionMode::HalfGnn).with_fusion(true);
        assert!(!d.attn_fused(&g, 7), "odd f cannot run the half2-padded fused kernel");
        assert!(d.attn_fused(&g, 6));
    }

    #[test]
    fn shadow_mode_converts_less_than_amp_mode() {
        let dev = DeviceConfig::a100_like();
        let (g, x, labels, mask) = toy();
        let p = GatParams::new(8, 6, 2, 11);
        let xh: Vec<Half> = x.iter().map(|&v| Half::from_f32(v)).collect();
        let mut shadow_ops = Ops::new(&dev);
        step_half(&mut shadow_ops, &g, &p, &xh, &labels, &mask, PrecisionMode::HalfGnn.into());
        let mut amp_ops = Ops::new(&dev);
        step_half(&mut amp_ops, &g, &p, &xh, &labels, &mask, PrecisionMode::HalfNaive.into());
        assert!(
            amp_ops.converted_elems > shadow_ops.converted_elems,
            "AMP {} should convert more than shadow {}",
            amp_ops.converted_elems,
            shadow_ops.converted_elems
        );
    }
}
