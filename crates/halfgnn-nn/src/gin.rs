//! GIN (Xu et al.).
//!
//! Per layer: `h' = σ(((1+ε)·x + agg(x)) · W + b)` with ε = 0 fixed.
//!
//! * The float and naive-half baselines use DGL's **'mean'** reduction
//!   variant the paper discusses in §3.1.3: "the degree-norm is called
//!   after SpMM for forward computation. Consequently, this version of GIN
//!   is susceptible to the same overflow issue as GCN" — which is exactly
//!   what the naive-half path reproduces (post-scaled mean overflows
//!   during the reduction).
//! * HalfGNN aggregation is the paper's Eq. 4: `(1+ε)·x + λ·mean(x)` with
//!   the non-learnable λ = 0.1 that protects the *combine* addition too
//!   (§5.2.2 "Additional Overflow in GIN"), on top of the discretized
//!   (overflow-free) mean.

use crate::gcn::StepOutput;
use crate::graphdata::GraphView;
use crate::models::{
    grad_colsum_f32, grad_colsum_half, grad_gemm_f32, grad_gemm_half, spmm_mean_f32,
    spmm_mean_half, spmm_sum_f32, spmm_sum_half, Dispatch, PrecisionMode,
};
use crate::params::{TwoLayerGrads, TwoLayerParams};
use halfgnn_half::Half;
use halfgnn_tensor::Ops;

/// The paper's λ (Eq. 4), validated as "worked fine for all our robust
/// testing".
pub const GIN_LAMBDA: f32 = 0.1;

/// ε in the GIN combine (fixed, non-learnable here).
pub const GIN_EPS: f32 = 0.0;

/// One f32 GIN step (DGL 'mean' reduction variant).
pub fn step_f32(
    ops: &mut Ops,
    g: &GraphView,
    p: &TwoLayerParams,
    x: &[f32],
    labels: &[u32],
    mask: &[bool],
) -> StepOutput<TwoLayerGrads> {
    step_f32_dist(ops, g, p, x, labels, mask, Dispatch::untuned(PrecisionMode::Float))
}

/// [`step_f32`] with an explicit dispatch (the sharded trainer threads a
/// [`crate::dist::DistCtx`] through it).
#[allow(clippy::too_many_arguments)]
pub fn step_f32_dist(
    ops: &mut Ops,
    g: &GraphView,
    p: &TwoLayerParams,
    x: &[f32],
    labels: &[u32],
    mask: &[bool],
    d: Dispatch<'_>,
) -> StepOutput<TwoLayerGrads> {
    let n = g.n();
    let (f_in, h, c) = (p.f_in, p.hidden, p.classes);
    let one_eps = 1.0 + GIN_EPS;

    // ---- Forward.
    let agg1 = spmm_mean_f32(ops, g, x, f_in, d);
    let comb1 = ops.scale_add_f32(one_eps, x, 1.0, &agg1);
    let z1 = ops.gemm_f32(&comb1, false, &p.w1, false, n, f_in, h);
    let z1 = ops.bias_add_f32(&z1, &p.b1);
    let h1 = ops.relu_f32(&z1);
    let agg2 = spmm_mean_f32(ops, g, &h1, h, d);
    let comb2 = ops.scale_add_f32(one_eps, &h1, 1.0, &agg2);
    let z2 = ops.gemm_f32(&comb2, false, &p.w2, false, n, h, c);
    let logits = ops.bias_add_f32(&z2, &p.b2);

    let (loss, dlogits, correct) = ops.softmax_xent_f32(&logits, labels, mask, c);

    // ---- Backward.
    let dw2 = grad_gemm_f32(ops, &comb2, &dlogits, h, n, c, d);
    let db2 = grad_colsum_f32(ops, &dlogits, c, d);
    let dcomb2 = ops.gemm_f32(&dlogits, false, &p.w2, true, n, c, h);
    // comb2 = (1+ε)h1 + mean(h1)  ⇒  δh1 = (1+ε)δcomb2 + Âᵀ(δcomb2/deg).
    let scaled2 = ops.row_scale_f32(&dcomb2, &g.mean_scale_f, h);
    let back2 = spmm_sum_f32(ops, g, &scaled2, h, d);
    let dh1 = ops.scale_add_f32(one_eps, &dcomb2, 1.0, &back2);
    let dz1 = ops.relu_grad_f32(&z1, &dh1);
    let dw1 = grad_gemm_f32(ops, &comb1, &dz1, f_in, n, h, d);
    let db1 = grad_colsum_f32(ops, &dz1, h, d);

    StepOutput {
        loss,
        correct,
        grads: TwoLayerGrads { w1: dw1, b1: db1, w2: dw2, b2: db2 },
        logits,
    }
}

/// One mixed-precision GIN step with the paper's λ. `HalfNaive` runs the
/// overflowing DGL-mean variant; HalfGNN modes use Eq. 4.
pub fn step_half(
    ops: &mut Ops,
    g: &GraphView,
    p: &TwoLayerParams,
    x: &[Half],
    labels: &[u32],
    mask: &[bool],
    d: Dispatch<'_>,
) -> StepOutput<TwoLayerGrads> {
    step_half_lambda(ops, g, p, x, labels, mask, d, GIN_LAMBDA)
}

/// [`step_half`] with an explicit λ (the §5.2.2 ablation sweeps it).
#[allow(clippy::too_many_arguments)]
pub fn step_half_lambda(
    ops: &mut Ops,
    g: &GraphView,
    p: &TwoLayerParams,
    x: &[Half],
    labels: &[u32],
    mask: &[bool],
    d: Dispatch<'_>,
    lambda: f32,
) -> StepOutput<TwoLayerGrads> {
    let n = g.n();
    let (f_in, h, c) = (p.f_in, p.hidden, p.classes);
    let one_eps = Half::from_f32(1.0 + GIN_EPS);
    let protected = matches!(d.mode, PrecisionMode::HalfGnn | PrecisionMode::HalfGnnNoDiscretize);
    let agg_scale = if protected { Half::from_f32(lambda) } else { Half::ONE };

    let w1h = ops.to_half(&p.w1);
    let b1h = ops.to_half(&p.b1);
    let w2h = ops.to_half(&p.w2);
    let b2h = ops.to_half(&p.b2);

    // Both the naive and protected paths run DGL's 'mean' GIN; the naive
    // kernel applies the degree norm post-reduction, so hub rows have
    // already overflowed by the time it runs.
    let aggregate =
        |ops: &mut Ops, g: &GraphView, t: &[Half], f: usize| spmm_mean_half(ops, g, t, f, d);

    // ---- Forward.
    let layer1 = halfgnn_half::overflow::site("gin.layer1");
    let agg1 = aggregate(ops, g, x, f_in);
    let comb1 = ops.scale_add_half(one_eps, x, agg_scale, &agg1);
    let z1 = ops.gemm_half(&comb1, false, &w1h, false, n, f_in, h);
    let z1 = ops.bias_add_half(&z1, &b1h);
    let h1 = ops.relu_half(&z1);
    drop(layer1);
    let layer2 = halfgnn_half::overflow::site("gin.layer2");
    let agg2 = aggregate(ops, g, &h1, h);
    let comb2 = ops.scale_add_half(one_eps, &h1, agg_scale, &agg2);
    let z2 = ops.gemm_half(&comb2, false, &w2h, false, n, h, c);
    let out = ops.bias_add_half(&z2, &b2h);
    drop(layer2);

    let logits = ops.to_f32(&out);
    let (loss, mut dlogits, correct) = ops.softmax_xent_f32(&logits, labels, mask, c);
    // Loss scaling (Micikevicius et al.): multiply the loss gradient so
    // small per-vertex gradients survive the f2h cast; weight gradients
    // are unscaled before the f32 master update.
    let loss_scale = ops.loss_scale;
    if loss_scale != 1.0 {
        for g in dlogits.iter_mut() {
            *g *= loss_scale;
        }
    }

    // ---- Backward.
    let _bwd = halfgnn_half::overflow::site("gin.backward");
    let dout = ops.to_half(&dlogits);
    let dw2h = grad_gemm_half(ops, &comb2, &dout, h, n, c, d);
    let db2 = grad_colsum_half(ops, &dout, c, d);
    let dcomb2 = ops.gemm_half(&dout, false, &w2h, true, n, c, h);
    // Adjoint of the aggregation: mean's adjoint is row-scale-then-sum;
    // sum's adjoint is a plain sum.
    let scaled2 = ops.row_scale_half(&dcomb2, &g.mean_scale_h, h);
    let back2 = spmm_sum_half(ops, g, &scaled2, h, d);
    let dh1 = ops.scale_add_half(one_eps, &dcomb2, agg_scale, &back2);
    let dz1 = ops.relu_grad_half(&z1, &dh1);
    let dw1h = grad_gemm_half(ops, &comb1, &dz1, f_in, n, h, d);
    let db1 = grad_colsum_half(ops, &dz1, h, d);

    let mut dw1 = ops.to_f32(&dw1h);
    let mut dw2 = ops.to_f32(&dw2h);
    let mut db1 = db1;
    let mut db2 = db2;
    ops.unscale_grad(&mut dw1);
    ops.unscale_grad(&mut dw2);
    ops.unscale_grad(&mut db1);
    ops.unscale_grad(&mut db2);

    StepOutput {
        loss,
        correct,
        grads: TwoLayerGrads { w1: dw1, b1: db1, w2: dw2, b2: db2 },
        logits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halfgnn_graph::gen;
    use halfgnn_graph::Csr;
    use halfgnn_sim::DeviceConfig;

    fn toy() -> (GraphView, Vec<f32>, Vec<u32>, Vec<bool>) {
        let (edges, labels) = gen::sbm(&[20, 20], 0.4, 0.02, 9);
        let csr = Csr::from_edges(40, 40, &edges).symmetrized_with_self_loops();
        let g = GraphView::full(&csr);
        let x = halfgnn_graph::features::class_features(&labels, 2, 8, 1.0, 0.2, 6);
        (g, x, labels, vec![true; 40])
    }

    #[test]
    fn f32_gradients_match_finite_differences() {
        let dev = DeviceConfig::a100_like();
        let (g, x, labels, mask) = toy();
        let mut p = TwoLayerParams::new(8, 6, 2, 2);
        let mut ops = Ops::new(&dev);
        let out = step_f32(&mut ops, &g, &p, &x, &labels, &mask);
        let eps = 1e-3;
        for &idx in &[0usize, 11, 30] {
            let orig = p.w1[idx];
            p.w1[idx] = orig + eps;
            let lp = step_f32(&mut ops, &g, &p, &x, &labels, &mask).loss;
            p.w1[idx] = orig - eps;
            let lm = step_f32(&mut ops, &g, &p, &x, &labels, &mask).loss;
            p.w1[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - out.grads.w1[idx]).abs() < 1e-2 + 0.05 * fd.abs(),
                "w1[{idx}]: fd {fd} vs {}",
                out.grads.w1[idx]
            );
        }
        for &idx in &[1usize, 8] {
            let orig = p.b1[idx % p.b1.len()];
            let j = idx % p.b1.len();
            p.b1[j] = orig + eps;
            let lp = step_f32(&mut ops, &g, &p, &x, &labels, &mask).loss;
            p.b1[j] = orig - eps;
            let lm = step_f32(&mut ops, &g, &p, &x, &labels, &mask).loss;
            p.b1[j] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            // Relative slack absorbs ReLU-kink noise in the central
            // difference.
            assert!(
                (fd - out.grads.b1[j]).abs() < 1e-2 + 0.1 * fd.abs(),
                "b1[{j}]: fd {fd} vs {}",
                out.grads.b1[j]
            );
        }
    }

    #[test]
    fn naive_half_overflows_on_a_hub_graph_halfgnn_does_not() {
        // A star hub with large positive features: Eq. 3's sum overflows in
        // half, Eq. 4's λ-scaled mean stays finite.
        let dev = DeviceConfig::a100_like();
        let n = 900;
        let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|c| (0, c)).collect();
        edges.extend((1..n as u32 - 1).map(|v| (v, v + 1)));
        let csr = Csr::from_edges(n, n, &edges).symmetrized_with_self_loops();
        let g = GraphView::full(&csr);
        let x = vec![80.0f32; n * 4];
        let xh: Vec<Half> = x.iter().map(|&v| Half::from_f32(v)).collect();
        let labels = vec![0u32; n];
        let mask = vec![true; n];
        let p = TwoLayerParams::new(4, 6, 2, 3);

        let mut ops = Ops::new(&dev);
        let naive =
            step_half(&mut ops, &g, &p, &xh, &labels, &mask, PrecisionMode::HalfNaive.into());
        assert!(naive.loss.is_nan(), "naive GIN should NaN, got {}", naive.loss);

        let ours = step_half(&mut ops, &g, &p, &xh, &labels, &mask, PrecisionMode::HalfGnn.into());
        assert!(ours.loss.is_finite(), "HalfGNN GIN must stay finite, got {}", ours.loss);
    }
}
