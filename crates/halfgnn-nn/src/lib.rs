//! GNN models (GCN, GAT, GIN) with hand-written forward/backward passes
//! over the sparse kernels, and the mixed-precision trainer.
//!
//! The paper's training recipe follows Micikevicius et al.: *state
//! tensors* (activations, edge tensors) live in half precision; *weight
//! updates* stay in float. Each step casts the f32 master weights to half,
//! runs forward/backward through the precision-appropriate kernels, and
//! feeds f32 gradients to Adam. Which kernels run is decided by
//! [`trainer::PrecisionMode`]:
//!
//! | mode | SpMM | SDDMM | exp | meaning |
//! |---|---|---|---|---|
//! | `Float` | cuSPARSE-f32 | DGL-f32 | f32 | DGL-float baseline |
//! | `HalfNaive` | cuSPARSE-f16 (post-scaled, atomics) | DGL-f16 | AMP-promoted | DGL-half baseline — overflows on hub graphs |
//! | `HalfGnn` | HalfGNN (discretized, staged) | HalfGNN half8 | shadow API | the paper's system |
//! | `HalfGnnNoDiscretize` | HalfGNN with post-reduction scaling | HalfGNN half8 | shadow | the §6.1.1 ablation |

pub mod adam;
pub mod dist;
pub mod forward;
pub mod gat;
pub mod gcn;
pub mod gin;
pub mod graphdata;
pub mod models;
pub mod params;
pub mod sage;
pub mod snapshot;
pub mod trainer;
