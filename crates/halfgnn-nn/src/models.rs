//! Model and precision-mode selection, plus the kernel dispatch layer that
//! routes a model's sparse operations to the right system's kernels.
//!
//! When a [`DistCtx`] is attached the dispatch layer also *shards* every
//! sparse operation: each simulated device runs the global kernel tiling
//! clamped to its row (or edge) window, after a metered halo exchange of
//! the remote operand rows, and the per-shard outputs are pasted back into
//! the global tensor. Because windowed launches are bitwise slices of the
//! full launch (see `halfgnn-kernels`), sharded float training is
//! bit-identical to single-device training; sharded half training differs
//! only where the gradient all-reduce genuinely re-quantizes on the f16
//! wire. Per-edge elementwise kernels (LeakyReLU, shadow-exp, row-div,
//! softmax-grad, …) are replicated on every device and never dispatched
//! through a window: their operands already ride along with the feature
//! halos, so they contribute zero additional communication.

use crate::dist::DistCtx;
use crate::graphdata::GraphView;
use halfgnn_exec::{buf_ref, BufRef, ExecCtx};
use halfgnn_graph::partition::Shard;
use halfgnn_half::Half;
use halfgnn_kernels::baseline::cusparse::{self, EdgeWeightsF32};
use halfgnn_kernels::common::{EdgeWeights, Reduce, ScalePlacement, Tiling, WriteStrategy};
use halfgnn_kernels::fused::{self, FusedAttnForward};
use halfgnn_kernels::{baseline::dgl_sddmm, baseline::ge_spmm, edge_ops, halfgnn_sddmm};
use halfgnn_kernels::{halfgnn_spmm, quant_spmm};
use halfgnn_sim::KernelStats;
use halfgnn_tensor::Ops;
use halfgnn_tune::plan::{AttnPlan, KernelPlan, SddmmPlan};
use halfgnn_tune::{SpmmPlan, SpmmVariant, Tuner};

/// Which GNN architecture to train.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelKind {
    /// Graph Convolutional Network (Kipf & Welling), right degree norm.
    Gcn,
    /// Graph Attention Network (Veličković et al.), single head.
    Gat,
    /// Graph Isomorphism Network (Xu et al.).
    Gin,
    /// GraphSAGE with the mean aggregator (Hamilton et al.).
    Sage,
}

/// Which system's kernels and numerics a training run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrecisionMode {
    /// f32 everywhere — the DGL-float baseline.
    Float,
    /// Half state tensors through DGL/cuSPARSE-style kernels with AMP
    /// promotions — the DGL-half baseline (overflows on hub graphs).
    HalfNaive,
    /// The paper's HalfGNN system: half2/half8 kernels, discretized
    /// reduction scaling, staged writes, shadow APIs.
    HalfGnn,
    /// Ablation (§6.1.1): HalfGNN kernels but post-reduction scaling — the
    /// overflow returns.
    HalfGnnNoDiscretize,
    /// INT8 quantized aggregation and wire: HalfGNN's system with
    /// per-64-element scale-block INT8 SpMM operands under deterministic
    /// stochastic rounding, and a 1 byte/element halo + all-reduce wire.
    /// Quantized plans run only where the f64 oracle is clean; vetoed
    /// sites fall back to the f16 HalfGNN kernels. SDDMM and the dense
    /// path stay f16 — the quantization targets the aggregation
    /// bandwidth, which is where §5's roofline says the bytes are.
    I8,
}

impl PrecisionMode {
    /// True for any mode whose state tensors are half precision.
    pub fn is_half(self) -> bool {
        !matches!(self, PrecisionMode::Float)
    }

    /// Scaling placement of this mode's HalfGNN SpMM when the aggregation
    /// carries a per-row scale (half modes only). This is a *correctness*
    /// property of the mode — never a tuning knob.
    fn scaling(self) -> ScalePlacement {
        match self {
            PrecisionMode::HalfGnn | PrecisionMode::I8 => ScalePlacement::Discretized,
            PrecisionMode::HalfGnnNoDiscretize => ScalePlacement::PostReduction,
            _ => unreachable!("scaling placement is only for HalfGNN modes"),
        }
    }
}

/// How a training run dispatches its sparse kernels: the precision mode
/// (which kernel *system* runs) plus an optional autotuner (which *plan*
/// each HalfGNN kernel runs with) plus an optional sharded-execution
/// context (how many simulated devices run it, and over which
/// interconnect). With no tuner attached every dispatch uses the untuned
/// default plan; with no `dist` attached every dispatch is one
/// single-device launch — both bit-for-bit identical to the simpler
/// trainer they generalize.
#[derive(Clone, Copy)]
pub struct Dispatch<'t> {
    /// Kernel system / numerics.
    pub mode: PrecisionMode,
    /// Kernel-plan autotuner, when `TrainConfig::tuning` is not `Off`.
    pub tuner: Option<&'t Tuner>,
    /// Force the fused attention pipeline on (`--fusion`). When false the
    /// fused kernels remain reachable only through tuner selection, so an
    /// untuned dispatch stays bit-for-bit on the unfused chain.
    pub fusion: bool,
    /// Sharded-execution context, when `TrainConfig::shards > 1`. `None`
    /// runs single-device launches — bit-for-bit the pre-sharding trainer.
    pub dist: Option<&'t DistCtx>,
    /// Capture/replay context (`--replay`). While capturing, every plan
    /// resolution and kernel launch records into the execution graph;
    /// while replaying, plans come back from the captured stream with zero
    /// tuner lookups.
    pub exec: Option<&'t ExecCtx>,
    /// Force every SpMM onto a specific skeleton, overriding both the
    /// untuned default and the tuner's pick. Serving sets
    /// `VertexParallel`: its neighbor groups never cross rows, so a row's
    /// f32/f16 summation order depends only on that row — which is what
    /// makes a coalesced batch bitwise-equal to serving each request
    /// alone. The edge-parallel skeletons cut rows at warp-tile
    /// boundaries derived from *global* edge offsets, so their partial
    /// sums shift with batch composition.
    pub force_spmm: Option<SpmmVariant>,
    /// Seed for INT8 stochastic rounding (`PrecisionMode::I8` only).
    /// Quantization is a pure function of `(seed, site, index)`; the
    /// trainer re-keys this per epoch so rounding errors decorrelate
    /// across steps while every run stays reproducible.
    pub quant_seed: u64,
}

impl Dispatch<'static> {
    /// Dispatch with default plans only (`tuning: Off`).
    pub fn untuned(mode: PrecisionMode) -> Dispatch<'static> {
        Dispatch {
            mode,
            tuner: None,
            fusion: false,
            dist: None,
            exec: None,
            force_spmm: None,
            quant_seed: 0,
        }
    }
}

impl<'t> Dispatch<'t> {
    /// Dispatch through a tuner (`tuning: Auto` / `Cached`).
    pub fn tuned(mode: PrecisionMode, tuner: &'t Tuner) -> Dispatch<'t> {
        Dispatch {
            mode,
            tuner: Some(tuner),
            fusion: false,
            dist: None,
            exec: None,
            force_spmm: None,
            quant_seed: 0,
        }
    }

    /// Explicitly force (or forbid forcing) the fused attention pipeline.
    pub fn with_fusion(mut self, fusion: bool) -> Dispatch<'t> {
        self.fusion = fusion;
        self
    }

    /// Attach (or detach) a sharded-execution context.
    pub fn with_dist(mut self, dist: Option<&'t DistCtx>) -> Dispatch<'t> {
        self.dist = dist;
        self
    }

    /// Attach (or detach) a capture/replay context.
    pub fn with_exec(mut self, exec: Option<&'t ExecCtx>) -> Dispatch<'t> {
        self.exec = exec;
        self
    }

    /// Pin every SpMM to the per-row-independent vertex-parallel skeleton
    /// (see [`Dispatch::force_spmm`]). `false` restores default routing.
    pub fn with_vertex_parallel_spmm(mut self, on: bool) -> Dispatch<'t> {
        self.force_spmm = on.then_some(SpmmVariant::VertexParallel);
        self
    }

    /// Re-key INT8 stochastic rounding (no effect outside
    /// [`PrecisionMode::I8`]).
    pub fn with_quant_seed(mut self, seed: u64) -> Dispatch<'t> {
        self.quant_seed = seed;
        self
    }

    /// Capture hook: record a sparse-kernel launch into the execution
    /// graph (no-op without a context or after it is sealed).
    fn capture_node(
        &self,
        op: &'static str,
        inputs: &[BufRef],
        outputs: &[BufRef],
        win: Option<(usize, usize)>,
    ) {
        if let Some(ctx) = self.exec {
            ctx.record_node(op, inputs, outputs, win);
        }
    }

    /// Whether GAT's attention chain runs the fused single-pass kernels
    /// for `f`-wide features over this graph. Explicit `fusion` config
    /// wins; otherwise the tuner decides per graph shape; with neither,
    /// the unfused five-kernel chain (bit-for-bit pre-fusion behavior).
    /// Baseline modes and odd `f` (the fused kernel is half2-padded)
    /// never fuse.
    pub fn attn_fused(&self, g: &GraphView, f: usize) -> bool {
        let halfgnn =
            matches!(self.mode, PrecisionMode::HalfGnn | PrecisionMode::HalfGnnNoDiscretize);
        if !halfgnn || !f.is_multiple_of(2) {
            return false;
        }
        // Replay pulls the captured decision; capture records whatever the
        // eager resolution below decides. Both sit after the early returns
        // so the plan stream pairs up launch-for-launch across epochs.
        if let Some(ctx) = self.exec {
            if ctx.is_replaying() {
                return ctx.next_attn_plan().fused;
            }
        }
        let fused = if self.fusion {
            true
        } else {
            match self.tuner {
                Some(t) => t.attn_plan(&g.csr, f).fused,
                None => false,
            }
        };
        if let Some(ctx) = self.exec {
            ctx.record_plan(KernelPlan::Attn(AttnPlan { fused }));
        }
        fused
    }
}

impl<'t> From<PrecisionMode> for Dispatch<'t> {
    fn from(mode: PrecisionMode) -> Dispatch<'t> {
        Dispatch {
            mode,
            tuner: None,
            fusion: false,
            dist: None,
            exec: None,
            force_spmm: None,
            quant_seed: 0,
        }
    }
}

/// GCN degree-norm placement (§3.1.3 discusses all three).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GcnNorm {
    /// Divide the SpMM *output* by the degree — the "frequently used"
    /// variant whose forward reduction overflows under naive half.
    Right,
    /// Divide the SpMM *input* by the degree: the forward never overflows,
    /// "however, during backward computation the degree-norm happens after
    /// SpMMv, where it is likely to overflow" (§3.1.3).
    Left,
    /// Divide input and output by √degree (Eq. 2's symmetric norm).
    Both,
}

// ---------------------------------------------------------------------
// Sharded paste loops. Row-parallel kernels produce global-sized outputs
// that are bitwise slices of the full launch inside the shard's row
// window; edge-level kernels likewise inside the shard's edge window
// (shards own contiguous row ranges, so their edge ranges are exactly the
// CSR slices of those rows). Pasting every shard's window therefore
// reassembles the single-device output exactly.
// ---------------------------------------------------------------------

fn sharded_rows<T: Copy>(
    ops: &mut Ops,
    ctx: &DistCtx,
    n: usize,
    f: usize,
    zero: T,
    mut run: impl FnMut(&mut Ops, &Shard) -> Vec<T>,
) -> Vec<T> {
    let mut out = vec![zero; n * f];
    for shard in &ctx.plan.shards {
        let y = run(ops, shard);
        let (r0, r1) = shard.row_range;
        out[r0 * f..r1 * f].copy_from_slice(&y[r0 * f..r1 * f]);
    }
    out
}

fn sharded_edges<T: Copy>(
    ops: &mut Ops,
    ctx: &DistCtx,
    nnz: usize,
    zero: T,
    mut run: impl FnMut(&mut Ops, &Shard) -> Vec<T>,
) -> Vec<T> {
    let mut out = vec![zero; nnz];
    for shard in &ctx.plan.shards {
        let y = run(ops, shard);
        let (e0, e1) = shard.edge_range;
        out[e0..e1].copy_from_slice(&y[e0..e1]);
    }
    out
}

// ---------------------------------------------------------------------
// Sparse-kernel dispatch. Every call records its stats into `ops`.
// ---------------------------------------------------------------------

/// f32 GCN aggregation under the chosen norm (Â is symmetric).
pub fn gcn_agg_f32(
    ops: &mut Ops,
    g: &GraphView,
    x: &[f32],
    f: usize,
    norm: GcnNorm,
    d: Dispatch<'_>,
) -> Vec<f32> {
    match norm {
        GcnNorm::Right => spmm_mean_f32(ops, g, x, f, d),
        GcnNorm::Left => {
            let scaled = ops.row_scale_f32(x, &g.mean_scale_f, f);
            spmm_sum_f32(ops, g, &scaled, f, d)
        }
        GcnNorm::Both => {
            let scaled = ops.row_scale_f32(x, &g.inv_sqrt_scale_f, f);
            spmm_f32_dispatch(
                ops,
                g,
                EdgeWeightsF32::Ones,
                &scaled,
                f,
                Some(&g.inv_sqrt_scale_f),
                d,
            )
        }
    }
}

/// Adjoint of [`gcn_agg_f32`] on a symmetric Â.
pub fn gcn_agg_backward_f32(
    ops: &mut Ops,
    g: &GraphView,
    dy: &[f32],
    f: usize,
    norm: GcnNorm,
    d: Dispatch<'_>,
) -> Vec<f32> {
    match norm {
        // (D⁻¹Â)ᵀ = Â D⁻¹: scale first, then sum.
        GcnNorm::Right => {
            let scaled = ops.row_scale_f32(dy, &g.mean_scale_f, f);
            spmm_sum_f32(ops, g, &scaled, f, d)
        }
        // (ÂD⁻¹)ᵀ = D⁻¹Â: sum first, then scale — the §3.1.3 backward trap.
        GcnNorm::Left => {
            let summed = spmm_sum_f32(ops, g, dy, f, d);
            ops.row_scale_f32(&summed, &g.mean_scale_f, f)
        }
        // D^-1/2 Â D^-1/2 is self-adjoint.
        GcnNorm::Both => gcn_agg_f32(ops, g, dy, f, GcnNorm::Both, d),
    }
}

/// Half GCN aggregation under the chosen norm and kernel system.
pub fn gcn_agg_half(
    ops: &mut Ops,
    g: &GraphView,
    x: &[Half],
    f: usize,
    norm: GcnNorm,
    d: Dispatch<'_>,
) -> Vec<Half> {
    match norm {
        GcnNorm::Right => spmm_mean_half(ops, g, x, f, d),
        GcnNorm::Left => {
            let scaled = ops.row_scale_half(x, &g.mean_scale_h, f);
            spmm_sum_half(ops, g, &scaled, f, d)
        }
        GcnNorm::Both => {
            let scaled = ops.row_scale_half(x, &g.inv_sqrt_scale_h, f);
            spmm_half_dispatch(ops, g, EdgeWeights::Ones, &scaled, f, Some(&g.inv_sqrt_scale_h), d)
        }
    }
}

/// Adjoint of [`gcn_agg_half`]: the `Left` adjoint applies the degree norm
/// *after* the reduction — under the naive kernels this is where the
/// backward pass overflows even though the forward was safe (§3.1.3);
/// HalfGNN's discretized mean is safe on both sides.
pub fn gcn_agg_backward_half(
    ops: &mut Ops,
    g: &GraphView,
    dy: &[Half],
    f: usize,
    norm: GcnNorm,
    d: Dispatch<'_>,
) -> Vec<Half> {
    match norm {
        GcnNorm::Right => {
            let scaled = ops.row_scale_half(dy, &g.mean_scale_h, f);
            spmm_sum_half(ops, g, &scaled, f, d)
        }
        // D⁻¹Â δy is exactly a mean aggregation of δy: the naive path runs
        // sum-then-post-scale (overflow), HalfGNN discretizes it.
        GcnNorm::Left => spmm_mean_half(ops, g, dy, f, d),
        GcnNorm::Both => gcn_agg_half(ops, g, dy, f, GcnNorm::Both, d),
    }
}

/// The single HalfGNN SpMM plan-resolution point: every SpMMv/SpMMve
/// dispatch in every model funnels through here. `scaling` is decided by
/// the caller (mode + aggregation semantics); the *plan* — write
/// strategy, tile geometry, edge- vs vertex-parallel skeleton — comes
/// from the tuner when one is attached and is the untuned default
/// otherwise, keeping `tuning: Off` runs bit-identical to the pre-tuner
/// trainer. `win` clamps the launch to a shard's global row window.
#[allow(clippy::too_many_arguments)]
fn halfgnn_spmm_planned(
    ops: &mut Ops,
    g: &GraphView,
    w: EdgeWeights<'_>,
    x: &[Half],
    f: usize,
    row_scale: Option<&[Half]>,
    scaling: ScalePlacement,
    d: Dispatch<'_>,
    win: (usize, usize),
) -> (Vec<Half>, KernelStats) {
    let plan = match d.exec {
        Some(ctx) if ctx.is_replaying() => ctx.next_spmm_plan(),
        exec => {
            let mut plan = match d.tuner {
                Some(t) => t.spmm_plan(&g.csr, f, !w.is_ones(), scaling),
                None => SpmmPlan::default(),
            };
            // A forced skeleton overrides both default and tuned routing
            // (and is recorded, so replay reproduces the forced variant).
            if let Some(v) = d.force_spmm {
                plan.variant = v;
            }
            if let Some(ctx) = exec {
                ctx.record_plan(KernelPlan::Spmm(plan));
            }
            plan
        }
    };
    match plan.variant {
        SpmmVariant::EdgeParallel => halfgnn_spmm::spmm_window(
            ops.dev,
            &g.coo,
            w,
            x,
            f,
            row_scale,
            &plan.to_spmm_config(scaling),
            win,
        ),
        // The canonical COO edge order equals CSR order, so edge-weight
        // tensors remain valid under the vertex-parallel skeleton.
        SpmmVariant::VertexParallel => halfgnn_spmm::spmm_vertex_parallel_window(
            ops.dev, &g.csr, w, x, f, row_scale, scaling, win,
        ),
    }
}

/// The INT8 kernel's untuned geometry: its single vertex-parallel
/// skeleton at the paper-default group size (candidate #0 of
/// `spmm_i8_candidates`).
fn default_i8_plan() -> SpmmPlan {
    SpmmPlan {
        variant: SpmmVariant::VertexParallel,
        writes: WriteStrategy::Staged,
        edges_per_warp: 64,
        warps_per_cta: 4,
    }
}

/// One windowed INT8 SpMM launch, or its f16 fallback. With a tuner
/// attached the quantized kernel runs only where the f64 oracle found a
/// clean (no divergence, no saturation) candidate; a `None` plan means
/// every candidate was oracle-dirty on this shape and the site must run
/// the f16 HalfGNN kernel instead. The fallback decision is captured, so
/// replay never re-tunes a vetoed site back onto the quantized path.
#[allow(clippy::too_many_arguments)]
fn spmm_i8_planned(
    ops: &mut Ops,
    g: &GraphView,
    w: EdgeWeights<'_>,
    x: &[Half],
    f: usize,
    row_scale: Option<&[Half]>,
    d: Dispatch<'_>,
    win: (usize, usize),
) -> (Vec<Half>, KernelStats) {
    let (plan, quantized) = match d.exec {
        Some(ctx) if ctx.is_replaying() => ctx.next_spmm_i8_plan(),
        exec => {
            let resolved = match d.tuner {
                Some(t) => match t.spmm_i8_plan(&g.csr, f, !w.is_ones(), d.quant_seed) {
                    Some(p) => (p, true),
                    None => (SpmmPlan::default(), false),
                },
                None => (default_i8_plan(), true),
            };
            if let Some(ctx) = exec {
                ctx.record_plan(match resolved {
                    (p, true) => KernelPlan::SpmmI8(p),
                    (p, false) => KernelPlan::Spmm(p),
                });
            }
            resolved
        }
    };
    if quantized {
        let tiling =
            Tiling { edges_per_warp: plan.edges_per_warp, warps_per_cta: plan.warps_per_cta };
        quant_spmm::spmm_i8_window(ops.dev, &g.csr, w, x, f, row_scale, tiling, d.quant_seed, win)
    } else {
        // Oracle-vetoed fallback: the f16 kernels with I8's correctness
        // scaling (discretized — the mode property).
        let scaling = if row_scale.is_some() { d.mode.scaling() } else { ScalePlacement::None };
        let mut plan = plan;
        if let Some(v) = d.force_spmm {
            plan.variant = v;
        }
        match plan.variant {
            SpmmVariant::EdgeParallel => halfgnn_spmm::spmm_window(
                ops.dev,
                &g.coo,
                w,
                x,
                f,
                row_scale,
                &plan.to_spmm_config(scaling),
                win,
            ),
            SpmmVariant::VertexParallel => halfgnn_spmm::spmm_vertex_parallel_window(
                ops.dev, &g.csr, w, x, f, row_scale, scaling, win,
            ),
        }
    }
}

/// One windowed half SpMM launch under the mode's kernel system.
#[allow(clippy::too_many_arguments)]
fn spmm_half_window(
    ops: &mut Ops,
    g: &GraphView,
    w: EdgeWeights<'_>,
    x: &[Half],
    f: usize,
    row_scale: Option<&[Half]>,
    d: Dispatch<'_>,
    win: (usize, usize),
) -> (Vec<Half>, KernelStats) {
    match d.mode {
        PrecisionMode::HalfNaive => {
            cusparse::spmm_half_window(ops.dev, &g.coo, w, x, f, row_scale, win)
        }
        PrecisionMode::HalfGnn | PrecisionMode::HalfGnnNoDiscretize => {
            // A per-row scale means mean-style aggregation: its placement
            // is the mode's correctness property. A plain sum never
            // scales.
            let scaling = if row_scale.is_some() { d.mode.scaling() } else { ScalePlacement::None };
            halfgnn_spmm_planned(ops, g, w, x, f, row_scale, scaling, d, win)
        }
        PrecisionMode::I8 => spmm_i8_planned(ops, g, w, x, f, row_scale, d, win),
        PrecisionMode::Float => unreachable!("float path uses the f32 dispatch"),
    }
}

/// Half SpMM dispatch: one full-window launch, or — with a [`DistCtx`]
/// attached — per-shard halo exchange + windowed launch + paste.
fn spmm_half_dispatch(
    ops: &mut Ops,
    g: &GraphView,
    w: EdgeWeights<'_>,
    x: &[Half],
    f: usize,
    row_scale: Option<&[Half]>,
    d: Dispatch<'_>,
) -> Vec<Half> {
    let mut ins = vec![buf_ref(x)];
    if let EdgeWeights::Values(wv) = w {
        ins.push(buf_ref(wv));
    }
    if let Some(rs) = row_scale {
        ins.push(buf_ref(rs));
    }
    match d.dist {
        None => {
            let (y, stats) = spmm_half_window(ops, g, w, x, f, row_scale, d, (0, g.n()));
            ops.record(stats);
            d.capture_node("spmm_half", &ins, &[buf_ref(&y)], None);
            y
        }
        Some(ctx) => sharded_rows(ops, ctx, g.n(), f, Half::ZERO, |ops, shard| {
            if d.mode == PrecisionMode::I8 {
                ctx.exchange_halo_i8(ops, x, f, shard, d.quant_seed);
            } else {
                ctx.exchange_halo_half(ops, x, f, shard);
            }
            let (y, stats) = spmm_half_window(ops, g, w, x, f, row_scale, d, shard.row_range);
            ctx.log_compute(shard.index, stats.time_us);
            ops.record(stats);
            d.capture_node("spmm_half", &ins, &[buf_ref(&y)], Some(shard.row_range));
            y
        }),
    }
}

/// Float SpMM dispatch (cuSPARSE kernel), sharded like
/// [`spmm_half_dispatch`] but with 4-byte halo elements.
fn spmm_f32_dispatch(
    ops: &mut Ops,
    g: &GraphView,
    w: EdgeWeightsF32<'_>,
    x: &[f32],
    f: usize,
    row_scale: Option<&[f32]>,
    d: Dispatch<'_>,
) -> Vec<f32> {
    let mut ins = vec![buf_ref(x)];
    if let EdgeWeightsF32::Values(wv) = w {
        ins.push(buf_ref(wv));
    }
    if let Some(rs) = row_scale {
        ins.push(buf_ref(rs));
    }
    match d.dist {
        None => {
            // The forced vertex-parallel skeleton (serving) runs the
            // GE-SpMM row-per-warp kernel: each row reduces its own
            // neighbors in column order, so output bits are independent
            // of which other rows share the launch. Degree norm becomes a
            // post-reduction row scale, same placement as the cuSPARSE
            // path. (Weighted SpMMve — GAT — keeps the edge-tiled kernel;
            // serving only dispatches unweighted GCN aggregation.)
            let (y, stats) = if d.force_spmm == Some(SpmmVariant::VertexParallel) && w.is_ones() {
                let (mut y, stats) = ge_spmm::spmm_float(ops.dev, &g.csr, x, f);
                if let Some(scale) = row_scale {
                    for (r, &sc) in scale.iter().enumerate() {
                        for v in &mut y[r * f..(r + 1) * f] {
                            *v *= sc;
                        }
                    }
                }
                (y, stats)
            } else {
                cusparse::spmm_float_window(ops.dev, &g.coo, w, x, f, row_scale, (0, g.n()))
            };
            ops.record(stats);
            d.capture_node("spmm_f32", &ins, &[buf_ref(&y)], None);
            y
        }
        Some(ctx) => sharded_rows(ops, ctx, g.n(), f, 0.0f32, |ops, shard| {
            ctx.exchange_halo_f32(ops, x, f, shard);
            let (y, stats) =
                cusparse::spmm_float_window(ops.dev, &g.coo, w, x, f, row_scale, shard.row_range);
            ctx.log_compute(shard.index, stats.time_us);
            ops.record(stats);
            d.capture_node("spmm_f32", &ins, &[buf_ref(&y)], Some(shard.row_range));
            y
        }),
    }
}

/// Half SpMMv with mean (right degree-norm) aggregation.
pub fn spmm_mean_half(
    ops: &mut Ops,
    g: &GraphView,
    x: &[Half],
    f: usize,
    d: Dispatch<'_>,
) -> Vec<Half> {
    spmm_half_dispatch(ops, g, EdgeWeights::Ones, x, f, Some(&g.mean_scale_h), d)
}

/// Half SpMMv, plain sum (GIN's default aggregation; backward passes).
pub fn spmm_sum_half(
    ops: &mut Ops,
    g: &GraphView,
    x: &[Half],
    f: usize,
    d: Dispatch<'_>,
) -> Vec<Half> {
    spmm_half_dispatch(ops, g, EdgeWeights::Ones, x, f, None, d)
}

/// Half SpMMve (weighted sum — GAT's attention aggregation; the attention
/// weights are normalized, so no degree scaling is needed).
pub fn spmmve_half(
    ops: &mut Ops,
    g: &GraphView,
    w: &[Half],
    x: &[Half],
    f: usize,
    d: Dispatch<'_>,
) -> Vec<Half> {
    spmm_half_dispatch(ops, g, EdgeWeights::Values(w), x, f, None, d)
}

/// One windowed half SDDMM launch under the mode's kernel system.
fn sddmm_half_window(
    ops: &mut Ops,
    g: &GraphView,
    u: &[Half],
    v: &[Half],
    f: usize,
    d: Dispatch<'_>,
    win: (usize, usize),
) -> (Vec<Half>, KernelStats) {
    match d.mode {
        PrecisionMode::HalfNaive => dgl_sddmm::sddmm_half_window(ops.dev, &g.coo, u, v, f, win),
        // I8 keeps SDDMM in f16: the dot products are per-edge (no long
        // reductions to quantize) and the operands already rode the INT8
        // halo wire — re-quantizing them buys no bytes.
        PrecisionMode::HalfGnn | PrecisionMode::HalfGnnNoDiscretize | PrecisionMode::I8 => {
            let plan = match d.exec {
                Some(ctx) if ctx.is_replaying() => ctx.next_sddmm_plan(),
                exec => {
                    // `default_for` round-trips `widest_for` exactly, so
                    // the captured plan replays bit-identically.
                    let plan = match d.tuner {
                        Some(t) => t.sddmm_plan(&g.csr, f),
                        None => SddmmPlan::default_for(f),
                    };
                    if let Some(ctx) = exec {
                        ctx.record_plan(KernelPlan::Sddmm(plan));
                    }
                    plan
                }
            };
            halfgnn_sddmm::sddmm_window(ops.dev, &g.coo, u, v, f, &plan.to_sddmm_config(), win)
        }
        PrecisionMode::Float => unreachable!("float path uses sddmm_f32"),
    }
}

/// Half SDDMM dispatch: DGL's naive kernel or HalfGNN's vector-width
/// design, with the plan resolved by the tuner when one is attached and
/// by [`SddmmConfig::widest_for`] (the paper's widest-legal-width rule)
/// otherwise. `u` is row-indexed (shard-local); `v` is column-indexed, so
/// sharded runs halo-exchange it before each per-shard edge window.
pub fn sddmm_half(
    ops: &mut Ops,
    g: &GraphView,
    u: &[Half],
    v: &[Half],
    f: usize,
    d: Dispatch<'_>,
) -> Vec<Half> {
    match d.dist {
        None => {
            let (y, stats) = sddmm_half_window(ops, g, u, v, f, d, (0, g.nnz()));
            ops.record(stats);
            d.capture_node("sddmm_half", &[buf_ref(u), buf_ref(v)], &[buf_ref(&y)], None);
            y
        }
        Some(ctx) => sharded_edges(ops, ctx, g.nnz(), Half::ZERO, |ops, shard| {
            if d.mode == PrecisionMode::I8 {
                ctx.exchange_halo_i8(ops, v, f, shard, d.quant_seed);
            } else {
                ctx.exchange_halo_half(ops, v, f, shard);
            }
            let (y, stats) = sddmm_half_window(ops, g, u, v, f, d, shard.edge_range);
            ctx.log_compute(shard.index, stats.time_us);
            ops.record(stats);
            d.capture_node(
                "sddmm_half",
                &[buf_ref(u), buf_ref(v)],
                &[buf_ref(&y)],
                Some(shard.edge_range),
            );
            y
        }),
    }
}

/// Half per-row edge reduce (softmax max/denominator). Edge weights are
/// edge-partitioned with the rows that own them, so sharded runs need no
/// halo — only the windowed launch and the row paste.
pub fn edge_reduce_half(
    ops: &mut Ops,
    g: &GraphView,
    w: &[Half],
    op: Reduce,
    d: Dispatch<'_>,
) -> Vec<Half> {
    match d.dist {
        None => {
            let (y, stats) = halfgnn_spmm::edge_reduce(ops.dev, &g.coo, w, op);
            ops.record(stats);
            d.capture_node("edge_reduce_half", &[buf_ref(w)], &[buf_ref(&y)], None);
            y
        }
        Some(ctx) => sharded_rows(ops, ctx, g.n(), 1, Half::ZERO, |ops, shard| {
            let (y, stats) =
                halfgnn_spmm::edge_reduce_window(ops.dev, &g.coo, w, op, shard.row_range);
            ctx.log_compute(shard.index, stats.time_us);
            ops.record(stats);
            d.capture_node(
                "edge_reduce_half",
                &[buf_ref(w)],
                &[buf_ref(&y)],
                Some(shard.row_range),
            );
            y
        }),
    }
}

/// Fused attention forward dispatch (SDDMM + edge-softmax + SpMM in one
/// pass). Sharded runs halo-exchange `z` once for the whole fused pass —
/// the fusion win carries over to the wire: one exchange instead of the
/// unfused chain's two (SDDMM + SpMMve).
#[allow(clippy::too_many_arguments)]
pub fn fused_attn_forward(
    ops: &mut Ops,
    g: &GraphView,
    s_dst: &[Half],
    s_src: &[Half],
    slope: f32,
    z: &[Half],
    f: usize,
    d: Dispatch<'_>,
) -> FusedAttnForward {
    let ins = [buf_ref(s_dst), buf_ref(s_src), buf_ref(z)];
    match d.dist {
        None => {
            let (y, stats) = fused::fused_attn_forward(ops.dev, &g.coo, s_dst, s_src, slope, z, f);
            ops.record(stats);
            d.capture_node(
                "fused_attn_forward",
                &ins,
                &[buf_ref(&y.e), buf_ref(&y.alpha), buf_ref(&y.out)],
                None,
            );
            y
        }
        Some(ctx) => {
            let mut acc = FusedAttnForward {
                e: vec![Half::ZERO; g.nnz()],
                alpha: vec![Half::ZERO; g.nnz()],
                out: vec![Half::ZERO; g.n() * f],
            };
            for shard in &ctx.plan.shards {
                ctx.exchange_halo_half(ops, z, f, shard);
                let (y, stats) = fused::fused_attn_forward_window(
                    ops.dev,
                    &g.coo,
                    s_dst,
                    s_src,
                    slope,
                    z,
                    f,
                    shard.row_range,
                );
                ctx.log_compute(shard.index, stats.time_us);
                ops.record(stats);
                d.capture_node(
                    "fused_attn_forward",
                    &ins,
                    &[buf_ref(&y.e), buf_ref(&y.alpha), buf_ref(&y.out)],
                    Some(shard.row_range),
                );
                let (r0, r1) = shard.row_range;
                let (e0, e1) = shard.edge_range;
                acc.e[e0..e1].copy_from_slice(&y.e[e0..e1]);
                acc.alpha[e0..e1].copy_from_slice(&y.alpha[e0..e1]);
                acc.out[r0 * f..r1 * f].copy_from_slice(&y.out[r0 * f..r1 * f]);
            }
            acc
        }
    }
}

/// Fused softmax-backward dispatch. All operands are edge tensors (local
/// to the shard that owns the rows), so sharded runs are windowed launches
/// with zero communication.
pub fn fused_softmax_grad(
    ops: &mut Ops,
    g: &GraphView,
    alpha: &[Half],
    dalpha: &[Half],
    e: &[Half],
    slope: f32,
    d: Dispatch<'_>,
) -> Vec<Half> {
    let ins = [buf_ref(alpha), buf_ref(dalpha), buf_ref(e)];
    match d.dist {
        None => {
            let (y, stats) = fused::fused_softmax_grad(ops.dev, &g.coo, alpha, dalpha, e, slope);
            ops.record(stats);
            d.capture_node("fused_softmax_grad", &ins, &[buf_ref(&y)], None);
            y
        }
        Some(ctx) => sharded_edges(ops, ctx, g.nnz(), Half::ZERO, |ops, shard| {
            let (y, stats) = fused::fused_softmax_grad_window(
                ops.dev,
                &g.coo,
                alpha,
                dalpha,
                e,
                slope,
                shard.row_range,
            );
            ctx.log_compute(shard.index, stats.time_us);
            ops.record(stats);
            d.capture_node("fused_softmax_grad", &ins, &[buf_ref(&y)], Some(shard.row_range));
            y
        }),
    }
}

/// Float SpMMv with mean aggregation (cuSPARSE + post scale, as DGL does).
pub fn spmm_mean_f32(
    ops: &mut Ops,
    g: &GraphView,
    x: &[f32],
    f: usize,
    d: Dispatch<'_>,
) -> Vec<f32> {
    spmm_f32_dispatch(ops, g, EdgeWeightsF32::Ones, x, f, Some(&g.mean_scale_f), d)
}

/// Float SpMMv, plain sum.
pub fn spmm_sum_f32(
    ops: &mut Ops,
    g: &GraphView,
    x: &[f32],
    f: usize,
    d: Dispatch<'_>,
) -> Vec<f32> {
    spmm_f32_dispatch(ops, g, EdgeWeightsF32::Ones, x, f, None, d)
}

/// Float SpMMve.
pub fn spmmve_f32(
    ops: &mut Ops,
    g: &GraphView,
    w: &[f32],
    x: &[f32],
    f: usize,
    d: Dispatch<'_>,
) -> Vec<f32> {
    spmm_f32_dispatch(ops, g, EdgeWeightsF32::Values(w), x, f, None, d)
}

/// Float SDDMM (DGL's). `v` is column-indexed → halo-exchanged when
/// sharded.
pub fn sddmm_f32(
    ops: &mut Ops,
    g: &GraphView,
    u: &[f32],
    v: &[f32],
    f: usize,
    d: Dispatch<'_>,
) -> Vec<f32> {
    match d.dist {
        None => {
            let (y, stats) = dgl_sddmm::sddmm_float(ops.dev, &g.coo, u, v, f);
            ops.record(stats);
            d.capture_node("sddmm_f32", &[buf_ref(u), buf_ref(v)], &[buf_ref(&y)], None);
            y
        }
        Some(ctx) => sharded_edges(ops, ctx, g.nnz(), 0.0f32, |ops, shard| {
            ctx.exchange_halo_f32(ops, v, f, shard);
            let (y, stats) =
                dgl_sddmm::sddmm_float_window(ops.dev, &g.coo, u, v, f, shard.edge_range);
            ctx.log_compute(shard.index, stats.time_us);
            ops.record(stats);
            d.capture_node(
                "sddmm_f32",
                &[buf_ref(u), buf_ref(v)],
                &[buf_ref(&y)],
                Some(shard.edge_range),
            );
            y
        }),
    }
}

/// Float edge reduce (no halo, like [`edge_reduce_half`]).
pub fn edge_reduce_f32(
    ops: &mut Ops,
    g: &GraphView,
    w: &[f32],
    op: Reduce,
    d: Dispatch<'_>,
) -> Vec<f32> {
    match d.dist {
        None => {
            let (y, stats) = edge_ops::edge_reduce_f32(ops.dev, &g.coo, w, op);
            ops.record(stats);
            d.capture_node("edge_reduce_f32", &[buf_ref(w)], &[buf_ref(&y)], None);
            y
        }
        Some(ctx) => sharded_rows(ops, ctx, g.n(), 1, 0.0f32, |ops, shard| {
            let (y, stats) =
                edge_ops::edge_reduce_f32_window(ops.dev, &g.coo, w, op, shard.row_range);
            ctx.log_compute(shard.index, stats.time_us);
            ops.record(stats);
            d.capture_node("edge_reduce_f32", &[buf_ref(w)], &[buf_ref(&y)], Some(shard.row_range));
            y
        }),
    }
}

// ---------------------------------------------------------------------
// Gradient reductions. Weight gradients contract activations over the
// vertex dimension, so a sharded device only ever holds the row slice it
// owns: the full gradient is the all-reduce of per-shard partials. Half
// modes move the partials over the f16 wire with discretized per-bucket
// scaling (overflow-free by construction); float mode's reduction is the
// exact global GEMM the single-device step computes, so only the f32 wire
// cost is charged and sharded float training stays bit-identical.
// ---------------------------------------------------------------------

/// Vertex-contracted gradient GEMM `AᵀB` with `A: n×m`, `B: n×c` (both
/// row-major over vertices), producing the `m×c` weight gradient.
pub fn grad_gemm_half(
    ops: &mut Ops,
    a: &[Half],
    b: &[Half],
    m: usize,
    n: usize,
    c: usize,
    d: Dispatch<'_>,
) -> Vec<Half> {
    match d.dist {
        None => ops.gemm_half(a, true, b, false, m, n, c),
        Some(ctx) => {
            let partials: Vec<Vec<Half>> = ctx
                .plan
                .shards
                .iter()
                .map(|s| {
                    let (r0, r1) = s.row_range;
                    ops.gemm_half(
                        &a[r0 * m..r1 * m],
                        true,
                        &b[r0 * c..r1 * c],
                        false,
                        m,
                        r1 - r0,
                        c,
                    )
                })
                .collect();
            if d.mode == PrecisionMode::I8 {
                ctx.allreduce_grad_i8(ops, &partials, d.quant_seed)
            } else {
                ctx.allreduce_grad_half(ops, &partials)
            }
        }
    }
}

/// Vertex-contracted gradient GEMM `AᵀB` in float. The value is the exact
/// global contraction; only the all-reduce wire traffic is charged.
pub fn grad_gemm_f32(
    ops: &mut Ops,
    a: &[f32],
    b: &[f32],
    m: usize,
    n: usize,
    c: usize,
    d: Dispatch<'_>,
) -> Vec<f32> {
    let y = ops.gemm_f32(a, true, b, false, m, n, c);
    if let Some(ctx) = d.dist {
        ctx.charge_allreduce_f32(y.len());
    }
    y
}

/// Bias gradient (column sum over vertices) in half, all-reduced over the
/// f16 wire when sharded.
pub fn grad_colsum_half(ops: &mut Ops, x: &[Half], c: usize, d: Dispatch<'_>) -> Vec<f32> {
    match d.dist {
        None => ops.colsum_half(x, c),
        Some(ctx) => {
            let partials: Vec<Vec<f32>> = ctx
                .plan
                .shards
                .iter()
                .map(|s| {
                    let (r0, r1) = s.row_range;
                    ops.colsum_half(&x[r0 * c..r1 * c], c)
                })
                .collect();
            if d.mode == PrecisionMode::I8 {
                ctx.allreduce_f32_on_i8_wire(ops, &partials, d.quant_seed)
            } else {
                ctx.allreduce_f32_on_f16_wire(ops, &partials)
            }
        }
    }
}

/// Bias gradient (column sum over vertices) in float; exact value, wire
/// cost charged when sharded.
pub fn grad_colsum_f32(ops: &mut Ops, x: &[f32], c: usize, d: Dispatch<'_>) -> Vec<f32> {
    let y = ops.colsum_f32(x, c);
    if let Some(ctx) = d.dist {
        ctx.charge_allreduce_f32(y.len());
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use halfgnn_graph::partition::PartitionStrategy;
    use halfgnn_graph::Csr;
    use halfgnn_sim::interconnect::Topology;
    use halfgnn_sim::DeviceConfig;

    fn prep() -> GraphView {
        let csr = Csr::from_edges(6, 6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
            .symmetrized_with_self_loops();
        GraphView::full(&csr)
    }

    #[test]
    fn half_dispatch_runs_all_modes() {
        let dev = DeviceConfig::a100_like();
        let g = prep();
        let x = vec![Half::from_f32(0.5); g.n() * 4];
        for mode in
            [PrecisionMode::HalfNaive, PrecisionMode::HalfGnn, PrecisionMode::HalfGnnNoDiscretize]
        {
            let mut ops = Ops::new(&dev);
            let y = spmm_mean_half(&mut ops, &g, &x, 4, mode.into());
            assert_eq!(y.len(), g.n() * 4);
            // Mean of constant 0.5 is 0.5 whatever the kernel.
            assert!((y[0].to_f32() - 0.5).abs() < 0.01, "{mode:?}: {}", y[0]);
            assert!(ops.kernel_count() >= 1);
        }
    }

    #[test]
    fn float_and_half_dispatch_agree() {
        let dev = DeviceConfig::a100_like();
        let g = prep();
        let xf: Vec<f32> = (0..g.n() * 4).map(|i| (i % 7) as f32 * 0.25 - 0.75).collect();
        let xh: Vec<Half> = xf.iter().map(|&v| Half::from_f32(v)).collect();
        let mut ops = Ops::new(&dev);
        let yf = spmm_sum_f32(&mut ops, &g, &xf, 4, Dispatch::untuned(PrecisionMode::Float));
        let yh = spmm_sum_half(&mut ops, &g, &xh, 4, PrecisionMode::HalfGnn.into());
        for (a, b) in yf.iter().zip(&yh) {
            assert!((a - b.to_f32()).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn mode_flags() {
        assert!(!PrecisionMode::Float.is_half());
        assert!(PrecisionMode::HalfNaive.is_half());
        assert!(PrecisionMode::HalfGnn.is_half());
    }

    #[test]
    fn sharded_dispatch_is_bitwise_for_every_kernel_family() {
        // Every sharded sparse dispatch must paste back the exact bits of
        // the single-device launch (the tentpole's core invariant — the
        // full-blown harness lives in tests/shard_equivalence.rs).
        let dev = DeviceConfig::a100_like();
        let g = prep();
        let n = g.n();
        let f = 4;
        let xh: Vec<Half> =
            (0..n * f).map(|i| Half::from_f32((i % 5) as f32 * 0.3 - 0.6)).collect();
        let xf: Vec<f32> = xh.iter().map(|h| h.to_f32()).collect();
        let wh: Vec<Half> = (0..g.nnz()).map(|i| Half::from_f32((i % 3) as f32 * 0.25)).collect();
        let wf: Vec<f32> = wh.iter().map(|h| h.to_f32()).collect();
        let ctx = DistCtx::new(&g.csr, 3, PartitionStrategy::Contiguous, Topology::Ring);

        let mut ops = Ops::new(&dev);
        let single = Dispatch::untuned(PrecisionMode::HalfGnn);
        let shard = single.with_dist(Some(&ctx));
        assert_eq!(
            spmm_mean_half(&mut ops, &g, &xh, f, single),
            spmm_mean_half(&mut ops, &g, &xh, f, shard)
        );
        assert_eq!(
            spmmve_half(&mut ops, &g, &wh, &xh, f, single),
            spmmve_half(&mut ops, &g, &wh, &xh, f, shard)
        );
        assert_eq!(
            sddmm_half(&mut ops, &g, &xh, &xh, f, single),
            sddmm_half(&mut ops, &g, &xh, &xh, f, shard)
        );
        assert_eq!(
            edge_reduce_half(&mut ops, &g, &wh, Reduce::Max, single),
            edge_reduce_half(&mut ops, &g, &wh, Reduce::Max, shard)
        );

        let fsingle = Dispatch::untuned(PrecisionMode::Float);
        let fshard = fsingle.with_dist(Some(&ctx));
        assert_eq!(
            spmm_sum_f32(&mut ops, &g, &xf, f, fsingle),
            spmm_sum_f32(&mut ops, &g, &xf, f, fshard)
        );
        assert_eq!(
            sddmm_f32(&mut ops, &g, &xf, &xf, f, fsingle),
            sddmm_f32(&mut ops, &g, &xf, &xf, f, fshard)
        );
        assert_eq!(
            edge_reduce_f32(&mut ops, &g, &wf, Reduce::Sum, fsingle),
            edge_reduce_f32(&mut ops, &g, &wf, Reduce::Sum, fshard)
        );
        // Float grad reductions are the exact global contraction.
        assert_eq!(
            grad_gemm_f32(&mut ops, &xf, &xf, f, n, f, fsingle),
            grad_gemm_f32(&mut ops, &xf, &xf, f, n, f, fshard)
        );
        // And the dispatch actually metered traffic.
        assert!(ctx.snapshot().total_bytes() > 0);
    }

    #[test]
    fn sharded_fused_attention_is_bitwise() {
        let dev = DeviceConfig::a100_like();
        let g = prep();
        let n = g.n();
        let f = 4;
        let z: Vec<Half> = (0..n * f).map(|i| Half::from_f32((i % 7) as f32 * 0.2 - 0.5)).collect();
        let s: Vec<Half> = (0..n).map(|i| Half::from_f32(i as f32 * 0.1)).collect();
        let ctx = DistCtx::new(&g.csr, 2, PartitionStrategy::DegreeBalanced, Topology::AllToAll);
        let mut ops = Ops::new(&dev);
        let single = Dispatch::untuned(PrecisionMode::HalfGnn);
        let shard = single.with_dist(Some(&ctx));
        let a = fused_attn_forward(&mut ops, &g, &s, &s, 0.2, &z, f, single);
        let b = fused_attn_forward(&mut ops, &g, &s, &s, 0.2, &z, f, shard);
        assert_eq!(a.e, b.e);
        assert_eq!(a.alpha, b.alpha);
        assert_eq!(a.out, b.out);
        let ga = fused_softmax_grad(&mut ops, &g, &a.alpha, &a.e, &a.e, 0.2, single);
        let gb = fused_softmax_grad(&mut ops, &g, &a.alpha, &a.e, &a.e, 0.2, shard);
        assert_eq!(ga, gb);
    }
}
