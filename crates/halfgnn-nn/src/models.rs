//! Model and precision-mode selection, plus the kernel dispatch layer that
//! routes a model's sparse operations to the right system's kernels.

use crate::graphdata::PreparedGraph;
use halfgnn_half::Half;
use halfgnn_kernels::baseline::cusparse::{self, EdgeWeightsF32};
use halfgnn_kernels::common::{EdgeWeights, Reduce, ScalePlacement};
use halfgnn_kernels::halfgnn_sddmm::SddmmConfig;
use halfgnn_kernels::halfgnn_spmm;
use halfgnn_kernels::{baseline::dgl_sddmm, halfgnn_sddmm};
use halfgnn_sim::KernelStats;
use halfgnn_tensor::Ops;
use halfgnn_tune::{SpmmPlan, SpmmVariant, Tuner};

/// Which GNN architecture to train.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelKind {
    /// Graph Convolutional Network (Kipf & Welling), right degree norm.
    Gcn,
    /// Graph Attention Network (Veličković et al.), single head.
    Gat,
    /// Graph Isomorphism Network (Xu et al.).
    Gin,
    /// GraphSAGE with the mean aggregator (Hamilton et al.).
    Sage,
}

/// Which system's kernels and numerics a training run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrecisionMode {
    /// f32 everywhere — the DGL-float baseline.
    Float,
    /// Half state tensors through DGL/cuSPARSE-style kernels with AMP
    /// promotions — the DGL-half baseline (overflows on hub graphs).
    HalfNaive,
    /// The paper's HalfGNN system: half2/half8 kernels, discretized
    /// reduction scaling, staged writes, shadow APIs.
    HalfGnn,
    /// Ablation (§6.1.1): HalfGNN kernels but post-reduction scaling — the
    /// overflow returns.
    HalfGnnNoDiscretize,
}

impl PrecisionMode {
    /// True for any mode whose state tensors are half precision.
    pub fn is_half(self) -> bool {
        !matches!(self, PrecisionMode::Float)
    }

    /// Scaling placement of this mode's HalfGNN SpMM when the aggregation
    /// carries a per-row scale (half modes only). This is a *correctness*
    /// property of the mode — never a tuning knob.
    fn scaling(self) -> ScalePlacement {
        match self {
            PrecisionMode::HalfGnn => ScalePlacement::Discretized,
            PrecisionMode::HalfGnnNoDiscretize => ScalePlacement::PostReduction,
            _ => unreachable!("scaling placement is only for HalfGNN modes"),
        }
    }
}

/// How a training run dispatches its sparse kernels: the precision mode
/// (which kernel *system* runs) plus an optional autotuner (which *plan*
/// each HalfGNN kernel runs with). With no tuner attached every dispatch
/// uses the untuned default plan, bit-for-bit identical to pre-tuner
/// behavior; baseline (`HalfNaive`/`Float`) kernels never consult the
/// tuner at all.
#[derive(Clone, Copy)]
pub struct Dispatch<'t> {
    /// Kernel system / numerics.
    pub mode: PrecisionMode,
    /// Kernel-plan autotuner, when `TrainConfig::tuning` is not `Off`.
    pub tuner: Option<&'t Tuner>,
    /// Force the fused attention pipeline on (`--fusion`). When false the
    /// fused kernels remain reachable only through tuner selection, so an
    /// untuned dispatch stays bit-for-bit on the unfused chain.
    pub fusion: bool,
}

impl Dispatch<'static> {
    /// Dispatch with default plans only (`tuning: Off`).
    pub fn untuned(mode: PrecisionMode) -> Dispatch<'static> {
        Dispatch { mode, tuner: None, fusion: false }
    }
}

impl<'t> Dispatch<'t> {
    /// Dispatch through a tuner (`tuning: Auto` / `Cached`).
    pub fn tuned(mode: PrecisionMode, tuner: &'t Tuner) -> Dispatch<'t> {
        Dispatch { mode, tuner: Some(tuner), fusion: false }
    }

    /// Explicitly force (or forbid forcing) the fused attention pipeline.
    pub fn with_fusion(mut self, fusion: bool) -> Dispatch<'t> {
        self.fusion = fusion;
        self
    }

    /// Whether GAT's attention chain runs the fused single-pass kernels
    /// for `f`-wide features over this graph. Explicit `fusion` config
    /// wins; otherwise the tuner decides per graph shape; with neither,
    /// the unfused five-kernel chain (bit-for-bit pre-fusion behavior).
    /// Baseline modes and odd `f` (the fused kernel is half2-padded)
    /// never fuse.
    pub fn attn_fused(&self, g: &PreparedGraph, f: usize) -> bool {
        let halfgnn =
            matches!(self.mode, PrecisionMode::HalfGnn | PrecisionMode::HalfGnnNoDiscretize);
        if !halfgnn || !f.is_multiple_of(2) {
            return false;
        }
        if self.fusion {
            return true;
        }
        match self.tuner {
            Some(t) => t.attn_plan(&g.csr, f).fused,
            None => false,
        }
    }
}

impl<'t> From<PrecisionMode> for Dispatch<'t> {
    fn from(mode: PrecisionMode) -> Dispatch<'t> {
        Dispatch { mode, tuner: None, fusion: false }
    }
}

/// GCN degree-norm placement (§3.1.3 discusses all three).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GcnNorm {
    /// Divide the SpMM *output* by the degree — the "frequently used"
    /// variant whose forward reduction overflows under naive half.
    Right,
    /// Divide the SpMM *input* by the degree: the forward never overflows,
    /// "however, during backward computation the degree-norm happens after
    /// SpMMv, where it is likely to overflow" (§3.1.3).
    Left,
    /// Divide input and output by √degree (Eq. 2's symmetric norm).
    Both,
}

// ---------------------------------------------------------------------
// Sparse-kernel dispatch. Every call records its stats into `ops`.
// ---------------------------------------------------------------------

/// f32 GCN aggregation under the chosen norm (Â is symmetric).
pub fn gcn_agg_f32(
    ops: &mut Ops,
    g: &PreparedGraph,
    x: &[f32],
    f: usize,
    norm: GcnNorm,
) -> Vec<f32> {
    match norm {
        GcnNorm::Right => spmm_mean_f32(ops, g, x, f),
        GcnNorm::Left => {
            let scaled = ops.row_scale_f32(x, &g.mean_scale_f, f);
            spmm_sum_f32(ops, g, &scaled, f)
        }
        GcnNorm::Both => {
            let scaled = ops.row_scale_f32(x, &g.inv_sqrt_scale_f, f);
            let (y, stats) = halfgnn_kernels::baseline::cusparse::spmm_float(
                ops.dev,
                &g.coo,
                EdgeWeightsF32::Ones,
                &scaled,
                f,
                Some(&g.inv_sqrt_scale_f),
            );
            ops.record(stats);
            y
        }
    }
}

/// Adjoint of [`gcn_agg_f32`] on a symmetric Â.
pub fn gcn_agg_backward_f32(
    ops: &mut Ops,
    g: &PreparedGraph,
    dy: &[f32],
    f: usize,
    norm: GcnNorm,
) -> Vec<f32> {
    match norm {
        // (D⁻¹Â)ᵀ = Â D⁻¹: scale first, then sum.
        GcnNorm::Right => {
            let scaled = ops.row_scale_f32(dy, &g.mean_scale_f, f);
            spmm_sum_f32(ops, g, &scaled, f)
        }
        // (ÂD⁻¹)ᵀ = D⁻¹Â: sum first, then scale — the §3.1.3 backward trap.
        GcnNorm::Left => {
            let summed = spmm_sum_f32(ops, g, dy, f);
            ops.row_scale_f32(&summed, &g.mean_scale_f, f)
        }
        // D^-1/2 Â D^-1/2 is self-adjoint.
        GcnNorm::Both => gcn_agg_f32(ops, g, dy, f, GcnNorm::Both),
    }
}

/// Half GCN aggregation under the chosen norm and kernel system.
pub fn gcn_agg_half(
    ops: &mut Ops,
    g: &PreparedGraph,
    x: &[Half],
    f: usize,
    norm: GcnNorm,
    d: Dispatch<'_>,
) -> Vec<Half> {
    match norm {
        GcnNorm::Right => spmm_mean_half(ops, g, x, f, d),
        GcnNorm::Left => {
            let scaled = ops.row_scale_half(x, &g.mean_scale_h, f);
            spmm_sum_half(ops, g, &scaled, f, d)
        }
        GcnNorm::Both => {
            let scaled = ops.row_scale_half(x, &g.inv_sqrt_scale_h, f);
            scaled_spmm_half(ops, g, &scaled, f, &g.inv_sqrt_scale_h, d)
        }
    }
}

/// Adjoint of [`gcn_agg_half`]: the `Left` adjoint applies the degree norm
/// *after* the reduction — under the naive kernels this is where the
/// backward pass overflows even though the forward was safe (§3.1.3);
/// HalfGNN's discretized mean is safe on both sides.
pub fn gcn_agg_backward_half(
    ops: &mut Ops,
    g: &PreparedGraph,
    dy: &[Half],
    f: usize,
    norm: GcnNorm,
    d: Dispatch<'_>,
) -> Vec<Half> {
    match norm {
        GcnNorm::Right => {
            let scaled = ops.row_scale_half(dy, &g.mean_scale_h, f);
            spmm_sum_half(ops, g, &scaled, f, d)
        }
        // D⁻¹Â δy is exactly a mean aggregation of δy: the naive path runs
        // sum-then-post-scale (overflow), HalfGNN discretizes it.
        GcnNorm::Left => spmm_mean_half(ops, g, dy, f, d),
        GcnNorm::Both => gcn_agg_half(ops, g, dy, f, GcnNorm::Both, d),
    }
}

/// The single HalfGNN SpMM plan-resolution point: every SpMMv/SpMMve
/// dispatch in every model funnels through here. `scaling` is decided by
/// the caller (mode + aggregation semantics); the *plan* — write
/// strategy, tile geometry, edge- vs vertex-parallel skeleton — comes
/// from the tuner when one is attached and is the untuned default
/// otherwise, keeping `tuning: Off` runs bit-identical to the pre-tuner
/// trainer.
#[allow(clippy::too_many_arguments)]
fn halfgnn_spmm_planned(
    ops: &mut Ops,
    g: &PreparedGraph,
    w: EdgeWeights<'_>,
    x: &[Half],
    f: usize,
    row_scale: Option<&[Half]>,
    scaling: ScalePlacement,
    d: Dispatch<'_>,
) -> (Vec<Half>, KernelStats) {
    let plan = match d.tuner {
        Some(t) => t.spmm_plan(&g.csr, f, !w.is_ones(), scaling),
        None => SpmmPlan::default(),
    };
    match plan.variant {
        SpmmVariant::EdgeParallel => {
            halfgnn_spmm::spmm(ops.dev, &g.coo, w, x, f, row_scale, &plan.to_spmm_config(scaling))
        }
        // The canonical COO edge order equals CSR order, so edge-weight
        // tensors remain valid under the vertex-parallel skeleton.
        SpmmVariant::VertexParallel => {
            halfgnn_spmm::spmm_vertex_parallel(ops.dev, &g.csr, w, x, f, row_scale, scaling)
        }
    }
}

/// Half SpMMv with an arbitrary per-row output scale (the `both` norm's
/// √degree factor), routed through the mode's kernel.
fn scaled_spmm_half(
    ops: &mut Ops,
    g: &PreparedGraph,
    x: &[Half],
    f: usize,
    scale: &[Half],
    d: Dispatch<'_>,
) -> Vec<Half> {
    let (y, stats) = match d.mode {
        PrecisionMode::HalfNaive => {
            cusparse::spmm_half(ops.dev, &g.coo, EdgeWeights::Ones, x, f, Some(scale))
        }
        PrecisionMode::HalfGnn | PrecisionMode::HalfGnnNoDiscretize => {
            halfgnn_spmm_planned(ops, g, EdgeWeights::Ones, x, f, Some(scale), d.mode.scaling(), d)
        }
        PrecisionMode::Float => unreachable!("float path uses gcn_agg_f32"),
    };
    ops.record(stats);
    y
}

/// Half SpMMv with mean (right degree-norm) aggregation.
pub fn spmm_mean_half(
    ops: &mut Ops,
    g: &PreparedGraph,
    x: &[Half],
    f: usize,
    d: Dispatch<'_>,
) -> Vec<Half> {
    let (y, stats) = match d.mode {
        PrecisionMode::HalfNaive => {
            cusparse::spmm_half(ops.dev, &g.coo, EdgeWeights::Ones, x, f, Some(&g.mean_scale_h))
        }
        PrecisionMode::HalfGnn | PrecisionMode::HalfGnnNoDiscretize => halfgnn_spmm_planned(
            ops,
            g,
            EdgeWeights::Ones,
            x,
            f,
            Some(&g.mean_scale_h),
            d.mode.scaling(),
            d,
        ),
        PrecisionMode::Float => unreachable!("float path uses spmm_mean_f32"),
    };
    ops.record(stats);
    y
}

/// Half SpMMv, plain sum (GIN's default aggregation; backward passes).
pub fn spmm_sum_half(
    ops: &mut Ops,
    g: &PreparedGraph,
    x: &[Half],
    f: usize,
    d: Dispatch<'_>,
) -> Vec<Half> {
    let (y, stats) = match d.mode {
        PrecisionMode::HalfNaive => {
            cusparse::spmm_half(ops.dev, &g.coo, EdgeWeights::Ones, x, f, None)
        }
        PrecisionMode::HalfGnn | PrecisionMode::HalfGnnNoDiscretize => {
            halfgnn_spmm_planned(ops, g, EdgeWeights::Ones, x, f, None, ScalePlacement::None, d)
        }
        PrecisionMode::Float => unreachable!("float path uses spmm_sum_f32"),
    };
    ops.record(stats);
    y
}

/// Half SpMMve (weighted sum — GAT's attention aggregation; the attention
/// weights are normalized, so no degree scaling is needed).
pub fn spmmve_half(
    ops: &mut Ops,
    g: &PreparedGraph,
    w: &[Half],
    x: &[Half],
    f: usize,
    d: Dispatch<'_>,
) -> Vec<Half> {
    let (y, stats) = match d.mode {
        PrecisionMode::HalfNaive => {
            cusparse::spmm_half(ops.dev, &g.coo, EdgeWeights::Values(w), x, f, None)
        }
        PrecisionMode::HalfGnn | PrecisionMode::HalfGnnNoDiscretize => halfgnn_spmm_planned(
            ops,
            g,
            EdgeWeights::Values(w),
            x,
            f,
            None,
            ScalePlacement::None,
            d,
        ),
        PrecisionMode::Float => unreachable!("float path uses spmmve_f32"),
    };
    ops.record(stats);
    y
}

/// Half SDDMM dispatch: DGL's naive kernel or HalfGNN's vector-width
/// design, with the plan resolved by the tuner when one is attached and
/// by [`SddmmConfig::widest_for`] (the paper's widest-legal-width rule)
/// otherwise.
pub fn sddmm_half(
    ops: &mut Ops,
    g: &PreparedGraph,
    u: &[Half],
    v: &[Half],
    f: usize,
    d: Dispatch<'_>,
) -> Vec<Half> {
    let (y, stats) = match d.mode {
        PrecisionMode::HalfNaive => dgl_sddmm::sddmm_half(ops.dev, &g.coo, u, v, f),
        PrecisionMode::HalfGnn | PrecisionMode::HalfGnnNoDiscretize => {
            let cfg = match d.tuner {
                Some(t) => t.sddmm_plan(&g.csr, f).to_sddmm_config(),
                None => SddmmConfig::widest_for(f),
            };
            halfgnn_sddmm::sddmm_with_config(ops.dev, &g.coo, u, v, f, &cfg)
        }
        PrecisionMode::Float => unreachable!("float path uses sddmm_f32"),
    };
    ops.record(stats);
    y
}

/// Half per-row edge reduce (softmax max/denominator).
pub fn edge_reduce_half(ops: &mut Ops, g: &PreparedGraph, w: &[Half], op: Reduce) -> Vec<Half> {
    let (y, stats) = halfgnn_spmm::edge_reduce(ops.dev, &g.coo, w, op);
    ops.record(stats);
    y
}

/// Float SpMMv with mean aggregation (cuSPARSE + post scale, as DGL does).
pub fn spmm_mean_f32(ops: &mut Ops, g: &PreparedGraph, x: &[f32], f: usize) -> Vec<f32> {
    let (y, stats) =
        cusparse::spmm_float(ops.dev, &g.coo, EdgeWeightsF32::Ones, x, f, Some(&g.mean_scale_f));
    ops.record(stats);
    y
}

/// Float SpMMv, plain sum.
pub fn spmm_sum_f32(ops: &mut Ops, g: &PreparedGraph, x: &[f32], f: usize) -> Vec<f32> {
    let (y, stats) = cusparse::spmm_float(ops.dev, &g.coo, EdgeWeightsF32::Ones, x, f, None);
    ops.record(stats);
    y
}

/// Float SpMMve.
pub fn spmmve_f32(ops: &mut Ops, g: &PreparedGraph, w: &[f32], x: &[f32], f: usize) -> Vec<f32> {
    let (y, stats) = cusparse::spmm_float(ops.dev, &g.coo, EdgeWeightsF32::Values(w), x, f, None);
    ops.record(stats);
    y
}

/// Float SDDMM (DGL's).
pub fn sddmm_f32(ops: &mut Ops, g: &PreparedGraph, u: &[f32], v: &[f32], f: usize) -> Vec<f32> {
    let (y, stats) = dgl_sddmm::sddmm_float(ops.dev, &g.coo, u, v, f);
    ops.record(stats);
    y
}

/// Float edge reduce.
pub fn edge_reduce_f32(ops: &mut Ops, g: &PreparedGraph, w: &[f32], op: Reduce) -> Vec<f32> {
    let (y, stats) = halfgnn_kernels::edge_ops::edge_reduce_f32(ops.dev, &g.coo, w, op);
    ops.record(stats);
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use halfgnn_graph::Csr;
    use halfgnn_sim::DeviceConfig;

    fn prep() -> PreparedGraph {
        let csr = Csr::from_edges(6, 6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
            .symmetrized_with_self_loops();
        PreparedGraph::new(&csr)
    }

    #[test]
    fn half_dispatch_runs_all_modes() {
        let dev = DeviceConfig::a100_like();
        let g = prep();
        let x = vec![Half::from_f32(0.5); g.n() * 4];
        for mode in
            [PrecisionMode::HalfNaive, PrecisionMode::HalfGnn, PrecisionMode::HalfGnnNoDiscretize]
        {
            let mut ops = Ops::new(&dev);
            let y = spmm_mean_half(&mut ops, &g, &x, 4, mode.into());
            assert_eq!(y.len(), g.n() * 4);
            // Mean of constant 0.5 is 0.5 whatever the kernel.
            assert!((y[0].to_f32() - 0.5).abs() < 0.01, "{mode:?}: {}", y[0]);
            assert!(ops.kernel_count() >= 1);
        }
    }

    #[test]
    fn float_and_half_dispatch_agree() {
        let dev = DeviceConfig::a100_like();
        let g = prep();
        let xf: Vec<f32> = (0..g.n() * 4).map(|i| (i % 7) as f32 * 0.25 - 0.75).collect();
        let xh: Vec<Half> = xf.iter().map(|&v| Half::from_f32(v)).collect();
        let mut ops = Ops::new(&dev);
        let yf = spmm_sum_f32(&mut ops, &g, &xf, 4);
        let yh = spmm_sum_half(&mut ops, &g, &xh, 4, PrecisionMode::HalfGnn.into());
        for (a, b) in yf.iter().zip(&yh) {
            assert!((a - b.to_f32()).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn mode_flags() {
        assert!(!PrecisionMode::Float.is_half());
        assert!(PrecisionMode::HalfNaive.is_half());
        assert!(PrecisionMode::HalfGnn.is_half());
    }
}
