//! GraphSAGE (Hamilton et al., ref. 14 in the paper) with the
//! mean aggregator: `h' = σ(W_self·x + W_neigh·mean(x))`.
//!
//! A fourth architecture over the same kernels — included because the
//! paper's introduction motivates GNNs through GraphSAGE-style inductive
//! learning, and because its mean aggregation has exactly the GCN overflow
//! anatomy: the naive half path accumulates the full neighborhood before
//! the degree norm and NaNs on hub graphs; HalfGNN's discretized kernel
//! does not.

use crate::gcn::StepOutput;
use crate::graphdata::GraphView;
use crate::models::{
    grad_colsum_f32, grad_colsum_half, grad_gemm_f32, grad_gemm_half, spmm_mean_f32,
    spmm_mean_half, spmm_sum_f32, spmm_sum_half, Dispatch, PrecisionMode,
};
use crate::params::glorot;
use halfgnn_half::Half;
use halfgnn_tensor::Ops;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Two-layer GraphSAGE parameters: per layer a self weight, a neighbor
/// weight, and a bias.
pub struct SageParams {
    /// Layer-1 self weight, `f_in × hidden`.
    pub w_self1: Vec<f32>,
    /// Layer-1 neighbor weight, `f_in × hidden`.
    pub w_neigh1: Vec<f32>,
    /// Layer-1 bias.
    pub b1: Vec<f32>,
    /// Layer-2 self weight, `hidden × classes`.
    pub w_self2: Vec<f32>,
    /// Layer-2 neighbor weight, `hidden × classes`.
    pub w_neigh2: Vec<f32>,
    /// Layer-2 bias.
    pub b2: Vec<f32>,
    /// Input feature length.
    pub f_in: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Output width.
    pub classes: usize,
}

impl SageParams {
    /// Glorot-initialized parameters.
    pub fn new(f_in: usize, hidden: usize, classes: usize, seed: u64) -> SageParams {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x5A6E));
        SageParams {
            w_self1: glorot(f_in, hidden, &mut rng),
            w_neigh1: glorot(f_in, hidden, &mut rng),
            b1: vec![0.0; hidden],
            w_self2: glorot(hidden, classes, &mut rng),
            w_neigh2: glorot(hidden, classes, &mut rng),
            b2: vec![0.0; classes],
            f_in,
            hidden,
            classes,
        }
    }

    /// Flat view for the optimizer.
    pub fn flat(&self) -> Vec<f32> {
        let mut v = Vec::with_capacity(self.num_params());
        for part in
            [&self.w_self1, &self.w_neigh1, &self.b1, &self.w_self2, &self.w_neigh2, &self.b2]
        {
            v.extend_from_slice(part);
        }
        v
    }

    /// Restore from the flat view.
    pub fn set_flat(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.num_params());
        let mut off = 0;
        for part in [
            &mut self.w_self1,
            &mut self.w_neigh1,
            &mut self.b1,
            &mut self.w_self2,
            &mut self.w_neigh2,
            &mut self.b2,
        ] {
            let len = part.len();
            part.copy_from_slice(&flat[off..off + len]);
            off += len;
        }
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        2 * self.f_in * self.hidden + self.hidden + 2 * self.hidden * self.classes + self.classes
    }
}

/// Gradients matching [`SageParams`] (same flat order).
#[derive(Default)]
pub struct SageGrads {
    /// ∂L/∂W_self1.
    pub w_self1: Vec<f32>,
    /// ∂L/∂W_neigh1.
    pub w_neigh1: Vec<f32>,
    /// ∂L/∂b1.
    pub b1: Vec<f32>,
    /// ∂L/∂W_self2.
    pub w_self2: Vec<f32>,
    /// ∂L/∂W_neigh2.
    pub w_neigh2: Vec<f32>,
    /// ∂L/∂b2.
    pub b2: Vec<f32>,
}

impl SageGrads {
    /// Flat view matching [`SageParams::flat`].
    pub fn flat(&self) -> Vec<f32> {
        let mut v = Vec::new();
        for part in
            [&self.w_self1, &self.w_neigh1, &self.b1, &self.w_self2, &self.w_neigh2, &self.b2]
        {
            v.extend_from_slice(part);
        }
        v
    }
}

/// One f32 GraphSAGE step.
pub fn step_f32(
    ops: &mut Ops,
    g: &GraphView,
    p: &SageParams,
    x: &[f32],
    labels: &[u32],
    mask: &[bool],
) -> StepOutput<SageGrads> {
    step_f32_dist(ops, g, p, x, labels, mask, Dispatch::untuned(PrecisionMode::Float))
}

/// [`step_f32`] with an explicit dispatch (the sharded trainer threads a
/// [`crate::dist::DistCtx`] through it).
#[allow(clippy::too_many_arguments)]
pub fn step_f32_dist(
    ops: &mut Ops,
    g: &GraphView,
    p: &SageParams,
    x: &[f32],
    labels: &[u32],
    mask: &[bool],
    d: Dispatch<'_>,
) -> StepOutput<SageGrads> {
    let n = g.n();
    let (f_in, h, c) = (p.f_in, p.hidden, p.classes);

    // ---- Forward.
    let m1 = spmm_mean_f32(ops, g, x, f_in, d);
    let zs1 = ops.gemm_f32(x, false, &p.w_self1, false, n, f_in, h);
    let zn1 = ops.gemm_f32(&m1, false, &p.w_neigh1, false, n, f_in, h);
    let z1 = ops.scale_add_f32(1.0, &zs1, 1.0, &zn1);
    let z1 = ops.bias_add_f32(&z1, &p.b1);
    let h1 = ops.relu_f32(&z1);
    let m2 = spmm_mean_f32(ops, g, &h1, h, d);
    let zs2 = ops.gemm_f32(&h1, false, &p.w_self2, false, n, h, c);
    let zn2 = ops.gemm_f32(&m2, false, &p.w_neigh2, false, n, h, c);
    let z2 = ops.scale_add_f32(1.0, &zs2, 1.0, &zn2);
    let logits = ops.bias_add_f32(&z2, &p.b2);

    let (loss, dlogits, correct) = ops.softmax_xent_f32(&logits, labels, mask, c);

    // ---- Backward.
    let dw_self2 = grad_gemm_f32(ops, &h1, &dlogits, h, n, c, d);
    let dw_neigh2 = grad_gemm_f32(ops, &m2, &dlogits, h, n, c, d);
    let db2 = grad_colsum_f32(ops, &dlogits, c, d);
    // δh1 = δz2 W_self2ᵀ + meanᵀ(δz2) W_neigh2ᵀ  (mean adjoint: scale+sum).
    let dh_self = ops.gemm_f32(&dlogits, false, &p.w_self2, true, n, c, h);
    let dm2 = ops.gemm_f32(&dlogits, false, &p.w_neigh2, true, n, c, h);
    let scaled = ops.row_scale_f32(&dm2, &g.mean_scale_f, h);
    let dh_neigh = spmm_sum_f32(ops, g, &scaled, h, d);
    let dh1 = ops.scale_add_f32(1.0, &dh_self, 1.0, &dh_neigh);
    let dz1 = ops.relu_grad_f32(&z1, &dh1);
    let dw_self1 = grad_gemm_f32(ops, x, &dz1, f_in, n, h, d);
    let dw_neigh1 = grad_gemm_f32(ops, &m1, &dz1, f_in, n, h, d);
    let db1 = grad_colsum_f32(ops, &dz1, h, d);

    StepOutput {
        loss,
        correct,
        grads: SageGrads {
            w_self1: dw_self1,
            w_neigh1: dw_neigh1,
            b1: db1,
            w_self2: dw_self2,
            w_neigh2: dw_neigh2,
            b2: db2,
        },
        logits,
    }
}

/// One mixed-precision GraphSAGE step under the chosen kernel system.
pub fn step_half(
    ops: &mut Ops,
    g: &GraphView,
    p: &SageParams,
    x: &[Half],
    labels: &[u32],
    mask: &[bool],
    d: Dispatch<'_>,
) -> StepOutput<SageGrads> {
    let n = g.n();
    let (f_in, h, c) = (p.f_in, p.hidden, p.classes);

    let w_self1 = ops.to_half(&p.w_self1);
    let w_neigh1 = ops.to_half(&p.w_neigh1);
    let b1h = ops.to_half(&p.b1);
    let w_self2 = ops.to_half(&p.w_self2);
    let w_neigh2 = ops.to_half(&p.w_neigh2);
    let b2h = ops.to_half(&p.b2);
    let one = Half::ONE;

    // ---- Forward.
    let layer1 = halfgnn_half::overflow::site("sage.layer1");
    let m1 = spmm_mean_half(ops, g, x, f_in, d);
    let zs1 = ops.gemm_half(x, false, &w_self1, false, n, f_in, h);
    let zn1 = ops.gemm_half(&m1, false, &w_neigh1, false, n, f_in, h);
    let z1 = ops.scale_add_half(one, &zs1, one, &zn1);
    let z1 = ops.bias_add_half(&z1, &b1h);
    let h1 = ops.relu_half(&z1);
    drop(layer1);
    let layer2 = halfgnn_half::overflow::site("sage.layer2");
    let m2 = spmm_mean_half(ops, g, &h1, h, d);
    let zs2 = ops.gemm_half(&h1, false, &w_self2, false, n, h, c);
    let zn2 = ops.gemm_half(&m2, false, &w_neigh2, false, n, h, c);
    let z2 = ops.scale_add_half(one, &zs2, one, &zn2);
    let out = ops.bias_add_half(&z2, &b2h);
    drop(layer2);

    let logits = ops.to_f32(&out);
    let (loss, mut dlogits, correct) = ops.softmax_xent_f32(&logits, labels, mask, c);
    let loss_scale = ops.loss_scale;
    if loss_scale != 1.0 {
        for gv in dlogits.iter_mut() {
            *gv *= loss_scale;
        }
    }

    // ---- Backward.
    let _bwd = halfgnn_half::overflow::site("sage.backward");
    let dout = ops.to_half(&dlogits);
    let dw_self2h = grad_gemm_half(ops, &h1, &dout, h, n, c, d);
    let dw_neigh2h = grad_gemm_half(ops, &m2, &dout, h, n, c, d);
    let db2 = grad_colsum_half(ops, &dout, c, d);
    let dh_self = ops.gemm_half(&dout, false, &w_self2, true, n, c, h);
    let dm2 = ops.gemm_half(&dout, false, &w_neigh2, true, n, c, h);
    let scaled = ops.row_scale_half(&dm2, &g.mean_scale_h, h);
    let dh_neigh = spmm_sum_half(ops, g, &scaled, h, d);
    let dh1 = ops.scale_add_half(one, &dh_self, one, &dh_neigh);
    let dz1 = ops.relu_grad_half(&z1, &dh1);
    let dw_self1h = grad_gemm_half(ops, x, &dz1, f_in, n, h, d);
    let dw_neigh1h = grad_gemm_half(ops, &m1, &dz1, f_in, n, h, d);
    let db1 = grad_colsum_half(ops, &dz1, h, d);

    let mut grads = SageGrads {
        w_self1: ops.to_f32(&dw_self1h),
        w_neigh1: ops.to_f32(&dw_neigh1h),
        b1: db1,
        w_self2: ops.to_f32(&dw_self2h),
        w_neigh2: ops.to_f32(&dw_neigh2h),
        b2: db2,
    };
    for part in [
        &mut grads.w_self1,
        &mut grads.w_neigh1,
        &mut grads.b1,
        &mut grads.w_self2,
        &mut grads.w_neigh2,
        &mut grads.b2,
    ] {
        ops.unscale_grad(part);
    }

    StepOutput { loss, correct, grads, logits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::PrecisionMode;
    use halfgnn_graph::gen;
    use halfgnn_graph::Csr;
    use halfgnn_sim::DeviceConfig;

    fn toy() -> (GraphView, Vec<f32>, Vec<u32>, Vec<bool>) {
        let (edges, labels) = gen::sbm(&[20, 20], 0.4, 0.02, 13);
        let csr = Csr::from_edges(40, 40, &edges).symmetrized_with_self_loops();
        let g = GraphView::full(&csr);
        let x = halfgnn_graph::features::class_features(&labels, 2, 8, 1.0, 0.3, 14);
        (g, x, labels, vec![true; 40])
    }

    #[test]
    fn f32_gradients_match_finite_differences() {
        let dev = DeviceConfig::a100_like();
        let (g, x, labels, mask) = toy();
        let mut p = SageParams::new(8, 6, 2, 5);
        let mut ops = Ops::new(&dev);
        let out = step_f32(&mut ops, &g, &p, &x, &labels, &mask);
        let eps = 1e-3;
        // One coordinate in each parameter tensor covers every path.
        let checks: Vec<(&str, usize)> =
            vec![("w_self1", 3), ("w_neigh1", 7), ("w_self2", 2), ("w_neigh2", 4)];
        for (which, idx) in checks {
            let read = |p: &SageParams| match which {
                "w_self1" => p.w_self1[idx],
                "w_neigh1" => p.w_neigh1[idx],
                "w_self2" => p.w_self2[idx],
                _ => p.w_neigh2[idx],
            };
            let write = |p: &mut SageParams, v: f32| match which {
                "w_self1" => p.w_self1[idx] = v,
                "w_neigh1" => p.w_neigh1[idx] = v,
                "w_self2" => p.w_self2[idx] = v,
                _ => p.w_neigh2[idx] = v,
            };
            let analytic = match which {
                "w_self1" => out.grads.w_self1[idx],
                "w_neigh1" => out.grads.w_neigh1[idx],
                "w_self2" => out.grads.w_self2[idx],
                _ => out.grads.w_neigh2[idx],
            };
            let orig = read(&p);
            write(&mut p, orig + eps);
            let lp = step_f32(&mut ops, &g, &p, &x, &labels, &mask).loss;
            write(&mut p, orig - eps);
            let lm = step_f32(&mut ops, &g, &p, &x, &labels, &mask).loss;
            write(&mut p, orig);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - analytic).abs() < 1e-2 + 0.1 * fd.abs(),
                "{which}[{idx}]: fd {fd} vs {analytic}"
            );
        }
    }

    #[test]
    fn half_step_tracks_f32() {
        let dev = DeviceConfig::a100_like();
        let (g, x, labels, mask) = toy();
        let p = SageParams::new(8, 6, 2, 5);
        let xh: Vec<Half> = x.iter().map(|&v| Half::from_f32(v)).collect();
        let mut ops = Ops::new(&dev);
        let f = step_f32(&mut ops, &g, &p, &x, &labels, &mask);
        let h = step_half(&mut ops, &g, &p, &xh, &labels, &mask, PrecisionMode::HalfGnn.into());
        assert!((f.loss - h.loss).abs() < 0.05, "{} vs {}", f.loss, h.loss);
    }

    #[test]
    fn naive_half_overflows_on_hubs_halfgnn_does_not() {
        let dev = DeviceConfig::a100_like();
        let n = 900;
        let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|c| (0, c)).collect();
        edges.extend((1..n as u32 - 1).map(|v| (v, v + 1)));
        let csr = Csr::from_edges(n, n, &edges).symmetrized_with_self_loops();
        let g = GraphView::full(&csr);
        let xh: Vec<Half> = vec![Half::from_f32(90.0); n * 4];
        let labels = vec![0u32; n];
        let mask = vec![true; n];
        let p = SageParams::new(4, 6, 2, 3);
        let mut ops = Ops::new(&dev);
        let naive =
            step_half(&mut ops, &g, &p, &xh, &labels, &mask, PrecisionMode::HalfNaive.into());
        assert!(naive.loss.is_nan(), "SAGE naive-half should NaN, got {}", naive.loss);
        let ours = step_half(&mut ops, &g, &p, &xh, &labels, &mask, PrecisionMode::HalfGnn.into());
        assert!(ours.loss.is_finite());
    }

    #[test]
    fn flat_round_trip() {
        let mut p = SageParams::new(8, 4, 3, 1);
        let flat = p.flat();
        assert_eq!(flat.len(), p.num_params());
        let mut modified = flat.clone();
        modified[10] = 99.0;
        p.set_flat(&modified);
        assert_eq!(p.flat(), modified);
    }
}
