//! GCN (Kipf & Welling) with right degree normalization — Eq. 2 of the
//! paper, specialized to the "frequently used" `right` norm its overflow
//! analysis centers on: `H' = σ(D⁻¹ Â (H W))`.
//!
//! Forward per layer: GeMM → bias → SpMMv with mean aggregation → ReLU
//! (last layer: no ReLU; softmax cross-entropy in f32).
//!
//! Backward: the mean aggregation's adjoint on a symmetric Â is a row
//! scaling by `1/deg` followed by a plain-sum SpMMv — scaling happens
//! *before* the reduction, so the backward pass is overflow-safe under any
//! kernel, exactly as §3.1.3 observes for right norm.

use crate::graphdata::GraphView;
use crate::models::{
    gcn_agg_backward_f32, gcn_agg_backward_half, gcn_agg_f32, gcn_agg_half, grad_colsum_f32,
    grad_colsum_half, grad_gemm_f32, grad_gemm_half, Dispatch, GcnNorm, PrecisionMode,
};
use crate::params::{TwoLayerGrads, TwoLayerParams};
use halfgnn_tensor::Ops;

/// Result of one training step.
pub struct StepOutput<G> {
    /// Mean training loss.
    pub loss: f32,
    /// Correct predictions on the training mask.
    pub correct: usize,
    /// Parameter gradients (f32 master domain).
    pub grads: G,
    /// Full logits (f32), for evaluation.
    pub logits: Vec<f32>,
}

/// One full-batch f32 training step (the DGL-float baseline).
///
/// Layer-1 order follows DGL's `GraphConv` dispatch: when
/// `in_feats ≤ out_feats` it aggregates the (cheaper) raw features first,
/// then transforms — `(Â X) W` — otherwise it transforms first. The two
/// orders are mathematically identical; the dispatch matters because
/// aggregate-first runs SpMM on the raw input features, which is where
/// count-like datasets overflow FP16 (§3.1.3).
pub fn step_f32(
    ops: &mut Ops,
    g: &GraphView,
    p: &TwoLayerParams,
    x: &[f32],
    labels: &[u32],
    mask: &[bool],
) -> StepOutput<TwoLayerGrads> {
    step_f32_norm(
        ops,
        g,
        p,
        x,
        labels,
        mask,
        Dispatch::untuned(PrecisionMode::Float),
        GcnNorm::Right,
    )
}

/// [`step_f32`] with an explicit degree-norm placement (§3.1.3 ablations)
/// and dispatch (the float path only consults its `dist` context).
#[allow(clippy::too_many_arguments)]
pub fn step_f32_norm(
    ops: &mut Ops,
    g: &GraphView,
    p: &TwoLayerParams,
    x: &[f32],
    labels: &[u32],
    mask: &[bool],
    d: Dispatch<'_>,
    norm: GcnNorm,
) -> StepOutput<TwoLayerGrads> {
    let n = g.n();
    let (f_in, h, c) = (p.f_in, p.hidden, p.classes);
    let aggregate_first = f_in <= h;

    // ---- Forward.
    // `lin_in` is whatever feeds layer 1's GeMM: X or Â·X.
    let (lin_in, a1) = if aggregate_first {
        let ax = gcn_agg_f32(ops, g, x, f_in, norm, d);
        let z1 = ops.gemm_f32(&ax, false, &p.w1, false, n, f_in, h);
        let a1 = ops.bias_add_f32(&z1, &p.b1);
        (ax, a1)
    } else {
        let z1 = ops.gemm_f32(x, false, &p.w1, false, n, f_in, h);
        let z1 = ops.bias_add_f32(&z1, &p.b1);
        let a1 = gcn_agg_f32(ops, g, &z1, h, norm, d);
        (x.to_vec(), a1)
    };
    let h1 = ops.relu_f32(&a1);
    let z2 = ops.gemm_f32(&h1, false, &p.w2, false, n, h, c);
    let z2 = ops.bias_add_f32(&z2, &p.b2);
    let logits = gcn_agg_f32(ops, g, &z2, c, norm, d);

    let (loss, dlogits, correct) = ops.softmax_xent_f32(&logits, labels, mask, c);

    // ---- Backward.
    let dz2 = gcn_agg_backward_f32(ops, g, &dlogits, c, norm, d);
    let dw2 = grad_gemm_f32(ops, &h1, &dz2, h, n, c, d);
    let db2 = grad_colsum_f32(ops, &dz2, c, d);
    let dh1 = ops.gemm_f32(&dz2, false, &p.w2, true, n, c, h);
    let da1 = ops.relu_grad_f32(&a1, &dh1);
    let (dw1, db1) = if aggregate_first {
        // a1 = agg(X)W + b: the SpMM is upstream of the GeMM, so δW = agg(X)ᵀ δa1.
        let dw1 = grad_gemm_f32(ops, &lin_in, &da1, f_in, n, h, d);
        let db1 = grad_colsum_f32(ops, &da1, h, d);
        (dw1, db1)
    } else {
        let dz1 = gcn_agg_backward_f32(ops, g, &da1, h, norm, d);
        let dw1 = grad_gemm_f32(ops, &lin_in, &dz1, f_in, n, h, d);
        let db1 = grad_colsum_f32(ops, &dz1, h, d);
        (dw1, db1)
    };

    StepOutput {
        loss,
        correct,
        grads: TwoLayerGrads { w1: dw1, b1: db1, w2: dw2, b2: db2 },
        logits,
    }
}

/// One mixed-precision training step: half state tensors through the
/// kernels the dispatch's mode selects, f32 master weights and loss.
pub fn step_half(
    ops: &mut Ops,
    g: &GraphView,
    p: &TwoLayerParams,
    x: &[halfgnn_half::Half],
    labels: &[u32],
    mask: &[bool],
    d: Dispatch<'_>,
) -> StepOutput<TwoLayerGrads> {
    step_half_norm(ops, g, p, x, labels, mask, d, GcnNorm::Right)
}

/// [`step_half`] with an explicit degree-norm placement.
#[allow(clippy::too_many_arguments)]
pub fn step_half_norm(
    ops: &mut Ops,
    g: &GraphView,
    p: &TwoLayerParams,
    x: &[halfgnn_half::Half],
    labels: &[u32],
    mask: &[bool],
    d: Dispatch<'_>,
    norm: GcnNorm,
) -> StepOutput<TwoLayerGrads> {
    let n = g.n();
    let (f_in, h, c) = (p.f_in, p.hidden, p.classes);

    // AMP: cast master weights to half for the step.
    let w1h = ops.to_half(&p.w1);
    let b1h = ops.to_half(&p.b1);
    let w2h = ops.to_half(&p.w2);
    let b2h = ops.to_half(&p.b2);

    let aggregate_first = f_in <= h;

    // ---- Forward (all state tensors half; DGL-style layer-1 dispatch).
    let layer1 = halfgnn_half::overflow::site("gcn.layer1");
    let (lin_in, a1) = if aggregate_first {
        let ax = gcn_agg_half(ops, g, x, f_in, norm, d);
        let z1 = ops.gemm_half(&ax, false, &w1h, false, n, f_in, h);
        let a1 = ops.bias_add_half(&z1, &b1h);
        (ax, a1)
    } else {
        let z1 = ops.gemm_half(x, false, &w1h, false, n, f_in, h);
        let z1 = ops.bias_add_half(&z1, &b1h);
        let a1 = gcn_agg_half(ops, g, &z1, h, norm, d);
        (x.to_vec(), a1)
    };
    drop(layer1);
    let layer2 = halfgnn_half::overflow::site("gcn.layer2");
    let h1 = ops.relu_half(&a1);
    let z2 = ops.gemm_half(&h1, false, &w2h, false, n, h, c);
    let z2 = ops.bias_add_half(&z2, &b2h);
    let out = gcn_agg_half(ops, g, &z2, c, norm, d);
    drop(layer2);

    // AMP promotes the loss to float (charged conversion).
    let logits = ops.to_f32(&out);
    let (loss, mut dlogits, correct) = ops.softmax_xent_f32(&logits, labels, mask, c);
    // Loss scaling (Micikevicius et al.): multiply the loss gradient so
    // small per-vertex gradients survive the f2h cast; weight gradients
    // are unscaled before the f32 master update.
    let loss_scale = ops.loss_scale;
    if loss_scale != 1.0 {
        for g in dlogits.iter_mut() {
            *g *= loss_scale;
        }
    }

    // ---- Backward in half.
    let _bwd = halfgnn_half::overflow::site("gcn.backward");
    let dout = ops.to_half(&dlogits);
    let dz2 = gcn_agg_backward_half(ops, g, &dout, c, norm, d);
    let dw2h = grad_gemm_half(ops, &h1, &dz2, h, n, c, d);
    let db2 = grad_colsum_half(ops, &dz2, c, d);
    let dh1 = ops.gemm_half(&dz2, false, &w2h, true, n, c, h);
    let da1 = ops.relu_grad_half(&a1, &dh1);
    let (dw1h, db1) = if aggregate_first {
        let dw1h = grad_gemm_half(ops, &lin_in, &da1, f_in, n, h, d);
        let db1 = grad_colsum_half(ops, &da1, h, d);
        (dw1h, db1)
    } else {
        let dz1 = gcn_agg_backward_half(ops, g, &da1, h, norm, d);
        let dw1h = grad_gemm_half(ops, &lin_in, &dz1, f_in, n, h, d);
        let db1 = grad_colsum_half(ops, &dz1, h, d);
        (dw1h, db1)
    };

    // Weight gradients return to f32 for the master update, unscaled.
    let mut dw1 = ops.to_f32(&dw1h);
    let mut dw2 = ops.to_f32(&dw2h);
    let mut db1 = db1;
    let mut db2 = db2;
    ops.unscale_grad(&mut dw1);
    ops.unscale_grad(&mut dw2);
    ops.unscale_grad(&mut db1);
    ops.unscale_grad(&mut db2);

    StepOutput {
        loss,
        correct,
        grads: TwoLayerGrads { w1: dw1, b1: db1, w2: dw2, b2: db2 },
        logits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::PrecisionMode;
    use halfgnn_graph::gen;
    use halfgnn_graph::Csr;
    use halfgnn_sim::DeviceConfig;

    fn toy() -> (GraphView, Vec<f32>, Vec<u32>, Vec<bool>) {
        let (edges, labels) = gen::sbm(&[20, 20], 0.4, 0.02, 3);
        let csr = Csr::from_edges(40, 40, &edges).symmetrized_with_self_loops();
        let g = GraphView::full(&csr);
        let x = halfgnn_graph::features::class_features(&labels, 2, 8, 1.0, 0.2, 5);
        let mask = vec![true; 40];
        (g, x, labels, mask)
    }

    #[test]
    fn f32_gradients_match_finite_differences() {
        let dev = DeviceConfig::a100_like();
        let (g, x, labels, mask) = toy();
        let mut p = TwoLayerParams::new(8, 6, 2, 1);
        let mut ops = Ops::new(&dev);
        let out = step_f32(&mut ops, &g, &p, &x, &labels, &mask);
        // Check a handful of weight coordinates by central differences.
        let eps = 1e-3;
        for &idx in &[0usize, 7, 13, 40] {
            let orig = p.w1[idx];
            p.w1[idx] = orig + eps;
            let lp = step_f32(&mut ops, &g, &p, &x, &labels, &mask).loss;
            p.w1[idx] = orig - eps;
            let lm = step_f32(&mut ops, &g, &p, &x, &labels, &mask).loss;
            p.w1[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - out.grads.w1[idx]).abs() < 5e-3,
                "w1[{idx}]: fd {fd} vs analytic {}",
                out.grads.w1[idx]
            );
        }
        for &idx in &[0usize, 5] {
            let orig = p.w2[idx];
            p.w2[idx] = orig + eps;
            let lp = step_f32(&mut ops, &g, &p, &x, &labels, &mask).loss;
            p.w2[idx] = orig - eps;
            let lm = step_f32(&mut ops, &g, &p, &x, &labels, &mask).loss;
            p.w2[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - out.grads.w2[idx]).abs() < 5e-3,
                "w2[{idx}]: fd {fd} vs analytic {}",
                out.grads.w2[idx]
            );
        }
    }

    #[test]
    fn all_norms_match_finite_differences() {
        // One W1 coordinate per norm suffices: it exercises the full
        // forward/adjoint pair for that norm.
        let dev = DeviceConfig::a100_like();
        let (g, x, labels, mask) = toy();
        let mut p = TwoLayerParams::new(8, 6, 2, 3);
        let eps = 1e-3;
        let fd32 = Dispatch::untuned(PrecisionMode::Float);
        for norm in [GcnNorm::Right, GcnNorm::Left, GcnNorm::Both] {
            let mut ops = Ops::new(&dev);
            let out = step_f32_norm(&mut ops, &g, &p, &x, &labels, &mask, fd32, norm);
            let idx = 5;
            let orig = p.w1[idx];
            p.w1[idx] = orig + eps;
            let lp = step_f32_norm(&mut ops, &g, &p, &x, &labels, &mask, fd32, norm).loss;
            p.w1[idx] = orig - eps;
            let lm = step_f32_norm(&mut ops, &g, &p, &x, &labels, &mask, fd32, norm).loss;
            p.w1[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - out.grads.w1[idx]).abs() < 1e-2 + 0.1 * fd.abs(),
                "{norm:?}: fd {fd} vs {}",
                out.grads.w1[idx]
            );
        }
    }

    #[test]
    fn norms_agree_on_a_regular_graph() {
        // On a degree-regular graph, right, left and both norms are the
        // same operator: outputs must coincide.
        let dev = DeviceConfig::a100_like();
        // A ring: every vertex has degree 3 after self loops.
        let n = 24u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let csr = halfgnn_graph::Csr::from_edges(n as usize, n as usize, &edges)
            .symmetrized_with_self_loops();
        let g = GraphView::full(&csr);
        let x: Vec<f32> = (0..n as usize * 4).map(|i| (i % 13) as f32 * 0.25 - 1.5).collect();
        let mut ops = Ops::new(&dev);
        let fd32 = Dispatch::untuned(PrecisionMode::Float);
        let r = crate::models::gcn_agg_f32(&mut ops, &g, &x, 4, GcnNorm::Right, fd32);
        let l = crate::models::gcn_agg_f32(&mut ops, &g, &x, 4, GcnNorm::Left, fd32);
        let b = crate::models::gcn_agg_f32(&mut ops, &g, &x, 4, GcnNorm::Both, fd32);
        for i in 0..r.len() {
            assert!((r[i] - l[i]).abs() < 1e-4, "right vs left at {i}");
            assert!((r[i] - b[i]).abs() < 1e-4, "right vs both at {i}");
        }
    }

    #[test]
    fn left_norm_forward_is_overflow_safe_under_naive_half() {
        // §3.1.3: with left norm there is no *forward* overflow even for
        // the naive kernels — the input is pre-scaled.
        let dev = DeviceConfig::a100_like();
        let deg = 900u32;
        let mut edges: Vec<(u32, u32)> = (1..=deg).map(|c| (0u32, c)).collect();
        edges.extend((1..deg).map(|v| (v, v + 1)));
        let csr = halfgnn_graph::Csr::from_edges(deg as usize + 1, deg as usize + 1, &edges)
            .symmetrized_with_self_loops();
        let g = GraphView::full(&csr);
        let x: Vec<halfgnn_half::Half> =
            vec![halfgnn_half::Half::from_f32(100.0); (deg as usize + 1) * 4];
        let mut ops = Ops::new(&dev);
        let y_left = crate::models::gcn_agg_half(
            &mut ops,
            &g,
            &x,
            4,
            GcnNorm::Left,
            PrecisionMode::HalfNaive.into(),
        );
        assert!(y_left.iter().all(|v| v.is_finite()), "left-norm forward must be safe");
        let y_right = crate::models::gcn_agg_half(
            &mut ops,
            &g,
            &x,
            4,
            GcnNorm::Right,
            PrecisionMode::HalfNaive.into(),
        );
        assert!(y_right[0].is_infinite(), "right-norm forward overflows on the hub");
        // ... but the left-norm *adjoint* (sum then scale) overflows:
        let d_left = crate::models::gcn_agg_backward_half(
            &mut ops,
            &g,
            &x,
            4,
            GcnNorm::Left,
            PrecisionMode::HalfNaive.into(),
        );
        assert!(d_left[0].is_infinite(), "left-norm backward overflows (§3.1.3)");
        // ... and HalfGNN's discretized kernels are safe on both sides.
        let d_ours = crate::models::gcn_agg_backward_half(
            &mut ops,
            &g,
            &x,
            4,
            GcnNorm::Left,
            PrecisionMode::HalfGnn.into(),
        );
        assert!(d_ours.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn half_step_tracks_f32_step() {
        let dev = DeviceConfig::a100_like();
        let (g, x, labels, mask) = toy();
        let p = TwoLayerParams::new(8, 6, 2, 1);
        let xh: Vec<halfgnn_half::Half> =
            x.iter().map(|&v| halfgnn_half::Half::from_f32(v)).collect();
        let mut ops = Ops::new(&dev);
        let f = step_f32(&mut ops, &g, &p, &x, &labels, &mask);
        let hstep = step_half(&mut ops, &g, &p, &xh, &labels, &mask, PrecisionMode::HalfGnn.into());
        assert!((f.loss - hstep.loss).abs() < 0.05, "{} vs {}", f.loss, hstep.loss);
        // Gradient direction agreement (cosine similarity) on W1.
        let dot: f32 = f.grads.w1.iter().zip(&hstep.grads.w1).map(|(a, b)| a * b).sum();
        let na: f32 = f.grads.w1.iter().map(|v| v * v).sum::<f32>().sqrt();
        let nb: f32 = hstep.grads.w1.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(dot / (na * nb) > 0.98, "cosine {}", dot / (na * nb));
    }
}
