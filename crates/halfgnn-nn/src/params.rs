//! Model parameters: f32 master copies with Glorot initialization, plus a
//! flat view for the optimizer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Glorot-uniform matrix, `rows × cols`.
pub fn glorot(rows: usize, cols: usize, rng: &mut StdRng) -> Vec<f32> {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    (0..rows * cols).map(|_| rng.gen_range(-limit..limit)).collect()
}

/// Two-layer model parameters shared by GCN and GIN: `W1 (f_in×h)`,
/// `b1 (h)`, `W2 (h×c)`, `b2 (c)`.
#[derive(Clone)]
pub struct TwoLayerParams {
    /// Layer-1 weight.
    pub w1: Vec<f32>,
    /// Layer-1 bias.
    pub b1: Vec<f32>,
    /// Layer-2 weight.
    pub w2: Vec<f32>,
    /// Layer-2 bias.
    pub b2: Vec<f32>,
    /// Input feature length.
    pub f_in: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Output width (padded class count for half paths).
    pub classes: usize,
}

impl TwoLayerParams {
    /// Glorot-initialized parameters.
    pub fn new(f_in: usize, hidden: usize, classes: usize, seed: u64) -> TwoLayerParams {
        let mut rng = StdRng::seed_from_u64(seed);
        TwoLayerParams {
            w1: glorot(f_in, hidden, &mut rng),
            b1: vec![0.0; hidden],
            w2: glorot(hidden, classes, &mut rng),
            b2: vec![0.0; classes],
            f_in,
            hidden,
            classes,
        }
    }

    /// Flatten parameters for the optimizer (order: w1, b1, w2, b2).
    pub fn flat(&self) -> Vec<f32> {
        let mut v = Vec::with_capacity(self.num_params());
        v.extend_from_slice(&self.w1);
        v.extend_from_slice(&self.b1);
        v.extend_from_slice(&self.w2);
        v.extend_from_slice(&self.b2);
        v
    }

    /// Write a flat vector back into the structured parameters.
    pub fn set_flat(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.num_params());
        let (a, rest) = flat.split_at(self.w1.len());
        let (b, rest) = rest.split_at(self.b1.len());
        let (c, d) = rest.split_at(self.w2.len());
        self.w1.copy_from_slice(a);
        self.b1.copy_from_slice(b);
        self.w2.copy_from_slice(c);
        self.b2.copy_from_slice(d);
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.w1.len() + self.b1.len() + self.w2.len() + self.b2.len()
    }
}

/// Gradients matching [`TwoLayerParams`].
#[derive(Default)]
pub struct TwoLayerGrads {
    /// ∂L/∂W1.
    pub w1: Vec<f32>,
    /// ∂L/∂b1.
    pub b1: Vec<f32>,
    /// ∂L/∂W2.
    pub w2: Vec<f32>,
    /// ∂L/∂b2.
    pub b2: Vec<f32>,
}

impl TwoLayerGrads {
    /// Flatten in the same order as [`TwoLayerParams::flat`].
    pub fn flat(&self) -> Vec<f32> {
        let mut v = Vec::new();
        v.extend_from_slice(&self.w1);
        v.extend_from_slice(&self.b1);
        v.extend_from_slice(&self.w2);
        v.extend_from_slice(&self.b2);
        v
    }
}

/// GAT parameters: per layer a projection `W` (no bias, per the original)
/// and two attention vectors `a_src`, `a_dst` over the projected features.
pub struct GatParams {
    /// Layer-1 projection, `f_in × hidden`.
    pub w1: Vec<f32>,
    /// Layer-1 source attention vector, `hidden`.
    pub a_src1: Vec<f32>,
    /// Layer-1 destination attention vector, `hidden`.
    pub a_dst1: Vec<f32>,
    /// Layer-2 projection, `hidden × classes`.
    pub w2: Vec<f32>,
    /// Layer-2 source attention vector, `classes`.
    pub a_src2: Vec<f32>,
    /// Layer-2 destination attention vector, `classes`.
    pub a_dst2: Vec<f32>,
    /// Input feature length.
    pub f_in: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Output width.
    pub classes: usize,
}

impl GatParams {
    /// Glorot-initialized single-head GAT.
    pub fn new(f_in: usize, hidden: usize, classes: usize, seed: u64) -> GatParams {
        let mut rng = StdRng::seed_from_u64(seed);
        GatParams {
            w1: glorot(f_in, hidden, &mut rng),
            a_src1: glorot(hidden, 1, &mut rng),
            a_dst1: glorot(hidden, 1, &mut rng),
            w2: glorot(hidden, classes, &mut rng),
            a_src2: glorot(classes, 1, &mut rng),
            a_dst2: glorot(classes, 1, &mut rng),
            f_in,
            hidden,
            classes,
        }
    }

    /// Flat view (w1, a_src1, a_dst1, w2, a_src2, a_dst2).
    pub fn flat(&self) -> Vec<f32> {
        let mut v = Vec::with_capacity(self.num_params());
        for part in [&self.w1, &self.a_src1, &self.a_dst1, &self.w2, &self.a_src2, &self.a_dst2] {
            v.extend_from_slice(part);
        }
        v
    }

    /// Restore from a flat vector.
    pub fn set_flat(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.num_params());
        let mut off = 0;
        for part in [
            &mut self.w1,
            &mut self.a_src1,
            &mut self.a_dst1,
            &mut self.w2,
            &mut self.a_src2,
            &mut self.a_dst2,
        ] {
            let len = part.len();
            part.copy_from_slice(&flat[off..off + len]);
            off += len;
        }
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.w1.len()
            + self.a_src1.len()
            + self.a_dst1.len()
            + self.w2.len()
            + self.a_src2.len()
            + self.a_dst2.len()
    }
}

/// Gradients matching [`GatParams`].
#[derive(Default)]
pub struct GatGrads {
    /// ∂L/∂W1.
    pub w1: Vec<f32>,
    /// ∂L/∂a_src1.
    pub a_src1: Vec<f32>,
    /// ∂L/∂a_dst1.
    pub a_dst1: Vec<f32>,
    /// ∂L/∂W2.
    pub w2: Vec<f32>,
    /// ∂L/∂a_src2.
    pub a_src2: Vec<f32>,
    /// ∂L/∂a_dst2.
    pub a_dst2: Vec<f32>,
}

impl GatGrads {
    /// Flat view matching [`GatParams::flat`].
    pub fn flat(&self) -> Vec<f32> {
        let mut v = Vec::new();
        for part in [&self.w1, &self.a_src1, &self.a_dst1, &self.w2, &self.a_src2, &self.a_dst2] {
            v.extend_from_slice(part);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glorot_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = glorot(100, 50, &mut rng);
        let limit = (6.0f32 / 150.0).sqrt();
        assert!(w.iter().all(|&v| v.abs() <= limit));
        assert!(w.iter().any(|&v| v.abs() > limit * 0.5), "not degenerate");
    }

    #[test]
    fn two_layer_flat_round_trip() {
        let mut p = TwoLayerParams::new(8, 4, 3, 7);
        let flat = p.flat();
        assert_eq!(flat.len(), p.num_params());
        assert_eq!(p.num_params(), 8 * 4 + 4 + 4 * 3 + 3);
        let mut modified = flat.clone();
        modified[0] = 42.0;
        p.set_flat(&modified);
        assert_eq!(p.w1[0], 42.0);
        assert_eq!(p.flat(), modified);
    }

    #[test]
    fn gat_flat_round_trip() {
        let mut p = GatParams::new(8, 4, 3, 7);
        let flat = p.flat();
        assert_eq!(flat.len(), p.num_params());
        let mut modified = flat.clone();
        *modified.last_mut().unwrap() = -9.0;
        p.set_flat(&modified);
        assert_eq!(*p.a_dst2.last().unwrap(), -9.0);
        assert_eq!(p.flat(), modified);
    }

    #[test]
    fn init_is_seeded() {
        let a = TwoLayerParams::new(8, 4, 3, 7);
        let b = TwoLayerParams::new(8, 4, 3, 7);
        let c = TwoLayerParams::new(8, 4, 3, 8);
        assert_eq!(a.flat(), b.flat());
        assert_ne!(a.flat(), c.flat());
    }
}
