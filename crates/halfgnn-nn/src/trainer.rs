//! Full-batch training loop: Adam over f32 master weights, per-epoch
//! modeled time, NaN detection, and analytic memory accounting.

use crate::adam::Adam;
use crate::dist::DistCtx;
use crate::graphdata::GraphView;
use crate::models::Dispatch;
pub use crate::models::{ModelKind, PrecisionMode};
use crate::params::{GatParams, TwoLayerParams};
use crate::sage::SageParams;
use crate::{gat, gcn, gin, sage};
use halfgnn_exec::ExecCtx;
pub use halfgnn_exec::{CaptureRefused, ReplaySummary};
use halfgnn_graph::datasets::LoadedDataset;
pub use halfgnn_graph::partition::PartitionStrategy;
use halfgnn_graph::{DeltaCsr, NeighborSampler, VertexId};
use halfgnn_half::slice::{f32_slice_to_half, pad_feature_len};
use halfgnn_half::Half;
use halfgnn_half::{overflow, quant};
use halfgnn_sim::interconnect::LinkStat;
pub use halfgnn_sim::interconnect::Topology;
use halfgnn_sim::DeviceConfig;
pub use halfgnn_sim::ExecMode;
use halfgnn_tensor::{MemoryTracker, Ops};
use halfgnn_tune::{Tuner, TunerCounters};

/// Kernel autotuning policy for a training run (§ DESIGN.md 10).
///
/// `Off` dispatches every HalfGNN kernel with the static default plan —
/// bit-for-bit the pre-tuner behaviour. `Auto` consults an in-memory
/// [`Tuner`] that evaluates candidate plans under the cost model the
/// first time each (op, graph-shape, dtype) key appears. `Cached` does
/// the same but loads/saves the plan cache at the given JSON path, so a
/// second run skips evaluation entirely.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum Tuning {
    /// Static default kernel plans (exactly the untuned dispatch).
    #[default]
    Off,
    /// Tune on first use; plans live only for this process.
    Auto,
    /// Tune on first use and persist plans to this JSON file.
    Cached(String),
}

/// Training configuration.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Architecture.
    pub model: ModelKind,
    /// Kernel/precision system.
    pub precision: PrecisionMode,
    /// Full-batch epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Hidden width (the paper fixes 64).
    pub hidden: usize,
    /// Parameter-init seed.
    pub seed: u64,
    /// GIN's aggregation scale λ (Eq. 4; the paper validates 0.1).
    pub gin_lambda: f32,
    /// GCN degree-norm placement (§3.1.3).
    pub gcn_norm: crate::models::GcnNorm,
    /// Static loss scale for the half backward pass (1.0 = off).
    pub loss_scale: f32,
    /// Execution backend for the run's kernels. [`ExecMode::Sim`]
    /// (default) models cost: `epoch_time_us` is analytic cycles and
    /// overflow provenance is exact. [`ExecMode::Fast`] runs CTAs on real
    /// OS threads with charging compiled out: `epoch_time_us` becomes
    /// measured wall-clock and kernel-level overflow provenance is not
    /// recorded (worker threads don't share the recorder's thread-local).
    pub exec: ExecMode,
    /// Kernel autotuning policy. [`Tuning::Off`] keeps the static default
    /// plans; `Auto`/`Cached` route SpMM/SDDMM dispatch through the
    /// cost-model tuner (plans are modeled-cycles argmins vetted against
    /// the f64 oracle, so losses stay within oracle tolerance).
    pub tuning: Tuning,
    /// Force the fused GAT attention pipeline (§ DESIGN.md 11) on every
    /// eligible layer. `false` (default) leaves the choice to the tuner
    /// (`Auto`/`Cached` runs) or keeps the unfused five-kernel chain
    /// (`Off` runs) — so `Tuning::Off` without this flag stays bit-for-bit
    /// the pre-fusion behaviour. Only HalfGnn-family GAT layers with even
    /// feature width can fuse; the flag is a no-op elsewhere.
    pub fusion: bool,
    /// Simulated devices for sharded training (§ DESIGN.md 12). `1`
    /// (default) is the single-device path, bit-for-bit the pre-sharding
    /// behaviour. With `shards > 1` every sparse op runs as per-shard
    /// windowed launches with halo exchanges, and gradients all-reduce
    /// (f16 wire in half modes, f32 in float) — all metered into the
    /// report's comms fields.
    pub shards: usize,
    /// Interconnect wiring between the shards (ignored when `shards == 1`).
    pub topology: Topology,
    /// How vertices are assigned to shards (ignored when `shards == 1`).
    pub partition: PartitionStrategy,
    /// Replication factor override for the 1.5D partition
    /// (`--replication`, DESIGN.md §16). `None` keeps the strategy's
    /// built-in factor (`--partition 1p5d` defaults to c = 2); `Some(c)`
    /// requires the 1.5D partition and a shard count divisible by `c`.
    pub replication: Option<usize>,
    /// Capture epoch 0 into an execution graph and replay it for every
    /// later epoch (`--replay`, DESIGN.md §13) — the CUDA-graph analog.
    /// Replay epochs resolve zero kernel plans (no tuner-cache lookups)
    /// and pay launch overhead only once, at capture; functional results
    /// are bit-identical to eager execution.
    pub replay: bool,
    /// Mini-batch seed count per step (`--batch-size`, DESIGN.md §14).
    /// `None` (default) is the paper's full-batch setting; `Some(b)`
    /// switches to neighbor-sampled mini-batch epochs: each batch trains
    /// on the sampled receptive field of `b` seed vertices.
    pub batch_size: Option<usize>,
    /// Sampled in-neighbors per vertex per hop (`--fanout`). Ignored in
    /// full-batch runs.
    pub fanout: u32,
    /// Streaming-ingestion exercise (`--stream-edges`): insert this many
    /// random undirected edges through the [`DeltaCsr`] overlay halfway
    /// through training, with no full CSR rebuild. Requires mini-batch
    /// mode (the sampler reads through the overlay; the full-batch path's
    /// graph tables are precomputed once).
    pub stream_edges: usize,
    /// Write the trained f32 master weights to this path after the last
    /// epoch (`--save-snapshot`), atomically and bit-exactly, in the
    /// [`crate::snapshot::ModelSnapshot`] format `halfgnn-serve` loads.
    pub snapshot_path: Option<String>,
    /// INT8 all-reduce bucket size override (`--i8-block`): elements
    /// sharing one joint exponent on the INT8 gradient wire. `None`
    /// keeps [`crate::dist::ALLREDUCE_BUCKET`]. Requires
    /// `--precision i8` and a power of two in `[16, 256]` — both checked
    /// at config time, by name.
    pub i8_block: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            model: ModelKind::Gcn,
            precision: PrecisionMode::Float,
            epochs: 100,
            lr: 0.01,
            hidden: 64,
            seed: 0,
            gin_lambda: crate::gin::GIN_LAMBDA,
            gcn_norm: crate::models::GcnNorm::Right,
            loss_scale: 1.0,
            exec: ExecMode::Sim,
            tuning: Tuning::Off,
            fusion: false,
            shards: 1,
            topology: Topology::Ring,
            partition: PartitionStrategy::Contiguous,
            replication: None,
            replay: false,
            batch_size: None,
            fanout: 10,
            stream_edges: 0,
            snapshot_path: None,
            i8_block: None,
        }
    }
}

/// A configuration rejected before training starts, by name — the
/// alternative is a mid-run panic with a stack trace instead of a cause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `--replay` with `--batch-size`: capture assumes a fixed epoch
    /// kernel sequence, which mini-batch sampling breaks.
    ReplayWithMiniBatch(CaptureRefused),
    /// `--shards` > 1 with `--batch-size`: the partition plan is built
    /// once for the full graph, not per batch subgraph.
    ShardedMiniBatch,
    /// `--stream-edges` without `--batch-size`: the full-batch path
    /// precomputes its graph tables once and cannot ingest a delta.
    StreamingNeedsMiniBatch,
    /// `--batch-size 0` selects no seeds.
    ZeroBatchSize,
    /// `--fanout 0` samples no neighbors.
    ZeroFanout,
    /// `--loss-scale` zero, negative, or non-finite: gradients would be
    /// annihilated (or poisoned) before the unscale, silently.
    BadLossScale,
    /// `--save-snapshot` with an empty path.
    EmptySnapshotPath,
    /// `--replication 0`: a replication group needs at least one member.
    ZeroReplication,
    /// `--replication` with a partition other than 1.5D: the factor has
    /// no meaning for 1D strategies.
    ReplicationRequiresOneP5D,
    /// `--partition 1p5d` with a shard count the replication factor does
    /// not divide: replication groups must tile the shards exactly.
    ReplicationDoesNotDivideShards,
    /// `--i8-block` without `--precision i8`: the bucket only exists on
    /// the INT8 wire.
    QuantBlockWithoutI8,
    /// `--i8-block` that is zero, not a power of two, or outside
    /// `[16, 256]`: the joint-exponent bucket must pack the wire evenly,
    /// and a degenerate bucket either crushes small gradients (too wide)
    /// or pays an exponent per element (too narrow).
    BadQuantBlock,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ReplayWithMiniBatch(r) => {
                write!(f, "--replay is incompatible with --batch-size ({r})")
            }
            ConfigError::ShardedMiniBatch => {
                write!(f, "--shards > 1 is incompatible with --batch-size (the partition plan is per full graph, not per batch)")
            }
            ConfigError::StreamingNeedsMiniBatch => {
                write!(f, "--stream-edges requires --batch-size (full-batch graph tables are precomputed once)")
            }
            ConfigError::ZeroBatchSize => write!(f, "--batch-size must be at least 1"),
            ConfigError::ZeroFanout => write!(f, "--fanout must be at least 1"),
            ConfigError::BadLossScale => {
                write!(f, "--loss-scale must be a positive, finite value")
            }
            ConfigError::EmptySnapshotPath => {
                write!(f, "--save-snapshot requires a non-empty path")
            }
            ConfigError::ZeroReplication => write!(f, "--replication must be at least 1"),
            ConfigError::ReplicationRequiresOneP5D => {
                write!(f, "--replication requires --partition 1p5d")
            }
            ConfigError::ReplicationDoesNotDivideShards => {
                write!(f, "--partition 1p5d requires --shards divisible by the replication factor")
            }
            ConfigError::QuantBlockWithoutI8 => {
                write!(f, "--i8-block requires --precision i8")
            }
            ConfigError::BadQuantBlock => {
                write!(f, "--i8-block must be a power of two between 16 and 256")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl TrainConfig {
    /// Reject configurations that cannot train, with a named reason.
    /// [`train_on`] calls this and panics with the message; CLIs should
    /// call it directly and exit with a usage error instead.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.loss_scale.is_finite() || self.loss_scale <= 0.0 {
            return Err(ConfigError::BadLossScale);
        }
        if let Some(c) = self.replication {
            if c == 0 {
                return Err(ConfigError::ZeroReplication);
            }
            if !matches!(self.partition, PartitionStrategy::OneP5D { .. }) {
                return Err(ConfigError::ReplicationRequiresOneP5D);
            }
        }
        if self.shards > 1 && !self.shards.is_multiple_of(self.effective_partition().replication())
        {
            return Err(ConfigError::ReplicationDoesNotDivideShards);
        }
        if matches!(&self.snapshot_path, Some(p) if p.is_empty()) {
            return Err(ConfigError::EmptySnapshotPath);
        }
        if let Some(b) = self.i8_block {
            if self.precision != PrecisionMode::I8 {
                return Err(ConfigError::QuantBlockWithoutI8);
            }
            if !b.is_power_of_two() || !(16..=256).contains(&b) {
                return Err(ConfigError::BadQuantBlock);
            }
        }
        match self.batch_size {
            Some(0) => return Err(ConfigError::ZeroBatchSize),
            Some(_) => {
                if self.replay {
                    return Err(ConfigError::ReplayWithMiniBatch(
                        CaptureRefused::MiniBatchSchedule,
                    ));
                }
                if self.shards > 1 {
                    return Err(ConfigError::ShardedMiniBatch);
                }
                if self.fanout == 0 {
                    return Err(ConfigError::ZeroFanout);
                }
            }
            None => {
                if self.stream_edges > 0 {
                    return Err(ConfigError::StreamingNeedsMiniBatch);
                }
            }
        }
        Ok(())
    }

    /// The partition strategy the run actually trains with: the configured
    /// strategy, with `--replication` folded into the 1.5D factor.
    pub fn effective_partition(&self) -> PartitionStrategy {
        match self.replication {
            Some(c) => self.partition.with_replication(c),
            None => self.partition,
        }
    }
}

/// Outcome of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Loss per epoch.
    pub losses: Vec<f32>,
    /// Training accuracy at the final epoch.
    pub final_train_accuracy: f32,
    /// Held-out test accuracy at the final epoch.
    pub test_accuracy: f32,
    /// First epoch whose loss was NaN (the DGL-half failure of Fig. 1c).
    pub nan_epoch: Option<usize>,
    /// Time of one training epoch in microseconds: modeled (analytic
    /// cycles) under [`ExecMode::Sim`], measured wall-clock under
    /// [`ExecMode::Fast`].
    pub epoch_time_us: f64,
    /// Peak modeled device memory in bytes (Fig. 6).
    pub peak_memory_bytes: u64,
    /// Tensor dtype conversions per epoch (§3.1.2).
    pub conversions_per_epoch: u64,
    /// Elements converted per epoch.
    pub converted_elems_per_epoch: u64,
    /// Kernel launches per epoch.
    pub kernels_per_epoch: usize,
    /// Modeled DRAM traffic of one epoch in bytes (read + write sectors
    /// × 32 B). Fused kernels never charge sectors for the intermediates
    /// they eliminate, so this is where fusion's memory-traffic savings
    /// show up. Zero under [`ExecMode::Fast`] (charging is compiled out).
    pub dram_bytes_per_epoch: u64,
    /// Per-kernel breakdown of one epoch:
    /// `(name, launches, total us, total DRAM bytes)` sorted by time
    /// descending — the profile a Nsight Systems trace would show.
    pub kernel_breakdown: Vec<(String, usize, f64, u64)>,
    /// Overflow-provenance summary for each epoch: every `f32 → half`
    /// conversion of the step is tracked, and the first non-finite one
    /// carries its site path (layer + kernel), answering *which tensor
    /// overflowed first* when a half run NaNs (Fig. 1c). Clean summaries
    /// when `halfgnn-half/provenance` is off or the run is float.
    pub overflow_per_epoch: Vec<overflow::Summary>,
    /// Saturation-provenance summary for each epoch: every INT8
    /// quantization of the step is tracked, and the first flagged one
    /// (a clamp at ±127·2^e or a non-finite input) carries its site,
    /// answering *which tensor saturated first* when an I8 run drifts.
    /// Clean summaries outside `--precision i8` — so "zero unflagged
    /// saturation events" is checkable: a flagged event always lands
    /// here.
    pub saturation_per_epoch: Vec<quant::SatSummary>,
    /// Plan-cache counters when the run tuned ([`Tuning::Auto`]/`Cached`):
    /// hits, misses, and candidate evaluations across the whole run. `None`
    /// under [`Tuning::Off`].
    pub tuning_counters: Option<TunerCounters>,
    /// Interconnect bytes moved by one epoch (halo + all-reduce, relay
    /// hops counted per link). Zero when `shards == 1`.
    pub comms_bytes_per_epoch: u64,
    /// Halo-exchange payload bytes of one epoch (2 B/element in half
    /// modes, 4 B in float — the FP16 comms win `BENCH_pr5` measures).
    pub comms_halo_bytes_per_epoch: u64,
    /// Gradient all-reduce bytes of one epoch.
    pub comms_allreduce_bytes_per_epoch: u64,
    /// Modeled communication time of one epoch in microseconds (busiest
    /// link; links transfer concurrently).
    pub comms_time_us_per_epoch: f64,
    /// Per-directed-link traffic of one epoch, sorted by `(from, to)`.
    pub link_breakdown: Vec<((usize, usize), LinkStat)>,
    /// Epoch comm+compute time with every transfer serialized against its
    /// device's kernels (busiest device; epoch 0, cold halo cache). Zero
    /// when `shards == 1`.
    pub comms_serialized_us: f64,
    /// The same epoch under the double-buffered halo-prefetch model
    /// (DESIGN.md §16): each halo transfer hides under the compute window
    /// since the previous communication point; all-reduces are barriers.
    /// Strictly below `comms_serialized_us` whenever a halo hides.
    pub comms_overlapped_us: f64,
    /// Cross-epoch halo-cache rows served locally during the *last* epoch
    /// (steady state: static features hit from epoch 1 on). Zero when
    /// `shards == 1`.
    pub halo_cache_hits: u64,
    /// Halo-cache rows fetched over the wire during the last epoch.
    pub halo_cache_misses: u64,
    /// Wire bytes the last epoch's cache hits avoided.
    pub halo_cache_bytes_saved: u64,
    /// Captured-graph summary when the run replayed (`TrainConfig::replay`):
    /// launches and buffers per epoch, the arena-planned `peak_bytes` for
    /// intermediates (vs the eager no-reuse baseline), and the modeled
    /// cycles saved per replay epoch by stripped launch overhead. `None`
    /// on eager runs.
    pub replay: Option<ReplaySummary>,
    /// Time of one *replayed* epoch in microseconds (first replay epoch;
    /// same semantics as `epoch_time_us`). Zero on eager runs and on
    /// single-epoch runs that never replayed.
    pub replay_epoch_time_us: f64,
    /// Mini-batch sampling summary (`TrainConfig::batch_size`); `None`
    /// on full-batch runs.
    pub sampling: Option<SamplingSummary>,
}

/// What the neighbor sampler actually did during a mini-batch run.
#[derive(Clone, Debug)]
pub struct SamplingSummary {
    /// Batches per epoch (`⌈|train| / batch_size⌉`).
    pub batches_per_epoch: usize,
    /// Mean sampled receptive-field size (vertices) across epoch 0.
    pub mean_batch_vertices: f64,
    /// Mean sampled subgraph edges (before symmetrization) across epoch 0.
    pub mean_batch_edges: f64,
    /// Largest receptive field of any batch in the run — the size the
    /// peak-memory model is scaled to.
    pub max_batch_vertices: usize,
    /// Largest sampled edge count of any batch in the run.
    pub max_batch_edges: usize,
    /// Fanout the run sampled with.
    pub fanout: u32,
    /// Edges actually inserted through the [`DeltaCsr`] overlay (0 when
    /// `stream_edges` was 0 or every drawn edge already existed).
    pub streamed_edges: usize,
    /// Epoch before which the stream was ingested, when it was.
    pub stream_epoch: Option<usize>,
    /// Tuner cache activity *after* the stream was ingested (hits vs
    /// misses over post-delta batches) — the "re-tuning stays mostly
    /// cache-hit" claim, measured. `None` without streaming or tuning.
    pub post_stream_tuning: Option<TunerCounters>,
}

impl TrainReport {
    /// The first non-finite conversion of the whole run, as
    /// `(epoch, event)` — the genesis of a Fig. 1c loss collapse.
    pub fn first_overflow(&self) -> Option<(usize, &overflow::OverflowEvent)> {
        self.overflow_per_epoch
            .iter()
            .enumerate()
            .find_map(|(ep, s)| s.first.as_ref().map(|ev| (ep, ev)))
    }

    /// The first flagged INT8 quantization of the whole run, as
    /// `(epoch, event)`. `None` for oracle-clean I8 runs and every
    /// non-I8 run.
    pub fn first_saturation(&self) -> Option<(usize, &quant::SatEvent)> {
        self.saturation_per_epoch
            .iter()
            .enumerate()
            .find_map(|(ep, s)| s.first.as_ref().map(|ev| (ep, ev)))
    }
}

/// Train on the standard A100-like device.
pub fn train(data: &LoadedDataset, cfg: &TrainConfig) -> TrainReport {
    train_on(&DeviceConfig::a100_like(), data, cfg)
}

/// Train on an explicit device. The config's [`TrainConfig::exec`] selects
/// the execution backend, overriding whatever mode `dev` carries.
pub fn train_on(dev: &DeviceConfig, data: &LoadedDataset, cfg: &TrainConfig) -> TrainReport {
    if let Err(e) = cfg.validate() {
        panic!("invalid config: {e}");
    }
    if cfg.batch_size.is_some() {
        return train_minibatch(dev, data, cfg);
    }
    let dev = &dev.clone().with_exec(cfg.exec);
    let g = GraphView::full(&data.adj);
    let f_in = data.spec.feat;
    let is_half = cfg.precision.is_half();
    // Feature padding (§4.1.2): half paths pad odd class counts.
    let classes = if is_half { pad_feature_len(data.spec.classes, 2) } else { data.spec.classes };

    let x = data.features.clone();
    let xh = if is_half { f32_slice_to_half(&x) } else { Vec::new() };
    let labels = &data.labels;
    let train_mask = &data.split.train;

    let mut losses = Vec::with_capacity(cfg.epochs);
    let mut nan_epoch = None;
    let mut epoch_time_us = 0.0;
    let mut conversions = 0u64;
    let mut converted = 0u64;
    let mut kernels = 0usize;
    let mut dram_bytes = 0u64;
    let mut breakdown: Vec<(String, usize, f64, u64)> = Vec::new();
    let mut last_logits: Vec<f32> = Vec::new();
    let mut replay_epoch_time_us = 0.0;

    // Parameter storage + optimizer, per architecture.
    let mut params = ModelParams::new(cfg.model, f_in, cfg.hidden, classes, cfg.seed);
    let mut opt = Adam::new(params.num_params(), cfg.lr);

    let mut overflow_per_epoch: Vec<overflow::Summary> = Vec::with_capacity(cfg.epochs);
    let mut saturation_per_epoch: Vec<quant::SatSummary> = Vec::with_capacity(cfg.epochs);

    // One tuner for the whole run: plans are per (op, graph-shape, dtype)
    // key, so epoch 0 pays any evaluation cost and later epochs hit the
    // in-memory cache. The tuner always evaluates under `ExecMode::Sim`
    // regardless of `cfg.exec` — plans are modeled-cycles argmins either
    // way, and its oracle checks run inside `overflow::isolated` so they
    // never pollute this run's per-epoch provenance windows.
    let partition = cfg.effective_partition();
    let tuner = match &cfg.tuning {
        Tuning::Off => None,
        Tuning::Auto => Some(Tuner::auto(dev).with_shards(cfg.shards).with_partition(partition)),
        Tuning::Cached(path) => Some(
            Tuner::cached(dev, path.as_str()).with_shards(cfg.shards).with_partition(partition),
        ),
    };
    // Sharded execution context: partition Â (the graph the kernels run
    // on) and meter every halo exchange / all-reduce against the chosen
    // interconnect. `shards == 1` keeps the single-device dispatch path.
    let dist = (cfg.shards > 1).then(|| {
        let ctx = DistCtx::new(&g.csr, cfg.shards, partition, cfg.topology);
        match cfg.i8_block {
            Some(b) => ctx.with_i8_bucket(b),
            None => ctx,
        }
    });
    // Capture/replay context (`--replay`): epoch 0 records every plan
    // resolution and kernel launch; `seal()` freezes the graph and every
    // later epoch replays it — no tuner lookups, launch overhead stripped.
    let exec_ctx = cfg.replay.then(ExecCtx::capturing);
    let dispatch = match &tuner {
        Some(t) => Dispatch::tuned(cfg.precision, t),
        None => Dispatch::untuned(cfg.precision),
    }
    .with_fusion(cfg.fusion)
    .with_dist(dist.as_ref())
    .with_exec(exec_ctx.as_ref());

    let mut comms = halfgnn_sim::interconnect::CommsLedger::new();
    let mut comms_serialized_us = 0.0;
    let mut comms_overlapped_us = 0.0;
    for epoch in 0..cfg.epochs {
        if let Some(ctx) = &dist {
            ctx.reset_epoch();
        }
        if let Some(ctx) = &exec_ctx {
            ctx.begin_epoch();
        }
        let mut ops = Ops::new(dev).with_exec(exec_ctx.as_ref());
        ops.loss_scale = cfg.loss_scale;
        // Track every f32→half conversion of this epoch's step; the first
        // non-finite one is recorded with its layer/kernel site path. The
        // quant window does the same for INT8 saturation.
        overflow::begin();
        quant::begin();
        // Re-key INT8 stochastic rounding per epoch: errors decorrelate
        // across steps, yet the whole run is a pure function of the seed.
        let (loss, correct, grad_flat, logits) = run_step(
            &params,
            &mut ops,
            &g,
            &x,
            &xh,
            labels,
            train_mask,
            dispatch.with_quant_seed(cfg.seed ^ epoch as u64),
            cfg,
        );

        let satw = quant::take();
        if let Some(ev) = &satw.first {
            if saturation_per_epoch.iter().all(quant::SatSummary::is_clean) {
                eprintln!(
                    "[halfgnn-nn] {:?}/{:?}: epoch {epoch}: first INT8 saturation: {ev} \
                     ({} flagged of {} quantizations this epoch)",
                    cfg.model,
                    cfg.precision,
                    satw.flagged(),
                    satw.quantized
                );
            }
        }
        saturation_per_epoch.push(satw);
        let ofw = overflow::take();
        if let Some(ev) = &ofw.first {
            // Log only the run's first overflow: later epochs mostly repeat
            // the same site once the parameters are poisoned.
            if overflow_per_epoch.iter().all(overflow::Summary::is_clean) {
                eprintln!(
                    "[halfgnn-nn] {:?}/{:?}: epoch {epoch}: first non-finite conversion: {ev} \
                     ({} non-finite of {} conversions this epoch)",
                    cfg.model,
                    cfg.precision,
                    ofw.nonfinite(),
                    ofw.conversions
                );
            }
        }
        overflow_per_epoch.push(ofw);

        if loss.is_nan() && nan_epoch.is_none() {
            nan_epoch = Some(epoch);
        }
        losses.push(loss);
        let _ = correct;
        last_logits = logits;

        if epoch == 0 {
            // Kernel sequences are value-independent, so one epoch's
            // modeled time represents them all.
            epoch_time_us = ops.total_time_us();
            conversions = ops.tensor_conversions;
            converted = ops.converted_elems;
            kernels = ops.kernel_count();
            dram_bytes = ops.log.iter().map(halfgnn_sim::KernelStats::dram_bytes).sum();
            breakdown = kernel_breakdown(&ops.log);
            if let Some(ctx) = &dist {
                comms = ctx.snapshot();
                // Epoch 0 is the cold-cache epoch: its event streams carry
                // every halo transfer, so the serialized-vs-overlapped gap
                // is the conservative (smallest) one.
                let timeline = ctx.timeline();
                comms_serialized_us = timeline.serialized_us();
                comms_overlapped_us = timeline.overlapped_us();
            }
        }
        if let Some(ctx) = &exec_ctx {
            if epoch == 0 {
                // Capture complete: freeze the graph, replay from here on.
                ctx.seal();
            } else {
                // A replayed epoch must consume exactly the captured plan
                // stream — anything else is a silent divergence.
                ctx.end_epoch();
                if epoch == 1 {
                    replay_epoch_time_us = ops.total_time_us();
                }
            }
        }

        // Master update in f32 (NaN gradients propagate, as in real DGL).
        params.adam_step(&mut opt, &grad_flat);
    }

    let final_train_accuracy = Ops::accuracy(&last_logits, labels, train_mask, classes);
    let test_accuracy = Ops::accuracy(&last_logits, labels, &data.split.test, classes);
    save_snapshot(cfg, f_in, classes, &params);
    // Last epoch's counters = the steady state: with static input
    // features every post-warmup epoch serves its halo from the cache.
    let halo_cache = dist.as_ref().map(DistCtx::halo_cache_stats).unwrap_or_default();

    TrainReport {
        losses,
        final_train_accuracy,
        test_accuracy,
        nan_epoch,
        epoch_time_us,
        peak_memory_bytes: model_memory(data, cfg, classes).peak(),
        conversions_per_epoch: conversions,
        converted_elems_per_epoch: converted,
        kernels_per_epoch: kernels,
        dram_bytes_per_epoch: dram_bytes,
        kernel_breakdown: breakdown,
        overflow_per_epoch,
        saturation_per_epoch,
        tuning_counters: tuner.as_ref().map(Tuner::counters),
        comms_bytes_per_epoch: comms.total_bytes(),
        comms_halo_bytes_per_epoch: comms.halo_bytes,
        comms_allreduce_bytes_per_epoch: comms.allreduce_bytes,
        comms_time_us_per_epoch: comms.total_time_us(),
        link_breakdown: comms.link_stats(),
        comms_serialized_us,
        comms_overlapped_us,
        halo_cache_hits: halo_cache.hits,
        halo_cache_misses: halo_cache.misses,
        halo_cache_bytes_saved: halo_cache.bytes_saved,
        replay: exec_ctx.as_ref().map(|ctx| {
            let mut s = ctx.summary();
            // Per-epoch figure: total stripped cycles over the replay
            // epochs that actually ran.
            let replays = cfg.epochs.saturating_sub(1).max(1) as f64;
            s.saved_cycles /= replays;
            s
        }),
        replay_epoch_time_us,
        sampling: None,
    }
}

/// Parameter storage per architecture — shared by the full-batch and
/// mini-batch loops so both drive the exact same models and optimizer.
enum ModelParams {
    Two(TwoLayerParams),
    Gat(GatParams),
    Sage(SageParams),
}

impl ModelParams {
    fn new(model: ModelKind, f_in: usize, hidden: usize, classes: usize, seed: u64) -> ModelParams {
        match model {
            ModelKind::Gcn | ModelKind::Gin => {
                ModelParams::Two(TwoLayerParams::new(f_in, hidden, classes, seed))
            }
            ModelKind::Gat => ModelParams::Gat(GatParams::new(f_in, hidden, classes, seed)),
            ModelKind::Sage => ModelParams::Sage(SageParams::new(f_in, hidden, classes, seed)),
        }
    }

    fn num_params(&self) -> usize {
        match self {
            ModelParams::Two(p) => p.num_params(),
            ModelParams::Gat(p) => p.num_params(),
            ModelParams::Sage(p) => p.num_params(),
        }
    }

    /// Flattened f32 master weights (the snapshot payload).
    fn flat(&self) -> Vec<f32> {
        match self {
            ModelParams::Two(p) => p.flat(),
            ModelParams::Gat(p) => p.flat(),
            ModelParams::Sage(p) => p.flat(),
        }
    }

    /// Adam update of the flattened master weights.
    fn adam_step(&mut self, opt: &mut Adam, grad_flat: &[f32]) {
        match self {
            ModelParams::Two(p) => {
                let mut flat = p.flat();
                opt.step(&mut flat, grad_flat);
                p.set_flat(&flat);
            }
            ModelParams::Gat(p) => {
                let mut flat = p.flat();
                opt.step(&mut flat, grad_flat);
                p.set_flat(&flat);
            }
            ModelParams::Sage(p) => {
                let mut flat = p.flat();
                opt.step(&mut flat, grad_flat);
                p.set_flat(&flat);
            }
        }
    }
}

/// One forward+backward step of the configured model on `g` — the full
/// graph or one batch subgraph; the step functions don't care, which is
/// the point of [`GraphView`]. Returns `(loss, correct, grad_flat, logits)`.
#[allow(clippy::too_many_arguments)]
fn run_step(
    params: &ModelParams,
    ops: &mut Ops,
    g: &GraphView,
    x: &[f32],
    xh: &[Half],
    labels: &[u32],
    mask: &[bool],
    dispatch: Dispatch,
    cfg: &TrainConfig,
) -> (f32, usize, Vec<f32>, Vec<f32>) {
    let is_half = cfg.precision.is_half();
    match (params, cfg.model) {
        (ModelParams::Two(p), ModelKind::Gcn) => {
            let out = if is_half {
                gcn::step_half_norm(ops, g, p, xh, labels, mask, dispatch, cfg.gcn_norm)
            } else {
                gcn::step_f32_norm(ops, g, p, x, labels, mask, dispatch, cfg.gcn_norm)
            };
            (out.loss, out.correct, out.grads.flat(), out.logits)
        }
        (ModelParams::Two(p), ModelKind::Gin) => {
            let out = if is_half {
                gin::step_half_lambda(ops, g, p, xh, labels, mask, dispatch, cfg.gin_lambda)
            } else {
                gin::step_f32_dist(ops, g, p, x, labels, mask, dispatch)
            };
            (out.loss, out.correct, out.grads.flat(), out.logits)
        }
        (ModelParams::Gat(p), _) => {
            let out = if is_half {
                gat::step_half(ops, g, p, xh, labels, mask, dispatch)
            } else {
                gat::step_f32_dist(ops, g, p, x, labels, mask, dispatch)
            };
            (out.loss, out.correct, out.grads.flat(), out.logits)
        }
        (ModelParams::Sage(p), _) => {
            let out = if is_half {
                sage::step_half(ops, g, p, xh, labels, mask, dispatch)
            } else {
                sage::step_f32_dist(ops, g, p, x, labels, mask, dispatch)
            };
            (out.loss, out.correct, out.grads.flat(), out.logits)
        }
        _ => unreachable!("parameter kind matches model kind"),
    }
}

/// Neighbor-sampled mini-batch training (`TrainConfig::batch_size`,
/// DESIGN.md §14). Each epoch shuffles the train set into seed batches
/// with a deterministic schedule, samples every batch's k-hop receptive
/// field through a [`DeltaCsr`] overlay (so `--stream-edges` ingests
/// mid-run with no CSR rebuild), gathers the batch's feature and label
/// rows, and steps the same models the full-batch loop drives — just on
/// a batch-local [`GraphView`]. Final accuracies come from one
/// full-graph forward with the trained weights, so they are directly
/// comparable to a full-batch run's.
fn train_minibatch(dev: &DeviceConfig, data: &LoadedDataset, cfg: &TrainConfig) -> TrainReport {
    let batch_size = cfg.batch_size.expect("mini-batch path needs a batch size");
    let dev = &dev.clone().with_exec(cfg.exec);
    let f_in = data.spec.feat;
    let is_half = cfg.precision.is_half();
    let classes = if is_half { pad_feature_len(data.spec.classes, 2) } else { data.spec.classes };

    let x = data.features.clone();
    let xh = if is_half { f32_slice_to_half(&x) } else { Vec::new() };
    let labels = &data.labels;

    // The training graph lives behind a delta overlay: streamed edges
    // ingest in O(log deg) each, and the sampler reads straight through
    // the overlay — the base CSR is never rebuilt mid-training.
    let mut graph = DeltaCsr::new(data.adj.clone());
    let sampler = NeighborSampler::new(cfg.fanout, 2, cfg.seed);
    let train_ids: Vec<VertexId> = data
        .split
        .train
        .iter()
        .enumerate()
        .filter_map(|(v, &t)| t.then_some(v as VertexId))
        .collect();
    assert!(!train_ids.is_empty(), "dataset has no training vertices");

    let mut params = ModelParams::new(cfg.model, f_in, cfg.hidden, classes, cfg.seed);
    let mut opt = Adam::new(params.num_params(), cfg.lr);
    let tuner = match &cfg.tuning {
        Tuning::Off => None,
        Tuning::Auto => Some(Tuner::auto(dev)),
        Tuning::Cached(path) => Some(Tuner::cached(dev, path.as_str())),
    };
    let dispatch = match &tuner {
        Some(t) => Dispatch::tuned(cfg.precision, t),
        None => Dispatch::untuned(cfg.precision),
    }
    .with_fusion(cfg.fusion);

    let mut losses = Vec::with_capacity(cfg.epochs);
    let mut overflow_per_epoch: Vec<overflow::Summary> = Vec::with_capacity(cfg.epochs);
    let mut saturation_per_epoch: Vec<quant::SatSummary> = Vec::with_capacity(cfg.epochs);
    let mut nan_epoch = None;
    let mut logged_overflow = false;
    let mut epoch_time_us = 0.0;
    let mut conversions = 0u64;
    let mut converted = 0u64;
    let mut kernels = 0usize;
    let mut epoch0_log: Vec<halfgnn_sim::KernelStats> = Vec::new();

    // Sampling telemetry (epoch-0 means, run-wide maxima).
    let mut batches_per_epoch = 0usize;
    let mut ep0_vertices = 0usize;
    let mut ep0_edges = 0usize;
    let mut max_batch_vertices = 0usize;
    let mut max_batch_edges = 0usize;
    let mut max_view = (0usize, 0usize);

    // Streaming: ingest halfway through so both regimes are exercised.
    let stream_epoch = (cfg.stream_edges > 0).then_some(cfg.epochs / 2);
    let mut streamed_edges = 0usize;
    let mut counters_at_stream: Option<TunerCounters> = None;

    for epoch in 0..cfg.epochs {
        if stream_epoch == Some(epoch) {
            streamed_edges = stream_random_edges(&mut graph, cfg.stream_edges, cfg.seed);
            counters_at_stream = Some(tuner.as_ref().map(Tuner::counters).unwrap_or_default());
        }
        let schedule = sampler.schedule(&train_ids, batch_size, epoch as u64);
        batches_per_epoch = schedule.len();
        let mut epoch_loss = 0.0f64;
        let mut epoch_seeds = 0usize;
        let mut epoch_ofw = overflow::Summary::default();
        let mut epoch_sat = quant::SatSummary::default();

        for (b, seeds) in schedule.iter().enumerate() {
            let salt = ((epoch as u64) << 32) | b as u64;
            let sub = sampler.sample(&graph, seeds, salt);
            let view = GraphView::batch(&sub, epoch, b);
            max_batch_vertices = max_batch_vertices.max(sub.n());
            max_batch_edges = max_batch_edges.max(sub.nnz());
            max_view = (max_view.0.max(view.n()), max_view.1.max(view.nnz()));
            if epoch == 0 {
                ep0_vertices += sub.n();
                ep0_edges += sub.nnz();
            }

            let mut ops = Ops::new(dev);
            ops.loss_scale = cfg.loss_scale;
            // Batch feature rows come out of the global matrix through a
            // charged gather kernel; label/mask rows are host-side views.
            let (xb, xbh) = if is_half {
                (Vec::new(), ops.gather_rows_half(&xh, f_in, &sub.global_ids))
            } else {
                (ops.gather_rows_f32(&x, f_in, &sub.global_ids), Vec::new())
            };
            let labels_b: Vec<u32> =
                sub.global_ids.iter().map(|&gid| labels[gid as usize]).collect();
            let mask_b: Vec<bool> = (0..sub.n()).map(|i| i < sub.n_seeds).collect();

            overflow::begin();
            quant::begin();
            let (loss, _correct, grad_flat, _logits) = run_step(
                &params,
                &mut ops,
                &view,
                &xb,
                &xbh,
                &labels_b,
                &mask_b,
                dispatch.with_quant_seed(cfg.seed ^ salt),
                cfg,
            );
            merge_saturation(&mut epoch_sat, quant::take());
            let ofw = overflow::take();
            if let Some(ev) = ofw.first.as_ref().filter(|_| !logged_overflow) {
                // Batch-level provenance: which batch of which epoch the
                // run's first non-finite conversion happened in.
                eprintln!(
                    "[halfgnn-nn] {:?}/{:?}: epoch {epoch} batch {b}: first non-finite \
                     conversion: {ev}",
                    cfg.model, cfg.precision
                );
                logged_overflow = true;
            }
            merge_overflow(&mut epoch_ofw, ofw);

            if loss.is_nan() && nan_epoch.is_none() {
                nan_epoch = Some(epoch);
            }
            epoch_loss += loss as f64 * seeds.len() as f64;
            epoch_seeds += seeds.len();
            params.adam_step(&mut opt, &grad_flat);

            if epoch == 0 {
                epoch_time_us += ops.total_time_us();
                conversions += ops.tensor_conversions;
                converted += ops.converted_elems;
                kernels += ops.kernel_count();
                epoch0_log.extend(ops.log.iter().cloned());
            }
        }
        losses.push((epoch_loss / epoch_seeds.max(1) as f64) as f32);
        overflow_per_epoch.push(epoch_ofw);
        saturation_per_epoch.push(epoch_sat);
    }

    // Post-stream tuner activity: the delta's cache-hit story, measured
    // before the final full-graph evaluation adds unrelated keys.
    let post_stream_tuning = match (&tuner, counters_at_stream) {
        (Some(t), Some(at)) => {
            let end = t.counters();
            Some(TunerCounters {
                hits: end.hits - at.hits,
                misses: end.misses - at.misses,
                evaluations: end.evaluations - at.evaluations,
            })
        }
        _ => None,
    };

    // Final metrics: one full-graph forward with the trained weights,
    // against the streamed graph if edges were ingested. This is the one
    // place the overlay materializes — after training, for evaluation.
    let eval_adj = if streamed_edges > 0 { graph.merge() } else { data.adj.clone() };
    let g_full = GraphView::full(&eval_adj);
    let mut eval_ops = Ops::new(dev);
    eval_ops.loss_scale = cfg.loss_scale;
    let (_, _, _, logits) = run_step(
        &params,
        &mut eval_ops,
        &g_full,
        &x,
        &xh,
        labels,
        &data.split.train,
        Dispatch::untuned(cfg.precision).with_fusion(cfg.fusion),
        cfg,
    );
    let final_train_accuracy = Ops::accuracy(&logits, labels, &data.split.train, classes);
    let test_accuracy = Ops::accuracy(&logits, labels, &data.split.test, classes);
    save_snapshot(cfg, f_in, classes, &params);

    TrainReport {
        losses,
        final_train_accuracy,
        test_accuracy,
        nan_epoch,
        epoch_time_us,
        peak_memory_bytes: model_memory_minibatch(data, cfg, classes, max_view.0, max_view.1)
            .peak(),
        conversions_per_epoch: conversions,
        converted_elems_per_epoch: converted,
        kernels_per_epoch: kernels,
        dram_bytes_per_epoch: epoch0_log.iter().map(halfgnn_sim::KernelStats::dram_bytes).sum(),
        kernel_breakdown: kernel_breakdown(&epoch0_log),
        overflow_per_epoch,
        saturation_per_epoch,
        tuning_counters: tuner.as_ref().map(Tuner::counters),
        comms_bytes_per_epoch: 0,
        comms_halo_bytes_per_epoch: 0,
        comms_allreduce_bytes_per_epoch: 0,
        comms_time_us_per_epoch: 0.0,
        link_breakdown: Vec::new(),
        comms_serialized_us: 0.0,
        comms_overlapped_us: 0.0,
        halo_cache_hits: 0,
        halo_cache_misses: 0,
        halo_cache_bytes_saved: 0,
        replay: None,
        replay_epoch_time_us: 0.0,
        sampling: Some(SamplingSummary {
            batches_per_epoch,
            mean_batch_vertices: ep0_vertices as f64 / batches_per_epoch.max(1) as f64,
            mean_batch_edges: ep0_edges as f64 / batches_per_epoch.max(1) as f64,
            max_batch_vertices,
            max_batch_edges,
            fanout: cfg.fanout,
            streamed_edges,
            stream_epoch: (streamed_edges > 0).then(|| stream_epoch.unwrap()),
            post_stream_tuning,
        }),
    }
}

/// Write the trained weights to `cfg.snapshot_path` when set. The save is
/// atomic (tmp + rename); an I/O failure is reported, not fatal — the
/// training result is still valid.
fn save_snapshot(cfg: &TrainConfig, f_in: usize, classes: usize, params: &ModelParams) {
    let Some(path) = &cfg.snapshot_path else { return };
    let snap = crate::snapshot::ModelSnapshot::from_f32(
        cfg.model,
        f_in,
        cfg.hidden,
        classes,
        &params.flat(),
    );
    if let Err(e) = snap.save(std::path::Path::new(path)) {
        eprintln!("[halfgnn-nn] failed to save snapshot to {path}: {e}");
    }
}

/// Insert up to `count` deterministic random undirected edges through the
/// overlay. Returns how many endpoint pairs were actually new.
fn stream_random_edges(graph: &mut DeltaCsr, count: usize, seed: u64) -> usize {
    fn splitmix64(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let n = graph.num_rows() as u64;
    if n < 2 {
        return 0;
    }
    let mut inserted = 0;
    let mut state = splitmix64(seed ^ 0x57ea_u64);
    // Draw with a retry budget: duplicates of existing edges don't count.
    for _ in 0..count * 8 {
        if inserted == count {
            break;
        }
        state = splitmix64(state);
        let u = (state % n) as VertexId;
        state = splitmix64(state);
        let v = (state % n) as VertexId;
        if u != v && graph.insert_undirected(u, v) > 0 {
            inserted += 1;
        }
    }
    inserted
}

/// Merge one batch's overflow window into the epoch summary, keeping the
/// epoch's first event. (`overflow::Summary` lives in `halfgnn-half`,
/// which this refactor leaves untouched — hence a free function.)
fn merge_saturation(acc: &mut quant::SatSummary, s: quant::SatSummary) {
    acc.quantized += s.quantized;
    acc.saturated += s.saturated;
    acc.nonfinite_inputs += s.nonfinite_inputs;
    if acc.first.is_none() {
        acc.first = s.first;
    }
}

fn merge_overflow(acc: &mut overflow::Summary, s: overflow::Summary) {
    acc.conversions += s.conversions;
    acc.overflows += s.overflows;
    acc.inf_propagated += s.inf_propagated;
    acc.nan_propagated += s.nan_propagated;
    if acc.first.is_none() {
        acc.first = s.first;
    }
}

/// Aggregate an epoch's kernel log by kernel name, sorted by total time.
fn kernel_breakdown(log: &[halfgnn_sim::KernelStats]) -> Vec<(String, usize, f64, u64)> {
    let mut agg: std::collections::BTreeMap<&str, (usize, f64, u64)> =
        std::collections::BTreeMap::new();
    for s in log {
        // Composite stats ("a+b") are named by their phases; aggregate on
        // the full composite name.
        let e = agg.entry(s.name.as_str()).or_insert((0, 0.0, 0));
        e.0 += 1;
        e.1 += s.time_us;
        e.2 += s.dram_bytes();
    }
    let mut out: Vec<(String, usize, f64, u64)> =
        agg.into_iter().map(|(k, (n, t, b))| (k.to_string(), n, t, b)).collect();
    out.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    out
}

/// Analytic peak-memory model for Fig. 6.
///
/// State tensors (features, per-layer activations, their gradients, GAT's
/// edge tensors) take the mode's element width; parameters, optimizer
/// state, and the loss take f32. DGL modes additionally carry framework
/// overhead (GNNBench's finding the paper cites in §6.1.2) and the
/// AMP-materialized float copies of promoted tensors.
pub fn model_memory(data: &LoadedDataset, cfg: &TrainConfig, classes: usize) -> MemoryTracker {
    model_memory_shape(data.num_vertices(), data.num_edges(), data.spec.feat, cfg, classes)
}

/// Batch-scaled peak memory for mini-batch runs: the largest batch's
/// working set (the full-batch model evaluated at the batch shape) plus
/// the resident global feature matrix and graph structure the gathers
/// read from.
fn model_memory_minibatch(
    data: &LoadedDataset,
    cfg: &TrainConfig,
    classes: usize,
    batch_n: usize,
    batch_e: usize,
) -> MemoryTracker {
    let mut m = model_memory_shape(batch_n, batch_e, data.spec.feat, cfg, classes);
    let elem = if cfg.precision.is_half() { 2 } else { 4 };
    m.alloc("global_features", data.num_vertices() * data.spec.feat, elem);
    m.alloc("global_csr", data.num_edges() + data.num_vertices() + 1, 4);
    m
}

/// [`model_memory`] evaluated at an explicit graph shape (`n` vertices,
/// `e` edges) so the same accounting serves full graphs and batch
/// subgraphs.
fn model_memory_shape(
    n: usize,
    e: usize,
    f_in: usize,
    cfg: &TrainConfig,
    classes: usize,
) -> MemoryTracker {
    let h = cfg.hidden;
    let c = classes;
    let elem = if cfg.precision.is_half() { 2 } else { 4 };
    let mut m = MemoryTracker::new();

    // Graph structure (COO + CSR), shared by all systems.
    m.alloc("coo", e * 2, 4);
    m.alloc("csr", e + n + 1, 4);
    m.alloc("features", n * f_in, elem);

    // Per-layer state tensors + mirrored gradients (x2).
    let acts: usize = match cfg.model {
        ModelKind::Gcn => n * h * 3 + n * c * 2,
        ModelKind::Gin => n * f_in + n * h * 3 + n * c,
        ModelKind::Gat => n * h * 2 + n * c * 2 + 4 * e + 2 * n,
        ModelKind::Sage => n * f_in + n * h * 4 + n * c * 2,
    };
    m.alloc("activations", acts, elem);
    m.alloc("activation_grads", acts, elem);

    // Parameters + grads + Adam m/v in f32, plus half copies in half modes.
    let pcount: usize = match cfg.model {
        ModelKind::Gcn | ModelKind::Gin => f_in * h + h + h * c + c,
        ModelKind::Gat => f_in * h + 2 * h + h * c + 2 * c,
        ModelKind::Sage => 2 * f_in * h + h + 2 * h * c + c,
    };
    m.alloc("params_master_opt", pcount * 4, 4);
    if cfg.precision.is_half() {
        m.alloc("params_half_copy", pcount, 2);
        // AMP-promoted logits materialize in f32.
        m.alloc("amp_logits_f32", n * c * 2, 4);
    }

    match cfg.precision {
        PrecisionMode::Float | PrecisionMode::HalfNaive => {
            // DGL: framework workspace + caching-allocator slack, plus (for
            // half) the float copies AMP materializes around promoted ops.
            if cfg.precision == PrecisionMode::HalfNaive && cfg.model == ModelKind::Gat {
                m.alloc("amp_exp_f32", 2 * e, 4);
            }
            let overhead = (m.current() / 4) + (8 << 20);
            m.framework_overhead(overhead);
        }
        PrecisionMode::HalfGnn | PrecisionMode::HalfGnnNoDiscretize | PrecisionMode::I8 => {
            // Staging buffer: 2 entries per CTA of |F| halves (§5.2.3).
            let ctas = e.div_ceil(256).max(1);
            m.alloc("staging_buffer", 2 * ctas * (h + 2), 2);
            if cfg.precision == PrecisionMode::I8 {
                // Quantized operand mirror for the widest layer's SpMM
                // input: 1 B codes plus one i16 exponent per 64-element
                // scale block.
                m.alloc("i8_codes", n * h, 1);
                m.alloc("i8_block_exponents", (n * h).div_ceil(64), 2);
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use halfgnn_graph::datasets::Dataset;

    fn quick_cfg(model: ModelKind, precision: PrecisionMode, epochs: usize) -> TrainConfig {
        TrainConfig {
            model,
            precision,
            epochs,
            hidden: 16,
            lr: 0.02,
            seed: 1,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn gcn_float_learns_cora() {
        let data = Dataset::cora().load(42);
        let r = train(&data, &quick_cfg(ModelKind::Gcn, PrecisionMode::Float, 30));
        assert!(r.nan_epoch.is_none());
        assert!(r.final_train_accuracy > 0.75, "train accuracy {}", r.final_train_accuracy);
        assert!(r.test_accuracy > 0.6, "test accuracy {}", r.test_accuracy);
        assert!(r.losses.first().unwrap() > r.losses.last().unwrap());
    }

    #[test]
    fn gcn_halfgnn_matches_float_accuracy() {
        let data = Dataset::cora().load(42);
        let f = train(&data, &quick_cfg(ModelKind::Gcn, PrecisionMode::Float, 30));
        let h = train(&data, &quick_cfg(ModelKind::Gcn, PrecisionMode::HalfGnn, 30));
        assert!(h.nan_epoch.is_none(), "HalfGNN must not NaN");
        assert!(
            (f.final_train_accuracy - h.final_train_accuracy).abs() < 0.05,
            "float {} vs halfgnn {}",
            f.final_train_accuracy,
            h.final_train_accuracy
        );
    }

    #[test]
    fn gcn_i8_tracks_halfgnn_accuracy_with_clean_saturation() {
        let data = Dataset::cora().load(42);
        let h = train(&data, &quick_cfg(ModelKind::Gcn, PrecisionMode::HalfGnn, 30));
        let q = train(&data, &quick_cfg(ModelKind::Gcn, PrecisionMode::I8, 30));
        assert!(q.nan_epoch.is_none(), "I8 must not NaN");
        assert!(
            (h.final_train_accuracy - q.final_train_accuracy).abs() < 0.05,
            "halfgnn {} vs i8 {}",
            h.final_train_accuracy,
            q.final_train_accuracy
        );
        // Per-block scales are derived from each block's own max-abs, so
        // a finite input can never be out of range for its own scale.
        assert!(q.first_saturation().is_none(), "{:?}", q.first_saturation());
        let quantized: u64 = q.saturation_per_epoch.iter().map(|s| s.quantized).sum();
        assert!(quantized > 0, "the I8 run must actually quantize");
        // The non-I8 run never touches the quantizer.
        let hq: u64 = h.saturation_per_epoch.iter().map(|s| s.quantized).sum();
        assert_eq!(hq, 0);
    }

    #[test]
    fn i8_runs_are_a_pure_function_of_the_seed() {
        let data = Dataset::cora().load(42);
        let a = train(&data, &quick_cfg(ModelKind::Gcn, PrecisionMode::I8, 5));
        let b = train(&data, &quick_cfg(ModelKind::Gcn, PrecisionMode::I8, 5));
        assert_eq!(a.losses, b.losses, "identical seeds must replay bitwise");
        let mut cfg = quick_cfg(ModelKind::Gcn, PrecisionMode::I8, 5);
        cfg.seed = 7;
        let c = train(&data, &cfg);
        assert_ne!(a.losses, c.losses, "the seed must actually reach the rounding");
    }

    #[test]
    fn halfgnn_trains_faster_than_naive_half() {
        // Needs a graph big enough to fill more than one scheduling wave
        // (like the paper's G4-G16); tiny Cora hides kernel quality behind
        // launch overheads.
        let data = Dataset::hollywood09().load(42);
        let naive = train(&data, &quick_cfg(ModelKind::Gcn, PrecisionMode::HalfNaive, 2));
        let ours = train(&data, &quick_cfg(ModelKind::Gcn, PrecisionMode::HalfGnn, 2));
        assert!(
            ours.epoch_time_us < naive.epoch_time_us,
            "halfgnn {} vs naive {}",
            ours.epoch_time_us,
            naive.epoch_time_us
        );
    }

    #[test]
    fn half_uses_less_memory_than_float() {
        let data = Dataset::cora().load(42);
        let f = train(&data, &quick_cfg(ModelKind::Gcn, PrecisionMode::Float, 1));
        let h = train(&data, &quick_cfg(ModelKind::Gcn, PrecisionMode::HalfGnn, 1));
        let ratio = f.peak_memory_bytes as f64 / h.peak_memory_bytes as f64;
        assert!(ratio > 1.8, "memory ratio {ratio:.2}");
    }

    #[test]
    fn gin_float_learns() {
        let data = Dataset::citeseer().load(7);
        let r = train(&data, &quick_cfg(ModelKind::Gin, PrecisionMode::Float, 30));
        assert!(r.nan_epoch.is_none());
        assert!(r.final_train_accuracy > 0.7, "accuracy {}", r.final_train_accuracy);
    }

    #[test]
    fn gat_float_learns() {
        let data = Dataset::cora().load(42);
        let r = train(&data, &quick_cfg(ModelKind::Gat, PrecisionMode::Float, 30));
        assert!(r.nan_epoch.is_none());
        assert!(r.final_train_accuracy > 0.7, "accuracy {}", r.final_train_accuracy);
    }

    #[test]
    fn overflow_provenance_is_clean_and_active_on_healthy_half_runs() {
        let data = Dataset::cora().load(42);
        let r = train(&data, &quick_cfg(ModelKind::Gcn, PrecisionMode::HalfGnn, 3));
        assert_eq!(r.overflow_per_epoch.len(), 3);
        assert!(r.first_overflow().is_none(), "Cora has no overflow-grade hubs");
        // The recorder must actually be watching: a half step converts.
        assert!(r.overflow_per_epoch[0].conversions > 0);
    }

    #[test]
    fn overflow_provenance_sees_nothing_in_float_runs() {
        let data = Dataset::cora().load(42);
        let r = train(&data, &quick_cfg(ModelKind::Gcn, PrecisionMode::Float, 2));
        assert!(r.first_overflow().is_none());
        assert_eq!(r.overflow_per_epoch[0].conversions, 0);
    }

    #[test]
    fn fast_exec_reproduces_sim_training_bit_for_bit() {
        // The executor contract end-to-end: a whole training run — SpMM,
        // SDDMM, edge ops, matmuls, Adam — must produce identical losses
        // and accuracy whether kernels run under the cost model or on real
        // threads, at any thread count.
        let data = Dataset::cora().load(42);
        let base = quick_cfg(ModelKind::Gcn, PrecisionMode::HalfGnn, 4);
        let sim = train(&data, &base);
        for threads in [1, 2, 0] {
            let fast = train(
                &data,
                &TrainConfig { exec: ExecMode::fast_with_threads(threads), ..base.clone() },
            );
            assert_eq!(
                sim.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
                fast.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
                "threads={threads}"
            );
            assert_eq!(sim.final_train_accuracy, fast.final_train_accuracy);
            // Fast epochs report measured wall-clock, not modeled time.
            assert!(fast.epoch_time_us > 0.0);
        }
    }

    #[test]
    fn fused_gat_training_saves_dram_and_tracks_the_unfused_losses() {
        let data = Dataset::cora().load(42);
        let base = quick_cfg(ModelKind::Gat, PrecisionMode::HalfGnn, 5);
        let unfused = train(&data, &base);
        let fused = train(&data, &TrainConfig { fusion: true, ..base.clone() });
        // Fusion eliminates intermediate round-trips: fewer launches and
        // strictly less modeled DRAM traffic, with no overflow events.
        assert!(unfused.dram_bytes_per_epoch > 0);
        assert!(
            fused.dram_bytes_per_epoch < unfused.dram_bytes_per_epoch,
            "fused {} vs unfused {}",
            fused.dram_bytes_per_epoch,
            unfused.dram_bytes_per_epoch
        );
        assert!(fused.kernels_per_epoch < unfused.kernels_per_epoch);
        assert!(fused.nan_epoch.is_none());
        assert!(fused.overflow_per_epoch.iter().all(overflow::Summary::is_clean));
        // Same optimization trajectory within half rounding of the
        // re-associated fused reductions.
        for (a, b) in unfused.losses.iter().zip(&fused.losses) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
        // The breakdown's per-kernel bytes must account for the total.
        let sum: u64 = fused.kernel_breakdown.iter().map(|(_, _, _, b)| b).sum();
        assert_eq!(sum, fused.dram_bytes_per_epoch);
    }

    #[test]
    fn sharded_float_training_is_bit_identical_and_meters_comms() {
        // The tentpole's correctness anchor at the trainer level: float
        // sharded runs paste bitwise slices of the single-device kernels
        // and all-reduce exactly (ledger charges only), so every loss of
        // every epoch must be bit-for-bit the shards=1 run — only the
        // comms fields change.
        let data = Dataset::cora().load(42);
        let base = quick_cfg(ModelKind::Gcn, PrecisionMode::Float, 5);
        let single = train(&data, &base);
        assert_eq!(single.comms_bytes_per_epoch, 0, "one device has no interconnect");
        for shards in [2usize, 4] {
            for topology in [Topology::Ring, Topology::AllToAll] {
                let sharded = train(&data, &TrainConfig { shards, topology, ..base.clone() });
                assert_eq!(
                    single.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
                    sharded.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
                    "shards={shards} {topology:?}"
                );
                assert_eq!(single.final_train_accuracy, sharded.final_train_accuracy);
                assert!(sharded.comms_halo_bytes_per_epoch > 0);
                assert!(sharded.comms_allreduce_bytes_per_epoch > 0);
                assert!(sharded.comms_time_us_per_epoch > 0.0);
                assert!(!sharded.link_breakdown.is_empty());
            }
        }
    }

    #[test]
    fn sharded_half_runs_move_half_the_halo_bytes_of_float() {
        // The headline BENCH_pr5 property end-to-end: identical row sets
        // cross the interconnect, at 2 B/element instead of 4. Citeseer's
        // even class count keeps the half pipeline's feature widths equal
        // to float's, so the halo ratio is exactly 2.
        let data = Dataset::citeseer().load(7);
        let mk = |precision| TrainConfig { shards: 4, ..quick_cfg(ModelKind::Gcn, precision, 3) };
        let f = train(&data, &mk(PrecisionMode::Float));
        let h = train(&data, &mk(PrecisionMode::HalfGnn));
        assert!(h.nan_epoch.is_none());
        assert!(h.overflow_per_epoch.iter().all(overflow::Summary::is_clean));
        assert!(h.comms_halo_bytes_per_epoch > 0);
        assert_eq!(
            2 * h.comms_halo_bytes_per_epoch,
            f.comms_halo_bytes_per_epoch,
            "half halo traffic must be exactly half of float's"
        );
        assert!(
            2 * h.comms_allreduce_bytes_per_epoch <= f.comms_allreduce_bytes_per_epoch + 1024,
            "f16-wire all-reduce must move about half the bytes: half {} vs float {}",
            h.comms_allreduce_bytes_per_epoch,
            f.comms_allreduce_bytes_per_epoch
        );
        assert!(h.comms_time_us_per_epoch < f.comms_time_us_per_epoch);
    }

    #[test]
    fn sharded_fast_exec_reproduces_sharded_sim_bit_for_bit() {
        // Executor contract × sharding: per-shard windowed launches, halo
        // gathers, and the discretized f16 all-reduce must be thread-count
        // invariant, so a sharded run under real OS threads reproduces the
        // sharded cost-model run exactly.
        let data = Dataset::cora().load(42);
        let base = TrainConfig {
            shards: 2,
            partition: PartitionStrategy::DegreeBalanced,
            ..quick_cfg(ModelKind::Gcn, PrecisionMode::HalfGnn, 4)
        };
        let sim = train(&data, &base);
        assert!(sim.nan_epoch.is_none());
        for threads in [1, 4] {
            let fast = train(
                &data,
                &TrainConfig { exec: ExecMode::fast_with_threads(threads), ..base.clone() },
            );
            assert_eq!(
                sim.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
                fast.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
                "threads={threads}"
            );
            assert_eq!(sim.final_train_accuracy, fast.final_train_accuracy);
        }
    }

    #[test]
    fn every_model_trains_sharded_without_overflow() {
        // All four architectures must survive the sharded half dispatch:
        // finite losses, zero overflow events, and nonzero metered comms.
        let data = Dataset::cora().load(42);
        for model in [ModelKind::Gcn, ModelKind::Gin, ModelKind::Gat, ModelKind::Sage] {
            let r = train(
                &data,
                &TrainConfig { shards: 3, ..quick_cfg(model, PrecisionMode::HalfGnn, 3) },
            );
            assert!(r.nan_epoch.is_none(), "{model:?} NaNed sharded");
            assert!(
                r.overflow_per_epoch.iter().all(overflow::Summary::is_clean),
                "{model:?} overflowed sharded"
            );
            assert!(r.comms_bytes_per_epoch > 0, "{model:?} metered no comms");
        }
    }

    #[test]
    fn one5d_float_training_is_bit_identical_and_charges_less_halo() {
        // The tentpole's trainer-level contract: the 1.5D partition runs
        // the exact DegreeBalanced kernel windows (float losses bitwise
        // the single-device run's) while the group-union wire charge
        // strictly undercuts 1D's per-shard halo replication.
        let data = Dataset::cora().load(42);
        let base = quick_cfg(ModelKind::Gcn, PrecisionMode::Float, 4);
        let single = train(&data, &base);
        let balanced = train(
            &data,
            &TrainConfig {
                shards: 4,
                partition: PartitionStrategy::DegreeBalanced,
                ..base.clone()
            },
        );
        let one5d = train(
            &data,
            &TrainConfig {
                shards: 4,
                partition: PartitionStrategy::OneP5D { c: 2 },
                ..base.clone()
            },
        );
        assert_eq!(bits(&single.losses), bits(&one5d.losses), "1.5D float diverged");
        assert_eq!(single.final_train_accuracy, one5d.final_train_accuracy);
        assert!(one5d.comms_halo_bytes_per_epoch > 0);
        assert!(
            one5d.comms_halo_bytes_per_epoch < balanced.comms_halo_bytes_per_epoch,
            "1.5D halo {} must undercut 1D's {}",
            one5d.comms_halo_bytes_per_epoch,
            balanced.comms_halo_bytes_per_epoch
        );
        // Same cuts ⇒ same all-reduce payloads.
        assert_eq!(one5d.comms_allreduce_bytes_per_epoch, balanced.comms_allreduce_bytes_per_epoch);
    }

    #[test]
    fn every_model_trains_on_the_one5d_partition() {
        let data = Dataset::cora().load(42);
        for model in [ModelKind::Gcn, ModelKind::Gin, ModelKind::Gat, ModelKind::Sage] {
            let r = train(
                &data,
                &TrainConfig {
                    shards: 4,
                    partition: PartitionStrategy::OneP5D { c: 2 },
                    ..quick_cfg(model, PrecisionMode::HalfGnn, 3)
                },
            );
            assert!(r.nan_epoch.is_none(), "{model:?} NaNed on 1.5D");
            assert!(
                r.overflow_per_epoch.iter().all(overflow::Summary::is_clean),
                "{model:?} overflowed on 1.5D"
            );
            assert!(r.comms_bytes_per_epoch > 0, "{model:?} metered no comms");
        }
    }

    #[test]
    fn overlap_beats_serialized_and_the_halo_cache_warms_up() {
        // Satellite: the overlap model and cache counters surface in the
        // report. Cache counters are read at the LAST epoch (steady state:
        // Cora's input features are static, so every halo row hits), while
        // the timeline snapshot is epoch 0 — the prefetch model must hide
        // at least one halo under compute on every sharded config.
        // Note shards 4 for 1.5D: at shards == c the single replication
        // group owns every row, halo traffic is zero, and there is nothing
        // left to hide (overlapped == serialized by construction).
        let data = Dataset::cora().load(42);
        for (shards, partition) in
            [(2, PartitionStrategy::DegreeBalanced), (4, PartitionStrategy::OneP5D { c: 2 })]
        {
            let r = train(
                &data,
                &TrainConfig {
                    shards,
                    partition,
                    ..quick_cfg(ModelKind::Gcn, PrecisionMode::HalfGnn, 3)
                },
            );
            assert!(
                r.comms_overlapped_us < r.comms_serialized_us,
                "{partition:?}: overlapped {} must beat serialized {}",
                r.comms_overlapped_us,
                r.comms_serialized_us
            );
            // Steady state (last epoch): the static input-feature rows are
            // served locally, while activation/gradient exchanges change
            // every step and must keep paying wire bytes.
            assert!(r.halo_cache_hits > 0, "{partition:?}: static features must hit");
            assert!(r.halo_cache_misses > 0, "{partition:?}: changed rows must refetch");
            assert!(r.halo_cache_bytes_saved > 0, "{partition:?}");
        }
        // Single-device runs have no interconnect and no cache.
        let single = train(&data, &quick_cfg(ModelKind::Gcn, PrecisionMode::HalfGnn, 2));
        assert_eq!(single.comms_serialized_us, 0.0);
        assert_eq!((single.halo_cache_hits, single.halo_cache_misses), (0, 0));
    }

    #[test]
    fn replay_is_bit_identical_under_the_one5d_partition() {
        // Capture/replay × 1.5D: halo gathers always run (the cache only
        // changes the ledger), so the captured kernel sequence replays
        // bit-for-bit under the new partition too.
        let data = Dataset::cora().load(42);
        let base = TrainConfig {
            shards: 4,
            partition: PartitionStrategy::OneP5D { c: 2 },
            ..quick_cfg(ModelKind::Gcn, PrecisionMode::HalfGnn, 4)
        };
        let eager = train(&data, &base);
        let replay = train(&data, &TrainConfig { replay: true, ..base });
        assert_eq!(bits(&eager.losses), bits(&replay.losses), "1.5D replay diverged");
        assert!(replay.replay.is_some());
    }

    #[test]
    fn odd_class_count_is_padded_for_half() {
        // Cora has 7 classes; half paths pad to 8 and still train.
        let data = Dataset::cora().load(42);
        let r = train(&data, &quick_cfg(ModelKind::Gcn, PrecisionMode::HalfGnn, 10));
        assert!(r.nan_epoch.is_none());
        assert!(r.final_train_accuracy > 0.4);
    }

    fn bits(losses: &[f32]) -> Vec<u32> {
        losses.iter().map(|l| l.to_bits()).collect()
    }

    #[test]
    fn replay_is_bit_identical_to_eager_for_every_model() {
        // The tentpole contract: epoch 0 captures, every later epoch
        // replays pre-resolved plans with launch overhead stripped — and
        // the losses stay bit-for-bit the eager run's for all four
        // architectures in both precisions.
        let data = Dataset::cora().load(42);
        for model in [ModelKind::Gcn, ModelKind::Gin, ModelKind::Gat, ModelKind::Sage] {
            for precision in [PrecisionMode::Float, PrecisionMode::HalfGnn] {
                let base = quick_cfg(model, precision, 4);
                let eager = train(&data, &base);
                assert!(eager.replay.is_none(), "eager runs must not report a replay summary");
                let replay = train(&data, &TrainConfig { replay: true, ..base });
                assert_eq!(
                    bits(&eager.losses),
                    bits(&replay.losses),
                    "{model:?} {precision:?} replay diverged"
                );
                assert_eq!(eager.final_train_accuracy, replay.final_train_accuracy);
                let s = replay.replay.expect("replay runs must report a summary");
                assert!(s.nodes > 0 && s.buffers > 0, "{model:?} captured an empty graph");
                assert!(
                    s.saved_cycles > 0.0,
                    "{model:?} {precision:?} replay stripped no launch overhead"
                );
                assert!(
                    s.peak_bytes > 0 && s.peak_bytes <= s.eager_bytes,
                    "{model:?} arena peak {} vs eager {}",
                    s.peak_bytes,
                    s.eager_bytes
                );
                // Replayed epochs are modeled strictly cheaper than the
                // capture epoch: same kernels minus the launch charges.
                assert!(
                    replay.replay_epoch_time_us > 0.0
                        && replay.replay_epoch_time_us < replay.epoch_time_us,
                    "{model:?} {precision:?} replay epoch {} vs capture epoch {}",
                    replay.replay_epoch_time_us,
                    replay.epoch_time_us
                );
            }
        }
    }

    #[test]
    fn replay_arena_plans_smaller_buffers_in_half() {
        // The arena's peak over the half pipeline's 2 B/element buffers
        // must come in well under the float pipeline's.
        let data = Dataset::cora().load(42);
        let mk =
            |precision| TrainConfig { replay: true, ..quick_cfg(ModelKind::Gcn, precision, 2) };
        let f = train(&data, &mk(PrecisionMode::Float)).replay.unwrap();
        let h = train(&data, &mk(PrecisionMode::HalfGnn)).replay.unwrap();
        let ratio = f.peak_bytes as f64 / h.peak_bytes as f64;
        assert!(
            ratio > 1.5,
            "arena peak ratio {ratio:.2} (float {} half {})",
            f.peak_bytes,
            h.peak_bytes
        );
        // Reuse must actually bite: the plan packs strictly tighter than
        // one-slab-per-buffer for both precisions.
        assert!(f.peak_bytes < f.eager_bytes);
        assert!(h.peak_bytes < h.eager_bytes);
    }

    #[test]
    fn replay_matches_eager_sharded_and_under_fast_exec() {
        // Replay × shards × real threads: plans are captured and consumed
        // per shard window, so sharded replay — under the cost model and
        // under real OS threads at any count — must reproduce the eager
        // sharded run exactly.
        let data = Dataset::cora().load(42);
        for shards in [1usize, 4] {
            let base =
                TrainConfig { shards, ..quick_cfg(ModelKind::Gcn, PrecisionMode::HalfGnn, 4) };
            let eager = train(&data, &base);
            let sim = train(&data, &TrainConfig { replay: true, ..base.clone() });
            assert_eq!(bits(&eager.losses), bits(&sim.losses), "sim shards={shards}");
            for threads in [1, 4] {
                let fast = train(
                    &data,
                    &TrainConfig {
                        replay: true,
                        exec: ExecMode::fast_with_threads(threads),
                        ..base.clone()
                    },
                );
                assert_eq!(
                    bits(&eager.losses),
                    bits(&fast.losses),
                    "fast shards={shards} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn replay_freezes_tuner_lookups_after_capture() {
        // Replay epochs resolve zero kernel plans, so the tuner is
        // consulted only during the capture epoch: an eager tuned run
        // looks up the same keys every epoch, a replay run exactly once.
        let data = Dataset::cora().load(42);
        let epochs = 5;
        let base = TrainConfig {
            tuning: Tuning::Auto,
            ..quick_cfg(ModelKind::Gcn, PrecisionMode::HalfGnn, epochs)
        };
        let eager = train(&data, &base);
        let replay = train(&data, &TrainConfig { replay: true, ..base });
        assert_eq!(bits(&eager.losses), bits(&replay.losses), "tuned replay diverged");
        let e = eager.tuning_counters.unwrap();
        let r = replay.tuning_counters.unwrap();
        // Same first epoch ⇒ same misses and evaluations; after that the
        // replay run never touches the cache again.
        assert_eq!(e.misses, r.misses);
        assert_eq!(e.evaluations, r.evaluations);
        assert_eq!(
            e.hits + e.misses,
            epochs as u64 * (r.hits + r.misses),
            "eager {e:?} vs replay {r:?}"
        );
    }
}

#[cfg(test)]
mod minibatch_tests {
    use super::*;
    use halfgnn_graph::datasets::Dataset;

    fn mb_cfg(precision: PrecisionMode, epochs: usize) -> TrainConfig {
        TrainConfig {
            model: ModelKind::Gcn,
            precision,
            epochs,
            hidden: 16,
            lr: 0.02,
            seed: 1,
            batch_size: Some(128),
            fanout: 10,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn minibatch_reaches_full_batch_accuracy() {
        // The acceptance criterion: sampled training lands within ε of the
        // full-batch accuracies, in float and in half.
        let data = Dataset::cora().load(42);
        for precision in [PrecisionMode::Float, PrecisionMode::HalfGnn] {
            let base = TrainConfig { batch_size: None, ..mb_cfg(precision, 20) };
            let full = train(&data, &base);
            let mb = train(&data, &mb_cfg(precision, 20));
            assert!(mb.nan_epoch.is_none(), "{precision:?} NaNed");
            assert!(
                (full.final_train_accuracy - mb.final_train_accuracy).abs() < 0.08,
                "{precision:?} train: full {} vs mini-batch {}",
                full.final_train_accuracy,
                mb.final_train_accuracy
            );
            assert!(
                (full.test_accuracy - mb.test_accuracy).abs() < 0.08,
                "{precision:?} test: full {} vs mini-batch {}",
                full.test_accuracy,
                mb.test_accuracy
            );
            let s = mb.sampling.expect("mini-batch runs report sampling");
            assert_eq!(
                s.batches_per_epoch,
                data.split.train.iter().filter(|&&t| t).count().div_ceil(128)
            );
            assert!(s.max_batch_vertices > 0 && s.mean_batch_edges > 0.0);
            assert!(full.sampling.is_none(), "full-batch runs must not report sampling");
        }
    }

    #[test]
    fn streaming_inserts_mid_training_stay_cache_hit() {
        // The delta-CSR claim, measured: edges ingested halfway through
        // training (no CSR rebuild — the overlay's base is untouched) and
        // the tuner's per-batch-shape keys keep hitting after the delta.
        let data = Dataset::cora().load(42);
        let cfg = TrainConfig {
            stream_edges: 200,
            tuning: Tuning::Auto,
            ..mb_cfg(PrecisionMode::HalfGnn, 8)
        };
        let r = train(&data, &cfg);
        assert!(r.nan_epoch.is_none());
        assert!(r.overflow_per_epoch.iter().all(overflow::Summary::is_clean));
        let s = r.sampling.expect("sampling summary");
        assert_eq!(s.streamed_edges, 200, "every drawn edge should be new on Cora");
        assert_eq!(s.stream_epoch, Some(4));
        let post = s.post_stream_tuning.expect("tuned streaming run measures post-delta cache");
        let hit_rate = post.hits as f64 / (post.hits + post.misses).max(1) as f64;
        assert!(
            hit_rate > 0.5,
            "post-delta tuner hit rate {hit_rate:.2} ({} hits, {} misses)",
            post.hits,
            post.misses
        );
    }

    #[test]
    fn minibatch_fast_exec_is_bit_identical_to_sim() {
        // Sampling is keyed (order/thread independent) and the executor
        // contract holds per batch, so the whole mini-batch run must be
        // bitwise reproducible across backends and thread counts.
        let data = Dataset::cora().load(42);
        let base = mb_cfg(PrecisionMode::HalfGnn, 3);
        let sim = train(&data, &base);
        for threads in [1, 4] {
            let fast = train(
                &data,
                &TrainConfig { exec: ExecMode::fast_with_threads(threads), ..base.clone() },
            );
            assert_eq!(
                sim.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
                fast.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
                "threads={threads}"
            );
            assert_eq!(sim.final_train_accuracy, fast.final_train_accuracy);
        }
    }

    #[test]
    fn every_model_trains_minibatch_half_cleanly() {
        let data = Dataset::cora().load(42);
        for model in [ModelKind::Gcn, ModelKind::Gin, ModelKind::Gat, ModelKind::Sage] {
            let r = train(&data, &TrainConfig { model, ..mb_cfg(PrecisionMode::HalfGnn, 3) });
            assert!(r.nan_epoch.is_none(), "{model:?} NaNed mini-batch");
            assert!(
                r.overflow_per_epoch.iter().all(overflow::Summary::is_clean),
                "{model:?} overflowed mini-batch"
            );
            assert!(r.overflow_per_epoch[0].conversions > 0, "{model:?} recorder inactive");
        }
    }

    #[test]
    fn invalid_configs_are_rejected_by_name() {
        let ok = TrainConfig::default();
        assert_eq!(ok.validate(), Ok(()));
        let one5d = PartitionStrategy::OneP5D { c: 2 };
        let cases: [(TrainConfig, ConfigError); 12] = [
            (
                TrainConfig { replay: true, batch_size: Some(64), ..ok.clone() },
                ConfigError::ReplayWithMiniBatch(CaptureRefused::MiniBatchSchedule),
            ),
            (
                TrainConfig { shards: 2, batch_size: Some(64), ..ok.clone() },
                ConfigError::ShardedMiniBatch,
            ),
            (TrainConfig { stream_edges: 10, ..ok.clone() }, ConfigError::StreamingNeedsMiniBatch),
            (TrainConfig { batch_size: Some(0), ..ok.clone() }, ConfigError::ZeroBatchSize),
            (
                TrainConfig { batch_size: Some(64), fanout: 0, ..ok.clone() },
                ConfigError::ZeroFanout,
            ),
            (
                TrainConfig { partition: one5d, replication: Some(0), ..ok.clone() },
                ConfigError::ZeroReplication,
            ),
            (
                TrainConfig { shards: 4, replication: Some(2), ..ok.clone() },
                ConfigError::ReplicationRequiresOneP5D,
            ),
            (
                TrainConfig { shards: 3, partition: one5d, ..ok.clone() },
                ConfigError::ReplicationDoesNotDivideShards,
            ),
            // --i8-block outside i8 mode is named even when the value is
            // itself bad: the mode mismatch is the root cause.
            (TrainConfig { i8_block: Some(64), ..ok.clone() }, ConfigError::QuantBlockWithoutI8),
            (
                TrainConfig { precision: PrecisionMode::I8, i8_block: Some(48), ..ok.clone() },
                ConfigError::BadQuantBlock,
            ),
            (
                TrainConfig { precision: PrecisionMode::I8, i8_block: Some(0), ..ok.clone() },
                ConfigError::BadQuantBlock,
            ),
            (
                TrainConfig { precision: PrecisionMode::I8, i8_block: Some(512), ..ok.clone() },
                ConfigError::BadQuantBlock,
            ),
        ];
        for (cfg, want) in cases {
            assert_eq!(cfg.validate(), Err(want));
        }
        // Legal i8 block sizes pass in i8 mode.
        for b in [16usize, 64, 256] {
            let cfg = TrainConfig { precision: PrecisionMode::I8, i8_block: Some(b), ..ok.clone() };
            assert_eq!(cfg.validate(), Ok(()), "--i8-block {b}");
        }
        // Legal 1.5D configs pass, and --replication folds into the
        // strategy's factor.
        let good = TrainConfig { shards: 4, partition: one5d, ..ok.clone() };
        assert_eq!(good.validate(), Ok(()));
        let overridden =
            TrainConfig { shards: 4, partition: one5d, replication: Some(4), ..ok.clone() };
        assert_eq!(overridden.validate(), Ok(()));
        assert_eq!(overridden.effective_partition(), PartitionStrategy::OneP5D { c: 4 });
    }

    #[test]
    #[should_panic(expected = "invalid config: --replay is incompatible with --batch-size")]
    fn replay_with_batch_size_panics_with_the_named_error() {
        // Never the ExecGraph divergence panic: the config is refused up
        // front with the capture-refusal reason in the message.
        let data = Dataset::cora().load(42);
        train(&data, &TrainConfig { replay: true, ..mb_cfg(PrecisionMode::Float, 2) });
    }
}

#[cfg(test)]
mod loss_scale_tests {
    use super::*;
    use halfgnn_graph::datasets::Dataset;

    #[test]
    fn loss_scaling_changes_nothing_when_gradients_are_healthy() {
        let data = Dataset::cora().load(42);
        let base = TrainConfig {
            model: ModelKind::Gcn,
            precision: PrecisionMode::HalfGnn,
            epochs: 8,
            ..TrainConfig::default()
        };
        let unscaled = train(&data, &base);
        let scaled = train(&data, &TrainConfig { loss_scale: 128.0, ..base.clone() });
        assert!(unscaled.nan_epoch.is_none() && scaled.nan_epoch.is_none());
        // Same trajectory within FP16 rounding of the scaled backward.
        for (a, b) in unscaled.losses.iter().zip(&scaled.losses) {
            assert!((a - b).abs() < 0.15 + 0.05 * a.abs(), "{a} vs {b}");
        }
    }

    #[test]
    fn loss_scaling_rescues_underflowing_gradients() {
        // A large masked set makes per-vertex loss gradients ~1/|train| ~
        // 4e-4; dividing across a wide hidden layer pushes weight-gradient
        // contributions below the FP16 subnormal range. Scale 1024 keeps
        // them alive. We check the *gradient signal*, not luck: the scaled
        // run must decrease loss at least as well as the unscaled one.
        let data = Dataset::pubmed().load(9);
        let base = TrainConfig {
            model: ModelKind::Gcn,
            precision: PrecisionMode::HalfGnn,
            epochs: 12,
            lr: 0.005,
            ..TrainConfig::default()
        };
        let unscaled = train(&data, &base);
        let scaled = train(&data, &TrainConfig { loss_scale: 1024.0, ..base.clone() });
        assert!(scaled.nan_epoch.is_none(), "scale 1024 must not overflow the backward");
        let drop_unscaled = unscaled.losses[0] - unscaled.losses.last().unwrap();
        let drop_scaled = scaled.losses[0] - scaled.losses.last().unwrap();
        assert!(
            drop_scaled >= 0.8 * drop_unscaled,
            "scaled run should train at least comparably: {drop_scaled} vs {drop_unscaled}"
        );
    }
}
