//! Forward-only GCN paths for the serving engine.
//!
//! These run *exactly* the forward half of [`crate::gcn::step_f32_norm`] /
//! [`crate::gcn::step_half_norm`] — same kernel sequence, same DGL-style
//! layer-1 dispatch, same overflow sites — and stop at the logits. No loss,
//! no gradients, no optimizer state, so the arena planner sees only the
//! inference working set. A unit test pins the logits bitwise against the
//! training step's, which is what lets `halfgnn-serve` claim its batched
//! outputs match what training-side evaluation would compute.

use crate::graphdata::GraphView;
use crate::models::{gcn_agg_f32, gcn_agg_half, Dispatch, GcnNorm};
use crate::params::TwoLayerParams;
use halfgnn_half::Half;
use halfgnn_tensor::Ops;

/// Forward-only f32 GCN: logits for every vertex of `g`, row-major
/// `n × classes`.
pub fn gcn_forward_f32(
    ops: &mut Ops,
    g: &GraphView,
    p: &TwoLayerParams,
    x: &[f32],
    d: Dispatch<'_>,
    norm: GcnNorm,
) -> Vec<f32> {
    let n = g.n();
    let (f_in, h, c) = (p.f_in, p.hidden, p.classes);
    let aggregate_first = f_in <= h;

    let a1 = if aggregate_first {
        let ax = gcn_agg_f32(ops, g, x, f_in, norm, d);
        let z1 = ops.gemm_f32(&ax, false, &p.w1, false, n, f_in, h);
        ops.bias_add_f32(&z1, &p.b1)
    } else {
        let z1 = ops.gemm_f32(x, false, &p.w1, false, n, f_in, h);
        let z1 = ops.bias_add_f32(&z1, &p.b1);
        gcn_agg_f32(ops, g, &z1, h, norm, d)
    };
    let h1 = ops.relu_f32(&a1);
    let z2 = ops.gemm_f32(&h1, false, &p.w2, false, n, h, c);
    let z2 = ops.bias_add_f32(&z2, &p.b2);
    gcn_agg_f32(ops, g, &z2, c, norm, d)
}

/// Forward-only mixed-precision GCN: half state tensors through the
/// dispatch's kernels, f32 master weights cast per call, logits promoted
/// to f32 (the same charged conversion the training step pays).
pub fn gcn_forward_half(
    ops: &mut Ops,
    g: &GraphView,
    p: &TwoLayerParams,
    x: &[Half],
    d: Dispatch<'_>,
    norm: GcnNorm,
) -> Vec<f32> {
    let n = g.n();
    let (f_in, h, c) = (p.f_in, p.hidden, p.classes);

    let w1h = ops.to_half(&p.w1);
    let b1h = ops.to_half(&p.b1);
    let w2h = ops.to_half(&p.w2);
    let b2h = ops.to_half(&p.b2);

    let aggregate_first = f_in <= h;

    let layer1 = halfgnn_half::overflow::site("gcn.layer1");
    let a1 = if aggregate_first {
        let ax = gcn_agg_half(ops, g, x, f_in, norm, d);
        let z1 = ops.gemm_half(&ax, false, &w1h, false, n, f_in, h);
        ops.bias_add_half(&z1, &b1h)
    } else {
        let z1 = ops.gemm_half(x, false, &w1h, false, n, f_in, h);
        let z1 = ops.bias_add_half(&z1, &b1h);
        gcn_agg_half(ops, g, &z1, h, norm, d)
    };
    drop(layer1);
    let layer2 = halfgnn_half::overflow::site("gcn.layer2");
    let h1 = ops.relu_half(&a1);
    let z2 = ops.gemm_half(&h1, false, &w2h, false, n, h, c);
    let z2 = ops.bias_add_half(&z2, &b2h);
    let out = gcn_agg_half(ops, g, &z2, c, norm, d);
    drop(layer2);

    ops.to_f32(&out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gcn::{step_f32_norm, step_half_norm};
    use crate::models::PrecisionMode;
    use halfgnn_graph::{gen, Csr};
    use halfgnn_sim::DeviceConfig;

    fn toy() -> (Csr, Vec<f32>, Vec<u32>, Vec<bool>) {
        let (edges, labels) = gen::sbm(&[16, 16], 0.4, 0.03, 7);
        let csr = Csr::from_edges(32, 32, &edges).symmetrized_with_self_loops();
        let x = halfgnn_graph::features::class_features(&labels, 2, 8, 1.0, 0.2, 11);
        let mask = vec![true; 32];
        (csr, x, labels, mask)
    }

    #[test]
    fn forward_only_logits_match_the_training_step_bitwise() {
        let dev = DeviceConfig::a100_like();
        let (csr, x, labels, mask) = toy();
        let g = GraphView::full(&csr);
        let p = TwoLayerParams::new(8, 6, 2, 1);
        for norm in [GcnNorm::Right, GcnNorm::Left, GcnNorm::Both] {
            let d = Dispatch::untuned(PrecisionMode::Float);
            let mut ops = Ops::new(&dev);
            let fwd = gcn_forward_f32(&mut ops, &g, &p, &x, d, norm);
            let step = step_f32_norm(&mut ops, &g, &p, &x, &labels, &mask, d, norm);
            assert_eq!(
                fwd.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                step.logits.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{norm:?}: f32 forward diverged from the step"
            );
        }
    }

    #[test]
    fn half_forward_only_logits_match_the_training_step_bitwise() {
        let dev = DeviceConfig::a100_like();
        let (csr, x, labels, mask) = toy();
        let g = GraphView::full(&csr);
        let p = TwoLayerParams::new(8, 6, 2, 1);
        let xh: Vec<Half> = x.iter().map(|&v| Half::from_f32(v)).collect();
        for mode in [PrecisionMode::HalfGnn, PrecisionMode::HalfNaive] {
            let d = Dispatch::untuned(mode);
            let mut ops = Ops::new(&dev);
            let fwd = gcn_forward_half(&mut ops, &g, &p, &xh, d, GcnNorm::Right);
            let step = step_half_norm(&mut ops, &g, &p, &xh, &labels, &mask, d, GcnNorm::Right);
            assert_eq!(
                fwd.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                step.logits.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{mode:?}: half forward diverged from the step"
            );
        }
    }
}
