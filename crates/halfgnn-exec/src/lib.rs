//! Epoch capture/replay execution graph — the repo's CUDA-graph analog.
//!
//! A GNN training epoch launches the same kernel sequence every time: the
//! graph is static, the model is static, so the DAG of kernel launches is
//! a *value*, not a side effect of model code. This crate makes it one.
//!
//! During **capture** (epoch 0), the dispatch layer records every kernel
//! launch — op name, resolved [`KernelPlan`], buffer identities, shard
//! window — into an [`ExecGraph`] via [`ExecCtx::record_node`] /
//! [`ExecCtx::record_plan`]. After [`ExecCtx::seal`], every later epoch is
//! a **replay**: dispatch pulls the pre-resolved plans back in capture
//! order ([`ExecCtx::next_spmm_plan`] and friends) with zero tuner-cache
//! lookups, and the executor strips the per-launch overhead that capture
//! already charged (the cycles saved accumulate in
//! [`ExecCtx::add_saved_cycles`]).
//!
//! On top of the captured graph, [`arena`] runs a buffer-lifetime analysis
//! (first-def/last-use intervals, linear-scan slab assignment) so
//! intermediates share memory; the resulting `peak_bytes` is the
//! first-class memory metric surfaced in `TrainReport` and the PR6 bench.
//!
//! Buffer identity is by address: safe Rust guarantees that two live
//! slices with the same `(ptr, len)` are the same allocation, and an
//! address that reappears as a *kernel output* means the previous `Vec`
//! there was dropped — so outputs always mint a fresh buffer id and
//! overwrite the address map. Inputs whose address was never produced by
//! a captured kernel (parameters, input features, pasted globals in
//! sharded mode) are **external**: they live for the whole epoch and are
//! excluded from the arena, but counted separately so reports stay honest.

pub mod arena;

use halfgnn_tune::plan::{AttnPlan, KernelPlan, SddmmPlan, SpmmPlan};
use std::cell::RefCell;
use std::collections::HashMap;

/// Identity of a captured buffer (index into [`ExecGraph::buffers`]).
pub type BufId = usize;

/// Why a capture request was refused up front instead of letting the
/// replay stream diverge into the node/plan-mismatch panic later.
///
/// Capture assumes the epoch's kernel sequence is a fixed value. A
/// configuration that breaks that assumption must be rejected *by name*
/// at config-validation time — never discovered as a divergence panic
/// mid-epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CaptureRefused {
    /// Mini-batch training resamples a different subgraph every batch, so
    /// no single captured kernel sequence replays: `--replay` is
    /// incompatible with `--batch-size`.
    MiniBatchSchedule,
    /// Serving with a batch window above 1 coalesces a different request
    /// set (hence a different subgraph shape) into every launch, so no
    /// steady-state kernel sequence exists to capture: serve `--replay`
    /// requires `--batch-window 1`.
    DynamicBatchShape,
}

impl std::fmt::Display for CaptureRefused {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptureRefused::MiniBatchSchedule => write!(
                f,
                "capture refused: mini-batch sampling (--batch-size) changes the kernel \
                 sequence every batch, so an epoch cannot be captured for --replay"
            ),
            CaptureRefused::DynamicBatchShape => write!(
                f,
                "capture refused: a serve batch window above 1 coalesces a different \
                 request set (and subgraph shape) into every launch, so no steady-state \
                 sequence can be captured for --replay; use --batch-window 1"
            ),
        }
    }
}

impl std::error::Error for CaptureRefused {}

/// A buffer as seen at a kernel launch: raw address + byte length. Only
/// used transiently during capture — the address is never dereferenced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BufRef {
    pub addr: usize,
    pub bytes: usize,
}

/// Capture-time identity of a slice.
pub fn buf_ref<T>(s: &[T]) -> BufRef {
    BufRef { addr: s.as_ptr() as usize, bytes: std::mem::size_of_val(s) }
}

/// Lifetime record for one captured buffer.
#[derive(Clone, Copy, Debug)]
pub struct BufInfo {
    /// Allocation size in bytes.
    pub bytes: usize,
    /// True when the buffer was first seen as an *input* — it predates the
    /// captured epoch (parameters, features) and is excluded from the
    /// arena.
    pub external: bool,
    /// Node index that produced this buffer (`None` for external).
    pub def: Option<usize>,
    /// Last node index that read or wrote it.
    pub last_use: usize,
}

/// One captured kernel launch.
#[derive(Clone, Debug)]
pub struct Node {
    /// Kernel family name (matches the `KernelStats` name prefix).
    pub op: &'static str,
    /// Buffers read.
    pub inputs: Vec<BufId>,
    /// Buffers written (always freshly minted ids).
    pub outputs: Vec<BufId>,
    /// Shard row window `[lo, hi)` when the launch was windowed.
    pub window: Option<(usize, usize)>,
}

/// The captured epoch: every launch, every buffer lifetime, and the
/// resolved kernel plans in resolution order.
#[derive(Clone, Debug, Default)]
pub struct ExecGraph {
    pub nodes: Vec<Node>,
    pub buffers: Vec<BufInfo>,
    /// Plans in the order dispatch resolved them during capture. Replay
    /// consumes this stream with its own cursor — plan resolution is not
    /// 1:1 with nodes (a fused-attention plan is resolved once, then
    /// several launches run under it).
    pub plans: Vec<KernelPlan>,
}

impl ExecGraph {
    /// Sum of non-external buffer bytes: what an eager framework that
    /// pins every intermediate for the backward pass would hold.
    pub fn eager_bytes(&self) -> usize {
        self.buffers.iter().filter(|b| !b.external).map(|b| b.bytes).sum()
    }

    /// Sum of external (epoch-lifetime) buffer bytes.
    pub fn external_bytes(&self) -> usize {
        self.buffers.iter().filter(|b| b.external).map(|b| b.bytes).sum()
    }
}

/// What one replayed epoch looked like — surfaced in `TrainReport`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ReplaySummary {
    /// Captured kernel launches per epoch.
    pub nodes: usize,
    /// Kernel plans resolved during capture (consumed verbatim on replay).
    pub plans: usize,
    /// Distinct buffers seen (external + intermediate).
    pub buffers: usize,
    /// Arena footprint: bytes of intermediate memory after lifetime-exact
    /// slab reuse.
    pub peak_bytes: usize,
    /// No-reuse baseline: every intermediate held simultaneously.
    pub eager_bytes: usize,
    /// Epoch-lifetime buffers (params, features) outside the arena.
    pub external_bytes: usize,
    /// Modeled cycles saved per replay epoch by not re-paying per-launch
    /// overhead.
    pub saved_cycles: f64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Capture,
    Replay,
}

struct State {
    phase: Phase,
    graph: ExecGraph,
    /// `(addr, bytes)` → current buffer id at that address.
    addr_map: HashMap<BufRef, BufId>,
    plan_cursor: usize,
    saved_cycles: f64,
}

/// Shared capture/replay state threaded through `Ops` and `Dispatch`.
pub struct ExecCtx {
    state: RefCell<State>,
}

impl Default for ExecCtx {
    fn default() -> Self {
        Self::capturing()
    }
}

impl ExecCtx {
    /// A fresh context in capture phase.
    pub fn capturing() -> ExecCtx {
        ExecCtx {
            state: RefCell::new(State {
                phase: Phase::Capture,
                graph: ExecGraph::default(),
                addr_map: HashMap::new(),
                plan_cursor: 0,
                saved_cycles: 0.0,
            }),
        }
    }

    pub fn is_capturing(&self) -> bool {
        self.state.borrow().phase == Phase::Capture
    }

    pub fn is_replaying(&self) -> bool {
        self.state.borrow().phase == Phase::Replay
    }

    /// Record one resolved kernel plan (capture phase only).
    pub fn record_plan(&self, plan: KernelPlan) {
        let mut s = self.state.borrow_mut();
        assert_eq!(s.phase, Phase::Capture, "record_plan on a sealed graph");
        s.graph.plans.push(plan);
    }

    fn next_plan(&self, want: &'static str) -> KernelPlan {
        let mut s = self.state.borrow_mut();
        assert_eq!(s.phase, Phase::Replay, "next_plan before seal()");
        let i = s.plan_cursor;
        let plan = *s.graph.plans.get(i).unwrap_or_else(|| {
            panic!("replay diverged from captured graph: wanted {want} plan #{i}, none left")
        });
        s.plan_cursor = i + 1;
        plan
    }

    /// Next captured SpMM plan (replay phase; panics on divergence).
    pub fn next_spmm_plan(&self) -> SpmmPlan {
        match self.next_plan("spmm") {
            KernelPlan::Spmm(p) => p,
            other => panic!("replay diverged from captured graph: wanted spmm, got {other:?}"),
        }
    }

    /// Next captured plan for a quantized SpMM site (replay phase; panics
    /// on divergence). The second field is `true` when the captured plan
    /// selected the INT8 kernel and `false` when the tuner fell back to
    /// the f16 kernel at capture time — the fallback is a legitimate
    /// captured outcome (the oracle vetoed every quantized candidate), so
    /// replay must honor it rather than re-tune.
    pub fn next_spmm_i8_plan(&self) -> (SpmmPlan, bool) {
        match self.next_plan("spmm_i8") {
            KernelPlan::SpmmI8(p) => (p, true),
            KernelPlan::Spmm(p) => (p, false),
            other => panic!("replay diverged from captured graph: wanted spmm_i8, got {other:?}"),
        }
    }

    /// Next captured SDDMM plan (replay phase; panics on divergence).
    pub fn next_sddmm_plan(&self) -> SddmmPlan {
        match self.next_plan("sddmm") {
            KernelPlan::Sddmm(p) => p,
            other => panic!("replay diverged from captured graph: wanted sddmm, got {other:?}"),
        }
    }

    /// Next captured attention plan (replay phase; panics on divergence).
    pub fn next_attn_plan(&self) -> AttnPlan {
        match self.next_plan("attn") {
            KernelPlan::Attn(p) => p,
            other => panic!("replay diverged from captured graph: wanted attn, got {other:?}"),
        }
    }

    /// Record one kernel launch during capture (no-op during replay —
    /// the kernels still run, the graph already knows them).
    pub fn record_node(
        &self,
        op: &'static str,
        inputs: &[BufRef],
        outputs: &[BufRef],
        window: Option<(usize, usize)>,
    ) {
        let mut s = self.state.borrow_mut();
        if s.phase != Phase::Capture {
            return;
        }
        let node_idx = s.graph.nodes.len();
        let mut node = Node { op, inputs: Vec::new(), outputs: Vec::new(), window };
        for &r in inputs {
            if r.bytes == 0 {
                continue;
            }
            let id = match s.addr_map.get(&r) {
                Some(&id) => id,
                None => {
                    // Never produced by a captured kernel: external.
                    let id = s.graph.buffers.len();
                    s.graph.buffers.push(BufInfo {
                        bytes: r.bytes,
                        external: true,
                        def: None,
                        last_use: node_idx,
                    });
                    s.addr_map.insert(r, id);
                    id
                }
            };
            s.graph.buffers[id].last_use = node_idx;
            node.inputs.push(id);
        }
        for &r in outputs {
            if r.bytes == 0 {
                continue;
            }
            // An output address always means a fresh allocation (any prior
            // Vec there was dropped), so mint a new id and shadow the map.
            let id = s.graph.buffers.len();
            s.graph.buffers.push(BufInfo {
                bytes: r.bytes,
                external: false,
                def: Some(node_idx),
                last_use: node_idx,
            });
            s.addr_map.insert(r, id);
            node.outputs.push(id);
        }
        s.graph.nodes.push(node);
    }

    /// End the capture epoch: freeze the graph and switch to replay.
    pub fn seal(&self) {
        let mut s = self.state.borrow_mut();
        assert_eq!(s.phase, Phase::Capture, "seal() called twice");
        s.phase = Phase::Replay;
        s.addr_map = HashMap::new();
        s.plan_cursor = 0;
    }

    /// Reset the replay cursor at the top of an epoch.
    pub fn begin_epoch(&self) {
        let mut s = self.state.borrow_mut();
        if s.phase == Phase::Replay {
            s.plan_cursor = 0;
        }
    }

    /// Assert the epoch consumed exactly the captured plan stream.
    pub fn end_epoch(&self) {
        let s = self.state.borrow();
        if s.phase == Phase::Replay {
            assert_eq!(
                s.plan_cursor,
                s.graph.plans.len(),
                "replay diverged from captured graph: consumed {} of {} plans",
                s.plan_cursor,
                s.graph.plans.len()
            );
        }
    }

    /// Accumulate modeled cycles saved by stripped launch overhead.
    pub fn add_saved_cycles(&self, cycles: f64) {
        self.state.borrow_mut().saved_cycles += cycles;
    }

    /// Cycles saved so far across all replay epochs.
    pub fn saved_cycles(&self) -> f64 {
        self.state.borrow().saved_cycles
    }

    /// Clone of the captured graph (inspection and tests).
    pub fn graph(&self) -> ExecGraph {
        self.state.borrow().graph.clone()
    }

    /// Run the arena planner over the captured graph and summarize.
    pub fn summary(&self) -> ReplaySummary {
        let s = self.state.borrow();
        let plan = arena::plan(&s.graph);
        ReplaySummary {
            nodes: s.graph.nodes.len(),
            plans: s.graph.plans.len(),
            buffers: s.graph.buffers.len(),
            peak_bytes: plan.peak_bytes,
            eager_bytes: plan.eager_bytes,
            external_bytes: plan.external_bytes,
            saved_cycles: s.saved_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(addr: usize, bytes: usize) -> BufRef {
        BufRef { addr, bytes }
    }

    #[test]
    fn capture_interns_buffers_and_tracks_lifetimes() {
        let ctx = ExecCtx::capturing();
        // n0: external 0x100 -> fresh 0x200; n1: 0x200 -> fresh 0x300.
        ctx.record_node("gemm", &[r(0x100, 64)], &[r(0x200, 32)], None);
        ctx.record_node("relu", &[r(0x200, 32)], &[r(0x300, 32)], Some((0, 8)));
        let g = ctx.graph();
        assert_eq!(g.nodes.len(), 2);
        assert_eq!(g.buffers.len(), 3);
        assert!(g.buffers[0].external);
        assert_eq!(g.buffers[1].def, Some(0));
        assert_eq!(g.buffers[1].last_use, 1, "consumed by node 1");
        assert_eq!(g.nodes[1].inputs, vec![1], "same (addr, bytes) interned to same id");
        assert_eq!(g.nodes[1].window, Some((0, 8)));
        assert_eq!(g.eager_bytes(), 64);
        assert_eq!(g.external_bytes(), 64);
    }

    #[test]
    fn output_at_reused_address_mints_fresh_id() {
        let ctx = ExecCtx::capturing();
        ctx.record_node("a", &[], &[r(0x100, 16)], None);
        ctx.record_node("b", &[r(0x100, 16)], &[r(0x100, 16)], None);
        ctx.record_node("c", &[r(0x100, 16)], &[], None);
        let g = ctx.graph();
        assert_eq!(g.buffers.len(), 2, "address reuse shadows, never merges");
        assert_eq!(g.buffers[0].last_use, 1);
        assert_eq!(g.buffers[1].def, Some(1));
        assert_eq!(g.buffers[1].last_use, 2, "node c reads the shadowing buffer");
    }

    #[test]
    fn zero_byte_refs_are_skipped() {
        let ctx = ExecCtx::capturing();
        ctx.record_node("a", &[r(0x100, 0)], &[r(0x200, 0)], None);
        let g = ctx.graph();
        assert_eq!(g.buffers.len(), 0);
        assert!(g.nodes[0].inputs.is_empty() && g.nodes[0].outputs.is_empty());
    }

    #[test]
    fn plan_stream_round_trips_in_order() {
        let ctx = ExecCtx::capturing();
        let sp = SpmmPlan::default();
        let sd = SddmmPlan::default_for(4);
        ctx.record_plan(KernelPlan::Spmm(sp));
        ctx.record_plan(KernelPlan::Sddmm(sd));
        ctx.record_plan(KernelPlan::Attn(AttnPlan { fused: true }));
        ctx.seal();
        for _ in 0..2 {
            ctx.begin_epoch();
            assert_eq!(ctx.next_spmm_plan(), sp);
            assert_eq!(ctx.next_sddmm_plan(), sd);
            assert!(ctx.next_attn_plan().fused);
            ctx.end_epoch();
        }
    }

    #[test]
    #[should_panic(expected = "replay diverged")]
    fn wrong_plan_kind_panics() {
        let ctx = ExecCtx::capturing();
        ctx.record_plan(KernelPlan::Spmm(SpmmPlan::default()));
        ctx.seal();
        ctx.begin_epoch();
        ctx.next_sddmm_plan();
    }

    #[test]
    #[should_panic(expected = "consumed 0 of 1 plans")]
    fn underconsumed_epoch_panics() {
        let ctx = ExecCtx::capturing();
        ctx.record_plan(KernelPlan::Spmm(SpmmPlan::default()));
        ctx.seal();
        ctx.begin_epoch();
        ctx.end_epoch();
    }

    #[test]
    fn record_node_is_noop_after_seal() {
        let ctx = ExecCtx::capturing();
        ctx.record_node("a", &[], &[r(0x100, 16)], None);
        ctx.seal();
        ctx.record_node("b", &[], &[r(0x200, 16)], None);
        assert_eq!(ctx.graph().nodes.len(), 1);
    }

    #[test]
    fn saved_cycles_accumulate() {
        let ctx = ExecCtx::capturing();
        ctx.seal();
        ctx.add_saved_cycles(700.0);
        ctx.add_saved_cycles(700.0);
        assert_eq!(ctx.saved_cycles(), 1400.0);
        assert_eq!(ctx.summary().saved_cycles, 1400.0);
    }
}
