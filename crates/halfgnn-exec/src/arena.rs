//! Arena planner: buffer-lifetime analysis over a captured [`ExecGraph`].
//!
//! Every non-external buffer has a lifetime interval `[def, last_use]` in
//! node order. A linear scan over buffers in def order assigns each to a
//! reusable *slab*: when a buffer's def passes another's last use, the
//! dead buffer's slab returns to the free pool. Assignment is best-fit
//! (smallest free slab that holds the request); if nothing fits, the
//! largest free slab grows rather than opening a new one, which keeps the
//! slab count near the true maximum-liveness width. `peak_bytes` — the sum
//! of slab sizes — is the arena's epoch footprint, the number the PR6
//! bench compares against the eager no-reuse baseline.
//!
//! Expiry is strict (`last_use < def`): a buffer consumed by the very node
//! that defines another may be read after the output is written inside one
//! kernel, so same-node reuse would alias live data.

use crate::{BufId, ExecGraph};

/// Slab assignment for one captured epoch.
#[derive(Clone, Debug, Default)]
pub struct ArenaPlan {
    /// Per buffer id: its slab, or `None` for external buffers.
    pub slab_of: Vec<Option<usize>>,
    /// Final size of each slab in bytes.
    pub slab_bytes: Vec<usize>,
    /// Arena footprint: `slab_bytes` summed.
    pub peak_bytes: usize,
    /// No-reuse baseline: every intermediate allocated simultaneously.
    pub eager_bytes: usize,
    /// Epoch-lifetime (external) bytes, outside the arena.
    pub external_bytes: usize,
}

/// Linear-scan slab assignment over the captured buffer lifetimes.
pub fn plan(g: &ExecGraph) -> ArenaPlan {
    // Non-external buffers ordered by def node (ties keep id order, which
    // is mint order within the node).
    let mut order: Vec<BufId> = (0..g.buffers.len()).filter(|&b| !g.buffers[b].external).collect();
    order.sort_by_key(|&b| (g.buffers[b].def.unwrap(), b));

    let mut slab_of = vec![None; g.buffers.len()];
    let mut slab_bytes: Vec<usize> = Vec::new();
    let mut free: Vec<usize> = Vec::new(); // free slab indices
    let mut active: Vec<BufId> = Vec::new(); // assigned, possibly still live

    for &b in &order {
        let def = g.buffers[b].def.unwrap();
        // Expire everything whose last use is strictly before this def.
        active.retain(|&a| {
            let dead = g.buffers[a].last_use < def;
            if dead {
                free.push(slab_of[a].unwrap());
            }
            !dead
        });

        let need = g.buffers[b].bytes;
        // Best fit: smallest free slab that holds the request.
        let fit = free
            .iter()
            .enumerate()
            .filter(|&(_, &s)| slab_bytes[s] >= need)
            .min_by_key(|&(_, &s)| slab_bytes[s])
            .map(|(i, _)| i);
        let slab = match fit {
            Some(i) => free.swap_remove(i),
            None => {
                // Grow the largest free slab rather than widening the arena.
                match free.iter().enumerate().max_by_key(|&(_, &s)| slab_bytes[s]).map(|(i, _)| i) {
                    Some(i) => {
                        let s = free.swap_remove(i);
                        slab_bytes[s] = need;
                        s
                    }
                    None => {
                        slab_bytes.push(need);
                        slab_bytes.len() - 1
                    }
                }
            }
        };
        slab_of[b] = Some(slab);
        active.push(b);
    }

    ArenaPlan {
        slab_of,
        peak_bytes: slab_bytes.iter().sum(),
        slab_bytes,
        eager_bytes: g.eager_bytes(),
        external_bytes: g.external_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{buf_ref, BufRef, ExecCtx};
    use proptest::prelude::*;

    fn r(addr: usize, bytes: usize) -> BufRef {
        BufRef { addr, bytes }
    }

    /// A producer-consumer chain reuses one slab: a -> b -> c where each
    /// value dies as the next is consumed.
    #[test]
    fn chain_reuses_slabs() {
        let ctx = ExecCtx::capturing();
        ctx.record_node("a", &[], &[r(0x100, 64)], None);
        ctx.record_node("b", &[r(0x100, 64)], &[r(0x200, 64)], None);
        ctx.record_node("c", &[r(0x200, 64)], &[r(0x300, 64)], None);
        let p = plan(&ctx.graph());
        // Adjacent links overlap (input live at def of output), so width 2.
        assert_eq!(p.slab_bytes.len(), 2);
        assert_eq!(p.peak_bytes, 128);
        assert_eq!(p.eager_bytes, 192);
    }

    #[test]
    fn growing_request_widens_a_slab_not_the_arena() {
        let ctx = ExecCtx::capturing();
        ctx.record_node("a", &[], &[r(0x100, 16)], None);
        ctx.record_node("sink", &[r(0x100, 16)], &[], None);
        ctx.record_node("b", &[], &[r(0x200, 64)], None);
        let p = plan(&ctx.graph());
        assert_eq!(p.slab_bytes, vec![64], "one slab, grown from 16 to 64");
        assert_eq!(p.peak_bytes, 64);
    }

    #[test]
    fn same_node_input_output_never_share() {
        let ctx = ExecCtx::capturing();
        ctx.record_node("a", &[], &[r(0x100, 32)], None);
        ctx.record_node("b", &[r(0x100, 32)], &[r(0x200, 32)], None);
        let p = plan(&ctx.graph());
        assert_ne!(p.slab_of[0], p.slab_of[1], "strict expiry: last_use == def must not alias");
    }

    #[test]
    fn externals_stay_out_of_the_arena() {
        let ctx = ExecCtx::capturing();
        let weights = vec![0u8; 128];
        ctx.record_node("gemm", &[buf_ref(&weights)], &[r(0x900, 32)], None);
        let p = plan(&ctx.graph());
        assert_eq!(p.slab_of[0], None);
        assert_eq!(p.external_bytes, 128);
        assert_eq!(p.peak_bytes, 32);
    }

    /// Random kernel traces: addresses chosen from a small pool so reuse
    /// and shadowing both happen constantly.
    fn arb_trace() -> impl Strategy<Value = Vec<(Vec<(usize, usize)>, Vec<(usize, usize)>)>> {
        let buf = || (0usize..12, prop::sample::select(vec![8usize, 16, 24, 64, 256]));
        let bufs = |n| prop::collection::vec(buf(), 0..n);
        prop::collection::vec((bufs(4), bufs(3)), 1..40)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The headline safety property: two buffers assigned the same
        /// slab never have overlapping [def, last_use] intervals, and
        /// every slab holds its largest tenant.
        #[test]
        fn slabs_never_alias_overlapping_lifetimes(trace in arb_trace()) {
            let ctx = ExecCtx::capturing();
            for (ins, outs) in &trace {
                let ins: Vec<BufRef> =
                    ins.iter().map(|&(a, b)| r(0x1000 + a * 0x1000, b)).collect();
                let outs: Vec<BufRef> =
                    outs.iter().map(|&(a, b)| r(0x1000 + a * 0x1000, b)).collect();
                ctx.record_node("k", &ins, &outs, None);
            }
            let g = ctx.graph();
            let p = plan(&g);
            for i in 0..g.buffers.len() {
                let Some(si) = p.slab_of[i] else {
                    prop_assert!(g.buffers[i].external);
                    continue;
                };
                prop_assert!(p.slab_bytes[si] >= g.buffers[i].bytes);
                for j in i + 1..g.buffers.len() {
                    if p.slab_of[j] != Some(si) {
                        continue;
                    }
                    let (bi, bj) = (g.buffers[i], g.buffers[j]);
                    let disjoint = bi.last_use < bj.def.unwrap() || bj.last_use < bi.def.unwrap();
                    prop_assert!(
                        disjoint,
                        "slab {si} aliases buffers {i} [{:?},{}] and {j} [{:?},{}]",
                        bi.def, bi.last_use, bj.def, bj.last_use
                    );
                }
            }
            // The arena never beats max-liveness or loses to eager.
            prop_assert!(p.peak_bytes <= p.eager_bytes + p.slab_bytes.iter().max().copied().unwrap_or(0));
        }
    }
}
