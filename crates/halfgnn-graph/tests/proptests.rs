//! Property-based invariants for graph storage and conversions.

use halfgnn_graph::{Coo, Csr, VertexId};
use proptest::prelude::*;

fn arb_edges(
    max_n: usize,
    max_e: usize,
) -> impl Strategy<Value = (usize, Vec<(VertexId, VertexId)>)> {
    (2usize..max_n).prop_flat_map(move |n| {
        let edge = (0..n as VertexId, 0..n as VertexId);
        prop::collection::vec(edge, 0..max_e).prop_map(move |es| (n, es))
    })
}

proptest! {
    #[test]
    fn csr_offsets_are_monotone_and_bounded((n, edges) in arb_edges(64, 256)) {
        let g = Csr::from_edges(n, n, &edges);
        let off = g.offsets();
        prop_assert_eq!(off.len(), n + 1);
        prop_assert_eq!(off[0], 0);
        prop_assert_eq!(off[n], g.nnz());
        prop_assert!(off.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn csr_rows_sorted_and_deduped((n, edges) in arb_edges(64, 256)) {
        let g = Csr::from_edges(n, n, &edges);
        for v in 0..n {
            let row = g.row(v as VertexId);
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]), "row {v} not strictly sorted");
        }
    }

    #[test]
    fn degrees_sum_to_nnz((n, edges) in arb_edges(64, 256)) {
        let g = Csr::from_edges(n, n, &edges);
        prop_assert_eq!(g.degrees().iter().map(|&d| d as usize).sum::<usize>(), g.nnz());
    }

    #[test]
    fn coo_csr_round_trip((n, edges) in arb_edges(64, 256)) {
        let coo = Coo::from_edges(n, n, &edges);
        let csr = Csr::from_coo(&coo);
        prop_assert_eq!(csr.to_coo(), coo);
    }

    #[test]
    fn transpose_involution((n, edges) in arb_edges(48, 192)) {
        let g = Csr::from_edges(n, n, &edges);
        prop_assert_eq!(g.transpose().transpose(), g.clone());
    }

    #[test]
    fn transpose_preserves_nnz((n, edges) in arb_edges(48, 192)) {
        let g = Csr::from_edges(n, n, &edges);
        prop_assert_eq!(g.transpose().nnz(), g.nnz());
    }

    #[test]
    fn symmetrize_is_symmetric_and_has_loops((n, edges) in arb_edges(32, 128)) {
        let g = Csr::from_edges(n, n, &edges).symmetrized_with_self_loops();
        prop_assert!(g.is_symmetric());
        for v in 0..n as VertexId {
            prop_assert!(g.row(v).contains(&v));
            prop_assert!(g.degree(v) >= 1);
        }
    }

    #[test]
    fn symmetric_graph_equals_its_transpose((n, edges) in arb_edges(32, 128)) {
        let g = Csr::from_edges(n, n, &edges).symmetrized_with_self_loops();
        prop_assert_eq!(g.transpose(), g.clone());
    }

    #[test]
    fn coo_edges_match_membership((n, edges) in arb_edges(32, 96)) {
        let coo = Coo::from_edges(n, n, &edges);
        let csr = Csr::from_coo(&coo);
        // Every original edge must be found in the CSR row.
        for &(r, c) in &edges {
            prop_assert!(csr.row(r).binary_search(&c).is_ok());
        }
        prop_assert!(coo.nnz() <= edges.len());
    }
}
