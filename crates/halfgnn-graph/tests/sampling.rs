//! Property-based invariants for the neighbor sampler and the delta-CSR
//! overlay (DESIGN.md §14). CI runs this suite under `HALFGNN_THREADS=1`
//! and `=4`: the sampler never reads that variable (every draw is keyed by
//! `(seed, salt, hop, vertex)`), so the bitwise-reproducibility properties
//! must hold at any thread count.

use halfgnn_graph::{Csr, DeltaCsr, NeighborSampler, VertexId};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_edges(
    max_n: usize,
    max_e: usize,
) -> impl Strategy<Value = (usize, Vec<(VertexId, VertexId)>)> {
    (2usize..max_n).prop_flat_map(move |n| {
        let edge = (0..n as VertexId, 0..n as VertexId);
        prop::collection::vec(edge, 0..max_e).prop_map(move |es| (n, es))
    })
}

/// A graph plus seed vertices drawn from it, a fanout, and an RNG seed.
fn arb_sample_case(
) -> impl Strategy<Value = (usize, Vec<(VertexId, VertexId)>, Vec<VertexId>, u32, u64)> {
    arb_edges(48, 192).prop_flat_map(|(n, edges)| {
        (
            Just(n),
            Just(edges),
            prop::collection::vec(0..n as VertexId, 1..8),
            1u32..6,
            0u64..u64::MAX,
        )
    })
}

proptest! {
    #[test]
    fn sampled_subgraph_is_a_valid_induced_csr(
        (n, edges, seeds, fanout, seed) in arb_sample_case()
    ) {
        let g = Csr::from_edges(n, n, &edges);
        let sampler = NeighborSampler::new(fanout, 2, seed);
        let sub = sampler.sample(&g, &seeds, 0);

        // Square local CSR over exactly the discovered vertex set.
        prop_assert_eq!(sub.csr.num_rows(), sub.n());
        prop_assert_eq!(sub.csr.num_cols(), sub.n());
        // Unique global ids, all in range, seeds first (deduplicated).
        let uniq: HashSet<VertexId> = sub.global_ids.iter().copied().collect();
        prop_assert_eq!(uniq.len(), sub.n(), "duplicate global ids");
        prop_assert!(sub.global_ids.iter().all(|&v| (v as usize) < n));
        let seed_set: HashSet<VertexId> = seeds.iter().copied().collect();
        prop_assert_eq!(sub.n_seeds, seed_set.len());
        prop_assert!(sub.global_ids[..sub.n_seeds].iter().all(|v| seed_set.contains(v)));
        // Fanout bound + every local edge maps back to a global edge.
        for u in 0..sub.n() as VertexId {
            prop_assert!(sub.csr.degree(u) <= fanout, "row {} over fanout", u);
            let gu = sub.global_ids[u as usize];
            for &w in sub.csr.row(u) {
                let gw = sub.global_ids[w as usize];
                prop_assert!(
                    g.row(gu).binary_search(&gw).is_ok(),
                    "local edge ({},{}) -> ({},{}) missing from the global graph",
                    u, w, gu, gw
                );
            }
        }
    }

    #[test]
    fn same_seed_same_schedule_and_subgraph_bitwise(
        (n, edges, seeds, fanout, seed) in arb_sample_case()
    ) {
        // Keyed RNG: identical inputs give bitwise-identical schedules and
        // subgraphs on every call — the property that makes mini-batch
        // runs reproducible across executors and HALFGNN_THREADS settings.
        let g = Csr::from_edges(n, n, &edges);
        let ids: Vec<VertexId> = (0..n as VertexId).collect();
        let sampler = NeighborSampler::new(fanout, 2, seed);
        prop_assert_eq!(sampler.schedule(&ids, 7, 3), sampler.schedule(&ids, 7, 3));
        let a = sampler.sample(&g, &seeds, 9);
        let b = sampler.sample(&g, &seeds, 9);
        prop_assert_eq!(a.csr, b.csr);
        prop_assert_eq!(a.global_ids, b.global_ids);
        prop_assert_eq!(a.n_seeds, b.n_seeds);
    }

    #[test]
    fn schedule_is_a_partition_of_the_train_ids(
        n in 1usize..200, batch in 1usize..40, epoch in 0u64..50, seed in 0u64..u64::MAX
    ) {
        let ids: Vec<VertexId> = (0..n as VertexId).collect();
        let sched = NeighborSampler::new(3, 2, seed).schedule(&ids, batch, epoch);
        prop_assert_eq!(sched.len(), n.div_ceil(batch));
        prop_assert!(sched[..sched.len() - 1].iter().all(|b| b.len() == batch));
        let mut seen: Vec<VertexId> = sched.into_iter().flatten().collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, ids);
    }

    #[test]
    fn zero_degree_seeds_keep_empty_rows(
        (n, edges) in arb_edges(48, 64), seed in 0u64..u64::MAX
    ) {
        // Direct all edges away from vertex 0 so it has out-degree 0.
        let edges: Vec<(VertexId, VertexId)> =
            edges.into_iter().filter(|&(u, _)| u != 0).collect();
        let g = Csr::from_edges(n, n, &edges);
        let sub = NeighborSampler::new(4, 2, seed).sample(&g, &[0], 0);
        prop_assert_eq!(sub.n_seeds, 1);
        prop_assert_eq!(sub.csr.degree(0), 0);
        prop_assert_eq!(sub.global_ids[0], 0);
    }

    #[test]
    fn delta_overlay_matches_the_merged_rebuild(
        (n, edges, extra) in arb_edges(32, 96).prop_flat_map(|(n, edges)| {
            let pair = (0..n as VertexId, 0..n as VertexId);
            (Just(n), Just(edges), prop::collection::vec(pair, 0..32))
        })
    ) {
        // Row-by-row overlay reads (degree/neighbor/row_merged) must agree
        // exactly with the full rebuild they let training avoid.
        let base = Csr::from_edges(n, n, &edges);
        let mut d = DeltaCsr::new(base.clone());
        let mut all = edges.clone();
        for (u, v) in extra {
            d.insert_edge(u, v);
            all.push((u, v));
        }
        let rebuilt = Csr::from_edges(n, n, &all);
        prop_assert_eq!(d.nnz(), rebuilt.nnz());
        for v in 0..n as VertexId {
            prop_assert_eq!(d.degree(v), rebuilt.degree(v), "degree of {}", v);
            prop_assert_eq!(d.row_merged(v), rebuilt.row(v).to_vec(), "row {}", v);
            let mut via_neighbor: Vec<VertexId> =
                (0..d.degree(v)).map(|i| d.neighbor(v, i)).collect();
            via_neighbor.sort_unstable();
            prop_assert_eq!(via_neighbor, rebuilt.row(v).to_vec());
        }
        prop_assert_eq!(d.merge(), rebuilt);
        prop_assert_eq!(d.base(), &base, "base must never be rebuilt");
    }
}

#[test]
fn empty_seed_batch_is_a_valid_empty_subgraph() {
    let g = Csr::from_edges(8, 8, &[(0, 1), (1, 0)]);
    let sub = NeighborSampler::new(3, 2, 1).sample(&g, &[], 0);
    assert_eq!(sub.n(), 0);
    assert_eq!(sub.nnz(), 0);
    assert_eq!(sub.csr.num_rows(), 0);
}
