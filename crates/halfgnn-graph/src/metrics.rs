//! Degree-distribution metrics: the quantities that explain the kernel
//! results (workload imbalance, atomic conflict pressure, overflow risk).

use crate::Csr;

/// Summary statistics of a graph's degree distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Smallest row degree.
    pub min: u32,
    /// Largest row degree (overflow risk scales with this).
    pub max: u32,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: u32,
    /// Gini coefficient of the degree distribution in `[0, 1)`:
    /// 0 = perfectly regular (RoadNet-like), → 1 = extreme hubs
    /// (Kron/Orkut-like). Correlates with the Fig. 9/13 speedups.
    pub gini: f64,
    /// Fraction of all edges owned by the top 1 % of rows.
    pub top1pct_edge_share: f64,
}

/// Compute [`DegreeStats`] for a CSR graph.
pub fn degree_stats(csr: &Csr) -> DegreeStats {
    let mut degs = csr.degrees();
    if degs.is_empty() {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            median: 0,
            gini: 0.0,
            top1pct_edge_share: 0.0,
        };
    }
    degs.sort_unstable();
    let n = degs.len();
    let total: u64 = degs.iter().map(|&d| d as u64).sum();
    let mean = total as f64 / n as f64;
    // Gini via the sorted-rank formula: G = (2·Σ i·x_i)/(n·Σx) − (n+1)/n.
    let gini = if total == 0 {
        0.0
    } else {
        let weighted: f64 =
            degs.iter().enumerate().map(|(i, &d)| (i as f64 + 1.0) * d as f64).sum();
        (2.0 * weighted / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64).max(0.0)
    };
    let top = (n / 100).max(1);
    let top_edges: u64 = degs[n - top..].iter().map(|&d| d as u64).sum();
    DegreeStats {
        min: degs[0],
        max: degs[n - 1],
        mean,
        median: degs[n / 2],
        gini,
        top1pct_edge_share: if total == 0 { 0.0 } else { top_edges as f64 / total as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn regular_graph_has_zero_gini() {
        // A ring: every vertex degree 3 after self loops.
        let n = 50u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let csr = Csr::from_edges(n as usize, n as usize, &edges).symmetrized_with_self_loops();
        let s = degree_stats(&csr);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 3);
        assert!(s.gini < 1e-9, "gini {}", s.gini);
    }

    #[test]
    fn star_graph_is_maximally_skewed() {
        let n = 200u32;
        let edges: Vec<(u32, u32)> = (1..n).map(|v| (0, v)).collect();
        let csr = Csr::from_edges(n as usize, n as usize, &edges).symmetrized_with_self_loops();
        let s = degree_stats(&csr);
        assert_eq!(s.max, n);
        assert!(s.gini > 0.3, "gini {}", s.gini);
        assert!(s.top1pct_edge_share > 0.25, "share {}", s.top1pct_edge_share);
    }

    #[test]
    fn powerlaw_more_skewed_than_uniform() {
        let pl = Csr::from_edges(2_000, 2_000, &gen::preferential_attachment(2_000, 5, 1))
            .symmetrized_with_self_loops();
        let er_edges = gen::erdos_renyi(2_000, 10_000, 1);
        let er = Csr::from_edges(2_000, 2_000, &er_edges).symmetrized_with_self_loops();
        let spl = degree_stats(&pl);
        let ser = degree_stats(&er);
        assert!(spl.gini > 1.5 * ser.gini, "powerlaw {} vs uniform {}", spl.gini, ser.gini);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(0, 0, &[]);
        let s = degree_stats(&csr);
        assert_eq!(s.max, 0);
        assert_eq!(s.gini, 0.0);
    }
}
