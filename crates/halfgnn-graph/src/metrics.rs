//! Degree-distribution metrics: the quantities that explain the kernel
//! results (workload imbalance, atomic conflict pressure, overflow risk).

use crate::Csr;

/// Summary statistics of a graph's degree distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Smallest row degree.
    pub min: u32,
    /// Largest row degree (overflow risk scales with this).
    pub max: u32,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: u32,
    /// Gini coefficient of the degree distribution in `[0, 1)`:
    /// 0 = perfectly regular (RoadNet-like), → 1 = extreme hubs
    /// (Kron/Orkut-like). Correlates with the Fig. 9/13 speedups.
    pub gini: f64,
    /// Fraction of all edges owned by the top 1 % of rows.
    pub top1pct_edge_share: f64,
    /// Coefficient of variation (population std-dev / mean): 0 for a
    /// regular graph, ≈1 for Erdős–Rényi-like, ≫1 for power laws. The
    /// kernel autotuner buckets graphs on this to decide which candidate
    /// plans (atomic writes, vertex-parallel layouts) are worth trying.
    pub cv: f64,
    /// Max/mean degree ratio: how far the worst hub outruns the typical
    /// row — the overflow-risk and warp-imbalance axis the CV misses when
    /// a single extreme hub hides inside an otherwise flat distribution.
    pub max_mean_skew: f64,
}

/// Compute [`DegreeStats`] for a CSR graph.
pub fn degree_stats(csr: &Csr) -> DegreeStats {
    degree_stats_from_degrees(csr.degrees())
}

/// Compute [`DegreeStats`] from a degree vector alone. This is what lets
/// a [`crate::DeltaCsr`] refresh its metrics after streaming inserts
/// without materializing the merged CSR: degrees are O(rows) to update,
/// the column arrays are not.
pub fn degree_stats_from_degrees(mut degs: Vec<u32>) -> DegreeStats {
    if degs.is_empty() {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            median: 0,
            gini: 0.0,
            top1pct_edge_share: 0.0,
            cv: 0.0,
            max_mean_skew: 0.0,
        };
    }
    degs.sort_unstable();
    let n = degs.len();
    let total: u64 = degs.iter().map(|&d| d as u64).sum();
    let mean = total as f64 / n as f64;
    // Gini via the sorted-rank formula: G = (2·Σ i·x_i)/(n·Σx) − (n+1)/n.
    let gini = if total == 0 {
        0.0
    } else {
        let weighted: f64 =
            degs.iter().enumerate().map(|(i, &d)| (i as f64 + 1.0) * d as f64).sum();
        (2.0 * weighted / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64).max(0.0)
    };
    let top = (n / 100).max(1);
    let top_edges: u64 = degs[n - top..].iter().map(|&d| d as u64).sum();
    let variance =
        degs.iter().map(|&d| (d as f64 - mean) * (d as f64 - mean)).sum::<f64>() / n as f64;
    let cv = if mean > 0.0 { variance.sqrt() / mean } else { 0.0 };
    DegreeStats {
        min: degs[0],
        max: degs[n - 1],
        mean,
        median: degs[n / 2],
        gini,
        top1pct_edge_share: if total == 0 { 0.0 } else { top_edges as f64 / total as f64 },
        cv,
        max_mean_skew: if mean > 0.0 { degs[n - 1] as f64 / mean } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn regular_graph_has_zero_gini() {
        // A ring: every vertex degree 3 after self loops.
        let n = 50u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let csr = Csr::from_edges(n as usize, n as usize, &edges).symmetrized_with_self_loops();
        let s = degree_stats(&csr);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 3);
        assert!(s.gini < 1e-9, "gini {}", s.gini);
    }

    #[test]
    fn star_graph_is_maximally_skewed() {
        let n = 200u32;
        let edges: Vec<(u32, u32)> = (1..n).map(|v| (0, v)).collect();
        let csr = Csr::from_edges(n as usize, n as usize, &edges).symmetrized_with_self_loops();
        let s = degree_stats(&csr);
        assert_eq!(s.max, n);
        assert!(s.gini > 0.3, "gini {}", s.gini);
        assert!(s.top1pct_edge_share > 0.25, "share {}", s.top1pct_edge_share);
    }

    #[test]
    fn powerlaw_more_skewed_than_uniform() {
        let pl = Csr::from_edges(2_000, 2_000, &gen::preferential_attachment(2_000, 5, 1))
            .symmetrized_with_self_loops();
        let er_edges = gen::erdos_renyi(2_000, 10_000, 1);
        let er = Csr::from_edges(2_000, 2_000, &er_edges).symmetrized_with_self_loops();
        let spl = degree_stats(&pl);
        let ser = degree_stats(&er);
        assert!(spl.gini > 1.5 * ser.gini, "powerlaw {} vs uniform {}", spl.gini, ser.gini);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(0, 0, &[]);
        let s = degree_stats(&csr);
        assert_eq!(s.max, 0);
        assert_eq!(s.gini, 0.0);
        assert_eq!(s.cv, 0.0);
        assert_eq!(s.max_mean_skew, 0.0);
    }

    #[test]
    fn regular_graph_has_zero_cv_and_unit_skew() {
        let n = 50u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let csr = Csr::from_edges(n as usize, n as usize, &edges).symmetrized_with_self_loops();
        let s = degree_stats(&csr);
        assert!(s.cv < 1e-9, "cv {}", s.cv);
        assert!((s.max_mean_skew - 1.0).abs() < 1e-9, "skew {}", s.max_mean_skew);
    }

    #[test]
    fn cv_orders_the_synthetic_generators() {
        // Grid < Erdős–Rényi < preferential attachment: each generator
        // family lands in a distinct CV regime, which is what makes CV a
        // usable bucketing axis for kernel plans.
        let grid = Csr::from_edges(900, 900, &gen::grid2d(30, 30)).symmetrized_with_self_loops();
        let er = Csr::from_edges(2_000, 2_000, &gen::erdos_renyi(2_000, 10_000, 3))
            .symmetrized_with_self_loops();
        let pl = Csr::from_edges(2_000, 2_000, &gen::preferential_attachment(2_000, 5, 3))
            .symmetrized_with_self_loops();
        let (sg, se, sp) = (degree_stats(&grid), degree_stats(&er), degree_stats(&pl));
        assert!(sg.cv < se.cv, "grid {} vs er {}", sg.cv, se.cv);
        assert!(se.cv * 1.5 < sp.cv, "er {} vs powerlaw {}", se.cv, sp.cv);
        assert!(sp.cv > 0.8, "powerlaw cv {}", sp.cv);
    }

    #[test]
    fn skew_isolates_a_single_hub_the_cv_smooths_over() {
        // One 500-degree hub over a 2000-vertex near-regular background:
        // the max/mean ratio explodes while the CV stays moderate.
        let n = 2_000u32;
        let mut edges: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        edges.extend((1..=500u32).map(|v| (0, v * 3 % n)));
        let csr = Csr::from_edges(n as usize, n as usize, &edges).symmetrized_with_self_loops();
        let s = degree_stats(&csr);
        assert!(s.max_mean_skew > 20.0, "skew {}", s.max_mean_skew);
        assert!(s.cv < 5.0, "cv {}", s.cv);
    }

    #[test]
    fn star_graph_cv_matches_closed_form() {
        // Star on n vertices (after sym + self loops): hub degree n,
        // leaves degree 2. Verify against the directly computed formula.
        let n = 100u32;
        let edges: Vec<(u32, u32)> = (1..n).map(|v| (0, v)).collect();
        let csr = Csr::from_edges(n as usize, n as usize, &edges).symmetrized_with_self_loops();
        let s = degree_stats(&csr);
        let degs: Vec<f64> = csr.degrees().iter().map(|&d| d as f64).collect();
        let mean = degs.iter().sum::<f64>() / degs.len() as f64;
        let var = degs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / degs.len() as f64;
        assert!((s.cv - var.sqrt() / mean).abs() < 1e-12);
        assert!((s.max_mean_skew - n as f64 / mean).abs() < 1e-12);
    }
}
