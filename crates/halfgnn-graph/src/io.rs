//! Edge-list I/O: plain-text (SNAP-style) and a compact binary format, so
//! generated stand-ins can be saved once and reloaded, or real edge lists
//! dropped in.
//!
//! Text format: one `src dst` pair per line; `#`-prefixed lines are
//! comments (what SNAP distributes). Binary format: `u64 num_vertices`,
//! `u64 num_edges`, then `u32 src, u32 dst` pairs, little-endian.

use crate::{Csr, VertexId};
use std::io::{self, BufRead, BufWriter, Read, Write};
use std::path::Path;

/// Write a graph as a SNAP-style text edge list.
pub fn write_edgelist_text(csr: &Csr, path: &Path) -> io::Result<()> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "# {} vertices, {} edges", csr.num_rows(), csr.nnz())?;
    for r in 0..csr.num_rows() {
        for &c in csr.row(r as VertexId) {
            writeln!(out, "{r} {c}")?;
        }
    }
    Ok(())
}

/// Read a SNAP-style text edge list. Vertex count is `max id + 1` unless a
/// larger `min_vertices` is given.
pub fn read_edgelist_text(path: &Path, min_vertices: usize) -> io::Result<Csr> {
    let file = std::fs::File::open(path)?;
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id = 0u32;
    for line in io::BufReader::new(file).lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |s: Option<&str>| -> io::Result<u32> {
            s.and_then(|v| v.parse().ok())
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad edge line"))
        };
        let a = parse(it.next())?;
        let b = parse(it.next())?;
        max_id = max_id.max(a).max(b);
        edges.push((a, b));
    }
    let n = min_vertices.max(max_id as usize + 1);
    Ok(Csr::from_edges(n, n, &edges))
}

/// Magic prefix of the binary format.
const MAGIC: &[u8; 8] = b"HGNNEDG1";

/// Write the compact binary edge list.
pub fn write_edgelist_binary(csr: &Csr, path: &Path) -> io::Result<()> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    out.write_all(MAGIC)?;
    out.write_all(&(csr.num_rows() as u64).to_le_bytes())?;
    out.write_all(&(csr.nnz() as u64).to_le_bytes())?;
    for r in 0..csr.num_rows() {
        for &c in csr.row(r as VertexId) {
            out.write_all(&(r as u32).to_le_bytes())?;
            out.write_all(&c.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Read the compact binary edge list.
pub fn read_edgelist_binary(path: &Path) -> io::Result<Csr> {
    let mut data = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut data)?;
    let err = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    if data.len() < 24 || &data[..8] != MAGIC {
        return Err(err("missing HGNNEDG1 header"));
    }
    let n = u64::from_le_bytes(data[8..16].try_into().unwrap()) as usize;
    let m = u64::from_le_bytes(data[16..24].try_into().unwrap()) as usize;
    if data.len() != 24 + m * 8 {
        return Err(err("truncated edge payload"));
    }
    let mut edges = Vec::with_capacity(m);
    for i in 0..m {
        let off = 24 + i * 8;
        let a = u32::from_le_bytes(data[off..off + 4].try_into().unwrap());
        let b = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap());
        edges.push((a, b));
    }
    Ok(Csr::from_edges(n, n, &edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn sample() -> Csr {
        let edges = gen::erdos_renyi(50, 200, 3);
        Csr::from_edges(50, 50, &edges).symmetrized_with_self_loops()
    }

    #[test]
    fn text_round_trip() {
        let g = sample();
        let dir = std::env::temp_dir().join("halfgnn_io_text");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        write_edgelist_text(&g, &path).unwrap();
        let back = read_edgelist_text(&path, g.num_rows()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn binary_round_trip() {
        let g = sample();
        let dir = std::env::temp_dir().join("halfgnn_io_bin");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        write_edgelist_binary(&g, &path).unwrap();
        let back = read_edgelist_binary(&path).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn text_reader_skips_comments_and_pads_vertices() {
        let dir = std::env::temp_dir().join("halfgnn_io_misc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.txt");
        std::fs::write(&path, "# comment\n0 1\n\n2 0\n").unwrap();
        let g = read_edgelist_text(&path, 10).unwrap();
        assert_eq!(g.num_rows(), 10);
        assert_eq!(g.nnz(), 2);
        assert_eq!(g.row(0), &[1]);
    }

    #[test]
    fn binary_reader_rejects_garbage() {
        let dir = std::env::temp_dir().join("halfgnn_io_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.bin");
        std::fs::write(&path, b"NOTMAGIC").unwrap();
        assert!(read_edgelist_binary(&path).is_err());
        std::fs::write(&path, [MAGIC.as_slice(), &[0u8; 16], &[1, 2, 3]].concat()).unwrap();
        assert!(read_edgelist_binary(&path).is_err());
    }

    #[test]
    fn text_reader_rejects_malformed_lines() {
        let dir = std::env::temp_dir().join("halfgnn_io_bad2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.txt");
        std::fs::write(&path, "0 not_a_number\n").unwrap();
        assert!(read_edgelist_text(&path, 0).is_err());
    }
}
