//! CSR (compressed sparse row) storage: an offset array pointing at the
//! start of each row's neighborhood plus a flat column array. Vertex-parallel
//! kernels allocate warps per row slice; the offset array also supplies the
//! degrees that discretized reduction scaling divides by.

use crate::{Coo, VertexId};

/// A sparse graph in CSR format. Column indices within each row are sorted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    num_cols: usize,
    offsets: Vec<usize>,
    cols: Vec<VertexId>,
}

impl Csr {
    /// Build from an edge list (sorted + deduplicated internally).
    pub fn from_edges(num_rows: usize, num_cols: usize, edges: &[(VertexId, VertexId)]) -> Csr {
        Csr::from_coo(&Coo::from_edges(num_rows, num_cols, edges))
    }

    /// Convert from canonical COO (already row-sorted: a single counting
    /// pass builds the offsets).
    pub fn from_coo(coo: &Coo) -> Csr {
        let mut offsets = vec![0usize; coo.num_rows() + 1];
        for &r in coo.rows() {
            offsets[r as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        Csr { num_cols: coo.num_cols(), offsets, cols: coo.cols().to_vec() }
    }

    /// Convert to canonical COO.
    pub fn to_coo(&self) -> Coo {
        let mut edges = Vec::with_capacity(self.nnz());
        for r in 0..self.num_rows() {
            for &c in self.row(r as VertexId) {
                edges.push((r as VertexId, c));
            }
        }
        Coo::from_edges(self.num_rows(), self.num_cols, &edges)
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// The offset array (`num_rows + 1` entries).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The flat, row-major column array.
    pub fn cols(&self) -> &[VertexId] {
        &self.cols
    }

    /// Neighborhood (column indices) of row `v`.
    pub fn row(&self, v: VertexId) -> &[VertexId] {
        &self.cols[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Degree (neighborhood size) of row `v`.
    pub fn degree(&self, v: VertexId) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// Degrees of all rows.
    pub fn degrees(&self) -> Vec<u32> {
        self.offsets.windows(2).map(|w| (w[1] - w[0]) as u32).collect()
    }

    /// Largest row degree (0 for an empty graph).
    pub fn max_degree(&self) -> u32 {
        (0..self.num_rows()).map(|v| self.degree(v as VertexId)).max().unwrap_or(0)
    }

    /// Mean row degree.
    pub fn mean_degree(&self) -> f64 {
        if self.num_rows() == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.num_rows() as f64
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Csr {
        Csr::from_coo(&self.to_coo().transpose())
    }

    /// True when for every edge (u, v) the reverse edge (v, u) is present —
    /// the undirected convention GNN datasets use.
    pub fn is_symmetric(&self) -> bool {
        if self.num_rows() != self.num_cols {
            return false;
        }
        for r in 0..self.num_rows() {
            for &c in self.row(r as VertexId) {
                if self.row(c).binary_search(&(r as VertexId)).is_err() {
                    return false;
                }
            }
        }
        true
    }

    /// Copy with every edge mirrored and a self-loop on each vertex — the
    /// standard GCN preprocessing (Â = A + Aᵀ + I).
    pub fn symmetrized_with_self_loops(&self) -> Csr {
        assert_eq!(self.num_rows(), self.num_cols, "need a square adjacency");
        let n = self.num_rows();
        let mut edges = Vec::with_capacity(self.nnz() * 2 + n);
        for r in 0..n {
            for &c in self.row(r as VertexId) {
                edges.push((r as VertexId, c));
                edges.push((c, r as VertexId));
            }
            edges.push((r as VertexId, r as VertexId));
        }
        Csr::from_edges(n, n, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        Csr::from_edges(4, 4, &[(0, 1), (0, 2), (1, 0), (1, 2), (2, 0), (2, 1), (2, 3), (3, 2)])
    }

    #[test]
    fn offsets_and_rows() {
        let g = sample();
        assert_eq!(g.num_rows(), 4);
        assert_eq!(g.nnz(), 8);
        assert_eq!(g.offsets(), &[0, 2, 4, 7, 8]);
        assert_eq!(g.row(2), &[0, 1, 3]);
        assert_eq!(g.row(3), &[2]);
    }

    #[test]
    fn degrees() {
        let g = sample();
        assert_eq!(g.degrees(), vec![2, 2, 3, 1]);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.max_degree(), 3);
        assert!((g.mean_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn coo_round_trip() {
        let g = sample();
        assert_eq!(Csr::from_coo(&g.to_coo()), g);
    }

    #[test]
    fn transpose_involution() {
        let g = Csr::from_edges(3, 5, &[(0, 4), (1, 1), (2, 0), (2, 4)]);
        assert_eq!(g.transpose().transpose(), g);
        assert_eq!(g.transpose().num_rows(), 5);
        assert_eq!(g.transpose().row(4), &[0, 2]);
    }

    #[test]
    fn symmetry_detection() {
        assert!(sample().is_symmetric());
        let asym = Csr::from_edges(3, 3, &[(0, 1)]);
        assert!(!asym.is_symmetric());
        assert!(asym.symmetrized_with_self_loops().is_symmetric());
    }

    #[test]
    fn symmetrize_adds_self_loops() {
        let g = Csr::from_edges(3, 3, &[(0, 1)]).symmetrized_with_self_loops();
        for v in 0..3u32 {
            assert!(g.row(v).contains(&v), "missing self loop at {v}");
        }
        assert_eq!(g.nnz(), 5); // (0,1), (1,0) and 3 loops
    }

    #[test]
    fn empty_rows_have_zero_degree() {
        let g = Csr::from_edges(4, 4, &[(0, 1)]);
        assert_eq!(g.degree(3), 0);
        assert!(g.row(3).is_empty());
        assert_eq!(g.max_degree(), 1);
    }
}
