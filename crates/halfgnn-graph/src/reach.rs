//! k-hop reachability over [`NeighborAccess`] graphs: the receptive-field
//! and invalidation queries the serving path runs per request.
//!
//! Two operations, both deterministic (plain BFS, no sampling):
//!
//! * [`khop_ball`] — every vertex within `k` hops of a start set. On a
//!   *symmetric* graph (the serving convention: [`crate::DeltaCsr`] fed
//!   only undirected inserts) the out-ball equals the in-ball, so this is
//!   also the **reverse** reachability set: the vertices whose k-hop
//!   receptive field contains the start vertices. That duality is what the
//!   embedding cache's invalidation leans on — after an edge insert
//!   `(u, v)`, the stale entries are exactly the cached vertices within
//!   `k-1` hops of `u` or `v` (their aggregation reads row `u` or `v`).
//! * [`induced_subgraph`] — the subgraph induced on a sorted vertex set,
//!   in local ids that preserve global order. Induction of a symmetric
//!   graph is symmetric, and because local id order mirrors global id
//!   order, each local row lists its neighbors in the same relative order
//!   as the global row — the property that makes a coalesced batched
//!   forward bitwise-equal to per-request forwards.

use crate::sample::NeighborAccess;
use crate::{Csr, VertexId};

/// All vertices within `k` hops of `starts` (including the starts
/// themselves), sorted ascending. Duplicate starts are harmless.
pub fn khop_ball<G: NeighborAccess>(g: &G, starts: &[VertexId], k: usize) -> Vec<VertexId> {
    let n = g.num_rows();
    let mut seen = vec![false; n];
    let mut frontier: Vec<VertexId> = Vec::new();
    for &s in starts {
        assert!((s as usize) < n, "start vertex {s} out of range");
        if !seen[s as usize] {
            seen[s as usize] = true;
            frontier.push(s);
        }
    }
    for _ in 0..k {
        let mut next: Vec<VertexId> = Vec::new();
        for &u in &frontier {
            for i in 0..g.degree(u) {
                let w = g.neighbor(u, i);
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    next.push(w);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    (0..n as VertexId).filter(|&v| seen[v as usize]).collect()
}

/// The subgraph induced on `vertices` (which must be sorted ascending and
/// duplicate-free): local vertex `i` is `vertices[i]`, and local row `i`
/// keeps exactly the global neighbors of `vertices[i]` that are themselves
/// in the set, in global order.
pub fn induced_subgraph<G: NeighborAccess>(g: &G, vertices: &[VertexId]) -> Csr {
    debug_assert!(vertices.windows(2).all(|w| w[0] < w[1]), "vertex set must be sorted unique");
    let n = vertices.len();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for (lu, &u) in vertices.iter().enumerate() {
        for i in 0..g.degree(u) {
            let w = g.neighbor(u, i);
            if let Ok(lw) = vertices.binary_search(&w) {
                edges.push((lu as VertexId, lw as VertexId));
            }
        }
    }
    Csr::from_edges(n, n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeltaCsr;

    fn path_graph(n: usize) -> Csr {
        let edges: Vec<(VertexId, VertexId)> = (0..n as VertexId - 1).map(|v| (v, v + 1)).collect();
        Csr::from_edges(n, n, &edges).symmetrized_with_self_loops()
    }

    #[test]
    fn ball_grows_one_hop_at_a_time_on_a_path() {
        let g = path_graph(7);
        assert_eq!(khop_ball(&g, &[3], 0), vec![3]);
        assert_eq!(khop_ball(&g, &[3], 1), vec![2, 3, 4]);
        assert_eq!(khop_ball(&g, &[3], 2), vec![1, 2, 3, 4, 5]);
        assert_eq!(khop_ball(&g, &[3], 10), vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn ball_unions_multiple_starts_and_collapses_duplicates() {
        let g = path_graph(9);
        assert_eq!(khop_ball(&g, &[0, 8, 0], 1), vec![0, 1, 7, 8]);
    }

    #[test]
    fn ball_reads_through_a_delta_overlay() {
        let mut d = DeltaCsr::new(path_graph(8));
        d.insert_undirected(0, 7);
        assert_eq!(khop_ball(&d, &[0], 1), vec![0, 1, 7]);
    }

    #[test]
    fn induced_subgraph_keeps_only_interior_edges_and_symmetry() {
        let g = path_graph(6);
        let sub = induced_subgraph(&g, &[1, 2, 3]);
        assert_eq!(sub.num_rows(), 3);
        // Rows keep the self loop and the in-set path edges only.
        assert_eq!(sub.row(0), &[0, 1]); // global 1: loop + edge to 2
        assert_eq!(sub.row(1), &[0, 1, 2]); // global 2: 1, loop, 3
        assert_eq!(sub.row(2), &[1, 2]); // global 3: 2, loop
        assert!(sub.is_symmetric(), "induction of a symmetric graph is symmetric");
    }

    #[test]
    fn induced_row_order_mirrors_global_order() {
        // A star: global row of the hub lists leaves in ascending global
        // id; any induced subset must preserve that relative order.
        let n = 10u32;
        let edges: Vec<(VertexId, VertexId)> = (1..n).map(|v| (0, v)).collect();
        let g = Csr::from_edges(n as usize, n as usize, &edges).symmetrized_with_self_loops();
        let sub = induced_subgraph(&g, &[0, 3, 7, 9]);
        // Hub local row: loop, then leaves 3, 7, 9 as locals 1, 2, 3.
        assert_eq!(sub.row(0), &[0, 1, 2, 3]);
    }

    #[test]
    fn symmetric_ball_equals_reverse_reachability() {
        // On a symmetric graph, w ∈ ball(u, k) ⇔ u ∈ ball(w, k).
        let g = path_graph(10);
        for k in 0..3usize {
            for u in 0..10u32 {
                let ball = khop_ball(&g, &[u], k);
                for w in 0..10u32 {
                    let reaches = khop_ball(&g, &[w], k).contains(&u);
                    assert_eq!(ball.contains(&w), reaches, "u={u} w={w} k={k}");
                }
            }
        }
    }
}
