//! The Table-1 dataset registry (G1–G16), scaled for CPU-hosted simulation.
//!
//! Each entry records the paper's published |V|, |E|, |F|, |C| and the
//! scaled synthetic stand-in this reproduction generates. The stand-ins
//! preserve the properties sparse kernels and FP16 accuracy depend on:
//!
//! * **degree skew** — power-law generators (R-MAT, preferential
//!   attachment) for social/web graphs, grid for RoadNet, hub-overlaid SBM
//!   for Reddit/Ogb-product whose high-degree vertices overflow FP16;
//! * **density** — mean degree matched to the paper within ~2×;
//! * **learnability** — labeled sets get homophilous SBM structure and
//!   class-conditional features, so Fig. 5's accuracy comparison is real.

use crate::features::{random_features, random_labels, split_per_class, Split};
use crate::gen;
use crate::{Coo, Csr};

/// How a dataset's topology is synthesized.
#[derive(Clone, Copy, Debug)]
pub enum GenKind {
    /// Stochastic block model: one block per class.
    Sbm { p_in: f64, p_out: f64 },
    /// SBM plus high-degree hub overlay (Reddit/Ogb-product shape).
    SbmHubs { p_in: f64, p_out: f64, num_hubs: usize, hub_degree: usize },
    /// R-MAT power law; `scale` fixes |V| = 2^scale.
    Rmat { scale: u32, edge_factor: usize },
    /// Barabási–Albert preferential attachment with `m` edges per vertex.
    PrefAttach { m: usize },
    /// 2-D grid (RoadNet stand-in).
    Grid { width: usize, height: usize },
}

/// Static description of one Table-1 dataset.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Registry key, "G1".."G16".
    pub id: &'static str,
    /// Human name as printed in Table 1.
    pub name: &'static str,
    /// |V| in the paper.
    pub paper_vertices: u64,
    /// |E| in the paper.
    pub paper_edges: u64,
    /// Input feature length in the paper.
    pub paper_feat: usize,
    /// Prediction categories |C|.
    pub classes: usize,
    /// True for the five datasets with real labels (accuracy experiments).
    pub labeled: bool,
    /// Scaled vertex count generated here.
    pub vertices: usize,
    /// Scaled input feature length generated here.
    pub feat: usize,
    /// Feature magnitude (class-mean norm for labeled sets, uniform bound
    /// otherwise). The hub datasets (G13, G15) use a large magnitude so
    /// that `max_degree x |activation|` crosses the FP16 overflow threshold
    /// at this reduced scale, exactly as it does at the paper's full scale
    /// (see DESIGN.md §2).
    pub feat_signal: f32,
    /// Feature noise level around the class mean.
    pub feat_noise: f32,
    /// Clamp features non-negative (count-like inputs).
    pub feat_nonneg: bool,
    /// If > 0, feature column 0 is a large-magnitude count column of this
    /// scale (see `features::attach_count_column`): hub rows' FP16
    /// aggregation of it overflows, as on the paper's full-size datasets.
    pub count_scale: f32,
    /// Topology generator.
    pub gen: GenKind,
}

/// A fully materialized dataset: symmetrized self-looped adjacency in both
/// formats, features, labels, and split masks.
pub struct LoadedDataset {
    /// The spec this was generated from.
    pub spec: DatasetSpec,
    /// Â = A + Aᵀ + I in CSR.
    pub adj: Csr,
    /// Â in COO (edge-parallel kernels).
    pub coo: Coo,
    /// Row-major `vertices × feat` input features (f32 master copy).
    pub features: Vec<f32>,
    /// Class label per vertex.
    pub labels: Vec<u32>,
    /// Train/val/test masks.
    pub split: Split,
}

impl LoadedDataset {
    /// Realized edge count (after symmetrization and self loops).
    pub fn num_edges(&self) -> usize {
        self.adj.nnz()
    }

    /// Realized vertex count.
    pub fn num_vertices(&self) -> usize {
        self.adj.num_rows()
    }
}

const REGISTRY: [DatasetSpec; 16] = [
    DatasetSpec {
        id: "G1",
        name: "Cora",
        paper_vertices: 2_708,
        paper_edges: 10_858,
        paper_feat: 1_433,
        classes: 7,
        labeled: true,
        vertices: 2_708,
        feat: 128,
        feat_signal: 1.0,
        feat_noise: 6.0,
        feat_nonneg: false,
        count_scale: 0.0,
        gen: GenKind::Sbm { p_in: 0.010, p_out: 0.0004 },
    },
    DatasetSpec {
        id: "G2",
        name: "Citeseer",
        paper_vertices: 3_327,
        paper_edges: 9_104,
        paper_feat: 3_703,
        classes: 6,
        labeled: true,
        vertices: 3_327,
        feat: 128,
        feat_signal: 1.0,
        feat_noise: 6.0,
        feat_nonneg: false,
        count_scale: 0.0,
        gen: GenKind::Sbm { p_in: 0.007, p_out: 0.0003 },
    },
    DatasetSpec {
        id: "G3",
        name: "PubMed",
        paper_vertices: 19_717,
        paper_edges: 88_648,
        paper_feat: 500,
        classes: 3,
        labeled: true,
        vertices: 4_800,
        feat: 100,
        feat_signal: 1.0,
        feat_noise: 6.0,
        feat_nonneg: false,
        count_scale: 0.0,
        gen: GenKind::Sbm { p_in: 0.006, p_out: 0.0004 },
    },
    DatasetSpec {
        id: "G4",
        name: "Amazon",
        paper_vertices: 400_727,
        paper_edges: 6_400_880,
        paper_feat: 150,
        classes: 7,
        labeled: false,
        vertices: 12_000,
        feat: 150,
        feat_signal: 0.5,
        feat_noise: 0.0,
        feat_nonneg: false,
        count_scale: 0.0,
        gen: GenKind::PrefAttach { m: 8 },
    },
    DatasetSpec {
        id: "G5",
        name: "Wiki-Talk",
        paper_vertices: 2_394_385,
        paper_edges: 10_042_820,
        paper_feat: 150,
        classes: 7,
        labeled: false,
        vertices: 16_384,
        feat: 150,
        feat_signal: 0.5,
        feat_noise: 0.0,
        feat_nonneg: false,
        count_scale: 0.0,
        gen: GenKind::Rmat { scale: 14, edge_factor: 4 },
    },
    DatasetSpec {
        id: "G6",
        name: "RoadNet-CA",
        paper_vertices: 1_971_279,
        paper_edges: 11_066_420,
        paper_feat: 150,
        classes: 7,
        labeled: false,
        vertices: 12_100,
        feat: 150,
        feat_signal: 0.5,
        feat_noise: 0.0,
        feat_nonneg: false,
        count_scale: 0.0,
        gen: GenKind::Grid { width: 110, height: 110 },
    },
    DatasetSpec {
        id: "G7",
        name: "Web-BerkStan",
        paper_vertices: 685_230,
        paper_edges: 15_201_173,
        paper_feat: 150,
        classes: 7,
        labeled: false,
        vertices: 8_192,
        feat: 150,
        feat_signal: 0.5,
        feat_noise: 0.0,
        feat_nonneg: false,
        count_scale: 0.0,
        gen: GenKind::Rmat { scale: 13, edge_factor: 11 },
    },
    DatasetSpec {
        id: "G8",
        name: "As-Skitter",
        paper_vertices: 1_696_415,
        paper_edges: 22_190_596,
        paper_feat: 150,
        classes: 7,
        labeled: false,
        vertices: 12_000,
        feat: 150,
        feat_signal: 0.5,
        feat_noise: 0.0,
        feat_nonneg: false,
        count_scale: 0.0,
        gen: GenKind::PrefAttach { m: 7 },
    },
    DatasetSpec {
        id: "G9",
        name: "Cit-Patent",
        paper_vertices: 3_774_768,
        paper_edges: 33_037_894,
        paper_feat: 150,
        classes: 7,
        labeled: false,
        vertices: 16_000,
        feat: 150,
        feat_signal: 0.5,
        feat_noise: 0.0,
        feat_nonneg: false,
        count_scale: 0.0,
        gen: GenKind::PrefAttach { m: 4 },
    },
    DatasetSpec {
        id: "G10",
        name: "Sx-stackoverflow",
        paper_vertices: 2_601_977,
        paper_edges: 95_806_532,
        paper_feat: 150,
        classes: 7,
        labeled: false,
        vertices: 16_384,
        feat: 150,
        feat_signal: 0.5,
        feat_noise: 0.0,
        feat_nonneg: false,
        count_scale: 0.0,
        gen: GenKind::Rmat { scale: 14, edge_factor: 18 },
    },
    DatasetSpec {
        id: "G11",
        name: "Kron-21",
        paper_vertices: 2_097_152,
        paper_edges: 67_108_864,
        paper_feat: 150,
        classes: 7,
        labeled: false,
        vertices: 16_384,
        feat: 150,
        feat_signal: 0.5,
        feat_noise: 0.0,
        feat_nonneg: false,
        count_scale: 0.0,
        gen: GenKind::Rmat { scale: 14, edge_factor: 16 },
    },
    DatasetSpec {
        id: "G12",
        name: "Hollywood09",
        paper_vertices: 1_069_127,
        paper_edges: 112_613_308,
        paper_feat: 150,
        classes: 7,
        labeled: false,
        vertices: 4_000,
        feat: 150,
        feat_signal: 0.5,
        feat_noise: 0.0,
        feat_nonneg: false,
        count_scale: 0.0,
        gen: GenKind::PrefAttach { m: 26 },
    },
    DatasetSpec {
        id: "G13",
        name: "Ogb-product",
        paper_vertices: 2_449_029,
        paper_edges: 123_718_280,
        paper_feat: 100,
        classes: 47,
        labeled: true,
        vertices: 8_000,
        feat: 48,
        feat_signal: 1.0,
        feat_noise: 3.0,
        feat_nonneg: false,
        count_scale: 40.0,
        gen: GenKind::SbmHubs { p_in: 0.12, p_out: 0.0015, num_hubs: 16, hub_degree: 1_500 },
    },
    DatasetSpec {
        id: "G14",
        name: "LiveJournal",
        paper_vertices: 4_847_571,
        paper_edges: 137_987_546,
        paper_feat: 150,
        classes: 7,
        labeled: false,
        vertices: 16_384,
        feat: 150,
        feat_signal: 0.5,
        feat_noise: 0.0,
        feat_nonneg: false,
        count_scale: 0.0,
        gen: GenKind::Rmat { scale: 14, edge_factor: 14 },
    },
    DatasetSpec {
        id: "G15",
        name: "Reddit",
        paper_vertices: 232_965,
        paper_edges: 114_848_857,
        paper_feat: 602,
        classes: 41,
        labeled: true,
        vertices: 4_100,
        feat: 48,
        feat_signal: 1.0,
        feat_noise: 3.0,
        feat_nonneg: false,
        count_scale: 40.0,
        gen: GenKind::SbmHubs { p_in: 0.62, p_out: 0.012, num_hubs: 24, hub_degree: 3_000 },
    },
    DatasetSpec {
        id: "G16",
        name: "Orkut",
        paper_vertices: 3_072_627,
        paper_edges: 234_370_166,
        paper_feat: 150,
        classes: 7,
        labeled: false,
        vertices: 8_192,
        feat: 150,
        feat_signal: 0.5,
        feat_noise: 0.0,
        feat_nonneg: false,
        count_scale: 0.0,
        gen: GenKind::Rmat { scale: 13, edge_factor: 38 },
    },
];

/// Handle to one registry entry.
#[derive(Clone, Copy, Debug)]
pub struct Dataset(&'static DatasetSpec);

macro_rules! dataset_ctor {
    ($($fn_name:ident => $idx:expr),* $(,)?) => {
        $(
            /// Registry accessor for this Table-1 dataset.
            pub fn $fn_name() -> Dataset { Dataset(&REGISTRY[$idx]) }
        )*
    };
}

impl Dataset {
    dataset_ctor! {
        cora => 0, citeseer => 1, pubmed => 2, amazon => 3, wiki_talk => 4,
        roadnet_ca => 5, web_berkstan => 6, as_skitter => 7, cit_patent => 8,
        sx_stackoverflow => 9, kron21 => 10, hollywood09 => 11,
        ogb_product => 12, livejournal => 13, reddit => 14, orkut => 15,
    }

    /// Every dataset, G1–G16.
    pub fn all() -> Vec<Dataset> {
        REGISTRY.iter().map(Dataset).collect()
    }

    /// The five labeled datasets used for accuracy (Fig. 5).
    pub fn labeled() -> Vec<Dataset> {
        REGISTRY.iter().filter(|s| s.labeled).map(Dataset).collect()
    }

    /// The mid/large datasets used for runtime figures (G4–G16, as the
    /// paper excludes G1–G3 from performance measurements).
    pub fn performance() -> Vec<Dataset> {
        REGISTRY[3..].iter().map(Dataset).collect()
    }

    /// Look up by registry id ("G13") or case-insensitive name ("reddit").
    pub fn by_id(id: &str) -> Option<Dataset> {
        REGISTRY
            .iter()
            .find(|s| s.id.eq_ignore_ascii_case(id) || s.name.eq_ignore_ascii_case(id))
            .map(Dataset)
    }

    /// The static spec.
    pub fn spec(&self) -> &'static DatasetSpec {
        self.0
    }

    /// Generate the dataset deterministically from `seed`.
    pub fn load(&self, seed: u64) -> LoadedDataset {
        let s = *self.0;
        let (edges, labels) = match s.gen {
            GenKind::Sbm { p_in, p_out } => {
                let (e, l) = gen::sbm(&block_sizes(s.vertices, s.classes), p_in, p_out, seed);
                (e, Some(l))
            }
            GenKind::SbmHubs { p_in, p_out, num_hubs, hub_degree } => {
                let (e, l) = gen::sbm_with_hubs(
                    &block_sizes(s.vertices, s.classes),
                    p_in,
                    p_out,
                    num_hubs,
                    hub_degree,
                    seed,
                );
                (e, Some(l))
            }
            GenKind::Rmat { scale, edge_factor } => {
                (gen::rmat(scale, edge_factor, (0.57, 0.19, 0.19), seed), None)
            }
            GenKind::PrefAttach { m } => (gen::preferential_attachment(s.vertices, m, seed), None),
            GenKind::Grid { width, height } => (gen::grid2d(width, height), None),
        };
        let adj = Csr::from_edges(s.vertices, s.vertices, &edges).symmetrized_with_self_loops();
        let coo = adj.to_coo();
        let labels = labels.unwrap_or_else(|| random_labels(s.vertices, s.classes, seed ^ 1));
        let mut features = if s.labeled {
            crate::features::class_features_with(
                &labels,
                s.classes,
                s.feat,
                s.feat_signal,
                s.feat_noise,
                s.feat_nonneg,
                seed ^ 2,
            )
        } else {
            random_features(s.vertices, s.feat, s.feat_signal, seed ^ 2)
        };
        if s.count_scale > 0.0 {
            crate::features::attach_count_column(&mut features, s.feat, s.count_scale, seed ^ 4);
        }
        let split = split_per_class(&labels, seed ^ 3);
        LoadedDataset { spec: s, adj, coo, features, labels, split }
    }
}

/// Distribute `n` vertices over `c` near-equal blocks.
fn block_sizes(n: usize, c: usize) -> Vec<usize> {
    let base = n / c;
    let extra = n % c;
    (0..c).map(|i| base + usize::from(i < extra)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table1_shapes() {
        assert_eq!(REGISTRY.len(), 16);
        let reddit = Dataset::reddit().spec();
        assert_eq!(reddit.paper_vertices, 232_965);
        assert_eq!(reddit.classes, 41);
        assert!(reddit.labeled);
        let kron = Dataset::kron21().spec();
        assert_eq!(kron.paper_edges, 67_108_864);
        assert!(!kron.labeled);
        assert_eq!(Dataset::labeled().len(), 5);
        assert_eq!(Dataset::performance().len(), 13);
    }

    #[test]
    fn lookup_by_id_and_name() {
        assert_eq!(Dataset::by_id("G15").unwrap().spec().name, "Reddit");
        assert_eq!(Dataset::by_id("reddit").unwrap().spec().id, "G15");
        assert!(Dataset::by_id("nope").is_none());
    }

    #[test]
    fn cora_loads_learnable() {
        let d = Dataset::cora().load(42);
        assert_eq!(d.num_vertices(), 2_708);
        assert!(d.adj.is_symmetric());
        assert_eq!(d.labels.len(), 2_708);
        assert_eq!(d.features.len(), 2_708 * 128);
        assert!(d.labels.iter().all(|&l| l < 7));
        // Homophily: most non-loop edges stay within a class.
        let mut intra = 0usize;
        let mut inter = 0usize;
        for e in 0..d.coo.nnz() {
            let (r, c) = d.coo.edge(e);
            if r == c {
                continue;
            }
            if d.labels[r as usize] == d.labels[c as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 2 * inter, "intra {intra} inter {inter}");
    }

    #[test]
    fn reddit_standin_has_overflow_grade_hubs() {
        let d = Dataset::reddit().load(42);
        // The whole point of the Reddit stand-in: hub degrees large enough
        // that an FP16 sum of O(1) values overflows 65504.
        assert!(d.adj.max_degree() > 1_500, "max degree {}", d.adj.max_degree());
        assert!(d.adj.mean_degree() > 30.0, "mean degree {}", d.adj.mean_degree());
    }

    #[test]
    fn roadnet_standin_is_flat() {
        let d = Dataset::roadnet_ca().load(1);
        assert!(d.adj.max_degree() <= 5);
    }

    #[test]
    fn loading_is_deterministic() {
        let a = Dataset::pubmed().load(7);
        let b = Dataset::pubmed().load(7);
        assert_eq!(a.adj, b.adj);
        assert_eq!(a.features, b.features);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn all_performance_sets_generate() {
        for d in Dataset::performance() {
            let loaded = d.load(3);
            let s = loaded.spec;
            assert!(loaded.num_edges() > 0, "{} empty", s.id);
            assert_eq!(loaded.num_vertices(), s.vertices, "{}", s.id);
            // Mean degree within a factor ~4 of the paper's (shape check).
            let paper_mean = 2.0 * s.paper_edges as f64 / s.paper_vertices as f64;
            let got = loaded.adj.mean_degree();
            assert!(
                got > paper_mean / 8.0,
                "{}: mean degree {got:.1} too far below paper {paper_mean:.1}",
                s.id
            );
        }
    }

    #[test]
    fn block_sizes_partition() {
        assert_eq!(block_sizes(10, 3), vec![4, 3, 3]);
        assert_eq!(block_sizes(9, 3), vec![3, 3, 3]);
        assert_eq!(block_sizes(8_000, 47).iter().sum::<usize>(), 8_000);
    }
}
