//! Deterministic 1D vertex partitioning for sharded training (CAGNET-style).
//!
//! A shard owns a *contiguous* range of destination rows. Contiguity is
//! load-bearing, not a simplification: the canonical COO is row-sorted, so
//! a shard's edges are exactly the contiguous slice
//! `csr.offsets()[r0] .. csr.offsets()[r1]` of the global edge arrays.
//! Sharded kernels can therefore run the *global* edge tiling clamped to
//! that window, which reproduces the single-device per-row segmentation —
//! and hence bit-identical f16/f32 reductions (see DESIGN.md §12).
//!
//! Two boundary strategies:
//!
//! * [`PartitionStrategy::Contiguous`] — equal row counts (`⌊k·n/S⌋`
//!   boundaries). Degenerate on hub graphs: one shard can own most edges.
//! * [`PartitionStrategy::DegreeBalanced`] — boundaries placed where the
//!   cumulative edge count crosses `k·nnz/S`, equalizing per-shard edge
//!   work (the quantity SpMM cost actually scales with).
//!
//! Each shard also carries the *halo*: the sorted set of global column ids
//! its edges reference outside its owned range — the feature rows another
//! device must send it before a local aggregation, and the payload the
//! interconnect cost model charges per layer. `local_to_global` is the
//! sorted merge of below-range halo, owned rows, and above-range halo, so
//! the induced local CSR keeps columns sorted *and* preserves the global
//! per-row neighbor order (local ids are a monotone renaming).

use crate::{Coo, Csr, VertexId};

/// How shard boundaries are chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Equal vertex counts per shard.
    Contiguous,
    /// Equal edge counts per shard (boundaries at cumulative-degree
    /// crossings), the right balance for SpMM-bound work on skewed graphs.
    DegreeBalanced,
}

impl PartitionStrategy {
    /// CLI tag.
    pub fn tag(self) -> &'static str {
        match self {
            PartitionStrategy::Contiguous => "contiguous",
            PartitionStrategy::DegreeBalanced => "balanced",
        }
    }

    /// Parse a CLI tag.
    pub fn parse(s: &str) -> Option<PartitionStrategy> {
        match s {
            "contiguous" => Some(PartitionStrategy::Contiguous),
            "balanced" => Some(PartitionStrategy::DegreeBalanced),
            _ => None,
        }
    }
}

/// One shard of a [`ShardPlan`]: an owned row range, its edge window in the
/// canonical global edge order, the halo it must receive, and the induced
/// local CSR over remapped ids.
#[derive(Clone, Debug)]
pub struct Shard {
    /// This shard's index.
    pub index: usize,
    /// Owned destination rows `[r0, r1)`. May be empty (`r0 == r1`) when
    /// there are more shards than rows.
    pub row_range: (usize, usize),
    /// The shard's edges as a window `[e0, e1)` into the canonical global
    /// COO/CSR edge arrays (`e0 = offsets[r0]`, `e1 = offsets[r1]`).
    pub edge_range: (usize, usize),
    /// Sorted global ids of non-owned vertices referenced by the shard's
    /// edges — the feature rows a halo exchange must deliver.
    pub halo: Vec<VertexId>,
    /// Sorted union of `halo` and the owned range: `local_to_global[l]` is
    /// the global id of local vertex `l`. Monotone, so local column order
    /// equals global column order within every row.
    pub local_to_global: Vec<VertexId>,
    /// How many halo rows each source shard must send this one: sorted
    /// `(src_shard, rows)` pairs, omitting zero counts. Precomputed at
    /// partition time — the halo-exchange loop reads it every layer of
    /// every epoch.
    pub halo_sources: Vec<(usize, usize)>,
    /// The shard's rows over local column ids: `row_range.1 - row_range.0`
    /// rows × `local_to_global.len()` columns.
    pub local_csr: Csr,
}

impl Shard {
    /// Number of owned rows.
    pub fn num_rows(&self) -> usize {
        self.row_range.1 - self.row_range.0
    }

    /// Number of owned edges.
    pub fn num_edges(&self) -> usize {
        self.edge_range.1 - self.edge_range.0
    }

    /// Map a global vertex id to this shard's local id, if referenced.
    pub fn local_of(&self, global: VertexId) -> Option<usize> {
        self.local_to_global.binary_search(&global).ok()
    }
}

/// A complete 1D partition of a graph.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Total vertex count of the partitioned graph.
    pub num_rows: usize,
    /// Total edge count of the partitioned graph.
    pub nnz: usize,
    /// Boundary strategy the plan was built with.
    pub strategy: PartitionStrategy,
    /// The shards, in row order.
    pub shards: Vec<Shard>,
}

impl ShardPlan {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns global row `v`.
    pub fn owner_of(&self, v: usize) -> usize {
        debug_assert!(v < self.num_rows);
        // Boundaries are sorted: the owner is the last shard whose range
        // starts at or before `v` and actually contains it (empty shards
        // share a boundary and own nothing).
        self.shards
            .iter()
            .position(|s| s.row_range.0 <= v && v < s.row_range.1)
            .expect("every row is owned by exactly one shard")
    }

    /// Largest per-shard edge count (the balance figure of merit).
    pub fn max_shard_edges(&self) -> usize {
        self.shards.iter().map(Shard::num_edges).max().unwrap_or(0)
    }

    /// Total halo rows across shards (the per-layer comms volume driver).
    pub fn total_halo_rows(&self) -> usize {
        self.shards.iter().map(|s| s.halo.len()).sum()
    }

    /// For shard `dst`, how many halo rows each source shard must send it:
    /// sorted `(src_shard, rows)` pairs, omitting zero counts. Precomputed
    /// by [`partition`]; this is a plain slice borrow, safe to call in the
    /// per-epoch halo-exchange loop.
    pub fn halo_sources(&self, dst: usize) -> &[(usize, usize)] {
        &self.shards[dst].halo_sources
    }
}

/// Row boundaries for `num_shards` shards: `num_shards + 1` non-decreasing
/// cut points starting at 0 and ending at `num_rows`.
fn boundaries(csr: &Csr, num_shards: usize, strategy: PartitionStrategy) -> Vec<usize> {
    let n = csr.num_rows();
    let nnz = csr.nnz();
    let mut cuts = Vec::with_capacity(num_shards + 1);
    cuts.push(0);
    for k in 1..num_shards {
        let cut = match strategy {
            PartitionStrategy::Contiguous => k * n / num_shards,
            PartitionStrategy::DegreeBalanced => {
                if nnz == 0 {
                    k * n / num_shards
                } else {
                    // First row whose cumulative edge count reaches k/S of
                    // the total: offsets is sorted, so this is a
                    // partition_point over `offsets[r] * S < k * nnz`.
                    let (k128, s128) = (k as u128, num_shards as u128);
                    csr.offsets()
                        .partition_point(|&o| (o as u128) * s128 < k128 * nnz as u128)
                        .min(n)
                }
            }
        };
        // Boundaries must be non-decreasing even when a hub row swallows
        // several targets at once.
        cuts.push(cut.max(*cuts.last().unwrap()));
    }
    cuts.push(n);
    cuts
}

/// Partition a graph into `num_shards` contiguous row shards. Deterministic:
/// the same graph, shard count and strategy always yield the same plan.
pub fn partition(csr: &Csr, num_shards: usize, strategy: PartitionStrategy) -> ShardPlan {
    assert!(num_shards > 0, "need at least one shard");
    let cuts = boundaries(csr, num_shards, strategy);
    let off = csr.offsets();
    let cols = csr.cols();

    let shards = (0..num_shards)
        .map(|s| {
            let (r0, r1) = (cuts[s], cuts[s + 1]);
            let (e0, e1) = (off[r0], off[r1]);

            // Halo: sorted dedup of out-of-range columns in the window.
            let mut halo: Vec<VertexId> = cols[e0..e1]
                .iter()
                .copied()
                .filter(|&c| (c as usize) < r0 || (c as usize) >= r1)
                .collect();
            halo.sort_unstable();
            halo.dedup();

            // local_to_global = halo-below ++ owned ++ halo-above (all
            // sorted, pairwise disjoint): a monotone renaming.
            let below = halo.partition_point(|&c| (c as usize) < r0);
            let mut local_to_global = Vec::with_capacity(halo.len() + (r1 - r0));
            local_to_global.extend_from_slice(&halo[..below]);
            local_to_global.extend((r0 as VertexId)..(r1 as VertexId));
            local_to_global.extend_from_slice(&halo[below..]);
            debug_assert!(local_to_global.windows(2).all(|w| w[0] < w[1]));

            // Induced local CSR: owned rows, columns renamed through the
            // monotone map (per-row neighbor order is preserved).
            let mut local_edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(e1 - e0);
            for r in r0..r1 {
                for &c in &cols[off[r]..off[r + 1]] {
                    let lc = local_to_global
                        .binary_search(&c)
                        .expect("every referenced column is in local_to_global");
                    local_edges.push(((r - r0) as VertexId, lc as VertexId));
                }
            }
            let local_csr = Csr::from_edges(r1 - r0, local_to_global.len(), &local_edges);

            // Halo rows per source shard: the halo is sorted, so each
            // owner's share is one contiguous run delimited by its cuts.
            // Empty shards ([cuts[k], cuts[k+1]) empty) contribute nothing,
            // exactly as the owner-scan attribution did.
            let halo_sources = (0..num_shards)
                .filter_map(|src| {
                    let lo = halo.partition_point(|&c| (c as usize) < cuts[src]);
                    let hi = halo.partition_point(|&c| (c as usize) < cuts[src + 1]);
                    (hi > lo).then_some((src, hi - lo))
                })
                .collect();

            Shard {
                index: s,
                row_range: (r0, r1),
                edge_range: (e0, e1),
                halo,
                local_to_global,
                halo_sources,
                local_csr,
            }
        })
        .collect();

    ShardPlan { num_rows: csr.num_rows(), nnz: csr.nnz(), strategy, shards }
}

/// Reconstruct the global rows covered by a shard's local CSR — the
/// validation inverse used by tests: expanding every shard must reproduce
/// the global CSR exactly.
pub fn expand_shard(shard: &Shard) -> Vec<(VertexId, VertexId)> {
    let (r0, _) = shard.row_range;
    (0..shard.local_csr.num_rows())
        .flat_map(|lr| {
            shard
                .local_csr
                .row(lr as VertexId)
                .iter()
                .map(move |&lc| ((r0 + lr) as VertexId, shard.local_to_global[lc as usize]))
        })
        .collect()
}

/// Convenience for kernels: the shard's edge window applied to a canonical
/// global COO must select exactly the shard's local edges.
pub fn window_matches_coo(shard: &Shard, coo: &Coo) -> bool {
    let (e0, e1) = shard.edge_range;
    let expanded = expand_shard(shard);
    if expanded.len() != e1 - e0 {
        return false;
    }
    (e0..e1).all(|ei| coo.edge(ei) == expanded[ei - e0])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain6() -> Csr {
        Csr::from_edges(6, 6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
            .symmetrized_with_self_loops()
    }

    fn star(n: usize) -> Csr {
        let edges: Vec<(VertexId, VertexId)> = (1..n as VertexId).map(|v| (0, v)).collect();
        Csr::from_edges(n, n, &edges).symmetrized_with_self_loops()
    }

    #[test]
    fn shards_cover_all_rows_and_edges() {
        let g = chain6();
        for strategy in [PartitionStrategy::Contiguous, PartitionStrategy::DegreeBalanced] {
            for s in [1, 2, 3, 4] {
                let plan = partition(&g, s, strategy);
                assert_eq!(plan.num_shards(), s);
                assert_eq!(plan.shards[0].row_range.0, 0);
                assert_eq!(plan.shards[s - 1].row_range.1, g.num_rows());
                let rows: usize = plan.shards.iter().map(Shard::num_rows).sum();
                let edges: usize = plan.shards.iter().map(Shard::num_edges).sum();
                assert_eq!(rows, g.num_rows());
                assert_eq!(edges, g.nnz());
                // Ranges are contiguous and ordered.
                for w in plan.shards.windows(2) {
                    assert_eq!(w[0].row_range.1, w[1].row_range.0);
                    assert_eq!(w[0].edge_range.1, w[1].edge_range.0);
                }
            }
        }
    }

    #[test]
    fn local_csrs_expand_back_to_the_global_graph() {
        let g = chain6();
        let coo = g.to_coo();
        for strategy in [PartitionStrategy::Contiguous, PartitionStrategy::DegreeBalanced] {
            let plan = partition(&g, 3, strategy);
            let mut all: Vec<(VertexId, VertexId)> = Vec::new();
            for shard in &plan.shards {
                assert!(window_matches_coo(shard, &coo), "shard {}", shard.index);
                all.extend(expand_shard(shard));
            }
            let global: Vec<(VertexId, VertexId)> = (0..coo.nnz()).map(|e| coo.edge(e)).collect();
            assert_eq!(all, global);
        }
    }

    #[test]
    fn halos_are_exactly_the_out_of_range_neighbors() {
        let g = chain6();
        let plan = partition(&g, 2, PartitionStrategy::Contiguous);
        // Shard 0 owns rows 0..3; row 2's neighbor 3 is the only halo.
        assert_eq!(plan.shards[0].row_range, (0, 3));
        assert_eq!(plan.shards[0].halo, vec![3]);
        // Shard 1 owns rows 3..6; row 3's neighbor 2 is the only halo.
        assert_eq!(plan.shards[1].halo, vec![2]);
        assert_eq!(plan.halo_sources(0), vec![(1, 1)]);
        assert_eq!(plan.halo_sources(1), vec![(0, 1)]);
    }

    #[test]
    fn degree_balanced_beats_contiguous_on_a_star() {
        let g = star(64);
        let cont = partition(&g, 4, PartitionStrategy::Contiguous);
        let bal = partition(&g, 4, PartitionStrategy::DegreeBalanced);
        assert!(
            bal.max_shard_edges() <= cont.max_shard_edges(),
            "balanced {} vs contiguous {}",
            bal.max_shard_edges(),
            cont.max_shard_edges()
        );
        // The hub row (degree 64) dominates: the balanced plan isolates it.
        assert!(bal.max_shard_edges() < g.nnz());
    }

    #[test]
    fn more_shards_than_rows_yields_empty_shards() {
        let g = Csr::from_edges(2, 2, &[(0, 1)]).symmetrized_with_self_loops();
        let plan = partition(&g, 4, PartitionStrategy::Contiguous);
        assert_eq!(plan.num_shards(), 4);
        let nonempty: Vec<usize> =
            plan.shards.iter().filter(|s| s.num_rows() > 0).map(|s| s.index).collect();
        let rows: usize = plan.shards.iter().map(Shard::num_rows).sum();
        assert_eq!(rows, 2);
        assert!(!nonempty.is_empty());
        for s in &plan.shards {
            if s.num_rows() == 0 {
                assert!(s.halo.is_empty());
                assert_eq!(s.num_edges(), 0);
            }
        }
    }

    #[test]
    fn owner_lookup_is_total() {
        let g = chain6();
        for strategy in [PartitionStrategy::Contiguous, PartitionStrategy::DegreeBalanced] {
            let plan = partition(&g, 4, strategy);
            for v in 0..g.num_rows() {
                let o = plan.owner_of(v);
                let (r0, r1) = plan.shards[o].row_range;
                assert!(r0 <= v && v < r1);
            }
        }
    }

    #[test]
    fn zero_degree_rows_partition_cleanly() {
        // Isolated vertices (rows with no edges at all).
        let g = Csr::from_edges(8, 8, &[(0, 1), (1, 0)]);
        let plan = partition(&g, 3, PartitionStrategy::DegreeBalanced);
        let rows: usize = plan.shards.iter().map(Shard::num_rows).sum();
        assert_eq!(rows, 8);
        let edges: usize = plan.shards.iter().map(Shard::num_edges).sum();
        assert_eq!(edges, 2);
    }

    #[test]
    fn precomputed_halo_sources_match_owner_scan() {
        // Regression for the per-call recompute this replaced: the
        // partition-time `halo_sources` must equal the old owner-by-owner
        // count for every shard, on skewed and empty-shard plans alike.
        for g in
            [chain6(), star(17), Csr::from_edges(2, 2, &[(0, 1)]).symmetrized_with_self_loops()]
        {
            for strategy in [PartitionStrategy::Contiguous, PartitionStrategy::DegreeBalanced] {
                for s in [1usize, 2, 3, 4, 6] {
                    let plan = partition(&g, s, strategy);
                    for dst in 0..s {
                        let mut counts = vec![0usize; s];
                        for &v in &plan.shards[dst].halo {
                            counts[plan.owner_of(v as usize)] += 1;
                        }
                        let want: Vec<(usize, usize)> =
                            counts.into_iter().enumerate().filter(|&(_, c)| c > 0).collect();
                        assert_eq!(plan.halo_sources(dst), want, "{strategy:?} s={s} dst={dst}");
                    }
                }
            }
        }
    }

    #[test]
    fn strategy_tags_round_trip() {
        for s in [PartitionStrategy::Contiguous, PartitionStrategy::DegreeBalanced] {
            assert_eq!(PartitionStrategy::parse(s.tag()), Some(s));
        }
        assert_eq!(PartitionStrategy::parse("random"), None);
    }
}
