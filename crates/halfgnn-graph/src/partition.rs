//! Deterministic 1D vertex partitioning for sharded training (CAGNET-style).
//!
//! A shard owns a *contiguous* range of destination rows. Contiguity is
//! load-bearing, not a simplification: the canonical COO is row-sorted, so
//! a shard's edges are exactly the contiguous slice
//! `csr.offsets()[r0] .. csr.offsets()[r1]` of the global edge arrays.
//! Sharded kernels can therefore run the *global* edge tiling clamped to
//! that window, which reproduces the single-device per-row segmentation —
//! and hence bit-identical f16/f32 reductions (see DESIGN.md §12).
//!
//! Three boundary strategies:
//!
//! * [`PartitionStrategy::Contiguous`] — equal row counts (`⌊k·n/S⌋`
//!   boundaries). Degenerate on hub graphs: one shard can own most edges.
//! * [`PartitionStrategy::DegreeBalanced`] — boundaries placed where the
//!   cumulative edge count crosses `k·nnz/S`, equalizing per-shard edge
//!   work (the quantity SpMM cost actually scales with).
//! * [`PartitionStrategy::OneP5D`] — 1.5D with replication factor `c`
//!   (Tripathy/Yelick/Buluç): shards use the DegreeBalanced boundaries,
//!   but consecutive runs of `c` shards form a *replication group* that
//!   fetches its out-of-group halo union once over the wire (in-group
//!   halo rows ride the free intra-group links). Kernels and outputs are
//!   unchanged — only the wire-charge assignment ([`Shard::wire_rows`])
//!   differs, which is what makes the comms volume sublinear in shard
//!   count where 1D is superlinear (DESIGN.md §16).
//!
//! Each shard also carries the *halo*: the sorted set of global column ids
//! its edges reference outside its owned range — the feature rows another
//! device must send it before a local aggregation, and the payload the
//! interconnect cost model charges per layer. `local_to_global` is the
//! sorted merge of below-range halo, owned rows, and above-range halo, so
//! the induced local CSR keeps columns sorted *and* preserves the global
//! per-row neighbor order (local ids are a monotone renaming).

use crate::{Coo, Csr, VertexId};

/// How shard boundaries are chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Equal vertex counts per shard.
    Contiguous,
    /// Equal edge counts per shard (boundaries at cumulative-degree
    /// crossings), the right balance for SpMM-bound work on skewed graphs.
    DegreeBalanced,
    /// 1.5D partition with replication factor `c`: DegreeBalanced row
    /// boundaries, with each run of `c` consecutive shards forming a
    /// replication group that shares one wire fetch of its halo union.
    /// `c` must divide the shard count; `c == 1` degenerates to
    /// DegreeBalanced charging exactly.
    OneP5D {
        /// Replication factor (group size).
        c: usize,
    },
}

impl PartitionStrategy {
    /// CLI tag.
    pub fn tag(self) -> &'static str {
        match self {
            PartitionStrategy::Contiguous => "contiguous",
            PartitionStrategy::DegreeBalanced => "balanced",
            PartitionStrategy::OneP5D { .. } => "1p5d",
        }
    }

    /// Parse a CLI tag. `1p5d` defaults to replication factor 2 — the CLI
    /// overrides it via `--replication` ([`Self::with_replication`]).
    pub fn parse(s: &str) -> Option<PartitionStrategy> {
        match s {
            "contiguous" => Some(PartitionStrategy::Contiguous),
            "balanced" => Some(PartitionStrategy::DegreeBalanced),
            "1p5d" => Some(PartitionStrategy::OneP5D { c: 2 }),
            _ => None,
        }
    }

    /// The replication factor: `c` for 1.5D, 1 for the 1D strategies.
    pub fn replication(self) -> usize {
        match self {
            PartitionStrategy::OneP5D { c } => c,
            _ => 1,
        }
    }

    /// Override the replication factor (no-op on 1D strategies).
    pub fn with_replication(self, c: usize) -> PartitionStrategy {
        match self {
            PartitionStrategy::OneP5D { .. } => PartitionStrategy::OneP5D { c },
            other => other,
        }
    }
}

/// One shard of a [`ShardPlan`]: an owned row range, its edge window in the
/// canonical global edge order, the halo it must receive, and the induced
/// local CSR over remapped ids.
#[derive(Clone, Debug)]
pub struct Shard {
    /// This shard's index.
    pub index: usize,
    /// Owned destination rows `[r0, r1)`. May be empty (`r0 == r1`) when
    /// there are more shards than rows.
    pub row_range: (usize, usize),
    /// The shard's edges as a window `[e0, e1)` into the canonical global
    /// COO/CSR edge arrays (`e0 = offsets[r0]`, `e1 = offsets[r1]`).
    pub edge_range: (usize, usize),
    /// Sorted global ids of non-owned vertices referenced by the shard's
    /// edges — the feature rows a halo exchange must deliver.
    pub halo: Vec<VertexId>,
    /// Sorted union of `halo` and the owned range: `local_to_global[l]` is
    /// the global id of local vertex `l`. Monotone, so local column order
    /// equals global column order within every row.
    pub local_to_global: Vec<VertexId>,
    /// How many halo rows each source shard must send this one: sorted
    /// `(src_shard, rows)` pairs, omitting zero counts. Precomputed at
    /// partition time — the halo-exchange loop reads it every layer of
    /// every epoch.
    pub halo_sources: Vec<(usize, usize)>,
    /// The remote rows this shard pays *wire* bytes for, sorted, each with
    /// its owner shard. Under the 1D strategies this is exactly `halo` ×
    /// owner. Under 1.5D the `c` members of a replication group split one
    /// fetch of the group's out-of-group halo union (each row goes to the
    /// least-loaded member that needs it), so in-group halo rows and
    /// duplicate out-of-group needs appear in nobody's `wire_rows` — the
    /// communication-avoiding effect, priced at partition time.
    pub wire_rows: Vec<(VertexId, usize)>,
    /// The shard's rows over local column ids: `row_range.1 - row_range.0`
    /// rows × `local_to_global.len()` columns.
    pub local_csr: Csr,
}

impl Shard {
    /// Number of owned rows.
    pub fn num_rows(&self) -> usize {
        self.row_range.1 - self.row_range.0
    }

    /// Number of owned edges.
    pub fn num_edges(&self) -> usize {
        self.edge_range.1 - self.edge_range.0
    }

    /// Map a global vertex id to this shard's local id, if referenced.
    pub fn local_of(&self, global: VertexId) -> Option<usize> {
        self.local_to_global.binary_search(&global).ok()
    }
}

/// A complete 1D partition of a graph.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Total vertex count of the partitioned graph.
    pub num_rows: usize,
    /// Total edge count of the partitioned graph.
    pub nnz: usize,
    /// Boundary strategy the plan was built with.
    pub strategy: PartitionStrategy,
    /// Replication factor: `c` for 1.5D plans, 1 otherwise. Shards
    /// `[g·c, (g+1)·c)` form replication group `g`.
    pub replication: usize,
    /// The shards, in row order.
    pub shards: Vec<Shard>,
}

impl ShardPlan {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The replication group a shard belongs to.
    pub fn group_of(&self, shard: usize) -> usize {
        shard / self.replication
    }

    /// Number of replication groups (`shards / c`).
    pub fn num_groups(&self) -> usize {
        self.shards.len() / self.replication
    }

    /// The rows shard `dst` pays wire bytes for, with owners — what the
    /// comms ledger charges per halo exchange (see [`Shard::wire_rows`]).
    pub fn wire_rows(&self, dst: usize) -> &[(VertexId, usize)] {
        &self.shards[dst].wire_rows
    }

    /// Which shard owns global row `v`.
    pub fn owner_of(&self, v: usize) -> usize {
        debug_assert!(v < self.num_rows);
        // Boundaries are sorted: the owner is the last shard whose range
        // starts at or before `v` and actually contains it (empty shards
        // share a boundary and own nothing).
        self.shards
            .iter()
            .position(|s| s.row_range.0 <= v && v < s.row_range.1)
            .expect("every row is owned by exactly one shard")
    }

    /// Largest per-shard edge count (the balance figure of merit).
    pub fn max_shard_edges(&self) -> usize {
        self.shards.iter().map(Shard::num_edges).max().unwrap_or(0)
    }

    /// Total halo rows across shards (the per-layer comms volume driver).
    pub fn total_halo_rows(&self) -> usize {
        self.shards.iter().map(|s| s.halo.len()).sum()
    }

    /// For shard `dst`, how many halo rows each source shard must send it:
    /// sorted `(src_shard, rows)` pairs, omitting zero counts. Precomputed
    /// by [`partition`]; this is a plain slice borrow, safe to call in the
    /// per-epoch halo-exchange loop.
    pub fn halo_sources(&self, dst: usize) -> &[(usize, usize)] {
        &self.shards[dst].halo_sources
    }
}

/// Row boundaries for `num_shards` shards: `num_shards + 1` non-decreasing
/// cut points starting at 0 and ending at `num_rows`.
fn boundaries(csr: &Csr, num_shards: usize, strategy: PartitionStrategy) -> Vec<usize> {
    let n = csr.num_rows();
    let nnz = csr.nnz();
    let mut cuts = Vec::with_capacity(num_shards + 1);
    cuts.push(0);
    for k in 1..num_shards {
        let cut = match strategy {
            PartitionStrategy::Contiguous => k * n / num_shards,
            // 1.5D reuses the edge-balanced cuts: members of a replication
            // group own consecutive ranges, so the group's rows are one
            // contiguous super-range.
            PartitionStrategy::DegreeBalanced | PartitionStrategy::OneP5D { .. } => {
                if nnz == 0 {
                    k * n / num_shards
                } else {
                    // First row whose cumulative edge count reaches k/S of
                    // the total: offsets is sorted, so this is a
                    // partition_point over `offsets[r] * S < k * nnz`.
                    let (k128, s128) = (k as u128, num_shards as u128);
                    csr.offsets()
                        .partition_point(|&o| (o as u128) * s128 < k128 * nnz as u128)
                        .min(n)
                }
            }
        };
        // Boundaries must be non-decreasing even when a hub row swallows
        // several targets at once.
        cuts.push(cut.max(*cuts.last().unwrap()));
    }
    cuts.push(n);
    cuts
}

/// Partition a graph into `num_shards` contiguous row shards. Deterministic:
/// the same graph, shard count and strategy always yield the same plan.
pub fn partition(csr: &Csr, num_shards: usize, strategy: PartitionStrategy) -> ShardPlan {
    assert!(num_shards > 0, "need at least one shard");
    let replication = strategy.replication();
    assert!(replication >= 1, "replication factor must be at least 1");
    assert!(
        num_shards.is_multiple_of(replication),
        "1.5D needs the shard count divisible by the replication factor \
         (shards {num_shards}, c {replication})"
    );
    let cuts = boundaries(csr, num_shards, strategy);
    let off = csr.offsets();
    let cols = csr.cols();

    let mut shards: Vec<Shard> = (0..num_shards)
        .map(|s| {
            let (r0, r1) = (cuts[s], cuts[s + 1]);
            let (e0, e1) = (off[r0], off[r1]);

            // Halo: sorted dedup of out-of-range columns in the window.
            let mut halo: Vec<VertexId> = cols[e0..e1]
                .iter()
                .copied()
                .filter(|&c| (c as usize) < r0 || (c as usize) >= r1)
                .collect();
            halo.sort_unstable();
            halo.dedup();

            // local_to_global = halo-below ++ owned ++ halo-above (all
            // sorted, pairwise disjoint): a monotone renaming.
            let below = halo.partition_point(|&c| (c as usize) < r0);
            let mut local_to_global = Vec::with_capacity(halo.len() + (r1 - r0));
            local_to_global.extend_from_slice(&halo[..below]);
            local_to_global.extend((r0 as VertexId)..(r1 as VertexId));
            local_to_global.extend_from_slice(&halo[below..]);
            debug_assert!(local_to_global.windows(2).all(|w| w[0] < w[1]));

            // Induced local CSR: owned rows, columns renamed through the
            // monotone map (per-row neighbor order is preserved).
            let mut local_edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(e1 - e0);
            for r in r0..r1 {
                for &c in &cols[off[r]..off[r + 1]] {
                    let lc = local_to_global
                        .binary_search(&c)
                        .expect("every referenced column is in local_to_global");
                    local_edges.push(((r - r0) as VertexId, lc as VertexId));
                }
            }
            let local_csr = Csr::from_edges(r1 - r0, local_to_global.len(), &local_edges);

            // Halo rows per source shard: the halo is sorted, so each
            // owner's share is one contiguous run delimited by its cuts.
            // Empty shards ([cuts[k], cuts[k+1]) empty) contribute nothing,
            // exactly as the owner-scan attribution did.
            let halo_sources = (0..num_shards)
                .filter_map(|src| {
                    let lo = halo.partition_point(|&c| (c as usize) < cuts[src]);
                    let hi = halo.partition_point(|&c| (c as usize) < cuts[src + 1]);
                    (hi > lo).then_some((src, hi - lo))
                })
                .collect();

            Shard {
                index: s,
                row_range: (r0, r1),
                edge_range: (e0, e1),
                halo,
                local_to_global,
                halo_sources,
                wire_rows: Vec::new(),
                local_csr,
            }
        })
        .collect();

    // Wire-charge assignment. Owner lookup by cut: the last shard whose
    // range starts at or before `v` (empty shards share a boundary and
    // never win the scan).
    let owner = |v: usize| cuts.partition_point(|&cut| cut <= v) - 1;
    if replication == 1 {
        // 1D: every shard fetches its own halo, row by row.
        for s in &mut shards {
            s.wire_rows = s.halo.iter().map(|&v| (v, owner(v as usize))).collect();
        }
    } else {
        // 1.5D: each group fetches the union of its members' out-of-group
        // halos exactly once, every row assigned to the least-loaded
        // member whose halo contains it (ties to the lowest member).
        // In-group halo rows ride the free intra-group links and are
        // charged to nobody.
        for g0 in (0..num_shards).step_by(replication) {
            let (gr0, gr1) = (cuts[g0], cuts[g0 + replication]);
            let mut union: Vec<VertexId> = (g0..g0 + replication)
                .flat_map(|m| shards[m].halo.iter().copied())
                .filter(|&v| (v as usize) < gr0 || (v as usize) >= gr1)
                .collect();
            union.sort_unstable();
            union.dedup();
            let mut load = vec![0usize; replication];
            for &v in &union {
                let mut best: Option<usize> = None;
                for j in 0..replication {
                    if shards[g0 + j].halo.binary_search(&v).is_ok()
                        && best.is_none_or(|b| load[j] < load[b])
                    {
                        best = Some(j);
                    }
                }
                let j = best.expect("every union row is in some member's halo");
                load[j] += 1;
                shards[g0 + j].wire_rows.push((v, owner(v as usize)));
            }
        }
    }

    ShardPlan { num_rows: csr.num_rows(), nnz: csr.nnz(), strategy, replication, shards }
}

/// Reconstruct the global rows covered by a shard's local CSR — the
/// validation inverse used by tests: expanding every shard must reproduce
/// the global CSR exactly.
pub fn expand_shard(shard: &Shard) -> Vec<(VertexId, VertexId)> {
    let (r0, _) = shard.row_range;
    (0..shard.local_csr.num_rows())
        .flat_map(|lr| {
            shard
                .local_csr
                .row(lr as VertexId)
                .iter()
                .map(move |&lc| ((r0 + lr) as VertexId, shard.local_to_global[lc as usize]))
        })
        .collect()
}

/// Convenience for kernels: the shard's edge window applied to a canonical
/// global COO must select exactly the shard's local edges.
pub fn window_matches_coo(shard: &Shard, coo: &Coo) -> bool {
    let (e0, e1) = shard.edge_range;
    let expanded = expand_shard(shard);
    if expanded.len() != e1 - e0 {
        return false;
    }
    (e0..e1).all(|ei| coo.edge(ei) == expanded[ei - e0])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain6() -> Csr {
        Csr::from_edges(6, 6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
            .symmetrized_with_self_loops()
    }

    fn star(n: usize) -> Csr {
        let edges: Vec<(VertexId, VertexId)> = (1..n as VertexId).map(|v| (0, v)).collect();
        Csr::from_edges(n, n, &edges).symmetrized_with_self_loops()
    }

    #[test]
    fn shards_cover_all_rows_and_edges() {
        let g = chain6();
        for strategy in [PartitionStrategy::Contiguous, PartitionStrategy::DegreeBalanced] {
            for s in [1, 2, 3, 4] {
                let plan = partition(&g, s, strategy);
                assert_eq!(plan.num_shards(), s);
                assert_eq!(plan.shards[0].row_range.0, 0);
                assert_eq!(plan.shards[s - 1].row_range.1, g.num_rows());
                let rows: usize = plan.shards.iter().map(Shard::num_rows).sum();
                let edges: usize = plan.shards.iter().map(Shard::num_edges).sum();
                assert_eq!(rows, g.num_rows());
                assert_eq!(edges, g.nnz());
                // Ranges are contiguous and ordered.
                for w in plan.shards.windows(2) {
                    assert_eq!(w[0].row_range.1, w[1].row_range.0);
                    assert_eq!(w[0].edge_range.1, w[1].edge_range.0);
                }
            }
        }
    }

    #[test]
    fn local_csrs_expand_back_to_the_global_graph() {
        let g = chain6();
        let coo = g.to_coo();
        for strategy in [PartitionStrategy::Contiguous, PartitionStrategy::DegreeBalanced] {
            let plan = partition(&g, 3, strategy);
            let mut all: Vec<(VertexId, VertexId)> = Vec::new();
            for shard in &plan.shards {
                assert!(window_matches_coo(shard, &coo), "shard {}", shard.index);
                all.extend(expand_shard(shard));
            }
            let global: Vec<(VertexId, VertexId)> = (0..coo.nnz()).map(|e| coo.edge(e)).collect();
            assert_eq!(all, global);
        }
    }

    #[test]
    fn halos_are_exactly_the_out_of_range_neighbors() {
        let g = chain6();
        let plan = partition(&g, 2, PartitionStrategy::Contiguous);
        // Shard 0 owns rows 0..3; row 2's neighbor 3 is the only halo.
        assert_eq!(plan.shards[0].row_range, (0, 3));
        assert_eq!(plan.shards[0].halo, vec![3]);
        // Shard 1 owns rows 3..6; row 3's neighbor 2 is the only halo.
        assert_eq!(plan.shards[1].halo, vec![2]);
        assert_eq!(plan.halo_sources(0), vec![(1, 1)]);
        assert_eq!(plan.halo_sources(1), vec![(0, 1)]);
    }

    #[test]
    fn degree_balanced_beats_contiguous_on_a_star() {
        let g = star(64);
        let cont = partition(&g, 4, PartitionStrategy::Contiguous);
        let bal = partition(&g, 4, PartitionStrategy::DegreeBalanced);
        assert!(
            bal.max_shard_edges() <= cont.max_shard_edges(),
            "balanced {} vs contiguous {}",
            bal.max_shard_edges(),
            cont.max_shard_edges()
        );
        // The hub row (degree 64) dominates: the balanced plan isolates it.
        assert!(bal.max_shard_edges() < g.nnz());
    }

    #[test]
    fn more_shards_than_rows_yields_empty_shards() {
        let g = Csr::from_edges(2, 2, &[(0, 1)]).symmetrized_with_self_loops();
        let plan = partition(&g, 4, PartitionStrategy::Contiguous);
        assert_eq!(plan.num_shards(), 4);
        let nonempty: Vec<usize> =
            plan.shards.iter().filter(|s| s.num_rows() > 0).map(|s| s.index).collect();
        let rows: usize = plan.shards.iter().map(Shard::num_rows).sum();
        assert_eq!(rows, 2);
        assert!(!nonempty.is_empty());
        for s in &plan.shards {
            if s.num_rows() == 0 {
                assert!(s.halo.is_empty());
                assert_eq!(s.num_edges(), 0);
            }
        }
    }

    #[test]
    fn owner_lookup_is_total() {
        let g = chain6();
        for strategy in [PartitionStrategy::Contiguous, PartitionStrategy::DegreeBalanced] {
            let plan = partition(&g, 4, strategy);
            for v in 0..g.num_rows() {
                let o = plan.owner_of(v);
                let (r0, r1) = plan.shards[o].row_range;
                assert!(r0 <= v && v < r1);
            }
        }
    }

    #[test]
    fn zero_degree_rows_partition_cleanly() {
        // Isolated vertices (rows with no edges at all).
        let g = Csr::from_edges(8, 8, &[(0, 1), (1, 0)]);
        let plan = partition(&g, 3, PartitionStrategy::DegreeBalanced);
        let rows: usize = plan.shards.iter().map(Shard::num_rows).sum();
        assert_eq!(rows, 8);
        let edges: usize = plan.shards.iter().map(Shard::num_edges).sum();
        assert_eq!(edges, 2);
    }

    #[test]
    fn precomputed_halo_sources_match_owner_scan() {
        // Regression for the per-call recompute this replaced: the
        // partition-time `halo_sources` must equal the old owner-by-owner
        // count for every shard, on skewed and empty-shard plans alike.
        for g in
            [chain6(), star(17), Csr::from_edges(2, 2, &[(0, 1)]).symmetrized_with_self_loops()]
        {
            for strategy in [PartitionStrategy::Contiguous, PartitionStrategy::DegreeBalanced] {
                for s in [1usize, 2, 3, 4, 6] {
                    let plan = partition(&g, s, strategy);
                    for dst in 0..s {
                        let mut counts = vec![0usize; s];
                        for &v in &plan.shards[dst].halo {
                            counts[plan.owner_of(v as usize)] += 1;
                        }
                        let want: Vec<(usize, usize)> =
                            counts.into_iter().enumerate().filter(|&(_, c)| c > 0).collect();
                        assert_eq!(plan.halo_sources(dst), want, "{strategy:?} s={s} dst={dst}");
                    }
                }
            }
        }
    }

    #[test]
    fn strategy_tags_round_trip() {
        for s in [
            PartitionStrategy::Contiguous,
            PartitionStrategy::DegreeBalanced,
            PartitionStrategy::OneP5D { c: 2 },
        ] {
            assert_eq!(PartitionStrategy::parse(s.tag()), Some(s));
        }
        assert_eq!(PartitionStrategy::parse("random"), None);
        assert_eq!(PartitionStrategy::OneP5D { c: 2 }.replication(), 2);
        assert_eq!(PartitionStrategy::DegreeBalanced.replication(), 1);
        assert_eq!(
            PartitionStrategy::OneP5D { c: 2 }.with_replication(4),
            PartitionStrategy::OneP5D { c: 4 }
        );
        assert_eq!(
            PartitionStrategy::Contiguous.with_replication(4),
            PartitionStrategy::Contiguous
        );
    }

    #[test]
    fn wire_rows_under_1d_are_exactly_the_halo_with_owners() {
        for g in [chain6(), star(17)] {
            for strategy in [PartitionStrategy::Contiguous, PartitionStrategy::DegreeBalanced] {
                for s in [1usize, 2, 3, 4] {
                    let plan = partition(&g, s, strategy);
                    for shard in &plan.shards {
                        let want: Vec<(VertexId, usize)> =
                            shard.halo.iter().map(|&v| (v, plan.owner_of(v as usize))).collect();
                        assert_eq!(shard.wire_rows, want, "{strategy:?} s={s} #{}", shard.index);
                    }
                }
            }
        }
    }

    #[test]
    fn one5d_kernel_geometry_matches_degree_balanced() {
        // 1.5D is a comms transformation only: rows, edges, halos and the
        // induced local CSRs are identical to the DegreeBalanced plan.
        for g in [chain6(), star(33)] {
            for (s, c) in [(2usize, 2usize), (4, 2), (4, 4), (6, 2), (6, 3)] {
                let bal = partition(&g, s, PartitionStrategy::DegreeBalanced);
                let p5 = partition(&g, s, PartitionStrategy::OneP5D { c });
                assert_eq!(p5.replication, c);
                assert_eq!(p5.num_groups(), s / c);
                for (a, b) in bal.shards.iter().zip(&p5.shards) {
                    assert_eq!(a.row_range, b.row_range);
                    assert_eq!(a.edge_range, b.edge_range);
                    assert_eq!(a.halo, b.halo);
                    assert_eq!(a.halo_sources, b.halo_sources);
                }
            }
        }
    }

    #[test]
    fn one5d_wire_rows_cover_the_group_union_once_and_skip_in_group_rows() {
        for g in [chain6(), star(33)] {
            for (s, c) in [(4usize, 2usize), (6, 2), (6, 3), (8, 4)] {
                let plan = partition(&g, s, PartitionStrategy::OneP5D { c });
                let cuts: Vec<usize> =
                    plan.shards.iter().map(|sh| sh.row_range.0).chain([g.num_rows()]).collect();
                for g0 in (0..s).step_by(c) {
                    let (gr0, gr1) = (cuts[g0], cuts[g0 + c]);
                    // Expected union: out-of-group halo rows of any member.
                    let mut union: Vec<VertexId> = (g0..g0 + c)
                        .flat_map(|m| plan.shards[m].halo.iter().copied())
                        .filter(|&v| (v as usize) < gr0 || (v as usize) >= gr1)
                        .collect();
                    union.sort_unstable();
                    union.dedup();
                    // Actual: the members' wire rows, disjoint by construction.
                    let mut got: Vec<VertexId> = (g0..g0 + c)
                        .flat_map(|m| plan.wire_rows(m).iter().map(|&(v, _)| v))
                        .collect();
                    got.sort_unstable();
                    assert_eq!(got, union, "s={s} c={c} group@{g0}");
                    for m in g0..g0 + c {
                        for &(v, o) in plan.wire_rows(m) {
                            assert!(plan.shards[m].halo.binary_search(&v).is_ok());
                            assert_eq!(o, plan.owner_of(v as usize));
                            assert_ne!(plan.group_of(o), g0 / c, "in-group row charged");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn one5d_c1_charges_exactly_like_degree_balanced() {
        for g in [chain6(), star(17)] {
            for s in [2usize, 3, 4] {
                let bal = partition(&g, s, PartitionStrategy::DegreeBalanced);
                let p5 = partition(&g, s, PartitionStrategy::OneP5D { c: 1 });
                for (a, b) in bal.shards.iter().zip(&p5.shards) {
                    assert_eq!(a.wire_rows, b.wire_rows);
                }
            }
        }
    }

    #[test]
    fn one5d_full_replication_charges_no_wire_rows() {
        // One group spanning every shard: all halo is intra-group.
        let plan = partition(&chain6(), 3, PartitionStrategy::OneP5D { c: 3 });
        for s in &plan.shards {
            assert!(s.wire_rows.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "divisible by the replication factor")]
    fn one5d_requires_divisible_shards() {
        partition(&chain6(), 3, PartitionStrategy::OneP5D { c: 2 });
    }
}
