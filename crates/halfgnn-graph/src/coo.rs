//! COO (coordinate) storage: parallel `rowId` / `colId` arrays, one entry
//! per non-zero element, sorted by `(row, col)`. Edge-parallel kernels walk
//! these arrays directly; the spatial ordering is what makes the paper's
//! "consecutive edges have monotonically non-decreasing row IDs"
//! observation (§5.2.1, rule 2) hold.

use crate::VertexId;

/// A sparse graph in coordinate format, canonically sorted by `(row, col)`
/// with duplicates removed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coo {
    num_rows: usize,
    num_cols: usize,
    rows: Vec<VertexId>,
    cols: Vec<VertexId>,
}

impl Coo {
    /// Build from an edge list. Edges are sorted and deduplicated;
    /// out-of-range endpoints panic.
    pub fn from_edges(num_rows: usize, num_cols: usize, edges: &[(VertexId, VertexId)]) -> Coo {
        let mut es: Vec<(VertexId, VertexId)> = edges.to_vec();
        for &(r, c) in &es {
            assert!(
                (r as usize) < num_rows && (c as usize) < num_cols,
                "edge ({r}, {c}) out of bounds for {num_rows}x{num_cols}"
            );
        }
        es.sort_unstable();
        es.dedup();
        let (rows, cols) = es.into_iter().unzip();
        Coo { num_rows, num_cols, rows, cols }
    }

    /// Number of rows (vertices on the destination side of SpMM).
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of stored non-zero elements (edges).
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// Row index of every non-zero, ascending.
    pub fn rows(&self) -> &[VertexId] {
        &self.rows
    }

    /// Column index of every non-zero.
    pub fn cols(&self) -> &[VertexId] {
        &self.cols
    }

    /// The `(row, col)` pair of non-zero element `e`.
    pub fn edge(&self, e: usize) -> (VertexId, VertexId) {
        (self.rows[e], self.cols[e])
    }

    /// Out-degree of every row.
    pub fn degrees(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.num_rows];
        for &r in &self.rows {
            d[r as usize] += 1;
        }
        d
    }

    /// Transposed copy (every edge reversed), re-canonicalized.
    pub fn transpose(&self) -> Coo {
        let edges: Vec<(VertexId, VertexId)> =
            self.cols.iter().copied().zip(self.rows.iter().copied()).collect();
        Coo::from_edges(self.num_cols, self.num_rows, &edges)
    }

    /// Index of edge `(r, c)` in the canonical ordering, if present.
    /// Binary search: `O(log nnz)`.
    pub fn find_edge(&self, r: VertexId, c: VertexId) -> Option<usize> {
        let lo = self.rows.partition_point(|&x| x < r);
        let hi = self.rows.partition_point(|&x| x <= r);
        let within = self.cols[lo..hi].binary_search(&c).ok()?;
        Some(lo + within)
    }

    /// Permutation mapping transpose-edge order to this graph's edge order:
    /// `perm[i]` is the index in `self` of the reverse of
    /// `self.transpose().edge(i)`.
    ///
    /// Backward sparse kernels run on `Aᵀ` but reuse edge-level tensors
    /// (attention scores) stored in `A`'s order; this permutation reindexes
    /// them. Always well-defined: the transpose's edges are exactly the
    /// reverses of this graph's edges.
    pub fn transpose_permutation(&self) -> Vec<usize> {
        let t = self.transpose();
        (0..t.nnz())
            .map(|i| {
                let (r, c) = t.edge(i);
                self.find_edge(c, r).unwrap_or_else(|| panic!("reverse edge of ({r}, {c}) missing"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo {
        // The Fig. 2 sample graph of the paper (4 vertices).
        Coo::from_edges(4, 4, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2), (0, 2), (2, 0)])
    }

    #[test]
    fn canonical_order_and_dedup() {
        let g = Coo::from_edges(3, 3, &[(2, 1), (0, 1), (2, 1), (1, 0)]);
        assert_eq!(g.nnz(), 3);
        assert_eq!(g.rows(), &[0, 1, 2]);
        assert_eq!(g.cols(), &[1, 0, 1]);
    }

    #[test]
    fn rows_are_monotone() {
        let g = sample();
        assert!(g.rows().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn degrees_sum_to_nnz() {
        let g = sample();
        let d = g.degrees();
        assert_eq!(d.iter().sum::<u32>() as usize, g.nnz());
        assert_eq!(d, vec![2, 2, 3, 1]);
    }

    #[test]
    fn transpose_involution() {
        let g = sample();
        assert_eq!(g.transpose().transpose(), g);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = Coo::from_edges(2, 3, &[(0, 2), (1, 0)]);
        let t = g.transpose();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_cols(), 2);
        assert_eq!(t.edge(0), (0, 1));
        assert_eq!(t.edge(1), (2, 0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_edge_panics() {
        Coo::from_edges(2, 2, &[(0, 5)]);
    }

    #[test]
    fn find_edge_hits_and_misses() {
        let g = sample();
        for e in 0..g.nnz() {
            let (r, c) = g.edge(e);
            assert_eq!(g.find_edge(r, c), Some(e));
        }
        assert_eq!(g.find_edge(0, 3), None);
        assert_eq!(g.find_edge(3, 3), None);
    }

    #[test]
    fn transpose_permutation_round_trips_edge_values() {
        let g = sample(); // symmetric sample
        let perm = g.transpose_permutation();
        let t = g.transpose();
        // Applying the permutation to an edge tensor in `g` order yields
        // the tensor in `t` order: value of (c, r) in t == value of (r, c).
        let vals: Vec<usize> = (0..g.nnz()).collect();
        for (ti, &gi) in perm.iter().enumerate() {
            let (tr, tc) = t.edge(ti);
            let (gr, gc) = g.edge(vals[gi]);
            assert_eq!((tr, tc), (gc, gr));
        }
    }

    #[test]
    fn transpose_permutation_on_asymmetric_graph() {
        let g = Coo::from_edges(3, 3, &[(0, 1), (2, 0)]);
        let perm = g.transpose_permutation();
        let t = g.transpose();
        assert_eq!(t.edge(0), (0, 2));
        assert_eq!(perm[0], g.find_edge(2, 0).unwrap());
        assert_eq!(perm[1], g.find_edge(0, 1).unwrap());
    }
}
