//! Delta-CSR: an immutable base CSR plus a sorted per-row insertion
//! overlay, for streaming edge ingestion without full rebuilds.
//!
//! The paper's setting is a static graph; the production north star
//! (ROADMAP item 1) is a stream of edge insertions arriving mid-training.
//! Rebuilding the CSR per insert is O(nnz); the overlay makes an insert
//! O(log deg) and a merged row read O(deg) — and because the kernel
//! autotuner's [`crate::metrics::DegreeStats`]-derived cache keys bucket
//! nnz and mean degree logarithmically, a burst of inserts almost never
//! changes a key, so re-tuning after a delta stays mostly cache-hit.
//!
//! Degree metrics are recomputed **lazily**: [`DeltaCsr::stats`] caches
//! the summary and every successful insert invalidates it, so a hub
//! arriving mid-stream is visible to the next `stats()` call instead of
//! being smoothed over by a stale snapshot.

use crate::metrics::{degree_stats_from_degrees, DegreeStats};
use crate::{Csr, VertexId};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// A base CSR plus an edge-insertion overlay with cheap merged reads.
#[derive(Debug)]
pub struct DeltaCsr {
    base: Csr,
    /// Inserted edges absent from the base, keyed by row; each row's
    /// vector is sorted and duplicate-free.
    delta: BTreeMap<VertexId, Vec<VertexId>>,
    delta_nnz: usize,
    /// Lazily recomputed degree summary; `None` after any insert.
    stats: RefCell<Option<DegreeStats>>,
}

impl DeltaCsr {
    /// Wrap a base graph; the overlay starts empty.
    pub fn new(base: Csr) -> DeltaCsr {
        DeltaCsr { base, delta: BTreeMap::new(), delta_nnz: 0, stats: RefCell::new(None) }
    }

    /// The immutable base (untouched by inserts — the no-rebuild invariant).
    pub fn base(&self) -> &Csr {
        &self.base
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.base.num_rows()
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.base.num_cols()
    }

    /// Stored non-zeros across base and overlay.
    pub fn nnz(&self) -> usize {
        self.base.nnz() + self.delta_nnz
    }

    /// Non-zeros in the overlay alone.
    pub fn delta_nnz(&self) -> usize {
        self.delta_nnz
    }

    /// Insert one directed edge. Returns `false` (and changes nothing)
    /// when the edge already exists in the base or the overlay. A
    /// successful insert invalidates the cached [`DeltaCsr::stats`].
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        assert!((u as usize) < self.num_rows(), "row {u} out of range");
        assert!((v as usize) < self.num_cols(), "col {v} out of range");
        if self.base.row(u).binary_search(&v).is_ok() {
            return false;
        }
        let row = self.delta.entry(u).or_default();
        match row.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                row.insert(pos, v);
                self.delta_nnz += 1;
                *self.stats.borrow_mut() = None;
                true
            }
        }
    }

    /// Insert `(u, v)` and `(v, u)` (plus nothing else), keeping a
    /// symmetric training graph symmetric. Returns how many of the two
    /// directions were actually new.
    pub fn insert_undirected(&mut self, u: VertexId, v: VertexId) -> usize {
        let mut added = usize::from(self.insert_edge(u, v));
        if u != v {
            added += usize::from(self.insert_edge(v, u));
        }
        added
    }

    /// Merged degree of row `v`.
    pub fn degree(&self, v: VertexId) -> u32 {
        self.base.degree(v) + self.delta.get(&v).map_or(0, |r| r.len() as u32)
    }

    /// Merged degrees of all rows (O(rows + delta rows)).
    pub fn degrees(&self) -> Vec<u32> {
        let mut degs = self.base.degrees();
        for (&r, row) in &self.delta {
            degs[r as usize] += row.len() as u32;
        }
        degs
    }

    /// `i`-th neighbor of row `v` in the merged view's storage order:
    /// base entries first, then overlay entries (each run sorted).
    pub fn neighbor(&self, v: VertexId, i: u32) -> VertexId {
        let base_deg = self.base.degree(v);
        if i < base_deg {
            self.base.row(v)[i as usize]
        } else {
            self.delta[&v][(i - base_deg) as usize]
        }
    }

    /// Merged, sorted, duplicate-free neighborhood of row `v`.
    pub fn row_merged(&self, v: VertexId) -> Vec<VertexId> {
        let base = self.base.row(v);
        let Some(extra) = self.delta.get(&v) else { return base.to_vec() };
        let mut out = Vec::with_capacity(base.len() + extra.len());
        let (mut i, mut j) = (0, 0);
        while i < base.len() && j < extra.len() {
            // Overlay rows never duplicate base entries (insert checks),
            // so strict comparison suffices.
            if base[i] < extra[j] {
                out.push(base[i]);
                i += 1;
            } else {
                out.push(extra[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&base[i..]);
        out.extend_from_slice(&extra[j..]);
        out
    }

    /// Degree summary of the merged view, recomputed lazily: cached until
    /// the next successful insert, never stale.
    pub fn stats(&self) -> DegreeStats {
        let mut cached = self.stats.borrow_mut();
        if cached.is_none() {
            *cached = Some(degree_stats_from_degrees(self.degrees()));
        }
        cached.clone().unwrap()
    }

    /// Materialize the merged graph as a plain CSR — the one full-rebuild
    /// operation, for use *after* streaming (e.g. final full-graph
    /// evaluation), never per insert.
    pub fn merge(&self) -> Csr {
        let mut edges = Vec::with_capacity(self.nnz());
        for r in 0..self.num_rows() as VertexId {
            for c in self.row_merged(r) {
                edges.push((r, c));
            }
        }
        Csr::from_edges(self.num_rows(), self.num_cols(), &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Csr {
        Csr::from_edges(5, 5, &[(0, 1), (1, 0), (1, 2), (2, 1), (3, 4), (4, 3)])
    }

    #[test]
    fn insert_rejects_duplicates_and_counts_new_edges() {
        let mut d = DeltaCsr::new(base());
        assert!(!d.insert_edge(0, 1), "already in base");
        assert!(d.insert_edge(0, 3));
        assert!(!d.insert_edge(0, 3), "already in overlay");
        assert_eq!(d.delta_nnz(), 1);
        assert_eq!(d.nnz(), 7);
        assert_eq!(d.base().nnz(), 6, "base never rebuilt");
    }

    #[test]
    fn merged_rows_are_sorted_and_complete() {
        let mut d = DeltaCsr::new(base());
        d.insert_edge(1, 4);
        d.insert_edge(1, 3);
        assert_eq!(d.row_merged(1), vec![0, 2, 3, 4]);
        assert_eq!(d.degree(1), 4);
        assert_eq!(d.neighbor(1, 0), 0);
        assert_eq!(d.neighbor(1, 2), 3, "overlay entries follow base entries");
        assert_eq!(d.neighbor(1, 3), 4);
    }

    #[test]
    fn merge_materializes_the_union() {
        let mut d = DeltaCsr::new(base());
        d.insert_undirected(0, 4);
        let merged = d.merge();
        let want = Csr::from_edges(
            5,
            5,
            &[(0, 1), (1, 0), (1, 2), (2, 1), (3, 4), (4, 3), (0, 4), (4, 0)],
        );
        assert_eq!(merged, want);
        assert!(merged.is_symmetric());
    }

    #[test]
    fn stats_are_invalidated_by_inserts_not_stale() {
        let mut d = DeltaCsr::new(base());
        let before = d.stats();
        assert_eq!(before, d.stats(), "cache must be deterministic");
        // Turn vertex 0 into a hub: degrees shift, so cached stats must
        // be recomputed, not returned stale.
        d.insert_edge(0, 2);
        d.insert_edge(0, 3);
        d.insert_edge(0, 4);
        let after = d.stats();
        assert!(after.max > before.max, "max {} vs {}", after.max, before.max);
        assert!(after.max_mean_skew > before.max_mean_skew);
        assert_eq!(after, degree_stats_from_degrees(d.degrees()));
    }

    #[test]
    fn undirected_insert_keeps_symmetry() {
        let mut d = DeltaCsr::new(base());
        assert_eq!(d.insert_undirected(2, 4), 2);
        assert_eq!(d.insert_undirected(2, 4), 0);
        // Self loop counts once.
        assert_eq!(d.insert_undirected(0, 0), 1);
        assert!(d.merge().is_symmetric());
    }
}
