//! GraphSAGE-style fanout neighbor sampling: extract the k-hop
//! receptive field of a seed batch into a small local CSR.
//!
//! Mini-batch training is where half precision pays twice — the batch
//! subgraph's buffers are already small, and f16 halves them again — but
//! only if sampling is *deterministic*: the Sim/Fast executors must see
//! bit-identical batches regardless of worker-thread count, or the
//! repo's equivalence contract dies at the data-loading step. Every
//! random choice here is therefore keyed by `(seed, salt, hop, vertex)`
//! through a counter-based splitmix64 stream: no shared RNG state, no
//! dependence on traversal order or `HALFGNN_THREADS`.

use crate::{Csr, DeltaCsr, VertexId};
use std::collections::HashMap;

/// Read-only neighborhood access, implemented by both the plain [`Csr`]
/// and the streaming [`DeltaCsr`] overlay so the sampler works mid-stream
/// without materializing a merged graph.
pub trait NeighborAccess {
    /// Number of vertices (rows).
    fn num_rows(&self) -> usize;
    /// Degree of vertex `v`.
    fn degree(&self, v: VertexId) -> u32;
    /// `i`-th neighbor of `v` in storage order, `i < degree(v)`.
    fn neighbor(&self, v: VertexId, i: u32) -> VertexId;
}

impl NeighborAccess for Csr {
    fn num_rows(&self) -> usize {
        Csr::num_rows(self)
    }
    fn degree(&self, v: VertexId) -> u32 {
        Csr::degree(self, v)
    }
    fn neighbor(&self, v: VertexId, i: u32) -> VertexId {
        self.row(v)[i as usize]
    }
}

impl NeighborAccess for DeltaCsr {
    fn num_rows(&self) -> usize {
        DeltaCsr::num_rows(self)
    }
    fn degree(&self, v: VertexId) -> u32 {
        DeltaCsr::degree(self, v)
    }
    fn neighbor(&self, v: VertexId, i: u32) -> VertexId {
        DeltaCsr::neighbor(self, v, i)
    }
}

/// A sampled k-hop batch subgraph in local vertex ids.
#[derive(Clone, Debug)]
pub struct BatchSubgraph {
    /// Local CSR over the batch's receptive field. Row `u` holds the
    /// sampled in-neighborhood of local vertex `u` (messages flow
    /// column → row), so every row degree is ≤ the sampler fanout.
    pub csr: Csr,
    /// Local → global vertex map; `global_ids[local]` is the original id.
    /// Seeds occupy local ids `0..n_seeds` in seed order (deduplicated);
    /// interior vertices follow in discovery order.
    pub global_ids: Vec<VertexId>,
    /// Number of seed vertices — the rows whose predictions/losses count.
    pub n_seeds: usize,
}

impl BatchSubgraph {
    /// Number of local vertices.
    pub fn n(&self) -> usize {
        self.global_ids.len()
    }

    /// Number of sampled edges.
    pub fn nnz(&self) -> usize {
        self.csr.nnz()
    }
}

/// splitmix64: the standard 64-bit finalizer-style generator. Used as a
/// counter-based (stateless) stream so sampling decisions depend only on
/// their key, never on how many draws happened before them.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A per-vertex deterministic RNG stream keyed by `(seed, salt, hop, v)`.
struct KeyedRng {
    state: u64,
}

impl KeyedRng {
    fn new(seed: u64, salt: u64, hop: u64, v: VertexId) -> KeyedRng {
        // Chain the key words through splitmix64 so that nearby keys
        // (consecutive vertices, consecutive hops) land far apart.
        let mut s = splitmix64(seed ^ 0x5851_f42d_4c95_7f2d);
        s = splitmix64(s ^ salt);
        s = splitmix64(s ^ hop);
        s = splitmix64(s ^ v as u64);
        KeyedRng { state: s }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    /// Uniform draw in `[0, bound)` via 128-bit multiply (no modulo bias
    /// worth caring about at graph-degree bounds).
    fn below(&mut self, bound: u32) -> u32 {
        ((self.next() as u128 * bound as u128) >> 64) as u32
    }
}

/// Deterministic, seedable GraphSAGE-style fanout sampler.
#[derive(Clone, Copy, Debug)]
pub struct NeighborSampler {
    /// Max sampled in-neighbors per vertex per hop.
    pub fanout: u32,
    /// Receptive-field depth (2 matches the 2-layer models in this repo).
    pub hops: usize,
    /// Base seed; combined with a per-call `salt` (epoch/batch coords).
    pub seed: u64,
}

impl NeighborSampler {
    /// A sampler with the given fanout, hop count, and seed.
    pub fn new(fanout: u32, hops: usize, seed: u64) -> NeighborSampler {
        assert!(fanout > 0, "fanout must be at least 1");
        assert!(hops > 0, "hops must be at least 1");
        NeighborSampler { fanout, hops, seed }
    }

    /// Extract the sampled k-hop receptive field of `seeds`. `salt`
    /// distinguishes calls that should draw different neighborhoods for
    /// the same seeds (e.g. `epoch * batches + batch`); the same
    /// `(sampler, seeds, salt)` triple is bitwise reproducible.
    pub fn sample<G: NeighborAccess>(&self, g: &G, seeds: &[VertexId], salt: u64) -> BatchSubgraph {
        let mut local_of: HashMap<VertexId, u32> = HashMap::new();
        let mut global_ids: Vec<VertexId> = Vec::new();
        for &s in seeds {
            assert!((s as usize) < g.num_rows(), "seed {s} out of range");
            local_of.entry(s).or_insert_with(|| {
                global_ids.push(s);
                global_ids.len() as u32 - 1
            });
        }
        let n_seeds = global_ids.len();

        let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
        // Vertices discovered at the previous hop, awaiting expansion.
        let mut frontier: Vec<VertexId> = global_ids.clone();
        for hop in 0..self.hops {
            let mut next: Vec<VertexId> = Vec::new();
            for &u in &frontier {
                let lu = local_of[&u];
                let deg = g.degree(u);
                let k = self.fanout.min(deg);
                let mut rng = KeyedRng::new(self.seed, salt, hop as u64, u);
                // Partial Fisher–Yates over 0..deg, tracking only touched
                // slots: O(fanout) time and space even for hub rows.
                let mut swapped: HashMap<u32, u32> = HashMap::new();
                for i in 0..k {
                    let j = i + rng.below(deg - i);
                    let pick = *swapped.get(&j).unwrap_or(&j);
                    let at_i = *swapped.get(&i).unwrap_or(&i);
                    swapped.insert(j, at_i);
                    let w = g.neighbor(u, pick);
                    let lw = *local_of.entry(w).or_insert_with(|| {
                        global_ids.push(w);
                        next.push(w);
                        global_ids.len() as u32 - 1
                    });
                    edges.push((lu, lw));
                }
            }
            frontier = next;
        }
        // Vertices first discovered at the last hop keep empty rows: they
        // feed features upward but aggregate nothing themselves.
        let n = global_ids.len();
        BatchSubgraph { csr: Csr::from_edges(n, n, &edges), global_ids, n_seeds }
    }

    /// Deterministic batch schedule for one epoch: shuffle `train_ids`
    /// with a Fisher–Yates keyed by `(seed, epoch)` and chunk into
    /// batches of `batch_size` (last batch may be short). Independent of
    /// thread count and prior draws by construction.
    pub fn schedule(
        &self,
        train_ids: &[VertexId],
        batch_size: usize,
        epoch: u64,
    ) -> Vec<Vec<VertexId>> {
        assert!(batch_size > 0, "batch_size must be at least 1");
        let mut ids = train_ids.to_vec();
        let mut rng = KeyedRng::new(self.seed, 0x5ced_u64, epoch, u32::MAX);
        for i in (1..ids.len()).rev() {
            let j = rng.below(i as u32 + 1) as usize;
            ids.swap(i, j);
        }
        ids.chunks(batch_size).map(|c| c.to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn graph() -> Csr {
        Csr::from_edges(200, 200, &gen::preferential_attachment(200, 4, 7))
            .symmetrized_with_self_loops()
    }

    #[test]
    fn row_degrees_respect_fanout_and_edges_map_back() {
        let g = graph();
        let s = NeighborSampler::new(3, 2, 42);
        let sub = s.sample(&g, &[0, 5, 9], 0);
        assert_eq!(sub.n_seeds, 3);
        assert_eq!(&sub.global_ids[..3], &[0, 5, 9]);
        for u in 0..sub.n() as VertexId {
            assert!(sub.csr.degree(u) <= 3, "row {u} degree {}", sub.csr.degree(u));
            for &w in sub.csr.row(u) {
                let (gu, gw) = (sub.global_ids[u as usize], sub.global_ids[w as usize]);
                assert!(g.row(gu).binary_search(&gw).is_ok(), "({gu},{gw}) not a global edge");
            }
        }
    }

    #[test]
    fn same_key_is_bitwise_reproducible_and_salt_varies_it() {
        let g = graph();
        let s = NeighborSampler::new(4, 2, 7);
        let a = s.sample(&g, &[1, 2, 3, 4], 11);
        let b = s.sample(&g, &[1, 2, 3, 4], 11);
        assert_eq!(a.csr, b.csr);
        assert_eq!(a.global_ids, b.global_ids);
        let c = s.sample(&g, &[1, 2, 3, 4], 12);
        assert!(c.csr != a.csr || c.global_ids != a.global_ids, "salt must vary the draw");
    }

    #[test]
    fn duplicate_and_zero_degree_seeds() {
        let mut edges = gen::grid2d(4, 4);
        edges.retain(|&(u, v)| u != 15 && v != 15); // isolate vertex 15
        let g = Csr::from_edges(16, 16, &edges);
        let s = NeighborSampler::new(2, 2, 0);
        let sub = s.sample(&g, &[15, 15, 0], 0);
        assert_eq!(sub.n_seeds, 2, "duplicate seeds collapse");
        assert_eq!(sub.global_ids[0], 15);
        assert_eq!(sub.csr.degree(0), 0, "isolated seed keeps an empty row");
    }

    #[test]
    fn empty_seed_batch_yields_empty_subgraph() {
        let g = graph();
        let sub = NeighborSampler::new(3, 2, 1).sample(&g, &[], 0);
        assert_eq!(sub.n(), 0);
        assert_eq!(sub.nnz(), 0);
        assert_eq!(sub.n_seeds, 0);
    }

    #[test]
    fn schedule_partitions_the_train_set_deterministically() {
        let ids: Vec<VertexId> = (0..103).collect();
        let s = NeighborSampler::new(3, 2, 9);
        let a = s.schedule(&ids, 16, 4);
        let b = s.schedule(&ids, 16, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 7);
        assert_eq!(a.last().unwrap().len(), 103 - 6 * 16);
        let mut seen: Vec<VertexId> = a.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, ids, "schedule must be a permutation");
        assert_ne!(a, s.schedule(&ids, 16, 5), "epochs reshuffle");
    }

    #[test]
    fn sampler_reads_through_a_delta_overlay() {
        let base = Csr::from_edges(6, 6, &[(0, 1), (1, 0)]);
        let mut d = DeltaCsr::new(base);
        d.insert_undirected(0, 5);
        let sub = NeighborSampler::new(4, 1, 3).sample(&d, &[0], 0);
        let mut nbrs: Vec<VertexId> =
            sub.csr.row(0).iter().map(|&w| sub.global_ids[w as usize]).collect();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![1, 5], "overlay edge must be sampleable");
    }
}
