//! Graph storage, synthetic generators, and the Table-1 dataset registry.
//!
//! Sparse kernels in this reproduction consume the same two storage formats
//! the paper describes (§2.1.1): COO for edge-parallel kernels and CSR for
//! vertex-parallel ones. The generators produce scaled-down synthetic
//! stand-ins for the paper's 16 datasets that preserve what the kernels are
//! sensitive to — degree skew (hub vertices drive the FP16 overflow of
//! §3.1.3), density, and feature/class dimensions — while the labeled
//! datasets use stochastic-block-model community structure with
//! class-correlated features so the accuracy experiments genuinely learn.

pub mod coo;
pub mod csr;
pub mod datasets;
pub mod delta;
pub mod features;
pub mod gen;
pub mod io;
pub mod metrics;
pub mod partition;
pub mod reach;
pub mod sample;

pub use coo::Coo;
pub use csr::Csr;
pub use delta::DeltaCsr;
pub use partition::{partition, PartitionStrategy, Shard, ShardPlan};
pub use reach::{induced_subgraph, khop_ball};
pub use sample::{BatchSubgraph, NeighborAccess, NeighborSampler};

/// Vertex identifier. 32 bits covers every dataset in this reproduction and
/// halves index-array traffic versus `usize`, matching GPU practice.
pub type VertexId = u32;
