//! Feature and label synthesis.
//!
//! GNNBench (which the paper integrates with) generates features and labels
//! for unlabeled datasets; we do the same for all datasets. For *labeled*
//! stand-ins the features are class-conditional Gaussians around per-class
//! mean directions, so a GCN/GAT/GIN can genuinely separate the classes and
//! the accuracy comparisons of Fig. 5 are meaningful.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sample a standard normal via Box–Muller (avoids a rand_distr dependency).
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen::<f64>();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Class-conditional features: row `v` is `mu[label(v)] + noise`, where each
/// class mean is a random unit-ish direction scaled by `signal`. Returned
/// row-major, `n × f`.
pub fn class_features(
    labels: &[u32],
    num_classes: usize,
    f: usize,
    signal: f32,
    noise: f32,
    seed: u64,
) -> Vec<f32> {
    class_features_with(labels, num_classes, f, signal, noise, false, seed)
}

/// As [`class_features`], optionally clamped non-negative (count-like
/// features à la Reddit/Ogb-product: same-sign values are what make hub
/// aggregations cross the FP16 range).
pub fn class_features_with(
    labels: &[u32],
    num_classes: usize,
    f: usize,
    signal: f32,
    noise: f32,
    nonneg: bool,
    seed: u64,
) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut means = vec![0f32; num_classes * f];
    for m in means.iter_mut() {
        *m = gaussian(&mut rng) * signal / (f as f32).sqrt() * (f as f32).sqrt();
    }
    // Normalize each class mean so the *per-dimension* RMS is `signal`
    // (vector length signal·√f): feature magnitudes, which drive FP16
    // behaviour, are then directly controlled by `signal`.
    for c in 0..num_classes {
        let row = &mut means[c * f..(c + 1) * f];
        let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
        let target = signal * (f as f32).sqrt();
        for x in row.iter_mut() {
            *x *= target / norm;
        }
    }
    if nonneg {
        for m in means.iter_mut() {
            *m = m.abs();
        }
    }
    let mut out = vec![0f32; labels.len() * f];
    for (v, &l) in labels.iter().enumerate() {
        let mu = &means[l as usize * f..(l as usize + 1) * f];
        let row = &mut out[v * f..(v + 1) * f];
        for (x, &m) in row.iter_mut().zip(mu) {
            let v = m + gaussian(&mut rng) * noise;
            *x = if nonneg { v.max(0.0) } else { v };
        }
    }
    out
}

/// Overwrite column 0 with a large-magnitude, weakly-informative "count"
/// column (`scale · (0.5 + |N(0,1)|)`), mimicking the heterogeneous column
/// scales of count-derived features (posts, purchases). A hub row's FP16
/// aggregation of this column crosses 65504 while the standardized columns
/// keep the dataset learnable — the paper's Reddit/Ogb-product operating
/// point at reduced scale.
pub fn attach_count_column(x: &mut [f32], f: usize, scale: f32, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for row in x.chunks_mut(f) {
        row[0] = scale * (0.5 + gaussian(&mut rng).abs());
    }
}

/// Uniform random features in `[-scale, scale)` for unlabeled performance
/// datasets (mirrors GNNBench's generated inputs).
pub fn random_features(n: usize, f: usize, scale: f32, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n * f).map(|_| rng.gen_range(-scale..scale)).collect()
}

/// Uniform random labels in `0..num_classes`.
pub fn random_labels(n: usize, num_classes: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..num_classes as u32)).collect()
}

/// Deterministic train/val/test split masks (fractions of each class, so
/// every class appears in every split).
pub struct Split {
    /// True where the vertex participates in the training loss.
    pub train: Vec<bool>,
    /// Validation vertices.
    pub val: Vec<bool>,
    /// Held-out test vertices.
    pub test: Vec<bool>,
}

/// Split vertices 60/20/20 per class, deterministically in `seed`.
pub fn split_per_class(labels: &[u32], seed: u64) -> Split {
    let n = labels.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    // Fisher–Yates shuffle.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let num_classes = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for &v in &order {
        per_class[labels[v] as usize].push(v);
    }
    let mut split = Split { train: vec![false; n], val: vec![false; n], test: vec![false; n] };
    for members in per_class {
        let t = (members.len() * 6) / 10;
        let v = (members.len() * 8) / 10;
        for (i, &m) in members.iter().enumerate() {
            if i < t {
                split.train[m] = true;
            } else if i < v {
                split.val[m] = true;
            } else {
                split.test[m] = true;
            }
        }
    }
    split
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_features_are_separable() {
        let labels: Vec<u32> = (0..300).map(|i| (i % 3) as u32).collect();
        let f = 16;
        let x = class_features(&labels, 3, f, 1.0, 0.1, 5);
        assert_eq!(x.len(), 300 * f);
        // Same-class rows should be closer than cross-class rows on average.
        let dist = |a: usize, b: usize| -> f32 {
            (0..f).map(|k| (x[a * f + k] - x[b * f + k]).powi(2)).sum::<f32>()
        };
        let same = dist(0, 3) + dist(1, 4) + dist(2, 5);
        let cross = dist(0, 1) + dist(1, 2) + dist(3, 5);
        assert!(same < cross, "same {same} cross {cross}");
    }

    #[test]
    fn class_features_deterministic() {
        let labels = vec![0u32, 1, 0, 1];
        assert_eq!(
            class_features(&labels, 2, 8, 1.0, 0.2, 9),
            class_features(&labels, 2, 8, 1.0, 0.2, 9)
        );
    }

    #[test]
    fn random_features_bounded() {
        let x = random_features(50, 10, 0.5, 3);
        assert_eq!(x.len(), 500);
        assert!(x.iter().all(|v| (-0.5..0.5).contains(v)));
    }

    #[test]
    fn random_labels_in_range() {
        let l = random_labels(1000, 7, 4);
        assert!(l.iter().all(|&c| c < 7));
        // All classes should be hit at n=1000, c=7.
        for c in 0..7 {
            assert!(l.contains(&c), "class {c} never sampled");
        }
    }

    #[test]
    fn split_covers_all_vertices_once() {
        let labels = random_labels(500, 5, 8);
        let s = split_per_class(&labels, 1);
        for v in 0..500 {
            let count = s.train[v] as u8 + s.val[v] as u8 + s.test[v] as u8;
            assert_eq!(count, 1, "vertex {v} in {count} splits");
        }
        let train_n = s.train.iter().filter(|&&b| b).count();
        assert!((250..=350).contains(&train_n), "train size {train_n}");
    }

    #[test]
    fn split_has_every_class_in_train() {
        let labels = random_labels(200, 4, 2);
        let s = split_per_class(&labels, 7);
        for c in 0..4u32 {
            assert!(
                labels.iter().enumerate().any(|(v, &l)| l == c && s.train[v]),
                "class {c} missing from train"
            );
        }
    }

    #[test]
    fn gaussian_moments_sane() {
        let mut rng = StdRng::seed_from_u64(0);
        let xs: Vec<f32> = (0..20000).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / xs.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
