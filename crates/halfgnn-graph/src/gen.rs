//! Synthetic graph generators. Each produces the *shape* of one family of
//! datasets from the paper's Table 1:
//!
//! * [`rmat`] — Kronecker/R-MAT power-law graphs (Kron-21, social networks,
//!   web crawls). The recursive quadrant biasing concentrates edges on a few
//!   hub vertices, which is precisely what overflows FP16 SpMM reductions.
//! * [`preferential_attachment`] — heavy-tailed citation/collaboration
//!   graphs (Cit-Patent, Hollywood09, As-Skitter stand-ins).
//! * [`sbm`] / [`sbm_with_hubs`] — stochastic block models with community
//!   structure for the *labeled* datasets: class-pure blocks give GNNs
//!   signal to learn, the hub overlay restores the degree skew real
//!   datasets (Reddit, Ogb-product) have.
//! * [`grid2d`] — near-planar constant-degree mesh (RoadNet-CA stand-in):
//!   the no-skew contrast case where workload balancing matters least.
//! * [`erdos_renyi`] — uniform random baseline used mainly by tests.
//!
//! All generators are deterministic in their seed.

use crate::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// R-MAT recursive quadrant generator (Chakrabarti et al.). `scale` gives
/// `n = 2^scale` vertices; `edge_factor` gives `m = n * edge_factor` edge
/// samples (duplicates are removed downstream, so the realized edge count is
/// slightly lower). Partition probabilities `(a, b, c)` with `d = 1-a-b-c`;
/// the classic skewed setting is `(0.57, 0.19, 0.19)`.
pub fn rmat(
    scale: u32,
    edge_factor: usize,
    (a, b, c): (f64, f64, f64),
    seed: u64,
) -> Vec<(VertexId, VertexId)> {
    assert!(a + b + c < 1.0 + 1e-9, "R-MAT probabilities must sum below 1");
    let n = 1usize << scale;
    let m = n * edge_factor;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut r0, mut r1, mut c0, mut c1) = (0usize, n, 0usize, n);
        while r1 - r0 > 1 {
            let p: f64 = rng.gen();
            let (row_hi, col_hi) = if p < a {
                (false, false)
            } else if p < a + b {
                (false, true)
            } else if p < a + b + c {
                (true, false)
            } else {
                (true, true)
            };
            let rm = (r0 + r1) / 2;
            let cm = (c0 + c1) / 2;
            if row_hi {
                r0 = rm;
            } else {
                r1 = rm;
            }
            if col_hi {
                c0 = cm;
            } else {
                c1 = cm;
            }
        }
        if r0 != c0 {
            edges.push((r0 as VertexId, c0 as VertexId));
        }
    }
    edges
}

/// Barabási–Albert preferential attachment: each new vertex attaches `m`
/// edges to existing vertices chosen proportionally to degree, yielding a
/// power-law tail with a handful of very-high-degree hubs.
pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    assert!(n > m && m >= 1, "need n > m >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n * m);
    // `targets` holds one entry per edge endpoint: sampling uniformly from
    // it is sampling proportionally to degree.
    let mut targets: Vec<VertexId> = (0..m as VertexId).collect();
    for v in m..n {
        let mut chosen = Vec::with_capacity(m);
        while chosen.len() < m {
            let t = targets[rng.gen_range(0..targets.len())];
            if t != v as VertexId && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            edges.push((v as VertexId, t));
            targets.push(t);
            targets.push(v as VertexId);
        }
    }
    edges
}

/// Stochastic block model: `block_sizes.len()` communities; an edge between
/// two vertices appears with probability `p_in` inside a block and `p_out`
/// across blocks. Returns the edges and the block (class) label per vertex.
pub fn sbm(
    block_sizes: &[usize],
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> (Vec<(VertexId, VertexId)>, Vec<u32>) {
    let n: usize = block_sizes.iter().sum();
    let mut labels = Vec::with_capacity(n);
    for (b, &size) in block_sizes.iter().enumerate() {
        labels.extend(std::iter::repeat_n(b as u32, size));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    // Intra-block edges: geometric skipping over each block's own pair
    // list, so the work is O(|E|) rather than O(n²) — sampling the global
    // pair list and filtering would draw ~p_in·n²/2 candidates.
    let mut start = 0u64;
    for &size in block_sizes {
        let b = size as u64;
        for rank in bernoulli_ranks(b * b.saturating_sub(1) / 2, p_in, &mut rng) {
            let (i, j) = triangle_unrank(rank, b);
            edges.push(((start + i) as VertexId, (start + j) as VertexId));
        }
        start += b;
    }
    // Inter-block edges: sample the global pair list at rate p_out and drop
    // the (few) same-block hits; the overdraw factor is 1/(1-Σ(sᵢ/n)²).
    let total = (n as u64) * (n as u64 - 1) / 2;
    for rank in bernoulli_ranks(total, p_out, &mut rng) {
        let (i, j) = triangle_unrank(rank, n as u64);
        if labels[i as usize] != labels[j as usize] {
            edges.push((i as VertexId, j as VertexId));
        }
    }
    (edges, labels)
}

/// Ranks of the successes in `total` independent Bernoulli(p) trials, via
/// geometric skipping (O(#successes) draws).
fn bernoulli_ranks(total: u64, p: f64, rng: &mut StdRng) -> Vec<u64> {
    let mut out = Vec::new();
    if p <= 0.0 || total == 0 {
        return out;
    }
    if p >= 1.0 {
        return (0..total).collect();
    }
    let log_q = (1.0 - p).ln();
    let mut idx = 0u64;
    loop {
        let u: f64 = rng.gen::<f64>().max(1e-300);
        idx += 1 + (u.ln() / log_q) as u64;
        if idx > total {
            return out;
        }
        out.push(idx - 1);
    }
}

/// Map a linear rank in `0..n*(n-1)/2` to an upper-triangle pair `(i, j)`,
/// `i < j`.
fn triangle_unrank(rank: u64, n: u64) -> (u64, u64) {
    // Row i starts at offset i*n - i*(i+1)/2 - i... solve by scanning rows
    // arithmetically: remaining pairs after row i is (n-1-i) per row.
    let mut i = 0u64;
    let mut r = rank;
    loop {
        let row_len = n - 1 - i;
        if r < row_len {
            return (i, i + 1 + r);
        }
        r -= row_len;
        i += 1;
    }
}

/// SBM plus a hub overlay: `num_hubs` vertices each additionally connect to
/// `hub_degree` uniformly random vertices. This restores the heavy tail
/// that Reddit/Ogb-product have (mean degree ~500, max degree in the tens
/// of thousands) — the vertices whose SpMM reduction overflows FP16.
pub fn sbm_with_hubs(
    block_sizes: &[usize],
    p_in: f64,
    p_out: f64,
    num_hubs: usize,
    hub_degree: usize,
    seed: u64,
) -> (Vec<(VertexId, VertexId)>, Vec<u32>) {
    let (mut edges, labels) = sbm(block_sizes, p_in, p_out, seed);
    let n: usize = block_sizes.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    for h in 0..num_hubs {
        // Spread hubs across the vertex range so each block gets some.
        let hub = ((h * n) / num_hubs.max(1)) as VertexId;
        for _ in 0..hub_degree {
            let t = rng.gen_range(0..n) as VertexId;
            if t != hub {
                edges.push((hub, t));
            }
        }
    }
    (edges, labels)
}

/// 2-D grid with 4-neighborhood: RoadNet-like near-constant degree.
pub fn grid2d(width: usize, height: usize) -> Vec<(VertexId, VertexId)> {
    let mut edges = Vec::with_capacity(2 * width * height);
    let id = |x: usize, y: usize| (y * width + x) as VertexId;
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width {
                edges.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < height {
                edges.push((id(x, y), id(x, y + 1)));
            }
        }
    }
    edges
}

/// Erdős–Rényi G(n, m): `m` uniformly random distinct ordered pairs.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let a = rng.gen_range(0..n) as VertexId;
        let b = rng.gen_range(0..n) as VertexId;
        if a != b {
            edges.push((a, b));
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Csr;

    #[test]
    fn rmat_is_deterministic_and_skewed() {
        let e1 = rmat(10, 8, (0.57, 0.19, 0.19), 7);
        let e2 = rmat(10, 8, (0.57, 0.19, 0.19), 7);
        assert_eq!(e1, e2);
        let g = Csr::from_edges(1024, 1024, &e1);
        // Power-law: the max degree should dwarf the mean.
        assert!(
            g.max_degree() as f64 > 8.0 * g.mean_degree(),
            "max {} mean {}",
            g.max_degree(),
            g.mean_degree()
        );
    }

    #[test]
    fn rmat_different_seeds_differ() {
        assert_ne!(rmat(8, 4, (0.57, 0.19, 0.19), 1), rmat(8, 4, (0.57, 0.19, 0.19), 2));
    }

    #[test]
    fn pref_attach_shape() {
        let edges = preferential_attachment(500, 3, 11);
        assert_eq!(edges.len(), (500 - 3) * 3);
        let g = Csr::from_edges(500, 500, &edges).symmetrized_with_self_loops();
        assert!(g.max_degree() > 25, "expected hubs, max degree {}", g.max_degree());
    }

    #[test]
    fn sbm_homophily() {
        let (edges, labels) = sbm(&[200, 200, 200], 0.05, 0.002, 3);
        let intra =
            edges.iter().filter(|&&(a, b)| labels[a as usize] == labels[b as usize]).count();
        let inter = edges.len() - intra;
        assert!(intra > 3 * inter, "intra {intra} inter {inter}");
        assert_eq!(labels.len(), 600);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[599], 2);
    }

    #[test]
    fn sbm_edge_count_near_expectation() {
        let (edges, _) = sbm(&[400, 400], 0.04, 0.004, 5);
        // E[intra] = 2 * C(400,2) * 0.04 ≈ 6384; E[inter] = 160000*0.004 = 640.
        let expected = 2.0 * (400.0 * 399.0 / 2.0) * 0.04 + 400.0 * 400.0 * 0.004;
        let got = edges.len() as f64;
        assert!((got - expected).abs() < 0.15 * expected, "got {got} expected {expected}");
    }

    #[test]
    fn sbm_hubs_raise_max_degree() {
        let sizes = [300usize, 300, 300];
        let (plain, _) = sbm(&sizes, 0.02, 0.001, 9);
        let (hubby, _) = sbm_with_hubs(&sizes, 0.02, 0.001, 4, 400, 9);
        let g0 = Csr::from_edges(900, 900, &plain).symmetrized_with_self_loops();
        let g1 = Csr::from_edges(900, 900, &hubby).symmetrized_with_self_loops();
        assert!(
            g1.max_degree() > g0.max_degree() + 200,
            "{} vs {}",
            g1.max_degree(),
            g0.max_degree()
        );
    }

    #[test]
    fn grid_degrees_bounded() {
        let g = Csr::from_edges(100, 100, &grid2d(10, 10)).symmetrized_with_self_loops();
        assert!(g.max_degree() <= 5); // 4 neighbors + self loop
        assert_eq!(g.num_rows(), 100);
    }

    #[test]
    fn erdos_renyi_count() {
        let edges = erdos_renyi(1000, 5000, 2);
        assert_eq!(edges.len(), 5000);
        assert!(edges.iter().all(|&(a, b)| a != b && (a as usize) < 1000 && (b as usize) < 1000));
    }

    #[test]
    fn triangle_unrank_is_bijective_small() {
        let n = 7u64;
        let mut seen = std::collections::HashSet::new();
        for r in 0..n * (n - 1) / 2 {
            let (i, j) = triangle_unrank(r, n);
            assert!(i < j && j < n);
            assert!(seen.insert((i, j)));
        }
    }
}
