//! Analytic GPU-memory accounting for Fig. 6.
//!
//! Every tensor a training configuration materializes — input features,
//! per-layer state tensors, gradients, parameters, optimizer state, and
//! workspace buffers — is registered here with its element width. Peak
//! usage is what the paper's Fig. 6 reports; half-precision state tensors
//! are where the 2.67× saving comes from (plus DGL's framework overhead,
//! which [`MemoryTracker::framework_overhead`] models).

/// Tracks current and peak simulated device-memory usage.
#[derive(Debug, Default, Clone)]
pub struct MemoryTracker {
    current: u64,
    peak: u64,
    /// Fixed overhead added once (framework workspace, caching allocator
    /// slack). DGL's is large (§6.1.2 cites GNNBench's findings).
    overhead: u64,
    log: Vec<(String, u64)>,
}

impl MemoryTracker {
    /// Fresh tracker with no overhead.
    pub fn new() -> MemoryTracker {
        MemoryTracker::default()
    }

    /// Set the framework's fixed overhead in bytes (counted toward peak).
    pub fn framework_overhead(&mut self, bytes: u64) {
        self.overhead = bytes;
    }

    /// Register a tensor of `elems` elements, `elem_bytes` wide.
    pub fn alloc(&mut self, name: &str, elems: usize, elem_bytes: usize) -> u64 {
        let bytes = (elems * elem_bytes) as u64;
        self.current += bytes;
        self.peak = self.peak.max(self.current);
        self.log.push((name.to_string(), bytes));
        bytes
    }

    /// Release a previously registered allocation.
    pub fn free(&mut self, bytes: u64) {
        self.current = self.current.saturating_sub(bytes);
    }

    /// Current live bytes (excluding overhead).
    pub fn current(&self) -> u64 {
        self.current
    }

    /// Peak bytes including the framework overhead.
    pub fn peak(&self) -> u64 {
        self.peak + self.overhead
    }

    /// Peak in mebibytes.
    pub fn peak_mib(&self) -> f64 {
        self.peak() as f64 / (1024.0 * 1024.0)
    }

    /// Allocation log: `(name, bytes)` in registration order.
    pub fn log(&self) -> &[(String, u64)] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m = MemoryTracker::new();
        let a = m.alloc("a", 1000, 4);
        assert_eq!(a, 4000);
        let b = m.alloc("b", 1000, 2);
        assert_eq!(m.current(), 6000);
        m.free(b);
        assert_eq!(m.current(), 4000);
        m.alloc("c", 100, 2);
        assert_eq!(m.peak(), 6000, "peak stays at the high-water mark");
    }

    #[test]
    fn overhead_counts_toward_peak_only() {
        let mut m = MemoryTracker::new();
        m.framework_overhead(1_000_000);
        m.alloc("x", 10, 4);
        assert_eq!(m.current(), 40);
        assert_eq!(m.peak(), 1_000_040);
        assert!((m.peak_mib() - 1_000_040.0 / 1048576.0).abs() < 1e-9);
    }

    #[test]
    fn half_tensors_halve_the_bytes() {
        let mut h = MemoryTracker::new();
        let mut f = MemoryTracker::new();
        for layer in 0..3 {
            h.alloc(&format!("act{layer}"), 10_000 * 64, 2);
            f.alloc(&format!("act{layer}"), 10_000 * 64, 4);
        }
        assert_eq!(f.peak(), 2 * h.peak());
    }

    #[test]
    fn log_records_names() {
        let mut m = MemoryTracker::new();
        m.alloc("weights", 64, 4);
        assert_eq!(m.log()[0].0, "weights");
        assert_eq!(m.log()[0].1, 256);
    }
}
