//! Dense tensor operations, the AMP autocast policy, and memory tracking.
//!
//! GNN training is mostly sparse kernels plus a handful of dense ops:
//! linear layers (GeMM), bias/activation, dropout, and the final softmax
//! cross-entropy. This crate provides those on the same cost-model
//! simulator the sparse kernels use, in both precisions, and implements
//! the two mixed-precision behaviours the paper contrasts:
//!
//! * the PyTorch **AMP policy** (§3.1.2): a fixed list of ops that are
//!   force-promoted to float, each promotion materializing a converted
//!   tensor (counted by [`ops::Ops`] and reproduced in the `conversions`
//!   experiment);
//! * the **shadow APIs** (§5.3): half-native versions invoked when the
//!   model guarantees the output fits in half.
//!
//! [`memory::MemoryTracker`] accounts every tensor allocation so Fig. 6's
//! training-memory comparison can be regenerated analytically.

pub mod amp;
pub mod memory;
pub mod ops;

pub use memory::MemoryTracker;
pub use ops::Ops;
