//! The PyTorch AMP autocast policy, as the paper characterizes it
//! (§3.1.2): a fixed list of operations that are force-promoted to float
//! under mixed precision, regardless of whether the model guarantees their
//! output fits in half.
//!
//! The policy itself is data: [`promotes_to_float`] answers whether AMP
//! would upgrade an op. The *shadow API* decision (§5.3) consults the same
//! table but lets the caller assert an overflow-safety contract and stay
//! in half.

/// Operations that appear in GNN models, classified by AMP behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// `exp` — promoted: output range `(0, INF)` in general.
    Exp,
    /// Row-wise softmax — promoted (internally exp + sum).
    Softmax,
    /// Log / log-softmax — promoted.
    Log,
    /// Reductions (`sum`, `mean` over big axes) — promoted.
    Sum,
    /// Cross-entropy / NLL loss — promoted.
    CrossEntropy,
    /// Matrix multiply — runs in half on tensor cores (AMP "fp16" list).
    MatMul,
    /// SpMM — DGL dispatches on input dtype; half allowed.
    SpMM,
    /// SDDMM — half allowed.
    Sddmm,
    /// Elementwise add/mul — dtype-preserving.
    Elementwise,
    /// ReLU / LeakyReLU — dtype-preserving.
    Relu,
    /// Dropout — dtype-preserving.
    Dropout,
}

/// Would PyTorch AMP force this op to run in float on half inputs?
pub const fn promotes_to_float(op: Op) -> bool {
    matches!(op, Op::Exp | Op::Softmax | Op::Log | Op::Sum | Op::CrossEntropy)
}

/// Is a half-native *shadow* version sound, given the caller-asserted
/// input contract? The table encodes the paper's analyses:
///
/// * `Exp` with non-positive inputs: output in `(0, 1]` — safe.
/// * `Sum` bounded by `max_terms · max|value| ≤ 65504` — safe.
/// * `Softmax` after max-subtraction — safe (it is exp-of-nonpositive
///   followed by a bounded division).
pub fn shadow_is_safe(op: Op, contract: InputContract) -> bool {
    match op {
        Op::Exp => contract.non_positive,
        Op::Softmax => contract.max_subtracted,
        Op::Sum => contract.bounded_sum,
        Op::Log => contract.bounded_away_from_zero,
        Op::CrossEntropy => false, // loss stays in float (weight updates too)
        _ => true,                 // dtype-preserving ops never needed promotion
    }
}

/// Caller-asserted properties of an op's inputs.
#[derive(Clone, Copy, Debug, Default)]
pub struct InputContract {
    /// Every input value is ≤ 0 (e.g. `e_ij − m_i`).
    pub non_positive: bool,
    /// The rowwise max has been subtracted (stabilized softmax).
    pub max_subtracted: bool,
    /// `Σ|x| ≤ 65504` is guaranteed (e.g. softmax denominator ≤ degree).
    pub bounded_sum: bool,
    /// Inputs are ≥ some ε > 2⁻²⁴.
    pub bounded_away_from_zero: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion_list_matches_paper() {
        // §3.1.2: "cross-entropy, log loss, softmax calculation,
        // summation, etc." are promoted; sparse kernels and GeMM are not.
        for op in [Op::Exp, Op::Softmax, Op::Log, Op::Sum, Op::CrossEntropy] {
            assert!(promotes_to_float(op), "{op:?} should promote");
        }
        for op in [Op::MatMul, Op::SpMM, Op::Sddmm, Op::Elementwise, Op::Relu, Op::Dropout] {
            assert!(!promotes_to_float(op), "{op:?} should stay in half");
        }
    }

    #[test]
    fn shadow_exp_requires_the_contract() {
        assert!(!shadow_is_safe(Op::Exp, InputContract::default()));
        assert!(shadow_is_safe(
            Op::Exp,
            InputContract { non_positive: true, ..Default::default() }
        ));
    }

    #[test]
    fn shadow_softmax_needs_stabilization() {
        assert!(shadow_is_safe(
            Op::Softmax,
            InputContract { max_subtracted: true, ..Default::default() }
        ));
        assert!(!shadow_is_safe(Op::Softmax, InputContract::default()));
    }

    #[test]
    fn loss_never_shadows() {
        // Micikevicius et al.: weight updates and loss stay in float.
        let all = InputContract {
            non_positive: true,
            max_subtracted: true,
            bounded_sum: true,
            bounded_away_from_zero: true,
        };
        assert!(!shadow_is_safe(Op::CrossEntropy, all));
    }

    #[test]
    fn dtype_preserving_ops_always_safe() {
        assert!(shadow_is_safe(Op::Relu, InputContract::default()));
        assert!(shadow_is_safe(Op::SpMM, InputContract::default()));
    }
}
