//! Dense operations on the cost-model simulator, plus the kernel/time log
//! a training step accumulates.
//!
//! [`Ops`] is the execution context one training step threads through: it
//! records every kernel's [`KernelStats`] (sparse kernels from
//! `halfgnn-kernels` report into the same log via [`Ops::record`]), counts
//! tensor-level dtype conversions (the §3.1.2 tax), and sums modeled time.
//!
//! The log's meaning follows the device's execution backend
//! (`DeviceConfig::exec`): under `ExecMode::Sim` every entry carries
//! modeled cycles and `total_time_us` is analytic; under `ExecMode::Fast`
//! entries carry zero cycles and measured wall-clock, so `total_time_us`
//! sums real elapsed time. Functional results are bit-identical either
//! way.

use halfgnn_exec::{buf_ref, BufRef, ExecCtx};
use halfgnn_half::slice::{f32_slice_to_half, half_slice_to_f32};
use halfgnn_half::Half;
use halfgnn_sim::launch::{launch, LaunchParams};
use halfgnn_sim::{DeviceConfig, KernelStats};
use rayon::prelude::*;

/// Execution context: device, kernel log, conversion counters.
pub struct Ops<'d> {
    /// Device the kernels are modeled on.
    pub dev: &'d DeviceConfig,
    /// Every kernel launched in this context, in order.
    pub log: Vec<KernelStats>,
    /// Tensor-level h2f/f2h conversion kernels launched.
    pub tensor_conversions: u64,
    /// Total elements converted between dtypes.
    pub converted_elems: u64,
    /// Static loss scale for mixed-precision backward passes (Micikevicius
    /// et al.): the loss gradient is multiplied by this before the f2h
    /// cast and weight gradients divide it back out at the master update.
    pub loss_scale: f32,
    /// Capture/replay context. While capturing, dense kernels record
    /// themselves into the execution graph; while replaying, [`Ops::record`]
    /// strips the per-launch overhead the capture epoch already charged.
    pub exec: Option<&'d ExecCtx>,
}

/// Elements each CTA covers in elementwise kernels.
const EW_CTA_ELEMS: usize = 8192;

impl<'d> Ops<'d> {
    /// New context on `dev`.
    pub fn new(dev: &'d DeviceConfig) -> Ops<'d> {
        Ops {
            dev,
            log: Vec::new(),
            tensor_conversions: 0,
            converted_elems: 0,
            loss_scale: 1.0,
            exec: None,
        }
    }

    /// Attach a capture/replay context.
    pub fn with_exec(mut self, exec: Option<&'d ExecCtx>) -> Ops<'d> {
        self.exec = exec;
        self
    }

    /// Record an externally produced kernel's stats (sparse kernels).
    /// During a replay epoch the per-launch overhead was already charged
    /// at capture, so it is stripped here — the CUDA-graph effect.
    pub fn record(&mut self, stats: KernelStats) {
        let stats = match self.exec {
            Some(ctx) if ctx.is_replaying() => {
                let (stripped, saved) = stats.without_launch_overhead(self.dev);
                ctx.add_saved_cycles(saved);
                stripped
            }
            _ => stats,
        };
        self.log.push(stats);
    }

    /// Capture hook: record a dense-kernel launch into the execution
    /// graph (no-op without a capturing context).
    fn trace(&self, op: &'static str, inputs: &[BufRef], outputs: &[BufRef]) {
        if let Some(ctx) = self.exec {
            ctx.record_node(op, inputs, outputs, None);
        }
    }

    /// Total modeled cycles across all logged kernels.
    pub fn total_cycles(&self) -> f64 {
        self.log.iter().map(|s| s.cycles).sum()
    }

    /// Total modeled time in microseconds.
    pub fn total_time_us(&self) -> f64 {
        self.log.iter().map(|s| s.time_us).sum()
    }

    /// Number of kernels launched.
    pub fn kernel_count(&self) -> usize {
        self.log.len()
    }

    /// Charge a simple streaming elementwise kernel: `reads`+`writes`
    /// tensors of `n` elements at `elem_bytes`, `instrs_per_32` compute
    /// instructions per 32 elements.
    #[allow(clippy::too_many_arguments)]
    fn charge_elementwise(
        &mut self,
        name: &str,
        n: usize,
        elem_bytes: usize,
        reads: usize,
        writes: usize,
        instrs_per_32: u64,
        half_path: bool,
    ) {
        if n == 0 {
            return;
        }
        let num_ctas = n.div_ceil(EW_CTA_ELEMS).max(1);
        let (_, stats) =
            launch(self.dev, name, LaunchParams { num_ctas, warps_per_cta: 4 }, |cta| {
                let lo = cta.id * EW_CTA_ELEMS;
                let hi = (lo + EW_CTA_ELEMS).min(n);
                if lo >= hi {
                    return;
                }
                let span = hi - lo;
                let per_warp = span.div_ceil(4);
                for wi in 0..4 {
                    let wlo = lo + wi * per_warp;
                    if wlo >= hi {
                        break;
                    }
                    let wn = per_warp.min(hi - wlo);
                    let mut warp = cta.warp(wi);
                    for r in 0..reads {
                        warp.load_contiguous(
                            (r as u64) << 32 | (wlo * elem_bytes) as u64,
                            wn,
                            elem_bytes,
                        );
                    }
                    let instrs = instrs_per_32 * (wn as u64).div_ceil(32);
                    if half_path {
                        warp.half2_ops(instrs);
                    } else {
                        warp.float_ops(instrs);
                    }
                    for w in 0..writes {
                        warp.store_contiguous(
                            (w as u64 + 8) << 32 | (wlo * elem_bytes) as u64,
                            wn,
                            elem_bytes,
                        );
                    }
                }
            });
        self.record(stats);
    }

    /// Divide a gradient tensor by the loss scale (no-op at scale 1).
    pub fn unscale_grad(&mut self, g: &mut [f32]) {
        if self.loss_scale != 1.0 {
            let inv = 1.0 / self.loss_scale;
            self.charge_elementwise("unscale_grad", g.len(), 4, 1, 1, 1, false);
            self.trace("unscale_grad", &[buf_ref(g)], &[buf_ref(g)]);
            for v in g.iter_mut() {
                *v *= inv;
            }
        }
    }

    /// Convert a float tensor to half (charged conversion kernel).
    pub fn to_half(&mut self, x: &[f32]) -> Vec<Half> {
        self.tensor_conversions += 1;
        self.converted_elems += x.len() as u64;
        self.charge_elementwise("f2h_convert", x.len(), 4, 1, 1, 1, false);
        let out = f32_slice_to_half(x);
        self.trace("f2h_convert", &[buf_ref(x)], &[buf_ref(&out)]);
        out
    }

    /// Convert a half tensor to float (charged conversion kernel).
    pub fn to_f32(&mut self, x: &[Half]) -> Vec<f32> {
        self.tensor_conversions += 1;
        self.converted_elems += x.len() as u64;
        self.charge_elementwise("h2f_convert", x.len(), 4, 1, 1, 1, false);
        let out = half_slice_to_f32(x);
        self.trace("h2f_convert", &[buf_ref(x)], &[buf_ref(&out)]);
        out
    }

    /// Gather feature rows: `out[i, :] = x[ids[i], :]` with row width `f`.
    /// The batch loader's kernel — pulls a subgraph's feature rows out of
    /// the global feature matrix (one extra index read per element).
    pub fn gather_rows_f32(&mut self, x: &[f32], f: usize, ids: &[u32]) -> Vec<f32> {
        self.charge_elementwise("gather_rows_f32", ids.len() * f, 4, 2, 1, 1, false);
        let mut out = Vec::with_capacity(ids.len() * f);
        for &id in ids {
            let r = id as usize * f;
            out.extend_from_slice(&x[r..r + f]);
        }
        self.trace("gather_rows_f32", &[buf_ref(x)], &[buf_ref(&out)]);
        out
    }

    /// [`Ops::gather_rows_f32`] for half tensors (half the bytes moved).
    pub fn gather_rows_half(&mut self, x: &[Half], f: usize, ids: &[u32]) -> Vec<Half> {
        self.charge_elementwise("gather_rows_f16", ids.len() * f, 2, 2, 1, 1, true);
        let mut out = Vec::with_capacity(ids.len() * f);
        for &id in ids {
            let r = id as usize * f;
            out.extend_from_slice(&x[r..r + f]);
        }
        self.trace("gather_rows_f16", &[buf_ref(x)], &[buf_ref(&out)]);
        out
    }

    /// `C[m×n] ← op(A)[m×k] · op(B)[k×n]` in f32. `ta`/`tb` transpose the
    /// stored operands (A is stored `m×k` or `k×m` accordingly).
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_f32(
        &mut self,
        a: &[f32],
        ta: bool,
        b: &[f32],
        tb: bool,
        m: usize,
        k: usize,
        n: usize,
    ) -> Vec<f32> {
        assert_eq!(a.len(), m * k, "A shape");
        assert_eq!(b.len(), k * n, "B shape");
        self.charge_gemm("gemm_f32", m, k, n, 4, 1.0);
        let out = matmul(a, ta, b, tb, m, k, n);
        self.trace("gemm_f32", &[buf_ref(a), buf_ref(b)], &[buf_ref(&out)]);
        out
    }

    /// Half GeMM as PyTorch AMP runs it: tensor cores, f32 accumulation,
    /// half storage. Modeled at 4× float throughput.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_half(
        &mut self,
        a: &[Half],
        ta: bool,
        b: &[Half],
        tb: bool,
        m: usize,
        k: usize,
        n: usize,
    ) -> Vec<Half> {
        assert_eq!(a.len(), m * k, "A shape");
        assert_eq!(b.len(), k * n, "B shape");
        self.charge_gemm("gemm_f16_tc", m, k, n, 2, 4.0);
        let af = half_slice_to_f32(a);
        let bf = half_slice_to_f32(b);
        let out = f32_slice_to_half(&matmul(&af, ta, &bf, tb, m, k, n));
        self.trace("gemm_f16_tc", &[buf_ref(a), buf_ref(b)], &[buf_ref(&out)]);
        out
    }

    /// GeMM cost: 64×64 output tiles, `mnk` MACs at `speedup`× float
    /// throughput, streaming operand tiles.
    fn charge_gemm(
        &mut self,
        name: &str,
        m: usize,
        k: usize,
        n: usize,
        elem_bytes: usize,
        speedup: f64,
    ) {
        let tiles_m = m.div_ceil(64).max(1);
        let tiles_n = n.div_ceil(64).max(1);
        let num_ctas = tiles_m * tiles_n;
        let fma_per_warp = ((64 * 64 * k) / 4 / 32) as u64; // 4 warps per tile
        let fma_per_warp = ((fma_per_warp as f64) / speedup).ceil() as u64;
        let (_, stats) =
            launch(self.dev, name, LaunchParams { num_ctas, warps_per_cta: 4 }, |cta| {
                let cta_id = cta.id;
                for wi in 0..4 {
                    let mut warp = cta.warp(wi);
                    // Each warp streams its share of the A and B tiles.
                    warp.load_contiguous((cta_id * 7919) as u64, 16 * k, elem_bytes);
                    warp.load_contiguous(((cta_id + 1) * 104729) as u64, 16 * k, elem_bytes);
                    warp.smem_accesses((k as u64).div_ceil(8));
                    if speedup > 1.0 {
                        warp.half2_ops(fma_per_warp);
                    } else {
                        warp.float_ops(fma_per_warp);
                    }
                    warp.store_contiguous((cta_id * 31) as u64, 16 * 64, elem_bytes);
                }
            });
        self.record(stats);
    }

    /// ReLU in f32. NaN propagates (as in PyTorch): an overflowed
    /// activation must not silently launder back to zero.
    pub fn relu_f32(&mut self, x: &[f32]) -> Vec<f32> {
        self.charge_elementwise("relu_f32", x.len(), 4, 1, 1, 1, false);
        let out: Vec<f32> =
            x.iter().map(|&v| if v.is_nan() || v > 0.0 { v } else { 0.0 }).collect();
        self.trace("relu_f32", &[buf_ref(x)], &[buf_ref(&out)]);
        out
    }

    /// ReLU in half (dtype-preserving under AMP). NaN propagates.
    pub fn relu_half(&mut self, x: &[Half]) -> Vec<Half> {
        self.charge_elementwise("relu_f16", x.len(), 2, 1, 1, 1, true);
        let out: Vec<Half> = x
            .iter()
            .map(|&v| if v.is_nan() || v.to_f32() > 0.0 { v } else { Half::ZERO })
            .collect();
        self.trace("relu_f16", &[buf_ref(x)], &[buf_ref(&out)]);
        out
    }

    /// ReLU backward: `δx = δy · 1[x > 0]` (NaN inputs propagate NaN).
    pub fn relu_grad_f32(&mut self, x: &[f32], dy: &[f32]) -> Vec<f32> {
        self.charge_elementwise("relu_grad_f32", x.len(), 4, 2, 1, 1, false);
        let out: Vec<f32> = x
            .iter()
            .zip(dy)
            .map(|(&v, &g)| {
                if v.is_nan() {
                    v
                } else if v > 0.0 {
                    g
                } else {
                    0.0
                }
            })
            .collect();
        self.trace("relu_grad_f32", &[buf_ref(x), buf_ref(dy)], &[buf_ref(&out)]);
        out
    }

    /// ReLU backward in half (NaN inputs propagate NaN).
    pub fn relu_grad_half(&mut self, x: &[Half], dy: &[Half]) -> Vec<Half> {
        self.charge_elementwise("relu_grad_f16", x.len(), 2, 2, 1, 1, true);
        let out: Vec<Half> = x
            .iter()
            .zip(dy)
            .map(|(&v, &g)| {
                if v.is_nan() {
                    v
                } else if v.to_f32() > 0.0 {
                    g
                } else {
                    Half::ZERO
                }
            })
            .collect();
        self.trace("relu_grad_f16", &[buf_ref(x), buf_ref(dy)], &[buf_ref(&out)]);
        out
    }

    /// Row-broadcast bias add in f32 (`x: m×n`, `bias: n`).
    pub fn bias_add_f32(&mut self, x: &[f32], bias: &[f32]) -> Vec<f32> {
        let n = bias.len();
        self.charge_elementwise("bias_f32", x.len(), 4, 2, 1, 1, false);
        let out: Vec<f32> = x.iter().enumerate().map(|(i, &v)| v + bias[i % n]).collect();
        self.trace("bias_f32", &[buf_ref(x), buf_ref(bias)], &[buf_ref(&out)]);
        out
    }

    /// Row-broadcast bias add in half.
    pub fn bias_add_half(&mut self, x: &[Half], bias: &[Half]) -> Vec<Half> {
        let n = bias.len();
        self.charge_elementwise("bias_f16", x.len(), 2, 2, 1, 1, true);
        let out: Vec<Half> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| halfgnn_half::intrinsics::hadd(v, bias[i % n]))
            .collect();
        self.trace("bias_f16", &[buf_ref(x), buf_ref(bias)], &[buf_ref(&out)]);
        out
    }

    /// `out ← a·x + b·y` in half (GIN's Eq. 4 aggregation combine).
    pub fn scale_add_half(&mut self, a: Half, x: &[Half], b: Half, y: &[Half]) -> Vec<Half> {
        assert_eq!(x.len(), y.len());
        self.charge_elementwise("scale_add_f16", x.len(), 2, 2, 1, 2, true);
        use halfgnn_half::intrinsics::{hadd, hmul};
        let out: Vec<Half> =
            x.iter().zip(y).map(|(&xv, &yv)| hadd(hmul(a, xv), hmul(b, yv))).collect();
        self.trace("scale_add_f16", &[buf_ref(x), buf_ref(y)], &[buf_ref(&out)]);
        out
    }

    /// `out ← a·x + b·y` in f32.
    pub fn scale_add_f32(&mut self, a: f32, x: &[f32], b: f32, y: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), y.len());
        self.charge_elementwise("scale_add_f32", x.len(), 4, 2, 1, 2, false);
        let out: Vec<f32> = x.iter().zip(y).map(|(&xv, &yv)| a * xv + b * yv).collect();
        self.trace("scale_add_f32", &[buf_ref(x), buf_ref(y)], &[buf_ref(&out)]);
        out
    }

    /// Scale each row of an `n×f` f32 tensor by `scale[row]` (degree-norm
    /// applied on the input side, as right-norm backward requires).
    pub fn row_scale_f32(&mut self, x: &[f32], scale: &[f32], f: usize) -> Vec<f32> {
        assert_eq!(x.len(), scale.len() * f);
        self.charge_elementwise("row_scale_f32", x.len(), 4, 1, 1, 1, false);
        let out: Vec<f32> = x.iter().enumerate().map(|(i, &v)| v * scale[i / f]).collect();
        self.trace("row_scale_f32", &[buf_ref(x), buf_ref(scale)], &[buf_ref(&out)]);
        out
    }

    /// Row scaling in half.
    pub fn row_scale_half(&mut self, x: &[Half], scale: &[Half], f: usize) -> Vec<Half> {
        assert_eq!(x.len(), scale.len() * f);
        self.charge_elementwise("row_scale_f16", x.len(), 2, 1, 1, 1, true);
        let out: Vec<Half> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| halfgnn_half::intrinsics::hmul(v, scale[i / f]))
            .collect();
        self.trace("row_scale_f16", &[buf_ref(x), buf_ref(scale)], &[buf_ref(&out)]);
        out
    }

    /// Column sums of an `m×n` f32 tensor (bias gradients). Promoted to
    /// float under AMP (it is a `Sum`), so there is no half variant.
    pub fn colsum_f32(&mut self, x: &[f32], n: usize) -> Vec<f32> {
        assert!(n > 0 && x.len().is_multiple_of(n));
        self.charge_elementwise("colsum_f32", x.len(), 4, 1, 0, 1, false);
        let mut out = vec![0f32; n];
        for row in x.chunks(n) {
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        self.trace("colsum_f32", &[buf_ref(x)], &[buf_ref(&out)]);
        out
    }

    /// Column sums of a half tensor, accumulated in f32 (AMP-promoted).
    pub fn colsum_half(&mut self, x: &[Half], n: usize) -> Vec<f32> {
        assert!(n > 0 && x.len().is_multiple_of(n));
        self.tensor_conversions += 1;
        self.converted_elems += x.len() as u64;
        self.charge_elementwise("colsum_f16_promoted", x.len(), 2, 1, 0, 2, false);
        let mut out = vec![0f32; n];
        for row in x.chunks(n) {
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v.to_f32();
            }
        }
        self.trace("colsum_f16_promoted", &[buf_ref(x)], &[buf_ref(&out)]);
        out
    }

    /// Row-wise **shadow softmax** in half precision (§5.3): legal because
    /// the kernel subtracts the row max first, so every exponent argument
    /// is ≤ 0 and every exponential lands in `(0, 1]`; the row sum is
    /// bounded by the row width. AMP would have promoted this to float
    /// with two tensor conversions.
    pub fn shadow_softmax_half(&mut self, x: &[Half], cols: usize) -> Vec<Half> {
        assert!(cols > 0 && x.len().is_multiple_of(cols));
        self.charge_elementwise("shadow_softmax_f16", x.len(), 2, 1, 1, 6, true);
        use halfgnn_half::intrinsics::{hdiv, hexp, hsub};
        let mut out = vec![Half::ZERO; x.len()];
        for (row_in, row_out) in x.chunks(cols).zip(out.chunks_mut(cols)) {
            let max = row_in.iter().fold(Half::NEG_INFINITY, |a, &b| a.max(b));
            let mut z = Half::ZERO;
            for (o, &v) in row_out.iter_mut().zip(row_in) {
                *o = hexp(hsub(v, max));
                z = halfgnn_half::intrinsics::hadd(z, *o);
            }
            for o in row_out.iter_mut() {
                *o = hdiv(*o, z);
            }
        }
        self.trace("shadow_softmax_f16", &[buf_ref(x)], &[buf_ref(&out)]);
        out
    }

    /// The AMP counterpart of [`Ops::shadow_softmax_half`]: promote to
    /// f32, softmax, round back — two extra tensor conversions, identical
    /// math up to rounding.
    pub fn amp_softmax_half(&mut self, x: &[Half], cols: usize) -> Vec<Half> {
        assert!(cols > 0 && x.len().is_multiple_of(cols));
        let xf = self.to_f32(x);
        self.charge_elementwise("softmax_f32", x.len(), 4, 1, 1, 6, false);
        let mut out = vec![0f32; x.len()];
        for (row_in, row_out) in xf.chunks(cols).zip(out.chunks_mut(cols)) {
            let max = row_in.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0f32;
            for (o, &v) in row_out.iter_mut().zip(row_in) {
                *o = (v - max).exp();
                z += *o;
            }
            for o in row_out.iter_mut() {
                *o /= z;
            }
        }
        self.trace("softmax_f32", &[buf_ref(&xf)], &[buf_ref(&out)]);
        self.to_half(&out)
    }

    /// Masked softmax cross-entropy (always f32 — AMP promotes it, and the
    /// paper keeps losses/weight updates in float per Micikevicius et al.).
    ///
    /// Returns `(mean loss, gradient w.r.t. logits, correct predictions)`
    /// over the masked rows; gradient rows outside the mask are zero.
    pub fn softmax_xent_f32(
        &mut self,
        logits: &[f32],
        labels: &[u32],
        mask: &[bool],
        classes: usize,
    ) -> (f32, Vec<f32>, usize) {
        let n = labels.len();
        assert_eq!(logits.len(), n * classes);
        self.charge_elementwise("softmax_xent_f32", logits.len(), 4, 1, 1, 6, false);
        let mut grad = vec![0f32; logits.len()];
        let mut loss = 0f64;
        let mut correct = 0usize;
        let mut count = 0usize;
        for v in 0..n {
            if !mask[v] {
                continue;
            }
            count += 1;
            let row = &logits[v * classes..(v + 1) * classes];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
            let z: f32 = exps.iter().sum();
            let label = labels[v] as usize;
            let prob = exps[label] / z;
            // Preserve NaN (overflowed logits): `max` would silently drop
            // it and hide the very failure Fig. 1c demonstrates.
            loss -= if prob.is_nan() { f64::NAN } else { (prob.max(1e-30) as f64).ln() };
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            if pred == label {
                correct += 1;
            }
            let g = &mut grad[v * classes..(v + 1) * classes];
            for (j, gv) in g.iter_mut().enumerate() {
                *gv = exps[j] / z - if j == label { 1.0 } else { 0.0 };
            }
        }
        let count = count.max(1);
        for g in grad.iter_mut() {
            *g /= count as f32;
        }
        self.trace("softmax_xent_f32", &[buf_ref(logits)], &[buf_ref(&grad)]);
        ((loss / count as f64) as f32, grad, correct)
    }

    /// Accuracy of argmax predictions over masked rows.
    pub fn accuracy(logits: &[f32], labels: &[u32], mask: &[bool], classes: usize) -> f32 {
        let mut correct = 0usize;
        let mut count = 0usize;
        for (v, &label) in labels.iter().enumerate() {
            if !mask[v] {
                continue;
            }
            count += 1;
            let row = &logits[v * classes..(v + 1) * classes];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            if pred == label as usize {
                correct += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            correct as f32 / count as f32
        }
    }
}

/// Rayon-parallel matmul with transpose flags. Deterministic at any thread
/// count: each worker owns disjoint output rows and the per-row reduction
/// order is fixed, so results are bit-identical to a serial run.
fn matmul(a: &[f32], ta: bool, b: &[f32], tb: bool, m: usize, k: usize, n: usize) -> Vec<f32> {
    let get_a = |i: usize, l: usize| if ta { a[l * m + i] } else { a[i * k + l] };
    let get_b = |l: usize, j: usize| if tb { b[j * k + l] } else { b[l * n + j] };
    let mut c = vec![0f32; m * n];
    c.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        for l in 0..k {
            let av = get_a(i, l);
            if av == 0.0 {
                continue;
            }
            if tb {
                for (j, cv) in row.iter_mut().enumerate() {
                    *cv += av * get_b(l, j);
                }
            } else {
                let brow = &b[l * n..(l + 1) * n];
                for (cv, &bv) in row.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use halfgnn_sim::DeviceConfig;

    fn dev() -> DeviceConfig {
        DeviceConfig::a100_like()
    }

    #[test]
    fn matmul_hand_checked() {
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        assert_eq!(matmul(&a, false, &b, false, 2, 2, 2), vec![19.0, 22.0, 43.0, 50.0]);
        // Aᵀ stored: columns become rows.
        let at = [1.0, 3.0, 2.0, 4.0];
        assert_eq!(matmul(&at, true, &b, false, 2, 2, 2), vec![19.0, 22.0, 43.0, 50.0]);
        // Bᵀ stored.
        let bt = [5.0, 7.0, 6.0, 8.0];
        assert_eq!(matmul(&a, false, &bt, true, 2, 2, 2), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gather_rows_picks_and_charges() {
        let d = dev();
        let mut ops = Ops::new(&d);
        let x = [0.0, 1.0, 10.0, 11.0, 20.0, 21.0];
        let out = ops.gather_rows_f32(&x, 2, &[2, 0, 2]);
        assert_eq!(out, vec![20.0, 21.0, 0.0, 1.0, 20.0, 21.0]);
        assert_eq!(ops.kernel_count(), 1, "gather must appear in the kernel log");
        let xh = f32_slice_to_half(&x);
        let outh = ops.gather_rows_half(&xh, 2, &[1]);
        assert_eq!(half_slice_to_f32(&outh), vec![10.0, 11.0]);
        let empty = ops.gather_rows_f32(&x, 2, &[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn gemm_f32_and_half_agree() {
        let d = dev();
        let mut ops = Ops::new(&d);
        let a: Vec<f32> = (0..6).map(|i| i as f32 * 0.5).collect(); // 2x3
        let b: Vec<f32> = (0..12).map(|i| (i as f32 - 6.0) * 0.25).collect(); // 3x4
        let cf = ops.gemm_f32(&a, false, &b, false, 2, 3, 4);
        let ah = f32_slice_to_half(&a);
        let bh = f32_slice_to_half(&b);
        let ch = ops.gemm_half(&ah, false, &bh, false, 2, 3, 4);
        for (f, h) in cf.iter().zip(&ch) {
            assert!((f - h.to_f32()).abs() < 0.01, "{f} vs {h}");
        }
        assert_eq!(ops.kernel_count(), 2);
    }

    #[test]
    fn half_gemm_is_faster_than_float() {
        let d = dev();
        let mut ops = Ops::new(&d);
        let m = 512;
        let a = vec![0.01f32; m * m];
        ops.gemm_f32(&a, false, &a, false, m, m, m);
        let f32_cycles = ops.log.last().unwrap().cycles;
        let ah = f32_slice_to_half(&a);
        ops.gemm_half(&ah, false, &ah, false, m, m, m);
        let f16_cycles = ops.log.last().unwrap().cycles;
        assert!(
            f16_cycles < f32_cycles,
            "tensor-core half GeMM should win: {f16_cycles} vs {f32_cycles}"
        );
    }

    #[test]
    fn conversions_are_counted() {
        let d = dev();
        let mut ops = Ops::new(&d);
        let x = vec![1.5f32; 100];
        let h = ops.to_half(&x);
        let back = ops.to_f32(&h);
        assert_eq!(back, x);
        assert_eq!(ops.tensor_conversions, 2);
        assert_eq!(ops.converted_elems, 200);
        assert_eq!(ops.kernel_count(), 2);
    }

    #[test]
    fn relu_and_grads() {
        let d = dev();
        let mut ops = Ops::new(&d);
        let x = [1.0f32, -2.0, 0.0, 3.0];
        assert_eq!(ops.relu_f32(&x), vec![1.0, 0.0, 0.0, 3.0]);
        let dy = [1.0f32; 4];
        assert_eq!(ops.relu_grad_f32(&x, &dy), vec![1.0, 0.0, 0.0, 1.0]);
        let xh = f32_slice_to_half(&x);
        let rh = ops.relu_half(&xh);
        assert_eq!(rh[1], Half::ZERO);
        assert_eq!(rh[3].to_f32(), 3.0);
    }

    #[test]
    fn bias_and_scale_add() {
        let d = dev();
        let mut ops = Ops::new(&d);
        let x = [1.0f32, 2.0, 3.0, 4.0]; // 2x2
        let bias = [10.0f32, 20.0];
        assert_eq!(ops.bias_add_f32(&x, &bias), vec![11.0, 22.0, 13.0, 24.0]);
        let r = ops.scale_add_f32(2.0, &x, 0.5, &[4.0, 4.0, 4.0, 4.0]);
        assert_eq!(r, vec![4.0, 6.0, 8.0, 10.0]);
        let xh = f32_slice_to_half(&x);
        let yh = f32_slice_to_half(&[4.0, 4.0, 4.0, 4.0]);
        let rh = ops.scale_add_half(Half::from_f32(2.0), &xh, Half::from_f32(0.5), &yh);
        assert_eq!(rh[0].to_f32(), 4.0);
        assert_eq!(rh[3].to_f32(), 10.0);
    }

    #[test]
    fn softmax_xent_gradient_sums_to_zero_per_row() {
        let d = dev();
        let mut ops = Ops::new(&d);
        let logits = [2.0f32, 1.0, 0.1, 0.5, 0.5, 3.0];
        let labels = [0u32, 2];
        let mask = [true, true];
        let (loss, grad, correct) = ops.softmax_xent_f32(&logits, &labels, &mask, 3);
        assert!(loss > 0.0);
        assert_eq!(correct, 2);
        for v in 0..2 {
            let s: f32 = grad[v * 3..(v + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6, "row {v} grad sum {s}");
        }
        // Gradient at the label is negative (pull up), others positive.
        assert!(grad[0] < 0.0 && grad[1] > 0.0);
    }

    #[test]
    fn masked_rows_do_not_contribute() {
        let d = dev();
        let mut ops = Ops::new(&d);
        let logits = [1.0f32, 0.0, 0.0, 5.0];
        let labels = [0u32, 0];
        let mask = [true, false];
        let (_, grad, _) = ops.softmax_xent_f32(&logits, &labels, &mask, 2);
        assert_eq!(&grad[2..4], &[0.0, 0.0]);
    }

    #[test]
    fn accuracy_helper() {
        let logits = [0.9f32, 0.1, 0.2, 0.8];
        let labels = [0u32, 0];
        let mask = [true, true];
        assert_eq!(Ops::accuracy(&logits, &labels, &mask, 2), 0.5);
    }

    #[test]
    fn shadow_softmax_matches_amp_softmax_and_never_overflows() {
        let d = dev();
        let mut ops = Ops::new(&d);
        // Wild logits, including values whose raw exp would overflow half.
        let xs: Vec<f32> = (0..40).map(|i| (i as f32 - 20.0) * 3.0).collect();
        let xh = f32_slice_to_half(&xs);
        let shadow = ops.shadow_softmax_half(&xh, 8);
        let conv_before = ops.tensor_conversions;
        let amp = ops.amp_softmax_half(&xh, 8);
        assert!(ops.tensor_conversions > conv_before, "AMP pays conversions");
        for (a, b) in shadow.iter().zip(&amp) {
            assert!(a.is_finite() && b.is_finite());
            assert!((a.to_f32() - b.to_f32()).abs() < 5e-3, "{a} vs {b}");
        }
        // Rows sum to 1.
        for row in shadow.chunks(8) {
            let s: f32 = row.iter().map(|h| h.to_f32()).sum();
            assert!((s - 1.0).abs() < 0.02, "row sums to {s}");
        }
    }

    #[test]
    fn finite_difference_checks_xent_gradient() {
        let d = dev();
        let mut ops = Ops::new(&d);
        let mut logits = vec![0.3f32, -0.2, 0.7, 0.1, 0.9, -0.5];
        let labels = [2u32, 0];
        let mask = [true, true];
        let (_, grad, _) = ops.softmax_xent_f32(&logits, &labels, &mask, 3);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let orig = logits[i];
            logits[i] = orig + eps;
            let (lp, _, _) = ops.softmax_xent_f32(&logits, &labels, &mask, 3);
            logits[i] = orig - eps;
            let (lm, _, _) = ops.softmax_xent_f32(&logits, &labels, &mask, 3);
            logits[i] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - grad[i]).abs() < 1e-3, "grad[{i}]: fd {fd} vs {}", grad[i]);
        }
    }
}
