//! Property-based tests for the dense ops: GeMM against a naive reference,
//! elementwise identities, and loss-gradient structure.

use halfgnn_half::slice::f32_slice_to_half;
use halfgnn_sim::DeviceConfig;
use halfgnn_tensor::Ops;
use proptest::prelude::*;

fn naive_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0f32; m * n];
    for i in 0..m {
        for l in 0..k {
            for j in 0..n {
                c[i * n + j] += a[i * k + l] * b[l * n + j];
            }
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_matches_naive(
        m in 1usize..12, k in 1usize..12, n in 1usize..12,
        seed in 0u64..1000,
    ) {
        let dev = DeviceConfig::a100_like();
        let mut ops = Ops::new(&dev);
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / 2f32.powi(31)) - 0.5
        };
        let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
        let got = ops.gemm_f32(&a, false, &b, false, m, k, n);
        let want = naive_matmul(&a, &b, m, k, n);
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-4, "{g} vs {w}");
        }
    }

    #[test]
    fn gemm_transpose_flags_consistent(
        m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..500,
    ) {
        // gemm(A, B) == gemm(Aᵀ stored, ta=true, B) == gemm(A, Bᵀ stored, tb=true).
        let dev = DeviceConfig::a100_like();
        let mut ops = Ops::new(&dev);
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3);
            ((state >> 33) as f32 / 2f32.powi(31)) - 0.5
        };
        let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
        let base = ops.gemm_f32(&a, false, &b, false, m, k, n);
        // Store A transposed (k×m) and flip the flag.
        let mut at = vec![0f32; m * k];
        for i in 0..m {
            for l in 0..k {
                at[l * m + i] = a[i * k + l];
            }
        }
        let via_ta = ops.gemm_f32(&at, true, &b, false, m, k, n);
        let mut bt = vec![0f32; k * n];
        for l in 0..k {
            for j in 0..n {
                bt[j * k + l] = b[l * n + j];
            }
        }
        let via_tb = ops.gemm_f32(&a, false, &bt, true, m, k, n);
        for i in 0..base.len() {
            prop_assert!((base[i] - via_ta[i]).abs() < 1e-4);
            prop_assert!((base[i] - via_tb[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn half_gemm_tracks_f32_gemm(m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..300) {
        let dev = DeviceConfig::a100_like();
        let mut ops = Ops::new(&dev);
        let mut state = seed.wrapping_add(17);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(11);
            ((state >> 33) as f32 / 2f32.powi(31)) - 0.5
        };
        let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
        let cf = ops.gemm_f32(&a, false, &b, false, m, k, n);
        let ch = ops.gemm_half(&f32_slice_to_half(&a), false, &f32_slice_to_half(&b), false, m, k, n);
        for (f, h) in cf.iter().zip(&ch) {
            // f32-accumulated tensor-core GeMM: error bounded by the input
            // and output roundings only.
            prop_assert!((f - h.to_f32()).abs() < 2e-2 + 1e-2 * f.abs(), "{f} vs {h}");
        }
    }

    #[test]
    fn relu_idempotent_and_masked(vals in prop::collection::vec(-10f32..10.0, 1..128)) {
        let dev = DeviceConfig::a100_like();
        let mut ops = Ops::new(&dev);
        let once = ops.relu_f32(&vals);
        let twice = ops.relu_f32(&once);
        prop_assert_eq!(&once, &twice);
        for (o, v) in once.iter().zip(&vals) {
            prop_assert!(*o == v.max(0.0));
        }
        // Grad is the indicator: relu_grad(x, 1) ∈ {0, 1}.
        let ones = vec![1f32; vals.len()];
        let g = ops.relu_grad_f32(&vals, &ones);
        for (gi, v) in g.iter().zip(&vals) {
            prop_assert_eq!(*gi, if *v > 0.0 { 1.0 } else { 0.0 });
        }
    }

    #[test]
    fn row_scale_then_inverse_is_identity(
        rows in 1usize..12, f in 1usize..8,
        scale in prop::collection::vec(0.25f32..4.0, 12),
    ) {
        let dev = DeviceConfig::a100_like();
        let mut ops = Ops::new(&dev);
        let x: Vec<f32> = (0..rows * f).map(|i| (i as f32 * 0.37).sin()).collect();
        let s = &scale[..rows];
        let inv: Vec<f32> = s.iter().map(|v| 1.0 / v).collect();
        let y = ops.row_scale_f32(&x, s, f);
        let back = ops.row_scale_f32(&y, &inv, f);
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn xent_loss_nonnegative_and_grad_rows_sum_zero(
        n in 1usize..24, c in 2usize..8, seed in 0u64..400,
    ) {
        let dev = DeviceConfig::a100_like();
        let mut ops = Ops::new(&dev);
        let mut state = seed.wrapping_add(3);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            ((state >> 33) as f32 / 2f32.powi(31)) * 4.0 - 2.0
        };
        let logits: Vec<f32> = (0..n * c).map(|_| next()).collect();
        let labels: Vec<u32> = (0..n).map(|i| (i % c) as u32).collect();
        let mask = vec![true; n];
        let (loss, grad, correct) = ops.softmax_xent_f32(&logits, &labels, &mask, c);
        prop_assert!(loss >= 0.0);
        prop_assert!(correct <= n);
        for v in 0..n {
            let s: f32 = grad[v * c..(v + 1) * c].iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {v} grad sum {s}");
        }
    }

    #[test]
    fn conversion_counters_are_exact(sizes in prop::collection::vec(1usize..200, 1..8)) {
        let dev = DeviceConfig::a100_like();
        let mut ops = Ops::new(&dev);
        let mut total = 0u64;
        for (i, &n) in sizes.iter().enumerate() {
            let x = vec![i as f32; n];
            let h = ops.to_half(&x);
            let _ = ops.to_f32(&h);
            total += 2 * n as u64;
        }
        prop_assert_eq!(ops.tensor_conversions, 2 * sizes.len() as u64);
        prop_assert_eq!(ops.converted_elems, total);
    }
}
