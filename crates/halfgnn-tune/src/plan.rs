//! Kernel plans: the knob assignment a dispatch executes.
//!
//! A plan is the *output* of tuning and the *payload* of the cache. It
//! deliberately excludes anything the model layer must control for
//! correctness — most importantly [`ScalePlacement`], which belongs to the
//! precision mode (a tuner must never silently trade overflow safety for
//! speed). What remains are the pure performance knobs of §4–§5:
//! write strategy, edge-tile geometry (which *is* the discretized
//! reduction batch of §5.2.2), the edge- vs vertex-parallel layout choice,
//! and SDDMM's vector width + sub-warp packing.

use halfgnn_kernels::common::{ScalePlacement, Tiling, VectorWidth, WriteStrategy};
use halfgnn_kernels::halfgnn_sddmm::SddmmConfig;
use halfgnn_kernels::halfgnn_spmm::SpmmConfig;

/// Which SpMM skeleton executes the aggregation (§5.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpmmVariant {
    /// Row-sorted COO, warps own edge tiles — load-balanced under skew.
    EdgeParallel,
    /// CSR, warps own vertex groups — cheaper bookkeeping on flat degree
    /// distributions, pathological on power laws.
    VertexParallel,
}

/// Tuned SpMM knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpmmPlan {
    /// Edge- or vertex-parallel skeleton.
    pub variant: SpmmVariant,
    /// Conflict-write resolution (edge-parallel only; ignored by the
    /// vertex-parallel skeleton, which never conflicts).
    pub writes: WriteStrategy,
    /// Edges per warp tile — also the discretized reduction batch size.
    pub edges_per_warp: usize,
    /// Warps per CTA.
    pub warps_per_cta: usize,
}

impl Default for SpmmPlan {
    /// The paper's design point, byte-identical to [`SpmmConfig::default`].
    fn default() -> SpmmPlan {
        let d = SpmmConfig::default();
        SpmmPlan {
            variant: SpmmVariant::EdgeParallel,
            writes: d.writes,
            edges_per_warp: d.tiling.edges_per_warp,
            warps_per_cta: d.tiling.warps_per_cta,
        }
    }
}

impl SpmmPlan {
    /// Materialize the kernel config, grafting on the caller's scaling
    /// placement (a correctness decision the plan never owns).
    pub fn to_spmm_config(&self, scaling: ScalePlacement) -> SpmmConfig {
        SpmmConfig {
            scaling,
            writes: self.writes,
            tiling: Tiling {
                edges_per_warp: self.edges_per_warp,
                warps_per_cta: self.warps_per_cta,
            },
        }
    }
}

/// Tuned SDDMM knobs, mirroring [`SddmmConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SddmmPlan {
    /// Data-load vector width (§5.1, Fig. 12).
    pub width: VectorWidth,
    /// Pack multiple edges per warp when `f/lanes < 32` (§4.1).
    pub sub_warps: bool,
    /// Edges per warp tile.
    pub edges_per_warp: usize,
    /// Warps per CTA.
    pub warps_per_cta: usize,
}

impl SddmmPlan {
    /// The untuned default for feature width `f`: the model layers' old
    /// hard-coded widest-width rule at the default tile geometry.
    pub fn default_for(f: usize) -> SddmmPlan {
        let c = SddmmConfig::widest_for(f);
        SddmmPlan {
            width: c.width,
            sub_warps: c.sub_warps,
            edges_per_warp: c.tiling.edges_per_warp,
            warps_per_cta: c.tiling.warps_per_cta,
        }
    }

    /// Materialize the kernel config.
    pub fn to_sddmm_config(&self) -> SddmmConfig {
        SddmmConfig {
            width: self.width,
            sub_warps: self.sub_warps,
            tiling: Tiling {
                edges_per_warp: self.edges_per_warp,
                warps_per_cta: self.warps_per_cta,
            },
        }
    }
}

/// Tuned attention-pipeline knob: whether GAT's score → softmax →
/// aggregation chain runs as the fused single-pass kernel or the unfused
/// five-kernel sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct AttnPlan {
    /// Run [`halfgnn_kernels::fused`] instead of the unfused chain. Off by
    /// default: untuned dispatches must stay bit-for-bit on the old path.
    pub fused: bool,
}

/// A cached plan for one [`crate::key::KernelKey`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelPlan {
    /// SpMM (SpMMv / SpMMve) plan.
    Spmm(SpmmPlan),
    /// INT8 quantized SpMM plan. A distinct variant (not a flag on
    /// [`KernelPlan::Spmm`]) so the quantized path is explicit in the
    /// wire form: a cache written by a version without INT8 can never be
    /// misread as licensing the quantized kernel, and vice versa.
    SpmmI8(SpmmPlan),
    /// SDDMM plan.
    Sddmm(SddmmPlan),
    /// GAT attention-chain plan (fused vs. unfused).
    Attn(AttnPlan),
}

impl KernelPlan {
    /// Compact, stable wire form (the JSON value in the plan cache).
    pub fn encode(&self) -> String {
        match self {
            KernelPlan::Spmm(p) | KernelPlan::SpmmI8(p) => {
                let tag = if matches!(self, KernelPlan::SpmmI8(_)) { "spmm_i8" } else { "spmm" };
                let v = match p.variant {
                    SpmmVariant::EdgeParallel => "edge",
                    SpmmVariant::VertexParallel => "vertex",
                };
                let w = match p.writes {
                    WriteStrategy::Atomic => "atomic",
                    WriteStrategy::Staged => "staged",
                };
                format!("{tag}:{v}:{w}:{}:{}", p.edges_per_warp, p.warps_per_cta)
            }
            KernelPlan::Sddmm(p) => {
                let w = match p.width {
                    VectorWidth::Half1 => "half1",
                    VectorWidth::Half2 => "half2",
                    VectorWidth::Half4 => "half4",
                    VectorWidth::Half8 => "half8",
                };
                format!(
                    "sddmm:{w}:{}:{}:{}",
                    if p.sub_warps { "sub" } else { "nosub" },
                    p.edges_per_warp,
                    p.warps_per_cta
                )
            }
            KernelPlan::Attn(p) => {
                format!("attn:{}", if p.fused { "fused" } else { "unfused" })
            }
        }
    }

    /// Parse the wire form back; `None` on anything malformed (a cache
    /// written by a different version degrades to a miss, never a panic).
    pub fn decode(s: &str) -> Option<KernelPlan> {
        let mut it = s.split(':');
        match it.next()? {
            tag @ ("spmm" | "spmm_i8") => {
                let variant = match it.next()? {
                    "edge" => SpmmVariant::EdgeParallel,
                    "vertex" => SpmmVariant::VertexParallel,
                    _ => return None,
                };
                let writes = match it.next()? {
                    "atomic" => WriteStrategy::Atomic,
                    "staged" => WriteStrategy::Staged,
                    _ => return None,
                };
                let edges_per_warp: usize = it.next()?.parse().ok()?;
                let warps_per_cta: usize = it.next()?.parse().ok()?;
                if it.next().is_some() || edges_per_warp == 0 || warps_per_cta == 0 {
                    return None;
                }
                let p = SpmmPlan { variant, writes, edges_per_warp, warps_per_cta };
                Some(if tag == "spmm_i8" { KernelPlan::SpmmI8(p) } else { KernelPlan::Spmm(p) })
            }
            "sddmm" => {
                let width = match it.next()? {
                    "half1" => VectorWidth::Half1,
                    "half2" => VectorWidth::Half2,
                    "half4" => VectorWidth::Half4,
                    "half8" => VectorWidth::Half8,
                    _ => return None,
                };
                let sub_warps = match it.next()? {
                    "sub" => true,
                    "nosub" => false,
                    _ => return None,
                };
                let edges_per_warp: usize = it.next()?.parse().ok()?;
                let warps_per_cta: usize = it.next()?.parse().ok()?;
                if it.next().is_some() || edges_per_warp == 0 || warps_per_cta == 0 {
                    return None;
                }
                Some(KernelPlan::Sddmm(SddmmPlan {
                    width,
                    sub_warps,
                    edges_per_warp,
                    warps_per_cta,
                }))
            }
            "attn" => {
                let fused = match it.next()? {
                    "fused" => true,
                    "unfused" => false,
                    _ => return None,
                };
                if it.next().is_some() {
                    return None;
                }
                Some(KernelPlan::Attn(AttnPlan { fused }))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spmm_plan_matches_the_kernel_default() {
        let p = SpmmPlan::default();
        let c = p.to_spmm_config(ScalePlacement::Discretized);
        let d = SpmmConfig::default();
        assert_eq!(c.scaling, d.scaling);
        assert_eq!(c.writes, d.writes);
        assert_eq!(c.tiling.edges_per_warp, d.tiling.edges_per_warp);
        assert_eq!(c.tiling.warps_per_cta, d.tiling.warps_per_cta);
        assert_eq!(p.variant, SpmmVariant::EdgeParallel);
    }

    #[test]
    fn default_sddmm_plan_matches_the_widest_rule() {
        for f in [8usize, 12, 6, 64, 256] {
            let p = SddmmPlan::default_for(f);
            let c = SddmmConfig::widest_for(f);
            assert_eq!(p.width, c.width, "f={f}");
            assert_eq!(p.sub_warps, c.sub_warps, "f={f}");
            assert_eq!(p.to_sddmm_config().tiling, c.tiling, "f={f}");
        }
    }

    #[test]
    fn default_attn_plan_is_unfused() {
        assert!(!AttnPlan::default().fused);
    }

    #[test]
    fn i8_and_f16_spmm_plans_never_alias_on_the_wire() {
        // Same knobs, different dtype path: the wire forms must differ and
        // each must decode back to its own variant.
        let p = SpmmPlan::default();
        let f16 = KernelPlan::Spmm(p).encode();
        let i8 = KernelPlan::SpmmI8(p).encode();
        assert_ne!(f16, i8);
        assert_eq!(KernelPlan::decode(&f16), Some(KernelPlan::Spmm(p)));
        assert_eq!(KernelPlan::decode(&i8), Some(KernelPlan::SpmmI8(p)));
    }

    #[test]
    fn plan_wire_form_round_trips() {
        let plans = [
            KernelPlan::Spmm(SpmmPlan::default()),
            KernelPlan::Spmm(SpmmPlan {
                variant: SpmmVariant::VertexParallel,
                writes: WriteStrategy::Atomic,
                edges_per_warp: 128,
                warps_per_cta: 8,
            }),
            KernelPlan::Sddmm(SddmmPlan {
                width: VectorWidth::Half8,
                sub_warps: true,
                edges_per_warp: 64,
                warps_per_cta: 4,
            }),
            KernelPlan::Sddmm(SddmmPlan {
                width: VectorWidth::Half1,
                sub_warps: false,
                edges_per_warp: 128,
                warps_per_cta: 2,
            }),
            KernelPlan::Attn(AttnPlan { fused: true }),
            KernelPlan::Attn(AttnPlan { fused: false }),
            KernelPlan::SpmmI8(SpmmPlan::default()),
            KernelPlan::SpmmI8(SpmmPlan {
                variant: SpmmVariant::VertexParallel,
                writes: WriteStrategy::Staged,
                edges_per_warp: 32,
                warps_per_cta: 8,
            }),
        ];
        for p in plans {
            assert_eq!(KernelPlan::decode(&p.encode()), Some(p), "{}", p.encode());
        }
    }

    #[test]
    fn malformed_wire_forms_decode_to_none() {
        for bad in [
            "",
            "spmm",
            "spmm:edge:staged:64",
            "spmm:edge:staged:0:4",
            "spmm:edge:staged:64:4:extra",
            "spmm:diagonal:staged:64:4",
            "sddmm:half3:sub:64:4",
            "sddmm:half8:maybe:64:4",
            "sddmm:half8:sub", // pre-geometry wire form degrades to a miss
            "sddmm:half8:sub:0:4",
            "sddmm:half8:sub:64:4:extra",
            "attn",
            "attn:maybe",
            "attn:fused:extra",
            "conv2d:3x3",
            "spmm_i8",
            "spmm_i8:edge:staged:64",
            "spmm_i8:edge:staged:0:4",
            "spmm_i8:edge:staged:64:4:extra",
            "spmm_i8:diagonal:staged:64:4",
        ] {
            assert_eq!(KernelPlan::decode(bad), None, "{bad:?}");
        }
    }
}
