//! The plan cache: tuned winners, in memory and on disk.
//!
//! Tuning costs a handful of simulated kernel launches per dispatch
//! shape; the cache makes that a one-time cost per *(graph family, layer
//! shape)*. The on-disk form is a tiny flat JSON document — keys are
//! [`KernelKey::encode`] strings, values are [`KernelPlan::encode`]
//! strings — written and parsed by hand because the workspace vendors no
//! serde. A `BTreeMap` keeps serialization deterministic: the same plans
//! always produce byte-identical files, so cache files diff cleanly and
//! tests can compare them directly.
//!
//! Robustness contract: a missing, truncated, or wrong-version file — or
//! any individual unparseable entry — degrades to cache misses, never to
//! a panic. An unknown key is a miss; the dispatch falls back to the
//! untuned default plan.

use crate::key::KernelKey;
use crate::plan::KernelPlan;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Current on-disk format version.
const VERSION: u32 = 1;

/// Hit/miss/evaluation counters for one cache lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the map.
    pub hits: u64,
    /// Lookups that found nothing (each triggers a tuning run or a
    /// default-plan fallback).
    pub misses: u64,
    /// Candidate kernel evaluations performed to fill misses.
    pub evaluations: u64,
}

impl CacheCounters {
    /// Fraction of lookups answered from the map (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / (self.hits + self.misses).max(1) as f64
    }
}

/// In-memory plan map plus counters and JSON persistence.
#[derive(Clone, Debug, Default)]
pub struct PlanCache {
    plans: BTreeMap<String, KernelPlan>,
    counters: CacheCounters,
}

impl PlanCache {
    /// Empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Record `n` candidate evaluations (bumped by the tuner).
    pub fn record_evaluations(&mut self, n: u64) {
        self.counters.evaluations += n;
    }

    /// Look up a plan, bumping the hit/miss counters.
    pub fn get(&mut self, key: &KernelKey) -> Option<KernelPlan> {
        match self.plans.get(&key.encode()) {
            Some(&p) => {
                self.counters.hits += 1;
                Some(p)
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Peek without touching the counters.
    pub fn peek(&self, key: &KernelKey) -> Option<KernelPlan> {
        self.plans.get(&key.encode()).copied()
    }

    /// Insert (or replace) a plan.
    pub fn insert(&mut self, key: &KernelKey, plan: KernelPlan) {
        self.plans.insert(key.encode(), plan);
    }

    /// Serialize to the on-disk JSON form. Deterministic: plans are
    /// emitted in `BTreeMap` (lexicographic key) order.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"version\": ");
        s.push_str(&VERSION.to_string());
        s.push_str(",\n  \"plans\": {");
        for (i, (k, p)) in self.plans.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    \"");
            s.push_str(k);
            s.push_str("\": \"");
            s.push_str(&p.encode());
            s.push('"');
        }
        if !self.plans.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("}\n}\n");
        s
    }

    /// Parse the on-disk JSON form. Returns an empty cache on a version
    /// mismatch and silently skips entries that fail to decode — stale
    /// caches degrade to misses, never to panics. Counters start at zero.
    pub fn from_json(text: &str) -> PlanCache {
        let mut cache = PlanCache::new();
        let mut p = JsonParser::new(text);
        let Some(top) = p.object() else { return cache };
        match top.iter().find(|(k, _)| k == "version") {
            Some((_, JsonValue::Number(v))) if *v == VERSION as i64 => {}
            _ => return cache,
        }
        if let Some((_, JsonValue::Object(plans))) = top.into_iter().find(|(k, _)| k == "plans") {
            for (k, v) in plans {
                let JsonValue::String(enc) = v else { continue };
                if KernelKey::decode(&k).is_none() {
                    continue;
                }
                if let Some(plan) = KernelPlan::decode(&enc) {
                    cache.plans.insert(k, plan);
                }
            }
        }
        cache
    }

    /// Write the cache to `path` (atomically via a sibling temp file).
    /// The temp name embeds the pid so two processes saving the same
    /// cache path can't interleave writes into one temp file — the last
    /// rename wins and both outcomes are complete, valid files.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }

    /// Load a cache from `path`; a missing or unreadable file yields an
    /// empty cache.
    pub fn load(path: &Path) -> PlanCache {
        match std::fs::read_to_string(path) {
            Ok(text) => PlanCache::from_json(&text),
            Err(_) => PlanCache::new(),
        }
    }
}

/// The subset of JSON the cache file uses: objects of string → (string |
/// number | object). Anything outside that subset parses to `None`, which
/// the caller treats as an empty cache.
enum JsonValue {
    String(String),
    Number(i64),
    Object(Vec<(String, JsonValue)>),
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> JsonParser<'a> {
        JsonParser { bytes: text.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        self.skip_ws();
        if self.pos < self.bytes.len() && self.bytes[self.pos] == c {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Option<String> {
        if !self.eat(b'"') {
            return None;
        }
        let start = self.pos;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'"' => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?.to_string();
                    self.pos += 1;
                    return Some(s);
                }
                // The cache never writes escapes; reject rather than
                // mis-parse a file that uses them.
                b'\\' => return None,
                _ => self.pos += 1,
            }
        }
        None
    }

    fn number(&mut self) -> Option<i64> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos]).ok()?.parse().ok()
    }

    fn value(&mut self) -> Option<JsonValue> {
        match self.peek()? {
            b'"' => Some(JsonValue::String(self.string()?)),
            b'{' => Some(JsonValue::Object(self.object()?)),
            b'-' | b'0'..=b'9' => Some(JsonValue::Number(self.number()?)),
            _ => None,
        }
    }

    fn object(&mut self) -> Option<Vec<(String, JsonValue)>> {
        if !self.eat(b'{') {
            return None;
        }
        let mut out = Vec::new();
        if self.eat(b'}') {
            return Some(out);
        }
        loop {
            let key = self.string()?;
            if !self.eat(b':') {
                return None;
            }
            out.push((key, self.value()?));
            if self.eat(b'}') {
                return Some(out);
            }
            if !self.eat(b',') {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{Dtype, OpKind};
    use crate::plan::{SddmmPlan, SpmmPlan, SpmmVariant};
    use halfgnn_graph::metrics::DegreeStats;
    use halfgnn_kernels::common::{ScalePlacement, VectorWidth, WriteStrategy};

    fn key(op: OpKind, f: usize) -> KernelKey {
        let stats = DegreeStats {
            min: 1,
            max: 40,
            mean: 8.0,
            median: 8,
            gini: 0.2,
            top1pct_edge_share: 0.05,
            cv: 0.5,
            max_mean_skew: 5.0,
        };
        KernelKey::for_graph(
            op,
            Dtype::Half,
            f,
            10_000,
            80_000,
            &stats,
            ScalePlacement::Discretized,
        )
    }

    fn sample_cache() -> PlanCache {
        let mut c = PlanCache::new();
        c.insert(
            &key(OpKind::SpmmV, 64),
            KernelPlan::Spmm(SpmmPlan {
                variant: SpmmVariant::EdgeParallel,
                writes: WriteStrategy::Staged,
                edges_per_warp: 128,
                warps_per_cta: 2,
            }),
        );
        c.insert(
            &key(OpKind::Sddmm, 64),
            KernelPlan::Sddmm(SddmmPlan {
                width: VectorWidth::Half8,
                sub_warps: true,
                edges_per_warp: 64,
                warps_per_cta: 4,
            }),
        );
        c.insert(&key(OpKind::SpmmVe, 8), KernelPlan::Spmm(SpmmPlan::default()));
        c
    }

    #[test]
    fn json_round_trip_preserves_every_plan() {
        let c = sample_cache();
        let parsed = PlanCache::from_json(&c.to_json());
        assert_eq!(parsed.len(), c.len());
        for op in [OpKind::SpmmV, OpKind::Sddmm] {
            assert_eq!(parsed.peek(&key(op, 64)), c.peek(&key(op, 64)));
        }
        assert_eq!(parsed.peek(&key(OpKind::SpmmVe, 8)), c.peek(&key(OpKind::SpmmVe, 8)));
    }

    #[test]
    fn serialization_is_deterministic_regardless_of_insert_order() {
        let a = sample_cache().to_json();
        // Same plans, reversed insertion order.
        let mut c = PlanCache::new();
        c.insert(&key(OpKind::SpmmVe, 8), KernelPlan::Spmm(SpmmPlan::default()));
        c.insert(
            &key(OpKind::Sddmm, 64),
            KernelPlan::Sddmm(SddmmPlan {
                width: VectorWidth::Half8,
                sub_warps: true,
                edges_per_warp: 64,
                warps_per_cta: 4,
            }),
        );
        c.insert(
            &key(OpKind::SpmmV, 64),
            KernelPlan::Spmm(SpmmPlan {
                variant: SpmmVariant::EdgeParallel,
                writes: WriteStrategy::Staged,
                edges_per_warp: 128,
                warps_per_cta: 2,
            }),
        );
        assert_eq!(a, c.to_json());
        // And round-tripping the text reproduces it byte-for-byte.
        assert_eq!(PlanCache::from_json(&a).to_json(), a);
    }

    #[test]
    fn unknown_key_is_a_counted_miss() {
        let mut c = sample_cache();
        assert_eq!(c.get(&key(OpKind::SpmmV, 999)), None);
        assert!(c.get(&key(OpKind::SpmmV, 64)).is_some());
        assert_eq!(c.counters().misses, 1);
        assert_eq!(c.counters().hits, 1);
    }

    #[test]
    fn garbage_and_wrong_versions_degrade_to_empty() {
        for text in [
            "",
            "not json",
            "[1,2,3]",
            "{\"version\": 99, \"plans\": {}}",
            "{\"version\": 1, \"plans\": ",
            "{\"plans\": {\"a\": \"b\"}}",
        ] {
            let c = PlanCache::from_json(text);
            assert!(c.is_empty(), "{text:?} yielded {} plans", c.len());
        }
    }

    #[test]
    fn unparseable_entries_are_skipped_not_fatal() {
        let good = key(OpKind::SpmmV, 64).encode();
        let text = format!(
            "{{\"version\": 1, \"plans\": {{\n  \"{good}\": \"spmm:edge:staged:64:4\",\n  \
             \"bogus-key\": \"spmm:edge:staged:64:4\",\n  \
             \"{good2}\": \"warp9:banana\"\n}}}}",
            good2 = key(OpKind::Sddmm, 64).encode()
        );
        let c = PlanCache::from_json(&text);
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(&key(OpKind::SpmmV, 64)), Some(KernelPlan::Spmm(SpmmPlan::default())));
    }

    #[test]
    fn every_torn_prefix_of_a_cache_file_degrades_to_misses() {
        // A crash (or a reader racing a non-atomic writer) can leave any
        // byte prefix of the file on disk. Every one of them must parse
        // without panicking, and whatever survives must be plans the full
        // file also contains — truncation can only lose entries, never
        // invent or corrupt them.
        let full = sample_cache();
        let text = full.to_json();
        for i in 0..=text.len() {
            let torn = PlanCache::from_json(&text[..i]);
            assert!(torn.len() <= full.len(), "prefix {i} grew the cache");
            for op in [OpKind::SpmmV, OpKind::Sddmm] {
                let k = key(op, 64);
                if let Some(plan) = torn.peek(&k) {
                    assert_eq!(Some(plan), full.peek(&k), "prefix {i} corrupted {op:?}");
                }
            }
        }
        // Only the complete file recovers everything.
        assert_eq!(PlanCache::from_json(&text).len(), full.len());
    }

    #[test]
    fn torn_file_on_disk_loads_as_misses_and_is_repaired_by_save() {
        let dir = std::env::temp_dir().join("halfgnn-tune-torn-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plans.json");
        let full = sample_cache();
        let text = full.to_json();
        // Simulate a crash mid-write: half the file.
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        let mut torn = PlanCache::load(&path);
        assert!(torn.is_empty(), "torn file must degrade to an empty cache");
        assert_eq!(torn.get(&key(OpKind::SpmmV, 64)), None);
        assert_eq!(torn.counters().misses, 1, "torn entries are counted misses");
        // A fresh save overwrites the torn file atomically and fully.
        full.save(&path).unwrap();
        assert_eq!(PlanCache::load(&path).to_json(), text);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let dir = std::env::temp_dir().join("halfgnn-tune-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plans.json");
        let c = sample_cache();
        c.save(&path).unwrap();
        let loaded = PlanCache::load(&path);
        assert_eq!(loaded.to_json(), c.to_json());
        // Missing file → empty cache, no error.
        assert!(PlanCache::load(&dir.join("missing.json")).is_empty());
        std::fs::remove_file(&path).ok();
    }
}
