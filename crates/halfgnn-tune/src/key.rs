//! Cache keys: which dispatches are "the same kernel" for tuning purposes.
//!
//! A plan tuned on one graph transfers to another when the *shape* of the
//! work matches — the op, the feature width, and the coarse geometry of
//! the sparsity pattern. The key therefore buckets rows, nnz and average
//! degree logarithmically (a 1.9× size change rarely flips the winning
//! tile geometry; a 100× change often does) and buckets the degree
//! coefficient of variation into the three regimes that actually change
//! kernel behavior (§3.1.3, Fig. 9): regular, Erdős–Rényi-like, and
//! power-law.

use halfgnn_graph::metrics::DegreeStats;
use halfgnn_graph::partition::PartitionStrategy;
use halfgnn_kernels::common::ScalePlacement;
use std::fmt;

/// Which kernel family a dispatch belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpKind {
    /// SpMM with implicit unit weights (GCN/GIN/SAGE aggregation).
    SpmmV,
    /// SpMM with explicit per-edge weights (GAT's attention aggregation).
    SpmmVe,
    /// Sampled dense-dense matmul (GAT attention scores).
    Sddmm,
    /// The GAT attention chain (scores → softmax → aggregation): tuned as
    /// one op because its fused/unfused choice spans all five kernels.
    Attn,
}

impl OpKind {
    fn tag(self) -> &'static str {
        match self {
            OpKind::SpmmV => "spmmv",
            OpKind::SpmmVe => "spmmve",
            OpKind::Sddmm => "sddmm",
            OpKind::Attn => "attn",
        }
    }

    fn from_tag(s: &str) -> Option<OpKind> {
        Some(match s {
            "spmmv" => OpKind::SpmmV,
            "spmmve" => OpKind::SpmmVe,
            "sddmm" => OpKind::Sddmm,
            "attn" => OpKind::Attn,
            _ => return None,
        })
    }
}

/// Element dtype of the dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Dtype {
    /// IEEE binary16.
    Half,
    /// IEEE binary32 (baseline kernels; not tuned yet).
    Float,
    /// INT8 block-quantized with stochastic rounding. Its own slot: an
    /// I8 plan carries an oracle/saturation verdict that must never alias
    /// the f16 plan for the same shape.
    I8,
}

impl Dtype {
    fn tag(self) -> &'static str {
        match self {
            Dtype::Half => "f16",
            Dtype::Float => "f32",
            Dtype::I8 => "i8",
        }
    }

    fn from_tag(s: &str) -> Option<Dtype> {
        Some(match s {
            "f16" => Dtype::Half,
            "f32" => Dtype::Float,
            "i8" => Dtype::I8,
            _ => return None,
        })
    }
}

/// Degree-CV regime of the graph (computed from [`DegreeStats::cv`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CvBucket {
    /// CV < 0.3: near-regular (grids, road networks).
    Regular,
    /// 0.3 ≤ CV < 1.0: Erdős–Rényi-like.
    Uniform,
    /// CV ≥ 1.0: power-law / hub-dominated.
    Skewed,
}

impl CvBucket {
    /// Bucket a raw CV value.
    pub fn of(cv: f64) -> CvBucket {
        if cv < 0.3 {
            CvBucket::Regular
        } else if cv < 1.0 {
            CvBucket::Uniform
        } else {
            CvBucket::Skewed
        }
    }

    fn tag(self) -> &'static str {
        match self {
            CvBucket::Regular => "reg",
            CvBucket::Uniform => "uni",
            CvBucket::Skewed => "skew",
        }
    }

    fn from_tag(s: &str) -> Option<CvBucket> {
        Some(match s {
            "reg" => CvBucket::Regular,
            "uni" => CvBucket::Uniform,
            "skew" => CvBucket::Skewed,
            _ => return None,
        })
    }
}

/// Floor of log2, with 0 mapping to bucket 0.
fn log2_bucket(v: usize) -> u32 {
    if v == 0 {
        0
    } else {
        usize::BITS - 1 - v.leading_zeros()
    }
}

/// The tuning-cache key for one kernel dispatch shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelKey {
    /// Kernel family.
    pub op: OpKind,
    /// Element dtype.
    pub dtype: Dtype,
    /// Exact feature width — vector-width legality (`f % 8 == 0` for
    /// half8) depends on the exact value, so it is never bucketed.
    pub f: usize,
    /// ⌊log2(rows)⌋.
    pub rows_bucket: u32,
    /// ⌊log2(nnz)⌋.
    pub nnz_bucket: u32,
    /// ⌊log2(mean degree)⌋.
    pub avg_deg_bucket: u32,
    /// Degree-CV regime.
    pub cv: CvBucket,
    /// Scaling placement the dispatch will run with — overflow legality of
    /// a plan depends on it, so plans must not cross placements.
    pub scaling: ScalePlacement,
    /// Shard count the dispatch will run under. Exact, not bucketed: the
    /// per-shard row windows change the work geometry every launch sees,
    /// so a plan tuned single-device must not leak into an 8-way run.
    pub shards: usize,
    /// Partition strategy the dispatch's row windows come from. Different
    /// strategies cut the graph at different boundaries (Contiguous splits
    /// rows evenly, DegreeBalanced/1.5D split edges evenly), so a plan
    /// tuned under one set of windows must not alias another's slot.
    pub partition: PartitionStrategy,
}

impl KernelKey {
    /// Build the key for a dispatch over a graph with `rows` vertices and
    /// `nnz` edges whose degree distribution is `stats`.
    pub fn for_graph(
        op: OpKind,
        dtype: Dtype,
        f: usize,
        rows: usize,
        nnz: usize,
        stats: &DegreeStats,
        scaling: ScalePlacement,
    ) -> KernelKey {
        KernelKey {
            op,
            dtype,
            f,
            rows_bucket: log2_bucket(rows),
            nnz_bucket: log2_bucket(nnz),
            avg_deg_bucket: log2_bucket(stats.mean as usize),
            cv: CvBucket::of(stats.cv),
            scaling,
            shards: 1,
            partition: PartitionStrategy::Contiguous,
        }
    }

    /// Key the plan to a shard count (single-device keys stay `s1`).
    pub fn with_shards(mut self, shards: usize) -> KernelKey {
        self.shards = shards.max(1);
        self
    }

    /// Key the plan to a partition strategy. Contiguous is the default and
    /// encodes to the legacy 9-part wire form, so every pre-existing cache
    /// entry keeps its slot.
    pub fn with_partition(mut self, partition: PartitionStrategy) -> KernelKey {
        self.partition = partition;
        self
    }

    fn scaling_tag(self) -> &'static str {
        match self.scaling {
            ScalePlacement::None => "none",
            ScalePlacement::PostReduction => "post",
            ScalePlacement::PreReduction => "pre",
            ScalePlacement::Discretized => "disc",
        }
    }

    /// Wire segment for a non-default partition (`None` for Contiguous so
    /// default keys keep the legacy 9-part form).
    fn partition_segment(&self) -> Option<String> {
        match self.partition {
            PartitionStrategy::Contiguous => None,
            PartitionStrategy::DegreeBalanced => Some("pbalanced".to_string()),
            PartitionStrategy::OneP5D { c } => Some(format!("p1p5dc{c}")),
        }
    }

    /// Stable wire form (the JSON key in the plan cache).
    pub fn encode(&self) -> String {
        let mut s = format!(
            "{}/{}/f{}/r{}/z{}/d{}/{}/{}/s{}",
            self.op.tag(),
            self.dtype.tag(),
            self.f,
            self.rows_bucket,
            self.nnz_bucket,
            self.avg_deg_bucket,
            self.cv.tag(),
            self.scaling_tag(),
            self.shards
        );
        if let Some(seg) = self.partition_segment() {
            s.push('/');
            s.push_str(&seg);
        }
        s
    }

    /// Parse the wire form back; `None` on anything malformed. Legacy
    /// 8-part keys (written before sharding existed) decode with
    /// `shards = 1`, and 9-part keys (written before the partition
    /// dimension) decode as Contiguous — exactly the dispatch they were
    /// tuned under.
    pub fn decode(s: &str) -> Option<KernelKey> {
        let parts: Vec<&str> = s.split('/').collect();
        if !(8..=10).contains(&parts.len()) {
            return None;
        }
        let num = |p: &str, prefix: char| -> Option<u64> { p.strip_prefix(prefix)?.parse().ok() };
        let shards = match parts.get(8) {
            Some(p) => {
                let n = num(p, 's')? as usize;
                if n == 0 {
                    return None;
                }
                n
            }
            None => 1,
        };
        let partition = match parts.get(9) {
            None => PartitionStrategy::Contiguous,
            Some(&"pbalanced") => PartitionStrategy::DegreeBalanced,
            Some(p) => {
                let c: usize = p.strip_prefix("p1p5dc")?.parse().ok()?;
                if c == 0 {
                    return None;
                }
                PartitionStrategy::OneP5D { c }
            }
        };
        Some(KernelKey {
            op: OpKind::from_tag(parts[0])?,
            dtype: Dtype::from_tag(parts[1])?,
            f: num(parts[2], 'f')? as usize,
            rows_bucket: num(parts[3], 'r')? as u32,
            nnz_bucket: num(parts[4], 'z')? as u32,
            avg_deg_bucket: num(parts[5], 'd')? as u32,
            cv: CvBucket::from_tag(parts[6])?,
            scaling: match parts[7] {
                "none" => ScalePlacement::None,
                "post" => ScalePlacement::PostReduction,
                "pre" => ScalePlacement::PreReduction,
                "disc" => ScalePlacement::Discretized,
                _ => return None,
            },
            shards,
            partition,
        })
    }
}

impl fmt::Display for KernelKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halfgnn_graph::{gen, Csr};

    #[test]
    fn log2_buckets() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 0);
        assert_eq!(log2_bucket(2), 1);
        assert_eq!(log2_bucket(3), 1);
        assert_eq!(log2_bucket(1024), 10);
        assert_eq!(log2_bucket(2047), 10);
        assert_eq!(log2_bucket(2048), 11);
    }

    #[test]
    fn log2_bucket_is_exact_at_every_power_of_two_boundary() {
        // The transfer rule flips exactly at powers of two: 2^k−1 sits in
        // bucket k−1, and 2^k / 2^k+1 both sit in bucket k. Sweep every
        // representable k so an off-by-one in the leading_zeros arithmetic
        // can't hide at any scale.
        for k in 1..usize::BITS {
            let p = 1usize << k;
            assert_eq!(log2_bucket(p - 1), k - 1, "2^{k}-1");
            assert_eq!(log2_bucket(p), k, "2^{k}");
            if let Some(above) = p.checked_add(1) {
                assert_eq!(log2_bucket(above), k, "2^{k}+1");
            }
        }
    }

    #[test]
    fn wire_form_splits_and_merges_keys_exactly_at_bucket_boundaries() {
        // encode() must separate 2^k−1 from 2^k (different cache slots)
        // and collapse 2^k with 2^k+1 (same slot) — for rows and nnz — and
        // the legacy 8-part form must keep decoding those buckets as
        // single-device keys.
        let stats = DegreeStats {
            min: 1,
            max: 32,
            mean: 8.0,
            median: 8,
            gini: 0.2,
            top1pct_edge_share: 0.05,
            cv: 0.5,
            max_mean_skew: 4.0,
        };
        let key = |rows: usize, nnz: usize| {
            KernelKey::for_graph(
                OpKind::SpmmV,
                Dtype::Half,
                64,
                rows,
                nnz,
                &stats,
                ScalePlacement::Discretized,
            )
        };
        for k in [4u32, 10, 16, 20] {
            let p = 1usize << k;
            // rows boundary triplet.
            assert_ne!(key(p - 1, 4 * p).encode(), key(p, 4 * p).encode(), "rows 2^{k}");
            assert_eq!(key(p, 4 * p).encode(), key(p + 1, 4 * p).encode(), "rows 2^{k}+1");
            assert!(key(p, 4 * p).encode().contains(&format!("/r{k}/")), "rows bucket tag");
            // nnz boundary triplet.
            assert_ne!(key(1024, p - 1).encode(), key(1024, p).encode(), "nnz 2^{k}");
            assert_eq!(key(1024, p).encode(), key(1024, p + 1).encode(), "nnz 2^{k}+1");
            // Every boundary key round-trips through the wire form...
            for rows in [p - 1, p, p + 1] {
                let b = key(rows, 4 * p);
                assert_eq!(KernelKey::decode(&b.encode()), Some(b), "{b}");
                // ...and its legacy 8-part spelling (strip "/s1") still
                // decodes to the same single-device key.
                let enc = b.encode();
                let legacy = enc.strip_suffix("/s1").expect("for_graph keys end in /s1");
                assert_eq!(KernelKey::decode(legacy), Some(b), "legacy {legacy}");
            }
        }
        // Shard counts are exact (never bucketed): a power-of-two triplet
        // of shard counts yields three distinct keys that all round-trip.
        let base = key(1024, 8192);
        for shards in [7usize, 8, 9] {
            let k = base.with_shards(shards);
            assert_eq!(KernelKey::decode(&k.encode()), Some(k), "{k}");
        }
        assert_ne!(base.with_shards(7).encode(), base.with_shards(8).encode());
        assert_ne!(base.with_shards(8).encode(), base.with_shards(9).encode());
    }

    #[test]
    fn i8_keys_round_trip_and_never_alias_f16_slots() {
        let stats = DegreeStats {
            min: 1,
            max: 32,
            mean: 8.0,
            median: 8,
            gini: 0.2,
            top1pct_edge_share: 0.05,
            cv: 0.5,
            max_mean_skew: 4.0,
        };
        let mk = |dtype| {
            KernelKey::for_graph(
                OpKind::SpmmV,
                dtype,
                64,
                1024,
                8192,
                &stats,
                ScalePlacement::Discretized,
            )
        };
        let i8 = mk(Dtype::I8);
        assert!(i8.encode().contains("/i8/"), "{}", i8.encode());
        assert_ne!(i8.encode(), mk(Dtype::Half).encode());
        // Round-trips at bucket boundaries, sharded and partitioned forms.
        for k in [
            i8,
            i8.with_shards(4),
            i8.with_shards(4).with_partition(PartitionStrategy::OneP5D { c: 2 }),
            KernelKey { rows_bucket: 9, ..i8 },
            KernelKey { rows_bucket: 10, ..i8 },
        ] {
            assert_eq!(KernelKey::decode(&k.encode()), Some(k), "{k}");
        }
        // A legacy 8-part f16 key is untouched by the new dtype tag.
        let legacy = "spmmv/f16/f64/r10/z13/d3/uni/disc";
        let k = KernelKey::decode(legacy).expect("legacy keys stay decodable");
        assert_eq!(k.dtype, Dtype::Half);
        // An i8-tagged legacy-shaped key decodes with the new dtype.
        let k = KernelKey::decode("spmmv/i8/f64/r10/z13/d3/uni/disc").expect("i8 8-part");
        assert_eq!(k.dtype, Dtype::I8);
        // An unknown dtype tag degrades to a miss, never a panic.
        assert_eq!(KernelKey::decode("spmmv/i4/f64/r10/z13/d3/uni/disc"), None);
    }

    #[test]
    fn cv_buckets_split_the_generator_families() {
        assert_eq!(CvBucket::of(0.0), CvBucket::Regular);
        assert_eq!(CvBucket::of(0.29), CvBucket::Regular);
        assert_eq!(CvBucket::of(0.5), CvBucket::Uniform);
        assert_eq!(CvBucket::of(1.0), CvBucket::Skewed);
        assert_eq!(CvBucket::of(7.3), CvBucket::Skewed);
    }

    #[test]
    fn key_wire_form_round_trips() {
        let csr = Csr::from_edges(2_000, 2_000, &gen::preferential_attachment(2_000, 5, 1))
            .symmetrized_with_self_loops();
        let stats = halfgnn_graph::metrics::degree_stats(&csr);
        for (op, scaling) in [
            (OpKind::SpmmV, ScalePlacement::Discretized),
            (OpKind::SpmmVe, ScalePlacement::None),
            (OpKind::Sddmm, ScalePlacement::None),
            (OpKind::Attn, ScalePlacement::None),
        ] {
            let k = KernelKey::for_graph(
                op,
                Dtype::Half,
                64,
                csr.num_rows(),
                csr.nnz(),
                &stats,
                scaling,
            );
            assert_eq!(KernelKey::decode(&k.encode()), Some(k), "{k}");
        }
    }

    #[test]
    fn similar_graphs_share_a_key_and_dissimilar_ones_do_not() {
        let mk = |n: usize, m: usize, seed: u64| {
            let csr =
                Csr::from_edges(n, n, &gen::erdos_renyi(n, m, seed)).symmetrized_with_self_loops();
            let stats = halfgnn_graph::metrics::degree_stats(&csr);
            KernelKey::for_graph(
                OpKind::SpmmV,
                Dtype::Half,
                64,
                csr.num_rows(),
                csr.nnz(),
                &stats,
                ScalePlacement::Discretized,
            )
        };
        // Two seeds of the same generator land in the same bucket...
        assert_eq!(mk(2_000, 10_000, 1), mk(2_000, 10_000, 2));
        // ...but a 16× larger graph does not.
        assert_ne!(mk(32_000, 160_000, 1), mk(2_000, 10_000, 1));
    }

    #[test]
    fn malformed_keys_decode_to_none() {
        for bad in [
            "",
            "spmmv/f16/f64/r10/z13/d3/uni",
            "spmmv/f16/f64/r10/z13/d3/uni/disc/extra",
            "spmmv/f16/f64/r10/z13/d3/uni/disc/s2/more",
            "conv/f16/f64/r10/z13/d3/uni/disc",
            "spmmv/f16/x64/r10/z13/d3/uni/disc",
            "spmmv/f16/f64/r10/z13/d3/wild/disc",
            "spmmv/f16/f64/r10/z13/d3/uni/sometimes",
            "spmmv/f16/f64/r10/z13/d3/uni/disc/x2",
            "spmmv/f16/f64/r10/z13/d3/uni/disc/s0",
            "spmmv/f16/f64/r10/z13/d3/uni/disc/sten",
            "spmmv/f16/f64/r10/z13/d3/uni/disc/s2/pcontiguous",
            "spmmv/f16/f64/r10/z13/d3/uni/disc/s2/p1p5dc0",
            "spmmv/f16/f64/r10/z13/d3/uni/disc/s2/p1p5dctwo",
            "spmmv/f16/f64/r10/z13/d3/uni/disc/s2/pbalanced/extra",
        ] {
            assert_eq!(KernelKey::decode(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn sharded_keys_round_trip_and_legacy_keys_decode_as_single_device() {
        let csr = Csr::from_edges(500, 500, &gen::erdos_renyi(500, 2_500, 3))
            .symmetrized_with_self_loops();
        let stats = halfgnn_graph::metrics::degree_stats(&csr);
        let base = KernelKey::for_graph(
            OpKind::SpmmV,
            Dtype::Half,
            32,
            csr.num_rows(),
            csr.nnz(),
            &stats,
            ScalePlacement::Discretized,
        );
        assert_eq!(base.shards, 1, "for_graph defaults to single-device");
        for shards in [1usize, 2, 4, 8] {
            let k = base.with_shards(shards);
            assert!(k.encode().ends_with(&format!("/s{shards}")));
            assert_eq!(KernelKey::decode(&k.encode()), Some(k), "{k}");
        }
        // Keys differing only in shard count must not alias a cache slot.
        assert_ne!(base.with_shards(2), base.with_shards(4));
        // A pre-sharding cache entry is a single-device plan.
        let legacy = "spmmv/f16/f64/r10/z13/d3/uni/disc";
        let k = KernelKey::decode(legacy).expect("legacy 8-part keys stay decodable");
        assert_eq!(k.shards, 1);
        assert_eq!(k, KernelKey::decode(&k.encode()).unwrap(), "re-encode normalizes to /s1");
    }

    #[test]
    fn partition_keys_round_trip_and_default_partition_stays_nine_part() {
        use halfgnn_graph::partition::PartitionStrategy;
        let stats = DegreeStats {
            min: 1,
            max: 32,
            mean: 8.0,
            median: 8,
            gini: 0.2,
            top1pct_edge_share: 0.05,
            cv: 0.5,
            max_mean_skew: 4.0,
        };
        let base = KernelKey::for_graph(
            OpKind::SpmmV,
            Dtype::Half,
            64,
            1024,
            8192,
            &stats,
            ScalePlacement::Discretized,
        )
        .with_shards(4);
        // The default (Contiguous) keeps the legacy 9-part wire form, so
        // pre-existing cache entries keep their slots.
        assert_eq!(base.partition, PartitionStrategy::Contiguous);
        assert!(base.encode().ends_with("/s4"));
        // Non-default partitions get their own slot and round-trip.
        for p in [
            PartitionStrategy::DegreeBalanced,
            PartitionStrategy::OneP5D { c: 1 },
            PartitionStrategy::OneP5D { c: 2 },
        ] {
            let k = base.with_partition(p);
            assert_ne!(k.encode(), base.encode(), "{k}");
            assert_eq!(KernelKey::decode(&k.encode()), Some(k), "{k}");
        }
        // Replication factors are distinct slots: c=1 and c=2 run the same
        // windows today, but the key is the strategy, not its geometry.
        assert_ne!(
            base.with_partition(PartitionStrategy::OneP5D { c: 1 }).encode(),
            base.with_partition(PartitionStrategy::OneP5D { c: 2 }).encode(),
        );
        // with_partition(Contiguous) re-normalizes to the 9-part form.
        let k = base.with_partition(PartitionStrategy::DegreeBalanced);
        assert_eq!(k.with_partition(PartitionStrategy::Contiguous).encode(), base.encode());
    }

    #[test]
    fn bucket_boundaries_split_keys_exactly_at_powers_of_two_and_cv_edges() {
        // The transfer rule: same bucket ⇒ same plan. These are the exact
        // edges where that rule flips, pinned value-by-value.
        let stats = |mean: f64, cv: f64| DegreeStats {
            min: 1,
            max: 32,
            mean,
            median: 8,
            gini: 0.2,
            top1pct_edge_share: 0.05,
            cv,
            max_mean_skew: 4.0,
        };
        let key = |rows: usize, nnz: usize, s: &DegreeStats| {
            KernelKey::for_graph(
                OpKind::SpmmV,
                Dtype::Half,
                64,
                rows,
                nnz,
                s,
                ScalePlacement::Discretized,
            )
        };
        let s = stats(8.0, 0.5);
        // rows: 1023 → bucket 9, 1024 → bucket 10, 2047 still 10.
        assert_ne!(key(1023, 4096, &s), key(1024, 4096, &s));
        assert_eq!(key(1024, 4096, &s), key(2047, 4096, &s));
        assert_ne!(key(2047, 4096, &s), key(2048, 4096, &s));
        // nnz boundary behaves identically.
        assert_ne!(key(1024, 8191, &s), key(1024, 8192, &s));
        assert_eq!(key(1024, 8192, &s), key(1024, 16_383, &s));
        // avg-degree boundary: mean 15.9 floors to bucket 3, 16.0 to 4.
        assert_ne!(key(1024, 4096, &stats(15.9, 0.5)), key(1024, 4096, &stats(16.0, 0.5)));
        assert_eq!(key(1024, 4096, &stats(16.0, 0.5)), key(1024, 4096, &stats(31.9, 0.5)));
        // CV regime edges: 0.3 is the first Uniform, 1.0 the first Skewed.
        assert_eq!(CvBucket::of(0.299_999), CvBucket::Regular);
        assert_eq!(CvBucket::of(0.3), CvBucket::Uniform);
        assert_eq!(CvBucket::of(0.999_999), CvBucket::Uniform);
        assert_eq!(CvBucket::of(1.0), CvBucket::Skewed);
        assert_ne!(key(1024, 4096, &stats(8.0, 0.299_999)), key(1024, 4096, &stats(8.0, 0.3)));
        assert_ne!(key(1024, 4096, &stats(8.0, 0.999_999)), key(1024, 4096, &stats(8.0, 1.0)));
    }
}
