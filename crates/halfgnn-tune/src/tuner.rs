//! The tuner: evaluate candidate plans under the cost model, keep the
//! fastest one that is *provably safe* on this graph.
//!
//! Safety is not a heuristic here — every candidate actually runs (in
//! `ExecMode::Sim`, on the real graph or a degree-stratified sample) and
//! must pass two gates before its modeled cycles are even considered:
//!
//! 1. the differential-testing oracle: the candidate's output must sit
//!    inside the f64 reference's tolerance band with zero non-finite
//!    elements ([`oracle::DivergenceReport`]), and
//! 2. the overflow-provenance recorder: the evaluation runs inside
//!    [`overflow::isolated`], and any recorded `f32 → half` overflow
//!    rejects the plan (with the `provenance` feature off this gate is
//!    inert and the oracle's non-finite check still stands).
//!
//! Among survivors the argmin of modeled cycles wins; if *nothing*
//! survives (e.g. the caller insists on `ScalePlacement::None` over a hub
//! graph) the untuned default plan is returned and cached, so a dispatch
//! is never left without a config. Winners land in the [`PlanCache`].

use crate::cache::PlanCache;
use crate::candidates;
use crate::key::{Dtype, KernelKey, OpKind};
use crate::plan::{AttnPlan, KernelPlan, SddmmPlan, SpmmPlan, SpmmVariant};
use crate::sample::stratified_sample;
use halfgnn_graph::metrics::degree_stats;
use halfgnn_graph::partition::PartitionStrategy;
use halfgnn_graph::{Coo, Csr};
use halfgnn_half::slice::f32_slice_to_half;
use halfgnn_half::{overflow, quant, Half};
use halfgnn_kernels::common::{row_scales_mean, EdgeWeights, Reduce, ScalePlacement, Tiling};
use halfgnn_kernels::halfgnn_sddmm::sddmm_with_config;
use halfgnn_kernels::halfgnn_spmm::SpmmConfig;
use halfgnn_kernels::oracle::{self, Layout, Tolerance};
use halfgnn_kernels::reference;
use halfgnn_kernels::{edge_ops, halfgnn_spmm};
use halfgnn_sim::{DeviceConfig, ExecMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::path::PathBuf;

pub use crate::cache::CacheCounters as TunerCounters;

/// Why a candidate plan was rejected.
#[derive(Clone, Debug)]
pub enum Rejection {
    /// The oracle found out-of-tolerance or non-finite output elements.
    Divergence(String),
    /// The provenance recorder saw `f32 → half` overflow during the run.
    Overflow(String),
    /// The INT8 saturation recorder saw a clamp to ±127 or a non-finite
    /// quantizer input — the quantized analogue of an overflow.
    Saturation(String),
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::Divergence(s) => write!(f, "oracle divergence: {s}"),
            Rejection::Overflow(s) => write!(f, "overflow recorded: {s}"),
            Rejection::Saturation(s) => write!(f, "saturation recorded: {s}"),
        }
    }
}

/// Default nnz above which candidates are evaluated on a stratified
/// sample instead of the full graph.
const SAMPLE_THRESHOLD_NNZ: usize = 150_000;

/// LeakyReLU slope GAT's attention uses; attention-chain candidates are
/// vetted with the same nonlinearity the dispatch will run.
const ATTN_SLOPE: f32 = 0.2;

/// Cost-model-driven kernel autotuner.
pub struct Tuner {
    dev: DeviceConfig,
    cache: RefCell<PlanCache>,
    cache_path: Option<PathBuf>,
    sample_threshold: usize,
    tol: Tolerance,
    seed: u64,
    shards: usize,
    partition: PartitionStrategy,
}

impl Tuner {
    /// In-memory tuner (the `tuning: Auto` mode): plans live for this
    /// process only.
    pub fn auto(dev: &DeviceConfig) -> Tuner {
        Tuner {
            // Candidate evaluation needs modeled cycles, so the tuner's
            // device always simulates — even when training itself runs in
            // fast mode.
            dev: dev.clone().with_exec(ExecMode::Sim),
            cache: RefCell::new(PlanCache::new()),
            cache_path: None,
            sample_threshold: SAMPLE_THRESHOLD_NNZ,
            tol: Tolerance::half_default(),
            seed: 0x7A1F,
            shards: 1,
            partition: PartitionStrategy::Contiguous,
        }
    }

    /// Persistent tuner (the `tuning: Cached(path)` mode): loads `path`
    /// if it exists and rewrites it after every newly tuned plan.
    pub fn cached(dev: &DeviceConfig, path: impl Into<PathBuf>) -> Tuner {
        let path = path.into();
        let mut t = Tuner::auto(dev);
        t.cache = RefCell::new(PlanCache::load(&path));
        t.cache_path = Some(path);
        t
    }

    /// Override the sampling threshold (tests use tiny values to force
    /// the sampling path).
    pub fn with_sample_threshold(mut self, nnz: usize) -> Tuner {
        self.sample_threshold = nnz;
        self
    }

    /// Override the evaluation seed.
    pub fn with_seed(mut self, seed: u64) -> Tuner {
        self.seed = seed;
        self
    }

    /// Key every resolved plan to a shard count, so plans tuned for the
    /// single-device dispatch never transfer to a sharded run's windowed
    /// launches (or vice versa).
    pub fn with_shards(mut self, shards: usize) -> Tuner {
        self.shards = shards.max(1);
        self
    }

    /// Key every resolved plan to a partition strategy: different
    /// strategies cut different row windows, so their plans must not
    /// share cache slots. Contiguous (the default) keys identically to
    /// pre-partition-dimension caches.
    pub fn with_partition(mut self, partition: PartitionStrategy) -> Tuner {
        self.partition = partition;
        self
    }

    /// Hit/miss/evaluation counters.
    pub fn counters(&self) -> TunerCounters {
        self.cache.borrow().counters()
    }

    /// Number of cached plans.
    pub fn cache_len(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Serialized cache (for reporting).
    pub fn cache_json(&self) -> String {
        self.cache.borrow().to_json()
    }

    // -----------------------------------------------------------------
    // Plan resolution: the entry points dispatch sites call.
    // -----------------------------------------------------------------

    /// Resolve the SpMM plan for aggregating `f`-wide features over this
    /// graph. `weighted` distinguishes SpMMve (GAT) from SpMMv; `scaling`
    /// is the caller's correctness-mandated placement and is preserved
    /// verbatim in whatever plan wins.
    pub fn spmm_plan(
        &self,
        csr: &Csr,
        f: usize,
        weighted: bool,
        scaling: ScalePlacement,
    ) -> SpmmPlan {
        let stats = degree_stats(csr);
        let op = if weighted { OpKind::SpmmVe } else { OpKind::SpmmV };
        let key =
            KernelKey::for_graph(op, Dtype::Half, f, csr.num_rows(), csr.nnz(), &stats, scaling)
                .with_shards(self.shards)
                .with_partition(self.partition);
        if let Some(KernelPlan::Spmm(p)) = self.cache.borrow_mut().get(&key) {
            return p;
        }
        let eval = EvalGraph::build(self, csr);
        let mut best = SpmmPlan::default();
        let mut best_cycles = f64::INFINITY;
        let cands = candidates::spmm_candidates(&stats);
        let evals = cands.len() as u64;
        for plan in cands {
            if let Ok(cycles) = self.vet_spmm_on(&eval, f, weighted, scaling, &plan) {
                if cycles < best_cycles {
                    best_cycles = cycles;
                    best = plan;
                }
            }
        }
        self.commit(&key, KernelPlan::Spmm(best), evals);
        best
    }

    /// Resolve the INT8 SpMM plan for aggregating `f`-wide features over
    /// this graph, or `None` when **no** candidate survives the oracle +
    /// overflow + saturation gates. A `None` verdict is deliberately not
    /// cached: a dirty quantized plan must never become selectable via a
    /// stale cache entry, and the caller's f16 fallback re-asks cheaply.
    /// `seed` keys the stochastic-rounding streams the dispatch will run
    /// with, so the vetted kernel is the deployed kernel bit-for-bit.
    pub fn spmm_i8_plan(&self, csr: &Csr, f: usize, weighted: bool, seed: u64) -> Option<SpmmPlan> {
        let stats = degree_stats(csr);
        let op = if weighted { OpKind::SpmmVe } else { OpKind::SpmmV };
        let key = KernelKey::for_graph(
            op,
            Dtype::I8,
            f,
            csr.num_rows(),
            csr.nnz(),
            &stats,
            ScalePlacement::Discretized,
        )
        .with_shards(self.shards)
        .with_partition(self.partition);
        if let Some(KernelPlan::SpmmI8(p)) = self.cache.borrow_mut().get(&key) {
            return Some(p);
        }
        let eval = EvalGraph::build(self, csr);
        let mut best: Option<SpmmPlan> = None;
        let mut best_cycles = f64::INFINITY;
        let cands = candidates::spmm_i8_candidates();
        let evals = cands.len() as u64;
        for plan in cands {
            if let Ok(cycles) = self.vet_spmm_i8_on(&eval, f, weighted, seed, &plan) {
                if cycles < best_cycles {
                    best_cycles = cycles;
                    best = Some(plan);
                }
            }
        }
        match best {
            Some(p) => self.commit(&key, KernelPlan::SpmmI8(p), evals),
            None => self.cache.borrow_mut().record_evaluations(evals),
        }
        best
    }

    /// Resolve the SDDMM plan for `f`-wide features over this graph.
    pub fn sddmm_plan(&self, csr: &Csr, f: usize) -> SddmmPlan {
        let stats = degree_stats(csr);
        let key = KernelKey::for_graph(
            OpKind::Sddmm,
            Dtype::Half,
            f,
            csr.num_rows(),
            csr.nnz(),
            &stats,
            ScalePlacement::None,
        )
        .with_shards(self.shards)
        .with_partition(self.partition);
        if let Some(KernelPlan::Sddmm(p)) = self.cache.borrow_mut().get(&key) {
            return p;
        }
        let eval = EvalGraph::build(self, csr);
        let mut best = SddmmPlan::default_for(f);
        let mut best_cycles = f64::INFINITY;
        let cands = candidates::sddmm_candidates(f);
        let evals = cands.len() as u64;
        for plan in cands {
            if let Ok(cycles) = self.vet_sddmm_on(&eval, f, &plan) {
                if cycles < best_cycles {
                    best_cycles = cycles;
                    best = plan;
                }
            }
        }
        self.commit(&key, KernelPlan::Sddmm(best), evals);
        best
    }

    /// Resolve the attention-pipeline plan (fused vs. unfused chain) for
    /// `f`-wide features over this graph. Odd `f` always resolves to
    /// unfused without tuning — the fused kernel requires half2-padded
    /// features.
    pub fn attn_plan(&self, csr: &Csr, f: usize) -> AttnPlan {
        if !f.is_multiple_of(2) {
            return AttnPlan::default();
        }
        let stats = degree_stats(csr);
        let key = KernelKey::for_graph(
            OpKind::Attn,
            Dtype::Half,
            f,
            csr.num_rows(),
            csr.nnz(),
            &stats,
            ScalePlacement::None,
        )
        .with_shards(self.shards)
        .with_partition(self.partition);
        if let Some(KernelPlan::Attn(p)) = self.cache.borrow_mut().get(&key) {
            return p;
        }
        let eval = EvalGraph::build(self, csr);
        let mut best = AttnPlan::default();
        let mut best_cycles = f64::INFINITY;
        let cands = candidates::attn_candidates();
        let evals = cands.len() as u64;
        for plan in cands {
            if let Ok(cycles) = self.vet_attn_on(&eval, f, &plan) {
                if cycles < best_cycles {
                    best_cycles = cycles;
                    best = plan;
                }
            }
        }
        self.commit(&key, KernelPlan::Attn(best), evals);
        best
    }

    fn commit(&self, key: &KernelKey, plan: KernelPlan, evals: u64) {
        let mut cache = self.cache.borrow_mut();
        cache.insert(key, plan);
        cache.record_evaluations(evals);
        if let Some(path) = &self.cache_path {
            // Persistence is best-effort: an unwritable path costs the
            // next process a re-tune, not this one a crash.
            let _ = cache.save(path);
        }
    }

    // -----------------------------------------------------------------
    // Candidate vetting: run, compare, gate, cost.
    // -----------------------------------------------------------------

    /// Evaluate one SpMM candidate on (a sample of) `csr`: run it under
    /// the oracle inside an isolated overflow window and return its
    /// modeled cycles, or the reason it is unsafe. Public so tests can
    /// probe the guard directly.
    pub fn vet_spmm(
        &self,
        csr: &Csr,
        f: usize,
        weighted: bool,
        scaling: ScalePlacement,
        plan: &SpmmPlan,
    ) -> Result<f64, Rejection> {
        self.vet_spmm_on(&EvalGraph::build(self, csr), f, weighted, scaling, plan)
    }

    fn vet_spmm_on(
        &self,
        eval: &EvalGraph,
        f: usize,
        weighted: bool,
        scaling: ScalePlacement,
        plan: &SpmmPlan,
    ) -> Result<f64, Rejection> {
        let x = eval.features(self.seed ^ 1, eval.coo.num_cols() * f);
        let weights = weighted.then(|| eval.features(self.seed ^ 2, eval.coo.nnz()));
        let w = match &weights {
            Some(vals) => EdgeWeights::Values(vals),
            None => EdgeWeights::Ones,
        };
        let row_scale =
            (scaling != ScalePlacement::None).then(|| row_scales_mean(&eval.coo.degrees()));
        let ((_, stats, report), summary) = overflow::isolated(|| match plan.variant {
            SpmmVariant::EdgeParallel => oracle::check_spmm(
                &self.dev,
                &eval.coo,
                w,
                &x,
                f,
                row_scale.as_deref(),
                &plan.to_spmm_config(scaling),
                self.tol,
            ),
            SpmmVariant::VertexParallel => oracle::check_spmm_vertex_parallel(
                &self.dev,
                &eval.csr,
                w,
                &x,
                f,
                row_scale.as_deref(),
                scaling,
                self.tol,
            ),
        });
        gate(&report, &summary)?;
        Ok(stats.cycles)
    }

    /// Evaluate one INT8 SpMM candidate: run it under the oracle inside
    /// nested saturation + overflow windows and return its modeled
    /// cycles, or the first reason it is unsafe. Public so tests can
    /// probe the quantization gate directly.
    pub fn vet_spmm_i8(
        &self,
        csr: &Csr,
        f: usize,
        weighted: bool,
        seed: u64,
        plan: &SpmmPlan,
    ) -> Result<f64, Rejection> {
        self.vet_spmm_i8_on(&EvalGraph::build(self, csr), f, weighted, seed, plan)
    }

    fn vet_spmm_i8_on(
        &self,
        eval: &EvalGraph,
        f: usize,
        weighted: bool,
        seed: u64,
        plan: &SpmmPlan,
    ) -> Result<f64, Rejection> {
        let x = eval.features(self.seed ^ 1, eval.coo.num_cols() * f);
        let weights = weighted.then(|| eval.features(self.seed ^ 2, eval.coo.nnz()));
        let w = match &weights {
            Some(vals) => EdgeWeights::Values(vals),
            None => EdgeWeights::Ones,
        };
        let row_scale = row_scales_mean(&eval.csr.degrees());
        let tiling =
            Tiling { edges_per_warp: plan.edges_per_warp, warps_per_cta: plan.warps_per_cta };
        let (((_, stats, report), ovf), sat) = quant::isolated(|| {
            overflow::isolated(|| {
                oracle::check_spmm_i8(
                    &self.dev,
                    &eval.csr,
                    w,
                    &x,
                    f,
                    Some(&row_scale),
                    tiling,
                    seed,
                    Tolerance::i8_default(),
                )
            })
        });
        // Saturation first: a clamped quantizer also diverges from the
        // oracle downstream, and the clamp is the root cause the
        // rejection should name.
        if !sat.is_clean() {
            return Err(Rejection::Saturation(match &sat.first {
                Some(e) => format!("{e}"),
                None => format!("{} flagged quantizations", sat.flagged()),
            }));
        }
        gate(&report, &ovf)?;
        Ok(stats.cycles)
    }

    /// Evaluate one SDDMM candidate; see [`Tuner::vet_spmm`].
    pub fn vet_sddmm(&self, csr: &Csr, f: usize, plan: &SddmmPlan) -> Result<f64, Rejection> {
        self.vet_sddmm_on(&EvalGraph::build(self, csr), f, plan)
    }

    fn vet_sddmm_on(&self, eval: &EvalGraph, f: usize, plan: &SddmmPlan) -> Result<f64, Rejection> {
        let u = eval.features(self.seed ^ 3, eval.coo.num_rows() * f);
        let v = eval.features(self.seed ^ 4, eval.coo.num_cols() * f);
        let ((got, stats), summary) = overflow::isolated(|| {
            sddmm_with_config(&self.dev, &eval.coo, &u, &v, f, &plan.to_sddmm_config())
        });
        let want = reference::sddmm_f64(
            &eval.coo,
            &reference::half_to_f64(&u),
            &reference::half_to_f64(&v),
            f,
        );
        let degrees = eval.coo.degrees();
        let report = oracle::compare_half(
            "tuner_sddmm",
            &got,
            &want,
            &Layout::PerEdge { rows: eval.coo.rows(), degrees: &degrees },
            self.tol,
        );
        gate(&report, &summary)?;
        Ok(stats.cycles)
    }

    /// Evaluate one attention-chain candidate; see [`Tuner::vet_spmm`].
    pub fn vet_attn(&self, csr: &Csr, f: usize, plan: &AttnPlan) -> Result<f64, Rejection> {
        self.vet_attn_on(&EvalGraph::build(self, csr), f, plan)
    }

    fn vet_attn_on(&self, eval: &EvalGraph, f: usize, plan: &AttnPlan) -> Result<f64, Rejection> {
        let s_row = eval.features(self.seed ^ 5, eval.coo.num_rows());
        let s_col = eval.features(self.seed ^ 6, eval.coo.num_cols());
        let z = eval.features(self.seed ^ 7, eval.coo.num_cols() * f);
        if plan.fused {
            let ((_, stats, report), summary) = overflow::isolated(|| {
                oracle::check_fused_attn_forward(
                    &self.dev, &eval.coo, &s_row, &s_col, ATTN_SLOPE, &z, f, self.tol,
                )
            });
            gate(&report, &summary)?;
            return Ok(stats.cycles);
        }
        // The unfused candidate is the five-kernel chain GAT runs today;
        // its cost is the sequential composition of every launch.
        let ((out, stats), summary) = overflow::isolated(|| {
            let dev = &self.dev;
            let coo = &eval.coo;
            let (e, s1) = edge_ops::src_dst_add_leakyrelu(dev, coo, &s_row, &s_col, ATTN_SLOPE);
            let (m, s2) = halfgnn_spmm::edge_reduce(dev, coo, &e, Reduce::Max);
            let (num, s3) = edge_ops::sub_row_exp(dev, coo, &e, &m, true);
            let (zs, s4) = halfgnn_spmm::edge_reduce(dev, coo, &num, Reduce::Sum);
            let (alpha, s5) = edge_ops::div_row(dev, coo, &num, &zs);
            let cfg = SpmmConfig { scaling: ScalePlacement::None, ..SpmmConfig::default() };
            let (out, s6) =
                halfgnn_spmm::spmm(dev, coo, EdgeWeights::Values(&alpha), &z, f, None, &cfg);
            (out, s1.then(&s2).then(&s3).then(&s4).then(&s5).then(&s6))
        });
        let sr = reference::half_to_f64(&s_row);
        let sc = reference::half_to_f64(&s_col);
        let e_f64 = reference::src_dst_add_leakyrelu_f64(&eval.coo, &sr, &sc, ATTN_SLOPE as f64);
        let m_f64 = reference::edge_reduce_f64(&eval.coo, &e_f64, Reduce::Max);
        let num_f64 = reference::sub_row_exp_f64(&eval.coo, &e_f64, &m_f64);
        let zs_f64 = reference::edge_reduce_f64(&eval.coo, &num_f64, Reduce::Sum);
        let alpha_f64 = reference::div_row_f64(&eval.coo, &num_f64, &zs_f64);
        let mut want = vec![0f64; eval.coo.num_rows() * f];
        let z_f64 = reference::half_to_f64(&z);
        for (ei, &a) in alpha_f64.iter().enumerate() {
            let (r, c) = eval.coo.edge(ei);
            for k in 0..f {
                want[r as usize * f + k] += a * z_f64[c as usize * f + k];
            }
        }
        let degrees = eval.coo.degrees();
        let report = oracle::compare_half(
            "tuner_attn_unfused",
            &out,
            &want,
            &Layout::RowMajor { f, degrees: &degrees },
            self.tol,
        );
        gate(&report, &summary)?;
        Ok(stats.cycles)
    }
}

/// Oracle + provenance gate shared by both vetting paths.
fn gate(report: &oracle::DivergenceReport, summary: &overflow::Summary) -> Result<(), Rejection> {
    if !report.is_ok() || report.nonfinite_got > 0 {
        return Err(Rejection::Divergence(format!("{report}")));
    }
    if !summary.is_clean() {
        return Err(Rejection::Overflow(match &summary.first {
            Some(e) => format!("{e}"),
            None => format!("{} non-finite conversions", summary.nonfinite()),
        }));
    }
    Ok(())
}

/// The graph candidates are evaluated on: the full graph below the
/// sampling threshold, otherwise a degree-stratified sample. Built once
/// per tuning run and shared by every candidate so comparisons are
/// apples-to-apples.
struct EvalGraph {
    coo: Coo,
    csr: Csr,
}

impl EvalGraph {
    fn build(t: &Tuner, csr: &Csr) -> EvalGraph {
        let coo = stratified_sample(csr, t.sample_threshold, t.seed);
        let csr = Csr::from_coo(&coo);
        EvalGraph { coo, csr }
    }

    /// Seeded synthetic inputs, strictly positive so degree-proportional
    /// sums cannot cancel — a plan that would overflow on adversarial
    /// real data overflows here too, instead of hiding behind symmetric
    /// noise.
    fn features(&self, seed: u64, len: usize) -> Vec<Half> {
        let mut rng = StdRng::seed_from_u64(seed);
        f32_slice_to_half(&(0..len).map(|_| rng.gen_range(0.1f32..1.0)).collect::<Vec<_>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halfgnn_graph::gen;
    use halfgnn_kernels::common::WriteStrategy;

    fn dev() -> DeviceConfig {
        DeviceConfig::tiny()
    }

    fn er_graph() -> Csr {
        Csr::from_edges(300, 300, &gen::erdos_renyi(300, 1_800, 11)).symmetrized_with_self_loops()
    }

    fn star_graph() -> Csr {
        // One hub whose unscaled positive-feature sum is guaranteed past
        // HALF_MAX: degree ~150k times a mean feature of 0.55 ≈ 8.2e4 >
        // 65504. Fast even under Sim because f stays tiny.
        let edges: Vec<(u32, u32)> = (1..150_000u32).map(|c| (0, c)).collect();
        Csr::from_edges(150_000, 150_000, &edges)
    }

    #[test]
    fn default_plan_vets_clean_on_a_normal_graph() {
        let t = Tuner::auto(&dev());
        let cycles = t
            .vet_spmm(&er_graph(), 8, false, ScalePlacement::Discretized, &SpmmPlan::default())
            .expect("default plan must pass its own oracle");
        assert!(cycles > 0.0);
    }

    #[test]
    fn unscaled_hub_aggregation_is_rejected_by_the_guard() {
        // Satellite (c): an overflow-prone plan — atomic writes with
        // scaling disabled on a high-degree graph — must be rejected.
        let t = Tuner::auto(&dev()).with_sample_threshold(usize::MAX);
        let plan = SpmmPlan { writes: WriteStrategy::Atomic, ..SpmmPlan::default() };
        let err = t
            .vet_spmm(&star_graph(), 2, false, ScalePlacement::None, &plan)
            .expect_err("summing 150k positive halves must overflow");
        match err {
            Rejection::Divergence(msg) => assert!(msg.contains("NON-FINITE"), "{msg}"),
            Rejection::Overflow(_) => {} // provenance feature path
            Rejection::Saturation(_) => panic!("f16 vetting cannot saturate INT8"),
        }
        // The same graph under discretized scaling is safe.
        t.vet_spmm(&star_graph(), 2, false, ScalePlacement::Discretized, &SpmmPlan::default())
            .expect("discretized scaling keeps the hub finite");
    }

    #[test]
    fn tuned_plan_is_cached_and_reused() {
        let t = Tuner::auto(&dev());
        let g = er_graph();
        let p1 = t.spmm_plan(&g, 8, false, ScalePlacement::Discretized);
        let c1 = t.counters();
        assert_eq!(c1.misses, 1);
        assert_eq!(c1.hits, 0);
        assert!(c1.evaluations > 1, "must have tried more than the default");
        let p2 = t.spmm_plan(&g, 8, false, ScalePlacement::Discretized);
        assert_eq!(p1, p2);
        let c2 = t.counters();
        assert_eq!(c2.hits, 1);
        assert_eq!(c2.evaluations, c1.evaluations, "a hit evaluates nothing");
    }

    #[test]
    fn shard_counts_get_their_own_cache_slots() {
        let g = er_graph();
        let t1 = Tuner::auto(&dev());
        let t4 = Tuner::auto(&dev()).with_shards(4);
        t1.spmm_plan(&g, 8, false, ScalePlacement::Discretized);
        t4.spmm_plan(&g, 8, false, ScalePlacement::Discretized);
        // Both tuned from scratch: the s4 key must not hit the s1 slot.
        assert_eq!(t1.counters().misses, 1);
        assert_eq!(t4.counters().misses, 1);
        assert!(t4.counters().evaluations > 0, "sharded key must re-tune, not alias");
        // Same tuner, same shard count: second resolve is a hit.
        t4.spmm_plan(&g, 8, false, ScalePlacement::Discretized);
        assert_eq!(t4.counters().hits, 1);
    }

    #[test]
    fn sddmm_tuning_picks_a_legal_plan_and_caches_it() {
        let t = Tuner::auto(&dev());
        let g = er_graph();
        let p = t.sddmm_plan(&g, 12);
        assert_eq!(12 % p.width.lanes(), 0);
        assert_eq!(t.sddmm_plan(&g, 12), p);
        assert_eq!(t.counters().hits, 1);
    }

    #[test]
    fn tuned_spmm_never_loses_to_the_default_on_modeled_cycles() {
        let t = Tuner::auto(&dev());
        for (name, csr) in [
            ("er", er_graph()),
            (
                "powerlaw",
                Csr::from_edges(400, 400, &gen::preferential_attachment(400, 6, 5))
                    .symmetrized_with_self_loops(),
            ),
        ] {
            let plan = t.spmm_plan(&csr, 16, false, ScalePlacement::Discretized);
            let tuned = t
                .vet_spmm(&csr, 16, false, ScalePlacement::Discretized, &plan)
                .expect("winner must be safe");
            let default = t
                .vet_spmm(&csr, 16, false, ScalePlacement::Discretized, &SpmmPlan::default())
                .expect("default must be safe");
            assert!(tuned <= default, "{name}: tuned {tuned} > default {default}");
        }
    }

    #[test]
    fn sddmm_candidates_are_cost_distinguishable() {
        // Satellite: BENCH_pr3 showed speedup 1.000 on every config
        // because all candidates modeled identical cycles. With tile
        // geometry in the plan space, at least one graph/f combination
        // must produce candidates with different modeled costs.
        let t = Tuner::auto(&dev());
        let mut distinguishable = false;
        for (csr, f) in [(er_graph(), 64usize), (er_graph(), 8)] {
            let cycles: Vec<f64> = candidates::sddmm_candidates(f)
                .iter()
                .filter_map(|p| t.vet_sddmm(&csr, f, p).ok())
                .collect();
            assert!(!cycles.is_empty());
            if cycles.iter().any(|&c| c != cycles[0]) {
                distinguishable = true;
            }
        }
        assert!(distinguishable, "every SDDMM candidate still models identical cycles");
    }

    #[test]
    fn attn_tuning_picks_fused_where_it_wins_and_caches_it() {
        let t = Tuner::auto(&dev());
        let g = er_graph();
        // At small f the fused pass eliminates the edge-buffer round
        // trips that dominate; the tuner must notice.
        let fused = t.vet_attn(&g, 8, &AttnPlan { fused: true }).expect("fused must vet clean");
        let unfused = t.vet_attn(&g, 8, &AttnPlan { fused: false }).expect("unfused must vet");
        assert!(fused < unfused, "fused {fused} >= unfused {unfused}");
        let p = t.attn_plan(&g, 8);
        assert!(p.fused, "tuner must pick the cheaper fused plan");
        assert_eq!(t.attn_plan(&g, 8), p);
        assert_eq!(t.counters().hits, 1);
        // Odd f cannot run the fused kernel: resolves unfused, untuned.
        assert!(!t.attn_plan(&g, 7).fused);
    }

    #[test]
    fn attn_plan_round_trips_through_a_cache_file() {
        let dir = std::env::temp_dir().join("halfgnn-tune-attn-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plans.json");
        std::fs::remove_file(&path).ok();
        let g = er_graph();

        let t1 = Tuner::cached(&dev(), &path);
        let p1 = t1.attn_plan(&g, 8);
        assert!(path.exists());

        let t2 = Tuner::cached(&dev(), &path);
        let p2 = t2.attn_plan(&g, 8);
        assert_eq!(p1, p2);
        let c = t2.counters();
        assert_eq!((c.hits, c.misses, c.evaluations), (1, 0, 0), "t2 must not re-tune");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn saturation_dirty_i8_plans_are_rejected_and_never_cached() {
        let t = Tuner::auto(&dev());
        let g = er_graph();
        // Bias every quantizer scale 6 octaves too small: well-conditioned
        // eval features now clamp to ±127 — every candidate is dirty.
        quant::set_exponent_bias(-6);
        let err = t
            .vet_spmm_i8(&g, 8, false, 1, &SpmmPlan::default())
            .expect_err("a saturating candidate must be rejected");
        assert!(matches!(err, Rejection::Saturation(_)), "{err}");
        assert!(err.to_string().contains("saturation"), "{err}");
        let plan = t.spmm_i8_plan(&g, 8, false, 1);
        quant::set_exponent_bias(0);
        assert_eq!(plan, None, "no clean candidate may be selected");
        assert_eq!(t.cache_len(), 0, "a dirty verdict must never be cached");
        // With sane scales the same shape tunes clean and caches.
        let p = t.spmm_i8_plan(&g, 8, false, 1).expect("clean candidates exist");
        assert_eq!(t.cache_len(), 1);
        assert_eq!(t.spmm_i8_plan(&g, 8, false, 1), Some(p));
        assert_eq!(t.counters().hits, 1);
    }

    #[test]
    fn i8_saturation_window_does_not_leak_into_the_epoch_window() {
        // The vet runs inside quant::isolated: an outer training-epoch
        // saturation window must stay clean however dirty the candidates.
        let t = Tuner::auto(&dev());
        let g = er_graph();
        quant::begin();
        quant::set_exponent_bias(-6);
        assert_eq!(t.spmm_i8_plan(&g, 8, false, 2), None);
        quant::set_exponent_bias(0);
        let outer = quant::take();
        assert!(outer.is_clean(), "tuner vetting leaked {} events", outer.flagged());
        assert_eq!(outer.quantized, 0);
    }

    #[test]
    fn i8_plan_round_trips_through_a_cache_file() {
        let dir = std::env::temp_dir().join("halfgnn-tune-i8-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plans.json");
        std::fs::remove_file(&path).ok();
        let g = er_graph();

        let t1 = Tuner::cached(&dev(), &path);
        let p1 = t1.spmm_i8_plan(&g, 8, false, 7).expect("tunes clean");
        assert!(path.exists());
        // The persisted wire form names the quantized path explicitly.
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("/i8/"), "{json}");
        assert!(json.contains("spmm_i8:"), "{json}");

        let t2 = Tuner::cached(&dev(), &path);
        let p2 = t2.spmm_i8_plan(&g, 8, false, 7).expect("cache hit");
        assert_eq!(p1, p2);
        let c = t2.counters();
        assert_eq!((c.hits, c.misses, c.evaluations), (1, 0, 0), "t2 must not re-tune");
        // The i8 slot never aliases the f16 slot for the same shape.
        t2.spmm_plan(&g, 8, false, ScalePlacement::Discretized);
        assert_eq!(t2.counters().misses, 1, "f16 resolve must miss, not hit the i8 slot");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cached_mode_persists_across_tuner_instances() {
        let dir = std::env::temp_dir().join("halfgnn-tune-tuner-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plans.json");
        std::fs::remove_file(&path).ok();
        let g = er_graph();

        let t1 = Tuner::cached(&dev(), &path);
        let p1 = t1.spmm_plan(&g, 8, false, ScalePlacement::Discretized);
        assert!(path.exists());

        let t2 = Tuner::cached(&dev(), &path);
        let p2 = t2.spmm_plan(&g, 8, false, ScalePlacement::Discretized);
        assert_eq!(p1, p2);
        let c = t2.counters();
        assert_eq!((c.hits, c.misses, c.evaluations), (1, 0, 0), "t2 must not re-tune");
        std::fs::remove_file(&path).ok();
    }
}
