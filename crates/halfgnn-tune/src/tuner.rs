//! The tuner: evaluate candidate plans under the cost model, keep the
//! fastest one that is *provably safe* on this graph.
//!
//! Safety is not a heuristic here — every candidate actually runs (in
//! `ExecMode::Sim`, on the real graph or a degree-stratified sample) and
//! must pass two gates before its modeled cycles are even considered:
//!
//! 1. the differential-testing oracle: the candidate's output must sit
//!    inside the f64 reference's tolerance band with zero non-finite
//!    elements ([`oracle::DivergenceReport`]), and
//! 2. the overflow-provenance recorder: the evaluation runs inside
//!    [`overflow::isolated`], and any recorded `f32 → half` overflow
//!    rejects the plan (with the `provenance` feature off this gate is
//!    inert and the oracle's non-finite check still stands).
//!
//! Among survivors the argmin of modeled cycles wins; if *nothing*
//! survives (e.g. the caller insists on `ScalePlacement::None` over a hub
//! graph) the untuned default plan is returned and cached, so a dispatch
//! is never left without a config. Winners land in the [`PlanCache`].

use crate::cache::PlanCache;
use crate::candidates;
use crate::key::{Dtype, KernelKey, OpKind};
use crate::plan::{KernelPlan, SddmmPlan, SpmmPlan, SpmmVariant};
use crate::sample::stratified_sample;
use halfgnn_graph::metrics::degree_stats;
use halfgnn_graph::{Coo, Csr};
use halfgnn_half::slice::f32_slice_to_half;
use halfgnn_half::{overflow, Half};
use halfgnn_kernels::common::{row_scales_mean, EdgeWeights, ScalePlacement};
use halfgnn_kernels::halfgnn_sddmm::sddmm_with_config;
use halfgnn_kernels::oracle::{self, Layout, Tolerance};
use halfgnn_kernels::reference;
use halfgnn_sim::{DeviceConfig, ExecMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::path::PathBuf;

pub use crate::cache::CacheCounters as TunerCounters;

/// Why a candidate plan was rejected.
#[derive(Clone, Debug)]
pub enum Rejection {
    /// The oracle found out-of-tolerance or non-finite output elements.
    Divergence(String),
    /// The provenance recorder saw `f32 → half` overflow during the run.
    Overflow(String),
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::Divergence(s) => write!(f, "oracle divergence: {s}"),
            Rejection::Overflow(s) => write!(f, "overflow recorded: {s}"),
        }
    }
}

/// Default nnz above which candidates are evaluated on a stratified
/// sample instead of the full graph.
const SAMPLE_THRESHOLD_NNZ: usize = 150_000;

/// Cost-model-driven kernel autotuner.
pub struct Tuner {
    dev: DeviceConfig,
    cache: RefCell<PlanCache>,
    cache_path: Option<PathBuf>,
    sample_threshold: usize,
    tol: Tolerance,
    seed: u64,
}

impl Tuner {
    /// In-memory tuner (the `tuning: Auto` mode): plans live for this
    /// process only.
    pub fn auto(dev: &DeviceConfig) -> Tuner {
        Tuner {
            // Candidate evaluation needs modeled cycles, so the tuner's
            // device always simulates — even when training itself runs in
            // fast mode.
            dev: dev.clone().with_exec(ExecMode::Sim),
            cache: RefCell::new(PlanCache::new()),
            cache_path: None,
            sample_threshold: SAMPLE_THRESHOLD_NNZ,
            tol: Tolerance::half_default(),
            seed: 0x7A1F,
        }
    }

    /// Persistent tuner (the `tuning: Cached(path)` mode): loads `path`
    /// if it exists and rewrites it after every newly tuned plan.
    pub fn cached(dev: &DeviceConfig, path: impl Into<PathBuf>) -> Tuner {
        let path = path.into();
        let mut t = Tuner::auto(dev);
        t.cache = RefCell::new(PlanCache::load(&path));
        t.cache_path = Some(path);
        t
    }

    /// Override the sampling threshold (tests use tiny values to force
    /// the sampling path).
    pub fn with_sample_threshold(mut self, nnz: usize) -> Tuner {
        self.sample_threshold = nnz;
        self
    }

    /// Override the evaluation seed.
    pub fn with_seed(mut self, seed: u64) -> Tuner {
        self.seed = seed;
        self
    }

    /// Hit/miss/evaluation counters.
    pub fn counters(&self) -> TunerCounters {
        self.cache.borrow().counters()
    }

    /// Number of cached plans.
    pub fn cache_len(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Serialized cache (for reporting).
    pub fn cache_json(&self) -> String {
        self.cache.borrow().to_json()
    }

    // -----------------------------------------------------------------
    // Plan resolution: the entry points dispatch sites call.
    // -----------------------------------------------------------------

    /// Resolve the SpMM plan for aggregating `f`-wide features over this
    /// graph. `weighted` distinguishes SpMMve (GAT) from SpMMv; `scaling`
    /// is the caller's correctness-mandated placement and is preserved
    /// verbatim in whatever plan wins.
    pub fn spmm_plan(
        &self,
        csr: &Csr,
        f: usize,
        weighted: bool,
        scaling: ScalePlacement,
    ) -> SpmmPlan {
        let stats = degree_stats(csr);
        let op = if weighted { OpKind::SpmmVe } else { OpKind::SpmmV };
        let key =
            KernelKey::for_graph(op, Dtype::Half, f, csr.num_rows(), csr.nnz(), &stats, scaling);
        if let Some(KernelPlan::Spmm(p)) = self.cache.borrow_mut().get(&key) {
            return p;
        }
        let eval = EvalGraph::build(self, csr);
        let mut best = SpmmPlan::default();
        let mut best_cycles = f64::INFINITY;
        let cands = candidates::spmm_candidates(&stats);
        let evals = cands.len() as u64;
        for plan in cands {
            if let Ok(cycles) = self.vet_spmm_on(&eval, f, weighted, scaling, &plan) {
                if cycles < best_cycles {
                    best_cycles = cycles;
                    best = plan;
                }
            }
        }
        self.commit(&key, KernelPlan::Spmm(best), evals);
        best
    }

    /// Resolve the SDDMM plan for `f`-wide features over this graph.
    pub fn sddmm_plan(&self, csr: &Csr, f: usize) -> SddmmPlan {
        let stats = degree_stats(csr);
        let key = KernelKey::for_graph(
            OpKind::Sddmm,
            Dtype::Half,
            f,
            csr.num_rows(),
            csr.nnz(),
            &stats,
            ScalePlacement::None,
        );
        if let Some(KernelPlan::Sddmm(p)) = self.cache.borrow_mut().get(&key) {
            return p;
        }
        let eval = EvalGraph::build(self, csr);
        let mut best = SddmmPlan::default_for(f);
        let mut best_cycles = f64::INFINITY;
        let cands = candidates::sddmm_candidates(f);
        let evals = cands.len() as u64;
        for plan in cands {
            if let Ok(cycles) = self.vet_sddmm_on(&eval, f, &plan) {
                if cycles < best_cycles {
                    best_cycles = cycles;
                    best = plan;
                }
            }
        }
        self.commit(&key, KernelPlan::Sddmm(best), evals);
        best
    }

    fn commit(&self, key: &KernelKey, plan: KernelPlan, evals: u64) {
        let mut cache = self.cache.borrow_mut();
        cache.insert(key, plan);
        cache.record_evaluations(evals);
        if let Some(path) = &self.cache_path {
            // Persistence is best-effort: an unwritable path costs the
            // next process a re-tune, not this one a crash.
            let _ = cache.save(path);
        }
    }

    // -----------------------------------------------------------------
    // Candidate vetting: run, compare, gate, cost.
    // -----------------------------------------------------------------

    /// Evaluate one SpMM candidate on (a sample of) `csr`: run it under
    /// the oracle inside an isolated overflow window and return its
    /// modeled cycles, or the reason it is unsafe. Public so tests can
    /// probe the guard directly.
    pub fn vet_spmm(
        &self,
        csr: &Csr,
        f: usize,
        weighted: bool,
        scaling: ScalePlacement,
        plan: &SpmmPlan,
    ) -> Result<f64, Rejection> {
        self.vet_spmm_on(&EvalGraph::build(self, csr), f, weighted, scaling, plan)
    }

    fn vet_spmm_on(
        &self,
        eval: &EvalGraph,
        f: usize,
        weighted: bool,
        scaling: ScalePlacement,
        plan: &SpmmPlan,
    ) -> Result<f64, Rejection> {
        let x = eval.features(self.seed ^ 1, eval.coo.num_cols() * f);
        let weights = weighted.then(|| eval.features(self.seed ^ 2, eval.coo.nnz()));
        let w = match &weights {
            Some(vals) => EdgeWeights::Values(vals),
            None => EdgeWeights::Ones,
        };
        let row_scale =
            (scaling != ScalePlacement::None).then(|| row_scales_mean(&eval.coo.degrees()));
        let ((_, stats, report), summary) = overflow::isolated(|| match plan.variant {
            SpmmVariant::EdgeParallel => oracle::check_spmm(
                &self.dev,
                &eval.coo,
                w,
                &x,
                f,
                row_scale.as_deref(),
                &plan.to_spmm_config(scaling),
                self.tol,
            ),
            SpmmVariant::VertexParallel => oracle::check_spmm_vertex_parallel(
                &self.dev,
                &eval.csr,
                w,
                &x,
                f,
                row_scale.as_deref(),
                scaling,
                self.tol,
            ),
        });
        gate(&report, &summary)?;
        Ok(stats.cycles)
    }

    /// Evaluate one SDDMM candidate; see [`Tuner::vet_spmm`].
    pub fn vet_sddmm(&self, csr: &Csr, f: usize, plan: &SddmmPlan) -> Result<f64, Rejection> {
        self.vet_sddmm_on(&EvalGraph::build(self, csr), f, plan)
    }

    fn vet_sddmm_on(&self, eval: &EvalGraph, f: usize, plan: &SddmmPlan) -> Result<f64, Rejection> {
        let u = eval.features(self.seed ^ 3, eval.coo.num_rows() * f);
        let v = eval.features(self.seed ^ 4, eval.coo.num_cols() * f);
        let ((got, stats), summary) = overflow::isolated(|| {
            sddmm_with_config(&self.dev, &eval.coo, &u, &v, f, &plan.to_sddmm_config())
        });
        let want = reference::sddmm_f64(
            &eval.coo,
            &reference::half_to_f64(&u),
            &reference::half_to_f64(&v),
            f,
        );
        let degrees = eval.coo.degrees();
        let report = oracle::compare_half(
            "tuner_sddmm",
            &got,
            &want,
            &Layout::PerEdge { rows: eval.coo.rows(), degrees: &degrees },
            self.tol,
        );
        gate(&report, &summary)?;
        Ok(stats.cycles)
    }
}

/// Oracle + provenance gate shared by both vetting paths.
fn gate(report: &oracle::DivergenceReport, summary: &overflow::Summary) -> Result<(), Rejection> {
    if !report.is_ok() || report.nonfinite_got > 0 {
        return Err(Rejection::Divergence(format!("{report}")));
    }
    if !summary.is_clean() {
        return Err(Rejection::Overflow(match &summary.first {
            Some(e) => format!("{e}"),
            None => format!("{} non-finite conversions", summary.nonfinite()),
        }));
    }
    Ok(())
}

/// The graph candidates are evaluated on: the full graph below the
/// sampling threshold, otherwise a degree-stratified sample. Built once
/// per tuning run and shared by every candidate so comparisons are
/// apples-to-apples.
struct EvalGraph {
    coo: Coo,
    csr: Csr,
}

impl EvalGraph {
    fn build(t: &Tuner, csr: &Csr) -> EvalGraph {
        let coo = stratified_sample(csr, t.sample_threshold, t.seed);
        let csr = Csr::from_coo(&coo);
        EvalGraph { coo, csr }
    }

    /// Seeded synthetic inputs, strictly positive so degree-proportional
    /// sums cannot cancel — a plan that would overflow on adversarial
    /// real data overflows here too, instead of hiding behind symmetric
    /// noise.
    fn features(&self, seed: u64, len: usize) -> Vec<Half> {
        let mut rng = StdRng::seed_from_u64(seed);
        f32_slice_to_half(&(0..len).map(|_| rng.gen_range(0.1f32..1.0)).collect::<Vec<_>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halfgnn_graph::gen;
    use halfgnn_kernels::common::WriteStrategy;

    fn dev() -> DeviceConfig {
        DeviceConfig::tiny()
    }

    fn er_graph() -> Csr {
        Csr::from_edges(300, 300, &gen::erdos_renyi(300, 1_800, 11)).symmetrized_with_self_loops()
    }

    fn star_graph() -> Csr {
        // One hub whose unscaled positive-feature sum is guaranteed past
        // HALF_MAX: degree ~150k times a mean feature of 0.55 ≈ 8.2e4 >
        // 65504. Fast even under Sim because f stays tiny.
        let edges: Vec<(u32, u32)> = (1..150_000u32).map(|c| (0, c)).collect();
        Csr::from_edges(150_000, 150_000, &edges)
    }

    #[test]
    fn default_plan_vets_clean_on_a_normal_graph() {
        let t = Tuner::auto(&dev());
        let cycles = t
            .vet_spmm(&er_graph(), 8, false, ScalePlacement::Discretized, &SpmmPlan::default())
            .expect("default plan must pass its own oracle");
        assert!(cycles > 0.0);
    }

    #[test]
    fn unscaled_hub_aggregation_is_rejected_by_the_guard() {
        // Satellite (c): an overflow-prone plan — atomic writes with
        // scaling disabled on a high-degree graph — must be rejected.
        let t = Tuner::auto(&dev()).with_sample_threshold(usize::MAX);
        let plan = SpmmPlan { writes: WriteStrategy::Atomic, ..SpmmPlan::default() };
        let err = t
            .vet_spmm(&star_graph(), 2, false, ScalePlacement::None, &plan)
            .expect_err("summing 150k positive halves must overflow");
        match err {
            Rejection::Divergence(msg) => assert!(msg.contains("NON-FINITE"), "{msg}"),
            Rejection::Overflow(_) => {} // provenance feature path
        }
        // The same graph under discretized scaling is safe.
        t.vet_spmm(&star_graph(), 2, false, ScalePlacement::Discretized, &SpmmPlan::default())
            .expect("discretized scaling keeps the hub finite");
    }

    #[test]
    fn tuned_plan_is_cached_and_reused() {
        let t = Tuner::auto(&dev());
        let g = er_graph();
        let p1 = t.spmm_plan(&g, 8, false, ScalePlacement::Discretized);
        let c1 = t.counters();
        assert_eq!(c1.misses, 1);
        assert_eq!(c1.hits, 0);
        assert!(c1.evaluations > 1, "must have tried more than the default");
        let p2 = t.spmm_plan(&g, 8, false, ScalePlacement::Discretized);
        assert_eq!(p1, p2);
        let c2 = t.counters();
        assert_eq!(c2.hits, 1);
        assert_eq!(c2.evaluations, c1.evaluations, "a hit evaluates nothing");
    }

    #[test]
    fn sddmm_tuning_picks_a_legal_plan_and_caches_it() {
        let t = Tuner::auto(&dev());
        let g = er_graph();
        let p = t.sddmm_plan(&g, 12);
        assert_eq!(12 % p.width.lanes(), 0);
        assert_eq!(t.sddmm_plan(&g, 12), p);
        assert_eq!(t.counters().hits, 1);
    }

    #[test]
    fn tuned_spmm_never_loses_to_the_default_on_modeled_cycles() {
        let t = Tuner::auto(&dev());
        for (name, csr) in [
            ("er", er_graph()),
            (
                "powerlaw",
                Csr::from_edges(400, 400, &gen::preferential_attachment(400, 6, 5))
                    .symmetrized_with_self_loops(),
            ),
        ] {
            let plan = t.spmm_plan(&csr, 16, false, ScalePlacement::Discretized);
            let tuned = t
                .vet_spmm(&csr, 16, false, ScalePlacement::Discretized, &plan)
                .expect("winner must be safe");
            let default = t
                .vet_spmm(&csr, 16, false, ScalePlacement::Discretized, &SpmmPlan::default())
                .expect("default must be safe");
            assert!(tuned <= default, "{name}: tuned {tuned} > default {default}");
        }
    }

    #[test]
    fn cached_mode_persists_across_tuner_instances() {
        let dir = std::env::temp_dir().join("halfgnn-tune-tuner-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plans.json");
        std::fs::remove_file(&path).ok();
        let g = er_graph();

        let t1 = Tuner::cached(&dev(), &path);
        let p1 = t1.spmm_plan(&g, 8, false, ScalePlacement::Discretized);
        assert!(path.exists());

        let t2 = Tuner::cached(&dev(), &path);
        let p2 = t2.spmm_plan(&g, 8, false, ScalePlacement::Discretized);
        assert_eq!(p1, p2);
        let c = t2.counters();
        assert_eq!((c.hits, c.misses, c.evaluations), (1, 0, 0), "t2 must not re-tune");
        std::fs::remove_file(&path).ok();
    }
}
