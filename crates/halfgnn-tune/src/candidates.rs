//! Candidate enumeration: the pruned plan space the tuner evaluates.
//!
//! Exhaustive search over every knob cross-product would evaluate dozens
//! of kernels per dispatch shape; the degree statistics let us discard
//! whole regions that the paper's measurements already rule out:
//!
//! * **Atomic writes** lose badly once hub rows concentrate conflicting
//!   updates (Fig. 13) — only tried when the max/mean degree skew is mild.
//! * **Vertex-parallel** layouts starve under load imbalance (§5.4) —
//!   only tried on near-regular or ER-like distributions.
//! * **SDDMM widths** narrower than the widest legal one only win when
//!   sub-warp packing is off, so the enumeration keeps every legal width
//!   but both packing modes only for the widest.
//!
//! The untuned default is always candidate #0, so the tuner can never do
//! worse than "no tuner" on modeled cycles.

use crate::key::CvBucket;
use crate::plan::{AttnPlan, SddmmPlan, SpmmPlan, SpmmVariant};
use halfgnn_graph::metrics::DegreeStats;
use halfgnn_kernels::common::{VectorWidth, WriteStrategy};

/// Above this max/mean degree skew, atomic writes are not worth evaluating
/// (hub rows serialize the conflicting updates).
const ATOMIC_SKEW_LIMIT: f64 = 4.0;

/// SpMM plans worth evaluating for a graph with these degree statistics.
/// The default plan is always first.
pub fn spmm_candidates(stats: &DegreeStats) -> Vec<SpmmPlan> {
    let mut out = vec![SpmmPlan::default()];
    let cv = CvBucket::of(stats.cv);

    let mut push = |p: SpmmPlan| {
        if !out.contains(&p) {
            out.push(p);
        }
    };

    for &edges_per_warp in &[32usize, 64, 128] {
        for &warps_per_cta in &[2usize, 4, 8] {
            push(SpmmPlan {
                variant: SpmmVariant::EdgeParallel,
                writes: WriteStrategy::Staged,
                edges_per_warp,
                warps_per_cta,
            });
            if stats.max_mean_skew <= ATOMIC_SKEW_LIMIT {
                push(SpmmPlan {
                    variant: SpmmVariant::EdgeParallel,
                    writes: WriteStrategy::Atomic,
                    edges_per_warp,
                    warps_per_cta,
                });
            }
        }
    }

    if cv != CvBucket::Skewed {
        // The vertex-parallel skeleton has fixed internal geometry; its
        // tiling knobs are inert, so one candidate covers it.
        push(SpmmPlan {
            variant: SpmmVariant::VertexParallel,
            writes: WriteStrategy::Staged,
            edges_per_warp: 64,
            warps_per_cta: 4,
        });
    }
    out
}

/// INT8 SpMM plans worth evaluating. The quantized kernel has a single
/// skeleton (vertex-parallel neighbor groups), so the live knobs are the
/// group size — which is also the scale-block granularity of the
/// per-group flush — and the warps per CTA. The paper-default geometry
/// is always candidate #0.
pub fn spmm_i8_candidates() -> Vec<SpmmPlan> {
    let mut out = Vec::new();
    let mut push = |p: SpmmPlan| {
        if !out.contains(&p) {
            out.push(p);
        }
    };
    for &edges_per_warp in &[64usize, 32, 128] {
        for &warps_per_cta in &[4usize, 2, 8] {
            push(SpmmPlan {
                variant: SpmmVariant::VertexParallel,
                writes: WriteStrategy::Staged,
                edges_per_warp,
                warps_per_cta,
            });
        }
    }
    out
}

/// SDDMM plans legal for feature width `f`. The default (widest width,
/// sub-warps on, default tile geometry) is always first.
///
/// PR 3's enumeration varied only `width` × `sub_warps`, and on every
/// benchmark config the widest sub-warp plan was already optimal — the
/// tuner could never improve on the default (BENCH_pr3: speedup 1.000
/// across the board). Tile geometry is the knob that actually moves
/// modeled cost (it changes CTA wave occupancy and per-warp load counts),
/// so the space now crosses the widest width with the same geometry grid
/// the SpMM enumeration uses.
pub fn sddmm_candidates(f: usize) -> Vec<SddmmPlan> {
    let default = SddmmPlan::default_for(f);
    let mut out = vec![default];
    let mut push = |p: SddmmPlan| {
        if !out.contains(&p) {
            out.push(p);
        }
    };
    for &edges_per_warp in &[32usize, 64, 128] {
        for &warps_per_cta in &[2usize, 4, 8] {
            push(SddmmPlan { edges_per_warp, warps_per_cta, ..default });
        }
    }
    for width in [VectorWidth::Half8, VectorWidth::Half4, VectorWidth::Half2] {
        if f.is_multiple_of(width.lanes()) {
            push(SddmmPlan { width, sub_warps: true, ..default });
        }
    }
    // One unpacked candidate at the widest legal width: on tiny edge
    // counts, skipping sub-warp packing trades shuffles for occupancy.
    push(SddmmPlan { sub_warps: false, ..default });
    out
}

/// Attention-pipeline plans: the unfused five-kernel chain (the default,
/// and the only bit-compatible-with-PR-3 choice) and the fused single-pass
/// kernel. Both are always evaluated — which one wins depends on the
/// graph's row-length distribution (fused warps own whole rows, so hub
/// rows serialize them) and on `f` (large `f` makes the per-edge
/// feature-row gather dominate both designs).
pub fn attn_candidates() -> Vec<AttnPlan> {
    vec![AttnPlan { fused: false }, AttnPlan { fused: true }]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(cv: f64, skew: f64) -> DegreeStats {
        DegreeStats {
            min: 1,
            max: 100,
            mean: 10.0,
            median: 10,
            gini: 0.2,
            top1pct_edge_share: 0.05,
            cv,
            max_mean_skew: skew,
        }
    }

    #[test]
    fn default_plan_is_always_first() {
        for s in [stats(0.1, 1.2), stats(0.6, 3.0), stats(2.5, 80.0)] {
            assert_eq!(spmm_candidates(&s)[0], SpmmPlan::default());
        }
        for f in [8, 64, 256] {
            assert_eq!(sddmm_candidates(f)[0], SddmmPlan::default_for(f));
        }
        assert_eq!(attn_candidates()[0], AttnPlan::default());
    }

    #[test]
    fn sddmm_candidates_vary_tile_geometry() {
        // The PR 3 dead-end fix: the enumeration must reach plans that
        // differ from the default in geometry, not just width/packing.
        let cands = sddmm_candidates(64);
        let d = SddmmPlan::default_for(64);
        assert!(
            cands.iter().any(|p| (p.edges_per_warp, p.warps_per_cta)
                != (d.edges_per_warp, d.warps_per_cta)),
            "{cands:?}"
        );
        assert!(cands.len() > 4, "{cands:?}");
    }

    #[test]
    fn attn_candidates_cover_both_pipelines() {
        let c = attn_candidates();
        assert!(c.iter().any(|p| p.fused));
        assert!(c.iter().any(|p| !p.fused));
    }

    #[test]
    fn skewed_graphs_never_try_atomics_or_vertex_parallel() {
        let cands = spmm_candidates(&stats(2.5, 80.0));
        assert!(cands.iter().all(|p| p.writes == WriteStrategy::Staged), "{cands:?}");
        assert!(cands.iter().all(|p| p.variant == SpmmVariant::EdgeParallel), "{cands:?}");
    }

    #[test]
    fn regular_graphs_try_the_full_space() {
        let cands = spmm_candidates(&stats(0.1, 1.2));
        assert!(cands.iter().any(|p| p.writes == WriteStrategy::Atomic));
        assert!(cands.iter().any(|p| p.variant == SpmmVariant::VertexParallel));
        // 9 staged + 9 atomic + 1 vertex-parallel, minus the default dup.
        assert_eq!(cands.len(), 19);
    }

    #[test]
    fn candidate_lists_are_duplicate_free() {
        for s in [stats(0.1, 1.2), stats(0.6, 3.0), stats(2.5, 80.0)] {
            let c = spmm_candidates(&s);
            for (i, a) in c.iter().enumerate() {
                assert!(!c[i + 1..].contains(a), "dup {a:?}");
            }
        }
        for f in [6, 8, 12, 64] {
            let c = sddmm_candidates(f);
            for (i, a) in c.iter().enumerate() {
                assert!(!c[i + 1..].contains(a), "dup {a:?}");
            }
        }
    }

    #[test]
    fn sddmm_candidates_respect_width_legality() {
        for f in [6usize, 8, 12, 64, 256] {
            for p in sddmm_candidates(f) {
                assert_eq!(f % p.width.lanes(), 0, "f={f} width={:?}", p.width);
            }
        }
        // f=6 admits only half2 (+ the unpacked default).
        assert!(sddmm_candidates(6).iter().all(|p| p.width == VectorWidth::Half2));
    }
}
