//! `halfgnn-tune` — cost-model-driven kernel autotuner with a persistent
//! plan cache.
//!
//! The paper's performance story is a sequence of per-kernel configuration
//! choices — half2 vs half4/half8 data loads (Fig. 12), sub-warp packing,
//! the discretized-reduction batch size, staged vs atomic writes (§5.2.3),
//! edge- vs vertex-parallel layouts (§5.4) — and the winning combination
//! depends on the graph's degree distribution and the feature width, not
//! just the op. The model layers used to hard-code one default per call
//! site; this crate searches the space instead:
//!
//! * [`key::KernelKey`] buckets *(op, graph shape, feature dim, dtype)*
//!   into a cache key, so one tuning run serves every layer, epoch and
//!   process that dispatches an equivalent kernel;
//! * [`plan::KernelPlan`] is the knob assignment a dispatch executes —
//!   [`plan::SpmmPlan`] (write strategy, tile geometry = discretized
//!   reduction batch, edge/vertex variant), [`plan::SddmmPlan`]
//!   (vector width, sub-warp packing, tile geometry), or
//!   [`plan::AttnPlan`] (fused vs. unfused GAT attention pipeline);
//! * [`candidates`] enumerates plans worth evaluating, pruned by the
//!   graph's degree statistics (no atomics under hub skew, no
//!   vertex-parallel on high-CV graphs);
//! * [`tuner::Tuner`] evaluates each candidate on the real graph — or a
//!   degree-stratified sample above an nnz threshold — under
//!   `ExecMode::Sim`, rejects any plan whose output leaves the f64
//!   oracle's tolerance band or records overflow provenance, and keeps
//!   the argmin of modeled cycles;
//! * [`cache::PlanCache`] remembers winners in memory and in a JSON file
//!   (`.halfgnn-plans.json` by default), with hit/miss/evaluation
//!   counters, so the tuning cost is paid once per (graph, layer shape).
//!
//! The trainer exposes all of this as `TrainConfig::tuning`:
//! `Off` (bit-exact defaults), `Auto` (tune in memory), or
//! `Cached(path)` (tune once, persist, reuse across runs).

pub mod cache;
pub mod candidates;
pub mod key;
pub mod plan;
pub mod sample;
pub mod tuner;

pub use cache::PlanCache;
pub use key::{CvBucket, Dtype, KernelKey, OpKind};
pub use plan::{AttnPlan, KernelPlan, SddmmPlan, SpmmPlan, SpmmVariant};
pub use tuner::{Rejection, Tuner, TunerCounters};
