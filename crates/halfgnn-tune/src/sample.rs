//! Degree-stratified subgraph sampling: tune on a proxy, not the planet.
//!
//! Above a few hundred thousand edges, simulating every candidate on the
//! full graph would cost more than the tuning saves. But a *uniform* row
//! sample of a power-law graph almost never includes a hub, and hubs are
//! exactly what decides staged-vs-atomic writes and the discretized batch
//! size. So rows are sampled by degree stratum: sort rows by degree,
//! split them into quantile strata, and draw from every stratum in
//! proportion — the sampled degree distribution keeps the original's
//! head *and* tail, so the CV/skew regime (and hence the candidate
//! pruning) of the sample matches the full graph.
//!
//! The sample keeps each chosen row's full adjacency list (row degrees —
//! the quantity the kernels care about — are preserved exactly) and
//! compacts row and column ids so feature buffers stay proportional to
//! the sample, not the original.

use halfgnn_graph::{Coo, Csr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of degree-quantile strata.
const STRATA: usize = 4;

/// Sample rows of `csr` until roughly `target_nnz` edges are covered,
/// stratified by degree, and return the compacted subgraph. Graphs already
/// at or below the target are returned whole (compacted but identical in
/// structure).
pub fn stratified_sample(csr: &Csr, target_nnz: usize, seed: u64) -> Coo {
    if csr.nnz() <= target_nnz {
        return csr.to_coo();
    }
    let n = csr.num_rows();
    // Rows sorted by degree, split into quantile strata.
    let mut by_degree: Vec<u32> = (0..n as u32).collect();
    by_degree.sort_by_key(|&v| csr.degree(v));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut strata: Vec<Vec<u32>> = (0..STRATA)
        .map(|s| {
            let lo = n * s / STRATA;
            let hi = n * (s + 1) / STRATA;
            let mut rows = by_degree[lo..hi].to_vec();
            // Fisher–Yates (the vendored rand shim has no `seq` module).
            for i in (1..rows.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                rows.swap(i, j);
            }
            rows
        })
        .collect();

    // Round-robin across strata so every degree regime fills in together;
    // within a stratum the shuffled order makes the draw uniform.
    let mut picked: Vec<u32> = Vec::new();
    let mut covered = 0usize;
    let mut cursor = [0usize; STRATA];
    'fill: loop {
        let mut advanced = false;
        for (s, stratum) in strata.iter_mut().enumerate() {
            if let Some(&row) = stratum.get(cursor[s]) {
                cursor[s] += 1;
                advanced = true;
                picked.push(row);
                covered += csr.degree(row) as usize;
                if covered >= target_nnz {
                    break 'fill;
                }
            }
        }
        if !advanced {
            break;
        }
    }

    // Compact ids: rows first (preserving pick order is unnecessary; sort
    // for determinism), then any extra columns their adjacency reaches.
    picked.sort_unstable();
    picked.dedup();
    let mut row_of = vec![u32::MAX; csr.num_rows().max(csr.num_cols())];
    for (new, &old) in picked.iter().enumerate() {
        row_of[old as usize] = new as u32;
    }
    let mut col_of = row_of.clone();
    let mut num_cols = picked.len();
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(covered);
    for &old_row in &picked {
        for &old_col in csr.row(old_row) {
            let c = &mut col_of[old_col as usize];
            if *c == u32::MAX {
                *c = num_cols as u32;
                num_cols += 1;
            }
            edges.push((row_of[old_row as usize], *c));
        }
    }
    Coo::from_edges(picked.len(), num_cols, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use halfgnn_graph::metrics::degree_stats;
    use halfgnn_graph::{gen, Csr};

    fn powerlaw(n: usize) -> Csr {
        Csr::from_edges(n, n, &gen::preferential_attachment(n, 8, 7)).symmetrized_with_self_loops()
    }

    #[test]
    fn small_graphs_pass_through_whole() {
        let csr = powerlaw(500);
        let s = stratified_sample(&csr, 1_000_000, 1);
        assert_eq!(s.nnz(), csr.nnz());
        assert_eq!(s.num_rows(), csr.num_rows());
    }

    #[test]
    fn sample_hits_the_nnz_target_without_overshooting_wildly() {
        let csr = powerlaw(20_000);
        let target = 20_000;
        let s = stratified_sample(&csr, target, 1);
        assert!(s.nnz() >= target, "{} < {target}", s.nnz());
        // Overshoot is bounded by one round-robin sweep (≤ max degree + a
        // few rows), far below 2× on any non-degenerate graph.
        assert!(s.nnz() < 2 * target + csr.max_degree() as usize, "{}", s.nnz());
        assert!(s.num_rows() < csr.num_rows());
    }

    #[test]
    fn sample_preserves_the_degree_regime() {
        let csr = powerlaw(20_000);
        let full = degree_stats(&csr);
        let s = stratified_sample(&csr, 25_000, 3);
        let sampled = degree_stats(&Csr::from_coo(&s));
        // Degree CV must stay in the same order of magnitude — a uniform
        // row sample of a power law collapses toward the median instead.
        assert!(sampled.cv > 0.4 * full.cv, "sampled cv {} vs full {}", sampled.cv, full.cv);
        // The head of the distribution must survive: the sampled max
        // degree is within the top stratum of the original.
        assert!(
            sampled.max as f64 >= 0.25 * full.max as f64,
            "sampled max {} vs full {}",
            sampled.max,
            full.max
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let csr = powerlaw(5_000);
        let a = stratified_sample(&csr, 8_000, 42);
        let b = stratified_sample(&csr, 8_000, 42);
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        let c = stratified_sample(&csr, 8_000, 43);
        assert!(a.rows() != c.rows() || a.cols() != c.cols());
    }

    #[test]
    fn compacted_ids_are_dense_and_in_range() {
        let csr = powerlaw(5_000);
        let s = stratified_sample(&csr, 8_000, 9);
        assert!(s.rows().iter().all(|&r| (r as usize) < s.num_rows()));
        assert!(s.cols().iter().all(|&c| (c as usize) < s.num_cols()));
        // Every row id below num_rows appears (rows were picked, so each
        // has at least its self-loop after symmetrization).
        let mut seen = vec![false; s.num_rows()];
        for &r in s.rows() {
            seen[r as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
