//! Delta-CSR ↔ tuner interaction (DESIGN.md §14): degree metrics are
//! recomputed lazily after streaming inserts (never served stale), a hub
//! insertion flips the CV regime and therefore the cache key, and batch
//! subgraphs whose shapes land in the same log2 buckets share one cached
//! plan — the property that keeps mini-batch re-tuning mostly cache-hit.

use halfgnn_graph::metrics::degree_stats;
use halfgnn_graph::{gen, Csr, DeltaCsr, NeighborSampler, VertexId};
use halfgnn_kernels::common::ScalePlacement;
use halfgnn_sim::DeviceConfig;
use halfgnn_tune::{CvBucket, Dtype, KernelKey, OpKind, Tuner};

fn spmm_key(csr: &Csr) -> KernelKey {
    KernelKey::for_graph(
        OpKind::SpmmV,
        Dtype::Half,
        64,
        csr.num_rows(),
        csr.nnz(),
        &degree_stats(csr),
        ScalePlacement::Discretized,
    )
}

#[test]
fn hub_insert_through_the_delta_overlay_flips_the_cv_bucket() {
    // Regression for stale lazy metrics: a 16×16 grid is near-regular, so
    // its CV regime is Regular. Reading stats() BEFORE the inserts primes
    // the lazy cache; if insert_edge failed to invalidate it, the hub
    // below would keep serving the Regular bucket and the tuner would keep
    // reusing a plan tuned for a skew-free graph.
    let grid = Csr::from_edges(256, 256, &gen::grid2d(16, 16));
    let mut d = DeltaCsr::new(grid);
    let before = d.stats();
    assert_eq!(CvBucket::of(before.cv), CvBucket::Regular, "grid cv {}", before.cv);

    for v in 1..=200u32 {
        d.insert_undirected(0, v as VertexId);
    }

    let after = d.stats();
    assert!(after.cv > before.cv, "stats served stale after inserts");
    assert_eq!(
        CvBucket::of(after.cv),
        CvBucket::Skewed,
        "a 200-degree hub on a degree-4 lattice must read as skewed (cv {})",
        after.cv
    );
    // Corner vertex: 2 grid edges + 200 inserts, minus the two inserts
    // that duplicate existing grid edges (overlay dedups against base).
    assert_eq!(after.max, 200, "hub degree after dedup");
    // The flipped regime must reach the cache key: a plan tuned on the
    // pre-hub graph is not offered for the post-hub one.
    let merged = d.merge();
    assert_ne!(spmm_key(d.base()).encode(), spmm_key(&merged).encode());
    assert_eq!(spmm_key(&merged).cv, CvBucket::Skewed);
}

#[test]
fn same_bucket_batch_subgraphs_share_one_cached_plan() {
    // Two disjoint seed batches of the same size sampled with the same
    // fanout produce subgraphs whose rows/nnz/degree land in the same log2
    // buckets, so the second dispatch is a pure cache hit — no candidate
    // re-evaluation per batch.
    let g = Csr::from_edges(2_000, 2_000, &gen::erdos_renyi(2_000, 10_000, 1))
        .symmetrized_with_self_loops();
    let sampler = NeighborSampler::new(5, 2, 7);
    let batch_a: Vec<VertexId> = (0..128).collect();
    let batch_b: Vec<VertexId> = (1_000..1_128).collect();
    let sub_a = sampler.sample(&g, &batch_a, 0).csr.symmetrized_with_self_loops();
    let sub_b = sampler.sample(&g, &batch_b, 1).csr.symmetrized_with_self_loops();
    assert_eq!(spmm_key(&sub_a), spmm_key(&sub_b), "batch shapes must share a bucket");

    let t = Tuner::auto(&DeviceConfig::tiny());
    let plan_a = t.spmm_plan(&sub_a, 64, false, ScalePlacement::Discretized);
    assert_eq!(t.counters().misses, 1, "first batch shape tunes");
    let plan_b = t.spmm_plan(&sub_b, 64, false, ScalePlacement::Discretized);
    let c = t.counters();
    assert_eq!(c.misses, 1, "second batch must not re-tune");
    assert_eq!(c.hits, 1, "second batch must hit the cached plan");
    assert_eq!(plan_a, plan_b);
}

#[test]
fn small_delta_keeps_the_merged_graph_in_the_tuned_bucket() {
    // The >50%-post-delta-hit-rate acceptance criterion, reduced to its
    // mechanism: a stream of inserts far smaller than the nnz bucket width
    // leaves rows/nnz/cv buckets unchanged, so the plan tuned before the
    // delta is reused verbatim on the merged graph.
    let g = Csr::from_edges(2_000, 2_000, &gen::erdos_renyi(2_000, 10_000, 2))
        .symmetrized_with_self_loops();
    let t = Tuner::auto(&DeviceConfig::tiny());
    let before = t.spmm_plan(&g, 64, false, ScalePlacement::Discretized);
    assert_eq!(t.counters().misses, 1);

    let mut d = DeltaCsr::new(g);
    let mut inserted = 0u32;
    for i in 0..200u32 {
        let (u, v) = (i * 7 % 2_000, (i * 13 + 5) % 2_000);
        if u != v {
            d.insert_undirected(u, v);
            inserted += 1;
        }
    }
    assert!(inserted > 0);
    let merged = d.merge();
    let after = t.spmm_plan(&merged, 64, false, ScalePlacement::Discretized);
    let c = t.counters();
    assert_eq!(c.misses, 1, "post-delta dispatch must not re-tune");
    assert_eq!(c.hits, 1, "post-delta dispatch must be a cache hit");
    assert_eq!(before, after);
}
