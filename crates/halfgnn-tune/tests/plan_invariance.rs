//! Property-based guarantees of the plan space (satellite c).
//!
//! Plans carry only performance knobs — write strategy, tiling geometry,
//! parallelization variant, vector width — never correctness parameters,
//! so every candidate the enumerator can emit must produce output inside
//! the oracle's tolerance band of the f64 reference on *any* graph. If a
//! knob ever leaks into numerics beyond that band, these properties catch
//! it before the tuner ships the plan.

use halfgnn_graph::metrics::degree_stats;
use halfgnn_graph::{Csr, VertexId};
use halfgnn_kernels::common::ScalePlacement;
use halfgnn_sim::DeviceConfig;
use halfgnn_tune::{candidates, KernelPlan, SddmmPlan, SpmmPlan, Tuner};
use proptest::prelude::*;

/// Arbitrary connected-ish graph + padded feature length.
fn arb_graph() -> impl Strategy<Value = (Csr, usize)> {
    (4usize..40, 0usize..3)
        .prop_flat_map(|(n, fpow)| {
            let edge = (0..n as VertexId, 0..n as VertexId);
            (Just(n), Just(4 << fpow), prop::collection::vec(edge, 0..150))
        })
        .prop_map(|(n, f, edges)| (Csr::from_edges(n, n, &edges).symmetrized_with_self_loops(), f))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_spmm_candidate_is_oracle_clean_under_discretized_scaling(
        (csr, f) in arb_graph()
    ) {
        let t = Tuner::auto(&DeviceConfig::tiny());
        let stats = degree_stats(&csr);
        for plan in candidates::spmm_candidates(&stats) {
            let vetted = t.vet_spmm(&csr, f, false, ScalePlacement::Discretized, &plan);
            prop_assert!(
                vetted.is_ok(),
                "plan {} rejected on a benign graph: {}",
                KernelPlan::Spmm(plan).encode(),
                vetted.unwrap_err()
            );
        }
    }

    #[test]
    fn every_weighted_spmm_candidate_is_oracle_clean(
        (csr, f) in arb_graph()
    ) {
        // SpMMve (GAT's aggregation): edge weights multiply in, still a
        // pure perf space under post-reduction scaling.
        let t = Tuner::auto(&DeviceConfig::tiny());
        let stats = degree_stats(&csr);
        for plan in candidates::spmm_candidates(&stats) {
            let vetted = t.vet_spmm(&csr, f, true, ScalePlacement::PostReduction, &plan);
            prop_assert!(
                vetted.is_ok(),
                "plan {} rejected: {}",
                KernelPlan::Spmm(plan).encode(),
                vetted.unwrap_err()
            );
        }
    }

    #[test]
    fn every_sddmm_candidate_is_oracle_clean((csr, f) in arb_graph()) {
        let t = Tuner::auto(&DeviceConfig::tiny());
        for plan in candidates::sddmm_candidates(f) {
            prop_assert_eq!(f % plan.width.lanes(), 0, "illegal width enumerated");
            let vetted = t.vet_sddmm(&csr, f, &plan);
            prop_assert!(
                vetted.is_ok(),
                "plan {} rejected: {}",
                KernelPlan::Sddmm(plan).encode(),
                vetted.unwrap_err()
            );
        }
    }

    #[test]
    fn winning_plans_survive_an_encode_decode_round_trip(
        (csr, f) in arb_graph()
    ) {
        // Whatever the tuner picks must persist losslessly: the cache file
        // stores `encode()` strings and a later process trusts `decode()`.
        let t = Tuner::auto(&DeviceConfig::tiny());
        let spmm = t.spmm_plan(&csr, f, false, ScalePlacement::Discretized);
        let sddmm = t.sddmm_plan(&csr, f);
        let s = KernelPlan::Spmm(spmm).encode();
        prop_assert_eq!(KernelPlan::decode(&s), Some(KernelPlan::Spmm(spmm)), "{}", s);
        let d = KernelPlan::Sddmm(sddmm).encode();
        prop_assert_eq!(KernelPlan::decode(&d), Some(KernelPlan::Sddmm(sddmm)), "{}", d);
    }
}

#[test]
fn default_plans_are_always_enumerated_first() {
    // The argmin can therefore never lose to the default: the default's
    // cycles are the bar every other candidate has to beat.
    let csr = Csr::from_edges(50, 50, &[(0, 1), (1, 2), (2, 3)]).symmetrized_with_self_loops();
    let stats = degree_stats(&csr);
    assert_eq!(candidates::spmm_candidates(&stats)[0], SpmmPlan::default());
    for f in [2, 4, 8, 64] {
        assert_eq!(candidates::sddmm_candidates(f)[0], SddmmPlan::default_for(f));
    }
}
