//! Distributed-training kernels: halo gather and the FP16 gradient
//! all-reduce with per-bucket discretized scaling.
//!
//! These are the two kernels the sharded trainer adds on top of the
//! single-device pipeline:
//!
//! * **Halo gather** — pack the remote feature rows a shard's local SpMM
//!   needs into a contiguous wire buffer. Packing is what makes an FP16
//!   halo exchange move exactly `|halo| · f · 2` bytes — the 2× comms win
//!   over FP32 that the interconnect ledger measures. Writes are
//!   assign-only (each packed slot has exactly one owner), reusing the
//!   §5.2.3 conflict-free write machinery: no atomics, and the
//!   [`halfgnn_sim::launch::find_assign_overlap`] debug validation applies.
//! * **FP16 all-reduce with discretized scaling** — the §5.2.2 idea moved
//!   from the SpMM reduction to the gradient wire format. A plain FP16
//!   all-reduce of `S` shard partials overflows exactly where hub-row
//!   gradients live; scaling each `bucket`-sized chunk by a shared
//!   power-of-two exponent chosen so `Σ_s |v_s| ≤ 1` makes the running
//!   half sum overflow-free *by construction*, and the power-of-two
//!   dequantization is exact.

use crate::common::count_nonfinite;
use halfgnn_graph::VertexId;
use halfgnn_half::intrinsics::hadd;
use halfgnn_half::{overflow, quant, Half};
use halfgnn_sim::launch::{commit_all, launch, LaunchParams, WriteList};
use halfgnn_sim::memory::AddrSpace;
use halfgnn_sim::{DeviceConfig, KernelStats};

/// Rows a halo-gather warp packs per iteration.
const ROWS_PER_WARP: usize = 8;
const WARPS_PER_CTA: usize = 4;

/// Gather the feature rows named by `halo` (global vertex ids) from the
/// global tensor `x` (`num_vertices × f`, half) into a packed
/// `|halo| × f` wire buffer.
pub fn halo_gather_half(
    dev: &DeviceConfig,
    x: &[Half],
    f: usize,
    halo: &[VertexId],
) -> (Vec<Half>, KernelStats) {
    assert!(x.len().is_multiple_of(f.max(1)), "X shape mismatch");
    let n = halo.len();
    let rows_per_cta = ROWS_PER_WARP * WARPS_PER_CTA;
    let num_ctas = n.div_ceil(rows_per_cta).max(1);

    let mut space = AddrSpace::new();
    let idx_base = space.alloc(n, 4);
    let x_base = space.alloc(x.len(), 2);
    let out_base = space.alloc(n * f, 2);

    let (cta_outs, stats) = launch(
        dev,
        "halo_gather_f16",
        LaunchParams { num_ctas, warps_per_cta: WARPS_PER_CTA },
        |cta| {
            let mut writes: WriteList<Half> = WriteList::new();
            for wi in 0..WARPS_PER_CTA {
                let lo = (cta.id * WARPS_PER_CTA + wi) * ROWS_PER_WARP;
                let hi = (lo + ROWS_PER_WARP).min(n);
                if lo >= hi {
                    continue;
                }
                let mut warp = cta.warp(wi);
                warp.load_contiguous(idx_base + lo as u64 * 4, hi - lo, 4);
                // Scattered source rows, half2-cast loads.
                warp.load_feature_rows(
                    (lo..hi).map(|i| x_base + halo[i] as u64 * (f as u64 * 2)),
                    f * 2,
                    4,
                );
                // Packed destination: fully coalesced stores.
                warp.store_contiguous(out_base + (lo * f) as u64 * 2, (hi - lo) * f / 2, 4);
                for (i, &src_row) in halo.iter().enumerate().take(hi).skip(lo) {
                    let src = src_row as usize * f;
                    let vals = x[src..src + f].to_vec();
                    warp.nonfinite_values(count_nonfinite(&vals));
                    writes.assign(i * f, vals);
                }
            }
            writes
        },
    );

    let mut out = vec![Half::ZERO; n * f];
    commit_all(cta_outs, &mut out);
    (out, stats)
}

/// [`halo_gather_half`] for the float pipeline: same structure, 4-byte
/// elements — the wire payload the FP16 exchange halves.
pub fn halo_gather_f32(
    dev: &DeviceConfig,
    x: &[f32],
    f: usize,
    halo: &[VertexId],
) -> (Vec<f32>, KernelStats) {
    assert!(x.len().is_multiple_of(f.max(1)), "X shape mismatch");
    let n = halo.len();
    let rows_per_cta = ROWS_PER_WARP * WARPS_PER_CTA;
    let num_ctas = n.div_ceil(rows_per_cta).max(1);

    let mut space = AddrSpace::new();
    let idx_base = space.alloc(n, 4);
    let x_base = space.alloc(x.len(), 4);
    let out_base = space.alloc(n * f, 4);

    let (cta_outs, stats) = launch(
        dev,
        "halo_gather_f32",
        LaunchParams { num_ctas, warps_per_cta: WARPS_PER_CTA },
        |cta| {
            let mut writes: WriteList<f32> = WriteList::new();
            for wi in 0..WARPS_PER_CTA {
                let lo = (cta.id * WARPS_PER_CTA + wi) * ROWS_PER_WARP;
                let hi = (lo + ROWS_PER_WARP).min(n);
                if lo >= hi {
                    continue;
                }
                let mut warp = cta.warp(wi);
                warp.load_contiguous(idx_base + lo as u64 * 4, hi - lo, 4);
                warp.load_feature_rows(
                    (lo..hi).map(|i| x_base + halo[i] as u64 * (f as u64 * 4)),
                    f * 4,
                    4,
                );
                warp.store_contiguous(out_base + (lo * f) as u64 * 4, (hi - lo) * f, 4);
                for (i, &src_row) in halo.iter().enumerate().take(hi).skip(lo) {
                    let src = src_row as usize * f;
                    writes.assign(i * f, x[src..src + f].to_vec());
                }
            }
            writes
        },
    );

    let mut out = vec![0f32; n * f];
    commit_all(cta_outs, &mut out);
    (out, stats)
}

/// Per-bucket shared exponent: the smallest `e` with
/// `max_s |v_s| · num_shards ≤ 2^e`, so every quantized term is at most
/// `1/num_shards` in magnitude and the running FP16 sum stays ≤ 1.
fn bucket_exponent(max_abs: f32, num_shards: usize) -> i32 {
    if max_abs == 0.0 || !max_abs.is_finite() {
        return 0;
    }
    let bound = max_abs as f64 * num_shards as f64;
    let mut e = bound.log2().ceil() as i32;
    // log2/ceil rounding guard: enforce the bound exactly.
    while bound > (2.0f64).powi(e) {
        e += 1;
    }
    e
}

/// FP16 all-reduce of `S = partials.len()` shard gradient vectors with
/// per-bucket discretized scaling (§5.2.2 applied to the wire format).
///
/// For each `bucket`-sized chunk, all shards agree on the shared exponent
/// of [`bucket_exponent`]; each shard quantizes `v · 2^-e` to half (a
/// power-of-two scale — only the final f16 rounding loses bits), the wire
/// sum accumulates in half in shard order (deterministic, and bounded by 1
/// so it cannot overflow), and the result dequantizes by the exact
/// power-of-two `2^e`. Returns the reduced f32 vector.
pub fn allreduce_f16_discretized(
    dev: &DeviceConfig,
    partials: &[Vec<f32>],
    bucket: usize,
) -> (Vec<f32>, KernelStats) {
    assert!(!partials.is_empty(), "need at least one shard partial");
    assert!(bucket > 0, "bucket size must be positive");
    let n = partials[0].len();
    for p in partials {
        assert_eq!(p.len(), n, "shard partial length mismatch");
    }
    let _site = overflow::site("allreduce_f16");
    let num_shards = partials.len();

    let mut space = AddrSpace::new();
    let in_bases: Vec<u64> = partials.iter().map(|p| space.alloc(p.len(), 4)).collect();
    let wire_base = space.alloc(n, 2);
    let out_base = space.alloc(n, 4);

    let buckets = n.div_ceil(bucket).max(1);
    let num_ctas = buckets.div_ceil(WARPS_PER_CTA).max(1);

    let (cta_outs, stats) = launch(
        dev,
        "allreduce_f16_disc",
        LaunchParams { num_ctas, warps_per_cta: WARPS_PER_CTA },
        |cta| {
            let mut writes: WriteList<f32> = WriteList::new();
            for wi in 0..WARPS_PER_CTA {
                let bi = cta.id * WARPS_PER_CTA + wi;
                if bi >= buckets {
                    break;
                }
                let lo = bi * bucket;
                let hi = (lo + bucket).min(n);
                if lo >= hi {
                    continue;
                }
                let len = hi - lo;
                let chunks = (len as u64).div_ceil(32);
                let mut warp = cta.warp(wi);

                // Exponent scan: every shard's chunk is read once in f32.
                for base in &in_bases {
                    warp.load_contiguous(base + lo as u64 * 4, len, 4);
                }
                warp.float_ops(num_shards as u64 * chunks); // |v| max scan
                let max_abs = partials
                    .iter()
                    .flat_map(|p| p[lo..hi].iter())
                    .fold(0f32, |m, v| m.max(v.abs()));
                let e = bucket_exponent(max_abs, num_shards);
                let down = (2.0f64).powi(-e) as f32;
                let up = (2.0f64).powi(e) as f32;

                // Quantize + accumulate on the f16 wire, shard order.
                warp.convert_ops(num_shards as u64 * chunks); // f32→f16
                warp.half_ops((num_shards as u64 - 1) * chunks); // wire adds
                warp.store_contiguous(wire_base + lo as u64 * 2, len.div_ceil(2), 4);
                let mut acc = vec![Half::ZERO; len];
                for p in partials {
                    for (a, &v) in acc.iter_mut().zip(&p[lo..hi]) {
                        *a = hadd(*a, Half::from_f32(v * down));
                    }
                }
                warp.nonfinite_values(count_nonfinite(&acc));

                // Dequantize: exact power-of-two scale back to f32.
                warp.convert_ops(chunks);
                warp.store_contiguous(out_base + lo as u64 * 4, len, 4);
                writes.assign(lo, acc.iter().map(|h| h.to_f32() * up).collect());
            }
            writes
        },
    );

    let mut out = vec![0f32; n];
    commit_all(cta_outs, &mut out);
    (out, stats)
}

/// Quantization stream site for the INT8 halo wire.
pub const HALO_I8_SITE: &str = "halo_i8";
/// Quantization stream site for the INT8 gradient all-reduce wire.
pub const ALLREDUCE_I8_SITE: &str = "allreduce_i8";

/// [`halo_gather_half`] with an INT8 wire: the packed rows are quantized
/// host-side into [`quant::BLOCK`]-element scale blocks over the *flat
/// wire buffer* (blocks may straddle rows — this is a wire format, not a
/// tensor layout), stochastically rounded as a pure function of
/// `(seed, site, flat wire index)`. The payload is 1 byte/element —
/// half the f16 wire, a quarter of float. The receiver dequantizes to
/// f32 (exact power-of-two scales), never back through f16: a code at
/// +127 under a large exponent could overflow binary16 where the source
/// value did not.
pub fn halo_gather_i8(
    dev: &DeviceConfig,
    x: &[Half],
    f: usize,
    halo: &[VertexId],
    seed: u64,
) -> (quant::QuantizedBlocks, KernelStats) {
    assert!(x.len().is_multiple_of(f.max(1)), "X shape mismatch");
    let n = halo.len();
    let rows_per_cta = ROWS_PER_WARP * WARPS_PER_CTA;
    let num_ctas = n.div_ceil(rows_per_cta).max(1);

    // Host-side pure pre-quantization of the packed wire buffer — on the
    // caller's thread, so the saturation window sees every element.
    let mut pack = vec![0f32; n * f];
    for (i, &src_row) in halo.iter().enumerate() {
        let src = src_row as usize * f;
        for (dst, h) in pack[i * f..(i + 1) * f].iter_mut().zip(&x[src..src + f]) {
            *dst = h.to_f32();
        }
    }
    let wire = quant::quantize_blocks(&pack, seed, quant::site_key(HALO_I8_SITE), 0);

    let mut space = AddrSpace::new();
    let idx_base = space.alloc(n, 4);
    let x_base = space.alloc(x.len(), 2);
    let out_base = space.alloc(n * f, 1);

    let (cta_outs, stats) = launch(
        dev,
        "halo_gather_i8",
        LaunchParams { num_ctas, warps_per_cta: WARPS_PER_CTA },
        |cta| {
            let mut writes: WriteList<i8> = WriteList::new();
            for wi in 0..WARPS_PER_CTA {
                let lo = (cta.id * WARPS_PER_CTA + wi) * ROWS_PER_WARP;
                let hi = (lo + ROWS_PER_WARP).min(n);
                if lo >= hi {
                    continue;
                }
                let mut warp = cta.warp(wi);
                warp.load_contiguous(idx_base + lo as u64 * 4, hi - lo, 4);
                // Scattered f16 source rows, half2-cast loads.
                warp.load_feature_rows(
                    (lo..hi).map(|i| x_base + halo[i] as u64 * (f as u64 * 2)),
                    f * 2,
                    4,
                );
                // Quantize (f16 → i8 codes), then fully coalesced 1-byte
                // stores packed four to a word.
                warp.convert_ops((((hi - lo) * f) as u64).div_ceil(32).max(1));
                warp.store_contiguous(out_base + (lo * f) as u64, ((hi - lo) * f).div_ceil(4), 4);
                for i in lo..hi {
                    writes.assign(i * f, wire.q[i * f..(i + 1) * f].to_vec());
                }
            }
            writes
        },
    );

    let mut codes = vec![0i8; n * f];
    commit_all(cta_outs, &mut codes);
    debug_assert_eq!(codes, wire.q);
    (wire, stats)
}

/// INT8 all-reduce of `S = partials.len()` shard gradient vectors with
/// per-bucket shared scales and stochastic rounding — the precision rung
/// below [`allreduce_f16_discretized`], at 1 byte/element on the wire.
///
/// For each `bucket`-sized chunk all shards agree on the exponent of
/// [`quant::block_exponent`] over the *joint* max magnitude, so every
/// quantized code is in `[-127, 127]` and saturation is impossible by
/// construction. Each shard rounds stochastically (coin keyed
/// `(seed, site, s·n + i)` — bitwise-reproducible across thread and
/// shard counts), the wire sum accumulates **exactly** in `i32`
/// (`|Σ| ≤ S·127` — no rounding at all on the wire, unlike the f16
/// version's half adds), and the result dequantizes by the exact
/// power-of-two `2^e`. The absolute error per element is bounded by
/// `S · 2^e` deterministically, and is unbiased in expectation.
pub fn allreduce_i8_stochastic(
    dev: &DeviceConfig,
    partials: &[Vec<f32>],
    bucket: usize,
    seed: u64,
) -> (Vec<f32>, KernelStats) {
    assert!(!partials.is_empty(), "need at least one shard partial");
    assert!(bucket > 0, "bucket size must be positive");
    let n = partials[0].len();
    for p in partials {
        assert_eq!(p.len(), n, "shard partial length mismatch");
    }
    let num_shards = partials.len();
    let site = quant::site_key(ALLREDUCE_I8_SITE);

    let mut space = AddrSpace::new();
    let in_bases: Vec<u64> = partials.iter().map(|p| space.alloc(p.len(), 4)).collect();
    let wire_base = space.alloc(n, 1);
    let out_base = space.alloc(n, 4);

    let buckets = n.div_ceil(bucket).max(1);
    let num_ctas = buckets.div_ceil(WARPS_PER_CTA).max(1);

    let (cta_outs, stats) = launch(
        dev,
        "allreduce_i8_sr",
        LaunchParams { num_ctas, warps_per_cta: WARPS_PER_CTA },
        |cta| {
            let mut writes: WriteList<f32> = WriteList::new();
            for wi in 0..WARPS_PER_CTA {
                let bi = cta.id * WARPS_PER_CTA + wi;
                if bi >= buckets {
                    break;
                }
                let lo = bi * bucket;
                let hi = (lo + bucket).min(n);
                if lo >= hi {
                    continue;
                }
                let len = hi - lo;
                let chunks = (len as u64).div_ceil(32);
                let mut warp = cta.warp(wi);

                // Exponent scan: every shard's chunk is read once in f32.
                for base in &in_bases {
                    warp.load_contiguous(base + lo as u64 * 4, len, 4);
                }
                warp.float_ops(num_shards as u64 * chunks); // |v| max scan
                let max_abs = partials
                    .iter()
                    .flat_map(|p| p[lo..hi].iter())
                    .fold(0f32, |m, v| m.max(v.abs()));
                let e = quant::block_exponent(max_abs);
                let up = (2.0f64).powi(e);

                // Stochastic quantize + exact i32 accumulation on the
                // 1-byte wire, shard order.
                warp.convert_ops(num_shards as u64 * chunks); // f32→i8 SR
                warp.float_ops((num_shards as u64 - 1) * chunks); // wire adds
                warp.store_contiguous(wire_base + lo as u64, len.div_ceil(4), 4);
                let mut acc = vec![0i32; len];
                for (s, p) in partials.iter().enumerate() {
                    for (i, (a, &v)) in acc.iter_mut().zip(&p[lo..hi]).enumerate() {
                        let idx = (s * n + lo + i) as u64;
                        *a += quant::quantize_sr(v, e, seed, site, idx) as i32;
                    }
                }

                // Dequantize: exact power-of-two scale back to f32.
                warp.convert_ops(chunks);
                warp.store_contiguous(out_base + lo as u64 * 4, len, 4);
                writes.assign(lo, acc.iter().map(|&q| (q as f64 * up) as f32).collect());
            }
            writes
        },
    );

    let mut out = vec![0f32; n];
    commit_all(cta_outs, &mut out);
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use halfgnn_half::slice::f32_slice_to_half;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dev() -> DeviceConfig {
        DeviceConfig::a100_like()
    }

    fn random_f32(n: usize, scale: f32, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-scale..scale)).collect()
    }

    #[test]
    fn halo_gather_packs_the_named_rows() {
        let f = 4;
        let xf = random_f32(20 * f, 1.0, 1);
        let xh = f32_slice_to_half(&xf);
        let halo: Vec<u32> = vec![3, 7, 7, 19, 0];
        let (gh, sh) = halo_gather_half(&dev(), &xh, f, &halo);
        let (gf, _) = halo_gather_f32(&dev(), &xf, f, &halo);
        for (i, &v) in halo.iter().enumerate() {
            assert_eq!(&gh[i * f..(i + 1) * f], &xh[v as usize * f..(v as usize + 1) * f]);
            assert_eq!(&gf[i * f..(i + 1) * f], &xf[v as usize * f..(v as usize + 1) * f]);
        }
        assert!(sh.cycles > 0.0);
    }

    #[test]
    fn halo_gather_empty_is_fine() {
        let (g, _) = halo_gather_half(&dev(), &f32_slice_to_half(&random_f32(8, 1.0, 2)), 2, &[]);
        assert!(g.is_empty());
    }

    #[test]
    fn halo_gather_fast_matches_sim_bitwise() {
        let f = 8;
        let x = f32_slice_to_half(&random_f32(100 * f, 1.0, 3));
        let halo: Vec<u32> = (0..100).filter(|v| v % 3 == 0).collect();
        let (sim, _) = halo_gather_half(&dev(), &x, f, &halo);
        let (fast, fs) = halo_gather_half(&dev().fast(), &x, f, &halo);
        assert_eq!(
            sim.iter().map(|h| h.to_bits()).collect::<Vec<u16>>(),
            fast.iter().map(|h| h.to_bits()).collect::<Vec<u16>>()
        );
        assert_eq!(fs.cycles, 0.0);
    }

    #[test]
    fn bucket_exponent_bounds_the_scaled_sum() {
        for (max, s) in [(1.0f32, 2usize), (100.0, 4), (65504.0, 8), (1e-6, 2), (0.75, 3)] {
            let e = bucket_exponent(max, s);
            assert!(max as f64 * s as f64 <= (2.0f64).powi(e), "max={max} s={s} e={e}");
        }
        assert_eq!(bucket_exponent(0.0, 4), 0);
    }

    #[test]
    fn allreduce_matches_f64_sum_within_f16_rounding() {
        let n = 500;
        let shards: Vec<Vec<f32>> = (0..4).map(|s| random_f32(n, 2.0, 10 + s)).collect();
        let (got, stats) = allreduce_f16_discretized(&dev(), &shards, 64);
        for i in 0..n {
            let want: f64 = shards.iter().map(|p| p[i] as f64).sum();
            // One shared exponent per 64-bucket: a few half ulps of error
            // at the bucket's max magnitude.
            assert!(
                (got[i] as f64 - want).abs() <= 0.05 + 0.01 * want.abs(),
                "[{i}] got {} want {want}",
                got[i]
            );
        }
        assert!(stats.totals.convert_ops > 0, "quantization must be charged");
    }

    #[test]
    fn allreduce_cannot_overflow_on_hub_gradients() {
        // Each shard contributes near-f16-max values of one sign: a naive
        // f16 wire sum would hit INF at the second shard. The discretized
        // exponent keeps every partial sum ≤ 1 on the wire.
        let n = 128;
        let shards: Vec<Vec<f32>> = (0..8).map(|_| vec![60000.0f32; n]).collect();
        let ((got, _), summary) =
            overflow::isolated(|| allreduce_f16_discretized(&dev(), &shards, 64));
        assert!(summary.is_clean(), "{} overflow events on the wire", summary.nonfinite());
        for &v in &got {
            assert!(v.is_finite());
            assert!((v - 480000.0).abs() / 480000.0 < 1e-2, "got {v}");
        }
    }

    #[test]
    fn allreduce_single_shard_is_pure_quantization() {
        let p = vec![random_f32(100, 4.0, 20)];
        let (got, _) = allreduce_f16_discretized(&dev(), &p, 32);
        for (g, v) in got.iter().zip(&p[0]) {
            assert!((g - v).abs() <= 0.01 * v.abs().max(0.05), "{g} vs {v}");
        }
    }

    #[test]
    fn i8_halo_gather_round_trips_within_one_step() {
        let f = 4;
        let xf = random_f32(20 * f, 1.0, 4);
        let xh = f32_slice_to_half(&xf);
        let halo: Vec<u32> = vec![3, 7, 7, 19, 0];
        let ((wire, _), summary) =
            halfgnn_half::quant::isolated(|| halo_gather_i8(&dev(), &xh, f, &halo, 5));
        assert_eq!(summary.quantized, (halo.len() * f) as u64);
        assert!(summary.is_clean(), "{:?}", summary.first);
        let got = wire.dequantize();
        for (i, &v) in halo.iter().enumerate() {
            for j in 0..f {
                let want = xh[v as usize * f + j].to_f64();
                let step = (2.0f64).powi(wire.exps[(i * f + j) / quant::BLOCK] as i32);
                assert!(
                    (got[i * f + j] as f64 - want).abs() < step,
                    "row {i} col {j}: {} vs {want}",
                    got[i * f + j]
                );
            }
        }
    }

    #[test]
    fn i8_allreduce_error_is_bounded_by_shards_times_step() {
        let n = 500;
        let shards: Vec<Vec<f32>> = (0..4).map(|s| random_f32(n, 2.0, 40 + s)).collect();
        let (got, stats) = allreduce_i8_stochastic(&dev(), &shards, 64, 9);
        for i in 0..n {
            let want: f64 = shards.iter().map(|p| p[i] as f64).sum();
            let bi = i / 64;
            let lo = bi * 64;
            let hi = (lo + 64).min(n);
            let max_abs =
                shards.iter().flat_map(|p| p[lo..hi].iter()).fold(0f32, |m, v| m.max(v.abs()));
            let step = (2.0f64).powi(quant::block_exponent(max_abs));
            assert!(
                (got[i] as f64 - want).abs() <= shards.len() as f64 * step,
                "[{i}] got {} want {want} step {step}",
                got[i]
            );
        }
        assert!(stats.totals.convert_ops > 0, "quantization must be charged");
    }

    #[test]
    fn i8_allreduce_cannot_saturate_by_construction() {
        // The joint-max exponent keeps every scaled magnitude ≤ 127, so
        // even adversarial hub gradients produce zero saturation events.
        let n = 128;
        let shards: Vec<Vec<f32>> = (0..8).map(|_| vec![60000.0f32; n]).collect();
        let ((got, _), summary) =
            halfgnn_half::quant::isolated(|| allreduce_i8_stochastic(&dev(), &shards, 64, 1));
        assert!(summary.is_clean(), "{} saturation events", summary.flagged());
        for &v in &got {
            assert!(v.is_finite());
            assert!((v - 480000.0).abs() / 480000.0 < 7e-2, "got {v}");
        }
    }

    #[test]
    fn i8_allreduce_fast_matches_sim_bitwise() {
        let shards: Vec<Vec<f32>> = (0..4).map(|s| random_f32(300, 2.0, 50 + s)).collect();
        let (sim, _) = allreduce_i8_stochastic(&dev(), &shards, 64, 2);
        let (fast, fs) = allreduce_i8_stochastic(&dev().fast(), &shards, 64, 2);
        assert_eq!(
            sim.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
            fast.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
        );
        assert_eq!(fs.cycles, 0.0);
    }

    #[test]
    fn allreduce_fast_matches_sim_bitwise() {
        let shards: Vec<Vec<f32>> = (0..4).map(|s| random_f32(300, 2.0, 30 + s)).collect();
        let (sim, _) = allreduce_f16_discretized(&dev(), &shards, 64);
        let (fast, fs) = allreduce_f16_discretized(&dev().fast(), &shards, 64);
        assert_eq!(
            sim.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
            fast.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
        );
        assert_eq!(fs.cycles, 0.0);
    }
}
