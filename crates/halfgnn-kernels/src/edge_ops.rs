//! Edge-level elementwise kernels — the pieces of edge-softmax (Eq. 1) and
//! its backward pass.
//!
//! These are where mixed-precision training leaks performance (§3.1.2):
//! PyTorch AMP force-promotes `exp` (and friends) to float, dragging every
//! downstream sparse kernel to float or forcing h2f/f2h round trips. The
//! `shadow` flag on [`sub_row_exp`] switches between that AMP behaviour and
//! the paper's shadow API (§5.3), which stays in half because
//! `exp(e_ij − m_i) ∈ (0, 1]` cannot overflow.

use crate::common::{count_nonfinite, FiniteCheck, Tiling};
use halfgnn_graph::Coo;
use halfgnn_half::intrinsics::{hadd, hdiv, hexp, hmul, hsub};
use halfgnn_half::{overflow, Half};
use halfgnn_sim::launch::{launch, LaunchParams};
use halfgnn_sim::memory::AddrSpace;
use halfgnn_sim::{DeviceConfig, KernelStats};

/// Charging profile of one edge-map kernel.
#[derive(Clone, Copy)]
struct EdgeMapCost {
    /// Row-vector gathers per edge (tensors indexed by `row(e)`).
    row_gathers: u32,
    /// Column-vector gathers per edge.
    col_gathers: u32,
    /// Edge-tensor operand loads per edge.
    edge_loads: u32,
    /// Half instructions per 32 edges.
    half_instrs: u64,
    /// Float instructions per 32 edges (AMP-promoted ops).
    float_instrs: u64,
    /// Conversion instructions per 32 edges (h2f/f2h round trips).
    convert_instrs: u64,
    /// Materialized f32 tensor round trips per edge tensor (AMP promotion
    /// writes a float copy to global memory and reads it back).
    f32_roundtrips: u32,
}

/// Shared edge-parallel skeleton: loads per the cost profile, computes
/// `op(e)` functionally, stores one element per edge. Generic over the
/// element type so the float baselines share the structure.
fn edge_map<T: Copy + Default + Send + FiniteCheck>(
    dev: &DeviceConfig,
    name: &'static str,
    coo: &Coo,
    elem_bytes: usize,
    cost: EdgeMapCost,
    op: impl Fn(usize, u32, u32) -> T + Sync,
) -> (Vec<T>, KernelStats) {
    let _site = overflow::site(name);
    let nnz = coo.nnz();
    let tiling = Tiling::default();
    let num_ctas = tiling.num_ctas(nnz);
    let rows = coo.rows();
    let cols = coo.cols();

    let mut space = AddrSpace::new();
    let rows_base = space.alloc(nnz, 4);
    let cols_base = space.alloc(nnz, 4);
    let row_vec_base = space.alloc(coo.num_rows(), elem_bytes);
    let col_vec_base = space.alloc(coo.num_cols(), elem_bytes);
    let edge_base = space.alloc(nnz, elem_bytes);
    let out_base = space.alloc(nnz, elem_bytes);

    let (cta_outs, stats) =
        launch(dev, name, LaunchParams { num_ctas, warps_per_cta: tiling.warps_per_cta }, |cta| {
            let mut out: Vec<(usize, Vec<T>)> = Vec::new();
            for wi in 0..tiling.warps_per_cta {
                let (s, e) = tiling.warp_range(cta.id, wi, nnz);
                if s >= e {
                    continue;
                }
                let n = e - s;
                let mut warp = cta.warp(wi);
                if cost.row_gathers > 0 {
                    warp.load_contiguous(rows_base + s as u64 * 4, n, 4);
                    for _ in 0..cost.row_gathers {
                        // Row-sorted edges: gathers of m[row] mostly share
                        // sectors, which load_gather dedups.
                        warp.load_gather(
                            (s..e).map(|ei| row_vec_base + rows[ei] as u64 * elem_bytes as u64),
                            elem_bytes,
                        );
                    }
                }
                if cost.col_gathers > 0 {
                    warp.load_contiguous(cols_base + s as u64 * 4, n, 4);
                    for _ in 0..cost.col_gathers {
                        warp.load_gather(
                            (s..e).map(|ei| col_vec_base + cols[ei] as u64 * elem_bytes as u64),
                            elem_bytes,
                        );
                    }
                }
                for _ in 0..cost.edge_loads {
                    // Half operands load as half2-cast words; floats as f32.
                    if elem_bytes == 2 {
                        warp.load_contiguous(edge_base + s as u64 * 2, n.div_ceil(2), 4);
                    } else {
                        warp.load_contiguous(edge_base + s as u64 * 4, n, 4);
                    }
                }
                let per32 = (n as u64).div_ceil(32);
                warp.half_ops(cost.half_instrs * per32);
                warp.float_ops(cost.float_instrs * per32);
                warp.convert_ops(cost.convert_instrs * per32);
                for _ in 0..cost.f32_roundtrips {
                    // AMP materializes a float tensor in global memory and
                    // the next kernel reads it back (§3.1.2).
                    warp.store_contiguous(edge_base + s as u64 * 4, n, 4);
                    warp.load_contiguous(edge_base + s as u64 * 4, n, 4);
                }
                if elem_bytes == 2 {
                    warp.store_contiguous(out_base + s as u64 * 2, n.div_ceil(2), 4);
                } else {
                    warp.store_contiguous(out_base + s as u64 * 4, n, 4);
                }

                let vals: Vec<T> = (s..e).map(|ei| op(ei, rows[ei], cols[ei])).collect();
                warp.nonfinite_values(count_nonfinite(&vals));
                out.push((s, vals));
            }
            out
        });

    let mut result = vec![T::default(); nnz];
    for cta in cta_outs {
        for (s, vals) in cta {
            result[s..s + vals.len()].copy_from_slice(&vals);
        }
    }
    (result, stats)
}

/// `e_ij ← LeakyReLU(s_src[row] + s_dst[col])` — GAT's raw attention
/// logits from per-vertex projections (an SDDMM variant).
pub fn src_dst_add_leakyrelu(
    dev: &DeviceConfig,
    coo: &Coo,
    s_src: &[Half],
    s_dst: &[Half],
    slope: f32,
) -> (Vec<Half>, KernelStats) {
    assert_eq!(s_src.len(), coo.num_rows());
    assert_eq!(s_dst.len(), coo.num_cols());
    let slope_h = Half::from_f32(slope);
    edge_map(
        dev,
        "edge_add_leakyrelu",
        coo,
        2,
        EdgeMapCost {
            row_gathers: 1,
            col_gathers: 1,
            edge_loads: 0,
            half_instrs: 3,
            float_instrs: 0,
            convert_instrs: 0,
            f32_roundtrips: 0,
        },
        |_, r, c| {
            let v = hadd(s_src[r as usize], s_dst[c as usize]);
            if v.to_f32() >= 0.0 {
                v
            } else {
                hmul(v, slope_h)
            }
        },
    )
}

/// `out ← exp(e − m[row])`, the numerically-stabilized softmax numerator.
///
/// * `shadow == true`: the paper's shadow API (§5.3) — pure half
///   arithmetic; safe because the argument is ≤ 0.
/// * `shadow == false`: PyTorch-AMP behaviour — h2f on the input, float
///   `exp`, f2h on the output; same values, extra conversion traffic.
pub fn sub_row_exp(
    dev: &DeviceConfig,
    coo: &Coo,
    e: &[Half],
    m: &[Half],
    shadow: bool,
) -> (Vec<Half>, KernelStats) {
    assert_eq!(e.len(), coo.nnz());
    assert_eq!(m.len(), coo.num_rows());
    let cost = if shadow {
        EdgeMapCost {
            row_gathers: 1,
            col_gathers: 0,
            edge_loads: 1,
            half_instrs: 4,
            float_instrs: 0,
            convert_instrs: 0,
            f32_roundtrips: 0,
        }
    } else {
        EdgeMapCost {
            row_gathers: 1,
            col_gathers: 0,
            edge_loads: 1,
            half_instrs: 1,
            float_instrs: 4,
            convert_instrs: 3,
            f32_roundtrips: 2,
        }
    };
    edge_map(
        dev,
        if shadow { "edge_sub_exp_shadow" } else { "edge_sub_exp_amp" },
        coo,
        2,
        cost,
        |ei, r, _| {
            if shadow {
                hexp(hsub(e[ei], m[r as usize]))
            } else {
                // AMP: promote, compute in f32, round back.
                Half::from_f32((e[ei].to_f32() - m[r as usize].to_f32()).exp())
            }
        },
    )
}

/// `α ← e / z[row]`, the softmax normalization.
pub fn div_row(dev: &DeviceConfig, coo: &Coo, e: &[Half], z: &[Half]) -> (Vec<Half>, KernelStats) {
    assert_eq!(e.len(), coo.nnz());
    assert_eq!(z.len(), coo.num_rows());
    edge_map(
        dev,
        "edge_div_row",
        coo,
        2,
        EdgeMapCost {
            row_gathers: 1,
            col_gathers: 0,
            edge_loads: 1,
            half_instrs: 2,
            float_instrs: 0,
            convert_instrs: 0,
            f32_roundtrips: 0,
        },
        |ei, r, _| hdiv(e[ei], z[r as usize]),
    )
}

/// Elementwise product of two edge tensors (softmax backward).
pub fn mul(dev: &DeviceConfig, coo: &Coo, a: &[Half], b: &[Half]) -> (Vec<Half>, KernelStats) {
    assert_eq!(a.len(), coo.nnz());
    assert_eq!(b.len(), coo.nnz());
    edge_map(
        dev,
        "edge_mul",
        coo,
        2,
        EdgeMapCost {
            row_gathers: 0,
            col_gathers: 0,
            edge_loads: 2,
            half_instrs: 1,
            float_instrs: 0,
            convert_instrs: 0,
            f32_roundtrips: 0,
        },
        |ei, _, _| hmul(a[ei], b[ei]),
    )
}

/// Edge-softmax backward: `δe ← α ⊙ (δα − t[row])` where
/// `t_i = Σ_j α_ij·δα_ij` (computed by an `edge_reduce` sum).
pub fn softmax_grad(
    dev: &DeviceConfig,
    coo: &Coo,
    alpha: &[Half],
    dalpha: &[Half],
    t: &[Half],
) -> (Vec<Half>, KernelStats) {
    assert_eq!(alpha.len(), coo.nnz());
    assert_eq!(dalpha.len(), coo.nnz());
    assert_eq!(t.len(), coo.num_rows());
    edge_map(
        dev,
        "edge_softmax_grad",
        coo,
        2,
        EdgeMapCost {
            row_gathers: 1,
            col_gathers: 0,
            edge_loads: 2,
            half_instrs: 2,
            float_instrs: 0,
            convert_instrs: 0,
            f32_roundtrips: 0,
        },
        |ei, r, _| hmul(alpha[ei], hsub(dalpha[ei], t[r as usize])),
    )
}

/// LeakyReLU backward on edge logits: `δx ← δy · (x ≥ 0 ? 1 : slope)`.
pub fn leakyrelu_grad(
    dev: &DeviceConfig,
    coo: &Coo,
    pre: &[Half],
    grad: &[Half],
    slope: f32,
) -> (Vec<Half>, KernelStats) {
    assert_eq!(pre.len(), coo.nnz());
    assert_eq!(grad.len(), coo.nnz());
    let slope_h = Half::from_f32(slope);
    edge_map(
        dev,
        "edge_leakyrelu_grad",
        coo,
        2,
        EdgeMapCost {
            row_gathers: 0,
            col_gathers: 0,
            edge_loads: 2,
            half_instrs: 2,
            float_instrs: 0,
            convert_instrs: 0,
            f32_roundtrips: 0,
        },
        |ei, _, _| {
            if pre[ei].to_f32() >= 0.0 {
                grad[ei]
            } else {
                hmul(grad[ei], slope_h)
            }
        },
    )
}

// ---------------------------------------------------------------------
// Float variants — what DGL's float GAT executes. Same structure, 4-byte
// elements, float arithmetic (no conversions).
// ---------------------------------------------------------------------

/// Float `e_ij ← LeakyReLU(s_src[row] + s_dst[col])`.
pub fn src_dst_add_leakyrelu_f32(
    dev: &DeviceConfig,
    coo: &Coo,
    s_src: &[f32],
    s_dst: &[f32],
    slope: f32,
) -> (Vec<f32>, KernelStats) {
    assert_eq!(s_src.len(), coo.num_rows());
    assert_eq!(s_dst.len(), coo.num_cols());
    edge_map(
        dev,
        "edge_add_leakyrelu_f32",
        coo,
        4,
        EdgeMapCost {
            row_gathers: 1,
            col_gathers: 1,
            edge_loads: 0,
            half_instrs: 0,
            float_instrs: 3,
            convert_instrs: 0,
            f32_roundtrips: 0,
        },
        |_, r, c| {
            let v = s_src[r as usize] + s_dst[c as usize];
            if v >= 0.0 {
                v
            } else {
                v * slope
            }
        },
    )
}

/// Float `out ← exp(e − m[row])`.
pub fn sub_row_exp_f32(
    dev: &DeviceConfig,
    coo: &Coo,
    e: &[f32],
    m: &[f32],
) -> (Vec<f32>, KernelStats) {
    assert_eq!(e.len(), coo.nnz());
    assert_eq!(m.len(), coo.num_rows());
    edge_map(
        dev,
        "edge_sub_exp_f32",
        coo,
        4,
        EdgeMapCost {
            row_gathers: 1,
            col_gathers: 0,
            edge_loads: 1,
            half_instrs: 0,
            float_instrs: 4,
            convert_instrs: 0,
            f32_roundtrips: 0,
        },
        |ei, r, _| (e[ei] - m[r as usize]).exp(),
    )
}

/// Float `α ← e / z[row]`.
pub fn div_row_f32(dev: &DeviceConfig, coo: &Coo, e: &[f32], z: &[f32]) -> (Vec<f32>, KernelStats) {
    assert_eq!(e.len(), coo.nnz());
    assert_eq!(z.len(), coo.num_rows());
    edge_map(
        dev,
        "edge_div_row_f32",
        coo,
        4,
        EdgeMapCost {
            row_gathers: 1,
            col_gathers: 0,
            edge_loads: 1,
            half_instrs: 0,
            float_instrs: 2,
            convert_instrs: 0,
            f32_roundtrips: 0,
        },
        |ei, r, _| e[ei] / z[r as usize],
    )
}

/// Float elementwise edge product.
pub fn mul_f32(dev: &DeviceConfig, coo: &Coo, a: &[f32], b: &[f32]) -> (Vec<f32>, KernelStats) {
    assert_eq!(a.len(), coo.nnz());
    assert_eq!(b.len(), coo.nnz());
    edge_map(
        dev,
        "edge_mul_f32",
        coo,
        4,
        EdgeMapCost {
            row_gathers: 0,
            col_gathers: 0,
            edge_loads: 2,
            half_instrs: 0,
            float_instrs: 1,
            convert_instrs: 0,
            f32_roundtrips: 0,
        },
        |ei, _, _| a[ei] * b[ei],
    )
}

/// Float edge-softmax backward.
pub fn softmax_grad_f32(
    dev: &DeviceConfig,
    coo: &Coo,
    alpha: &[f32],
    dalpha: &[f32],
    t: &[f32],
) -> (Vec<f32>, KernelStats) {
    assert_eq!(alpha.len(), coo.nnz());
    assert_eq!(dalpha.len(), coo.nnz());
    assert_eq!(t.len(), coo.num_rows());
    edge_map(
        dev,
        "edge_softmax_grad_f32",
        coo,
        4,
        EdgeMapCost {
            row_gathers: 1,
            col_gathers: 0,
            edge_loads: 2,
            half_instrs: 0,
            float_instrs: 2,
            convert_instrs: 0,
            f32_roundtrips: 0,
        },
        |ei, r, _| alpha[ei] * (dalpha[ei] - t[r as usize]),
    )
}

/// Float LeakyReLU backward on edge logits.
pub fn leakyrelu_grad_f32(
    dev: &DeviceConfig,
    coo: &Coo,
    pre: &[f32],
    grad: &[f32],
    slope: f32,
) -> (Vec<f32>, KernelStats) {
    assert_eq!(pre.len(), coo.nnz());
    assert_eq!(grad.len(), coo.nnz());
    edge_map(
        dev,
        "edge_leakyrelu_grad_f32",
        coo,
        4,
        EdgeMapCost {
            row_gathers: 0,
            col_gathers: 0,
            edge_loads: 2,
            half_instrs: 0,
            float_instrs: 2,
            convert_instrs: 0,
            f32_roundtrips: 0,
        },
        |ei, _, _| if pre[ei] >= 0.0 { grad[ei] } else { grad[ei] * slope },
    )
}

/// Float per-row reduction of an edge tensor (the float counterpart of
/// [`crate::halfgnn_spmm::edge_reduce`]).
pub fn edge_reduce_f32(
    dev: &DeviceConfig,
    coo: &Coo,
    w: &[f32],
    op: crate::common::Reduce,
) -> (Vec<f32>, KernelStats) {
    edge_reduce_f32_window(dev, coo, w, op, (0, coo.num_rows()))
}

/// [`edge_reduce_f32`] restricted to the global row window `[r0, r1)` with
/// the same global-tiling alignment as
/// [`crate::halfgnn_spmm::edge_reduce_window`]: window rows are
/// bit-identical to the full run, rows outside hold the reduction identity.
pub fn edge_reduce_f32_window(
    dev: &DeviceConfig,
    coo: &Coo,
    w: &[f32],
    op: crate::common::Reduce,
    row_window: (usize, usize),
) -> (Vec<f32>, KernelStats) {
    use crate::common::{Reduce, Tiling};
    use halfgnn_sim::launch::{launch, LaunchParams};
    assert_eq!(w.len(), coo.nnz());
    let (r0, r1) = row_window;
    assert!(r0 <= r1 && r1 <= coo.num_rows(), "bad row window {row_window:?}");
    let nnz = coo.nnz();
    let tiling = Tiling::default();
    let off = crate::halfgnn_spmm::row_offsets_of(coo);
    let (e0, e1) = (off[r0], off[r1]);
    let (cta_lo, cta_hi) = tiling.cta_range(e0, e1);
    let num_ctas = cta_hi - cta_lo;
    let rows = coo.rows();
    let mut space = AddrSpace::new();
    let rows_base = space.alloc(nnz, 4);
    let w_base = space.alloc(nnz, 4);
    let y_base = space.alloc(coo.num_rows(), 4);
    let init = match op {
        Reduce::Sum => 0.0f32,
        Reduce::Max => f32::NEG_INFINITY,
    };
    let combine = |a: f32, b: f32| match op {
        Reduce::Sum => a + b,
        Reduce::Max => a.max(b),
    };
    let (cta_outs, stats) = launch(
        dev,
        "edge_reduce_f32",
        LaunchParams { num_ctas, warps_per_cta: tiling.warps_per_cta },
        |cta| {
            let mut partials: Vec<(u32, f32)> = Vec::new();
            for wi in 0..tiling.warps_per_cta {
                let (s, e) = tiling.warp_range_in(cta.id + cta_lo, wi, e0, e1);
                if s >= e {
                    continue;
                }
                let n = e - s;
                let mut warp = cta.warp(wi);
                warp.load_contiguous(rows_base + s as u64 * 4, n, 4);
                warp.load_contiguous(w_base + s as u64 * 4, n, 4);
                warp.float_ops((n as u64).div_ceil(32));
                let mut acc = init;
                let mut seg_row = rows[s];
                for ei in s..e {
                    let r = rows[ei];
                    if r != seg_row {
                        partials.push((seg_row, acc));
                        warp.store_contiguous(y_base + seg_row as u64 * 4, 1, 4);
                        acc = init;
                        seg_row = r;
                    }
                    acc = combine(acc, w[ei]);
                }
                partials.push((seg_row, acc));
                warp.store_contiguous(y_base + seg_row as u64 * 4, 1, 4);
            }
            partials
        },
    );
    let mut y = vec![init; coo.num_rows()];
    for partials in cta_outs {
        for (r, v) in partials {
            y[r as usize] = combine(y[r as usize], v);
        }
    }
    if op == crate::common::Reduce::Max {
        for r in r0..r1 {
            if off[r] == off[r + 1] {
                y[r] = 0.0;
            }
        }
    }
    (y, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Reduce;
    use crate::halfgnn_spmm::edge_reduce;
    use halfgnn_graph::{gen, Csr};
    use halfgnn_half::slice::f32_slice_to_half;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dev() -> DeviceConfig {
        DeviceConfig::a100_like()
    }

    fn random_graph(n: usize, m: usize, seed: u64) -> Coo {
        let edges = gen::erdos_renyi(n, m, seed);
        Csr::from_edges(n, n, &edges).symmetrized_with_self_loops().to_coo()
    }

    fn random_halves(n: usize, scale: f32, seed: u64) -> Vec<Half> {
        let mut rng = StdRng::seed_from_u64(seed);
        f32_slice_to_half(&(0..n).map(|_| rng.gen_range(-scale..scale)).collect::<Vec<_>>())
    }

    #[test]
    fn add_leakyrelu_values() {
        let g = Coo::from_edges(2, 2, &[(0, 1), (1, 0)]);
        let s_src = f32_slice_to_half(&[1.0, -3.0]);
        let s_dst = f32_slice_to_half(&[0.5, 1.0]);
        let (e, _) = src_dst_add_leakyrelu(&dev(), &g, &s_src, &s_dst, 0.2);
        assert_eq!(e[0].to_f32(), 2.0); // 1.0 + 1.0
        assert!((e[1].to_f32() - (-0.5)).abs() < 1e-3); // 0.2 * (-3 + 0.5)
    }

    #[test]
    fn fast_executor_matches_sim_bitwise_through_softmax_chain() {
        // Chain four edge kernels (max → sub_exp → sum → div) plus the GAT
        // score map; any backend divergence would compound, so bitwise
        // equality at the end is a strong whole-chain check.
        let g = random_graph(80, 400, 31);
        let e = random_halves(g.nnz(), 4.0, 32);
        let s_src = random_halves(g.num_rows(), 1.0, 33);
        let s_dst = random_halves(g.num_cols(), 1.0, 34);
        let bits = |v: &[Half]| v.iter().map(|h| h.to_bits()).collect::<Vec<u16>>();
        let chain = |d: &DeviceConfig| {
            let (raw, _) = src_dst_add_leakyrelu(d, &g, &s_src, &s_dst, 0.2);
            let (m, _) = edge_reduce(d, &g, &e, Reduce::Max);
            let (num, _) = sub_row_exp(d, &g, &e, &m, true);
            let (z, _) = edge_reduce(d, &g, &num, Reduce::Sum);
            let (alpha, _) = div_row(d, &g, &num, &z);
            (raw, alpha)
        };
        let (sim_raw, sim_alpha) = chain(&dev());
        let (fast_raw, fast_alpha) = chain(&dev().fast());
        assert_eq!(bits(&sim_raw), bits(&fast_raw));
        assert_eq!(bits(&sim_alpha), bits(&fast_alpha));
    }

    #[test]
    fn full_edge_softmax_rows_sum_to_one() {
        // Compose max → sub_exp → sum → div and check the softmax property.
        let g = random_graph(60, 300, 1);
        let e = random_halves(g.nnz(), 4.0, 2);
        let (m, _) = edge_reduce(&dev(), &g, &e, Reduce::Max);
        let (num, _) = sub_row_exp(&dev(), &g, &e, &m, true);
        let (z, _) = edge_reduce(&dev(), &g, &num, Reduce::Sum);
        let (alpha, _) = div_row(&dev(), &g, &num, &z);
        let off = crate::halfgnn_spmm::row_offsets_of(&g);
        for r in 0..g.num_rows() {
            if off[r] == off[r + 1] {
                continue;
            }
            let sum: f32 = alpha[off[r]..off[r + 1]].iter().map(|h| h.to_f32()).sum();
            assert!((sum - 1.0).abs() < 0.05, "row {r} sums to {sum}");
            assert!(alpha[off[r]..off[r + 1]].iter().all(|h| h.is_finite()));
        }
    }

    #[test]
    fn shadow_exp_saves_conversions_and_time() {
        // §5.3: the shadow API avoids the AMP h2f/f2h round trip.
        let g = random_graph(2_000, 30_000, 3);
        let e = random_halves(g.nnz(), 4.0, 4);
        let (m, _) = edge_reduce(&dev(), &g, &e, Reduce::Max);
        let (v_shadow, s_shadow) = sub_row_exp(&dev(), &g, &e, &m, true);
        let (v_amp, s_amp) = sub_row_exp(&dev(), &g, &e, &m, false);
        assert_eq!(s_shadow.totals.convert_ops, 0);
        assert!(s_amp.totals.convert_ops > 0);
        assert!(s_amp.cycles > s_shadow.cycles);
        // Functionally both are the stabilized exponent; values agree to
        // FP16 rounding.
        for (a, b) in v_shadow.iter().zip(&v_amp) {
            assert!((a.to_f32() - b.to_f32()).abs() <= 2e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn shadow_exp_never_overflows_on_stabilized_input() {
        // The §3.1.2 guarantee: e - m ≤ 0 ⇒ exp ∈ (0, 1].
        let g = random_graph(100, 600, 5);
        let e = random_halves(g.nnz(), 100.0, 6); // wild logits
        let (m, _) = edge_reduce(&dev(), &g, &e, Reduce::Max);
        let (v, _) = sub_row_exp(&dev(), &g, &e, &m, true);
        for h in &v {
            assert!(h.is_finite() && h.to_f32() <= 1.0 && h.to_f32() >= 0.0);
        }
    }

    #[test]
    fn softmax_grad_formula() {
        let g = Coo::from_edges(1, 2, &[(0, 0), (0, 1)]);
        let alpha = f32_slice_to_half(&[0.25, 0.75]);
        let dalpha = f32_slice_to_half(&[2.0, -1.0]);
        // t = 0.25*2 + 0.75*(-1) = -0.25
        let (prod, _) = mul(&dev(), &g, &alpha, &dalpha);
        let (t, _) = edge_reduce(&dev(), &g, &prod, Reduce::Sum);
        assert!((t[0].to_f32() + 0.25).abs() < 1e-3);
        let (de, _) = softmax_grad(&dev(), &g, &alpha, &dalpha, &t);
        assert!((de[0].to_f32() - 0.25 * 2.25).abs() < 2e-3);
        assert!((de[1].to_f32() - 0.75 * -0.75).abs() < 2e-3);
    }

    #[test]
    fn leakyrelu_grad_gates_by_sign() {
        let g = Coo::from_edges(1, 2, &[(0, 0), (0, 1)]);
        let pre = f32_slice_to_half(&[3.0, -2.0]);
        let grad = f32_slice_to_half(&[1.0, 1.0]);
        let (dx, _) = leakyrelu_grad(&dev(), &g, &pre, &grad, 0.1);
        assert_eq!(dx[0].to_f32(), 1.0);
        assert!((dx[1].to_f32() - 0.1).abs() < 1e-3);
    }
}
