//! **INT8 quantized SpMM** — the precision rung below the half2 kernels
//! (ROADMAP item 2; Tango shows GNN training survives INT8 with
//! stochastic rounding and per-tile scales).
//!
//! Layout is the vertex-parallel neighbor-group design of
//! [`crate::halfgnn_spmm::spmm_vertex_parallel_window`] (per-row groups of
//! ≤ `tiling.edges_per_warp` neighbors, staged merge only for rows wider
//! than one group), with the operands quantized to INT8 **host-side as a
//! pure function of `(seed, site, index)`**:
//!
//! * `X` is quantized per row in [`quant::BLOCK`]-element scale blocks
//!   (stream index = flat element index `r·f + j`), so every window of a
//!   sharded launch sees bitwise-identical codes.
//! * Edge weights are quantized over the global edge array in
//!   [`quant::BLOCK`]-element blocks (stream index = edge id). `SpMMv`
//!   (all-ones weights) skips weight quantization entirely — the codes
//!   would be exact.
//!
//! Inside a group the kernel models DP4A accumulation: the `i8 × i8`
//! products are exact in `i32`; each product joins an f32 accumulator
//! scaled by its two block exponents (`2^(e_w + e_x)`, a power-of-two —
//! the dequantization is exact, only the f32 additions round). At group
//! end the partial is degree-scaled (discretized placement, §5.2.2) and
//! rounded once into f16 through [`Half::from_f32`], so overflow
//! provenance hooks into the same choke point as every other kernel.
//!
//! The modeled memory win over f16: feature rows and edge weights move
//! 1 byte/element instead of 2, halving the dominant traffic term again.

use crate::common::{count_nonfinite, EdgeWeights, Tiling};
use halfgnn_graph::Csr;
use halfgnn_half::intrinsics::hadd;
use halfgnn_half::{overflow, quant, Half};
use halfgnn_sim::launch::{commit_all, launch, LaunchParams, WriteList};
use halfgnn_sim::memory::AddrSpace;
use halfgnn_sim::{DeviceConfig, KernelStats};

/// Quantization stream site for the feature operand.
pub const SITE_X: &str = "spmm_i8.x";
/// Quantization stream site for the edge-weight operand.
pub const SITE_W: &str = "spmm_i8.w";

/// Exponents per feature row of width `f`.
pub fn exps_per_row(f: usize) -> usize {
    f.div_ceil(quant::BLOCK)
}

/// Quantize a half feature matrix row-by-row: blocks never straddle rows,
/// and element `(r, j)` draws its rounding coin at stream index `r·f + j`
/// regardless of how the matrix is windowed.
pub fn quantize_features(x: &[Half], f: usize, seed: u64) -> quant::QuantizedBlocks {
    let site = quant::site_key(SITE_X);
    let rows = x.len() / f;
    let mut q = Vec::with_capacity(x.len());
    let mut exps = Vec::with_capacity(rows * exps_per_row(f));
    let mut row_f32 = vec![0f32; f];
    for r in 0..rows {
        for (dst, h) in row_f32.iter_mut().zip(&x[r * f..(r + 1) * f]) {
            *dst = h.to_f32();
        }
        let row = quant::quantize_blocks(&row_f32, seed, site, (r * f) as u64);
        q.extend_from_slice(&row.q);
        exps.extend_from_slice(&row.exps);
    }
    quant::QuantizedBlocks { q, exps }
}

/// Quantize the global edge-weight array (stream index = edge id).
pub fn quantize_edge_weights(w: &EdgeWeights<'_>, nnz: usize, seed: u64) -> quant::QuantizedBlocks {
    let vals: Vec<f32> = (0..nnz).map(|e| w.get(e).to_f32()).collect();
    quant::quantize_blocks(&vals, seed, quant::site_key(SITE_W), 0)
}

/// `Y ← A_w · X` through the INT8 path, full row range.
#[allow(clippy::too_many_arguments)]
pub fn spmm_i8(
    dev: &DeviceConfig,
    csr: &Csr,
    w: EdgeWeights<'_>,
    x: &[Half],
    f: usize,
    row_scale: Option<&[Half]>,
    tiling: Tiling,
    seed: u64,
) -> (Vec<Half>, KernelStats) {
    spmm_i8_window(dev, csr, w, x, f, row_scale, tiling, seed, (0, csr.num_rows()))
}

/// [`spmm_i8`] restricted to the global row window `[r0, r1)`. Neighbor
/// groups are per-row independent and quantization streams are keyed by
/// global indices, so window rows are bit-identical to the full run.
#[allow(clippy::too_many_arguments)]
pub fn spmm_i8_window(
    dev: &DeviceConfig,
    csr: &Csr,
    w: EdgeWeights<'_>,
    x: &[Half],
    f: usize,
    row_scale: Option<&[Half]>,
    tiling: Tiling,
    seed: u64,
    row_window: (usize, usize),
) -> (Vec<Half>, KernelStats) {
    assert_eq!(x.len(), csr.num_cols() * f, "X shape mismatch");
    assert!(f.is_multiple_of(2), "feature length must be half2-padded");
    let (r0, r1) = row_window;
    assert!(r0 <= r1 && r1 <= csr.num_rows(), "bad row window {row_window:?}");
    let _site = overflow::site("spmm_i8");
    let group = tiling.edges_per_warp.max(1);
    let warps_per_cta = tiling.warps_per_cta.max(1);
    let n = csr.num_rows();
    let epr = exps_per_row(f);

    // Host-side pure pre-quantization: full operands, so every window of
    // a sharded launch sees the same codes.
    let qx = quantize_features(x, f, seed);
    let qw = (!w.is_ones()).then(|| quantize_edge_weights(&w, csr.nnz(), seed));

    // Neighbor groups: (row, offset, len), never crossing a row.
    let mut groups: Vec<(u32, usize, usize)> = Vec::new();
    for r in r0..r1 {
        let (start, end) = (csr.offsets()[r], csr.offsets()[r + 1]);
        let mut off = start;
        while off < end {
            let len = (end - off).min(group);
            groups.push((r as u32, off, len));
            off += len;
        }
    }
    let num_ctas = groups.len().div_ceil(warps_per_cta).max(1);

    let mut space = AddrSpace::new();
    let cols_base = space.alloc(csr.nnz(), 4);
    let w_base = space.alloc(csr.nnz(), 1);
    let x_base = space.alloc(x.len(), 1);
    let y_base = space.alloc(n * f, 2);
    let stage_base = space.alloc(groups.len() * (f + 2), 2);

    let scale_of = |r: u32| -> Half { row_scale.map_or(Half::ONE, |s| s[r as usize]) };
    let exp2 = |e: i32| -> f32 { (2.0f32).powi(e) };

    let (cta_outs, main_stats) = launch(
        dev,
        if w.is_ones() { "spmm_i8v" } else { "spmm_i8ve" },
        LaunchParams { num_ctas, warps_per_cta },
        |cta| {
            let cta_id = cta.id;
            let mut writes: WriteList<Half> = WriteList::new();
            let mut staged: Vec<(u32, Vec<Half>)> = Vec::new();
            for wi in 0..warps_per_cta {
                let gi = cta_id * warps_per_cta + wi;
                let Some(&(row, off, len)) = groups.get(gi) else { break };
                let mut warp = cta.warp(wi);
                warp.load_contiguous(cols_base + off as u64 * 4, len, 4);
                if qw.is_some() {
                    // 1-byte weight codes fetched as 4-byte words.
                    warp.load_contiguous(w_base + off as u64, len.div_ceil(4), 4);
                }
                let cols = &csr.cols()[off..off + len];
                // 1 byte/element feature rows — half the f16 kernel's
                // dominant traffic term.
                warp.load_feature_rows(cols.iter().map(|&c| x_base + c as u64 * f as u64), f, 4);
                // DP4A proxy: four 8-bit MACs per lane-op.
                warp.half2_ops(((len * f) as u64 / 4).div_ceil(32));

                let mut acc = vec![0f32; f];
                for (k, &c) in cols.iter().enumerate() {
                    let e_idx = off + k;
                    let (qwv, ewv) = match &qw {
                        Some(qw) => (qw.q[e_idx] as i32, qw.exps[e_idx / quant::BLOCK] as i32),
                        None => (1, 0),
                    };
                    let xrow = &qx.q[c as usize * f..(c as usize + 1) * f];
                    let xexp = &qx.exps[c as usize * epr..(c as usize + 1) * epr];
                    for (j, (a, &qxv)) in acc.iter_mut().zip(xrow).enumerate() {
                        let prod = qwv * qxv as i32;
                        *a += prod as f32 * exp2(ewv + xexp[j / quant::BLOCK] as i32);
                    }
                }
                // Discretized scaling + one rounding into f16 per group,
                // through the overflow-instrumented choke point.
                let sc = scale_of(row).to_f32();
                let out: Vec<Half> = acc.iter().map(|&v| Half::from_f32(v * sc)).collect();
                warp.convert_ops(f as u64);
                warp.nonfinite_values(count_nonfinite(&out));
                if csr.degree(row) as usize <= group {
                    warp.store_contiguous(y_base + row as u64 * (f as u64 * 2), f / 2, 4);
                    writes.assign(row as usize * f, out);
                } else {
                    warp.store_contiguous(stage_base + gi as u64 * (f as u64 + 2), f / 2 + 1, 4);
                    staged.push((row, out));
                }
            }
            (writes, staged)
        },
    );

    let mut y = vec![Half::ZERO; n * f];
    let mut staged_all: Vec<(u32, Vec<Half>)> = Vec::new();
    let mut writes = Vec::new();
    for (wl, st) in cta_outs {
        writes.push(wl);
        staged_all.extend(st);
    }
    commit_all(writes, &mut y);

    let mut stats = main_stats;
    if !staged_all.is_empty() {
        let entries = staged_all.len();
        let (_, follow) = launch(
            dev,
            "spmm_i8_followup",
            LaunchParams { num_ctas: entries.div_ceil(8).max(1), warps_per_cta: 1 },
            |cta| {
                let lo = cta.id * 8;
                let hi = ((cta.id + 1) * 8).min(entries);
                let mut warp = cta.warp(0);
                for _ in lo..hi {
                    warp.load_contiguous(stage_base, f / 2 + 1, 4);
                    warp.half2_ops(((f / 2) as u64).div_ceil(32));
                    warp.store_contiguous(y_base, f / 2, 4);
                }
            },
        );
        let mut it = staged_all.into_iter();
        let (mut cur_row, mut cur_vals) = it.next().expect("non-empty");
        let mut wl: WriteList<Half> = WriteList::new();
        for (r, vals) in it {
            if r == cur_row {
                for (a, b) in cur_vals.iter_mut().zip(&vals) {
                    *a = hadd(*a, *b);
                }
            } else {
                wl.assign(cur_row as usize * f, std::mem::take(&mut cur_vals));
                cur_row = r;
                cur_vals = vals;
            }
        }
        wl.assign(cur_row as usize * f, cur_vals);
        wl.commit(&mut y);
        stats = stats.then(&follow);
    }
    (y, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn chain_csr(n: usize) -> Csr {
        // r -> r and r -> r+1 edges: every row degree ≤ 2.
        let mut edges = Vec::new();
        for r in 0..n as u32 {
            edges.push((r, r));
            if ((r + 1) as usize) < n {
                edges.push((r, r + 1));
            }
        }
        Csr::from_edges(n, n, &edges)
    }

    fn features(n: usize, f: usize) -> Vec<Half> {
        (0..n * f).map(|i| Half::from_f32(((i * 37) % 19) as f32 * 0.11 - 1.0)).collect()
    }

    #[test]
    fn i8_spmm_tracks_the_f64_reference() {
        let csr = chain_csr(24);
        let f = 8;
        let x = features(24, f);
        let (y, _) = spmm_i8(
            &DeviceConfig::tiny(),
            &csr,
            EdgeWeights::Ones,
            &x,
            f,
            None,
            Tiling::default(),
            7,
        );
        let coo = csr.to_coo();
        let wf: Vec<f64> = vec![1.0; coo.nnz()];
        let want = {
            let xf = reference::half_to_f64(&x);
            let mut y = vec![0f64; 24 * f];
            for (e, &we) in wf.iter().enumerate() {
                let (r, c) = coo.edge(e);
                for j in 0..f {
                    y[r as usize * f + j] += we * xf[c as usize * f + j];
                }
            }
            y
        };
        for (i, (&g, &w)) in y.iter().zip(&want).enumerate() {
            assert!(reference::close(g.to_f64(), w, 5e-2, 5e-2), "[{i}] got {g} want {w}");
        }
    }

    #[test]
    fn windows_are_bitwise_slices_of_the_full_run() {
        let csr = chain_csr(33);
        let f = 6;
        let x = features(33, f);
        let t = Tiling::default();
        let (full, _) = spmm_i8(&DeviceConfig::tiny(), &csr, EdgeWeights::Ones, &x, f, None, t, 3);
        let (lo, _) = spmm_i8_window(
            &DeviceConfig::tiny(),
            &csr,
            EdgeWeights::Ones,
            &x,
            f,
            None,
            t,
            3,
            (0, 17),
        );
        let (hi, _) = spmm_i8_window(
            &DeviceConfig::tiny(),
            &csr,
            EdgeWeights::Ones,
            &x,
            f,
            None,
            t,
            3,
            (17, 33),
        );
        for r in 0..33 {
            let src = if r < 17 { &lo } else { &hi };
            for j in 0..f {
                assert_eq!(full[r * f + j].to_bits(), src[r * f + j].to_bits(), "row {r} col {j}");
            }
        }
    }

    #[test]
    fn quantization_is_a_pure_function_of_the_seed() {
        let x = features(8, 4);
        let a = quantize_features(&x, 4, 11);
        let b = quantize_features(&x, 4, 11);
        assert_eq!(a, b);
        let c = quantize_features(&x, 4, 12);
        assert_ne!(a, c, "seed must steer the rounding coins");
    }
}
