//! **HalfGNN's edge-parallel SpMM** (§4, §5.2): the paper's flagship
//! kernel.
//!
//! Design, as implemented here:
//!
//! * **Edge tiles** — each warp owns `edges_per_warp` (≥64) consecutive
//!   edges of the row-sorted COO; a CTA owns `warps_per_cta` tiles
//!   (Fig. 4).
//! * **Two-phase data load** (§4.1) — phase 1 explicitly loads the tile's
//!   row IDs, column IDs and (for SpMMve) edge weights with coalesced
//!   half2-cast loads, mirrors each edge weight across a `half2`
//!   (§4.2), and caches everything in shared memory. Phase 2 loads the
//!   column's vertex features feature-parallel as `half2`, using sub-warps
//!   when `|F|/2 < 32`.
//! * **Discretized reduction scaling** (§5.2.2) — the running `half2`
//!   accumulator covers at most one warp-tile's worth of a row's neighbors;
//!   at every row boundary (and tile end) the batch is degree-scaled
//!   *before* joining the rest of the row, so the intermediate never
//!   exceeds `edges_per_warp · max|w·x|` — FP16-safe. `PostReduction`,
//!   `PreReduction` and `None` placements are provided for the paper's
//!   ablations.
//! * **Non-atomic writes** (§5.2.3) — rows fully inside a warp are written
//!   directly; warp-boundary partials are combined in shared memory within
//!   the CTA; rows crossing a CTA boundary produce staging-buffer entries
//!   that a follow-up kernel merges and writes. The `Atomic` strategy
//!   replaces all of that with (expensive) half atomics for Fig. 13.

use crate::common::{count_nonfinite, EdgeWeights, Reduce, ScalePlacement, Tiling, WriteStrategy};
use halfgnn_graph::Coo;
use halfgnn_half::intrinsics::{hadd, hmax, hmul};
use halfgnn_half::overflow;
use halfgnn_half::Half;
use halfgnn_sim::launch::{commit_all, launch, LaunchParams, WriteList};
use halfgnn_sim::memory::AddrSpace;
use halfgnn_sim::{AtomicKind, DeviceConfig, KernelStats};

/// Configuration of the HalfGNN SpMM (defaults = the paper's design).
#[derive(Clone, Copy, Debug)]
pub struct SpmmConfig {
    /// Degree-norm scaling placement (Discretized is HalfGNN's).
    pub scaling: ScalePlacement,
    /// Conflict-write resolution (Staged is HalfGNN's).
    pub writes: WriteStrategy,
    /// Edge-tile geometry.
    pub tiling: Tiling,
}

impl Default for SpmmConfig {
    fn default() -> SpmmConfig {
        SpmmConfig {
            scaling: ScalePlacement::Discretized,
            writes: WriteStrategy::Staged,
            tiling: Tiling::default(),
        }
    }
}

/// One staging-buffer record: a row's partial feature vector produced by a
/// CTA whose row extends beyond the CTA boundary.
struct StagedEntry {
    row: u32,
    vals: Vec<Half>,
}

/// Per-CTA result of the main kernel.
struct CtaOut {
    writes: WriteList<Half>,
    staged: Vec<StagedEntry>,
}

/// `Y ← A_w · X` in half precision with sum reduction.
///
/// * `row_scale` — per-row factor applied according to `cfg.scaling`
///   (e.g. `1/deg` for mean aggregation, `1/sqrt(deg)` for GCN-both).
/// * Output rows with no edges are zero.
///
/// Returns the half-precision output and the modeled kernel stats
/// (including the follow-up kernel when `Staged`).
pub fn spmm(
    dev: &DeviceConfig,
    coo: &Coo,
    w: EdgeWeights,
    x: &[Half],
    f: usize,
    row_scale: Option<&[Half]>,
    cfg: &SpmmConfig,
) -> (Vec<Half>, KernelStats) {
    spmm_window(dev, coo, w, x, f, row_scale, cfg, (0, coo.num_rows()))
}

/// [`spmm`] restricted to the global row window `[r0, r1)` — the per-shard
/// launch of the distributed path.
///
/// The kernel runs the *global* edge tiling clamped to the window's edge
/// range (shard boundaries are row boundaries, so the window is a
/// contiguous edge slice), which reproduces the exact per-row segment cuts
/// and CTA commit order of the single-device launch: window outputs are
/// bit-identical to the corresponding rows of the full run. Rows outside
/// the window are zero; the full window `(0, num_rows)` is [`spmm`]
/// itself, cost model included.
#[allow(clippy::too_many_arguments)]
pub fn spmm_window(
    dev: &DeviceConfig,
    coo: &Coo,
    w: EdgeWeights,
    x: &[Half],
    f: usize,
    row_scale: Option<&[Half]>,
    cfg: &SpmmConfig,
    row_window: (usize, usize),
) -> (Vec<Half>, KernelStats) {
    assert_eq!(x.len(), coo.num_cols() * f, "X shape mismatch");
    assert!(f.is_multiple_of(2), "feature length must be half2-padded (got {f})");
    if cfg.scaling != ScalePlacement::None {
        assert!(row_scale.is_some(), "scaling placement {:?} needs row_scale", cfg.scaling);
    }
    let (r0, r1) = row_window;
    assert!(r0 <= r1 && r1 <= coo.num_rows(), "bad row window {row_window:?}");
    let _site = overflow::site(if w.is_ones() { "halfgnn_spmmv" } else { "halfgnn_spmmve" });

    let nnz = coo.nnz();
    let num_rows = coo.num_rows();
    let tiling = cfg.tiling;
    let rows = coo.rows();
    let cols = coo.cols();

    // Row start/end offsets let a tile decide whether it holds a row fully
    // (the GPU kernel reads neighbours' cached row IDs for the same test).
    let row_offsets = row_offsets_of(coo);
    let (e0, e1) = (row_offsets[r0], row_offsets[r1]);
    let (cta_lo, cta_hi) = tiling.cta_range(e0, e1);
    let num_ctas = cta_hi - cta_lo;
    // Degrees drive the atomic-conflict estimate in the Atomic strategy.
    let edges_per_warp = tiling.edges_per_warp;

    // Synthetic address space for coalescing.
    let mut space = AddrSpace::new();
    let rows_base = space.alloc(nnz, 4);
    let cols_base = space.alloc(nnz, 4);
    let w_base = space.alloc(nnz, 2);
    let x_base = space.alloc(x.len(), 2);
    let y_base = space.alloc(num_rows * f, 2);
    let stage_base = space.alloc(2 * num_ctas * (f + 2), 2);

    let scale_of = |r: u32| -> Half {
        match row_scale {
            Some(s) => s[r as usize],
            None => Half::ONE,
        }
    };

    let (cta_outs, main_stats) = launch(
        dev,
        if w.is_ones() { "halfgnn_spmmv" } else { "halfgnn_spmmve" },
        LaunchParams { num_ctas, warps_per_cta: tiling.warps_per_cta },
        |cta| {
            let mut out = CtaOut { writes: WriteList::new(), staged: Vec::new() };
            // (warp, row, full_row_within_warp handled directly; the rest
            // collected here for CTA-level combining.)
            let mut boundary: Vec<StagedEntry> = Vec::new();

            for wi in 0..tiling.warps_per_cta {
                let (s, e) = tiling.warp_range_in(cta.id + cta_lo, wi, e0, e1);
                if s >= e {
                    continue;
                }
                let n = e - s;
                let mut warp = cta.warp(wi);

                // ---- Phase 1: explicit edge-parallel load of NZE + edge
                // features into shared memory (§4.1.1).
                warp.load_contiguous(rows_base + s as u64 * 4, n, 4);
                warp.load_contiguous(cols_base + s as u64 * 4, n, 4);
                if !w.is_ones() {
                    // Two halves per half2 word; mirroring afterwards.
                    warp.load_contiguous(w_base + s as u64 * 2, n.div_ceil(2), 4);
                    warp.half2_ops((n as u64).div_ceil(32)); // mirror extracts
                }
                warp.smem_accesses((n as u64 * 2).div_ceil(32) + 2);
                warp.barrier();

                // ---- Phase 2: feature-parallel half2 loads + FMA.
                warp.load_feature_rows(
                    (s..e).map(|ei| x_base + cols[ei] as u64 * (f as u64 * 2)),
                    f * 2,
                    4,
                );
                let half2_lanes = (f / 2) as u64;
                let fma_instrs = (n as u64 * half2_lanes).div_ceil(32);
                warp.half2_ops(fma_instrs);
                if !w.is_ones() {
                    warp.smem_accesses((n as u64).div_ceil(32));
                }
                if cfg.scaling == ScalePlacement::PreReduction {
                    // One extra scale multiply per dot product.
                    warp.half2_ops(fma_instrs);
                }

                // ---- Functional: run the tile, segment by row.
                let mut acc = vec![Half::ZERO; f];
                let mut seg_row = rows[s];
                let mut seg_start = s;
                let flush = |warp: &mut halfgnn_sim::WarpCtx,
                             boundary: &mut Vec<StagedEntry>,
                             out: &mut CtaOut,
                             acc: &mut Vec<Half>,
                             row: u32,
                             seg_s: usize,
                             seg_e: usize| {
                    let mut vals = std::mem::replace(acc, vec![Half::ZERO; f]);
                    match cfg.scaling {
                        ScalePlacement::Discretized => {
                            let sc = scale_of(row);
                            for v in vals.iter_mut() {
                                *v = hmul(*v, sc);
                            }
                            warp.half2_ops(half2_lanes.div_ceil(32));
                        }
                        ScalePlacement::PreReduction
                        | ScalePlacement::PostReduction
                        | ScalePlacement::None => {}
                    }
                    warp.nonfinite_values(count_nonfinite(&vals));
                    let full_row = seg_s == row_offsets[row as usize]
                        && seg_e == row_offsets[row as usize + 1];
                    match cfg.writes {
                        WriteStrategy::Staged => {
                            if full_row {
                                // Case 1/3a: never conflicts — direct write.
                                warp.store_contiguous(
                                    y_base + row as u64 * (f as u64 * 2),
                                    f / 2,
                                    4,
                                );
                                out.writes.assign(row as usize * f, vals);
                            } else {
                                boundary.push(StagedEntry { row, vals });
                            }
                        }
                        WriteStrategy::Atomic => {
                            if full_row {
                                warp.store_contiguous(
                                    y_base + row as u64 * (f as u64 * 2),
                                    f / 2,
                                    4,
                                );
                                out.writes.assign(row as usize * f, vals);
                            } else {
                                // Prior-work style: half2 atomic adds, which
                                // serialize with every other tile of the row.
                                let deg = (row_offsets[row as usize + 1]
                                    - row_offsets[row as usize])
                                    as f64;
                                let conflict = (deg / edges_per_warp as f64).max(0.0);
                                // One CAS-loop atomic per half2 word: the
                                // L2 atomic unit serializes per address.
                                warp.atomic_add(AtomicKind::F16, half2_lanes.max(1), conflict);
                                out.writes.add(row as usize * f, vals);
                            }
                        }
                    }
                };

                for ei in s..e {
                    let r = rows[ei];
                    if r != seg_row {
                        flush(&mut warp, &mut boundary, &mut out, &mut acc, seg_row, seg_start, ei);
                        seg_row = r;
                        seg_start = ei;
                    }
                    let c = cols[ei] as usize;
                    let wv = w.get(ei);
                    let xr = &x[c * f..(c + 1) * f];
                    let pre = cfg.scaling == ScalePlacement::PreReduction;
                    let sc = if pre { scale_of(r) } else { Half::ONE };
                    for (a, &xv) in acc.iter_mut().zip(xr) {
                        // half2 FMA semantics lanewise; Pre scales each
                        // product before it joins the accumulator.
                        let prod = hmul(wv, xv);
                        let prod = if pre { hmul(prod, sc) } else { prod };
                        *a = hadd(*a, prod);
                    }
                }
                flush(&mut warp, &mut boundary, &mut out, &mut acc, seg_row, seg_start, e);
            }

            // ---- Intra-CTA combine (Staged only): merge warp-boundary
            // partials of the same row via shared memory (§5.2.3 case 2).
            if cfg.writes == WriteStrategy::Staged && !boundary.is_empty() {
                let cta_id = cta.id;
                cta.barrier();
                let mut warp0 = cta.warp(0);
                let merge_instrs = ((f / 2) as u64).div_ceil(32).max(1);
                let mut merged: Vec<StagedEntry> = Vec::new();
                for entry in boundary {
                    match merged.last_mut() {
                        Some(last) if last.row == entry.row => {
                            for (a, b) in last.vals.iter_mut().zip(&entry.vals) {
                                *a = hadd(*a, *b);
                            }
                            warp0.smem_accesses(merge_instrs * 2);
                            warp0.half2_ops(merge_instrs);
                        }
                        _ => merged.push(entry),
                    }
                }
                let (cta_s, _) = tiling.warp_range_in(cta_id + cta_lo, 0, e0, e1);
                let cta_e =
                    tiling.warp_range_in(cta_id + cta_lo, tiling.warps_per_cta - 1, e0, e1).1;
                for m in merged {
                    let fully_inside = row_offsets[m.row as usize] >= cta_s
                        && row_offsets[m.row as usize + 1] <= cta_e;
                    if fully_inside {
                        // Complete within the CTA: non-conflicting write.
                        warp0.store_contiguous(y_base + m.row as u64 * (f as u64 * 2), f / 2, 4);
                        out.writes.assign(m.row as usize * f, m.vals);
                    } else {
                        // §5.2.3 case 3b: to the staging buffer.
                        warp0.store_contiguous(
                            stage_base + (cta_id * 2 * (f + 2)) as u64,
                            f / 2 + 1,
                            4,
                        );
                        out.staged.push(m);
                    }
                }
            }
            out
        },
    );

    // Commit the main kernel's non-conflicting writes, gather staging.
    let mut y = vec![Half::ZERO; num_rows * f];
    let mut staged_all: Vec<StagedEntry> = Vec::new();
    let mut writes = Vec::with_capacity(cta_outs.len());
    for c in cta_outs {
        writes.push(c.writes);
        staged_all.extend(c.staged);
    }
    // The §5.2.3 protocol guarantee: every direct/CTA-resolved write owns
    // its row exclusively. Validated in debug builds; an overlap here is a
    // kernel bug that a real GPU would express as a lost update.
    debug_assert!(
        halfgnn_sim::launch::find_assign_overlap(&writes).is_none(),
        "conflicting direct writes: {:?}",
        halfgnn_sim::launch::find_assign_overlap(&writes)
    );
    commit_all(writes, &mut y);

    let mut stats = main_stats;

    // ---- Follow-up kernel: merge staging-buffer runs and write them.
    if cfg.writes == WriteStrategy::Staged && !staged_all.is_empty() {
        let entries = staged_all.len();
        let (followup_writes, follow_stats) = launch(
            dev,
            "spmm_followup",
            LaunchParams { num_ctas: entries.div_ceil(8).max(1), warps_per_cta: 1 },
            |cta| {
                // Each CTA re-reads its slice of the staging buffer; one
                // representative warp charges the traffic.
                let lo = cta.id * 8;
                let hi = ((cta.id + 1) * 8).min(entries);
                let mut warp = cta.warp(0);
                for _ in lo..hi {
                    warp.load_contiguous(stage_base, f / 2 + 1, 4);
                    warp.half2_ops(((f / 2) as u64).div_ceil(32));
                    warp.store_contiguous(y_base, f / 2, 4);
                }
            },
        );
        let _ = followup_writes;
        // Functional merge: entries arrive in CTA order, so same-row runs
        // are adjacent; rows that cross CTA boundaries were never written
        // by the main kernel, so the merged value is assigned.
        let mut wl: WriteList<Half> = WriteList::new();
        let mut it = staged_all.into_iter();
        let mut cur = it.next().expect("non-empty");
        for entry in it {
            if entry.row == cur.row {
                for (a, b) in cur.vals.iter_mut().zip(&entry.vals) {
                    *a = hadd(*a, *b);
                }
            } else {
                wl.assign(std::mem::take(&mut cur.row) as usize * f, std::mem::take(&mut cur.vals));
                cur = entry;
            }
        }
        wl.assign(cur.row as usize * f, cur.vals);
        wl.commit(&mut y);
        stats = stats.then(&follow_stats);
    }

    // ---- Post-reduction scaling pass (baseline placement): a separate
    // elementwise kernel over Y, after overflow has already happened.
    if cfg.scaling == ScalePlacement::PostReduction {
        let scale = row_scale.expect("checked above");
        let win_elems = (r1 - r0) * f;
        let (_, post_stats) = launch(
            dev,
            "spmm_postscale",
            LaunchParams { num_ctas: win_elems.div_ceil(4096).max(1), warps_per_cta: 4 },
            |cta| {
                let lo = r0 * f + cta.id * 4096;
                let hi = (lo + 4096).min(r1 * f);
                if lo >= hi {
                    return;
                }
                let mut warp = cta.warp(0);
                let n = hi - lo;
                warp.load_contiguous(y_base + lo as u64 * 2, n / 2, 4);
                warp.half2_ops((n as u64 / 2).div_ceil(32));
                warp.store_contiguous(y_base + lo as u64 * 2, n / 2, 4);
            },
        );
        for r in r0..r1 {
            let sc = scale[r];
            for v in &mut y[r * f..(r + 1) * f] {
                *v = hmul(*v, sc);
            }
        }
        stats = stats.then(&post_stats);
    }

    (y, stats)
}

/// Per-row reduction of an edge-level tensor (`|E| → |V|`, F = 1): the
/// SpMM variants edge-softmax needs (`max` for `m_i`, `sum` for the
/// denominator). Edge-parallel with the same segment classification as
/// [`spmm`]; no overflow protection is needed for `Max`, and the softmax
/// `Sum` is bounded by the degree (each term ≤ 1).
pub fn edge_reduce(
    dev: &DeviceConfig,
    coo: &Coo,
    w: &[Half],
    op: Reduce,
) -> (Vec<Half>, KernelStats) {
    edge_reduce_window(dev, coo, w, op, (0, coo.num_rows()))
}

/// [`edge_reduce`] restricted to the global row window `[r0, r1)`, with the
/// same global-tiling alignment as [`spmm_window`]: window rows are
/// bit-identical to the full run; rows outside the window hold the
/// reduction identity and must not be read.
pub fn edge_reduce_window(
    dev: &DeviceConfig,
    coo: &Coo,
    w: &[Half],
    op: Reduce,
    row_window: (usize, usize),
) -> (Vec<Half>, KernelStats) {
    assert_eq!(w.len(), coo.nnz(), "edge tensor length mismatch");
    let (r0, r1) = row_window;
    assert!(r0 <= r1 && r1 <= coo.num_rows(), "bad row window {row_window:?}");
    let _site = overflow::site(match op {
        Reduce::Sum => "edge_reduce_sum",
        Reduce::Max => "edge_reduce_max",
    });
    let nnz = coo.nnz();
    let tiling = Tiling::default();
    let rows = coo.rows();
    let row_offsets = row_offsets_of(coo);
    let (e0, e1) = (row_offsets[r0], row_offsets[r1]);
    let (cta_lo, cta_hi) = tiling.cta_range(e0, e1);
    let num_ctas = cta_hi - cta_lo;

    let mut space = AddrSpace::new();
    let rows_base = space.alloc(nnz, 4);
    let w_base = space.alloc(nnz, 2);
    let y_base = space.alloc(coo.num_rows(), 2);

    let init = match op {
        Reduce::Sum => Half::ZERO,
        Reduce::Max => Half::NEG_INFINITY,
    };
    let combine = |a: Half, b: Half| match op {
        Reduce::Sum => hadd(a, b),
        Reduce::Max => hmax(a, b),
    };

    let (cta_outs, stats) = launch(
        dev,
        match op {
            Reduce::Sum => "edge_reduce_sum",
            Reduce::Max => "edge_reduce_max",
        },
        LaunchParams { num_ctas, warps_per_cta: tiling.warps_per_cta },
        |cta| {
            // Partials cross warp/CTA boundaries; resolve everything in the
            // sequential commit (a scalar per boundary row — negligible).
            let mut partials: Vec<(u32, Half)> = Vec::new();
            for wi in 0..tiling.warps_per_cta {
                let (s, e) = tiling.warp_range_in(cta.id + cta_lo, wi, e0, e1);
                if s >= e {
                    continue;
                }
                let n = e - s;
                let mut warp = cta.warp(wi);
                warp.load_contiguous(rows_base + s as u64 * 4, n, 4);
                warp.load_contiguous(w_base + s as u64 * 2, n.div_ceil(2), 4);
                warp.half2_ops((n as u64).div_ceil(64));
                let mut acc = init;
                let mut seg_row = rows[s];
                for ei in s..e {
                    let r = rows[ei];
                    if r != seg_row {
                        if !acc.is_finite() {
                            warp.nonfinite_values(1);
                        }
                        partials.push((seg_row, acc));
                        warp.store_contiguous(y_base + seg_row as u64 * 2, 1, 2);
                        acc = init;
                        seg_row = r;
                    }
                    acc = combine(acc, w[ei]);
                }
                if !acc.is_finite() {
                    warp.nonfinite_values(1);
                }
                partials.push((seg_row, acc));
                warp.store_contiguous(y_base + seg_row as u64 * 2, 1, 2);
            }
            partials
        },
    );

    let mut y = vec![init; coo.num_rows()];
    for partials in cta_outs {
        for (r, v) in partials {
            y[r as usize] = combine(y[r as usize], v);
        }
    }
    if op == Reduce::Max {
        // Empty rows (within the window): define as zero (matches the
        // reference).
        for r in r0..r1 {
            if row_offsets[r] == row_offsets[r + 1] {
                y[r] = Half::ZERO;
            }
        }
    }
    (y, stats)
}

/// **Vertex-parallel HalfGNN SpMM** (§5.4): the same discretized-scaling +
/// staged-write design on a workload-balanced vertex-parallel layout —
/// every warp owns one group of ≤ `group` neighbors of a single row (no
/// row split), with groups of 64 per the §4.1.1 recommendation so edge
/// loads stay fully coalesced.
///
/// HalfGNN itself recommends the edge-parallel [`spmm`] "for the best
/// performance"; this variant exists to demonstrate — and measure — the
/// generality claim (see the `vertex-vs-edge` experiment).
pub fn spmm_vertex_parallel(
    dev: &DeviceConfig,
    csr: &halfgnn_graph::Csr,
    w: EdgeWeights,
    x: &[Half],
    f: usize,
    row_scale: Option<&[Half]>,
    scaling: ScalePlacement,
) -> (Vec<Half>, KernelStats) {
    spmm_vertex_parallel_window(dev, csr, w, x, f, row_scale, scaling, (0, csr.num_rows()))
}

/// [`spmm_vertex_parallel`] restricted to the global row window `[r0, r1)`:
/// neighbor groups are generated only for window rows, in the same order
/// and with the same ≤64-edge geometry as the full launch, so window rows
/// are bit-identical to the full run (groups are per-row independent).
#[allow(clippy::too_many_arguments)]
pub fn spmm_vertex_parallel_window(
    dev: &DeviceConfig,
    csr: &halfgnn_graph::Csr,
    w: EdgeWeights,
    x: &[Half],
    f: usize,
    row_scale: Option<&[Half]>,
    scaling: ScalePlacement,
    row_window: (usize, usize),
) -> (Vec<Half>, KernelStats) {
    assert_eq!(x.len(), csr.num_cols() * f, "X shape mismatch");
    assert!(f.is_multiple_of(2), "feature length must be half2-padded");
    if scaling != ScalePlacement::None {
        assert!(row_scale.is_some(), "scaling placement {scaling:?} needs row_scale");
    }
    let (r0, r1) = row_window;
    assert!(r0 <= r1 && r1 <= csr.num_rows(), "bad row window {row_window:?}");
    let _site = overflow::site(if w.is_ones() { "halfgnn_vp_spmmv" } else { "halfgnn_vp_spmmve" });
    const GROUP: usize = 64;
    const WARPS_PER_CTA: usize = 4;
    let n = csr.num_rows();

    // Neighbor groups: (row, offset, len), never crossing a row.
    let mut groups: Vec<(u32, usize, usize)> = Vec::new();
    for r in r0..r1 {
        let (start, end) = (csr.offsets()[r], csr.offsets()[r + 1]);
        let mut off = start;
        while off < end {
            let len = (end - off).min(GROUP);
            groups.push((r as u32, off, len));
            off += len;
        }
    }
    let num_ctas = groups.len().div_ceil(WARPS_PER_CTA).max(1);

    let mut space = AddrSpace::new();
    let cols_base = space.alloc(csr.nnz(), 4);
    let w_base = space.alloc(csr.nnz(), 2);
    let x_base = space.alloc(x.len(), 2);
    let y_base = space.alloc(n * f, 2);
    let stage_base = space.alloc(groups.len() * (f + 2), 2);

    let scale_of = |r: u32| -> Half { row_scale.map_or(Half::ONE, |s| s[r as usize]) };

    let (cta_outs, main_stats) = launch(
        dev,
        if w.is_ones() { "halfgnn_vp_spmmv" } else { "halfgnn_vp_spmmve" },
        LaunchParams { num_ctas, warps_per_cta: WARPS_PER_CTA },
        |cta| {
            let cta_id = cta.id;
            let mut writes: WriteList<Half> = WriteList::new();
            let mut staged: Vec<(u32, Vec<Half>)> = Vec::new();
            for wi in 0..WARPS_PER_CTA {
                let gi = cta_id * WARPS_PER_CTA + wi;
                let Some(&(row, off, len)) = groups.get(gi) else { break };
                let mut warp = cta.warp(wi);
                warp.load_contiguous(cols_base + off as u64 * 4, len, 4);
                if !w.is_ones() {
                    // §5.4 alignment fix: start the half2-cast fetch one
                    // position earlier when the group offset is odd.
                    let aligned = off & !1;
                    let padded = (off - aligned + len).div_ceil(2) * 2;
                    warp.load_contiguous(w_base + aligned as u64 * 2, padded / 2, 4);
                    warp.half2_ops((len as u64).div_ceil(32)); // mirroring
                }
                let cols = &csr.cols()[off..off + len];
                warp.load_feature_rows(
                    cols.iter().map(|&c| x_base + c as u64 * (f as u64 * 2)),
                    f * 2,
                    4,
                );
                let half2_lanes = (f / 2) as u64;
                warp.half2_ops((len as u64 * half2_lanes).div_ceil(32));
                if scaling == ScalePlacement::PreReduction {
                    warp.half2_ops((len as u64 * half2_lanes).div_ceil(32));
                }

                let mut acc = vec![Half::ZERO; f];
                let pre = scaling == ScalePlacement::PreReduction;
                let sc = scale_of(row);
                for (k, &c) in cols.iter().enumerate() {
                    let wv = w.get(off + k);
                    for (a, &xv) in acc.iter_mut().zip(&x[c as usize * f..(c as usize + 1) * f]) {
                        let prod = hmul(wv, xv);
                        let prod = if pre { hmul(prod, sc) } else { prod };
                        *a = hadd(*a, prod);
                    }
                }
                // Discretized scaling: each ≤64-neighbor group is scaled
                // before it joins the rest of the row.
                if scaling == ScalePlacement::Discretized {
                    for v in acc.iter_mut() {
                        *v = hmul(*v, sc);
                    }
                    warp.half2_ops(half2_lanes.div_ceil(32));
                }
                warp.nonfinite_values(count_nonfinite(&acc));
                if csr.degree(row) as usize <= GROUP {
                    warp.store_contiguous(y_base + row as u64 * (f as u64 * 2), f / 2, 4);
                    writes.assign(row as usize * f, acc);
                } else {
                    warp.store_contiguous(stage_base + gi as u64 * (f as u64 + 2), f / 2 + 1, 4);
                    staged.push((row, acc));
                }
            }
            (writes, staged)
        },
    );

    let mut y = vec![Half::ZERO; n * f];
    let mut staged_all: Vec<(u32, Vec<Half>)> = Vec::new();
    let mut writes = Vec::new();
    for (wl, st) in cta_outs {
        writes.push(wl);
        staged_all.extend(st);
    }
    commit_all(writes, &mut y);

    let mut stats = main_stats;
    if !staged_all.is_empty() {
        let entries = staged_all.len();
        let (_, follow) = launch(
            dev,
            "halfgnn_vp_followup",
            LaunchParams { num_ctas: entries.div_ceil(8).max(1), warps_per_cta: 1 },
            |cta| {
                let lo = cta.id * 8;
                let hi = ((cta.id + 1) * 8).min(entries);
                let mut warp = cta.warp(0);
                for _ in lo..hi {
                    warp.load_contiguous(stage_base, f / 2 + 1, 4);
                    warp.half2_ops(((f / 2) as u64).div_ceil(32));
                    warp.store_contiguous(y_base, f / 2, 4);
                }
            },
        );
        let mut it = staged_all.into_iter();
        let (mut cur_row, mut cur_vals) = it.next().expect("non-empty");
        let mut wl: WriteList<Half> = WriteList::new();
        for (r, vals) in it {
            if r == cur_row {
                for (a, b) in cur_vals.iter_mut().zip(&vals) {
                    *a = hadd(*a, *b);
                }
            } else {
                wl.assign(cur_row as usize * f, std::mem::take(&mut cur_vals));
                cur_row = r;
                cur_vals = vals;
            }
        }
        wl.assign(cur_row as usize * f, cur_vals);
        wl.commit(&mut y);
        stats = stats.then(&follow);
    }

    // Post-reduction scaling pass (ablation placement).
    if scaling == ScalePlacement::PostReduction {
        let scale = row_scale.expect("checked above");
        for r in r0..r1 {
            let sc = scale[r];
            for v in &mut y[r * f..(r + 1) * f] {
                *v = hmul(*v, sc);
            }
        }
    }
    (y, stats)
}

/// Row start offsets of a canonical COO (CSR-style, `num_rows + 1` long).
pub fn row_offsets_of(coo: &Coo) -> Vec<usize> {
    let mut off = vec![0usize; coo.num_rows() + 1];
    for &r in coo.rows() {
        off[r as usize + 1] += 1;
    }
    for i in 1..off.len() {
        off[i] += off[i - 1];
    }
    off
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{assert_close_half, half_to_f64, spmm_f64};
    use halfgnn_graph::gen;
    use halfgnn_graph::Csr;
    use halfgnn_half::slice::f32_slice_to_half;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dev() -> DeviceConfig {
        DeviceConfig::a100_like()
    }

    fn random_graph(n: usize, m: usize, seed: u64) -> Coo {
        let edges = gen::erdos_renyi(n, m, seed);
        Csr::from_edges(n, n, &edges).symmetrized_with_self_loops().to_coo()
    }

    fn random_halves(n: usize, scale: f32, seed: u64) -> Vec<Half> {
        let mut rng = StdRng::seed_from_u64(seed);
        f32_slice_to_half(&(0..n).map(|_| rng.gen_range(-scale..scale)).collect::<Vec<_>>())
    }

    #[test]
    fn fast_executor_matches_sim_bitwise() {
        // Same kernel source, two backends: the fast path (real threads,
        // dead counters) must reproduce the cost-model path bit-for-bit
        // for both SpMMv and SpMMve.
        let g = random_graph(200, 900, 21);
        let f = 32;
        let x = random_halves(g.num_cols() * f, 1.0, 22);
        let w = random_halves(g.nnz(), 1.0, 23);
        let cfg = SpmmConfig { scaling: ScalePlacement::None, ..Default::default() };
        let fast = dev().fast();
        let bits = |v: &[Half]| v.iter().map(|h| h.to_bits()).collect::<Vec<u16>>();
        for weights in [EdgeWeights::Ones, EdgeWeights::Values(&w)] {
            let (sim_y, sim_s) = spmm(&dev(), &g, weights, &x, f, None, &cfg);
            let (fast_y, fast_s) = spmm(&fast, &g, weights, &x, f, None, &cfg);
            assert_eq!(bits(&sim_y), bits(&fast_y));
            assert!(sim_s.cycles > 0.0);
            assert_eq!(fast_s.cycles, 0.0, "fast stats are wall-clock only");
        }
    }

    #[test]
    fn spmmv_matches_reference() {
        let g = random_graph(200, 800, 1);
        let f = 32;
        let x = random_halves(g.num_cols() * f, 1.0, 2);
        let (y, stats) = spmm(
            &dev(),
            &g,
            EdgeWeights::Ones,
            &x,
            f,
            None,
            &SpmmConfig { scaling: ScalePlacement::None, ..Default::default() },
        );
        let want = spmm_f64(&g, EdgeWeights::Ones, &half_to_f64(&x), f, Reduce::Sum, None);
        assert_close_half(&y, &want, 0.02, 0.05, "spmmv");
        assert!(stats.cycles > 0.0);
        assert_eq!(stats.totals.atomics_f16, 0, "staged design must not use atomics");
    }

    #[test]
    fn spmmve_matches_reference() {
        let g = random_graph(150, 600, 3);
        let f = 64;
        let x = random_halves(g.num_cols() * f, 1.0, 4);
        let w = random_halves(g.nnz(), 1.0, 5);
        let (y, _) = spmm(
            &dev(),
            &g,
            EdgeWeights::Values(&w),
            &x,
            f,
            None,
            &SpmmConfig { scaling: ScalePlacement::None, ..Default::default() },
        );
        let want = spmm_f64(&g, EdgeWeights::Values(&w), &half_to_f64(&x), f, Reduce::Sum, None);
        assert_close_half(&y, &want, 0.03, 0.08, "spmmve");
    }

    #[test]
    fn discretized_mean_matches_reference() {
        let g = random_graph(100, 500, 7);
        let f = 16;
        let x = random_halves(g.num_cols() * f, 2.0, 8);
        let degrees = Csr::from_coo(&g).degrees();
        let scale = crate::common::row_scales_mean(&degrees);
        let scale_f64: Vec<f64> = scale.iter().map(|s| s.to_f64()).collect();
        let (y, _) =
            spmm(&dev(), &g, EdgeWeights::Ones, &x, f, Some(&scale), &SpmmConfig::default());
        let want =
            spmm_f64(&g, EdgeWeights::Ones, &half_to_f64(&x), f, Reduce::Sum, Some(&scale_f64));
        assert_close_half(&y, &want, 0.03, 0.05, "discretized mean");
    }

    #[test]
    fn atomic_strategy_matches_reference_but_uses_atomics() {
        let g = random_graph(120, 700, 9);
        let f = 32;
        let x = random_halves(g.num_cols() * f, 1.0, 10);
        let cfg = SpmmConfig {
            scaling: ScalePlacement::None,
            writes: WriteStrategy::Atomic,
            ..Default::default()
        };
        let (y, stats) = spmm(&dev(), &g, EdgeWeights::Ones, &x, f, None, &cfg);
        let want = spmm_f64(&g, EdgeWeights::Ones, &half_to_f64(&x), f, Reduce::Sum, None);
        assert_close_half(&y, &want, 0.03, 0.08, "atomic spmm");
        assert!(stats.totals.atomics_f16 > 0);
    }

    #[test]
    fn non_atomic_is_faster_than_atomic() {
        // Fig. 13: removing atomic writes speeds up SpMM. Needs a grid
        // larger than one scheduling wave, otherwise the follow-up kernel's
        // launch overhead dominates — as on real GPUs, where the win shows
        // on the large graphs of Table 1.
        let small_dev = DeviceConfig::tiny();
        let edges = gen::preferential_attachment(2_000, 10, 11);
        let g = Csr::from_edges(2_000, 2_000, &edges).symmetrized_with_self_loops().to_coo();
        let f = 64;
        let x = random_halves(g.num_cols() * f, 1.0, 12);
        let base = SpmmConfig { scaling: ScalePlacement::None, ..Default::default() };
        let (_, staged) = spmm(&small_dev, &g, EdgeWeights::Ones, &x, f, None, &base);
        let (_, atomic) = spmm(
            &small_dev,
            &g,
            EdgeWeights::Ones,
            &x,
            f,
            None,
            &SpmmConfig { writes: WriteStrategy::Atomic, ..base },
        );
        assert!(
            atomic.cycles > staged.cycles,
            "atomic {} <= staged {}",
            atomic.cycles,
            staged.cycles
        );
    }

    #[test]
    fn overflow_post_vs_discretized() {
        // A hub row whose FP16 sum overflows: post-reduction scaling yields
        // INF (then the scale keeps it INF); discretized scaling stays
        // finite. This is the §3.1.3 / §5.2.2 story in one test.
        let hub_degree = 400u32;
        let edges: Vec<(u32, u32)> = (1..=hub_degree).map(|c| (0u32, c)).collect();
        let g = Coo::from_edges(hub_degree as usize + 1, hub_degree as usize + 1, &edges);
        let f = 2;
        // Every neighbor contributes ~200: the exact sum is ~80000 > 65504.
        let x = vec![Half::from_f32(200.0); (hub_degree as usize + 1) * f];
        let degrees = Csr::from_coo(&g).degrees();
        let scale = crate::common::row_scales_mean(&degrees);

        let (post, _) = spmm(
            &dev(),
            &g,
            EdgeWeights::Ones,
            &x,
            f,
            Some(&scale),
            &SpmmConfig { scaling: ScalePlacement::PostReduction, ..Default::default() },
        );
        assert!(post[0].is_infinite(), "post-reduction scaling must overflow, got {:?}", post[0]);

        let (disc, _) = spmm(
            &dev(),
            &g,
            EdgeWeights::Ones,
            &x,
            f,
            Some(&scale),
            &SpmmConfig { scaling: ScalePlacement::Discretized, ..Default::default() },
        );
        assert!(disc[0].is_finite(), "discretized must stay finite");
        assert!((disc[0].to_f32() - 200.0).abs() < 4.0, "mean should be ~200, got {}", disc[0]);

        let (pre, _) = spmm(
            &dev(),
            &g,
            EdgeWeights::Ones,
            &x,
            f,
            Some(&scale),
            &SpmmConfig { scaling: ScalePlacement::PreReduction, ..Default::default() },
        );
        assert!(pre[0].is_finite(), "pre-reduction must stay finite");
    }

    #[test]
    fn pre_reduction_underflows_where_discretized_does_not() {
        // §5.2.2: pre-reduction divides every dot product by the degree,
        // so tiny values vanish before they can accumulate.
        let deg = 2000u32;
        let edges: Vec<(u32, u32)> = (1..=deg).map(|c| (0u32, c)).collect();
        let g = Coo::from_edges(deg as usize + 1, deg as usize + 1, &edges);
        let f = 2;
        // Each scaled dot product is 2e-5 / 2000 = 1e-8, far below the
        // smallest subnormal (6e-8): pre-reduction flushes every term to
        // zero. Discretized scales whole 64-edge batches (1.28e-3 / 2000 =
        // 6.4e-7), which survive.
        let x = vec![Half::from_f32(2e-5); (deg as usize + 1) * f];
        let degrees = Csr::from_coo(&g).degrees();
        let scale = crate::common::row_scales_mean(&degrees);
        let (pre, _) = spmm(
            &dev(),
            &g,
            EdgeWeights::Ones,
            &x,
            f,
            Some(&scale),
            &SpmmConfig { scaling: ScalePlacement::PreReduction, ..Default::default() },
        );
        let (disc, _) = spmm(
            &dev(),
            &g,
            EdgeWeights::Ones,
            &x,
            f,
            Some(&scale),
            &SpmmConfig { scaling: ScalePlacement::Discretized, ..Default::default() },
        );
        let want = 2e-5f32;
        assert_eq!(pre[0].to_f32(), 0.0, "pre-reduction must underflow to zero");
        let disc_err = (disc[0].to_f32() - want).abs();
        assert!(disc_err < 0.5 * want, "discretized {} should approximate {want}", disc[0]);
    }

    #[test]
    fn odd_feature_length_rejected() {
        let g = random_graph(10, 30, 1);
        let x = random_halves(g.num_cols() * 3, 1.0, 2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            spmm(
                &dev(),
                &g,
                EdgeWeights::Ones,
                &x,
                3,
                None,
                &SpmmConfig { scaling: ScalePlacement::None, ..Default::default() },
            )
        }));
        assert!(r.is_err(), "odd F must require feature padding");
    }

    #[test]
    fn empty_rows_are_zero() {
        let g = Coo::from_edges(5, 5, &[(0, 1)]);
        let x = random_halves(5 * 4, 1.0, 3);
        let (y, _) = spmm(
            &dev(),
            &g,
            EdgeWeights::Ones,
            &x,
            4,
            None,
            &SpmmConfig { scaling: ScalePlacement::None, ..Default::default() },
        );
        assert!(y[4..].iter().all(|h| h.is_zero()));
    }

    #[test]
    fn edge_reduce_max_and_sum() {
        let g = random_graph(80, 400, 20);
        let w = random_halves(g.nnz(), 4.0, 21);
        let (mx, _) = edge_reduce(&dev(), &g, &w, Reduce::Max);
        let (sm, _) = edge_reduce(&dev(), &g, &w, Reduce::Sum);
        let off = row_offsets_of(&g);
        for r in 0..g.num_rows() {
            let es = &w[off[r]..off[r + 1]];
            if es.is_empty() {
                assert!(mx[r].is_zero());
                continue;
            }
            let want_max = es.iter().fold(f32::NEG_INFINITY, |a, h| a.max(h.to_f32()));
            assert_eq!(mx[r].to_f32(), want_max, "row {r} max");
            let want_sum: f32 = es.iter().map(|h| h.to_f32()).sum();
            assert!(
                (sm[r].to_f32() - want_sum).abs() <= 0.02 * want_sum.abs() + 0.1,
                "row {r} sum"
            );
        }
    }

    #[test]
    fn vertex_parallel_matches_reference_and_edge_parallel() {
        let g = random_graph(300, 2_000, 21);
        let csr = Csr::from_coo(&g);
        let f = 32;
        let x = random_halves(g.num_cols() * f, 0.5, 22);
        let w = random_halves(g.nnz(), 1.0, 23);
        let (yv, sv) = spmm_vertex_parallel(
            &dev(),
            &csr,
            EdgeWeights::Values(&w),
            &x,
            f,
            None,
            ScalePlacement::None,
        );
        let want = spmm_f64(&g, EdgeWeights::Values(&w), &half_to_f64(&x), f, Reduce::Sum, None);
        assert_close_half(&yv, &want, 0.05, 0.1, "vertex-parallel spmm");
        assert_eq!(sv.totals.atomics_f16 + sv.totals.atomics_f32, 0, "non-atomic design");
        // And it agrees with the edge-parallel kernel to FP16 rounding.
        let (ye, _) = spmm(
            &dev(),
            &g,
            EdgeWeights::Values(&w),
            &x,
            f,
            None,
            &SpmmConfig { scaling: ScalePlacement::None, ..Default::default() },
        );
        for (a, b) in yv.iter().zip(&ye) {
            assert!((a.to_f32() - b.to_f32()).abs() <= 0.05 + 0.03 * b.to_f32().abs());
        }
    }

    #[test]
    fn vertex_parallel_discretized_protects_overflow() {
        // The same §5.2.2 protection as the edge-parallel kernel.
        let deg = 400u32;
        let edges: Vec<(u32, u32)> = (1..=deg).map(|c| (0u32, c)).collect();
        let csr = Csr::from_edges(deg as usize + 1, deg as usize + 1, &edges);
        let f = 2;
        let x = vec![Half::from_f32(200.0); (deg as usize + 1) * f];
        let scale = crate::common::row_scales_mean(&csr.degrees());
        let (post, _) = spmm_vertex_parallel(
            &dev(),
            &csr,
            EdgeWeights::Ones,
            &x,
            f,
            Some(&scale),
            ScalePlacement::PostReduction,
        );
        assert!(post[0].is_infinite(), "post-reduction must overflow");
        let (disc, _) = spmm_vertex_parallel(
            &dev(),
            &csr,
            EdgeWeights::Ones,
            &x,
            f,
            Some(&scale),
            ScalePlacement::Discretized,
        );
        assert!(disc[0].is_finite());
        assert!((disc[0].to_f32() - 200.0).abs() < 4.0);
    }

    #[test]
    fn edge_parallel_beats_vertex_parallel_on_skewed_graphs() {
        // §3.2 / §5.4: "HalfGNN recommends an edge-parallel solution for
        // the best performance" — visible on power-law graphs where the
        // vertex-parallel layout leaves hub groups on single warps.
        let edges = gen::preferential_attachment(3_000, 10, 31);
        let csr = Csr::from_edges(3_000, 3_000, &edges).symmetrized_with_self_loops();
        let g = csr.to_coo();
        let f = 64;
        let x = random_halves(g.num_cols() * f, 0.5, 32);
        let (_, se) = spmm(
            &dev(),
            &g,
            EdgeWeights::Ones,
            &x,
            f,
            None,
            &SpmmConfig { scaling: ScalePlacement::None, ..Default::default() },
        );
        let (_, sv) = spmm_vertex_parallel(
            &dev(),
            &csr,
            EdgeWeights::Ones,
            &x,
            f,
            None,
            ScalePlacement::None,
        );
        assert!(
            se.cycles <= sv.cycles * 1.05,
            "edge-parallel {} should not lose to vertex-parallel {}",
            se.cycles,
            sv.cycles
        );
    }

    #[test]
    fn windowed_launches_are_bitwise_slices_of_the_full_run() {
        // The distributed path's foundation: running the global tiling
        // clamped to a row window reproduces the full run's window rows
        // bit-for-bit, for every kernel that gets a `_window` variant.
        let g = random_graph(180, 900, 41);
        let csr = Csr::from_coo(&g);
        let f = 8;
        let x = random_halves(g.num_cols() * f, 1.0, 42);
        let wvals = random_halves(g.nnz(), 1.0, 43);
        let degrees = csr.degrees();
        let scale = crate::common::row_scales_mean(&degrees);
        let n = g.num_rows();
        let cuts = [0, 61, 62, n / 2, n - 1, n];
        let bits = |v: &[Half]| v.iter().map(|h| h.to_bits()).collect::<Vec<u16>>();

        for cfg in [
            SpmmConfig::default(),
            SpmmConfig { scaling: ScalePlacement::PostReduction, ..Default::default() },
            SpmmConfig { writes: WriteStrategy::Atomic, ..Default::default() },
        ] {
            let (full, _) =
                spmm(&dev(), &g, EdgeWeights::Values(&wvals), &x, f, Some(&scale), &cfg);
            let mut pasted = vec![Half::ZERO; n * f];
            for win in cuts.windows(2) {
                let (r0, r1) = (win[0], win[1]);
                let (part, _) = spmm_window(
                    &dev(),
                    &g,
                    EdgeWeights::Values(&wvals),
                    &x,
                    f,
                    Some(&scale),
                    &cfg,
                    (r0, r1),
                );
                assert!(part[..r0 * f].iter().chain(&part[r1 * f..]).all(|h| h.is_zero()));
                pasted[r0 * f..r1 * f].copy_from_slice(&part[r0 * f..r1 * f]);
            }
            assert_eq!(bits(&full), bits(&pasted), "spmm window mismatch ({cfg:?})");
        }

        for op in [Reduce::Sum, Reduce::Max] {
            let (full, _) = edge_reduce(&dev(), &g, &wvals, op);
            let mut pasted = vec![Half::ZERO; n];
            for win in cuts.windows(2) {
                let (part, _) = edge_reduce_window(&dev(), &g, &wvals, op, (win[0], win[1]));
                pasted[win[0]..win[1]].copy_from_slice(&part[win[0]..win[1]]);
            }
            assert_eq!(bits(&full), bits(&pasted), "edge_reduce window mismatch ({op:?})");
        }

        let (full, _) = spmm_vertex_parallel(
            &dev(),
            &csr,
            EdgeWeights::Ones,
            &x,
            f,
            Some(&scale),
            ScalePlacement::Discretized,
        );
        let mut pasted = vec![Half::ZERO; n * f];
        for win in cuts.windows(2) {
            let (part, _) = spmm_vertex_parallel_window(
                &dev(),
                &csr,
                EdgeWeights::Ones,
                &x,
                f,
                Some(&scale),
                ScalePlacement::Discretized,
                (win[0], win[1]),
            );
            pasted[win[0] * f..win[1] * f].copy_from_slice(&part[win[0] * f..win[1] * f]);
        }
        assert_eq!(bits(&full), bits(&pasted), "vertex-parallel window mismatch");
    }

    #[test]
    fn hub_rows_span_many_ctas_and_still_match() {
        // A 3000-degree hub spans ~12 CTAs: exercises the staging buffer +
        // follow-up merge across CTA boundaries.
        let mut edges: Vec<(u32, u32)> = (1..=3000u32).map(|c| (0, c)).collect();
        edges.extend((1..=2999u32).map(|v| (v, v + 1)));
        let g = Coo::from_edges(3001, 3001, &edges);
        let f = 8;
        let x = random_halves(3001 * f, 0.25, 30);
        let (y, _) = spmm(
            &dev(),
            &g,
            EdgeWeights::Ones,
            &x,
            f,
            None,
            &SpmmConfig { scaling: ScalePlacement::None, ..Default::default() },
        );
        let want = spmm_f64(&g, EdgeWeights::Ones, &half_to_f64(&x), f, Reduce::Sum, None);
        assert_close_half(&y, &want, 0.05, 0.3, "hub spmm");
    }
}
