//! cuSPARSE-style SpMM, float and half — what DGL invokes.
//!
//! The float kernel is a competent workload-balanced design: edge tiles,
//! feature-parallel `f32` loads (128 B per warp instruction), and `f32`
//! atomics for row segments that cross tile boundaries.
//!
//! The half kernel keeps the identical structure but (a) loads scalar
//! halves — only 64 B per warp instruction, (b) computes through the
//! implicit float-promotion path of Fig. 3a (h2f → float op → f2h on
//! store), and (c) resolves conflicts with 16-bit atomics, which CAS-loop
//! on the containing word. Accumulation happens in half precision at the
//! output, so hub rows overflow to INF — the §3.1.3 pathology. Both
//! effects are what Fig. 1a measures.

use crate::common::{EdgeWeights, Tiling};
use crate::halfgnn_spmm::row_offsets_of;
use halfgnn_graph::Coo;
use halfgnn_half::Half;
use halfgnn_sim::launch::{commit_all, launch, LaunchParams, WriteList};
use halfgnn_sim::memory::AddrSpace;
use halfgnn_sim::{AtomicKind, DeviceConfig, KernelStats};

/// Float edge weights for the float kernel.
#[derive(Clone, Copy, Debug)]
pub enum EdgeWeightsF32<'a> {
    /// Implicit ones (SpMMv).
    Ones,
    /// Explicit weights (SpMMve).
    Values(&'a [f32]),
}

impl<'a> EdgeWeightsF32<'a> {
    /// Weight of edge `e`.
    pub fn get(&self, e: usize) -> f32 {
        match self {
            EdgeWeightsF32::Ones => 1.0,
            EdgeWeightsF32::Values(w) => w[e],
        }
    }

    /// True for the SpMMv case.
    pub fn is_ones(&self) -> bool {
        matches!(self, EdgeWeightsF32::Ones)
    }
}

/// cuSPARSE-float SpMM: `Y ← A_w X` in `f32` with sum reduction and
/// optional post-reduction row scaling (how DGL applies degree norm).
pub fn spmm_float(
    dev: &DeviceConfig,
    coo: &Coo,
    w: EdgeWeightsF32,
    x: &[f32],
    f: usize,
    row_scale: Option<&[f32]>,
) -> (Vec<f32>, KernelStats) {
    spmm_float_window(dev, coo, w, x, f, row_scale, (0, coo.num_rows()))
}

/// [`spmm_float`] restricted to the global row window `[r0, r1)`: the
/// per-shard launch of the distributed float path. Global edge tiling
/// clamped to the window keeps per-row segment cuts — and therefore f32
/// summation order — identical to the full run, so window rows are
/// bit-identical. Rows outside the window are zero.
pub fn spmm_float_window(
    dev: &DeviceConfig,
    coo: &Coo,
    w: EdgeWeightsF32,
    x: &[f32],
    f: usize,
    row_scale: Option<&[f32]>,
    row_window: (usize, usize),
) -> (Vec<f32>, KernelStats) {
    assert_eq!(x.len(), coo.num_cols() * f, "X shape mismatch");
    let (r0, r1) = row_window;
    assert!(r0 <= r1 && r1 <= coo.num_rows(), "bad row window {row_window:?}");
    let nnz = coo.nnz();
    let num_rows = coo.num_rows();
    let tiling = Tiling::default();
    let rows = coo.rows();
    let cols = coo.cols();
    let row_offsets = row_offsets_of(coo);
    let (e0, e1) = (row_offsets[r0], row_offsets[r1]);
    let (cta_lo, cta_hi) = tiling.cta_range(e0, e1);
    let num_ctas = cta_hi - cta_lo;

    let mut space = AddrSpace::new();
    let rows_base = space.alloc(nnz, 4);
    let cols_base = space.alloc(nnz, 4);
    let w_base = space.alloc(nnz, 4);
    let x_base = space.alloc(x.len(), 4);
    let y_base = space.alloc(num_rows * f, 4);

    let (cta_outs, stats) = launch(
        dev,
        if w.is_ones() { "cusparse_f32_spmmv" } else { "cusparse_f32_spmmve" },
        LaunchParams { num_ctas, warps_per_cta: tiling.warps_per_cta },
        |cta| {
            let mut writes: WriteList<f32> = WriteList::new();
            for wi in 0..tiling.warps_per_cta {
                let (s, e) = tiling.warp_range_in(cta.id + cta_lo, wi, e0, e1);
                if s >= e {
                    continue;
                }
                let n = e - s;
                let mut warp = cta.warp(wi);
                warp.load_contiguous(rows_base + s as u64 * 4, n, 4);
                warp.load_contiguous(cols_base + s as u64 * 4, n, 4);
                if !w.is_ones() {
                    warp.load_contiguous(w_base + s as u64 * 4, n, 4);
                }
                // Feature-parallel f32 loads: 128 B per instruction.
                warp.load_feature_rows(
                    (s..e).map(|ei| x_base + cols[ei] as u64 * (f as u64 * 4)),
                    f * 4,
                    4,
                );
                let fma_instrs = (n as u64 * f as u64).div_ceil(32);
                warp.float_ops(fma_instrs);

                let mut acc = vec![0f32; f];
                let mut seg_row = rows[s];
                let mut seg_start = s;
                for ei in s..=e {
                    let boundary = ei == e || rows[ei] != seg_row;
                    if boundary {
                        let full = seg_start == row_offsets[seg_row as usize]
                            && ei == row_offsets[seg_row as usize + 1];
                        let vals = std::mem::replace(&mut acc, vec![0f32; f]);
                        if full {
                            warp.store_contiguous(y_base + seg_row as u64 * (f as u64 * 4), f, 4);
                            writes.assign(seg_row as usize * f, vals);
                        } else {
                            let deg = (row_offsets[seg_row as usize + 1]
                                - row_offsets[seg_row as usize])
                                as f64;
                            let conflict = (deg / tiling.edges_per_warp as f64).max(0.0);
                            warp.atomic_add(AtomicKind::F32, f as u64, conflict);
                            writes.add(seg_row as usize * f, vals);
                        }
                        if ei == e {
                            break;
                        }
                        seg_row = rows[ei];
                        seg_start = ei;
                    }
                    let c = cols[ei] as usize;
                    let wv = w.get(ei);
                    for (a, &xv) in acc.iter_mut().zip(&x[c * f..(c + 1) * f]) {
                        *a += wv * xv;
                    }
                }
            }
            writes
        },
    );

    let mut y = vec![0f32; num_rows * f];
    commit_all(cta_outs, &mut y);
    if let Some(scale) = row_scale {
        for r in r0..r1 {
            for v in &mut y[r * f..(r + 1) * f] {
                *v *= scale[r];
            }
        }
    }
    (y, stats)
}

/// cuSPARSE-half SpMM: identical structure, scalar half loads, Fig. 3a
/// arithmetic, 16-bit atomics, half-precision accumulation at the output.
/// Post-reduction row scaling (too late to stop overflow).
pub fn spmm_half(
    dev: &DeviceConfig,
    coo: &Coo,
    w: EdgeWeights,
    x: &[Half],
    f: usize,
    row_scale: Option<&[Half]>,
) -> (Vec<Half>, KernelStats) {
    spmm_half_window(dev, coo, w, x, f, row_scale, (0, coo.num_rows()))
}

/// [`spmm_half`] restricted to the global row window `[r0, r1)`; see
/// [`spmm_float_window`] for the tiling-alignment contract.
pub fn spmm_half_window(
    dev: &DeviceConfig,
    coo: &Coo,
    w: EdgeWeights,
    x: &[Half],
    f: usize,
    row_scale: Option<&[Half]>,
    row_window: (usize, usize),
) -> (Vec<Half>, KernelStats) {
    assert_eq!(x.len(), coo.num_cols() * f, "X shape mismatch");
    let (r0, r1) = row_window;
    assert!(r0 <= r1 && r1 <= coo.num_rows(), "bad row window {row_window:?}");
    let _site = halfgnn_half::overflow::site(if w.is_ones() {
        "cusparse_f16_spmmv"
    } else {
        "cusparse_f16_spmmve"
    });
    let nnz = coo.nnz();
    let num_rows = coo.num_rows();
    let tiling = Tiling::default();
    let rows = coo.rows();
    let cols = coo.cols();
    let row_offsets = row_offsets_of(coo);
    let (e0, e1) = (row_offsets[r0], row_offsets[r1]);
    let (cta_lo, cta_hi) = tiling.cta_range(e0, e1);
    let num_ctas = cta_hi - cta_lo;

    let mut space = AddrSpace::new();
    let rows_base = space.alloc(nnz, 4);
    let cols_base = space.alloc(nnz, 4);
    let w_base = space.alloc(nnz, 2);
    let x_base = space.alloc(x.len(), 2);
    let y_base = space.alloc(num_rows * f, 2);

    let (cta_outs, stats) = launch(
        dev,
        if w.is_ones() { "cusparse_f16_spmmv" } else { "cusparse_f16_spmmve" },
        LaunchParams { num_ctas, warps_per_cta: tiling.warps_per_cta },
        |cta| {
            let mut writes: WriteList<Half> = WriteList::new();
            for wi in 0..tiling.warps_per_cta {
                let (s, e) = tiling.warp_range_in(cta.id + cta_lo, wi, e0, e1);
                if s >= e {
                    continue;
                }
                let n = e - s;
                let mut warp = cta.warp(wi);
                warp.load_contiguous(rows_base + s as u64 * 4, n, 4);
                warp.load_contiguous(cols_base + s as u64 * 4, n, 4);
                if !w.is_ones() {
                    // Scalar half loads for the weights too.
                    warp.load_contiguous(w_base + s as u64 * 2, n, 2);
                }
                // Scalar half feature loads: each instruction moves 64 B.
                warp.load_feature_rows(
                    (s..e).map(|ei| x_base + cols[ei] as u64 * (f as u64 * 2)),
                    f * 2,
                    2,
                );
                // Fig. 3a: every FMA is h2f + h2f + float-FMA + f2h.
                let fma_instrs = (n as u64 * f as u64).div_ceil(32);
                warp.float_ops(fma_instrs);
                warp.convert_ops(3 * fma_instrs);

                let mut acc = vec![Half::ZERO; f];
                let mut seg_row = rows[s];
                let mut seg_start = s;
                for ei in s..=e {
                    let boundary = ei == e || rows[ei] != seg_row;
                    if boundary {
                        let full = seg_start == row_offsets[seg_row as usize]
                            && ei == row_offsets[seg_row as usize + 1];
                        let vals = std::mem::replace(&mut acc, vec![Half::ZERO; f]);
                        warp.nonfinite_values(crate::common::count_nonfinite(&vals));
                        if full {
                            warp.store_contiguous(y_base + seg_row as u64 * (f as u64 * 2), f, 2);
                            writes.assign(seg_row as usize * f, vals);
                        } else {
                            let deg = (row_offsets[seg_row as usize + 1]
                                - row_offsets[seg_row as usize])
                                as f64;
                            let conflict = (deg / tiling.edges_per_warp as f64).max(0.0);
                            // One CAS-loop atomic per half value.
                            warp.atomic_add(AtomicKind::F16, f as u64, conflict);
                            writes.add(seg_row as usize * f, vals);
                        }
                        if ei == e {
                            break;
                        }
                        seg_row = rows[ei];
                        seg_start = ei;
                    }
                    let c = cols[ei] as usize;
                    let wv = w.get(ei);
                    for (a, &xv) in acc.iter_mut().zip(&x[c * f..(c + 1) * f]) {
                        // Implicit promotion: f32 FMA, rounded back per op.
                        *a = Half::from_f32(a.to_f32() + wv.to_f32() * xv.to_f32());
                    }
                }
            }
            writes
        },
    );

    // Half-precision accumulation at the output tensor: this is where hub
    // rows overflow (WriteList `add` runs Half::add_assign, i.e. a
    // correctly-rounded half atomic add).
    let mut y = vec![Half::ZERO; num_rows * f];
    commit_all(cta_outs, &mut y);
    if let Some(scale) = row_scale {
        for r in r0..r1 {
            let sc = scale[r];
            for v in &mut y[r * f..(r + 1) * f] {
                *v = *v * sc; // post-reduction: INF stays INF
            }
        }
    }
    (y, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Reduce;
    use crate::reference::{
        assert_close_f32, assert_close_half, f32_to_f64, half_to_f64, spmm_f64,
    };
    use halfgnn_graph::{gen, Csr};
    use halfgnn_half::slice::f32_slice_to_half;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dev() -> DeviceConfig {
        DeviceConfig::a100_like()
    }

    fn random_graph(n: usize, m: usize, seed: u64) -> Coo {
        let edges = gen::erdos_renyi(n, m, seed);
        Csr::from_edges(n, n, &edges).symmetrized_with_self_loops().to_coo()
    }

    fn random_f32(n: usize, scale: f32, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-scale..scale)).collect()
    }

    #[test]
    fn fast_executor_matches_sim_bitwise() {
        let g = random_graph(150, 700, 11);
        let f = 16;
        let x = f32_slice_to_half(&random_f32(g.num_cols() * f, 0.5, 12));
        let (sim_y, _) = spmm_half(&dev(), &g, EdgeWeights::Ones, &x, f, None);
        let (fast_y, fast_s) = spmm_half(&dev().fast(), &g, EdgeWeights::Ones, &x, f, None);
        assert_eq!(
            sim_y.iter().map(|h| h.to_bits()).collect::<Vec<u16>>(),
            fast_y.iter().map(|h| h.to_bits()).collect::<Vec<u16>>()
        );
        assert_eq!(fast_s.cycles, 0.0);
        assert_eq!(fast_s.totals.atomics_f16, 0, "fast charging is a no-op");
    }

    #[test]
    fn float_spmm_matches_reference() {
        let g = random_graph(200, 900, 1);
        let f = 32;
        let x = random_f32(g.num_cols() * f, 1.0, 2);
        let (y, stats) = spmm_float(&dev(), &g, EdgeWeightsF32::Ones, &x, f, None);
        let want = spmm_f64(&g, EdgeWeights::Ones, &f32_to_f64(&x), f, Reduce::Sum, None);
        assert_close_f32(&y, &want, 1e-4, 1e-4, "cusparse float");
        assert!(stats.totals.atomics_f32 > 0, "balanced design uses atomics");
        assert_eq!(stats.totals.convert_ops, 0);
    }

    #[test]
    fn half_spmm_matches_reference_on_small_values() {
        let g = random_graph(150, 700, 3);
        let f = 16;
        let xf = random_f32(g.num_cols() * f, 0.5, 4);
        let x = f32_slice_to_half(&xf);
        let (y, stats) = spmm_half(&dev(), &g, EdgeWeights::Ones, &x, f, None);
        let want = spmm_f64(&g, EdgeWeights::Ones, &half_to_f64(&x), f, Reduce::Sum, None);
        assert_close_half(&y, &want, 0.03, 0.1, "cusparse half");
        assert!(stats.totals.atomics_f16 > 0);
        assert!(stats.totals.convert_ops > 0, "Fig 3a path pays conversions");
    }

    #[test]
    fn half_spmm_overflows_on_hub_rows() {
        // The Fig. 1c root cause: a hub row's half accumulation hits INF
        // even though degree-norm would have brought it back in range.
        let deg = 600u32;
        let edges: Vec<(u32, u32)> = (1..=deg).map(|c| (0u32, c)).collect();
        let g = Coo::from_edges(deg as usize + 1, deg as usize + 1, &edges);
        let f = 2;
        let x = vec![Half::from_f32(150.0); (deg as usize + 1) * f];
        let degrees = Csr::from_coo(&g).degrees();
        let scale = crate::common::row_scales_mean(&degrees);
        let (y, _) = spmm_half(&dev(), &g, EdgeWeights::Ones, &x, f, Some(&scale));
        assert!(y[0].is_infinite(), "expected overflow, got {:?}", y[0]);
    }

    #[test]
    fn half_spmm_is_slower_than_float_spmm() {
        // Fig. 1a: cuSPARSE half SpMM underperforms float.
        let g = random_graph(3_000, 60_000, 5);
        let f = 64;
        let xf = random_f32(g.num_cols() * f, 0.5, 6);
        let x = f32_slice_to_half(&xf);
        let (_, sh) = spmm_half(&dev(), &g, EdgeWeights::Ones, &x, f, None);
        let (_, sf) = spmm_float(&dev(), &g, EdgeWeightsF32::Ones, &xf, f, None);
        assert!(
            sh.cycles > sf.cycles,
            "half {} should be slower than float {}",
            sh.cycles,
            sf.cycles
        );
    }

    #[test]
    fn float_post_scale_applies() {
        let g = Coo::from_edges(2, 2, &[(0, 0), (0, 1)]);
        let x = vec![4.0f32, 8.0];
        let (y, _) = spmm_float(&dev(), &g, EdgeWeightsF32::Ones, &x, 1, Some(&[0.5, 1.0]));
        assert_eq!(y, vec![6.0, 0.0]);
    }

    #[test]
    fn windowed_launches_are_bitwise_slices_of_the_full_run() {
        // Float bit-identity is what the distributed float trainer relies
        // on: the windowed launch must preserve f32 summation order.
        let g = random_graph(170, 800, 51);
        let f = 8;
        let xf = random_f32(g.num_cols() * f, 1.0, 52);
        let xh = f32_slice_to_half(&xf);
        let scale_f: Vec<f32> = (0..g.num_rows()).map(|r| 1.0 / (r + 1) as f32).collect();
        let n = g.num_rows();
        let cuts = [0, 43, n / 2, n];

        let (full_f, _) = spmm_float(&dev(), &g, EdgeWeightsF32::Ones, &xf, f, Some(&scale_f));
        let (full_h, _) = spmm_half(&dev(), &g, EdgeWeights::Ones, &xh, f, None);
        let mut pasted_f = vec![0f32; n * f];
        let mut pasted_h = vec![Half::ZERO; n * f];
        for win in cuts.windows(2) {
            let (r0, r1) = (win[0], win[1]);
            let (pf, _) = spmm_float_window(
                &dev(),
                &g,
                EdgeWeightsF32::Ones,
                &xf,
                f,
                Some(&scale_f),
                (r0, r1),
            );
            assert!(pf[..r0 * f].iter().chain(&pf[r1 * f..]).all(|v| *v == 0.0));
            pasted_f[r0 * f..r1 * f].copy_from_slice(&pf[r0 * f..r1 * f]);
            let (ph, _) = spmm_half_window(&dev(), &g, EdgeWeights::Ones, &xh, f, None, (r0, r1));
            pasted_h[r0 * f..r1 * f].copy_from_slice(&ph[r0 * f..r1 * f]);
        }
        assert_eq!(
            full_f.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
            pasted_f.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
        );
        assert_eq!(
            full_h.iter().map(|h| h.to_bits()).collect::<Vec<u16>>(),
            pasted_h.iter().map(|h| h.to_bits()).collect::<Vec<u16>>()
        );
    }

    #[test]
    fn weighted_variants() {
        let g = Coo::from_edges(2, 2, &[(0, 0), (0, 1)]);
        let wf = [2.0f32, 0.5];
        let x = vec![1.0f32, 10.0];
        let (y, _) = spmm_float(&dev(), &g, EdgeWeightsF32::Values(&wf), &x, 1, None);
        assert_eq!(y[0], 7.0);

        let wh = f32_slice_to_half(&wf);
        let xh = f32_slice_to_half(&x);
        let (yh, _) = spmm_half(&dev(), &g, EdgeWeights::Values(&wh), &xh, 1, None);
        assert_eq!(yh[0].to_f32(), 7.0);
    }
}
