//! GE-SpMM-style vanilla vertex-parallel SpMM (float).
//!
//! One warp per row; the warp walks its row's neighborhood 32 edges at a
//! time (the implicit grouping §5.2.1 notes). No workload balancing: a hub
//! row keeps one warp busy for `degree/32` iterations while other warps
//! idle — visible as a large max-CTA time on skewed graphs.

use halfgnn_graph::Csr;
use halfgnn_sim::launch::{commit_all, launch, LaunchParams, WriteList};
use halfgnn_sim::memory::AddrSpace;
use halfgnn_sim::{DeviceConfig, KernelStats};

/// Rows per CTA (4 warps, one row each).
const ROWS_PER_CTA: usize = 4;

/// `Y ← A X` in f32, vertex-parallel, sum reduction.
pub fn spmm_float(dev: &DeviceConfig, csr: &Csr, x: &[f32], f: usize) -> (Vec<f32>, KernelStats) {
    assert_eq!(x.len(), csr.num_cols() * f, "X shape mismatch");
    let n = csr.num_rows();
    let num_ctas = n.div_ceil(ROWS_PER_CTA).max(1);

    let mut space = AddrSpace::new();
    let cols_base = space.alloc(csr.nnz(), 4);
    let x_base = space.alloc(x.len(), 4);
    let y_base = space.alloc(n * f, 4);

    let (cta_outs, stats) =
        launch(dev, "ge_spmm_f32", LaunchParams { num_ctas, warps_per_cta: ROWS_PER_CTA }, |cta| {
            let mut writes: WriteList<f32> = WriteList::new();
            for wi in 0..ROWS_PER_CTA {
                let row = cta.id * ROWS_PER_CTA + wi;
                if row >= n {
                    break;
                }
                let neigh = csr.row(row as u32);
                if neigh.is_empty() {
                    continue;
                }
                let mut warp = cta.warp(wi);
                let off = csr.offsets()[row];
                // Column indices in 32-edge groups.
                warp.load_contiguous(cols_base + off as u64 * 4, neigh.len(), 4);
                // Feature-parallel loads + FMA per neighbor.
                warp.load_feature_rows(
                    neigh.iter().map(|&c| x_base + c as u64 * (f as u64 * 4)),
                    f * 4,
                    4,
                );
                warp.float_ops((neigh.len() as u64 * f as u64).div_ceil(32));
                warp.store_contiguous(y_base + row as u64 * (f as u64 * 4), f, 4);

                let mut acc = vec![0f32; f];
                for &c in neigh {
                    for (a, &xv) in acc.iter_mut().zip(&x[c as usize * f..(c as usize + 1) * f]) {
                        *a += xv;
                    }
                }
                writes.assign(row * f, acc);
            }
            writes
        });

    let mut y = vec![0f32; n * f];
    commit_all(cta_outs, &mut y);
    (y, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{EdgeWeights, Reduce};
    use crate::reference::{assert_close_f32, f32_to_f64, spmm_f64};
    use halfgnn_graph::gen;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dev() -> DeviceConfig {
        DeviceConfig::a100_like()
    }

    #[test]
    fn fast_executor_matches_sim_bitwise() {
        let edges = gen::erdos_renyi(200, 1_000, 9);
        let csr = Csr::from_edges(200, 200, &edges).symmetrized_with_self_loops();
        let f = 16;
        let mut rng = StdRng::seed_from_u64(10);
        let x: Vec<f32> = (0..csr.num_cols() * f).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let (sim_y, _) = spmm_float(&dev(), &csr, &x, f);
        let (fast_y, fast_s) = spmm_float(&dev().fast(), &csr, &x, f);
        assert_eq!(
            sim_y.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
            fast_y.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
        );
        assert_eq!(fast_s.cycles, 0.0);
    }

    #[test]
    fn matches_reference() {
        let edges = gen::erdos_renyi(300, 1_500, 1);
        let csr = Csr::from_edges(300, 300, &edges).symmetrized_with_self_loops();
        let f = 16;
        let mut rng = StdRng::seed_from_u64(2);
        let x: Vec<f32> = (0..csr.num_cols() * f).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let (y, _) = spmm_float(&dev(), &csr, &x, f);
        let want =
            spmm_f64(&csr.to_coo(), EdgeWeights::Ones, &f32_to_f64(&x), f, Reduce::Sum, None);
        assert_close_f32(&y, &want, 1e-4, 1e-4, "ge_spmm");
    }

    #[test]
    fn no_atomics_in_vertex_parallel() {
        let edges = gen::erdos_renyi(100, 400, 3);
        let csr = Csr::from_edges(100, 100, &edges).symmetrized_with_self_loops();
        let x = vec![1.0f32; 100 * 8];
        let (_, stats) = spmm_float(&dev(), &csr, &x, 8);
        assert_eq!(stats.totals.atomics_f32, 0);
        assert_eq!(stats.totals.atomics_f16, 0);
    }

    #[test]
    fn hub_rows_create_workload_imbalance() {
        // A star graph: one warp owns the hub row while the rest idle; the
        // edge-parallel HalfGNN design spreads that hub over many warps.
        let mut edges: Vec<(u32, u32)> = (1..1_000u32).map(|c| (0, c)).collect();
        edges.extend((1..999u32).map(|v| (v, v + 1)));
        let csr = Csr::from_edges(1_000, 1_000, &edges);
        let f = 32;
        let x = vec![0.5f32; 1_000 * f];
        let (_, vanilla) = spmm_float(&dev(), &csr, &x, f);
        let xh: Vec<halfgnn_half::Half> =
            x.iter().map(|&v| halfgnn_half::Half::from_f32(v)).collect();
        let (_, balanced) = crate::halfgnn_spmm::spmm(
            &dev(),
            &csr.to_coo(),
            EdgeWeights::Ones,
            &xh,
            f,
            None,
            &crate::halfgnn_spmm::SpmmConfig {
                scaling: crate::common::ScalePlacement::None,
                ..Default::default()
            },
        );
        assert!(
            vanilla.cycles > balanced.cycles,
            "imbalanced {} should lose to balanced {}",
            vanilla.cycles,
            balanced.cycles
        );
    }
}
