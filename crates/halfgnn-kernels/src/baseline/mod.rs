//! Baseline kernels the paper compares against.
//!
//! These model the *state of the practice* the paper analyzes in §3.1:
//!
//! * [`cusparse`] — the closed-source cuSPARSE SpMM that DGL calls:
//!   workload-balanced with atomic conflict resolution (as the paper's
//!   profiling reveals), scalar data loads, and — in the half variant —
//!   implicit-promotion arithmetic (Fig. 3a) plus costly 16-bit atomics.
//!   Reproduces Fig. 1a (half slower than float).
//! * [`dgl_sddmm`] — DGL's in-house SDDMM, which "replaces float with the
//!   half-precision data type without any system design change": same
//!   structure for both precisions, so half shows no speedup (Fig. 1b).
//! * [`ge_spmm`] — GE-SpMM-style vanilla vertex-parallel SpMM (row per
//!   warp, no workload balancing): the classic design §2.1.3 describes.

pub mod cusparse;
pub mod dgl_sddmm;
pub mod ge_spmm;
