//! DGL-style SDDMM, float and half.
//!
//! DGL's half SDDMM "replaces float with the half data type without any
//! system design change" (§3.1.1): both variants load features scalar and
//! feature-parallel across all 32 threads, run five shuffle rounds, and the
//! half variant pays Fig. 3a conversions on every multiply. The half
//! variant therefore moves half the bytes but issues the *same* number of
//! instructions and barriers — which is why Fig. 1b shows no speedup.

use crate::common::Tiling;
use halfgnn_graph::Coo;
use halfgnn_half::Half;
use halfgnn_sim::launch::{launch, LaunchParams};
use halfgnn_sim::memory::AddrSpace;
use halfgnn_sim::{DeviceConfig, KernelStats};

/// Shared structure of both DGL SDDMM variants. `edge_window` restricts
/// the launch to a contiguous global edge slice (the distributed per-shard
/// case) while keeping the global tiling, so window edges are bit-identical
/// to the full run.
#[allow(clippy::too_many_arguments)]
fn dgl_sddmm_generic<R: Send + Default + Clone>(
    dev: &DeviceConfig,
    name: &str,
    coo: &Coo,
    f: usize,
    elem_bytes: usize,
    half_path: bool,
    edge_window: (usize, usize),
    compute_edge: impl Fn(usize, u32, u32) -> R + Sync,
) -> (Vec<R>, KernelStats) {
    let nnz = coo.nnz();
    let (e0, e1) = edge_window;
    assert!(e0 <= e1 && e1 <= nnz, "bad edge window {edge_window:?}");
    let tiling = Tiling::default();
    let (cta_lo, cta_hi) = tiling.cta_range(e0, e1);
    let num_ctas = cta_hi - cta_lo;
    let rows = coo.rows();
    let cols = coo.cols();

    let mut space = AddrSpace::new();
    let rows_base = space.alloc(nnz, 4);
    let cols_base = space.alloc(nnz, 4);
    let u_base = space.alloc(coo.num_rows() * f, elem_bytes);
    let v_base = space.alloc(coo.num_cols() * f, elem_bytes);
    let out_base = space.alloc(nnz, elem_bytes);

    // All 32 threads cooperate on one edge (no sub-warps in DGL's design):
    // five shuffle rounds regardless of precision.
    let shuffle_rounds = 5u64;

    let (cta_outs, stats) =
        launch(dev, name, LaunchParams { num_ctas, warps_per_cta: tiling.warps_per_cta }, |cta| {
            let mut out: Vec<(usize, Vec<R>)> = Vec::new();
            for wi in 0..tiling.warps_per_cta {
                let (s, e) = tiling.warp_range_in(cta.id + cta_lo, wi, e0, e1);
                if s >= e {
                    continue;
                }
                let n = e - s;
                let mut warp = cta.warp(wi);
                // Naive feature-parallel: each thread re-reads the NZE pair.
                warp.load_gather((s..e).map(|ei| rows_base + ei as u64 * 4), 4);
                warp.load_gather((s..e).map(|ei| cols_base + ei as u64 * 4), 4);
                // Feature loads: the float template touches f*4 bytes per
                // row; the half instantiation touches the same sector span
                // with 2-byte requests, wasting half of every 32-byte
                // sector it opens ("without any system design change",
                // §3.1.1 — this is what makes Fig. 1b's runtimes and
                // Fig. 11's identical memory utilizations come out equal).
                warp.load_feature_rows(
                    (s..e).flat_map(|ei| {
                        [
                            u_base + rows[ei] as u64 * (f as u64 * 4),
                            v_base + cols[ei] as u64 * (f as u64 * 4),
                        ]
                    }),
                    f * 4,
                    4,
                );
                let mul_instrs = (n as u64 * f as u64).div_ceil(32);
                warp.float_ops(mul_instrs);
                if half_path {
                    // Fig. 3a conversions on every operand + the store.
                    warp.convert_ops(3 * mul_instrs);
                }
                // One reduction per edge, 32 threads each, one at a time.
                warp.shuffle_rounds(n as u64 * shuffle_rounds);
                warp.store_contiguous(out_base + s as u64 * elem_bytes as u64, n, elem_bytes);

                let vals: Vec<R> = (s..e).map(|ei| compute_edge(ei, rows[ei], cols[ei])).collect();
                out.push((s, vals));
            }
            out
        });

    let mut result = vec![R::default(); nnz];
    for cta in cta_outs {
        for (s, vals) in cta {
            result[s..s + vals.len()].clone_from_slice(&vals);
        }
    }
    (result, stats)
}

/// DGL float SDDMM.
pub fn sddmm_float(
    dev: &DeviceConfig,
    coo: &Coo,
    u: &[f32],
    v: &[f32],
    f: usize,
) -> (Vec<f32>, KernelStats) {
    sddmm_float_window(dev, coo, u, v, f, (0, coo.nnz()))
}

/// [`sddmm_float`] restricted to the global edge window `[e0, e1)` (the
/// per-shard distributed launch); window edges are bit-identical to the
/// full run, edges outside are zero.
pub fn sddmm_float_window(
    dev: &DeviceConfig,
    coo: &Coo,
    u: &[f32],
    v: &[f32],
    f: usize,
    edge_window: (usize, usize),
) -> (Vec<f32>, KernelStats) {
    assert_eq!(u.len(), coo.num_rows() * f, "U shape mismatch");
    assert_eq!(v.len(), coo.num_cols() * f, "V shape mismatch");
    dgl_sddmm_generic::<f32>(dev, "dgl_f32_sddmm", coo, f, 4, false, edge_window, |_, r, c| {
        let ur = &u[r as usize * f..(r as usize + 1) * f];
        let vc = &v[c as usize * f..(c as usize + 1) * f];
        ur.iter().zip(vc).map(|(a, b)| a * b).sum()
    })
}

/// DGL half SDDMM: float structure with half types dropped in. Arithmetic
/// runs through implicit promotion, accumulating in float and rounding the
/// final value (what DGL's templated kernel does).
pub fn sddmm_half(
    dev: &DeviceConfig,
    coo: &Coo,
    u: &[Half],
    v: &[Half],
    f: usize,
) -> (Vec<Half>, KernelStats) {
    sddmm_half_window(dev, coo, u, v, f, (0, coo.nnz()))
}

/// [`sddmm_half`] restricted to the global edge window `[e0, e1)`; see
/// [`sddmm_float_window`].
pub fn sddmm_half_window(
    dev: &DeviceConfig,
    coo: &Coo,
    u: &[Half],
    v: &[Half],
    f: usize,
    edge_window: (usize, usize),
) -> (Vec<Half>, KernelStats) {
    assert_eq!(u.len(), coo.num_rows() * f, "U shape mismatch");
    assert_eq!(v.len(), coo.num_cols() * f, "V shape mismatch");
    let _site = halfgnn_half::overflow::site("dgl_f16_sddmm");
    dgl_sddmm_generic::<Half>(dev, "dgl_f16_sddmm", coo, f, 2, true, edge_window, |_, r, c| {
        let ur = &u[r as usize * f..(r as usize + 1) * f];
        let vc = &v[c as usize * f..(c as usize + 1) * f];
        let acc: f32 = ur.iter().zip(vc).map(|(a, b)| a.to_f32() * b.to_f32()).sum();
        Half::from_f32(acc)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{
        assert_close_f32, assert_close_half, f32_to_f64, half_to_f64, sddmm_f64,
    };
    use halfgnn_graph::{gen, Csr};
    use halfgnn_half::slice::f32_slice_to_half;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dev() -> DeviceConfig {
        DeviceConfig::a100_like()
    }

    fn random_graph(n: usize, m: usize, seed: u64) -> Coo {
        let edges = gen::erdos_renyi(n, m, seed);
        Csr::from_edges(n, n, &edges).symmetrized_with_self_loops().to_coo()
    }

    fn random_f32(n: usize, scale: f32, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-scale..scale)).collect()
    }

    #[test]
    fn fast_executor_matches_sim_bitwise() {
        let g = random_graph(100, 500, 14);
        let f = 32;
        let u = f32_slice_to_half(&random_f32(g.num_rows() * f, 0.5, 15));
        let v = f32_slice_to_half(&random_f32(g.num_cols() * f, 0.5, 16));
        let (sim_y, _) = sddmm_half(&dev(), &g, &u, &v, f);
        let (fast_y, fast_s) = sddmm_half(&dev().fast(), &g, &u, &v, f);
        assert_eq!(
            sim_y.iter().map(|h| h.to_bits()).collect::<Vec<u16>>(),
            fast_y.iter().map(|h| h.to_bits()).collect::<Vec<u16>>()
        );
        assert_eq!(fast_s.cycles, 0.0);
        assert_eq!(fast_s.totals.convert_ops, 0, "fast charging is a no-op");
    }

    #[test]
    fn float_matches_reference() {
        let g = random_graph(100, 500, 1);
        let f = 32;
        let u = random_f32(g.num_rows() * f, 1.0, 2);
        let v = random_f32(g.num_cols() * f, 1.0, 3);
        let (got, _) = sddmm_float(&dev(), &g, &u, &v, f);
        let want = sddmm_f64(&g, &f32_to_f64(&u), &f32_to_f64(&v), f);
        assert_close_f32(&got, &want, 1e-5, 1e-5, "dgl float sddmm");
    }

    #[test]
    fn half_matches_reference() {
        let g = random_graph(100, 500, 4);
        let f = 32;
        let u = f32_slice_to_half(&random_f32(g.num_rows() * f, 0.5, 5));
        let v = f32_slice_to_half(&random_f32(g.num_cols() * f, 0.5, 6));
        let (got, stats) = sddmm_half(&dev(), &g, &u, &v, f);
        let want = sddmm_f64(&g, &half_to_f64(&u), &half_to_f64(&v), f);
        assert_close_half(&got, &want, 0.01, 0.01, "dgl half sddmm");
        assert!(stats.totals.convert_ops > 0);
    }

    #[test]
    fn half_is_no_faster_than_float() {
        // Fig. 1b: DGL's half SDDMM gives no runtime benefit.
        let g = random_graph(2_000, 40_000, 7);
        let f = 64;
        let uf = random_f32(g.num_rows() * f, 0.5, 8);
        let vf = random_f32(g.num_cols() * f, 0.5, 9);
        let (_, sf) = sddmm_float(&dev(), &g, &uf, &vf, f);
        let (_, sh) = sddmm_half(&dev(), &g, &f32_slice_to_half(&uf), &f32_slice_to_half(&vf), f);
        // Same barriers, same instruction counts; conversions make half no
        // better (allow 5% modeling slack).
        assert!(sh.cycles > 0.95 * sf.cycles, "half {} vs float {}", sh.cycles, sf.cycles);
        assert_eq!(sh.totals.shuffles, sf.totals.shuffles);
    }

    #[test]
    fn half_is_much_slower_than_halfgnn_sddmm() {
        // The Fig. 9 kernel-level gap, in miniature.
        let g = random_graph(2_000, 40_000, 10);
        let f = 64;
        let u = f32_slice_to_half(&random_f32(g.num_rows() * f, 0.5, 11));
        let v = f32_slice_to_half(&random_f32(g.num_cols() * f, 0.5, 12));
        let (_, dgl) = sddmm_half(&dev(), &g, &u, &v, f);
        let (_, ours) =
            crate::halfgnn_sddmm::sddmm(&dev(), &g, &u, &v, f, crate::common::VectorWidth::Half8);
        assert!(
            dgl.cycles > 3.0 * ours.cycles,
            "expected large gap: dgl {} vs halfgnn {}",
            dgl.cycles,
            ours.cycles
        );
    }
}
