//! Huang et al. (ref. 20)-style vertex-parallel workload-balanced SpMM, plus
//! the half2 adaptation of §5.4 — the generality demonstration of Fig. 14.
//!
//! The design splits every row into groups of ≤32 neighbors and assigns one
//! group per warp, so no warp sees a row split. The float original resolves
//! multi-group rows with `f32` atomics. The half2 adaptation keeps the
//! 32-neighbor grouping (so edge-feature loads stay at 64 B — the
//! compromise §6.3.3 notes), vectorizes the feature loads with half2,
//! handles the odd-offset alignment problem by starting the edge-feature
//! fetch one position earlier, and replaces atomics with the
//! staging-buffer protocol.

use crate::baseline::cusparse::EdgeWeightsF32;
use crate::common::EdgeWeights;
use halfgnn_graph::Csr;
use halfgnn_half::intrinsics::{hadd, hmul};
use halfgnn_half::Half;
use halfgnn_sim::launch::{commit_all, launch, LaunchParams, WriteList};
use halfgnn_sim::memory::AddrSpace;
use halfgnn_sim::{AtomicKind, DeviceConfig, KernelStats};

/// Neighbor-group size (the original's choice, kept in §6.3.3).
const GROUP: usize = 32;
const WARPS_PER_CTA: usize = 4;

/// One warp's work item: `(row, edge_offset, len)`.
fn build_groups(csr: &Csr) -> Vec<(u32, usize, usize)> {
    build_groups_of(csr, GROUP)
}

fn build_groups_of(csr: &Csr, group: usize) -> Vec<(u32, usize, usize)> {
    let mut groups = Vec::new();
    for r in 0..csr.num_rows() {
        let start = csr.offsets()[r];
        let end = csr.offsets()[r + 1];
        let mut off = start;
        while off < end {
            let len = (end - off).min(group);
            groups.push((r as u32, off, len));
            off += len;
        }
    }
    groups
}

/// Huang-float SpMM: `f32` loads and arithmetic, atomic combine for
/// multi-group rows.
pub fn spmm_float(
    dev: &DeviceConfig,
    csr: &Csr,
    w: EdgeWeightsF32,
    x: &[f32],
    f: usize,
) -> (Vec<f32>, KernelStats) {
    assert_eq!(x.len(), csr.num_cols() * f, "X shape mismatch");
    let n = csr.num_rows();
    let groups = build_groups(csr);
    let num_ctas = groups.len().div_ceil(WARPS_PER_CTA).max(1);

    let mut space = AddrSpace::new();
    let cols_base = space.alloc(csr.nnz(), 4);
    let w_base = space.alloc(csr.nnz(), 4);
    let x_base = space.alloc(x.len(), 4);
    let y_base = space.alloc(n * f, 4);

    let (cta_outs, stats) = launch(
        dev,
        "huang_f32_spmm",
        LaunchParams { num_ctas, warps_per_cta: WARPS_PER_CTA },
        |cta| {
            let mut writes: WriteList<f32> = WriteList::new();
            for wi in 0..WARPS_PER_CTA {
                let gi = cta.id * WARPS_PER_CTA + wi;
                let Some(&(row, off, len)) = groups.get(gi) else { break };
                let mut warp = cta.warp(wi);
                warp.load_contiguous(cols_base + off as u64 * 4, len, 4);
                if !matches!(w, EdgeWeightsF32::Ones) {
                    warp.load_contiguous(w_base + off as u64 * 4, len, 4);
                }
                let cols = &csr.cols()[off..off + len];
                warp.load_feature_rows(
                    cols.iter().map(|&c| x_base + c as u64 * (f as u64 * 4)),
                    f * 4,
                    4,
                );
                warp.float_ops((len as u64 * f as u64).div_ceil(32));

                let mut acc = vec![0f32; f];
                for (k, &c) in cols.iter().enumerate() {
                    let wv = w.get(off + k);
                    for (a, &xv) in acc.iter_mut().zip(&x[c as usize * f..(c as usize + 1) * f]) {
                        *a += wv * xv;
                    }
                }
                let single_group = csr.degree(row) as usize <= GROUP;
                if single_group {
                    warp.store_contiguous(y_base + row as u64 * (f as u64 * 4), f, 4);
                    writes.assign(row as usize * f, acc);
                } else {
                    let conflict = (csr.degree(row) as f64 / GROUP as f64).max(0.0);
                    warp.atomic_add(AtomicKind::F32, f as u64, conflict);
                    writes.add(row as usize * f, acc);
                }
            }
            writes
        },
    );

    let mut y = vec![0f32; n * f];
    commit_all(cta_outs, &mut y);
    (y, stats)
}

/// Huang-half2 SpMM (§5.4): same grouping, half2 feature loads, mirroring
/// with the odd-offset fix, non-atomic staging-buffer writes.
pub fn spmm_half2(
    dev: &DeviceConfig,
    csr: &Csr,
    w: EdgeWeights,
    x: &[Half],
    f: usize,
) -> (Vec<Half>, KernelStats) {
    assert_eq!(x.len(), csr.num_cols() * f, "X shape mismatch");
    assert!(f.is_multiple_of(2), "feature length must be half2-padded");
    let _site = halfgnn_half::overflow::site("huang_f16x2_spmm");
    let n = csr.num_rows();
    let groups = build_groups(csr);
    let num_ctas = groups.len().div_ceil(WARPS_PER_CTA).max(1);

    let mut space = AddrSpace::new();
    let cols_base = space.alloc(csr.nnz(), 4);
    let w_base = space.alloc(csr.nnz(), 2);
    let x_base = space.alloc(x.len(), 2);
    let y_base = space.alloc(n * f, 2);
    let stage_base = space.alloc(groups.len() * (f + 2), 2);

    struct Staged {
        row: u32,
        vals: Vec<Half>,
    }

    let (cta_outs, main_stats) = launch(
        dev,
        "huang_f16x2_spmm",
        LaunchParams { num_ctas, warps_per_cta: WARPS_PER_CTA },
        |cta| {
            let mut writes: WriteList<Half> = WriteList::new();
            let mut staged: Vec<Staged> = Vec::new();
            for wi in 0..WARPS_PER_CTA {
                let gi = cta.id * WARPS_PER_CTA + wi;
                let Some(&(row, off, len)) = groups.get(gi) else { break };
                let mut warp = cta.warp(wi);
                warp.load_contiguous(cols_base + off as u64 * 4, len, 4);
                if !w.is_ones() {
                    // Odd-offset alignment fix: fetch from one position
                    // earlier so the pointer stays half2-castable (§5.4).
                    let aligned = off & !1;
                    let padded = (off - aligned + len).div_ceil(2) * 2;
                    warp.load_contiguous(w_base + aligned as u64 * 2, padded / 2, 4);
                    warp.half2_ops((len as u64).div_ceil(32)); // mirroring
                }
                let cols = &csr.cols()[off..off + len];
                warp.load_feature_rows(
                    cols.iter().map(|&c| x_base + c as u64 * (f as u64 * 2)),
                    f * 2,
                    4,
                );
                warp.half2_ops((len as u64 * (f as u64 / 2)).div_ceil(32));

                let mut acc = vec![Half::ZERO; f];
                for (k, &c) in cols.iter().enumerate() {
                    let wv = w.get(off + k);
                    for (a, &xv) in acc.iter_mut().zip(&x[c as usize * f..(c as usize + 1) * f]) {
                        *a = hadd(*a, hmul(wv, xv));
                    }
                }
                let single_group = csr.degree(row) as usize <= GROUP;
                if single_group {
                    warp.store_contiguous(y_base + row as u64 * (f as u64 * 2), f / 2, 4);
                    writes.assign(row as usize * f, acc);
                } else {
                    warp.store_contiguous(stage_base + gi as u64 * (f as u64 + 2), f / 2 + 1, 4);
                    staged.push(Staged { row, vals: acc });
                }
            }
            (writes, staged)
        },
    );

    let mut y = vec![Half::ZERO; n * f];
    let mut staged_all: Vec<Staged> = Vec::new();
    let mut writes = Vec::new();
    for (wl, st) in cta_outs {
        writes.push(wl);
        staged_all.extend(st);
    }
    commit_all(writes, &mut y);

    let mut stats = main_stats;
    if !staged_all.is_empty() {
        let entries = staged_all.len();
        let (_, follow) = launch(
            dev,
            "huang_followup",
            LaunchParams { num_ctas: entries.div_ceil(8).max(1), warps_per_cta: 1 },
            |cta| {
                let lo = cta.id * 8;
                let hi = ((cta.id + 1) * 8).min(entries);
                let mut warp = cta.warp(0);
                for _ in lo..hi {
                    warp.load_contiguous(stage_base, f / 2 + 1, 4);
                    warp.half2_ops(((f / 2) as u64).div_ceil(32));
                    warp.store_contiguous(y_base, f / 2, 4);
                }
            },
        );
        // Groups of one row are adjacent in `staged_all` (group order).
        let mut it = staged_all.into_iter();
        let mut cur = it.next().expect("non-empty");
        let mut wl: WriteList<Half> = WriteList::new();
        for s in it {
            if s.row == cur.row {
                for (a, b) in cur.vals.iter_mut().zip(&s.vals) {
                    *a = hadd(*a, *b);
                }
            } else {
                wl.assign(cur.row as usize * f, std::mem::take(&mut cur.vals));
                cur = s;
            }
        }
        wl.assign(cur.row as usize * f, cur.vals);
        wl.commit(&mut y);
        stats = stats.then(&follow);
    }
    (y, stats)
}

/// The §6.3.3 follow-up: Huang-half2 with 64-neighbor groups, so the
/// edge-feature phase issues full 128-byte loads ("this is not a
/// fundamental limitation, as we can change its neighbor group size to 64
/// to overcome the issue"). Only the grouping differs from
/// [`spmm_half2`]; expect a further data-load win on high-degree graphs.
pub fn spmm_half2_g64(
    dev: &DeviceConfig,
    csr: &Csr,
    w: EdgeWeights,
    x: &[Half],
    f: usize,
) -> (Vec<Half>, KernelStats) {
    spmm_half2_grouped(dev, csr, w, x, f, 64)
}

fn spmm_half2_grouped(
    dev: &DeviceConfig,
    csr: &Csr,
    w: EdgeWeights,
    x: &[Half],
    f: usize,
    group: usize,
) -> (Vec<Half>, KernelStats) {
    assert_eq!(x.len(), csr.num_cols() * f, "X shape mismatch");
    assert!(f.is_multiple_of(2), "feature length must be half2-padded");
    let n = csr.num_rows();
    let groups = build_groups_of(csr, group);
    let num_ctas = groups.len().div_ceil(WARPS_PER_CTA).max(1);

    let mut space = AddrSpace::new();
    let cols_base = space.alloc(csr.nnz(), 4);
    let w_base = space.alloc(csr.nnz(), 2);
    let x_base = space.alloc(x.len(), 2);
    let y_base = space.alloc(n * f, 2);
    let stage_base = space.alloc(groups.len() * (f + 2), 2);

    struct Staged {
        row: u32,
        vals: Vec<Half>,
    }

    let (cta_outs, main_stats) = launch(
        dev,
        "huang_f16x2_g64_spmm",
        LaunchParams { num_ctas, warps_per_cta: WARPS_PER_CTA },
        |cta| {
            let mut writes: WriteList<Half> = WriteList::new();
            let mut staged: Vec<Staged> = Vec::new();
            for wi in 0..WARPS_PER_CTA {
                let gi = cta.id * WARPS_PER_CTA + wi;
                let Some(&(row, off, len)) = groups.get(gi) else { break };
                let mut warp = cta.warp(wi);
                warp.load_contiguous(cols_base + off as u64 * 4, len, 4);
                if !w.is_ones() {
                    let aligned = off & !1;
                    let padded = (off - aligned + len).div_ceil(2) * 2;
                    warp.load_contiguous(w_base + aligned as u64 * 2, padded / 2, 4);
                    warp.half2_ops((len as u64).div_ceil(32));
                }
                let cols = &csr.cols()[off..off + len];
                warp.load_feature_rows(
                    cols.iter().map(|&c| x_base + c as u64 * (f as u64 * 2)),
                    f * 2,
                    4,
                );
                warp.half2_ops((len as u64 * (f as u64 / 2)).div_ceil(32));

                let mut acc = vec![Half::ZERO; f];
                for (k, &c) in cols.iter().enumerate() {
                    let wv = w.get(off + k);
                    for (a, &xv) in acc.iter_mut().zip(&x[c as usize * f..(c as usize + 1) * f]) {
                        *a = hadd(*a, hmul(wv, xv));
                    }
                }
                if csr.degree(row) as usize <= group {
                    warp.store_contiguous(y_base + row as u64 * (f as u64 * 2), f / 2, 4);
                    writes.assign(row as usize * f, acc);
                } else {
                    warp.store_contiguous(stage_base + gi as u64 * (f as u64 + 2), f / 2 + 1, 4);
                    staged.push(Staged { row, vals: acc });
                }
            }
            (writes, staged)
        },
    );

    let mut y = vec![Half::ZERO; n * f];
    let mut staged_all: Vec<Staged> = Vec::new();
    let mut writes = Vec::new();
    for (wl, st) in cta_outs {
        writes.push(wl);
        staged_all.extend(st);
    }
    commit_all(writes, &mut y);

    let mut stats = main_stats;
    if !staged_all.is_empty() {
        let entries = staged_all.len();
        let (_, follow) = launch(
            dev,
            "huang_g64_followup",
            LaunchParams { num_ctas: entries.div_ceil(8).max(1), warps_per_cta: 1 },
            |cta| {
                let lo = cta.id * 8;
                let hi = ((cta.id + 1) * 8).min(entries);
                let mut warp = cta.warp(0);
                for _ in lo..hi {
                    warp.load_contiguous(stage_base, f / 2 + 1, 4);
                    warp.half2_ops(((f / 2) as u64).div_ceil(32));
                    warp.store_contiguous(y_base, f / 2, 4);
                }
            },
        );
        let mut it = staged_all.into_iter();
        let mut cur = it.next().expect("non-empty");
        let mut wl: WriteList<Half> = WriteList::new();
        for s in it {
            if s.row == cur.row {
                for (a, b) in cur.vals.iter_mut().zip(&s.vals) {
                    *a = hadd(*a, *b);
                }
            } else {
                wl.assign(cur.row as usize * f, std::mem::take(&mut cur.vals));
                cur = s;
            }
        }
        wl.assign(cur.row as usize * f, cur.vals);
        wl.commit(&mut y);
        stats = stats.then(&follow);
    }
    (y, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Reduce;
    use crate::reference::{
        assert_close_f32, assert_close_half, f32_to_f64, half_to_f64, spmm_f64,
    };
    use halfgnn_graph::gen;
    use halfgnn_half::slice::f32_slice_to_half;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dev() -> DeviceConfig {
        DeviceConfig::a100_like()
    }

    fn skewed_graph(seed: u64) -> Csr {
        let edges = gen::preferential_attachment(1_500, 8, seed);
        Csr::from_edges(1_500, 1_500, &edges).symmetrized_with_self_loops()
    }

    #[test]
    fn groups_partition_every_row() {
        let csr = skewed_graph(1);
        let groups = build_groups(&csr);
        let mut covered = vec![0usize; csr.num_rows()];
        for &(r, _, len) in &groups {
            assert!(len <= GROUP && len > 0);
            covered[r as usize] += len;
        }
        for (r, &cov) in covered.iter().enumerate() {
            assert_eq!(cov, csr.degree(r as u32) as usize, "row {r}");
        }
    }

    #[test]
    fn fast_executor_matches_sim_bitwise() {
        // Huang's grouped design combines multi-group rows through the
        // commit phase; both backends must land on identical bits.
        let csr = skewed_graph(9);
        let f = 32;
        let mut rng = StdRng::seed_from_u64(10);
        let xf: Vec<f32> = (0..csr.num_cols() * f).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let xh = f32_slice_to_half(&xf);
        let fast = dev().fast();
        let (sim_f, _) = spmm_float(&dev(), &csr, EdgeWeightsF32::Ones, &xf, f);
        let (fast_f, _) = spmm_float(&fast, &csr, EdgeWeightsF32::Ones, &xf, f);
        assert_eq!(
            sim_f.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
            fast_f.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
        );
        let (sim_h, _) = spmm_half2(&dev(), &csr, EdgeWeights::Ones, &xh, f);
        let (fast_h, fast_s) = spmm_half2(&fast, &csr, EdgeWeights::Ones, &xh, f);
        assert_eq!(
            sim_h.iter().map(|h| h.to_bits()).collect::<Vec<u16>>(),
            fast_h.iter().map(|h| h.to_bits()).collect::<Vec<u16>>()
        );
        assert_eq!(fast_s.cycles, 0.0);
    }

    #[test]
    fn float_matches_reference() {
        let csr = skewed_graph(2);
        let f = 16;
        let mut rng = StdRng::seed_from_u64(3);
        let x: Vec<f32> = (0..csr.num_cols() * f).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let (y, stats) = spmm_float(&dev(), &csr, EdgeWeightsF32::Ones, &x, f);
        let want =
            spmm_f64(&csr.to_coo(), EdgeWeights::Ones, &f32_to_f64(&x), f, Reduce::Sum, None);
        assert_close_f32(&y, &want, 1e-4, 1e-4, "huang float");
        assert!(stats.totals.atomics_f32 > 0, "multi-group rows use atomics");
    }

    #[test]
    fn half2_matches_reference() {
        let csr = skewed_graph(4);
        let f = 32;
        let mut rng = StdRng::seed_from_u64(5);
        let xf: Vec<f32> = (0..csr.num_cols() * f).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let x = f32_slice_to_half(&xf);
        let (y, stats) = spmm_half2(&dev(), &csr, EdgeWeights::Ones, &x, f);
        let want =
            spmm_f64(&csr.to_coo(), EdgeWeights::Ones, &half_to_f64(&x), f, Reduce::Sum, None);
        assert_close_half(&y, &want, 0.05, 0.2, "huang half2");
        assert_eq!(stats.totals.atomics_f16, 0, "half2 adaptation is non-atomic");
    }

    #[test]
    fn weighted_half2_matches_reference() {
        let csr = skewed_graph(6);
        let f = 16;
        let mut rng = StdRng::seed_from_u64(7);
        let x = f32_slice_to_half(
            &(0..csr.num_cols() * f).map(|_| rng.gen_range(-0.5..0.5)).collect::<Vec<f32>>(),
        );
        let w = f32_slice_to_half(
            &(0..csr.nnz()).map(|_| rng.gen_range(-1.0..1.0)).collect::<Vec<f32>>(),
        );
        let (y, _) = spmm_half2(&dev(), &csr, EdgeWeights::Values(&w), &x, f);
        let want = spmm_f64(
            &csr.to_coo(),
            EdgeWeights::Values(&w),
            &half_to_f64(&x),
            f,
            Reduce::Sum,
            None,
        );
        assert_close_half(&y, &want, 0.05, 0.2, "huang half2 weighted");
    }

    #[test]
    fn g64_matches_reference_and_improves_coalescing() {
        // §6.3.3: 64-neighbor groups restore full 128-byte edge-feature
        // loads (the compromise the 32-group adaptation made). The win
        // shows in load-instruction efficiency for SpMMve.
        let csr = skewed_graph(12);
        let f = 64;
        let mut rng = StdRng::seed_from_u64(13);
        let xf: Vec<f32> = (0..csr.num_cols() * f).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let x = f32_slice_to_half(&xf);
        let w = f32_slice_to_half(
            &(0..csr.nnz()).map(|_| rng.gen_range(-1.0..1.0)).collect::<Vec<f32>>(),
        );
        let (y64, s64) = spmm_half2_g64(&dev(), &csr, EdgeWeights::Values(&w), &x, f);
        let want = spmm_f64(
            &csr.to_coo(),
            EdgeWeights::Values(&w),
            &half_to_f64(&x),
            f,
            Reduce::Sum,
            None,
        );
        assert_close_half(&y64, &want, 0.05, 0.2, "huang g64");
        let (_, s32) = spmm_half2(&dev(), &csr, EdgeWeights::Values(&w), &x, f);
        assert!(
            s64.totals.load_instrs < s32.totals.load_instrs,
            "g64 must issue fewer load instructions ({} vs {})",
            s64.totals.load_instrs,
            s32.totals.load_instrs
        );
        // Wave-granularity effects can go either way on small grids, but
        // g64 must stay in the same ballpark.
        assert!(s64.cycles <= s32.cycles * 1.4, "{} vs {}", s64.cycles, s32.cycles);
    }

    #[test]
    fn half2_is_faster_than_float() {
        // Fig. 14: ~1.79x average speedup from the adaptation.
        let csr = skewed_graph(8);
        let f = 64;
        let mut rng = StdRng::seed_from_u64(9);
        let xf: Vec<f32> = (0..csr.num_cols() * f).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let x = f32_slice_to_half(&xf);
        let (_, sf) = spmm_float(&dev(), &csr, EdgeWeightsF32::Ones, &xf, f);
        let (_, sh) = spmm_half2(&dev(), &csr, EdgeWeights::Ones, &x, f);
        let speedup = sf.cycles / sh.cycles;
        assert!(
            speedup > 1.2,
            "expected a clear half2 win, got {speedup:.2}x ({} vs {})",
            sf.cycles,
            sh.cycles
        );
    }
}
