//! Sparse GNN kernels on the SIMT cost-model simulator.
//!
//! Two kernel families from the paper (§2.1.2):
//!
//! * **SpMM** — `Y ← A_w · X`: multiply the (edge-weighted) adjacency by a
//!   vertex-feature matrix. `SpMMv` treats all edge weights as 1 (GCN/GIN);
//!   `SpMMve` takes an edge-level weight tensor (GAT).
//! * **SDDMM** — `δW ← A ⊙ (U · Vᵀ)`: per-edge dot products of endpoint
//!   feature vectors.
//!
//! Implementations:
//!
//! | module | system modeled | design |
//! |---|---|---|
//! | [`baseline::cusparse`] | cuSPARSE float/half SpMM (what DGL calls) | edge-balanced, atomic writes, scalar loads, Fig. 3a arithmetic for half |
//! | [`baseline::dgl_sddmm`] | DGL float/half SDDMM | feature-parallel scalar loads, full shuffle reduction |
//! | [`baseline::ge_spmm`] | GE-SpMM | vanilla vertex-parallel row-per-warp, no balancing |
//! | [`huang`] | Huang et al. (ref. 20) | vertex-parallel, 32-neighbor groups + half2 adaptation (§5.4, Fig. 14) |
//! | [`halfgnn_spmm`] | **HalfGNN SpMM** | edge-parallel, half2 two-phase load, edge-feature mirroring, discretized reduction scaling, staging-buffer non-atomic writes (§4, §5.2) |
//! | [`halfgnn_sddmm`] | **HalfGNN SDDMM** | half2/half4/half8 vectorized loads, reduced shuffle rounds (§5.1) |
//! | [`edge_ops`] | edge-level softmax pieces | gather-add, shadow-exp, gather-div (§3.1.2, §5.3) |
//!
//! Every public kernel returns its functional output *and* a
//! [`halfgnn_sim::KernelStats`] with modeled time and NCU-style counters.
//! All kernels are validated against the serial `f64` implementations in
//! [`mod@reference`].

pub mod baseline;
pub mod common;
pub mod dist;
pub mod edge_ops;
pub mod fused;
pub mod halfgnn_sddmm;
pub mod halfgnn_spmm;
pub mod huang;
pub mod oracle;
pub mod quant_spmm;
pub mod reference;

pub use common::{EdgeWeights, Reduce, ScalePlacement, VectorWidth, WriteStrategy};
