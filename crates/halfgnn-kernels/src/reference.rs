//! Serial `f64` reference implementations — the ground truth every kernel
//! is validated against. These are deliberately simple and allocation-happy;
//! they model exact arithmetic (up to f64), so comparisons against FP16
//! kernels use tolerance bands derived from half-precision ulps.

use crate::common::{EdgeWeights, Reduce};
use halfgnn_graph::Coo;
use halfgnn_half::Half;

/// `Y ← A_w · X` in f64 with optional per-row scaling applied after the
/// exact reduction (exact arithmetic never overflows, so placement is
/// irrelevant here).
pub fn spmm_f64(
    coo: &Coo,
    w: EdgeWeights,
    x: &[f64],
    f: usize,
    reduce: Reduce,
    row_scale: Option<&[f64]>,
) -> Vec<f64> {
    let n = coo.num_rows();
    assert_eq!(x.len(), coo.num_cols() * f, "X shape mismatch");
    let mut y = match reduce {
        Reduce::Sum => vec![0f64; n * f],
        Reduce::Max => vec![f64::NEG_INFINITY; n * f],
    };
    for e in 0..coo.nnz() {
        let (r, c) = coo.edge(e);
        let wv = w.get(e).to_f64();
        let xr = &x[c as usize * f..(c as usize + 1) * f];
        let yr = &mut y[r as usize * f..(r as usize + 1) * f];
        match reduce {
            Reduce::Sum => {
                for (yo, &xv) in yr.iter_mut().zip(xr) {
                    *yo += wv * xv;
                }
            }
            Reduce::Max => {
                for (yo, &xv) in yr.iter_mut().zip(xr) {
                    *yo = yo.max(wv * xv);
                }
            }
        }
    }
    if let Reduce::Max = reduce {
        // Rows with no edges: define as 0 like the kernels do.
        for r in 0..n {
            if y[r * f..(r + 1) * f].iter().all(|v| *v == f64::NEG_INFINITY) {
                y[r * f..(r + 1) * f].fill(0.0);
            }
        }
    }
    if let Some(s) = row_scale {
        for r in 0..n {
            for v in &mut y[r * f..(r + 1) * f] {
                *v *= s[r];
            }
        }
    }
    y
}

/// `out[e] ← dot(U[row(e)], V[col(e)])` in f64.
pub fn sddmm_f64(coo: &Coo, u: &[f64], v: &[f64], f: usize) -> Vec<f64> {
    assert_eq!(u.len(), coo.num_rows() * f, "U shape mismatch");
    assert_eq!(v.len(), coo.num_cols() * f, "V shape mismatch");
    (0..coo.nnz())
        .map(|e| {
            let (r, c) = coo.edge(e);
            let ur = &u[r as usize * f..(r as usize + 1) * f];
            let vc = &v[c as usize * f..(c as usize + 1) * f];
            ur.iter().zip(vc).map(|(a, b)| a * b).sum()
        })
        .collect()
}

/// Convert a half tensor to the f64 reference domain.
pub fn half_to_f64(h: &[Half]) -> Vec<f64> {
    h.iter().map(|v| v.to_f64()).collect()
}

/// Convert an f32 tensor to the f64 reference domain.
pub fn f32_to_f64(x: &[f32]) -> Vec<f64> {
    x.iter().map(|&v| v as f64).collect()
}

/// Assert a half result matches an f64 reference within `rel` relative and
/// `abs` absolute tolerance (both needed: FP16 results near zero are
/// dominated by absolute rounding; large ones by relative).
pub fn assert_close_half(got: &[Half], want: &[f64], rel: f64, abs: f64, what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let g = g.to_f64();
        let err = (g - w).abs();
        let tol = abs + rel * w.abs();
        assert!(
            err <= tol,
            "{what}[{i}]: got {g}, want {w}, err {err:.3e} > tol {tol:.3e}"
        );
    }
}

/// As [`assert_close_half`] for f32 kernels.
pub fn assert_close_f32(got: &[f32], want: &[f64], rel: f64, abs: f64, what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let g = *g as f64;
        let err = (g - w).abs();
        let tol = abs + rel * w.abs();
        assert!(
            err <= tol,
            "{what}[{i}]: got {g}, want {w}, err {err:.3e} > tol {tol:.3e}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halfgnn_graph::Coo;

    fn fig2_graph() -> Coo {
        // The paper's Fig. 2 sample graph.
        Coo::from_edges(4, 4, &[(0, 1), (0, 2), (1, 0), (2, 1), (2, 3), (3, 2)])
    }

    #[test]
    fn spmm_sum_hand_checked() {
        let g = fig2_graph();
        // X row v = [v, 10v].
        let x: Vec<f64> = (0..4).flat_map(|v| [v as f64, 10.0 * v as f64]).collect();
        let y = spmm_f64(&g, EdgeWeights::Ones, &x, 2, Reduce::Sum, None);
        // Row 0 = X1 + X2 = [3, 30]; Row 2 = X1 + X3 = [4, 40].
        assert_eq!(&y[0..2], &[3.0, 30.0]);
        assert_eq!(&y[2..4], &[0.0, 0.0]);
        assert_eq!(&y[4..6], &[4.0, 40.0]);
        assert_eq!(&y[6..8], &[2.0, 20.0]);
    }

    #[test]
    fn spmm_weighted() {
        let g = Coo::from_edges(2, 2, &[(0, 0), (0, 1)]);
        let w = [Half::from_f32(2.0), Half::from_f32(0.5)];
        let x = [1.0, 10.0];
        let y = spmm_f64(&g, EdgeWeights::Values(&w), &x, 1, Reduce::Sum, None);
        assert_eq!(y, vec![2.0 + 5.0, 0.0]);
    }

    #[test]
    fn spmm_max_and_empty_rows() {
        let g = Coo::from_edges(3, 3, &[(0, 1), (0, 2)]);
        let x = [5.0, -2.0, 7.0];
        let y = spmm_f64(&g, EdgeWeights::Ones, &x, 1, Reduce::Max, None);
        assert_eq!(y, vec![7.0, 0.0, 0.0]); // empty rows defined as 0
    }

    #[test]
    fn spmm_row_scale() {
        let g = Coo::from_edges(2, 2, &[(0, 0), (0, 1)]);
        let x = [4.0, 8.0];
        let y = spmm_f64(&g, EdgeWeights::Ones, &x, 1, Reduce::Sum, Some(&[0.5, 1.0]));
        assert_eq!(y, vec![6.0, 0.0]);
    }

    #[test]
    fn sddmm_hand_checked() {
        let g = Coo::from_edges(2, 2, &[(0, 1), (1, 0)]);
        let u = [1.0, 2.0, 3.0, 4.0]; // rows [1,2],[3,4]
        let v = [10.0, 20.0, 30.0, 40.0];
        let out = sddmm_f64(&g, &u, &v, 2);
        // edge (0,1): [1,2]·[30,40] = 110; edge (1,0): [3,4]·[10,20] = 110.
        assert_eq!(out, vec![110.0, 110.0]);
    }

    #[test]
    fn tolerance_helpers() {
        let got = [Half::from_f32(1.0), Half::from_f32(2.001)];
        assert_close_half(&got, &[1.0, 2.0], 1e-2, 1e-3, "ok");
    }

    #[test]
    #[should_panic(expected = "err")]
    fn tolerance_helpers_catch_mismatch() {
        let got = [Half::from_f32(1.5)];
        assert_close_half(&got, &[1.0], 1e-3, 1e-3, "bad");
    }
}
